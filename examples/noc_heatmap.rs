//! NoC heatmap: visualise where compute and traffic concentrate on the mesh
//! under the default placement vs the partitioned schedule.
//!
//! Run with: `cargo run -p dmcp --example noc_heatmap -- [name]`
//! (default: radix)

use dmcp::core::{PartitionConfig, Partitioner};
use dmcp::mach::MachineConfig;
use dmcp::sim::viz::{link_heatmap, node_heatmap};
use dmcp::sim::{Engine, SimOptions};
use dmcp::workloads::{by_name, Scale};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "radix".to_string());
    let Some(w) = by_name(&name, Scale::Small) else {
        eprintln!("unknown workload `{name}`");
        std::process::exit(1);
    };
    let machine = MachineConfig::knl_like();
    let part = Partitioner::new(&machine, &w.program, PartitionConfig::default());

    for (label, out) in [
        ("default placement", part.baseline(&w.program, &w.data)),
        ("partitioned", part.partition_with_data(&w.program, &w.data)),
    ] {
        let mut engine = Engine::new(&w.program, part.layout(), SimOptions::default());
        for nest in &out.nests {
            engine.run(&nest.schedule);
        }
        let report = engine.report();
        println!("== {} — {label} ==", w.name);
        println!(
            "exec {:.0} cycles, movement {} links, net avg latency {:.1}",
            report.exec_time, report.movement, report.net_avg_latency
        );
        println!("node utilization:");
        print!("{}", node_heatmap(&engine, machine.mesh));
        println!("link congestion:");
        print!("{}", link_heatmap(&engine, machine.mesh));
        println!();
    }
}
