//! Kernel explorer: run any of the paper's 12 workloads end to end and
//! print every headline metric (movement, time, L1, syncs, parallelism,
//! energy) against the locality-optimized default.
//!
//! Run with: `cargo run -p dmcp --example kernel_explorer -- [name]`
//! (default: ocean)

use dmcp::baselines::locality_assignment;
use dmcp::core::{PartitionConfig, Partitioner};
use dmcp::mach::MachineConfig;
use dmcp::sim::{run_schedules, SimOptions};
use dmcp::workloads::{by_name, Scale};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "ocean".to_string());
    let Some(w) = by_name(&name, Scale::Small) else {
        eprintln!("unknown workload `{name}`; try one of the 12 paper applications");
        std::process::exit(1);
    };
    println!("== {} ==", w.name);
    println!(
        "analyzable references: {:.1}% (paper Table 1: {:.1}%)",
        100.0 * w.program.static_analyzability(),
        100.0 * w.paper.analyzable
    );

    let machine = MachineConfig::knl_like();
    // Profile-guided default assignment (the paper's baseline).
    let scout = Partitioner::new(&machine, &w.program, PartitionConfig::default());
    let assignment = locality_assignment(&w.program, scout.layout(), &w.data, 0);
    let cfg = PartitionConfig { assignment: Some(assignment), ..PartitionConfig::default() };
    let partitioner = Partitioner::new(&machine, &w.program, cfg);

    let optimized = partitioner.partition_with_data(&w.program, &w.data);
    let baseline = partitioner.baseline(&w.program, &w.data);
    println!(
        "chosen window sizes per nest: {:?}; subcomputation parallelism avg {:.2} / max {}",
        optimized.window_sizes(),
        optimized.avg_parallelism(),
        optimized.max_parallelism()
    );
    println!(
        "synchronizations per statement after minimisation: {:.2}",
        optimized.syncs_per_statement()
    );
    let mix = optimized.remapped();
    let (a, m, o) = mix.fractions();
    println!(
        "re-mapped op mix: add/sub {:.1}%, mul/div {:.1}%, other {:.1}% (paper Table 3: {:.1}/{:.1}/{:.1})",
        100.0 * a, 100.0 * m, 100.0 * o,
        100.0 * w.paper.op_mix.0, 100.0 * w.paper.op_mix.1, 100.0 * w.paper.op_mix.2
    );

    let r_base = run_schedules(&w.program, partitioner.layout(), &baseline, SimOptions::default());
    let r_opt = run_schedules(&w.program, partitioner.layout(), &optimized, SimOptions::default());
    println!(
        "movement reduction {:.1}%  |  exec-time reduction {:.1}% (paper Fig 17 ~{:.0}%)",
        100.0 * r_opt.movement_reduction_vs(&r_base),
        100.0 * r_opt.time_reduction_vs(&r_base),
        100.0 * w.paper.fig17_exec_reduction
    );
    println!(
        "L1 hit rate {:.1}% -> {:.1}%  |  predictor accuracy {:.1}% (paper Table 2: {:.1}%)",
        100.0 * r_base.l1_hit_rate(),
        100.0 * r_opt.l1_hit_rate(),
        100.0 * r_opt.predictor_accuracy,
        100.0 * w.paper.predictor_accuracy
    );
    println!(
        "energy reduction {:.1}%  |  network latency avg {:.1} -> {:.1} cycles",
        100.0 * r_opt.energy_reduction_vs(&r_base),
        r_base.net_avg_latency,
        r_opt.net_avg_latency
    );
}
