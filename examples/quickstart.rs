//! Quickstart: partition one loop nest and compare against the default
//! placement — the paper's Figure 3 scenario, end to end.
//!
//! Run with: `cargo run -p dmcp --example quickstart`

use dmcp::core::{PartitionConfig, Partitioner};
use dmcp::ir::ProgramBuilder;
use dmcp::mach::MachineConfig;
use dmcp::sim::{run_schedules, SimOptions};

fn main() {
    // The paper's running example: A(i) = B(i) + C(i) + D(i) + E(i),
    // swept a few times so the on-chip caches warm up.
    let mut b = ProgramBuilder::new();
    for name in ["A", "B", "C", "D", "E"] {
        b.array(name, &[1024], 64);
    }
    b.nest(&[("t", 0, 4), ("i", 0, 1024)], &["A[i] = B[i] + C[i] + D[i] + E[i]"])
        .expect("statement parses");
    let program = b.build();

    let machine = MachineConfig::knl_like();
    println!(
        "machine: {}x{} mesh, {} cluster mode",
        machine.mesh.cols(),
        machine.mesh.rows(),
        machine.cluster
    );

    let partitioner = Partitioner::new(&machine, &program, PartitionConfig::default());
    let data = program.initial_data();

    let optimized = partitioner.partition_with_data(&program, &data);
    let baseline = partitioner.baseline(&program, &data);
    println!(
        "planned movement: default {} links, optimized {} links ({:.1}% less), window sizes {:?}",
        optimized.movement_default(),
        optimized.movement_opt(),
        100.0 * (1.0 - optimized.movement_opt() as f64 / optimized.movement_default() as f64),
        optimized.window_sizes(),
    );

    let r_base = run_schedules(&program, partitioner.layout(), &baseline, SimOptions::default());
    let r_opt = run_schedules(&program, partitioner.layout(), &optimized, SimOptions::default());
    println!(
        "simulated: baseline {:.0} cycles / {} links, optimized {:.0} cycles / {} links",
        r_base.exec_time, r_base.movement, r_opt.exec_time, r_opt.movement
    );
    println!(
        "execution time reduction {:.1}%, movement reduction {:.1}%, L1 hit rate {:.1}% -> {:.1}%",
        100.0 * r_opt.time_reduction_vs(&r_base),
        100.0 * r_opt.movement_reduction_vs(&r_base),
        100.0 * r_base.l1_hit_rate(),
        100.0 * r_opt.l1_hit_rate(),
    );

    // Correctness: the partitioned schedule computes the same values.
    let mut got = program.initial_data();
    for nest in &optimized.nests {
        nest.schedule.execute_values(&mut got);
    }
    let mut want = program.initial_data();
    dmcp::ir::exec::run_sequential(&program, &mut want);
    assert!(got.approx_eq(&want, 1e-9));
    println!("numerical check: partitioned schedule matches sequential execution");
}
