//! Plan explainer: show exactly how the partitioner splits one statement —
//! the textual form of the paper's Figures 6 and 8 — and dump the first
//! instances of the schedule as Graphviz DOT.
//!
//! Run with: `cargo run -p dmcp --example plan_explain -- [name] [instance]`
//! (defaults: lu 0). Pass `--gap` to print each nest's data-movement lower
//! bound (`dmcp::bound`) next to the planner's movement.

use dmcp::bound::gap_report;
use dmcp::core::explain::{explain_instance, schedule_to_dot};
use dmcp::core::{PartitionConfig, Partitioner};
use dmcp::mach::MachineConfig;
use dmcp::workloads::{by_name, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let show_gap = args.iter().any(|a| a == "--gap");
    let mut pos = args.iter().filter(|a| !a.starts_with("--"));
    let name = pos.next().cloned().unwrap_or_else(|| "lu".to_string());
    let instance: u64 = pos.next().and_then(|s| s.parse().ok()).unwrap_or(0);
    let Some(w) = by_name(&name, Scale::Tiny) else {
        eprintln!("unknown workload `{name}`");
        std::process::exit(1);
    };
    let machine = MachineConfig::knl_like();
    let part = Partitioner::new(&machine, &w.program, PartitionConfig::default());
    let out = part.partition_with_data(&w.program, &w.data);
    let schedule = &out.nests[0].schedule;

    println!("== {} ==", w.name);
    println!(
        "source nest:\n{}",
        dmcp::ir::display::nest_to_string(&w.program.nests()[0], &w.program)
    );
    for k in instance..instance + 4 {
        if let Some(text) = explain_instance(schedule, &w.program, 0, k) {
            print!("{text}");
        }
    }
    if show_gap {
        let gap = gap_report(w.name, &w.program, part.layout(), &w.data, part.config(), &out);
        println!("\noptimality gap (movement vs provable lower bound):");
        for (nb, movement) in &gap.nests {
            println!(
                "  nest {}: movement {} >= bound {} ({} instances, {} chargeable leaves)",
                nb.nest, movement, nb.bound, nb.instances, nb.chargeable_leaves
            );
        }
        println!(
            "  total: movement {} / bound {} = {:.2}x{}",
            gap.planner_movement,
            gap.bound,
            gap.gap_ratio(),
            if gap.sound() { "" } else { "  SOUNDNESS VIOLATION" }
        );
    }
    println!("\nGraphviz of the first two instances (pipe into `dot -Tsvg`):\n");
    print!("{}", schedule_to_dot(schedule, 2));
}
