//! Machine design: evaluate one workload across every (cluster mode ×
//! memory mode) combination and across mesh sizes — the paper's Figure 22
//! plus a scalability extension.
//!
//! Run with: `cargo run -p dmcp --example machine_design -- [name]`
//! (default: minimd)

use dmcp::core::{PartitionConfig, Partitioner};
use dmcp::mach::{ClusterMode, MachineConfig, Mesh};
use dmcp::mem::MemoryMode;
use dmcp::sim::{run_schedules, SimOptions};
use dmcp::workloads::{by_name, Scale};

fn run(
    w: &dmcp::workloads::Workload,
    machine: &MachineConfig,
    mode: MemoryMode,
    optimized: bool,
) -> f64 {
    let part = Partitioner::new(machine, &w.program, PartitionConfig::default());
    let out = if optimized {
        part.partition_with_data(&w.program, &w.data)
    } else {
        part.baseline(&w.program, &w.data)
    };
    let opts = SimOptions { memory_mode: mode, ..SimOptions::default() };
    run_schedules(&w.program, part.layout(), &out, opts).exec_time
}

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "minimd".to_string());
    let Some(w) = by_name(&name, Scale::Small) else {
        eprintln!("unknown workload `{name}`");
        std::process::exit(1);
    };
    println!("== {} across KNL configurations ==", w.name);
    // Normalise against the paper's reference configuration (B,X,1):
    // quadrant cluster mode, flat memory, original code.
    let reference = run(
        &w,
        &MachineConfig::knl_like().with_cluster(ClusterMode::Quadrant),
        MemoryMode::Flat,
        false,
    );
    println!("{:<24} {:>10} {:>10}", "(cluster, memory)", "original", "optimized");
    for cluster in ClusterMode::ALL {
        for memory in MemoryMode::ALL {
            let machine = MachineConfig::knl_like().with_cluster(cluster);
            let orig = run(&w, &machine, memory, false) / reference;
            let opt = run(&w, &machine, memory, true) / reference;
            println!("({}{},{})  {:>16.3} {:>10.3}", cluster.letter(), cluster, memory, orig, opt);
        }
    }

    println!("\n== mesh scalability (quadrant, flat) ==");
    for dim in [4u16, 6, 8, 10] {
        let machine = MachineConfig::knl_like().with_mesh(Mesh::new(dim, dim));
        let base = run(&w, &machine, MemoryMode::Flat, false);
        let opt = run(&w, &machine, MemoryMode::Flat, true);
        println!(
            "{dim}x{dim}: baseline {base:>9.0} cycles, optimized {opt:>9.0} cycles ({:.1}% faster)",
            100.0 * (1.0 - opt / base)
        );
    }
}
