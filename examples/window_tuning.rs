//! Window tuning: sweep fixed statement-window sizes 1..8 on one workload
//! and compare with the per-nest adaptive search — the paper's Figure 20
//! experiment for a single application.
//!
//! Run with: `cargo run -p dmcp --example window_tuning -- [name]`
//! (default: fft)

use dmcp::core::{PartitionConfig, Partitioner};
use dmcp::mach::MachineConfig;
use dmcp::sim::{run_schedules, SimOptions};
use dmcp::workloads::{by_name, Scale};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "fft".to_string());
    let Some(w) = by_name(&name, Scale::Small) else {
        eprintln!("unknown workload `{name}`");
        std::process::exit(1);
    };
    let machine = MachineConfig::knl_like();

    let base_part = Partitioner::new(&machine, &w.program, PartitionConfig::default());
    let baseline = base_part.baseline(&w.program, &w.data);
    let r_base = run_schedules(&w.program, base_part.layout(), &baseline, SimOptions::default());
    println!("== {} == (baseline {:.0} cycles)", w.name, r_base.exec_time);
    println!("{:<10} {:>14} {:>12} {:>10}", "window", "exec-reduction", "movement", "L1 rate");

    for window in 1..=8usize {
        let cfg = PartitionConfig { fixed_window: Some(window), ..PartitionConfig::default() };
        let part = Partitioner::new(&machine, &w.program, cfg);
        let out = part.partition_with_data(&w.program, &w.data);
        let r = run_schedules(&w.program, part.layout(), &out, SimOptions::default());
        println!(
            "{:<10} {:>13.1}% {:>12} {:>9.1}%",
            window,
            100.0 * r.time_reduction_vs(&r_base),
            r.movement,
            100.0 * r.l1_hit_rate()
        );
    }

    let part = Partitioner::new(&machine, &w.program, PartitionConfig::default());
    let out = part.partition_with_data(&w.program, &w.data);
    let r = run_schedules(&w.program, part.layout(), &out, SimOptions::default());
    println!(
        "{:<10} {:>13.1}% {:>12} {:>9.1}%   (chosen: {:?})",
        "adaptive",
        100.0 * r.time_reduction_vs(&r_base),
        r.movement,
        100.0 * r.l1_hit_rate(),
        out.window_sizes()
    );
}
