//! Fault sweep: kill a growing fraction of the mesh and watch the
//! partitioner degrade gracefully instead of falling over.
//!
//! For each dead-node fraction a random fault plan is sampled (dead tiles,
//! severed links, lossy links), the program is re-partitioned in degraded
//! mode — dead nodes excluded from every placement, their L2 banks
//! re-homed — and simulated on the faulty network with detour routing and
//! retry accounting. The 0% row is bit-identical to a fault-free run.
//!
//! The degraded compiles are routed through the plan service
//! ([`dmcp::serve::PlanService`]): every (program, machine, config, fault
//! plan) combination fingerprints to its own [`dmcp::serve::PlanKey`], so
//! degraded-mode plans cache exactly like healthy ones — re-sweeping the
//! same fault scenarios is pure cache hits.
//!
//! Run with: `cargo run -p dmcp --example fault_sweep`

use dmcp::core::{PartitionConfig, Partitioner};
use dmcp::ir::ProgramBuilder;
use dmcp::mach::{FaultPlan, FaultState, MachineConfig};
use dmcp::serve::{PlanRequest, PlanService, ServeConfig};
use dmcp::sim::{degradation_table, fault_sweep, run_schedules_degraded, FaultSweepConfig};

fn main() {
    // The paper's running example, large enough that movement matters.
    let mut b = ProgramBuilder::new();
    for name in ["A", "B", "C", "D", "E"] {
        b.array(name, &[1024], 64);
    }
    b.nest(&[("t", 0, 4), ("i", 0, 1024)], &["A[i] = B[i] + C[i] + D[i] + E[i]"])
        .expect("statement parses");
    let program = b.build();

    let machine = MachineConfig::knl_like();
    let config = PartitionConfig::default();
    let sweep = FaultSweepConfig::default();
    println!(
        "sweeping dead-node fractions {:?} on a {}x{} mesh (link failure {:.0}%, lossy {:.0}%)\n",
        sweep.dead_fracs,
        machine.mesh.cols(),
        machine.mesh.rows(),
        100.0 * sweep.link_fail,
        100.0 * sweep.lossy,
    );

    // The severity sweep with simulation on the faulty network.
    let rows = fault_sweep(&program, &machine, &config, &sweep).expect("sweep completes");
    println!("{}", degradation_table(&rows));

    let worst = rows.last().expect("at least one row");
    println!(
        "\nat {:.0}% dead: {} of {} nodes usable, {:.2}x movement, {:.2}x exec time, \
         {} retries, {} detour hops",
        100.0 * worst.dead_frac,
        worst.live_nodes,
        machine.mesh.node_count(),
        worst.movement_ratio,
        worst.exec_time_ratio,
        worst.report.net_retries,
        worst.report.net_detour_hops,
    );

    // Now the same compiles through the plan service: one request per
    // fault scenario, each content-addressed by its fault fingerprint.
    // This program's plans run ~3 MB each and several scenarios can land
    // on one cache shard, so give the cache room for the whole sweep.
    let service = PlanService::new(ServeConfig { cache_bytes: 256 << 20, ..Default::default() });
    let requests: Vec<PlanRequest> = sweep
        .dead_fracs
        .iter()
        .enumerate()
        .map(|(i, &frac)| {
            let base = PlanRequest::new(program.clone(), machine.clone(), config.clone());
            if frac == 0.0 {
                base
            } else {
                base.with_faults(FaultPlan::random(
                    machine.mesh,
                    frac,
                    sweep.link_fail,
                    sweep.lossy,
                    sweep.drop_prob,
                    sweep.seed.wrapping_add(i as u64),
                ))
            }
        })
        .collect();

    let round1 = service.serve_batch(requests.clone());
    let round2 = service.serve_batch(requests.clone());
    for (a, b) in round1.iter().zip(&round2) {
        assert_eq!(
            a.as_ref().expect("compiles"),
            b.as_ref().expect("cache hit"),
            "cached degraded plan must be bit-identical"
        );
    }

    // The healthy service plan is bit-identical to a direct run that never
    // heard of the service (or of faults).
    let direct = Partitioner::new(&machine, &program, config.clone());
    let healthy = direct.partition_with_data(&program, &program.initial_data());
    assert_eq!(**round1[0].as_ref().expect("healthy plan"), healthy);

    // And a degraded service plan simulates exactly like the sweep row.
    let (worst_idx, &worst_frac) =
        sweep.dead_fracs.iter().enumerate().next_back().expect("at least one fraction");
    if worst_frac > 0.0 {
        let faults = requests[worst_idx].faults.clone().expect("worst row has faults");
        let state = FaultState::new(faults, machine.mesh).expect("usable plan");
        let degraded = Partitioner::new_degraded(&machine, &program, config.clone(), &state)
            .expect("degraded partitioner");
        let plan = round1[worst_idx].as_ref().expect("degraded plan");
        let replay = run_schedules_degraded(
            &program,
            degraded.layout(),
            plan,
            dmcp::sim::SimOptions::default(),
            state,
        );
        assert_eq!(replay.movement, worst.report.movement);
    }

    let stats = service.stats();
    println!(
        "\nplan service: {} requests, {} compiles, {} cache hits ({} scenarios cached \
         after round one — degraded configs fingerprint and cache like healthy ones)",
        stats.submitted,
        stats.compiles,
        stats.cache.hits,
        sweep.dead_fracs.len(),
    );
    assert_eq!(stats.compiles, sweep.dead_fracs.len() as u64);
    service.shutdown();
}
