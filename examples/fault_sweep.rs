//! Fault sweep: kill a growing fraction of the mesh and watch the
//! partitioner degrade gracefully instead of falling over.
//!
//! For each dead-node fraction a random fault plan is sampled (dead tiles,
//! severed links, lossy links), the program is re-partitioned in degraded
//! mode — dead nodes excluded from every placement, their L2 banks
//! re-homed — and simulated on the faulty network with detour routing and
//! retry accounting. The 0% row is bit-identical to a fault-free run.
//!
//! Run with: `cargo run -p dmcp --example fault_sweep`

use dmcp::core::PartitionConfig;
use dmcp::ir::ProgramBuilder;
use dmcp::mach::MachineConfig;
use dmcp::sim::{degradation_table, fault_sweep, FaultSweepConfig};

fn main() {
    // The paper's running example, large enough that movement matters.
    let mut b = ProgramBuilder::new();
    for name in ["A", "B", "C", "D", "E"] {
        b.array(name, &[1024], 64);
    }
    b.nest(&[("t", 0, 4), ("i", 0, 1024)], &["A[i] = B[i] + C[i] + D[i] + E[i]"])
        .expect("statement parses");
    let program = b.build();

    let machine = MachineConfig::knl_like();
    let sweep = FaultSweepConfig::default();
    println!(
        "sweeping dead-node fractions {:?} on a {}x{} mesh (link failure {:.0}%, lossy {:.0}%)\n",
        sweep.dead_fracs,
        machine.mesh.cols(),
        machine.mesh.rows(),
        100.0 * sweep.link_fail,
        100.0 * sweep.lossy,
    );

    let rows = fault_sweep(&program, &machine, &PartitionConfig::default(), &sweep)
        .expect("sweep completes");
    println!("{}", degradation_table(&rows));

    let worst = rows.last().expect("at least one row");
    println!(
        "\nat {:.0}% dead: {} of {} nodes usable, {:.2}x movement, {:.2}x exec time, \
         {} retries, {} detour hops",
        100.0 * worst.dead_frac,
        worst.live_nodes,
        machine.mesh.node_count(),
        worst.movement_ratio,
        worst.exec_time_ratio,
        worst.report.net_retries,
        worst.report.net_detour_hops,
    );
}
