//! `dmcp-serve` — a concurrent partition-plan compilation service with a
//! content-addressed plan cache.
//!
//! The partitioner in `dmcp-core` is a pure function of its inputs: the
//! same program, data, machine description, configuration and fault plan
//! always produce the same [`dmcp_core::PartitionOutput`]. This crate
//! turns that purity into a serving layer:
//!
//! * [`PlanKey`] — a content address built from stable fingerprints
//!   ([`dmcp_ir::StableHash`] for programs/data, the
//!   [`dmcp_mach::Fingerprint`] accumulator for machines and faults, and
//!   `PartitionConfig::fingerprint` for the planner knobs);
//! * [`ShardedPlanCache`] — an N-shard LRU over approximate plan bytes
//!   with hit/miss/insert/eviction counters;
//! * [`PlanService`] — a bounded-queue worker pool with single-flight
//!   deduplication (concurrent requests for one key compile once),
//!   per-key window-size memoization, typed admission control
//!   ([`ServeError::QueueFull`], [`ServeError::Timeout`]) and graceful
//!   draining shutdown ([`PlanService::shutdown_within`]);
//! * [`DiskTier`] — a durable, append-only, checksummed on-disk plan
//!   store behind the memory LRU; crash recovery truncates at most the
//!   record being written when the process died;
//! * [`wire`] / [`codec`] — the length-prefixed binary frame protocol and
//!   the request/plan byte codec it carries;
//! * [`PlanServer`] / [`PlanClient`] — the TCP front end (typed error
//!   frames, per-connection deadlines, bounded handler pool) and a client
//!   with connect/request timeouts and jittered-backoff retry;
//! * [`mix`] — a synthetic client mix over the 12 paper workloads, used
//!   by the `dmcp-serve` binary and the bench harness to measure the
//!   cached-over-uncached speedup (the open-loop network variant lives in
//!   the `dmcp-loadgen` binary).
//!
//! # Quick start
//!
//! ```
//! use dmcp_serve::{PlanRequest, PlanService, ServeConfig};
//! use dmcp_mach::MachineConfig;
//!
//! let service = PlanService::new(ServeConfig::default());
//! let w = dmcp_workloads::by_name("ocean", dmcp_workloads::Scale::Tiny).unwrap();
//! let req = PlanRequest::new(w.program, MachineConfig::knl_like(), <_>::default())
//!     .with_data(w.data);
//! let first = service.plan(req.clone()).unwrap();   // compiles
//! let second = service.plan(req).unwrap();          // cache hit
//! assert_eq!(first, second);
//! assert_eq!(service.stats().compiles, 1);
//! service.shutdown();
//! ```

pub mod cache;
pub mod chaos;
pub mod client;
pub mod codec;
pub mod disk;
pub mod key;
pub mod mix;
pub mod net;
pub mod service;
pub mod storage;
pub mod wire;

pub use cache::{approx_plan_bytes, CacheStats, ShardedPlanCache};
pub use chaos::{ChaosAction, ChaosProxy, ProxyCounters};
pub use client::{ClientConfig, ClientCounters, ClientError, PlanClient};
pub use codec::CodecError;
pub use disk::{DiskStats, DiskTier};
pub use key::{PlanKey, PlanRequest};
pub use mix::{run_client_mix, run_comparison, MixConfig, MixReport};
pub use net::{NetConfig, PlanServer};
pub use service::{PlanResult, PlanService, PlanTicket, ServeConfig, ServeError, ServeStats};
pub use storage::{ChaosState, FaultyIo, MemIo, RealIo, StorageFile, StorageIo};
pub use wire::{ErrorCode, WireError};

/// Compile-time audit that everything the service moves across or shares
/// between threads is `Send`/`Sync`. The partitioner and layout are
/// constructed inside worker threads; requests cross the queue; plans and
/// the service handle are shared by reference from client threads.
#[allow(dead_code)]
fn send_sync_audit() {
    fn send<T: Send>() {}
    fn sync<T: Sync>() {}
    send::<dmcp_core::Partitioner>();
    sync::<dmcp_core::Partitioner>();
    send::<dmcp_core::Layout>();
    sync::<dmcp_core::Layout>();
    send::<dmcp_core::PartitionOutput>();
    sync::<dmcp_core::PartitionOutput>();
    send::<PlanRequest>();
    send::<PlanTicket>();
    sync::<PlanService>();
    send::<PlanService>();
    sync::<ShardedPlanCache>();
}
