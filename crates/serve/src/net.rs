//! The TCP front end: accepts connections, decodes request frames, drives
//! the [`PlanService`] and answers with plan bytes or typed error frames.
//!
//! Robustness posture:
//!
//! * every connection gets read/write deadlines (`set_read_timeout`) — a
//!   stalled or malicious peer times out instead of pinning a handler;
//! * malformed frames (bad magic/version/kind, oversized length, checksum
//!   mismatch, undecodable request) are answered with a typed error frame
//!   and the connection is closed — once framing desyncs nothing later on
//!   the stream can be trusted;
//! * request-level failures (queue full, wait timeout, compile error)
//!   are answered with a typed error frame and the connection *stays
//!   open* — framing is intact, the client may pipeline the next request;
//! * connections are handled by a bounded [`WorkerPool`]; when it is
//!   saturated the accept loop answers `QueueFull` inline and drops the
//!   connection — load is shed with a typed error, never by hanging;
//! * shutdown stops accepting, finishes in-flight connections, then
//!   returns.

use crate::codec::{decode_request, encode_plan, encode_stats};
use crate::service::PlanService;
use crate::wire::{encode_error, read_frame, write_frame, ErrorCode, FrameKind, WireError};
use dmcp_pool::{SubmitError, WorkerPool};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Server knobs.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Per-connection read/write deadline. A peer that stalls mid-frame
    /// for longer than this is disconnected.
    pub io_timeout: Duration,
    /// Threads handling accepted connections.
    pub conn_workers: usize,
    /// Accepted connections waiting for a handler before the accept loop
    /// sheds load with `QueueFull`.
    pub conn_queue: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self { io_timeout: Duration::from_secs(10), conn_workers: 8, conn_queue: 64 }
    }
}

/// A running server. Dropping the handle stops it; prefer
/// [`PlanServer::stop`] to make the drain explicit.
pub struct PlanServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl PlanServer {
    /// Binds `addr` (use `127.0.0.1:0` for an ephemeral test port) and
    /// starts the accept loop on a background thread.
    ///
    /// # Errors
    ///
    /// Bind/configuration failures.
    pub fn start(
        service: Arc<PlanService>,
        addr: impl ToSocketAddrs,
        config: NetConfig,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        // Non-blocking accept: the loop polls the stop flag between
        // accepts, so shutdown never waits on a listener with no clients.
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_for_loop = Arc::clone(&stop);
        let accept = std::thread::Builder::new()
            .name("dmcp-serve-accept".to_string())
            .spawn(move || accept_loop(&listener, &service, &config, &stop_for_loop))
            .expect("spawn accept thread");
        Ok(Self { local_addr, stop, accept: Some(accept) })
    }

    /// The bound address (the ephemeral port for `127.0.0.1:0` binds).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Graceful stop: no new connections are accepted, in-flight
    /// connections finish, then this returns.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for PlanServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    service: &Arc<PlanService>,
    config: &NetConfig,
    stop: &Arc<AtomicBool>,
) {
    let pool = WorkerPool::new("dmcp-serve-conn", config.conn_workers, config.conn_queue);
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_read_timeout(Some(config.io_timeout));
                let _ = stream.set_write_timeout(Some(config.io_timeout));
                let service = Arc::clone(service);
                let mut stream_for_job = match stream.try_clone() {
                    Ok(s) => s,
                    Err(_) => continue,
                };
                let admitted =
                    pool.try_submit(move || handle_connection(&service, &mut stream_for_job));
                if let Err(e) = admitted {
                    // Shed load with a typed frame rather than a hang.
                    let code = match e {
                        SubmitError::QueueFull => ErrorCode::QueueFull,
                        SubmitError::Closed => ErrorCode::ShuttingDown,
                    };
                    let mut stream = stream;
                    let _ = write_frame(
                        &mut stream,
                        FrameKind::Error,
                        &encode_error(code, "connection handlers saturated"),
                    );
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
    // Dropping the pool drains connections already admitted.
    drop(pool);
}

/// Serves one connection until clean close, socket error, malformed
/// input or read timeout.
///
/// Each request is additionally wrapped in `catch_unwind`: a panic while
/// answering (a compile bug, a poisoned lock) is contained as a typed
/// `Internal` error frame with the connection *and the handler worker*
/// kept alive — one bad request must not take the whole connection pool
/// with it. (The service's own workers contain compile panics too; this
/// is the second fence, for panics in the answer path itself.)
fn handle_connection(service: &PlanService, stream: &mut TcpStream) {
    loop {
        match read_frame(stream) {
            Ok((FrameKind::PlanRequest, payload)) => {
                let answered = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    answer_plan(service, stream, &payload)
                }));
                match answered {
                    Ok(true) => {}
                    Ok(false) => return,
                    Err(_) => {
                        let payload =
                            encode_error(ErrorCode::Internal, "handler panicked (contained)");
                        if write_frame(stream, FrameKind::Error, &payload).is_err() {
                            return;
                        }
                    }
                }
            }
            Ok((FrameKind::StatsRequest, _)) => {
                let answered = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    encode_stats(&service.stats())
                }));
                let (kind, payload) = match answered {
                    Ok(stats) => (FrameKind::StatsOk, stats),
                    Err(_) => (
                        FrameKind::Error,
                        encode_error(ErrorCode::Internal, "stats handler panicked (contained)"),
                    ),
                };
                if write_frame(stream, kind, &payload).is_err() {
                    return;
                }
            }
            Ok((kind, _)) => {
                // A response kind from a client: protocol misuse; answer
                // and close.
                let payload =
                    encode_error(ErrorCode::Malformed, &format!("unexpected frame kind {kind:?}"));
                let _ = write_frame(stream, FrameKind::Error, &payload);
                return;
            }
            Err(WireError::Closed) => return,
            Err(e) if e.is_malformed() => {
                // Garbage on the stream: answer with a typed frame, then
                // close — after a framing error nothing later can be
                // trusted.
                let code = match e {
                    WireError::TooLarge(_) => ErrorCode::TooLarge,
                    _ => ErrorCode::Malformed,
                };
                let _ = write_frame(stream, FrameKind::Error, &encode_error(code, &e.to_string()));
                return;
            }
            // Socket failure (including read timeout): nothing sensible
            // to answer on a broken socket.
            Err(_) => return,
        }
    }
}

/// Decodes and serves one plan request. Returns `false` when the
/// connection should close (malformed request or socket failure).
fn answer_plan(service: &PlanService, stream: &mut TcpStream, payload: &[u8]) -> bool {
    let request = match decode_request(payload) {
        Ok(r) => r,
        Err(e) => {
            let payload = encode_error(ErrorCode::Malformed, &e.to_string());
            let _ = write_frame(stream, FrameKind::Error, &payload);
            return false;
        }
    };
    let outcome = service.submit(request).and_then(crate::service::PlanTicket::wait);
    let write = match outcome {
        Ok(plan) => write_frame(stream, FrameKind::PlanOk, &encode_plan(&plan)),
        Err(e) => {
            let payload = encode_error(ErrorCode::from(&e), &e.to_string());
            write_frame(stream, FrameKind::Error, &payload)
        }
    };
    write.is_ok()
}
