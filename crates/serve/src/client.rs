//! A small TCP client for `dmcp-serve` with timeouts and bounded,
//! jittered exponential-backoff retry.
//!
//! Retry policy: connect failures, socket timeouts, in-transit corruption
//! (a response frame failing its checksum) and the retryable
//! server errors (`QueueFull`, `Timeout`, `ShuttingDown` — see
//! [`ErrorCode::retryable`]) back off and try again, up to
//! [`ClientConfig::max_retries`]; compile errors and malformed-request
//! rejections are the request's own fault and surface immediately. The
//! backoff doubles per attempt, is capped, and is jittered by the in-tree
//! splitmix64 [`Rng64`] so a fleet of clients released by the same event
//! does not stampede the server in lockstep.
//!
//! One connection serves one request: reconnect-per-attempt keeps retry
//! semantics trivial (no half-read stream state) and lets the server's
//! bounded handler pool turn over quickly.

use crate::codec::{decode_plan, decode_stats, encode_request, CodecError};
use crate::key::PlanRequest;
use crate::service::ServeStats;
use crate::wire::{decode_error, read_frame, write_frame, ErrorCode, FrameKind, WireError};
use dmcp_core::PartitionOutput;
use dmcp_mach::rng::Rng64;
use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client knobs.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Deadline for establishing a connection.
    pub connect_timeout: Duration,
    /// Per-request read/write deadline (the plan wait happens server-side
    /// within this window).
    pub io_timeout: Duration,
    /// Retries after the first attempt; 0 means fail fast.
    pub max_retries: u32,
    /// First backoff delay; doubles per retry.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
    /// Seed for backoff jitter.
    pub seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(2),
            io_timeout: Duration::from_secs(30),
            max_retries: 5,
            backoff_base: Duration::from_millis(20),
            backoff_max: Duration::from_secs(1),
            seed: 0xC11E_4275,
        }
    }
}

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connect refused, timeout, reset) — retried
    /// until attempts are exhausted.
    Io(String),
    /// The server answered with a typed error frame.
    Server(ErrorCode, String),
    /// A response frame failed to decode.
    Codec(CodecError),
    /// The server answered with a frame kind that makes no sense here.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Server(code, msg) => write!(f, "server {code:?}: {msg}"),
            ClientError::Codec(e) => write!(f, "response decode: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl ClientError {
    /// Whether another attempt could succeed.
    #[must_use]
    pub fn retryable(&self) -> bool {
        match self {
            ClientError::Io(_) => true,
            ClientError::Server(code, _) => code.retryable(),
            ClientError::Codec(_) | ClientError::Protocol(_) => false,
        }
    }
}

/// Cumulative client counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct ClientCounters {
    /// Requests that ultimately succeeded.
    pub ok: u64,
    /// Requests that ultimately failed.
    pub failed: u64,
    /// Extra attempts spent on backoff-and-retry.
    pub retries: u64,
    /// Connection attempts made (first tries and retries alike).
    pub attempts: u64,
    /// Total time slept in backoff.
    pub backoff: Duration,
}

/// A plan-service client. Not `Sync`: give each client thread its own
/// (they are cheap — a client holds no connection between requests).
pub struct PlanClient {
    addr: SocketAddr,
    config: ClientConfig,
    rng: Rng64,
    counters: ClientCounters,
}

impl PlanClient {
    /// A client for the server at `addr`.
    ///
    /// # Errors
    ///
    /// Address resolution failures.
    pub fn connect(addr: impl ToSocketAddrs, config: ClientConfig) -> io::Result<Self> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "address resolved empty"))?;
        let rng = Rng64::new(config.seed);
        Ok(Self { addr, config, rng, counters: ClientCounters::default() })
    }

    /// Counter snapshot.
    #[must_use]
    pub fn counters(&self) -> ClientCounters {
        self.counters
    }

    /// Requests a plan, encoding `request` for the wire. Retries per the
    /// configured policy.
    ///
    /// # Errors
    ///
    /// The last attempt's error once retries are exhausted, or the first
    /// non-retryable error.
    pub fn plan(&mut self, request: &PlanRequest) -> Result<PartitionOutput, ClientError> {
        let payload = encode_request(request);
        let bytes = self.plan_bytes(&payload)?;
        decode_plan(&bytes).map_err(ClientError::Codec)
    }

    /// Requests a plan from an already-encoded request payload (the load
    /// generator encodes each workload once and replays the bytes).
    ///
    /// # Errors
    ///
    /// Same as [`PlanClient::plan`].
    pub fn plan_bytes(&mut self, request_payload: &[u8]) -> Result<Vec<u8>, ClientError> {
        let out = self.with_retry(|client| {
            let (kind, payload) = client.exchange(FrameKind::PlanRequest, request_payload)?;
            match kind {
                FrameKind::PlanOk => Ok(payload),
                FrameKind::Error => {
                    let (code, msg) = decode_error(&payload);
                    Err(ClientError::Server(code, msg))
                }
                other => Err(ClientError::Protocol(format!("unexpected response {other:?}"))),
            }
        });
        match &out {
            Ok(_) => self.counters.ok += 1,
            Err(_) => self.counters.failed += 1,
        }
        out
    }

    /// Fetches the server's stats snapshot (no retry — stats are
    /// advisory).
    ///
    /// # Errors
    ///
    /// Socket, server or decode failures.
    pub fn stats(&mut self) -> Result<ServeStats, ClientError> {
        let (kind, payload) = self.exchange(FrameKind::StatsRequest, &[])?;
        match kind {
            FrameKind::StatsOk => decode_stats(&payload).map_err(ClientError::Codec),
            FrameKind::Error => {
                let (code, msg) = decode_error(&payload);
                Err(ClientError::Server(code, msg))
            }
            other => Err(ClientError::Protocol(format!("unexpected response {other:?}"))),
        }
    }

    fn with_retry<T>(
        &mut self,
        mut attempt: impl FnMut(&mut Self) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let mut tries = 0u32;
        loop {
            self.counters.attempts += 1;
            match attempt(self) {
                Ok(v) => return Ok(v),
                Err(e) if e.retryable() && tries < self.config.max_retries => {
                    tries += 1;
                    self.counters.retries += 1;
                    self.backoff(tries);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Sleeps `base · 2^(attempt−1)`, capped, jittered into `[50%, 100%]`
    /// so synchronized clients decorrelate.
    fn backoff(&mut self, attempt: u32) {
        let exp = self
            .config
            .backoff_base
            .saturating_mul(1u32 << (attempt - 1).min(16))
            .min(self.config.backoff_max);
        let jitter = 0.5 + 0.5 * self.rng.next_f64();
        let slept = exp.mul_f64(jitter);
        self.counters.backoff += slept;
        std::thread::sleep(slept);
    }

    /// One connect–send–receive exchange.
    fn exchange(
        &mut self,
        kind: FrameKind,
        payload: &[u8],
    ) -> Result<(FrameKind, Vec<u8>), ClientError> {
        let mut stream = TcpStream::connect_timeout(&self.addr, self.config.connect_timeout)
            .map_err(|e| ClientError::Io(e.to_string()))?;
        stream
            .set_read_timeout(Some(self.config.io_timeout))
            .and_then(|()| stream.set_write_timeout(Some(self.config.io_timeout)))
            .map_err(|e| ClientError::Io(e.to_string()))?;
        write_frame(&mut stream, kind, payload).map_err(|e| ClientError::Io(e.to_string()))?;
        read_frame(&mut stream).map_err(|e| match e {
            // Socket failures (including a server that died mid-response)
            // are retryable. A checksum mismatch is corruption *in
            // transit* — the server never sends a frame that fails its
            // own checksum — so a fresh attempt is the right response,
            // and the torn payload is never surfaced. A decodable-but-
            // wrong frame is not retryable: the peer is not speaking this
            // protocol.
            WireError::Io(io) => ClientError::Io(io.to_string()),
            WireError::Closed => ClientError::Io("closed before response".to_string()),
            WireError::BadChecksum => ClientError::Io("response checksum mismatch".to_string()),
            malformed => ClientError::Protocol(malformed.to_string()),
        })
    }
}
