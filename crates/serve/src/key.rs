//! Plan requests and their content-addressed cache keys.

use dmcp_core::PartitionConfig;
use dmcp_ir::program::DataStore;
use dmcp_ir::{Program, StableHash, StableHasher};
use dmcp_mach::{rng::mix, FaultPlan, MachineConfig};

/// The content address of one compilation: fingerprints of everything that
/// determines the partitioner's output. Two requests with equal keys
/// compile bit-identical [`dmcp_core::PartitionOutput`]s, which is the
/// invariant the plan cache rests on (and the determinism test pins).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlanKey {
    /// Structural hash of the program, folded with the inspector data the
    /// planner resolves indirect references through.
    pub program: u64,
    /// Machine-description fingerprint.
    pub machine: u64,
    /// Partitioner-configuration fingerprint.
    pub config: u64,
    /// Fault-plan fingerprint (the healthy plan's own fingerprint when the
    /// request carries no faults, so healthy and degraded never collide).
    pub faults: u64,
}

impl PlanKey {
    /// A single mixed word summarising the key — used for shard selection.
    #[must_use]
    pub fn digest(self) -> u64 {
        mix(mix(mix(mix(self.program) ^ self.machine) ^ self.config) ^ self.faults)
    }
}

/// One unit of work for the service: everything the partitioner needs.
///
/// The request owns its program and data so it can cross the thread
/// boundary into the worker pool; workloads are cheap to clone at the
/// scales the service runs.
#[derive(Clone, Debug)]
pub struct PlanRequest {
    /// The program to partition.
    pub program: Program,
    /// Inspector data for indirect references; `None` uses the program's
    /// deterministic initial data.
    pub data: Option<DataStore>,
    /// The machine to partition for.
    pub machine: MachineConfig,
    /// Partitioner configuration.
    pub config: PartitionConfig,
    /// Faults to degrade the machine with; `None` compiles for the healthy
    /// mesh.
    pub faults: Option<FaultPlan>,
}

impl PlanRequest {
    /// A healthy-machine request with default inspector data.
    #[must_use]
    pub fn new(program: Program, machine: MachineConfig, config: PartitionConfig) -> Self {
        Self { program, data: None, machine, config, faults: None }
    }

    /// Attaches inspector data (workload-installed index arrays).
    #[must_use]
    pub fn with_data(mut self, data: DataStore) -> Self {
        self.data = Some(data);
        self
    }

    /// Attaches a fault plan — the compile runs in degraded mode.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Derives the request's content-addressed cache key.
    #[must_use]
    pub fn key(&self) -> PlanKey {
        let mut ph = StableHasher::new();
        self.program.stable_hash(&mut ph);
        match &self.data {
            None => ph.write_u8(0),
            Some(d) => {
                ph.write_u8(1);
                d.stable_hash(&mut ph);
            }
        }
        PlanKey {
            program: ph.finish(),
            machine: self.machine.fingerprint(),
            config: self.config.fingerprint(),
            faults: self.faults.clone().unwrap_or_else(FaultPlan::healthy).fingerprint(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmcp_ir::ProgramBuilder;
    use dmcp_mach::NodeId;

    fn program() -> Program {
        let mut b = ProgramBuilder::new();
        for n in ["A", "B", "C"] {
            b.array(n, &[64], 8);
        }
        b.nest(&[("i", 0, 32)], &["A[i] = B[i] + C[i]"]).unwrap();
        b.build()
    }

    #[test]
    fn key_is_stable_and_componentwise() {
        let req = PlanRequest::new(program(), MachineConfig::knl_like(), <_>::default());
        assert_eq!(req.key(), req.key());

        let other_machine = PlanRequest {
            machine: MachineConfig::knl_like().with_mesh(dmcp_mach::Mesh::new(4, 4)),
            ..req.clone()
        };
        assert_eq!(req.key().program, other_machine.key().program);
        assert_ne!(req.key().machine, other_machine.key().machine);

        let mut faults = FaultPlan::healthy();
        faults.kill_node(NodeId::new(1, 1));
        let degraded = req.clone().with_faults(faults);
        assert_ne!(req.key(), degraded.key());
        assert_eq!(req.key().program, degraded.key().program);

        let with_data = req.clone().with_data(req.program.initial_data());
        assert_ne!(req.key().program, with_data.key().program);
    }

    #[test]
    fn digest_spreads_component_changes() {
        let req = PlanRequest::new(program(), MachineConfig::knl_like(), <_>::default());
        let base = req.key().digest();
        let degraded = req.with_faults(FaultPlan::with_seed(1)).key().digest();
        assert_ne!(base, degraded);
    }
}
