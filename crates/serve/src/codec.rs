//! Binary serialization of plan requests, compiled plans and service
//! statistics — the byte layer shared by the wire protocol ([`crate::wire`])
//! and the durable disk tier ([`crate::disk`]).
//!
//! The codec is hand-rolled (the workspace takes no external dependencies)
//! and deliberately boring: little-endian fixed-width integers, `f64` as
//! raw IEEE bits (bit-exact round trips, including non-finite values),
//! length-prefixed vectors. Every decoder is *total*: malformed, truncated
//! or oversized input yields a typed [`CodecError`], never a panic, hang or
//! unbounded allocation (length prefixes are validated against the bytes
//! actually remaining before anything is reserved).
//!
//! Programs cross the boundary as structure, not spelling: arrays and loop
//! variables are rendered under canonical names (`a0, a1, …` / `v0, v1, …`)
//! and statements as the surface syntax the parser accepts (the printer is
//! pinned by `parse(print(x)) == x` property tests), plus the per-reference
//! analyzability flags the text cannot carry. Identifier names are not
//! semantic — [`crate::PlanKey`] hashes are name-independent — so
//! `decode(encode(request))` has the same key and compiles the bit-identical
//! plan.

use crate::service::ServeStats;
use dmcp_core::partitioner::PredictorSpec;
use dmcp_core::{
    ElemLoc, NestPartition, Operand, PartitionConfig, PartitionOutput, Schedule, Step, StepInput,
    StmtTag, StoreTarget, SubId,
};
use dmcp_core::{NestStats, OpMix, StmtRecord};
use dmcp_ir::display::statement_to_string;
use dmcp_ir::{BinOp, Program, ProgramBuilder};
use dmcp_mach::{ClusterMode, FaultPlan, MachineConfig, Mesh, NodeId};
use dmcp_mem::{LineAddr, PagePolicy};
use std::fmt;

use crate::cache::CacheStats;
use crate::disk::DiskStats;
use crate::key::PlanRequest;

/// Codec version byte leading every encoded request.
pub const REQUEST_CODEC_V1: u8 = 1;
/// Codec version byte leading every encoded plan.
pub const PLAN_CODEC_V1: u8 = 2;
/// Codec version byte leading every encoded stats snapshot (superseded
/// by [`STATS_CODEC_V2`]; kept so old captures are recognizably old).
pub const STATS_CODEC_V1: u8 = 3;
/// Current stats codec: v1 plus the chaos-era counters (worker panics,
/// disk errors, quarantined segments, pending records, degraded flag).
pub const STATS_CODEC_V2: u8 = 4;

/// A typed decode failure. Encoders are infallible.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the value it promised.
    Truncated,
    /// An enum/option tag byte had no meaning.
    BadTag(&'static str, u8),
    /// A version byte did not match the codec.
    BadVersion(&'static str, u8),
    /// A length prefix promised more elements than the remaining bytes
    /// could possibly hold.
    Oversized(&'static str),
    /// A decoded value violated a structural invariant (mesh too small,
    /// node off the mesh, flag count mismatch, …).
    Invalid(String),
    /// A transported statement failed to re-parse (corrupt text).
    Parse(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => f.write_str("input truncated"),
            CodecError::BadTag(what, tag) => write!(f, "bad {what} tag {tag:#x}"),
            CodecError::BadVersion(what, v) => write!(f, "unsupported {what} codec version {v}"),
            CodecError::Oversized(what) => write!(f, "{what} length exceeds remaining input"),
            CodecError::Invalid(msg) => write!(f, "invalid value: {msg}"),
            CodecError::Parse(msg) => write!(f, "statement reparse failed: {msg}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// FNV-1a over a byte slice — the checksum used by wire frames and disk
/// records. Not cryptographic; it detects truncation and corruption, which
/// is all the crash-safety story needs. The fold itself is the shared
/// `dmcp-hash` primitive; this re-export keeps the historical path.
pub use dmcp_hash::fnv1a64;

/// Little-endian byte writer.
#[derive(Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    #[must_use]
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Little-endian byte reader over a borrowed slice.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A reader over `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    pub fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    pub fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a vector length prefix and validates it against the bytes
    /// remaining: each promised element needs at least `min_elem_bytes`, so
    /// a garbage length cannot trigger a huge allocation.
    pub fn len(&mut self, what: &'static str, min_elem_bytes: usize) -> Result<usize, CodecError> {
        let n = self.u64()?;
        let fits = usize::try_from(n)
            .ok()
            .and_then(|n| n.checked_mul(min_elem_bytes.max(1)))
            .is_some_and(|need| need <= self.remaining());
        if !fits {
            return Err(CodecError::Oversized(what));
        }
        Ok(n as usize)
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self, what: &'static str) -> Result<&'a str, CodecError> {
        let n = self.len(what, 1)?;
        std::str::from_utf8(self.take(n)?)
            .map_err(|_| CodecError::Invalid(format!("{what} is not UTF-8")))
    }
}

fn enc_node(e: &mut Enc, n: NodeId) {
    e.u16(n.x());
    e.u16(n.y());
}

fn dec_node(d: &mut Dec<'_>) -> Result<NodeId, CodecError> {
    let x = d.u16()?;
    let y = d.u16()?;
    Ok(NodeId::new(x, y))
}

fn binop_to_u8(op: BinOp) -> u8 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::Div => 3,
        BinOp::And => 4,
        BinOp::Or => 5,
        BinOp::Xor => 6,
        BinOp::Shl => 7,
        BinOp::Shr => 8,
    }
}

fn binop_from_u8(v: u8) -> Result<BinOp, CodecError> {
    Ok(match v {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::Div,
        4 => BinOp::And,
        5 => BinOp::Or,
        6 => BinOp::Xor,
        7 => BinOp::Shl,
        8 => BinOp::Shr,
        other => return Err(CodecError::BadTag("binop", other)),
    })
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// Canonical array name for table index `k`.
fn array_name(k: usize) -> String {
    format!("a{k}")
}

/// Canonical loop-variable name for depth `d`.
fn var_name(d: usize) -> String {
    format!("v{d}")
}

/// Rebuilds `program` under canonical identifier names. Structure (and thus
/// the name-independent [`crate::PlanKey`]) is untouched; only the symbol
/// table differs, which is display-only.
fn canonicalize(program: &Program) -> Program {
    let mut b = ProgramBuilder::new();
    for (k, a) in program.arrays().iter().enumerate() {
        if a.hot {
            b.hot_array(array_name(k), &a.dims, a.elem_size);
        } else {
            b.array(array_name(k), &a.dims, a.elem_size);
        }
    }
    for nest in program.nests() {
        b.push_nest(nest.clone());
    }
    b.build()
}

/// Collects every reference's analyzability flag in the canonical
/// traversal order (`for_each_ref_mut`: lhs pre-order, then rhs).
fn collect_flags(stmt: &dmcp_ir::Statement) -> Vec<bool> {
    let mut flags = Vec::new();
    let mut probe = stmt.clone();
    probe.for_each_ref_mut(&mut |r| flags.push(r.analyzable));
    flags
}

/// Encodes a full [`PlanRequest`] — everything the server needs to compile
/// on a cache miss.
#[must_use]
pub fn encode_request(req: &PlanRequest) -> Vec<u8> {
    let mut e = Enc::new();
    e.u8(REQUEST_CODEC_V1);

    // Program, under canonical names.
    let canonical = canonicalize(&req.program);
    e.u64(canonical.arrays().len() as u64);
    for a in canonical.arrays() {
        e.u64(a.dims.len() as u64);
        for &d in &a.dims {
            e.u64(d);
        }
        e.u32(a.elem_size);
        e.u8(u8::from(a.hot));
    }
    e.u64(canonical.nests().len() as u64);
    for nest in canonical.nests() {
        let vars: Vec<String> = (0..nest.dims.len()).map(var_name).collect();
        e.u64(nest.dims.len() as u64);
        for d in &nest.dims {
            e.i64(d.lo);
            e.i64(d.hi);
        }
        e.u64(nest.body.len() as u64);
        for stmt in &nest.body {
            e.str(&statement_to_string(stmt, &canonical, &vars));
            let flags = collect_flags(stmt);
            e.u64(flags.len() as u64);
            for f in flags {
                e.u8(u8::from(f));
            }
        }
    }

    // Inspector data.
    match &req.data {
        None => e.u8(0),
        Some(data) => {
            e.u8(1);
            e.u64(data.array_count() as u64);
            for k in 0..data.array_count() {
                let id = dmcp_ir::ArrayId::from_index(k);
                let len = data.len_of(id);
                e.u64(len);
                for elem in 0..len {
                    e.f64(data.get(id, elem));
                }
            }
        }
    }

    // Machine.
    let m = &req.machine;
    e.u16(m.mesh.cols());
    e.u16(m.mesh.rows());
    e.u8(match m.cluster {
        ClusterMode::AllToAll => 0,
        ClusterMode::Quadrant => 1,
        ClusterMode::Snc4 => 2,
    });
    e.u32(m.cache_line);
    e.u32(m.page_size);
    e.u32(m.l1_bytes);
    e.u32(m.l1_ways);
    e.u32(m.l2_bank_bytes);
    e.u32(m.l2_ways);
    for v in [
        m.latency.hop,
        m.latency.l1_hit,
        m.latency.l2_hit,
        m.latency.fast_mem,
        m.latency.slow_mem,
        m.latency.sync,
        m.latency.op,
        m.latency.div_factor,
        m.latency.contention,
    ] {
        e.f64(v);
    }
    for v in [
        m.energy.link,
        m.energy.l1,
        m.energy.l2,
        m.energy.fast_mem,
        m.energy.slow_mem,
        m.energy.op,
        m.energy.static_per_cycle,
    ] {
        e.f64(v);
    }

    // Partitioner configuration.
    let c = &req.config;
    e.u8(match c.page_policy {
        PagePolicy::ColorPreserving => 0,
        PagePolicy::Scramble => 1,
    });
    e.u8(u8::from(c.opts.reuse_aware));
    e.u8(u8::from(c.opts.ideal_analysis));
    e.f64(c.opts.balance_threshold);
    e.f64(c.opts.split_threshold);
    e.u8(u8::from(c.opts.steiner));
    e.u8(match c.predictor {
        PredictorSpec::Reuse => 0,
        PredictorSpec::L2Model => 1,
        PredictorSpec::AlwaysHit => 2,
    });
    e.u64(c.max_window as u64);
    e.u64(c.search_sample);
    match c.fixed_window {
        None => e.u8(0),
        Some(w) => {
            e.u8(1);
            e.u64(w as u64);
        }
    }
    match &c.assignment {
        None => e.u8(0),
        Some(nodes) => {
            e.u8(1);
            e.u64(nodes.len() as u64);
            for &n in nodes {
                enc_node(&mut e, n);
            }
        }
    }

    // Faults.
    match &req.faults {
        None => e.u8(0),
        Some(plan) => {
            e.u8(1);
            e.u64(plan.seed());
            let dead_nodes: Vec<NodeId> = plan.dead_nodes().collect();
            e.u64(dead_nodes.len() as u64);
            for n in dead_nodes {
                enc_node(&mut e, n);
            }
            let dead_links: Vec<(NodeId, NodeId)> = plan.dead_links().collect();
            e.u64(dead_links.len() as u64);
            for (a, b) in dead_links {
                enc_node(&mut e, a);
                enc_node(&mut e, b);
            }
            let lossy: Vec<(NodeId, NodeId, f64)> = plan.lossy_links().collect();
            e.u64(lossy.len() as u64);
            for (a, b, p) in lossy {
                enc_node(&mut e, a);
                enc_node(&mut e, b);
                e.f64(p);
            }
        }
    }

    e.finish()
}

/// Decodes a [`PlanRequest`]. Total: every malformed input is a typed
/// error.
///
/// # Errors
///
/// [`CodecError`] on truncated, oversized or structurally invalid input.
pub fn decode_request(bytes: &[u8]) -> Result<PlanRequest, CodecError> {
    let mut d = Dec::new(bytes);
    let version = d.u8()?;
    if version != REQUEST_CODEC_V1 {
        return Err(CodecError::BadVersion("request", version));
    }

    // Program.
    let mut b = ProgramBuilder::new();
    let narrays = d.len("arrays", 14)?;
    for k in 0..narrays {
        let ndims = d.len("array dims", 8)?;
        if ndims == 0 {
            return Err(CodecError::Invalid(format!("array {k} has no dimensions")));
        }
        let mut dims = Vec::with_capacity(ndims);
        for _ in 0..ndims {
            let ext = d.u64()?;
            if ext == 0 || ext > 1 << 32 {
                return Err(CodecError::Invalid(format!("array {k} extent {ext} out of range")));
            }
            dims.push(ext);
        }
        let total: u64 = dims.iter().product();
        if total > 1 << 32 {
            return Err(CodecError::Invalid(format!("array {k} has {total} elements")));
        }
        let elem_size = d.u32()?;
        if elem_size == 0 || elem_size > 4096 {
            return Err(CodecError::Invalid(format!("array {k} elem size {elem_size}")));
        }
        let hot = d.u8()? != 0;
        if hot {
            b.hot_array(array_name(k), &dims, elem_size);
        } else {
            b.array(array_name(k), &dims, elem_size);
        }
    }
    let nnests = d.len("nests", 17)?;
    struct NestFlags {
        per_stmt: Vec<Vec<bool>>,
    }
    let mut all_flags: Vec<NestFlags> = Vec::with_capacity(nnests);
    for _ in 0..nnests {
        let ndims = d.len("nest dims", 16)?;
        if ndims == 0 {
            return Err(CodecError::Invalid("nest has no loops".into()));
        }
        let mut bounds = Vec::with_capacity(ndims);
        for _ in 0..ndims {
            let lo = d.i64()?;
            let hi = d.i64()?;
            bounds.push((lo, hi));
        }
        let vars: Vec<String> = (0..ndims).map(var_name).collect();
        let loops: Vec<(&str, i64, i64)> =
            vars.iter().zip(&bounds).map(|(v, &(lo, hi))| (v.as_str(), lo, hi)).collect();
        let nstmts = d.len("statements", 9)?;
        let mut texts = Vec::with_capacity(nstmts);
        let mut per_stmt = Vec::with_capacity(nstmts);
        for _ in 0..nstmts {
            texts.push(d.str("statement")?.to_string());
            let nflags = d.len("flags", 1)?;
            let mut flags = Vec::with_capacity(nflags);
            for _ in 0..nflags {
                flags.push(d.u8()? != 0);
            }
            per_stmt.push(flags);
        }
        let text_refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        b.nest(&loops, &text_refs).map_err(|e| CodecError::Parse(e.to_string()))?;
        all_flags.push(NestFlags { per_stmt });
    }
    let mut program = b.build();
    for (nest, flags) in program.nests_mut().iter_mut().zip(&all_flags) {
        if nest.body.len() != flags.per_stmt.len() {
            return Err(CodecError::Invalid("statement count drifted across reparse".into()));
        }
        for (stmt, flags) in nest.body.iter_mut().zip(&flags.per_stmt) {
            let mut k = 0usize;
            let mut mismatch = false;
            stmt.for_each_ref_mut(&mut |r| {
                match flags.get(k) {
                    Some(&f) => r.analyzable = f,
                    None => mismatch = true,
                }
                k += 1;
            });
            if mismatch || k != flags.len() {
                return Err(CodecError::Invalid(format!(
                    "statement has {k} references but {} flags",
                    flags.len()
                )));
            }
        }
    }

    // Inspector data.
    let data = match d.u8()? {
        0 => None,
        1 => {
            let count = d.len("data arrays", 8)?;
            if count != program.arrays().len() {
                return Err(CodecError::Invalid(format!(
                    "data covers {count} arrays, program declares {}",
                    program.arrays().len()
                )));
            }
            let mut store = program.initial_data();
            for k in 0..count {
                let id = dmcp_ir::ArrayId::from_index(k);
                let len = d.len("data elements", 8)? as u64;
                if len != store.len_of(id) {
                    return Err(CodecError::Invalid(format!(
                        "data array {k} has {len} elements, declared {}",
                        store.len_of(id)
                    )));
                }
                let mut values = Vec::with_capacity(len as usize);
                for _ in 0..len {
                    values.push(d.f64()?);
                }
                store.fill(id, &values);
            }
            Some(store)
        }
        other => return Err(CodecError::BadTag("data presence", other)),
    };

    // Machine.
    let cols = d.u16()?;
    let rows = d.u16()?;
    if cols == 0 || rows == 0 || u32::from(cols) * u32::from(rows) < 4 || cols > 256 || rows > 256 {
        return Err(CodecError::Invalid(format!("mesh {cols}x{rows} out of range")));
    }
    let mesh = Mesh::new(cols, rows);
    let cluster = match d.u8()? {
        0 => ClusterMode::AllToAll,
        1 => ClusterMode::Quadrant,
        2 => ClusterMode::Snc4,
        other => return Err(CodecError::BadTag("cluster mode", other)),
    };
    let mut machine = MachineConfig::knl_like().with_mesh(mesh).with_cluster(cluster);
    machine.cache_line = d.u32()?;
    machine.page_size = d.u32()?;
    machine.l1_bytes = d.u32()?;
    machine.l1_ways = d.u32()?;
    machine.l2_bank_bytes = d.u32()?;
    machine.l2_ways = d.u32()?;
    if machine.cache_line == 0 || machine.l1_ways == 0 || machine.l2_ways == 0 {
        return Err(CodecError::Invalid("zero cache geometry".into()));
    }
    machine.latency.hop = d.f64()?;
    machine.latency.l1_hit = d.f64()?;
    machine.latency.l2_hit = d.f64()?;
    machine.latency.fast_mem = d.f64()?;
    machine.latency.slow_mem = d.f64()?;
    machine.latency.sync = d.f64()?;
    machine.latency.op = d.f64()?;
    machine.latency.div_factor = d.f64()?;
    machine.latency.contention = d.f64()?;
    machine.energy.link = d.f64()?;
    machine.energy.l1 = d.f64()?;
    machine.energy.l2 = d.f64()?;
    machine.energy.fast_mem = d.f64()?;
    machine.energy.slow_mem = d.f64()?;
    machine.energy.op = d.f64()?;
    machine.energy.static_per_cycle = d.f64()?;

    // Partitioner configuration.
    let mut config = PartitionConfig {
        page_policy: match d.u8()? {
            0 => PagePolicy::ColorPreserving,
            1 => PagePolicy::Scramble,
            other => return Err(CodecError::BadTag("page policy", other)),
        },
        ..PartitionConfig::default()
    };
    config.opts.reuse_aware = d.u8()? != 0;
    config.opts.ideal_analysis = d.u8()? != 0;
    config.opts.balance_threshold = d.f64()?;
    config.opts.split_threshold = d.f64()?;
    config.opts.steiner = d.u8()? != 0;
    config.predictor = match d.u8()? {
        0 => PredictorSpec::Reuse,
        1 => PredictorSpec::L2Model,
        2 => PredictorSpec::AlwaysHit,
        other => return Err(CodecError::BadTag("predictor", other)),
    };
    config.max_window = d.u64()? as usize;
    config.search_sample = d.u64()?;
    config.fixed_window = match d.u8()? {
        0 => None,
        1 => Some(d.u64()? as usize),
        other => return Err(CodecError::BadTag("fixed window", other)),
    };
    config.assignment = match d.u8()? {
        0 => None,
        1 => {
            let n = d.len("assignment", 4)?;
            let mut nodes = Vec::with_capacity(n);
            for _ in 0..n {
                let node = dec_node(&mut d)?;
                if node.x() >= cols || node.y() >= rows {
                    return Err(CodecError::Invalid(format!("assignment node {node:?} off mesh")));
                }
                nodes.push(node);
            }
            Some(nodes)
        }
        other => return Err(CodecError::BadTag("assignment", other)),
    };

    // Faults.
    let faults = match d.u8()? {
        0 => None,
        1 => {
            let seed = d.u64()?;
            let mut plan = FaultPlan::with_seed(seed);
            let off_mesh = |n: NodeId| n.x() >= cols || n.y() >= rows;
            for _ in 0..d.len("dead nodes", 4)? {
                let n = dec_node(&mut d)?;
                if off_mesh(n) {
                    return Err(CodecError::Invalid(format!("dead node {n:?} off mesh")));
                }
                plan.kill_node(n);
            }
            for _ in 0..d.len("dead links", 8)? {
                let a = dec_node(&mut d)?;
                let b = dec_node(&mut d)?;
                if off_mesh(a) || off_mesh(b) {
                    return Err(CodecError::Invalid("dead link endpoint off mesh".into()));
                }
                plan.kill_link(a, b);
            }
            for _ in 0..d.len("lossy links", 16)? {
                let a = dec_node(&mut d)?;
                let b = dec_node(&mut d)?;
                let p = d.f64()?;
                if off_mesh(a) || off_mesh(b) {
                    return Err(CodecError::Invalid("lossy link endpoint off mesh".into()));
                }
                if !(0.0..=1.0).contains(&p) {
                    return Err(CodecError::Invalid(format!("drop probability {p}")));
                }
                plan.lossy_link(a, b, p);
            }
            Some(plan)
        }
        other => return Err(CodecError::BadTag("fault presence", other)),
    };

    let mut req = PlanRequest::new(program, machine, config);
    req.data = data;
    req.faults = faults;
    Ok(req)
}

// ---------------------------------------------------------------------------
// Plans
// ---------------------------------------------------------------------------

fn enc_opmix(e: &mut Enc, m: &OpMix) {
    e.u64(m.add_sub);
    e.u64(m.mul_div);
    e.u64(m.other);
}

fn dec_opmix(d: &mut Dec<'_>) -> Result<OpMix, CodecError> {
    Ok(OpMix { add_sub: d.u64()?, mul_div: d.u64()?, other: d.u64()? })
}

fn enc_tag(e: &mut Enc, t: StmtTag) {
    e.u32(t.nest);
    e.u32(t.stmt);
    e.u64(t.instance);
}

fn dec_tag(d: &mut Dec<'_>) -> Result<StmtTag, CodecError> {
    Ok(StmtTag { nest: d.u32()?, stmt: d.u32()?, instance: d.u64()? })
}

/// Encodes a compiled plan — these are the "plan bytes" the wire protocol
/// serves and the disk tier persists.
#[must_use]
pub fn encode_plan(plan: &PartitionOutput) -> Vec<u8> {
    let mut e = Enc::new();
    e.u8(PLAN_CODEC_V1);
    e.u64(plan.nests.len() as u64);
    for nest in &plan.nests {
        e.u64(nest.nest as u64);
        e.u64(nest.schedule.steps.len() as u64);
        for step in &nest.schedule.steps {
            e.u32(step.id.0);
            enc_node(&mut e, step.node);
            match step.seed {
                None => e.u8(0),
                Some(s) => {
                    e.u8(1);
                    e.f64(s);
                }
            }
            e.u64(step.inputs.len() as u64);
            for input in &step.inputs {
                e.u8(binop_to_u8(input.op));
                match input.operand {
                    Operand::Const(v) => {
                        e.u8(0);
                        e.f64(v);
                    }
                    Operand::Elem(loc) => {
                        e.u8(1);
                        e.u32(loc.array.index() as u32);
                        e.u64(loc.elem);
                        e.u64(loc.line.raw());
                        enc_node(&mut e, loc.believed);
                        e.u8(u8::from(loc.hot));
                    }
                    Operand::Temp(id) => {
                        e.u8(2);
                        e.u32(id.0);
                    }
                }
            }
            match &step.store {
                None => e.u8(0),
                Some(s) => {
                    e.u8(1);
                    e.u32(s.array.index() as u32);
                    e.u64(s.elem);
                    e.u64(s.line.raw());
                    enc_node(&mut e, s.home);
                    e.u8(u8::from(s.hot));
                }
            }
            e.u64(step.waits.len() as u64);
            for w in &step.waits {
                e.u32(w.0);
            }
            enc_tag(&mut e, step.tag);
        }
        let s = &nest.stats;
        e.u64(s.window_size as u64);
        e.u64(s.movement_opt);
        e.u64(s.movement_default);
        e.u64(s.records.len() as u64);
        for r in &s.records {
            enc_tag(&mut e, r.tag);
            e.u64(r.movement_opt);
            e.u64(r.movement_default);
            e.u32(r.parallelism);
            e.u32(r.step_count);
            e.u32(r.planned_l1_hits);
            enc_opmix(&mut e, &r.remapped);
            e.u8(u8::from(r.fallback));
            e.u32(r.first_step);
            e.u32(r.last_step);
        }
        e.u64(s.syncs_before);
        e.u64(s.syncs_after);
        enc_opmix(&mut e, &s.remapped);
        e.u64(s.planned_l1_hits);
        e.u64(s.fallback_count);
        e.u64(s.instances);
    }
    e.finish()
}

/// Decodes plan bytes back into a [`PartitionOutput`], bit-identical to
/// what [`encode_plan`] saw.
///
/// # Errors
///
/// [`CodecError`] on truncated, oversized or structurally invalid input.
pub fn decode_plan(bytes: &[u8]) -> Result<PartitionOutput, CodecError> {
    let mut d = Dec::new(bytes);
    let version = d.u8()?;
    if version != PLAN_CODEC_V1 {
        return Err(CodecError::BadVersion("plan", version));
    }
    let nnests = d.len("plan nests", 16)?;
    let mut nests = Vec::with_capacity(nnests);
    for _ in 0..nnests {
        let nest = d.u64()? as usize;
        let nsteps = d.len("steps", 27)?;
        let mut steps = Vec::with_capacity(nsteps);
        for _ in 0..nsteps {
            let id = SubId(d.u32()?);
            let node = dec_node(&mut d)?;
            let seed = match d.u8()? {
                0 => None,
                1 => Some(d.f64()?),
                other => return Err(CodecError::BadTag("seed", other)),
            };
            let ninputs = d.len("inputs", 2)?;
            let mut inputs = Vec::with_capacity(ninputs);
            for _ in 0..ninputs {
                let op = binop_from_u8(d.u8()?)?;
                let operand = match d.u8()? {
                    0 => Operand::Const(d.f64()?),
                    1 => Operand::Elem(ElemLoc {
                        array: dmcp_ir::ArrayId::from_index(d.u32()? as usize),
                        elem: d.u64()?,
                        line: LineAddr::new(d.u64()?),
                        believed: dec_node(&mut d)?,
                        hot: d.u8()? != 0,
                    }),
                    2 => Operand::Temp(SubId(d.u32()?)),
                    other => return Err(CodecError::BadTag("operand", other)),
                };
                inputs.push(StepInput { op, operand });
            }
            let store = match d.u8()? {
                0 => None,
                1 => Some(StoreTarget {
                    array: dmcp_ir::ArrayId::from_index(d.u32()? as usize),
                    elem: d.u64()?,
                    line: LineAddr::new(d.u64()?),
                    home: dec_node(&mut d)?,
                    hot: d.u8()? != 0,
                }),
                other => return Err(CodecError::BadTag("store", other)),
            };
            let nwaits = d.len("waits", 4)?;
            let mut waits = Vec::with_capacity(nwaits);
            for _ in 0..nwaits {
                waits.push(SubId(d.u32()?));
            }
            let tag = dec_tag(&mut d)?;
            steps.push(Step { id, node, seed, inputs, store, waits, tag });
        }
        let window_size = d.u64()? as usize;
        let movement_opt = d.u64()?;
        let movement_default = d.u64()?;
        let nrecords = d.len("records", 77)?;
        let mut records = Vec::with_capacity(nrecords);
        for _ in 0..nrecords {
            records.push(StmtRecord {
                tag: dec_tag(&mut d)?,
                movement_opt: d.u64()?,
                movement_default: d.u64()?,
                parallelism: d.u32()?,
                step_count: d.u32()?,
                planned_l1_hits: d.u32()?,
                remapped: dec_opmix(&mut d)?,
                fallback: d.u8()? != 0,
                first_step: d.u32()?,
                last_step: d.u32()?,
            });
        }
        let stats = NestStats {
            window_size,
            movement_opt,
            movement_default,
            records,
            syncs_before: d.u64()?,
            syncs_after: d.u64()?,
            remapped: dec_opmix(&mut d)?,
            planned_l1_hits: d.u64()?,
            fallback_count: d.u64()?,
            instances: d.u64()?,
        };
        nests.push(NestPartition { nest, schedule: Schedule { steps }, stats });
    }
    Ok(PartitionOutput::new(nests))
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

/// Encodes a service-stats snapshot (the wire `Stats` response).
#[must_use]
pub fn encode_stats(s: &ServeStats) -> Vec<u8> {
    let mut e = Enc::new();
    e.u8(STATS_CODEC_V2);
    for v in [
        s.cache.hits,
        s.cache.misses,
        s.cache.insertions,
        s.cache.evictions,
        s.cache.entries,
        s.cache.bytes,
        s.compiles,
        s.shared,
        s.submitted,
        s.rejected,
        s.timeouts,
        s.disk.hits,
        s.disk.misses,
        s.disk.writes,
        s.disk.corrupt_drops,
        s.disk.records,
        s.disk.bytes,
        s.disk.recovered_records,
        s.disk.truncated_bytes,
        // v2 additions: chaos-era counters.
        s.panics,
        s.disk.errors,
        s.disk.quarantined_segments,
        s.disk.pending_records,
        u64::from(s.disk.degraded),
    ] {
        e.u64(v);
    }
    e.finish()
}

/// Decodes a service-stats snapshot.
///
/// # Errors
///
/// [`CodecError`] on truncated or version-mismatched input.
pub fn decode_stats(bytes: &[u8]) -> Result<ServeStats, CodecError> {
    let mut d = Dec::new(bytes);
    let version = d.u8()?;
    if version != STATS_CODEC_V2 {
        return Err(CodecError::BadVersion("stats", version));
    }
    let cache = CacheStats {
        hits: d.u64()?,
        misses: d.u64()?,
        insertions: d.u64()?,
        evictions: d.u64()?,
        entries: d.u64()?,
        bytes: d.u64()?,
    };
    let compiles = d.u64()?;
    let shared = d.u64()?;
    let submitted = d.u64()?;
    let rejected = d.u64()?;
    let timeouts = d.u64()?;
    let mut disk = DiskStats {
        hits: d.u64()?,
        misses: d.u64()?,
        writes: d.u64()?,
        corrupt_drops: d.u64()?,
        records: d.u64()?,
        bytes: d.u64()?,
        recovered_records: d.u64()?,
        truncated_bytes: d.u64()?,
        ..DiskStats::default()
    };
    let panics = d.u64()?;
    disk.errors = d.u64()?;
    disk.quarantined_segments = d.u64()?;
    disk.pending_records = d.u64()?;
    disk.degraded = d.u64()? != 0;
    Ok(ServeStats { cache, compiles, shared, submitted, rejected, timeouts, panics, disk })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmcp_mach::rng::Rng64;
    use dmcp_workloads::Scale;

    fn suite_requests() -> Vec<PlanRequest> {
        dmcp_workloads::all(Scale::Tiny)
            .into_iter()
            .map(|w| {
                PlanRequest::new(w.program, MachineConfig::knl_like(), <_>::default())
                    .with_data(w.data)
            })
            .collect()
    }

    #[test]
    fn request_roundtrip_preserves_plan_key_for_the_suite() {
        for req in suite_requests() {
            let bytes = encode_request(&req);
            let decoded = decode_request(&bytes).expect("roundtrip decodes");
            assert_eq!(req.key(), decoded.key(), "wire transport must not change the key");
        }
    }

    #[test]
    fn request_roundtrip_preserves_faults_and_config() {
        let mut req = suite_requests().remove(0);
        let mut faults = FaultPlan::with_seed(0xFA17);
        faults.kill_node(NodeId::new(1, 2));
        faults.kill_link(NodeId::new(0, 0), NodeId::new(0, 1));
        faults.lossy_link(NodeId::new(3, 3), NodeId::new(3, 4), 0.25);
        req.faults = Some(faults);
        req.config.fixed_window = Some(4);
        req.config.opts.reuse_aware = false;
        req.config.opts.steiner = false;
        let decoded = decode_request(&encode_request(&req)).expect("decodes");
        assert_eq!(req.key(), decoded.key());
        assert_eq!(decoded.config.fixed_window, Some(4));
        assert!(!decoded.config.opts.reuse_aware);
        assert!(!decoded.config.opts.steiner);
        let f = decoded.faults.expect("faults survive");
        assert_eq!(f.seed(), 0xFA17);
        assert_eq!(f.dead_nodes().count(), 1);
        assert_eq!(f.dead_links().count(), 1);
        assert_eq!(f.lossy_links().count(), 1);
    }

    #[test]
    fn plan_roundtrip_is_bit_identical_for_the_suite() {
        let service = crate::PlanService::new(crate::ServeConfig::default());
        for req in suite_requests() {
            let plan = service.plan(req).expect("compiles");
            let decoded = decode_plan(&encode_plan(&plan)).expect("plan decodes");
            assert_eq!(*plan, decoded, "plan bytes must round-trip bit-identically");
            assert_eq!(plan.window_sizes(), decoded.window_sizes());
        }
        service.shutdown();
    }

    #[test]
    fn decoded_request_compiles_the_identical_plan() {
        let service = crate::PlanService::new(crate::ServeConfig::default());
        let req = suite_requests().remove(3);
        let direct = service.plan_uncached(&req).expect("direct");
        let decoded = decode_request(&encode_request(&req)).expect("decodes");
        let via_wire = service.plan_uncached(&decoded).expect("decoded compiles");
        assert_eq!(direct, via_wire, "transport must not change the compiled plan");
        service.shutdown();
    }

    #[test]
    fn stats_roundtrip() {
        let mut s = ServeStats { compiles: 7, panics: 1, ..ServeStats::default() };
        s.cache.hits = 11;
        s.disk.hits = 3;
        s.disk.truncated_bytes = 17;
        s.disk.errors = 5;
        s.disk.quarantined_segments = 2;
        s.disk.pending_records = 9;
        s.disk.degraded = true;
        s.timeouts = 2;
        let decoded = decode_stats(&encode_stats(&s)).expect("decodes");
        assert_eq!(format!("{s:?}"), format!("{decoded:?}"));
    }

    #[test]
    fn decoders_survive_random_byte_soup() {
        let mut rng = Rng64::new(0x50_0050);
        for round in 0..256 {
            let len = rng.gen_range(512) as usize;
            let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            // Must return a typed error (or, vanishingly unlikely, decode) —
            // never panic or allocate unboundedly.
            let _ = decode_request(&bytes);
            let _ = decode_plan(&bytes);
            let _ = decode_stats(&bytes);
            let _ = round;
        }
    }

    #[test]
    fn truncation_of_a_valid_request_is_always_a_typed_error() {
        let req = suite_requests().remove(0);
        let bytes = encode_request(&req);
        for cut in [0, 1, 2, bytes.len() / 4, bytes.len() / 2, bytes.len() - 1] {
            let err = decode_request(&bytes[..cut]);
            assert!(err.is_err(), "cut at {cut} must not decode");
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocation() {
        let mut e = Enc::new();
        e.u8(REQUEST_CODEC_V1);
        e.u64(u64::MAX); // array count far beyond the remaining bytes
        let err = decode_request(&e.finish()).unwrap_err();
        assert_eq!(err, CodecError::Oversized("arrays"));
    }

    #[test]
    fn fnv_checksum_spreads_and_detects_flips() {
        let a = fnv1a64(b"hello");
        let mut flipped = b"hello".to_vec();
        flipped[2] ^= 1;
        assert_ne!(a, fnv1a64(&flipped));
        assert_eq!(a, fnv1a64(b"hello"));
    }
}
