//! Synthetic client mix over the 12-application suite.
//!
//! Models the service's intended deployment: many clients repeatedly
//! requesting plans for a small population of programs (job schedulers
//! re-submit the same applications far more often than they submit new
//! ones). Requests are drawn from the suite with a deterministic skew —
//! earlier applications are requested more often — fanned out over client
//! threads, and the run is summarized as throughput, latency percentiles
//! and cache behaviour in a [`MixReport`].

use crate::key::PlanRequest;
use crate::service::{PlanService, ServeConfig, ServeStats};
use dmcp_mach::{rng::Rng64, MachineConfig};
use dmcp_workloads::Scale;
use std::sync::Arc;
use std::time::Instant;

/// Client-mix parameters.
#[derive(Clone, Copy, Debug)]
pub struct MixConfig {
    /// Total requests issued across all clients.
    pub requests: usize,
    /// Client threads issuing requests concurrently.
    pub clients: usize,
    /// Workload scale the programs are built at.
    pub scale: Scale,
    /// Seed for the skewed workload draw.
    pub seed: u64,
}

impl Default for MixConfig {
    fn default() -> Self {
        Self { requests: 64, clients: 4, scale: Scale::Tiny, seed: 0x4d49_5845 }
    }
}

/// Outcome of one client-mix run against a service.
#[derive(Clone, Debug)]
pub struct MixReport {
    /// Label for tables/JSON ("cached", "no-cache", …).
    pub label: String,
    /// Requests completed successfully.
    pub completed: usize,
    /// Wall-clock for the whole mix, seconds.
    pub wall_s: f64,
    /// Completed requests per wall-clock second.
    pub throughput: f64,
    /// Mean request latency, milliseconds.
    pub lat_avg_ms: f64,
    /// Median request latency, milliseconds.
    pub lat_p50_ms: f64,
    /// 95th-percentile request latency, milliseconds.
    pub lat_p95_ms: f64,
    /// 99th-percentile request latency, milliseconds.
    pub lat_p99_ms: f64,
    /// Worst request latency, milliseconds.
    pub lat_max_ms: f64,
    /// Service counters at the end of the run.
    pub stats: ServeStats,
}

/// Draws the per-request workload indices: a deterministic skew where
/// workload `k` of `n` is roughly twice as likely as workload `k + n/2`.
fn draw_indices(config: &MixConfig, population: usize) -> Vec<usize> {
    let mut rng = Rng64::new(config.seed);
    (0..config.requests)
        .map(|_| {
            // Sum of two uniform draws, folded: biases toward low indices.
            let a = rng.gen_range(population as u64);
            let b = rng.gen_range(population as u64);
            (a.min(b)) as usize
        })
        .collect()
}

/// Runs `config.requests` requests from `config.clients` threads against
/// `service` and reports aggregate throughput and latency.
///
/// Every request is a healthy-machine compile of one of the 12 paper
/// workloads (with its inspector data attached, so indirect accesses
/// resolve exactly as in the benchmarks). The draw is deterministic in
/// `config.seed`, so cached and no-cache services see the identical mix.
///
/// # Panics
///
/// Panics if any request fails — the mix only issues valid requests.
#[must_use]
pub fn run_client_mix(service: &PlanService, config: &MixConfig, label: &str) -> MixReport {
    let suite = dmcp_workloads::all(config.scale);
    let requests: Vec<PlanRequest> = suite
        .into_iter()
        .map(|w| {
            PlanRequest::new(w.program, MachineConfig::knl_like(), <_>::default()).with_data(w.data)
        })
        .collect();
    let indices = draw_indices(config, requests.len());

    let clients = config.clients.max(1);
    let requests = Arc::new(requests);
    let start = Instant::now();
    let mut latencies: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let requests = Arc::clone(&requests);
                let slice: Vec<usize> = indices.iter().copied().skip(c).step_by(clients).collect();
                scope.spawn(move || {
                    let mut lats = Vec::with_capacity(slice.len());
                    for w in slice {
                        let req = requests[w].clone();
                        let t0 = Instant::now();
                        // Blocking plan(): submit retries are the service's
                        // backpressure story, but the mix sizes its queue
                        // to admit everything, so QueueFull is a bug here.
                        let plan = service.plan(req).expect("mix request failed");
                        lats.push(t0.elapsed().as_secs_f64() * 1e3);
                        assert!(!plan.nests.is_empty());
                    }
                    lats
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("client panicked")).collect()
    });
    let wall_s = start.elapsed().as_secs_f64();

    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let completed = latencies.len();
    let pct = |p: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let idx = ((latencies.len() - 1) as f64 * p).round() as usize;
        latencies[idx]
    };
    MixReport {
        label: label.to_string(),
        completed,
        wall_s,
        throughput: if wall_s > 0.0 { completed as f64 / wall_s } else { 0.0 },
        lat_avg_ms: if completed == 0 {
            0.0
        } else {
            latencies.iter().sum::<f64>() / completed as f64
        },
        lat_p50_ms: pct(0.50),
        lat_p95_ms: pct(0.95),
        lat_p99_ms: pct(0.99),
        lat_max_ms: latencies.last().copied().unwrap_or(0.0),
        stats: service.stats(),
    }
}

/// Runs the standard cached-vs-uncached comparison: the same deterministic
/// mix against a caching service and against a baseline with the cache and
/// single-flight disabled. Returns `(cached, uncached)`.
#[must_use]
pub fn run_comparison(mix: &MixConfig, serve: &ServeConfig) -> (MixReport, MixReport) {
    let cached = PlanService::new(serve.clone());
    let cached_report = run_client_mix(&cached, mix, "cached");
    cached.shutdown();

    let baseline =
        PlanService::new(ServeConfig { cache_bytes: 0, single_flight: false, ..serve.clone() });
    let uncached_report = run_client_mix(&baseline, mix, "no-cache");
    baseline.shutdown();

    (cached_report, uncached_report)
}

/// Renders reports as an aligned text table.
#[must_use]
pub fn render_table(reports: &[MixReport]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<10} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>8} {:>9}\n",
        "run",
        "requests",
        "req/s",
        "avg ms",
        "p50 ms",
        "p95 ms",
        "p99 ms",
        "max ms",
        "compiles",
        "hit rate"
    ));
    for r in reports {
        out.push_str(&format!(
            "{:<10} {:>8} {:>9.1} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>8} {:>8.1}%\n",
            r.label,
            r.completed,
            r.throughput,
            r.lat_avg_ms,
            r.lat_p50_ms,
            r.lat_p95_ms,
            r.lat_p99_ms,
            r.lat_max_ms,
            r.stats.compiles,
            r.stats.cache.hit_rate() * 100.0,
        ));
    }
    out
}

/// Serializes reports (plus the cached-over-uncached speedup) as JSON for
/// `BENCH_serve.json`. Hand-rolled: the workspace takes no external
/// dependencies.
#[must_use]
pub fn render_json(reports: &[MixReport], speedup: f64) -> String {
    let mut out = String::from("{\n  \"benchmark\": \"dmcp-serve client mix\",\n");
    out.push_str(&format!("  \"speedup_cached_over_uncached\": {speedup:.3},\n"));
    out.push_str("  \"runs\": [\n");
    for (i, r) in reports.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "    {{\"label\": \"{}\", \"requests\": {}, \"wall_s\": {:.6}, ",
                "\"throughput_rps\": {:.3}, \"lat_avg_ms\": {:.4}, \"lat_p50_ms\": {:.4}, ",
                "\"lat_p95_ms\": {:.4}, \"lat_p99_ms\": {:.4}, \"lat_max_ms\": {:.4}, ",
                "\"compiles\": {}, ",
                "\"cache_hits\": {}, \"cache_misses\": {}, \"cache_evictions\": {}, ",
                "\"shared\": {}, \"hit_rate\": {:.4}}}{}\n",
            ),
            r.label,
            r.completed,
            r.wall_s,
            r.throughput,
            r.lat_avg_ms,
            r.lat_p50_ms,
            r.lat_p95_ms,
            r.lat_p99_ms,
            r.lat_max_ms,
            r.stats.compiles,
            r.stats.cache.hits,
            r.stats.cache.misses,
            r.stats.cache.evictions,
            r.stats.shared,
            r.stats.cache.hit_rate(),
            if i + 1 == reports.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draw_is_deterministic_and_skewed() {
        let cfg = MixConfig { requests: 512, ..MixConfig::default() };
        let a = draw_indices(&cfg, 12);
        let b = draw_indices(&cfg, 12);
        assert_eq!(a, b);
        assert!(a.iter().all(|&i| i < 12));
        let low = a.iter().filter(|&&i| i < 6).count();
        assert!(low * 2 > a.len(), "min-of-two draw favours low indices");
    }

    #[test]
    fn mix_hits_cache_on_repeats() {
        let service = PlanService::new(ServeConfig::default());
        let cfg = MixConfig { requests: 24, clients: 2, ..MixConfig::default() };
        let report = run_client_mix(&service, &cfg, "test");
        assert_eq!(report.completed, 24);
        // 12 distinct keys at most — repeats must be served by the cache
        // or joined in flight, never recompiled.
        assert!(report.stats.compiles <= 12);
        assert!(report.throughput > 0.0);
        assert!(report.lat_p50_ms <= report.lat_p95_ms);
        assert!(report.lat_p95_ms <= report.lat_p99_ms);
        assert!(report.lat_p99_ms <= report.lat_max_ms);
        service.shutdown();
    }

    #[test]
    fn json_and_table_render() {
        let service = PlanService::new(ServeConfig::default());
        let cfg = MixConfig { requests: 4, clients: 1, ..MixConfig::default() };
        let report = run_client_mix(&service, &cfg, "smoke");
        let table = render_table(std::slice::from_ref(&report));
        assert!(table.contains("smoke"));
        let json = render_json(std::slice::from_ref(&report), 1.0);
        assert!(json.contains("\"label\": \"smoke\""));
        assert!(json.contains("\"speedup_cached_over_uncached\": 1.000"));
        service.shutdown();
    }
}
