//! The length-prefixed binary frame protocol `dmcp-serve` speaks over TCP.
//!
//! # Frame layout
//!
//! ```text
//! magic     u32   0x444D_4350 ("DMCP")
//! version   u8    1
//! kind      u8    FrameKind
//! reserved  u16   0
//! len       u32   payload length in bytes
//! payload   len bytes
//! checksum  u64   FNV-1a over the payload
//! ```
//!
//! Requests carry an encoded [`crate::key::PlanRequest`]
//! ([`FrameKind::PlanRequest`]) or nothing ([`FrameKind::StatsRequest`]);
//! responses carry encoded plan bytes, an encoded stats snapshot, or a
//! typed error ([`ErrorCode`] + message). The reader is *total*: a bad
//! magic, version, kind, oversized length, short read or checksum mismatch
//! is a typed [`WireError`], never a panic, hang (reads are bounded by the
//! socket's read timeout) or unbounded allocation (the length field is
//! checked against [`MAX_FRAME_BYTES`] before any buffer is sized).

use crate::codec::{fnv1a64, Dec, Enc};
use crate::service::ServeError;
use std::fmt;
use std::io::{self, Read, Write};

/// Frame magic ("DMCP").
pub const FRAME_MAGIC: u32 = 0x444D_4350;
/// Protocol version.
pub const WIRE_VERSION: u8 = 1;
/// Fixed bytes before the payload.
pub const FRAME_HEADER_BYTES: usize = 12;
/// Hard ceiling on one frame's payload; larger lengths are rejected
/// before allocation.
pub const MAX_FRAME_BYTES: u32 = 64 << 20;

/// What a frame carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameKind {
    /// Client → server: an encoded plan request.
    PlanRequest,
    /// Client → server: ask for the service-stats snapshot.
    StatsRequest,
    /// Server → client: encoded plan bytes.
    PlanOk,
    /// Server → client: encoded stats snapshot.
    StatsOk,
    /// Server → client: a typed error ([`ErrorCode`] + message).
    Error,
}

impl FrameKind {
    fn to_u8(self) -> u8 {
        match self {
            FrameKind::PlanRequest => 1,
            FrameKind::StatsRequest => 2,
            FrameKind::PlanOk => 16,
            FrameKind::StatsOk => 17,
            FrameKind::Error => 18,
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            1 => FrameKind::PlanRequest,
            2 => FrameKind::StatsRequest,
            16 => FrameKind::PlanOk,
            17 => FrameKind::StatsOk,
            18 => FrameKind::Error,
            _ => return None,
        })
    }
}

/// Error codes carried by [`FrameKind::Error`] frames.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The service queue is full — retryable.
    QueueFull,
    /// The request's wait deadline elapsed — retryable.
    Timeout,
    /// The service is shutting down — retryable against a restarted
    /// server.
    ShuttingDown,
    /// The compile failed — not retryable, the request itself is at
    /// fault.
    Compile,
    /// The request frame did not decode — not retryable.
    Malformed,
    /// The request frame exceeded [`MAX_FRAME_BYTES`] — not retryable.
    TooLarge,
    /// Anything else server-side.
    Internal,
}

impl ErrorCode {
    /// Whether a client should retry after backoff.
    #[must_use]
    pub fn retryable(self) -> bool {
        matches!(self, ErrorCode::QueueFull | ErrorCode::Timeout | ErrorCode::ShuttingDown)
    }

    fn to_u8(self) -> u8 {
        match self {
            ErrorCode::QueueFull => 1,
            ErrorCode::Timeout => 2,
            ErrorCode::ShuttingDown => 3,
            ErrorCode::Compile => 4,
            ErrorCode::Malformed => 5,
            ErrorCode::TooLarge => 6,
            ErrorCode::Internal => 7,
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            1 => ErrorCode::QueueFull,
            2 => ErrorCode::Timeout,
            3 => ErrorCode::ShuttingDown,
            4 => ErrorCode::Compile,
            5 => ErrorCode::Malformed,
            6 => ErrorCode::TooLarge,
            7 => ErrorCode::Internal,
            _ => return None,
        })
    }
}

impl From<&ServeError> for ErrorCode {
    fn from(e: &ServeError) -> Self {
        match e {
            ServeError::QueueFull => ErrorCode::QueueFull,
            ServeError::Timeout => ErrorCode::Timeout,
            ServeError::ShuttingDown => ErrorCode::ShuttingDown,
            ServeError::Compile(_) => ErrorCode::Compile,
            ServeError::Disk(_) | ServeError::Internal(_) => ErrorCode::Internal,
        }
    }
}

/// Why a frame could not be read.
#[derive(Debug)]
pub enum WireError {
    /// The underlying socket failed (includes read/write timeouts and
    /// EOF mid-frame).
    Io(io::Error),
    /// The stream closed cleanly at a frame boundary.
    Closed,
    /// The magic word did not match — not a dmcp-serve peer.
    BadMagic(u32),
    /// Unsupported protocol version.
    BadVersion(u8),
    /// Unknown frame kind.
    BadKind(u8),
    /// The length field exceeded the frame ceiling.
    TooLarge(u32),
    /// The payload checksum did not verify.
    BadChecksum,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "socket error: {e}"),
            WireError::Closed => f.write_str("connection closed"),
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:#010x}"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::TooLarge(n) => write!(f, "frame of {n} bytes exceeds the ceiling"),
            WireError::BadChecksum => f.write_str("frame checksum mismatch"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

impl WireError {
    /// `true` for failures of the *peer's bytes* (garbage, truncation,
    /// checksum) as opposed to failures of the socket. The server answers
    /// the former with a typed error frame before closing.
    #[must_use]
    pub fn is_malformed(&self) -> bool {
        matches!(
            self,
            WireError::BadMagic(_)
                | WireError::BadVersion(_)
                | WireError::BadKind(_)
                | WireError::TooLarge(_)
                | WireError::BadChecksum
        )
    }
}

/// Writes one frame.
///
/// # Errors
///
/// Propagates socket write errors (including write timeouts).
pub fn write_frame(w: &mut impl Write, kind: FrameKind, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() as u64 <= u64::from(MAX_FRAME_BYTES));
    let mut header = [0u8; FRAME_HEADER_BYTES];
    header[0..4].copy_from_slice(&FRAME_MAGIC.to_le_bytes());
    header[4] = WIRE_VERSION;
    header[5] = kind.to_u8();
    // header[6..8] reserved, zero.
    header[8..12].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.write_all(&fnv1a64(payload).to_le_bytes())?;
    w.flush()
}

/// Reads one frame, validating magic, version, kind, length ceiling and
/// checksum.
///
/// # Errors
///
/// [`WireError::Closed`] on clean EOF at a frame boundary; [`WireError`]
/// otherwise.
pub fn read_frame(r: &mut impl Read) -> Result<(FrameKind, Vec<u8>), WireError> {
    let mut header = [0u8; FRAME_HEADER_BYTES];
    // Distinguish a clean close (no bytes at all) from truncation.
    match r.read(&mut header) {
        Ok(0) => return Err(WireError::Closed),
        Ok(n) => r.read_exact(&mut header[n..])?,
        Err(e) if e.kind() == io::ErrorKind::Interrupted => r.read_exact(&mut header)?,
        Err(e) => return Err(WireError::Io(e)),
    }
    let magic = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
    if magic != FRAME_MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    if header[4] != WIRE_VERSION {
        return Err(WireError::BadVersion(header[4]));
    }
    let kind = FrameKind::from_u8(header[5]).ok_or(WireError::BadKind(header[5]))?;
    let len = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
    if len > MAX_FRAME_BYTES {
        return Err(WireError::TooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let mut checksum = [0u8; 8];
    r.read_exact(&mut checksum)?;
    if u64::from_le_bytes(checksum) != fnv1a64(&payload) {
        return Err(WireError::BadChecksum);
    }
    Ok((kind, payload))
}

/// Encodes an error-frame payload: code byte + UTF-8 message.
#[must_use]
pub fn encode_error(code: ErrorCode, message: &str) -> Vec<u8> {
    let mut e = Enc::new();
    e.u8(code.to_u8());
    e.str(message);
    e.finish()
}

/// Decodes an error-frame payload.
#[must_use]
pub fn decode_error(payload: &[u8]) -> (ErrorCode, String) {
    let mut d = Dec::new(payload);
    let code = d.u8().ok().and_then(ErrorCode::from_u8).unwrap_or(ErrorCode::Internal);
    let message = d.str("error message").map(str::to_string).unwrap_or_default();
    (code, message)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmcp_mach::rng::Rng64;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::PlanOk, b"some plan bytes").expect("write");
        let (kind, payload) = read_frame(&mut buf.as_slice()).expect("read");
        assert_eq!(kind, FrameKind::PlanOk);
        assert_eq!(payload, b"some plan bytes");
    }

    #[test]
    fn clean_eof_is_closed_and_midframe_eof_is_io() {
        let empty: &[u8] = &[];
        assert!(matches!(read_frame(&mut { empty }), Err(WireError::Closed)));

        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::StatsRequest, &[]).expect("write");
        for cut in 1..buf.len() {
            let err = read_frame(&mut &buf[..cut]).expect_err("truncated");
            assert!(matches!(err, WireError::Io(_)), "cut {cut}: {err}");
        }
    }

    #[test]
    fn bad_magic_version_kind_and_length_are_typed() {
        let mut good = Vec::new();
        write_frame(&mut good, FrameKind::PlanRequest, b"x").expect("write");

        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(read_frame(&mut bad.as_slice()), Err(WireError::BadMagic(_))));

        let mut bad = good.clone();
        bad[4] = 99;
        assert!(matches!(read_frame(&mut bad.as_slice()), Err(WireError::BadVersion(99))));

        let mut bad = good.clone();
        bad[5] = 200;
        assert!(matches!(read_frame(&mut bad.as_slice()), Err(WireError::BadKind(200))));

        let mut bad = good.clone();
        bad[8..12].copy_from_slice(&(MAX_FRAME_BYTES + 1).to_le_bytes());
        assert!(matches!(read_frame(&mut bad.as_slice()), Err(WireError::TooLarge(_))));

        let mut bad = good;
        let at = FRAME_HEADER_BYTES; // first payload byte
        bad[at] ^= 0x01;
        assert!(matches!(read_frame(&mut bad.as_slice()), Err(WireError::BadChecksum)));
    }

    #[test]
    fn random_byte_soup_never_panics() {
        let mut rng = Rng64::new(0xB17E_50FF);
        for _ in 0..512 {
            let len = rng.gen_range(256) as usize;
            let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            let _ = read_frame(&mut bytes.as_slice());
        }
    }

    #[test]
    fn error_payload_roundtrip() {
        let payload = encode_error(ErrorCode::QueueFull, "busy");
        let (code, msg) = decode_error(&payload);
        assert_eq!(code, ErrorCode::QueueFull);
        assert_eq!(msg, "busy");
        assert!(code.retryable());
        assert!(!ErrorCode::Compile.retryable());

        // Garbage error payloads degrade to Internal, never panic.
        let (code, _) = decode_error(&[0xFF, 0x01]);
        assert_eq!(code, ErrorCode::Internal);
        let (code, _) = decode_error(&[]);
        assert_eq!(code, ErrorCode::Internal);
    }
}
