//! The durable plan tier: a content-addressed, append-only on-disk store
//! behind the in-memory LRU.
//!
//! # Format
//!
//! A cache directory holds numbered segment files (`seg-000000.log`,
//! `seg-000001.log`, …). A segment is a sequence of records; each record
//! is
//!
//! ```text
//! magic     u32   0x444D_4352 ("DMCR")
//! key       4×u64 the full PlanKey (program, machine, config, faults)
//! len       u32   payload length in bytes
//! checksum  u64   FNV-1a over the payload
//! payload   len bytes (an encoded plan, crate::codec::encode_plan)
//! ```
//!
//! # Crash safety, by construction
//!
//! Records are only ever *appended*; a completed record is never rewritten
//! or moved. The index is not persisted at all — it is rebuilt by scanning
//! the segments on open. A crash (`kill -9`, power cut after the OS
//! flushed) mid-append therefore leaves exactly one torn record at the
//! tail of the newest segment: its length field or checksum cannot match,
//! the scan stops there and truncates the file back to the last complete
//! record. Everything written before the torn record is served as before;
//! at most the in-flight record is lost.
//!
//! Writes go through a buffered writer that is flushed to the OS after
//! every record (surviving process death); [`DiskTier::sync`] additionally
//! fsyncs (surviving power loss) and runs on graceful shutdown. Segment
//! creation and rotation fsync the cache *directory* too, so the new
//! entry itself survives power loss.
//!
//! # Graceful degradation
//!
//! All file operations go through [`StorageIo`], so the tier never
//! assumes a healthy disk. A write/flush/fsync/rotate failure flips the
//! tier to **memory-only**: `put` enqueues the record on a bounded
//! pending queue and reports success (the in-memory LRU above still
//! serves it), `get` skips the disk, and a time-gated *re-probe* —
//! triggered from `get`/`put`/`sync`/`stats` — tries to rotate onto a
//! fresh segment. When the probe succeeds the tier is restored and the
//! pending queue drains onto disk. A segment whose scan finds nothing
//! valid (or that cannot be truncated) is *quarantined*: renamed aside
//! with a `.quarantine` suffix and counted, never silently re-scanned
//! forever.

use crate::codec::fnv1a64;
use crate::key::PlanKey;
use crate::storage::{RealIo, StorageFile, StorageIo};
use std::collections::{HashMap, VecDeque};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Per-record magic ("DMCR").
pub const RECORD_MAGIC: u32 = 0x444D_4352;
/// Fixed bytes before a record's payload: magic + key + len + checksum.
pub const RECORD_HEADER_BYTES: u64 = 4 + 32 + 4 + 8;
/// Hard ceiling on one record's payload — anything larger is corruption.
pub const MAX_RECORD_BYTES: u32 = 64 << 20;
/// Default segment-rotation threshold.
pub const DEFAULT_SEGMENT_BYTES: u64 = 32 << 20;
/// Default interval between re-probes while degraded.
pub const DEFAULT_REPROBE: Duration = Duration::from_millis(500);
/// Suffix appended to a quarantined segment's file name.
pub const QUARANTINE_SUFFIX: &str = ".quarantine";
/// Most records the degraded-mode pending queue holds.
const MAX_PENDING_RECORDS: usize = 256;
/// Most payload bytes the degraded-mode pending queue holds.
const MAX_PENDING_BYTES: u64 = 8 << 20;

/// Counters for the disk tier. All zeros when no tier is configured.
#[derive(Clone, Copy, Debug, Default)]
pub struct DiskStats {
    /// Lookups served from disk.
    pub hits: u64,
    /// Lookups that found no record.
    pub misses: u64,
    /// Records appended.
    pub writes: u64,
    /// Records dropped because their payload failed verification when
    /// read back (bit rot after recovery).
    pub corrupt_drops: u64,
    /// Records currently indexed.
    pub records: u64,
    /// Total segment bytes currently on disk.
    pub bytes: u64,
    /// Complete records recovered by the opening scan.
    pub recovered_records: u64,
    /// Bytes of torn tail discarded by the opening scan.
    pub truncated_bytes: u64,
    /// Disk I/O errors absorbed (each one degrades or keeps the tier
    /// degraded).
    pub errors: u64,
    /// Segments renamed aside because nothing in them verified (or the
    /// torn tail could not be truncated).
    pub quarantined_segments: u64,
    /// Records parked on the degraded-mode pending queue.
    pub pending_records: u64,
    /// `true` while the tier is memory-only (disk writes are failing).
    pub degraded: bool,
}

/// Where one plan's payload lives.
#[derive(Clone, Copy, Debug)]
struct RecordLoc {
    segment: u64,
    /// Offset of the *payload* (header already skipped).
    offset: u64,
    len: u32,
    checksum: u64,
}

struct ActiveSegment {
    id: u64,
    file: Box<dyn StorageFile>,
    len: u64,
}

struct DiskState {
    index: HashMap<PlanKey, RecordLoc>,
    active: ActiveSegment,
    /// Total bytes across all segments (for stats).
    total_bytes: u64,
    /// Writes parked while degraded, drained by a successful re-probe.
    pending: VecDeque<(PlanKey, Vec<u8>)>,
    pending_bytes: u64,
}

/// The durable tier. All methods take `&self`; one mutex serializes
/// writers and the index, reads go through the shared [`StorageIo`].
pub struct DiskTier {
    dir: PathBuf,
    segment_bytes: u64,
    io: Arc<dyn StorageIo>,
    reprobe_interval: Duration,
    state: Mutex<DiskState>,
    degraded: AtomicBool,
    last_probe: Mutex<Instant>,
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    corrupt_drops: AtomicU64,
    recovered_records: AtomicU64,
    truncated_bytes: AtomicU64,
    errors: AtomicU64,
    quarantined: AtomicU64,
}

fn segment_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("seg-{id:06}.log"))
}

fn segment_ids(io: &dyn StorageIo, dir: &Path) -> io::Result<Vec<u64>> {
    let mut ids = Vec::new();
    for name in io.list(dir)? {
        if let Some(id) = name.strip_prefix("seg-").and_then(|s| s.strip_suffix(".log")) {
            if let Ok(id) = id.parse::<u64>() {
                ids.push(id);
            }
        }
    }
    ids.sort_unstable();
    Ok(ids)
}

/// Renames a segment aside (`seg-NNNNNN.log.quarantine`) and makes the
/// rename durable.
fn quarantine_segment(io: &dyn StorageIo, dir: &Path, path: &Path) -> io::Result<()> {
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("segment");
    let aside = dir.join(format!("{name}{QUARANTINE_SUFFIX}"));
    io.rename(path, &aside)?;
    io.sync_dir(dir)
}

/// Outcome of scanning one segment.
struct ScanOutcome {
    /// Byte offset of the first invalid record (= valid length).
    valid_len: u64,
    /// Complete records found, in file order.
    records: Vec<(PlanKey, RecordLoc)>,
}

/// Walks a segment's records, stopping at the first record that is
/// incomplete or fails its checksum. Everything before that point is
/// valid; everything from it on is a torn tail.
fn scan_segment(bytes: &[u8], segment: u64) -> ScanOutcome {
    let mut records = Vec::new();
    let mut pos: u64 = 0;
    let total = bytes.len() as u64;
    loop {
        let remaining = total - pos;
        if remaining == 0 {
            break;
        }
        if remaining < RECORD_HEADER_BYTES {
            break; // torn header
        }
        let at = pos as usize;
        let magic = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"));
        if magic != RECORD_MAGIC {
            break;
        }
        let mut words = [0u64; 4];
        for (k, w) in words.iter_mut().enumerate() {
            let off = at + 4 + 8 * k;
            *w = u64::from_le_bytes(bytes[off..off + 8].try_into().expect("8 bytes"));
        }
        let key =
            PlanKey { program: words[0], machine: words[1], config: words[2], faults: words[3] };
        let len = u32::from_le_bytes(bytes[at + 36..at + 40].try_into().expect("4 bytes"));
        let checksum = u64::from_le_bytes(bytes[at + 40..at + 48].try_into().expect("8 bytes"));
        if len > MAX_RECORD_BYTES || u64::from(len) > remaining - RECORD_HEADER_BYTES {
            break; // torn or corrupt length
        }
        let payload_at = at + RECORD_HEADER_BYTES as usize;
        let payload = &bytes[payload_at..payload_at + len as usize];
        if fnv1a64(payload) != checksum {
            break; // torn payload
        }
        records
            .push((key, RecordLoc { segment, offset: pos + RECORD_HEADER_BYTES, len, checksum }));
        pos += RECORD_HEADER_BYTES + u64::from(len);
    }
    ScanOutcome { valid_len: pos, records }
}

impl DiskTier {
    /// Opens (or creates) a cache directory, scanning every segment to
    /// rebuild the index and truncating any torn tail left by a crash.
    ///
    /// # Errors
    ///
    /// I/O errors creating the directory, reading segments, or truncating
    /// a torn tail.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        Self::open_with_segment_bytes(dir, DEFAULT_SEGMENT_BYTES)
    }

    /// [`DiskTier::open`] with an explicit segment-rotation threshold
    /// (tests use small segments to exercise rotation).
    ///
    /// # Errors
    ///
    /// Same as [`DiskTier::open`].
    pub fn open_with_segment_bytes(
        dir: impl Into<PathBuf>,
        segment_bytes: u64,
    ) -> io::Result<Self> {
        Self::open_with_io(dir, segment_bytes, DEFAULT_REPROBE, Arc::new(RealIo))
    }

    /// Opens the tier over an explicit [`StorageIo`] — the chaos harness
    /// passes a [`FaultyIo`](crate::storage::FaultyIo) here — with an
    /// explicit re-probe interval for degraded mode.
    ///
    /// A segment whose scan finds no valid record (while the file is
    /// non-empty), or whose torn tail cannot be truncated, is quarantined:
    /// renamed aside and counted, its records dropped.
    ///
    /// # Errors
    ///
    /// I/O errors creating the directory, reading segments, truncating a
    /// torn tail, quarantining, or opening the active segment. Open does
    /// not degrade — a tier that cannot even be scanned is an error the
    /// caller must see.
    pub fn open_with_io(
        dir: impl Into<PathBuf>,
        segment_bytes: u64,
        reprobe_interval: Duration,
        io: Arc<dyn StorageIo>,
    ) -> io::Result<Self> {
        let dir = dir.into();
        io.create_dir_all(&dir)?;
        let mut index = HashMap::new();
        let mut total_bytes = 0u64;
        let mut recovered = 0u64;
        let mut truncated = 0u64;
        let mut quarantined = 0u64;
        let ids = segment_ids(io.as_ref(), &dir)?;
        for &id in &ids {
            let path = segment_path(&dir, id);
            let bytes = io.read(&path)?;
            let len = bytes.len() as u64;
            let outcome = scan_segment(&bytes, id);
            if outcome.valid_len == 0 && len > 0 {
                // Nothing in the file verifies: quarantine the whole
                // segment instead of re-scanning the garbage forever.
                quarantine_segment(io.as_ref(), &dir, &path)?;
                quarantined += 1;
                continue;
            }
            if outcome.valid_len < len {
                if io.truncate(&path, outcome.valid_len).is_err() {
                    // Can't cut the torn tail off — rename the segment
                    // aside rather than serve from a file we can't fix.
                    quarantine_segment(io.as_ref(), &dir, &path)?;
                    quarantined += 1;
                    continue;
                }
                truncated += len - outcome.valid_len;
            }
            recovered += outcome.records.len() as u64;
            total_bytes += outcome.valid_len;
            for (key, loc) in outcome.records {
                index.insert(key, loc); // later records win
            }
        }
        let active_id = ids.last().copied().unwrap_or(0);
        let path = segment_path(&dir, active_id);
        let file = io.open_append(&path)?;
        io.sync_dir(&dir)?; // the active segment may be freshly created
        let len = io.file_len(&path)?;
        let state = DiskState {
            index,
            active: ActiveSegment { id: active_id, file, len },
            total_bytes,
            pending: VecDeque::new(),
            pending_bytes: 0,
        };
        Ok(Self {
            dir,
            segment_bytes,
            io,
            reprobe_interval,
            state: Mutex::new(state),
            degraded: AtomicBool::new(false),
            last_probe: Mutex::new(Instant::now()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            corrupt_drops: AtomicU64::new(0),
            recovered_records: AtomicU64::new(recovered),
            truncated_bytes: AtomicU64::new(truncated),
            errors: AtomicU64::new(0),
            quarantined: AtomicU64::new(quarantined),
        })
    }

    /// Looks up a plan's payload. Reads re-verify the checksum; a record
    /// that no longer verifies (bit rot) is dropped from the index and
    /// reported as a miss, so corruption degrades to a recompile rather
    /// than a wrong answer. While degraded the disk is not touched at
    /// all — every lookup is a miss (and a re-probe opportunity).
    pub fn get(&self, key: PlanKey) -> Option<Vec<u8>> {
        if self.degraded.load(Ordering::SeqCst) {
            self.maybe_reprobe();
            if self.degraded.load(Ordering::SeqCst) {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        }
        let loc = {
            let state = self.state.lock().expect("disk tier poisoned");
            state.index.get(&key).copied()
        };
        let Some(loc) = loc else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        match self.read_payload(loc) {
            Some(payload) if fnv1a64(&payload) == loc.checksum => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(payload)
            }
            _ => {
                self.corrupt_drops.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.state.lock().expect("disk tier poisoned").index.remove(&key);
                None
            }
        }
    }

    fn read_payload(&self, loc: RecordLoc) -> Option<Vec<u8>> {
        let path = segment_path(&self.dir, loc.segment);
        self.io.read_at(&path, loc.offset, loc.len as usize).ok()
    }

    /// Appends one plan. A key already on disk is left untouched —
    /// completed records are never rewritten (equal keys hold
    /// bit-identical payloads, so there is nothing to update).
    ///
    /// A disk failure does **not** surface here: the tier flips to
    /// memory-only, the record is parked on the bounded pending queue
    /// (oldest entries dropped past the cap — they only cost a future
    /// recompile) and `Ok` is returned; the next successful re-probe
    /// drains the queue to disk.
    ///
    /// # Errors
    ///
    /// Only `InvalidInput` for an oversized payload (a caller bug, not a
    /// disk fault).
    pub fn put(&self, key: PlanKey, payload: &[u8]) -> io::Result<()> {
        if payload.len() as u64 > u64::from(MAX_RECORD_BYTES) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "plan payload exceeds the record ceiling",
            ));
        }
        if self.degraded.load(Ordering::SeqCst) {
            self.maybe_reprobe();
        }
        let mut state = self.state.lock().expect("disk tier poisoned");
        if state.index.contains_key(&key) {
            return Ok(());
        }
        if self.degraded.load(Ordering::SeqCst) {
            Self::enqueue_pending(&mut state, key, payload.to_vec());
            return Ok(());
        }
        if self.append_locked(&mut state, key, payload).is_err() {
            self.errors.fetch_add(1, Ordering::Relaxed);
            self.degraded.store(true, Ordering::SeqCst);
            Self::enqueue_pending(&mut state, key, payload.to_vec());
        }
        Ok(())
    }

    /// Parks a write while degraded, bounded by records and bytes.
    fn enqueue_pending(state: &mut DiskState, key: PlanKey, payload: Vec<u8>) {
        if state.pending.iter().any(|(k, _)| *k == key) {
            return;
        }
        state.pending_bytes += payload.len() as u64;
        state.pending.push_back((key, payload));
        while state.pending.len() > MAX_PENDING_RECORDS || state.pending_bytes > MAX_PENDING_BYTES {
            if let Some((_, dropped)) = state.pending.pop_front() {
                state.pending_bytes -= dropped.len() as u64;
            } else {
                break;
            }
        }
    }

    /// Appends one record to the active segment, rotating first when the
    /// segment is full. On error the segment tail is suspect (a prefix of
    /// the record may have landed) — the caller degrades, and recovery
    /// always rotates onto a fresh segment so the torn tail is left for
    /// the next open's scan to truncate.
    fn append_locked(&self, state: &mut DiskState, key: PlanKey, payload: &[u8]) -> io::Result<()> {
        let record_len = RECORD_HEADER_BYTES + payload.len() as u64;
        if state.active.len > 0 && state.active.len + record_len > self.segment_bytes {
            self.rotate_locked(state)?;
        }
        let checksum = fnv1a64(payload);
        let mut header = Vec::with_capacity(RECORD_HEADER_BYTES as usize);
        header.extend_from_slice(&RECORD_MAGIC.to_le_bytes());
        for w in [key.program, key.machine, key.config, key.faults] {
            header.extend_from_slice(&w.to_le_bytes());
        }
        header.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        header.extend_from_slice(&checksum.to_le_bytes());
        state.active.file.write_all(&header)?;
        state.active.file.write_all(payload)?;
        state.active.file.flush()?;
        let loc = RecordLoc {
            segment: state.active.id,
            offset: state.active.len + RECORD_HEADER_BYTES,
            len: payload.len() as u32,
            checksum,
        };
        state.active.len += record_len;
        state.total_bytes += record_len;
        state.index.insert(key, loc);
        self.writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Opens the next segment as the active one and makes the new
    /// directory entry durable. The previous active segment (and any torn
    /// tail it carries) is simply left behind.
    fn rotate_locked(&self, state: &mut DiskState) -> io::Result<()> {
        let next = state.active.id + 1;
        let file = self.io.open_append(&segment_path(&self.dir, next))?;
        self.io.sync_dir(&self.dir)?;
        state.active = ActiveSegment { id: next, file, len: 0 };
        Ok(())
    }

    /// While degraded, and at most once per re-probe interval, tries to
    /// rotate onto a fresh segment. Success restores the tier and drains
    /// the pending queue; failure counts an error and stays memory-only.
    /// Called from `get`/`put`/`sync`/`stats` so any traffic — including
    /// a stats poll — can drive recovery.
    fn maybe_reprobe(&self) {
        if !self.degraded.load(Ordering::SeqCst) {
            return;
        }
        {
            let mut last = self.last_probe.lock().expect("disk tier poisoned");
            if last.elapsed() < self.reprobe_interval {
                return;
            }
            *last = Instant::now();
        }
        let mut state = self.state.lock().expect("disk tier poisoned");
        if !self.degraded.load(Ordering::SeqCst) {
            return; // somebody else re-probed first
        }
        if self.rotate_locked(&mut state).is_err() {
            self.errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.degraded.store(false, Ordering::SeqCst);
        while let Some((key, payload)) = state.pending.pop_front() {
            state.pending_bytes -= payload.len() as u64;
            if state.index.contains_key(&key) {
                continue;
            }
            if self.append_locked(&mut state, key, &payload).is_err() {
                self.errors.fetch_add(1, Ordering::Relaxed);
                self.degraded.store(true, Ordering::SeqCst);
                state.pending_bytes += payload.len() as u64;
                state.pending.push_front((key, payload));
                break;
            }
        }
    }

    /// Fsyncs the active segment — after this returns `Ok`, every
    /// completed record survives power loss, not just process death. An
    /// fsync failure degrades the tier (the kernel may have dropped dirty
    /// pages — the tail is no longer trustworthy).
    ///
    /// # Errors
    ///
    /// The underlying `fsync` failure, or an error naming the degraded
    /// state while the tier is memory-only.
    pub fn sync(&self) -> io::Result<()> {
        self.maybe_reprobe();
        let mut state = self.state.lock().expect("disk tier poisoned");
        if self.degraded.load(Ordering::SeqCst) {
            return Err(io::Error::other("disk tier degraded (memory-only)"));
        }
        match state.active.file.sync() {
            Ok(()) => Ok(()),
            Err(e) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                self.degraded.store(true, Ordering::SeqCst);
                Err(e)
            }
        }
    }

    /// `true` while the tier is memory-only.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::SeqCst)
    }

    /// Number of indexed records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.state.lock().expect("disk tier poisoned").index.len()
    }

    /// `true` when no records are indexed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The cache directory this tier writes to.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Counter snapshot. Doubles as a re-probe opportunity: a degraded
    /// tier polled for stats will try to recover.
    #[must_use]
    pub fn stats(&self) -> DiskStats {
        self.maybe_reprobe();
        let (records, bytes, pending_records) = {
            let state = self.state.lock().expect("disk tier poisoned");
            (state.index.len() as u64, state.total_bytes, state.pending.len() as u64)
        };
        DiskStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            corrupt_drops: self.corrupt_drops.load(Ordering::Relaxed),
            records,
            bytes,
            recovered_records: self.recovered_records.load(Ordering::Relaxed),
            truncated_bytes: self.truncated_bytes.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            quarantined_segments: self.quarantined.load(Ordering::Relaxed),
            pending_records,
            degraded: self.degraded.load(Ordering::SeqCst),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::{FaultyIo, MemIo};
    use std::fs;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dmcp-disk-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn key(n: u64) -> PlanKey {
        PlanKey { program: n, machine: n ^ 0xAA, config: n ^ 0xBB, faults: n ^ 0xCC }
    }

    #[test]
    fn put_get_roundtrip_and_reopen() {
        let dir = tmpdir("roundtrip");
        let tier = DiskTier::open(&dir).expect("open");
        for n in 0..8u64 {
            let payload = vec![n as u8; 64 + n as usize];
            tier.put(key(n), &payload).expect("put");
            assert_eq!(tier.get(key(n)).as_deref(), Some(&payload[..]));
        }
        assert_eq!(tier.len(), 8);
        assert!(tier.get(key(99)).is_none());
        drop(tier);

        let reopened = DiskTier::open(&dir).expect("reopen");
        assert_eq!(reopened.len(), 8, "index rebuilt by scan");
        assert_eq!(reopened.stats().recovered_records, 8);
        assert_eq!(reopened.stats().truncated_bytes, 0);
        for n in 0..8u64 {
            let payload = vec![n as u8; 64 + n as usize];
            assert_eq!(reopened.get(key(n)).as_deref(), Some(&payload[..]));
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_put_is_a_noop() {
        let dir = tmpdir("dup");
        let tier = DiskTier::open(&dir).expect("open");
        tier.put(key(1), b"payload").expect("put");
        let bytes_after_first = tier.stats().bytes;
        tier.put(key(1), b"payload").expect("dup put");
        assert_eq!(tier.stats().bytes, bytes_after_first, "no rewrite");
        assert_eq!(tier.stats().writes, 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn segments_rotate_and_all_stay_readable() {
        let dir = tmpdir("rotate");
        // Tiny segments: every record larger than ~200B rotates.
        let tier = DiskTier::open_with_segment_bytes(&dir, 256).expect("open");
        for n in 0..6u64 {
            tier.put(key(n), &[0xAB; 150]).expect("put");
        }
        assert!(segment_ids(&RealIo, &dir).expect("ls").len() > 1, "rotation produced segments");
        drop(tier);
        let reopened = DiskTier::open_with_segment_bytes(&dir, 256).expect("reopen");
        assert_eq!(reopened.len(), 6);
        for n in 0..6u64 {
            assert!(reopened.get(key(n)).is_some(), "record {n} readable after rotation");
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_to_the_last_complete_record() {
        let dir = tmpdir("torn");
        let tier = DiskTier::open(&dir).expect("open");
        for n in 0..5u64 {
            tier.put(key(n), &[n as u8; 100]).expect("put");
        }
        drop(tier);

        // Simulate kill -9 mid-append: chop the last record's payload.
        let seg = segment_path(&dir, 0);
        let len = fs::metadata(&seg).expect("meta").len();
        let f = fs::OpenOptions::new().write(true).open(&seg).expect("open seg");
        f.set_len(len - 37).expect("tear");
        drop(f);

        let recovered = DiskTier::open(&dir).expect("recover");
        let stats = recovered.stats();
        assert_eq!(recovered.len(), 4, "exactly the torn record is lost");
        assert_eq!(stats.recovered_records, 4);
        assert!(stats.truncated_bytes > 0, "torn tail measured");
        assert_eq!(stats.quarantined_segments, 0, "a good prefix is never quarantined");
        for n in 0..4u64 {
            assert_eq!(recovered.get(key(n)).as_deref(), Some(&[n as u8; 100][..]));
        }
        assert!(recovered.get(key(4)).is_none());
        // The file was physically truncated: a further reopen is clean.
        let again = DiskTier::open(&dir).expect("clean reopen");
        assert_eq!(again.stats().truncated_bytes, 0);
        assert_eq!(again.len(), 4);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn writes_after_recovery_append_cleanly() {
        let dir = tmpdir("append-after");
        let tier = DiskTier::open(&dir).expect("open");
        for n in 0..3u64 {
            tier.put(key(n), &[n as u8; 80]).expect("put");
        }
        drop(tier);
        let seg = segment_path(&dir, 0);
        let len = fs::metadata(&seg).expect("meta").len();
        fs::OpenOptions::new()
            .write(true)
            .open(&seg)
            .expect("seg")
            .set_len(len - 10)
            .expect("tear");

        let tier = DiskTier::open(&dir).expect("recover");
        assert_eq!(tier.len(), 2);
        tier.put(key(7), b"fresh after crash").expect("put");
        drop(tier);
        let tier = DiskTier::open(&dir).expect("reopen");
        assert_eq!(tier.len(), 3);
        assert_eq!(tier.get(key(7)).as_deref(), Some(&b"fresh after crash"[..]));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flipped_payload_byte_quarantines_the_all_bad_segment() {
        let dir = tmpdir("bitrot");
        let tier = DiskTier::open(&dir).expect("open");
        tier.put(key(1), &[7u8; 50]).expect("put");
        drop(tier);
        // Flip one payload byte in place (not the tail — a mid-file flip).
        let seg = segment_path(&dir, 0);
        let mut bytes = fs::read(&seg).expect("read");
        let at = RECORD_HEADER_BYTES as usize + 10;
        bytes[at] ^= 0x40;
        fs::write(&seg, &bytes).expect("write");

        // The opening scan finds nothing valid in the segment, so the
        // whole file is renamed aside instead of re-scanned forever.
        let tier = DiskTier::open(&dir).expect("open");
        assert_eq!(tier.len(), 0, "corrupt record is not indexed");
        assert!(tier.get(key(1)).is_none());
        assert_eq!(tier.stats().quarantined_segments, 1);
        let aside = dir.join(format!("seg-000000.log{QUARANTINE_SUFFIX}"));
        assert!(aside.exists(), "segment renamed aside");
        // The quarantined file is out of the scan: a reopen is clean.
        drop(tier);
        let again = DiskTier::open(&dir).expect("reopen");
        assert_eq!(again.stats().quarantined_segments, 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_failure_degrades_to_memory_only_and_reprobe_restores() {
        let mem = MemIo::new();
        let faulty = FaultyIo::new(Arc::new(Arc::clone(&mem)), 0xD16E57);
        let chaos = faulty.chaos();
        let tier = DiskTier::open_with_io("/chaos", 1 << 20, Duration::ZERO, Arc::new(faulty))
            .expect("open");
        tier.put(key(0), b"before the storm").expect("healthy put");

        chaos.set_storm(true);
        tier.put(key(1), b"during 1").expect("degraded put still Ok");
        tier.put(key(2), b"during 2").expect("degraded put still Ok");
        let s = tier.stats();
        assert!(s.degraded, "write failure flips the tier to memory-only");
        assert!(s.errors >= 1);
        assert_eq!(s.pending_records, 2, "writes parked while degraded");
        assert!(tier.get(key(0)).is_none(), "degraded lookups skip the disk");
        assert!(tier.sync().is_err(), "sync refuses while degraded");

        chaos.set_storm(false);
        let s = tier.stats(); // the stats poll itself re-probes
        assert!(!s.degraded, "re-probe restored the tier");
        assert_eq!(s.pending_records, 0, "pending queue drained to disk");
        assert_eq!(tier.get(key(1)).as_deref(), Some(&b"during 1"[..]));
        assert_eq!(tier.get(key(0)).as_deref(), Some(&b"before the storm"[..]));
        tier.sync().expect("sync healthy again");
        drop(tier);

        // Reopen over the same in-memory filesystem: every record —
        // including the drained pending ones — was committed.
        let clean =
            DiskTier::open_with_io("/chaos", 1 << 20, Duration::ZERO, Arc::new(Arc::clone(&mem)))
                .expect("reopen");
        assert_eq!(clean.len(), 3);
        for (n, payload) in [(0u64, &b"before the storm"[..]), (1, b"during 1"), (2, b"during 2")] {
            assert_eq!(clean.get(key(n)).as_deref(), Some(payload));
        }
    }

    #[test]
    fn fsync_failure_degrades_and_recovery_rotates_to_a_fresh_segment() {
        let mem = MemIo::new();
        let faulty = FaultyIo::new(Arc::new(Arc::clone(&mem)), 0xF5);
        let chaos = faulty.chaos();
        let tier = DiskTier::open_with_io("/fsync", 1 << 20, Duration::ZERO, Arc::new(faulty))
            .expect("open");
        tier.put(key(1), b"one").expect("put");
        chaos.fail_at(chaos.ops());
        assert!(tier.sync().is_err(), "injected fsync failure surfaces");
        assert!(tier.is_degraded());
        // The next sync re-probes (interval zero), rotates and succeeds.
        tier.sync().expect("recovered");
        assert!(!tier.is_degraded());
        assert!(
            mem.bytes(Path::new("/fsync/seg-000001.log")).is_some(),
            "recovery abandoned the suspect segment for a fresh one"
        );
    }
}
