//! The durable plan tier: a content-addressed, append-only on-disk store
//! behind the in-memory LRU.
//!
//! # Format
//!
//! A cache directory holds numbered segment files (`seg-000000.log`,
//! `seg-000001.log`, …). A segment is a sequence of records; each record
//! is
//!
//! ```text
//! magic     u32   0x444D_4352 ("DMCR")
//! key       4×u64 the full PlanKey (program, machine, config, faults)
//! len       u32   payload length in bytes
//! checksum  u64   FNV-1a over the payload
//! payload   len bytes (an encoded plan, crate::codec::encode_plan)
//! ```
//!
//! # Crash safety, by construction
//!
//! Records are only ever *appended*; a completed record is never rewritten
//! or moved. The index is not persisted at all — it is rebuilt by scanning
//! the segments on open. A crash (`kill -9`, power cut after the OS
//! flushed) mid-append therefore leaves exactly one torn record at the
//! tail of the newest segment: its length field or checksum cannot match,
//! the scan stops there and truncates the file back to the last complete
//! record. Everything written before the torn record is served as before;
//! at most the in-flight record is lost.
//!
//! Writes go through a buffered writer that is flushed to the OS after
//! every record (surviving process death); [`DiskTier::sync`] additionally
//! fsyncs (surviving power loss) and runs on graceful shutdown.

use crate::codec::fnv1a64;
use crate::key::PlanKey;
use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Per-record magic ("DMCR").
pub const RECORD_MAGIC: u32 = 0x444D_4352;
/// Fixed bytes before a record's payload: magic + key + len + checksum.
pub const RECORD_HEADER_BYTES: u64 = 4 + 32 + 4 + 8;
/// Hard ceiling on one record's payload — anything larger is corruption.
pub const MAX_RECORD_BYTES: u32 = 64 << 20;
/// Default segment-rotation threshold.
pub const DEFAULT_SEGMENT_BYTES: u64 = 32 << 20;

/// Counters for the disk tier. All zeros when no tier is configured.
#[derive(Clone, Copy, Debug, Default)]
pub struct DiskStats {
    /// Lookups served from disk.
    pub hits: u64,
    /// Lookups that found no record.
    pub misses: u64,
    /// Records appended.
    pub writes: u64,
    /// Records dropped because their payload failed verification when
    /// read back (bit rot after recovery).
    pub corrupt_drops: u64,
    /// Records currently indexed.
    pub records: u64,
    /// Total segment bytes currently on disk.
    pub bytes: u64,
    /// Complete records recovered by the opening scan.
    pub recovered_records: u64,
    /// Bytes of torn tail discarded by the opening scan.
    pub truncated_bytes: u64,
}

/// Where one plan's payload lives.
#[derive(Clone, Copy, Debug)]
struct RecordLoc {
    segment: u64,
    /// Offset of the *payload* (header already skipped).
    offset: u64,
    len: u32,
    checksum: u64,
}

struct ActiveSegment {
    id: u64,
    file: File,
    len: u64,
}

struct DiskState {
    index: HashMap<PlanKey, RecordLoc>,
    active: ActiveSegment,
    /// Total bytes across all segments (for stats).
    total_bytes: u64,
}

/// The durable tier. All methods take `&self`; one mutex serializes
/// writers and the index, reads open their own file handle.
pub struct DiskTier {
    dir: PathBuf,
    segment_bytes: u64,
    state: Mutex<DiskState>,
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    corrupt_drops: AtomicU64,
    recovered_records: AtomicU64,
    truncated_bytes: AtomicU64,
}

fn segment_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("seg-{id:06}.log"))
}

fn segment_ids(dir: &Path) -> std::io::Result<Vec<u64>> {
    let mut ids = Vec::new();
    for entry in fs::read_dir(dir)? {
        let name = entry?.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(id) = name.strip_prefix("seg-").and_then(|s| s.strip_suffix(".log")) {
            if let Ok(id) = id.parse::<u64>() {
                ids.push(id);
            }
        }
    }
    ids.sort_unstable();
    Ok(ids)
}

/// Outcome of scanning one segment.
struct ScanOutcome {
    /// Byte offset of the first invalid record (= valid length).
    valid_len: u64,
    /// Complete records found, in file order.
    records: Vec<(PlanKey, RecordLoc)>,
}

/// Walks a segment's records, stopping at the first record that is
/// incomplete or fails its checksum. Everything before that point is
/// valid; everything from it on is a torn tail.
fn scan_segment(bytes: &[u8], segment: u64) -> ScanOutcome {
    let mut records = Vec::new();
    let mut pos: u64 = 0;
    let total = bytes.len() as u64;
    loop {
        let remaining = total - pos;
        if remaining == 0 {
            break;
        }
        if remaining < RECORD_HEADER_BYTES {
            break; // torn header
        }
        let at = pos as usize;
        let magic = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"));
        if magic != RECORD_MAGIC {
            break;
        }
        let mut words = [0u64; 4];
        for (k, w) in words.iter_mut().enumerate() {
            let off = at + 4 + 8 * k;
            *w = u64::from_le_bytes(bytes[off..off + 8].try_into().expect("8 bytes"));
        }
        let key =
            PlanKey { program: words[0], machine: words[1], config: words[2], faults: words[3] };
        let len = u32::from_le_bytes(bytes[at + 36..at + 40].try_into().expect("4 bytes"));
        let checksum = u64::from_le_bytes(bytes[at + 40..at + 48].try_into().expect("8 bytes"));
        if len > MAX_RECORD_BYTES || u64::from(len) > remaining - RECORD_HEADER_BYTES {
            break; // torn or corrupt length
        }
        let payload_at = at + RECORD_HEADER_BYTES as usize;
        let payload = &bytes[payload_at..payload_at + len as usize];
        if fnv1a64(payload) != checksum {
            break; // torn payload
        }
        records
            .push((key, RecordLoc { segment, offset: pos + RECORD_HEADER_BYTES, len, checksum }));
        pos += RECORD_HEADER_BYTES + u64::from(len);
    }
    ScanOutcome { valid_len: pos, records }
}

impl DiskTier {
    /// Opens (or creates) a cache directory, scanning every segment to
    /// rebuild the index and truncating any torn tail left by a crash.
    ///
    /// # Errors
    ///
    /// I/O errors creating the directory, reading segments, or truncating
    /// a torn tail.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        Self::open_with_segment_bytes(dir, DEFAULT_SEGMENT_BYTES)
    }

    /// [`DiskTier::open`] with an explicit segment-rotation threshold
    /// (tests use small segments to exercise rotation).
    ///
    /// # Errors
    ///
    /// Same as [`DiskTier::open`].
    pub fn open_with_segment_bytes(
        dir: impl Into<PathBuf>,
        segment_bytes: u64,
    ) -> std::io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut index = HashMap::new();
        let mut total_bytes = 0u64;
        let mut recovered = 0u64;
        let mut truncated = 0u64;
        let ids = segment_ids(&dir)?;
        for &id in &ids {
            let path = segment_path(&dir, id);
            let bytes = fs::read(&path)?;
            let outcome = scan_segment(&bytes, id);
            if outcome.valid_len < bytes.len() as u64 {
                truncated += bytes.len() as u64 - outcome.valid_len;
                let f = OpenOptions::new().write(true).open(&path)?;
                f.set_len(outcome.valid_len)?;
                f.sync_all()?;
            }
            recovered += outcome.records.len() as u64;
            total_bytes += outcome.valid_len;
            for (key, loc) in outcome.records {
                index.insert(key, loc); // later records win
            }
        }
        let active_id = ids.last().copied().unwrap_or(0);
        let path = segment_path(&dir, active_id);
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let len = file.metadata()?.len();
        let state =
            DiskState { index, active: ActiveSegment { id: active_id, file, len }, total_bytes };
        Ok(Self {
            dir,
            segment_bytes,
            state: Mutex::new(state),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            corrupt_drops: AtomicU64::new(0),
            recovered_records: AtomicU64::new(recovered),
            truncated_bytes: AtomicU64::new(truncated),
        })
    }

    /// Looks up a plan's payload. Reads re-verify the checksum; a record
    /// that no longer verifies (bit rot) is dropped from the index and
    /// reported as a miss, so corruption degrades to a recompile rather
    /// than a wrong answer.
    pub fn get(&self, key: PlanKey) -> Option<Vec<u8>> {
        let loc = {
            let state = self.state.lock().expect("disk tier poisoned");
            state.index.get(&key).copied()
        };
        let Some(loc) = loc else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        match self.read_payload(loc) {
            Some(payload) if fnv1a64(&payload) == loc.checksum => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(payload)
            }
            _ => {
                self.corrupt_drops.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.state.lock().expect("disk tier poisoned").index.remove(&key);
                None
            }
        }
    }

    fn read_payload(&self, loc: RecordLoc) -> Option<Vec<u8>> {
        let path = segment_path(&self.dir, loc.segment);
        let mut f = File::open(path).ok()?;
        f.seek(SeekFrom::Start(loc.offset)).ok()?;
        let mut payload = vec![0u8; loc.len as usize];
        f.read_exact(&mut payload).ok()?;
        Some(payload)
    }

    /// Appends one plan. A key already on disk is left untouched —
    /// completed records are never rewritten (equal keys hold
    /// bit-identical payloads, so there is nothing to update).
    ///
    /// # Errors
    ///
    /// I/O errors appending or rotating. On error the in-memory index is
    /// unchanged; a partially appended record is the torn tail the next
    /// open truncates.
    pub fn put(&self, key: PlanKey, payload: &[u8]) -> std::io::Result<()> {
        if payload.len() as u64 > u64::from(MAX_RECORD_BYTES) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "plan payload exceeds the record ceiling",
            ));
        }
        let mut state = self.state.lock().expect("disk tier poisoned");
        if state.index.contains_key(&key) {
            return Ok(());
        }
        let record_len = RECORD_HEADER_BYTES + payload.len() as u64;
        if state.active.len > 0 && state.active.len + record_len > self.segment_bytes {
            let next = state.active.id + 1;
            let file =
                OpenOptions::new().create(true).append(true).open(segment_path(&self.dir, next))?;
            state.active = ActiveSegment { id: next, file, len: 0 };
        }
        let checksum = fnv1a64(payload);
        let mut header = Vec::with_capacity(RECORD_HEADER_BYTES as usize);
        header.extend_from_slice(&RECORD_MAGIC.to_le_bytes());
        for w in [key.program, key.machine, key.config, key.faults] {
            header.extend_from_slice(&w.to_le_bytes());
        }
        header.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        header.extend_from_slice(&checksum.to_le_bytes());
        state.active.file.write_all(&header)?;
        state.active.file.write_all(payload)?;
        state.active.file.flush()?;
        let loc = RecordLoc {
            segment: state.active.id,
            offset: state.active.len + RECORD_HEADER_BYTES,
            len: payload.len() as u32,
            checksum,
        };
        state.active.len += record_len;
        state.total_bytes += record_len;
        state.index.insert(key, loc);
        self.writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Fsyncs the active segment — after this returns, every completed
    /// record survives power loss, not just process death.
    ///
    /// # Errors
    ///
    /// The underlying `fsync` failure.
    pub fn sync(&self) -> std::io::Result<()> {
        let state = self.state.lock().expect("disk tier poisoned");
        state.active.file.sync_all()
    }

    /// Number of indexed records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.state.lock().expect("disk tier poisoned").index.len()
    }

    /// `true` when no records are indexed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The cache directory this tier writes to.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> DiskStats {
        let (records, bytes) = {
            let state = self.state.lock().expect("disk tier poisoned");
            (state.index.len() as u64, state.total_bytes)
        };
        DiskStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            corrupt_drops: self.corrupt_drops.load(Ordering::Relaxed),
            records,
            bytes,
            recovered_records: self.recovered_records.load(Ordering::Relaxed),
            truncated_bytes: self.truncated_bytes.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dmcp-disk-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn key(n: u64) -> PlanKey {
        PlanKey { program: n, machine: n ^ 0xAA, config: n ^ 0xBB, faults: n ^ 0xCC }
    }

    #[test]
    fn put_get_roundtrip_and_reopen() {
        let dir = tmpdir("roundtrip");
        let tier = DiskTier::open(&dir).expect("open");
        for n in 0..8u64 {
            let payload = vec![n as u8; 64 + n as usize];
            tier.put(key(n), &payload).expect("put");
            assert_eq!(tier.get(key(n)).as_deref(), Some(&payload[..]));
        }
        assert_eq!(tier.len(), 8);
        assert!(tier.get(key(99)).is_none());
        drop(tier);

        let reopened = DiskTier::open(&dir).expect("reopen");
        assert_eq!(reopened.len(), 8, "index rebuilt by scan");
        assert_eq!(reopened.stats().recovered_records, 8);
        assert_eq!(reopened.stats().truncated_bytes, 0);
        for n in 0..8u64 {
            let payload = vec![n as u8; 64 + n as usize];
            assert_eq!(reopened.get(key(n)).as_deref(), Some(&payload[..]));
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_put_is_a_noop() {
        let dir = tmpdir("dup");
        let tier = DiskTier::open(&dir).expect("open");
        tier.put(key(1), b"payload").expect("put");
        let bytes_after_first = tier.stats().bytes;
        tier.put(key(1), b"payload").expect("dup put");
        assert_eq!(tier.stats().bytes, bytes_after_first, "no rewrite");
        assert_eq!(tier.stats().writes, 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn segments_rotate_and_all_stay_readable() {
        let dir = tmpdir("rotate");
        // Tiny segments: every record larger than ~200B rotates.
        let tier = DiskTier::open_with_segment_bytes(&dir, 256).expect("open");
        for n in 0..6u64 {
            tier.put(key(n), &[0xAB; 150]).expect("put");
        }
        assert!(segment_ids(&dir).expect("ls").len() > 1, "rotation produced segments");
        drop(tier);
        let reopened = DiskTier::open_with_segment_bytes(&dir, 256).expect("reopen");
        assert_eq!(reopened.len(), 6);
        for n in 0..6u64 {
            assert!(reopened.get(key(n)).is_some(), "record {n} readable after rotation");
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_to_the_last_complete_record() {
        let dir = tmpdir("torn");
        let tier = DiskTier::open(&dir).expect("open");
        for n in 0..5u64 {
            tier.put(key(n), &[n as u8; 100]).expect("put");
        }
        drop(tier);

        // Simulate kill -9 mid-append: chop the last record's payload.
        let seg = segment_path(&dir, 0);
        let len = fs::metadata(&seg).expect("meta").len();
        let f = OpenOptions::new().write(true).open(&seg).expect("open seg");
        f.set_len(len - 37).expect("tear");
        drop(f);

        let recovered = DiskTier::open(&dir).expect("recover");
        let stats = recovered.stats();
        assert_eq!(recovered.len(), 4, "exactly the torn record is lost");
        assert_eq!(stats.recovered_records, 4);
        assert!(stats.truncated_bytes > 0, "torn tail measured");
        for n in 0..4u64 {
            assert_eq!(recovered.get(key(n)).as_deref(), Some(&[n as u8; 100][..]));
        }
        assert!(recovered.get(key(4)).is_none());
        // The file was physically truncated: a further reopen is clean.
        let again = DiskTier::open(&dir).expect("clean reopen");
        assert_eq!(again.stats().truncated_bytes, 0);
        assert_eq!(again.len(), 4);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn writes_after_recovery_append_cleanly() {
        let dir = tmpdir("append-after");
        let tier = DiskTier::open(&dir).expect("open");
        for n in 0..3u64 {
            tier.put(key(n), &[n as u8; 80]).expect("put");
        }
        drop(tier);
        let seg = segment_path(&dir, 0);
        let len = fs::metadata(&seg).expect("meta").len();
        OpenOptions::new().write(true).open(&seg).expect("seg").set_len(len - 10).expect("tear");

        let tier = DiskTier::open(&dir).expect("recover");
        assert_eq!(tier.len(), 2);
        tier.put(key(7), b"fresh after crash").expect("put");
        drop(tier);
        let tier = DiskTier::open(&dir).expect("reopen");
        assert_eq!(tier.len(), 3);
        assert_eq!(tier.get(key(7)).as_deref(), Some(&b"fresh after crash"[..]));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flipped_payload_byte_fails_verification_on_read() {
        let dir = tmpdir("bitrot");
        let tier = DiskTier::open(&dir).expect("open");
        tier.put(key(1), &[7u8; 50]).expect("put");
        drop(tier);
        // Flip one payload byte in place (not the tail — a mid-file flip).
        let seg = segment_path(&dir, 0);
        let mut bytes = fs::read(&seg).expect("read");
        let at = RECORD_HEADER_BYTES as usize + 10;
        bytes[at] ^= 0x40;
        fs::write(&seg, &bytes).expect("write");

        // The opening scan already rejects the record (checksum mismatch).
        let tier = DiskTier::open(&dir).expect("open");
        assert_eq!(tier.len(), 0, "corrupt record is not indexed");
        assert!(tier.get(key(1)).is_none());
        fs::remove_dir_all(&dir).ok();
    }
}
