//! The sharded, content-addressed plan cache.
//!
//! Compiled [`PartitionOutput`]s are memoized under their [`PlanKey`]. The
//! cache is split into `N` shards, each behind its own [`Mutex`], so
//! concurrent lookups from the worker pool and from client threads contend
//! per-shard rather than on one global lock. Each shard runs an LRU policy
//! over an *approximate byte* accounting of its plans (a plan's size is
//! dominated by its steps, inputs and per-instance records), and the whole
//! cache keeps hit/miss/insert/eviction counters that snapshot into a
//! [`CacheStats`] report.

use crate::key::PlanKey;
use dmcp_core::{NestPartition, PartitionOutput, StmtRecord};
use dmcp_core::{Step, StepInput};
use std::collections::HashMap;
use std::mem::size_of;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Approximate heap footprint of a compiled plan, in bytes.
///
/// Counts the containers that scale with program size — steps, their
/// inputs and waits, and the per-instance statistics records — plus the
/// fixed part of each nest. Allocator slack and small fixed fields are
/// ignored; the accounting only needs to be *proportional* so the byte
/// capacity ranks plans sensibly.
#[must_use]
pub fn approx_plan_bytes(plan: &PartitionOutput) -> usize {
    let mut bytes = size_of::<PartitionOutput>();
    for nest in &plan.nests {
        bytes += size_of::<NestPartition>();
        bytes += nest.stats.records.len() * size_of::<StmtRecord>();
        bytes += nest.schedule.steps.len() * size_of::<Step>();
        for step in &nest.schedule.steps {
            bytes += step.inputs.len() * size_of::<StepInput>();
            bytes += step.waits.len() * size_of::<u32>();
        }
    }
    bytes
}

/// Counter snapshot of one cache (or one service run).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Plans inserted.
    pub insertions: u64,
    /// Plans evicted to stay within the byte capacity.
    pub evictions: u64,
    /// Plans currently resident.
    pub entries: u64,
    /// Approximate bytes currently resident.
    pub bytes: u64,
}

impl CacheStats {
    /// Hit fraction of all lookups (0 when nothing was looked up).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    plan: Arc<PartitionOutput>,
    bytes: usize,
    /// Last-touch stamp from the shard's monotonic tick; smallest = LRU.
    stamp: u64,
}

struct Shard {
    map: HashMap<PlanKey, Entry>,
    bytes: usize,
    tick: u64,
}

impl Shard {
    fn touch(&mut self, key: PlanKey) -> Option<Arc<PartitionOutput>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(&key).map(|e| {
            e.stamp = tick;
            Arc::clone(&e.plan)
        })
    }
}

/// The sharded LRU plan cache. Capacity 0 disables caching entirely (every
/// lookup misses, nothing is stored) — the no-cache baseline configuration.
pub struct ShardedPlanCache {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard byte budget (total capacity / shard count).
    shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl ShardedPlanCache {
    /// Creates a cache with `capacity_bytes` split evenly over `shards`
    /// shards (shard count is clamped to at least 1).
    #[must_use]
    pub fn new(shards: usize, capacity_bytes: usize) -> Self {
        let shards = shards.max(1);
        Self {
            shard_capacity: capacity_bytes / shards,
            shards: (0..shards)
                .map(|_| Mutex::new(Shard { map: HashMap::new(), bytes: 0, tick: 0 }))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: PlanKey) -> &Mutex<Shard> {
        &self.shards[(key.digest() % self.shards.len() as u64) as usize]
    }

    /// Looks up a plan, refreshing its LRU position on a hit.
    pub fn get(&self, key: PlanKey) -> Option<Arc<PartitionOutput>> {
        let found = self.shard(key).lock().expect("cache shard poisoned").touch(key);
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Inserts a plan, evicting least-recently-used entries of the shard
    /// until it fits the byte budget. A plan larger than the whole shard
    /// budget is not retained. Re-inserting an existing key refreshes the
    /// entry.
    pub fn insert(&self, key: PlanKey, plan: Arc<PartitionOutput>) {
        if self.shard_capacity == 0 {
            return;
        }
        let bytes = approx_plan_bytes(&plan);
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        shard.tick += 1;
        let stamp = shard.tick;
        if let Some(old) = shard.map.insert(key, Entry { plan, bytes, stamp }) {
            shard.bytes -= old.bytes;
        }
        shard.bytes += bytes;
        self.insertions.fetch_add(1, Ordering::Relaxed);
        while shard.bytes > self.shard_capacity {
            let Some((&victim, _)) = shard.map.iter().min_by_key(|(_, e)| e.stamp) else {
                break;
            };
            let gone = shard.map.remove(&victim).expect("victim present");
            shard.bytes -= gone.bytes;
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Drops every entry (counters are preserved).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut s = shard.lock().expect("cache shard poisoned");
            s.map.clear();
            s.bytes = 0;
        }
    }

    /// Snapshots the counters and current occupancy.
    pub fn stats(&self) -> CacheStats {
        let (mut entries, mut bytes) = (0u64, 0u64);
        for shard in &self.shards {
            let s = shard.lock().expect("cache shard poisoned");
            entries += s.map.len() as u64;
            bytes += s.bytes as u64;
        }
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
            bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> PlanKey {
        PlanKey { program: n, machine: 0, config: 0, faults: 0 }
    }

    /// A plan with `steps` empty steps — a few hundred bytes per step.
    fn plan(steps: usize) -> Arc<PartitionOutput> {
        use dmcp_core::{NestStats, Schedule, StmtTag, SubId};
        let steps = (0..steps)
            .map(|k| Step {
                id: SubId(k as u32),
                node: dmcp_mach::NodeId::new(0, 0),
                seed: None,
                inputs: Vec::new(),
                store: None,
                waits: Vec::new(),
                tag: StmtTag::default(),
            })
            .collect();
        Arc::new(PartitionOutput::new(vec![NestPartition {
            nest: 0,
            schedule: Schedule { steps },
            stats: NestStats::default(),
        }]))
    }

    #[test]
    fn hit_miss_and_insert_counters() {
        let cache = ShardedPlanCache::new(4, 1 << 20);
        assert!(cache.get(key(1)).is_none());
        cache.insert(key(1), plan(4));
        assert!(cache.get(key(1)).is_some());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.insertions, s.evictions), (1, 1, 1, 0));
        assert_eq!(s.entries, 1);
        assert!(s.bytes > 0);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_least_recently_used_first() {
        // Single shard so ordering is observable; capacity fits two plans.
        let two = 2 * approx_plan_bytes(&plan(8));
        let cache = ShardedPlanCache::new(1, two);
        cache.insert(key(1), plan(8));
        cache.insert(key(2), plan(8));
        assert!(cache.get(key(1)).is_some(), "refresh key 1");
        cache.insert(key(3), plan(8));
        assert!(cache.get(key(1)).is_some(), "recently used survives");
        assert!(cache.get(key(3)).is_some(), "new entry survives");
        assert!(cache.get(key(2)).is_none(), "LRU entry evicted");
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = ShardedPlanCache::new(4, 0);
        cache.insert(key(1), plan(2));
        assert!(cache.get(key(1)).is_none());
        let s = cache.stats();
        assert_eq!(s.insertions, 0);
        assert_eq!(s.entries, 0);
    }

    #[test]
    fn oversized_plan_is_not_retained() {
        let small = approx_plan_bytes(&plan(2));
        let cache = ShardedPlanCache::new(1, small);
        cache.insert(key(1), plan(64));
        assert!(cache.get(key(1)).is_none());
        // But a fitting plan stays.
        cache.insert(key(2), plan(2));
        assert!(cache.get(key(2)).is_some());
    }

    #[test]
    fn reinsert_updates_bytes_not_entries() {
        let cache = ShardedPlanCache::new(1, 1 << 20);
        cache.insert(key(1), plan(2));
        let b1 = cache.stats().bytes;
        cache.insert(key(1), plan(4));
        let s = cache.stats();
        assert_eq!(s.entries, 1);
        assert!(s.bytes > b1);
        cache.clear();
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn plan_size_scales_with_steps() {
        assert!(approx_plan_bytes(&plan(64)) > 8 * approx_plan_bytes(&plan(4)));
    }
}
