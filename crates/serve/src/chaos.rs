//! A scripted loopback TCP shim for wire-level chaos tests.
//!
//! [`ChaosProxy`] sits between a [`PlanClient`](crate::PlanClient) and a
//! [`PlanServer`](crate::PlanServer) on loopback and mangles the
//! *server→client* byte stream per a per-connection script: delay it,
//! refuse the connection, cut it after N bytes (mid-frame truncation),
//! flip one byte (checksum corruption in transit), or split it into tiny
//! chunks with gaps (frame reassembly under partial reads). The
//! client→server direction is relayed faithfully, so the server always
//! sees well-formed requests — what is under test is the client's refusal
//! to ever accept a torn or corrupted response.
//!
//! The script is deterministic: connection *k* (in accept order) gets
//! `script[k]`; connections past the end of the script pass through
//! untouched, so "fail the first N attempts, then heal" is just a script
//! of N faults.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// What to do to one proxied connection's server→client stream.
#[derive(Clone, Copy, Debug)]
pub enum ChaosAction {
    /// Relay untouched.
    Pass,
    /// Sleep before relaying the first response bytes.
    Delay(Duration),
    /// Accept, then close immediately without contacting the server.
    Refuse,
    /// Relay `after` response bytes, then cut the connection. `after`
    /// inside a frame is a mid-frame truncation.
    Drop {
        /// Response bytes relayed before the cut.
        after: usize,
    },
    /// XOR `mask` into the response byte at absolute offset `offset`.
    BitFlip {
        /// Absolute offset into the server→client stream.
        offset: usize,
        /// Bits to flip (must be non-zero to corrupt anything).
        mask: u8,
    },
    /// Relay the response in `chunk`-byte pieces with `gap` sleeps
    /// between them (exercises frame reassembly across partial reads).
    Split {
        /// Bytes per piece (zero is treated as one).
        chunk: usize,
        /// Sleep between pieces.
        gap: Duration,
    },
}

/// Counter snapshot of a [`ChaosProxy`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ProxyCounters {
    /// Connections accepted (including refused ones).
    pub connections: u64,
    /// Connections closed immediately by [`ChaosAction::Refuse`].
    pub refused: u64,
    /// Connections cut by [`ChaosAction::Drop`].
    pub dropped: u64,
    /// Bytes corrupted by [`ChaosAction::BitFlip`].
    pub flipped: u64,
}

#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    refused: AtomicU64,
    dropped: AtomicU64,
    flipped: AtomicU64,
}

/// A running chaos proxy. Dropping the handle stops the accept loop;
/// in-flight relays finish on their own as the endpoints close.
pub struct ChaosProxy {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    counters: Arc<Counters>,
    accept: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Binds an ephemeral loopback port forwarding to `upstream`, with
    /// connection *k* mangled per `script[k]` (pass-through past the
    /// script's end).
    ///
    /// # Errors
    ///
    /// Bind/configuration failures.
    pub fn start(upstream: SocketAddr, script: Vec<ChaosAction>) -> io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(Counters::default());
        let stop_for_loop = Arc::clone(&stop);
        let counters_for_loop = Arc::clone(&counters);
        let accept = std::thread::Builder::new()
            .name("dmcp-chaos-accept".to_string())
            .spawn(move || {
                accept_loop(&listener, upstream, &script, &stop_for_loop, &counters_for_loop);
            })
            .expect("spawn chaos accept thread");
        Ok(Self { local_addr, stop, counters, accept: Some(accept) })
    }

    /// The proxy's own address — point the client here.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Counter snapshot.
    #[must_use]
    pub fn counters(&self) -> ProxyCounters {
        ProxyCounters {
            connections: self.counters.connections.load(Ordering::Relaxed),
            refused: self.counters.refused.load(Ordering::Relaxed),
            dropped: self.counters.dropped.load(Ordering::Relaxed),
            flipped: self.counters.flipped.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting and joins the accept thread.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    upstream: SocketAddr,
    script: &[ChaosAction],
    stop: &Arc<AtomicBool>,
    counters: &Arc<Counters>,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((client, _peer)) => {
                let k = counters.connections.fetch_add(1, Ordering::Relaxed) as usize;
                let action = script.get(k).copied().unwrap_or(ChaosAction::Pass);
                if matches!(action, ChaosAction::Refuse) {
                    counters.refused.fetch_add(1, Ordering::Relaxed);
                    let _ = client.shutdown(Shutdown::Both);
                    continue;
                }
                let stop = Arc::clone(stop);
                let counters = Arc::clone(counters);
                let _ = std::thread::Builder::new().name("dmcp-chaos-conn".to_string()).spawn(
                    move || {
                        let _ = proxy_connection(&client, upstream, action, &stop, &counters);
                    },
                );
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// Relay deadline: a relay side that sees no bytes for this long while
/// the proxy is stopping gives up (keeps test teardown prompt).
const RELAY_POLL: Duration = Duration::from_millis(50);

fn proxy_connection(
    client: &TcpStream,
    upstream: SocketAddr,
    action: ChaosAction,
    stop: &Arc<AtomicBool>,
    counters: &Arc<Counters>,
) -> io::Result<()> {
    let server = TcpStream::connect_timeout(&upstream, Duration::from_secs(2))?;
    client.set_nodelay(true).ok();
    server.set_nodelay(true).ok();

    // Client→server: faithful relay on its own thread.
    let c2s_from = client.try_clone()?;
    let c2s_to = server.try_clone()?;
    let stop_fwd = Arc::clone(stop);
    let fwd = std::thread::Builder::new()
        .name("dmcp-chaos-fwd".to_string())
        .spawn(move || relay(&c2s_from, &c2s_to, ChaosAction::Pass, &stop_fwd, None))?;

    // Server→client: the mangled direction.
    relay(&server, client, action, stop, Some(counters));
    let _ = fwd.join();
    Ok(())
}

/// Copies `from` into `to`, applying `action` to the stream. Closes both
/// directions on exit so the peer sees EOF rather than a hang.
fn relay(
    from: &TcpStream,
    to: &TcpStream,
    action: ChaosAction,
    stop: &Arc<AtomicBool>,
    counters: Option<&Arc<Counters>>,
) {
    let _ = from.set_read_timeout(Some(RELAY_POLL));
    let mut from = from;
    let mut to = to;
    let mut pos = 0usize; // bytes relayed so far
    let mut buf = [0u8; 4096];
    'outer: loop {
        let n = match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
            Err(_) => break,
        };
        let mut chunk = buf[..n].to_vec();
        match action {
            ChaosAction::Pass | ChaosAction::Refuse => {}
            ChaosAction::Delay(d) => {
                if pos == 0 {
                    std::thread::sleep(d);
                }
            }
            ChaosAction::BitFlip { offset, mask } => {
                if offset >= pos && offset < pos + n {
                    chunk[offset - pos] ^= mask;
                    if let Some(c) = counters {
                        c.flipped.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            ChaosAction::Drop { after } => {
                if pos + n > after {
                    chunk.truncate(after.saturating_sub(pos));
                    let _ = to.write_all(&chunk);
                    if let Some(c) = counters {
                        c.dropped.fetch_add(1, Ordering::Relaxed);
                    }
                    break;
                }
            }
            ChaosAction::Split { chunk: piece, gap } => {
                let piece = piece.max(1);
                for part in chunk.chunks(piece) {
                    if to.write_all(part).is_err() {
                        break 'outer;
                    }
                    std::thread::sleep(gap);
                }
                pos += n;
                continue;
            }
        }
        if to.write_all(&chunk).is_err() {
            break;
        }
        pos += n;
    }
    let _ = to.shutdown(Shutdown::Both);
    let _ = from.shutdown(Shutdown::Both);
}
