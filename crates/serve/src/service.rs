//! The compilation service: a bounded queue, a worker pool, single-flight
//! deduplication and the plan cache behind one handle.
//!
//! Life of a request:
//!
//! 1. [`PlanService::submit`] derives the request's [`PlanKey`] and probes
//!    the cache — a hit returns a ready ticket without touching the queue;
//! 2. on a miss, the in-flight table is consulted: if the same key is
//!    already queued or compiling, the ticket joins that *flight* instead
//!    of enqueueing a second compile (single-flight);
//! 3. otherwise a job enters the bounded queue. A full queue is a typed
//!    admission error ([`ServeError::QueueFull`]) so callers can shed load
//!    instead of blocking unboundedly;
//! 4. a worker thread dequeues the job, compiles it (reusing memoized
//!    per-nest window sizes when the same key was compiled before), stores
//!    the plan in the cache and wakes every ticket of the flight.
//!
//! Shutdown is graceful: [`PlanService::shutdown`] closes the queue,
//! workers drain what was admitted, and every outstanding ticket resolves.

use crate::cache::{CacheStats, ShardedPlanCache};
use crate::disk::{DiskStats, DiskTier, DEFAULT_REPROBE, DEFAULT_SEGMENT_BYTES};
use crate::key::{PlanKey, PlanRequest};
use crate::storage::{RealIo, StorageIo};
use dmcp_core::{PartitionError, PartitionOutput, Partitioner};
use dmcp_mach::FaultState;
use dmcp_pool::{Pool, SubmitError, WorkerPool};
use std::collections::HashMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Service configuration.
#[derive(Clone)]
pub struct ServeConfig {
    /// Worker threads compiling plans.
    pub workers: usize,
    /// Bounded request-queue depth; a full queue rejects with
    /// [`ServeError::QueueFull`].
    pub queue_depth: usize,
    /// Plan-cache capacity in (approximate) bytes. 0 disables caching.
    pub cache_bytes: usize,
    /// Cache shard count.
    pub cache_shards: usize,
    /// Share one compile among concurrent requests for the same key.
    /// Disabled only by the no-cache baseline, which wants every request
    /// to cost a full compile.
    pub single_flight: bool,
    /// Directory for the durable plan tier ([`DiskTier`]); `None` runs
    /// memory-only. Memory-cache misses fall through to disk before
    /// compiling; compiles write through.
    pub disk_dir: Option<PathBuf>,
    /// Segment-rotation threshold for the disk tier.
    pub disk_segment_bytes: u64,
    /// Interval between degraded-tier re-probes (see
    /// [`DiskTier::open_with_io`]).
    pub disk_reprobe: Duration,
    /// Storage implementation for the disk tier; `None` uses [`RealIo`].
    /// The chaos harness passes a [`FaultyIo`](crate::storage::FaultyIo)
    /// here to inject disk faults under a live service.
    pub disk_io: Option<Arc<dyn StorageIo>>,
    /// Deadline for one ticket's wait on an in-flight compile; a wedged
    /// compile surfaces as [`ServeError::Timeout`] instead of hanging
    /// every duplicate request forever. `None` waits unboundedly.
    pub wait_timeout: Option<Duration>,
    /// Chaos knob: every compile panics. Exists solely so tests can drive
    /// the worker-panic containment path ([`ServeError::Internal`])
    /// end-to-end; never set in production.
    #[doc(hidden)]
    pub chaos_compile_panic: bool,
}

impl fmt::Debug for ServeConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServeConfig")
            .field("workers", &self.workers)
            .field("queue_depth", &self.queue_depth)
            .field("cache_bytes", &self.cache_bytes)
            .field("cache_shards", &self.cache_shards)
            .field("single_flight", &self.single_flight)
            .field("disk_dir", &self.disk_dir)
            .field("disk_segment_bytes", &self.disk_segment_bytes)
            .field("disk_reprobe", &self.disk_reprobe)
            .field("disk_io", &self.disk_io.as_ref().map(|_| "custom"))
            .field("wait_timeout", &self.wait_timeout)
            .field("chaos_compile_panic", &self.chaos_compile_panic)
            .finish()
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_depth: 64,
            cache_bytes: 64 << 20,
            cache_shards: 8,
            single_flight: true,
            disk_dir: None,
            disk_segment_bytes: DEFAULT_SEGMENT_BYTES,
            disk_reprobe: DEFAULT_REPROBE,
            disk_io: None,
            wait_timeout: Some(Duration::from_secs(120)),
            chaos_compile_panic: false,
        }
    }
}

/// Errors surfaced by the service.
#[derive(Clone, Debug, PartialEq)]
pub enum ServeError {
    /// The bounded request queue is full — shed load and retry later.
    QueueFull,
    /// A wait on an in-flight compile exceeded its deadline. The compile
    /// may still finish and populate the cache; retrying is safe.
    Timeout,
    /// The service has been shut down.
    ShuttingDown,
    /// The compile itself failed (invalid config, dead assignment, …).
    Compile(PartitionError),
    /// The durable tier could not be opened.
    Disk(String),
    /// A worker panicked mid-compile. The panic was contained (the worker
    /// and every other flight are unaffected); retrying the same request
    /// will very likely panic again, so the code is not retryable.
    Internal(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::QueueFull => f.write_str("request queue is full"),
            ServeError::Timeout => f.write_str("timed out waiting for an in-flight compile"),
            ServeError::ShuttingDown => f.write_str("service is shutting down"),
            ServeError::Compile(e) => write!(f, "compilation failed: {e}"),
            ServeError::Disk(e) => write!(f, "durable tier unavailable: {e}"),
            ServeError::Internal(e) => write!(f, "internal failure (contained panic): {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Compile(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PartitionError> for ServeError {
    fn from(e: PartitionError) -> Self {
        ServeError::Compile(e)
    }
}

/// The result every ticket resolves to.
pub type PlanResult = Result<Arc<PartitionOutput>, ServeError>;

/// One in-flight compilation, shared by every ticket waiting on it.
struct Flight {
    done: Mutex<Option<PlanResult>>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Arc<Self> {
        Arc::new(Self { done: Mutex::new(None), cv: Condvar::new() })
    }

    fn complete(&self, result: PlanResult) {
        *self.done.lock().expect("flight poisoned") = Some(result);
        self.cv.notify_all();
    }

    /// Waits for the flight to resolve, up to `timeout` (`None` waits
    /// unboundedly). Elapsing the deadline is [`ServeError::Timeout`]; the
    /// flight itself keeps running and may still populate the cache.
    fn wait_deadline(&self, timeout: Option<Duration>) -> PlanResult {
        let mut done = self.done.lock().expect("flight poisoned");
        let deadline = timeout.map(|t| Instant::now() + t);
        loop {
            if let Some(r) = &*done {
                return r.clone();
            }
            match deadline {
                None => done = self.cv.wait(done).expect("flight poisoned"),
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(ServeError::Timeout);
                    }
                    let (next, timed_out) =
                        self.cv.wait_timeout(done, deadline - now).expect("flight poisoned");
                    done = next;
                    if timed_out.timed_out() && done.is_none() {
                        return Err(ServeError::Timeout);
                    }
                }
            }
        }
    }
}

/// A handle to one submitted request; [`PlanTicket::wait`] blocks until
/// the plan is ready (immediately for cache hits).
pub struct PlanTicket {
    inner: TicketInner,
    /// The service's configured wait deadline, applied by [`PlanTicket::wait`].
    wait_timeout: Option<Duration>,
    /// The service's timeout counter, bumped when a wait elapses.
    timeouts: Arc<AtomicU64>,
}

enum TicketInner {
    Ready(Arc<PartitionOutput>),
    Flight(Arc<Flight>),
}

impl PlanTicket {
    /// Blocks until the compile resolves and returns the shared plan,
    /// bounded by the service's configured `wait_timeout`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Timeout`] when the deadline elapses first; otherwise
    /// whatever the compile resolved to.
    pub fn wait(self) -> PlanResult {
        let timeout = self.wait_timeout;
        self.wait_up_to(timeout)
    }

    /// [`PlanTicket::wait`] with an explicit deadline, overriding the
    /// service default.
    ///
    /// # Errors
    ///
    /// Same as [`PlanTicket::wait`].
    pub fn wait_within(self, timeout: Duration) -> PlanResult {
        self.wait_up_to(Some(timeout))
    }

    fn wait_up_to(self, timeout: Option<Duration>) -> PlanResult {
        match self.inner {
            TicketInner::Ready(plan) => Ok(plan),
            TicketInner::Flight(f) => {
                let result = f.wait_deadline(timeout);
                if matches!(result, Err(ServeError::Timeout)) {
                    self.timeouts.fetch_add(1, Ordering::Relaxed);
                }
                result
            }
        }
    }

    /// `true` when the ticket was answered from the cache at submit time.
    #[must_use]
    pub fn from_cache(&self) -> bool {
        matches!(self.inner, TicketInner::Ready(_))
    }
}

struct Job {
    key: PlanKey,
    request: PlanRequest,
    flight: Arc<Flight>,
}

struct Inner {
    cache: ShardedPlanCache,
    /// The durable tier, when configured: probed on memory misses, written
    /// through on compiles, flushed on shutdown.
    disk: Option<DiskTier>,
    inflight: Mutex<HashMap<PlanKey, Arc<Flight>>>,
    /// Memoized per-nest window sizes by key: survives cache eviction (it
    /// is tiny), so a recompile of a known key skips the 1‥8 search sweep
    /// and still produces a bit-identical plan. Shared slices: the compile
    /// path borrows them without cloning the vector.
    windows: Mutex<HashMap<PlanKey, Arc<[usize]>>>,
    compiles: AtomicU64,
    shared: AtomicU64,
    submitted: AtomicU64,
    rejected: AtomicU64,
    timeouts: Arc<AtomicU64>,
    /// Worker panics contained by [`Inner::run_job`].
    panics: AtomicU64,
    /// Cleared by shutdown before the drain: new submissions are refused
    /// while admitted work finishes.
    admitting: AtomicBool,
    single_flight: bool,
    /// Chaos knob mirrored from [`ServeConfig::chaos_compile_panic`].
    chaos_compile_panic: bool,
}

/// Compiles one request from scratch, optionally reusing per-nest window
/// sizes from a previous compile of the same key. Pure: touches no cache,
/// memo or counter. Both the worker-pool path and the conformance path
/// ([`PlanService::plan_uncached`]) funnel through here, so "cached" and
/// "recompiled" plans are produced by the same code.
fn compile_output(
    request: &PlanRequest,
    windows: Option<&[usize]>,
) -> Result<PartitionOutput, ServeError> {
    let data = match &request.data {
        Some(d) => d.clone(),
        None => request.program.initial_data(),
    };
    // Concurrency lives at the request grain here (the service's worker
    // pool), so each compile runs its pipeline single-threaded — plans are
    // bit-identical either way.
    let pool = Pool::single();
    let hints = windows.unwrap_or(&[]);
    match &request.faults {
        None => {
            request.config.validate()?;
            let partitioner =
                Partitioner::new(&request.machine, &request.program, request.config.clone());
            Ok(partitioner.run_pipeline(&request.program, &data, &pool, false, hints))
        }
        Some(plan) => {
            let faults = FaultState::new(plan.clone(), request.machine.mesh)
                .map_err(PartitionError::from)?;
            let partitioner = Partitioner::new_degraded(
                &request.machine,
                &request.program,
                request.config.clone(),
                &faults,
            )?;
            let out = partitioner.run_pipeline(&request.program, &data, &pool, false, hints);
            // Degraded plans must uphold the live-node invariant; check
            // exactly as `try_partition` would.
            for nest in &out.nests {
                for step in &nest.schedule.steps {
                    if !partitioner.layout().is_live(step.node) {
                        return Err(ServeError::Compile(PartitionError::DeadNodeInSchedule {
                            nest: nest.nest,
                            node: step.node,
                        }));
                    }
                }
            }
            Ok(out)
        }
    }
}

impl Inner {
    /// Probes memory, then disk. A disk hit is decoded, promoted into the
    /// memory LRU and served; a payload that fails to decode is treated as
    /// a miss (the caller recompiles — corruption degrades, never lies).
    fn lookup(&self, key: PlanKey) -> Option<Arc<PartitionOutput>> {
        if let Some(plan) = self.cache.get(key) {
            return Some(plan);
        }
        let bytes = self.disk.as_ref()?.get(key)?;
        match crate::codec::decode_plan(&bytes) {
            Ok(out) => {
                let plan = Arc::new(out);
                self.cache.insert(key, Arc::clone(&plan));
                Some(plan)
            }
            Err(_) => None,
        }
    }

    /// Compiles one request, reusing memoized window sizes when available.
    fn compile(&self, key: PlanKey, request: &PlanRequest) -> PlanResult {
        assert!(!self.chaos_compile_panic, "chaos: injected compile panic");
        self.compiles.fetch_add(1, Ordering::Relaxed);
        let windows = self.windows.lock().expect("window memo poisoned").get(&key).cloned();
        let out = compile_output(request, windows.as_deref())?;
        if windows.is_none() {
            self.windows
                .lock()
                .expect("window memo poisoned")
                .insert(key, Arc::from(out.window_sizes()));
        }
        let plan = Arc::new(out);
        self.cache.insert(key, Arc::clone(&plan));
        if let Some(disk) = &self.disk {
            // Write-through. An append failure only costs durability of
            // this one plan (it stays served from memory); a partial
            // append is the torn tail the next open truncates.
            let _ = disk.put(key, &crate::codec::encode_plan(&plan));
        }
        Ok(plan)
    }

    fn run_job(&self, job: Job) {
        // The key may have landed in the cache (or on disk) while the job
        // sat in the queue (an identical key re-submitted after this
        // flight was registered goes through the flight, but a *different*
        // service user may race the compile after an eviction).
        //
        // The whole lookup-or-compile runs under `catch_unwind`: a panic
        // anywhere in the partitioner must resolve this flight (with a
        // typed [`ServeError::Internal`]) instead of leaving every waiter
        // hanging and poisoning the worker.
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match self.lookup(job.key) {
                Some(plan) => Ok(plan),
                None => self.compile(job.key, &job.request),
            }))
            .unwrap_or_else(|payload| {
                self.panics.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::Internal(panic_text(payload.as_ref())))
            });
        self.inflight.lock().expect("inflight poisoned").remove(&job.key);
        job.flight.complete(result);
    }
}

/// Best-effort text of a panic payload (`&str` and `String` panics).
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".to_string()
    }
}

/// Snapshot of the service's counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeStats {
    /// Cache counters.
    pub cache: CacheStats,
    /// Compiles actually executed by the worker pool.
    pub compiles: u64,
    /// Requests that joined an existing flight instead of compiling
    /// (single-flight deduplication).
    pub shared: u64,
    /// Requests admitted (cache hits included).
    pub submitted: u64,
    /// Requests rejected with [`ServeError::QueueFull`].
    pub rejected: u64,
    /// Ticket waits that elapsed their deadline ([`ServeError::Timeout`]).
    pub timeouts: u64,
    /// Worker panics contained as [`ServeError::Internal`].
    pub panics: u64,
    /// Durable-tier counters (all zero when no disk tier is configured).
    pub disk: DiskStats,
}

/// The concurrent partition-plan compilation service.
///
/// Dropping the service shuts it down gracefully (queued work drains
/// first); prefer calling [`PlanService::shutdown`] to make that explicit.
pub struct PlanService {
    inner: Arc<Inner>,
    pool: WorkerPool,
    wait_timeout: Option<Duration>,
}

impl PlanService {
    /// Spawns the worker pool and returns the service handle.
    ///
    /// # Panics
    ///
    /// Panics if a configured disk tier cannot be opened — use
    /// [`PlanService::try_new`] to handle that as a typed error.
    #[must_use]
    pub fn new(config: ServeConfig) -> Self {
        Self::try_new(config).expect("disk tier open failed")
    }

    /// Spawns the worker pool, opening (and crash-recovering) the durable
    /// tier when one is configured.
    ///
    /// # Errors
    ///
    /// [`ServeError::Disk`] when the configured `disk_dir` cannot be
    /// opened or recovered.
    pub fn try_new(config: ServeConfig) -> Result<Self, ServeError> {
        let disk = match &config.disk_dir {
            None => None,
            Some(dir) => {
                let io: Arc<dyn StorageIo> =
                    config.disk_io.clone().unwrap_or_else(|| Arc::new(RealIo));
                Some(
                    DiskTier::open_with_io(dir, config.disk_segment_bytes, config.disk_reprobe, io)
                        .map_err(|e| ServeError::Disk(e.to_string()))?,
                )
            }
        };
        let inner = Arc::new(Inner {
            cache: ShardedPlanCache::new(config.cache_shards, config.cache_bytes),
            disk,
            inflight: Mutex::new(HashMap::new()),
            windows: Mutex::new(HashMap::new()),
            compiles: AtomicU64::new(0),
            shared: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            timeouts: Arc::new(AtomicU64::new(0)),
            panics: AtomicU64::new(0),
            admitting: AtomicBool::new(true),
            single_flight: config.single_flight,
            chaos_compile_panic: config.chaos_compile_panic,
        });
        let pool = WorkerPool::new("dmcp-serve", config.workers, config.queue_depth);
        Ok(Self { inner, pool, wait_timeout: config.wait_timeout })
    }

    /// Submits one request. Returns a ticket immediately; the compile (if
    /// any) happens on the worker pool.
    ///
    /// # Errors
    ///
    /// [`ServeError::QueueFull`] when the bounded queue cannot admit the
    /// request, [`ServeError::ShuttingDown`] after shutdown began.
    pub fn submit(&self, request: PlanRequest) -> Result<PlanTicket, ServeError> {
        if !self.inner.admitting.load(Ordering::SeqCst) {
            return Err(ServeError::ShuttingDown);
        }
        self.inner.submitted.fetch_add(1, Ordering::Relaxed);
        let key = request.key();
        if let Some(plan) = self.inner.lookup(key) {
            return Ok(self.ticket(TicketInner::Ready(plan)));
        }
        let mut inflight = self.inner.inflight.lock().expect("inflight poisoned");
        if self.inner.single_flight {
            if let Some(flight) = inflight.get(&key) {
                self.inner.shared.fetch_add(1, Ordering::Relaxed);
                return Ok(self.ticket(TicketInner::Flight(Arc::clone(flight))));
            }
        }
        let flight = Flight::new();
        if self.inner.single_flight {
            inflight.insert(key, Arc::clone(&flight));
        }
        // Hold the in-flight lock across the enqueue so a worker cannot
        // finish the job (and remove the flight) before it is registered.
        let job = Job { key, request, flight: Arc::clone(&flight) };
        let inner_for_job = Arc::clone(&self.inner);
        let admit = self.pool.try_submit(move || inner_for_job.run_job(job)).map_err(|e| match e {
            SubmitError::QueueFull => ServeError::QueueFull,
            SubmitError::Closed => ServeError::ShuttingDown,
        });
        if let Err(e) = admit {
            if self.inner.single_flight {
                inflight.remove(&key);
            }
            if e == ServeError::QueueFull {
                self.inner.rejected.fetch_add(1, Ordering::Relaxed);
            }
            return Err(e);
        }
        Ok(self.ticket(TicketInner::Flight(flight)))
    }

    fn ticket(&self, inner: TicketInner) -> PlanTicket {
        PlanTicket {
            inner,
            wait_timeout: self.wait_timeout,
            timeouts: Arc::clone(&self.inner.timeouts),
        }
    }

    /// Submit-and-wait convenience for synchronous callers.
    ///
    /// # Errors
    ///
    /// Everything [`PlanService::submit`] returns, plus compile errors.
    pub fn plan(&self, request: PlanRequest) -> PlanResult {
        self.submit(request)?.wait()
    }

    /// Compiles `request` synchronously on the calling thread, bypassing
    /// the cache, the queue, single-flight *and* the window-size memo —
    /// nothing is read from or written to any service state, and the
    /// window search runs from scratch.
    ///
    /// This is the conformance harness's reference path: the serving
    /// invariant is that a plan answered from the cache is bit-identical
    /// to this from-scratch recompile of an equal key.
    ///
    /// # Errors
    ///
    /// Compile errors only ([`ServeError::Compile`]).
    pub fn plan_uncached(&self, request: &PlanRequest) -> PlanResult {
        compile_output(request, None).map(Arc::new)
    }

    /// Compiles a batch: submits every request (applying backpressure by
    /// waiting for earlier tickets whenever the queue is full) and waits
    /// for all results, returned in request order.
    pub fn serve_batch(&self, requests: Vec<PlanRequest>) -> Vec<PlanResult> {
        let mut slots: Vec<Option<PlanResult>> = Vec::with_capacity(requests.len());
        let mut pending: Vec<(usize, PlanTicket)> = Vec::new();
        for (i, request) in requests.into_iter().enumerate() {
            slots.push(None);
            loop {
                match self.submit(request.clone()) {
                    Ok(ticket) => {
                        pending.push((i, ticket));
                        break;
                    }
                    Err(ServeError::QueueFull) => {
                        // Backpressure: resolve the oldest outstanding
                        // ticket (freeing a queue slot) and retry.
                        match pending.is_empty() {
                            true => std::thread::yield_now(),
                            false => {
                                let (slot, ticket) = pending.remove(0);
                                slots[slot] = Some(ticket.wait());
                            }
                        }
                    }
                    Err(e) => {
                        slots[i] = Some(Err(e));
                        break;
                    }
                }
            }
        }
        for (slot, ticket) in pending {
            slots[slot] = Some(ticket.wait());
        }
        slots.into_iter().map(|s| s.expect("every slot resolved")).collect()
    }

    /// Snapshot of the service counters.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            cache: self.inner.cache.stats(),
            compiles: self.inner.compiles.load(Ordering::Relaxed),
            shared: self.inner.shared.load(Ordering::Relaxed),
            submitted: self.inner.submitted.load(Ordering::Relaxed),
            rejected: self.inner.rejected.load(Ordering::Relaxed),
            timeouts: self.inner.timeouts.load(Ordering::Relaxed),
            panics: self.inner.panics.load(Ordering::Relaxed),
            disk: self.inner.disk.as_ref().map(DiskTier::stats).unwrap_or_default(),
        }
    }

    /// Direct access to the plan cache (tests, cache warming).
    pub fn cache(&self) -> &ShardedPlanCache {
        &self.inner.cache
    }

    /// Direct access to the durable tier, when one is configured.
    pub fn disk(&self) -> Option<&DiskTier> {
        self.inner.disk.as_ref()
    }

    /// Graceful shutdown: stops admitting, drains the queue, joins the
    /// workers. Every ticket handed out before the call still resolves.
    /// (Dropping the service does the same via the pool's own `Drop`.)
    pub fn shutdown(self) {
        self.shutdown_within(Duration::from_secs(3600));
    }

    /// Graceful shutdown with an explicit drain deadline:
    ///
    /// 1. admission stops — new [`PlanService::submit`]s get
    ///    [`ServeError::ShuttingDown`];
    /// 2. admitted work drains, up to `deadline`;
    /// 3. on a complete drain, the in-flight table is asserted empty
    ///    (every flight resolved — no ticket is left hanging);
    /// 4. the durable tier is fsynced and the workers are joined.
    ///
    /// Returns `true` when the drain completed within the deadline.
    ///
    /// # Panics
    ///
    /// Panics if a completed drain left entries in the in-flight table —
    /// that would mean a ticket exists whose flight can never resolve,
    /// which is exactly the bug this drain ordering exists to rule out.
    pub fn shutdown_within(mut self, deadline: Duration) -> bool {
        self.inner.admitting.store(false, Ordering::SeqCst);
        let drained = self.pool.drain_within(deadline);
        if drained {
            let inflight = self.inner.inflight.lock().expect("inflight poisoned");
            assert!(
                inflight.is_empty(),
                "drained queue left {} unresolved flights",
                inflight.len()
            );
        }
        if let Some(disk) = &self.inner.disk {
            let _ = disk.sync();
        }
        // With the queue drained this joins the workers immediately; on a
        // missed deadline it still waits for the wedged job — the bound
        // applies to the drain, shutdown never abandons running threads.
        self.pool.close();
        drained
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmcp_ir::{Program, ProgramBuilder};
    use dmcp_mach::MachineConfig;

    fn program(iters: i64) -> Program {
        let mut b = ProgramBuilder::new();
        for n in ["A", "B", "C", "D"] {
            b.array(n, &[256], 8);
        }
        b.nest(&[("i", 0, iters)], &["A[i] = B[i] + C[i] + D[i]"]).unwrap();
        b.build()
    }

    fn request(iters: i64) -> PlanRequest {
        PlanRequest::new(program(iters), MachineConfig::knl_like(), <_>::default())
    }

    #[test]
    fn plan_compiles_once_then_hits() {
        let service = PlanService::new(ServeConfig::default());
        let a = service.plan(request(32)).unwrap();
        let b = service.plan(request(32)).unwrap();
        assert_eq!(a, b);
        let stats = service.stats();
        assert_eq!(stats.compiles, 1);
        assert_eq!(stats.cache.hits, 1);
        service.shutdown();
    }

    #[test]
    fn plan_uncached_matches_cached_and_touches_no_state() {
        let service = PlanService::new(ServeConfig::default());
        let cached = service.plan(request(32)).unwrap();
        let fresh = service.plan_uncached(&request(32)).unwrap();
        assert_eq!(cached, fresh);
        let stats = service.stats();
        assert_eq!(stats.compiles, 1, "uncached compile bypasses the pool");
        assert_eq!(stats.cache.hits, 0, "uncached compile does not probe the cache");
        service.shutdown();
    }

    #[test]
    fn distinct_programs_get_distinct_plans() {
        let service = PlanService::new(ServeConfig::default());
        let a = service.plan(request(32)).unwrap();
        let b = service.plan(request(48)).unwrap();
        assert_ne!(a, b);
        assert_eq!(service.stats().compiles, 2);
    }

    #[test]
    fn invalid_config_is_a_typed_error() {
        let service = PlanService::new(ServeConfig::default());
        let mut req = request(16);
        req.config.max_window = 0;
        let err = service.plan(req).unwrap_err();
        assert!(matches!(err, ServeError::Compile(PartitionError::InvalidConfig(_))));
    }

    #[test]
    fn queue_full_is_reported() {
        // One worker, depth-1 queue: the worker parks on the first job, the
        // queue holds one more, further submits are rejected. Distinct
        // programs defeat single-flight joining.
        let service =
            PlanService::new(ServeConfig { workers: 1, queue_depth: 1, ..ServeConfig::default() });
        let mut tickets = Vec::new();
        let mut rejected = 0;
        for i in 0..24 {
            match service.submit(request(200 + i)) {
                Ok(t) => tickets.push(t),
                Err(ServeError::QueueFull) => rejected += 1,
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(rejected > 0, "a depth-1 queue must reject under a burst");
        assert_eq!(service.stats().rejected, rejected);
        for t in tickets {
            t.wait().unwrap();
        }
    }

    #[test]
    fn shutdown_drains_admitted_work() {
        let service =
            PlanService::new(ServeConfig { workers: 2, queue_depth: 16, ..ServeConfig::default() });
        let tickets: Vec<PlanTicket> =
            (0..6).map(|i| service.submit(request(64 + i)).unwrap()).collect();
        service.shutdown();
        for t in tickets {
            assert!(t.wait().is_ok(), "admitted work resolves across shutdown");
        }
    }

    #[test]
    fn submit_after_shutdown_fails() {
        let mut service = PlanService::new(ServeConfig::default());
        let inner = Arc::clone(&service.inner);
        service.pool.close();
        let err = service.plan(request(16)).unwrap_err();
        assert_eq!(err, ServeError::ShuttingDown);
        drop(service);
        assert_eq!(inner.compiles.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn compile_panic_resolves_the_flight_and_keeps_workers_alive() {
        let service = PlanService::new(ServeConfig {
            workers: 1,
            chaos_compile_panic: true,
            ..ServeConfig::default()
        });
        let err = service.plan(request(32)).unwrap_err();
        assert!(matches!(err, ServeError::Internal(_)), "panic surfaces typed, got {err:?}");
        // The single worker survived: a second request still resolves
        // (it panics again — the knob is global — but never hangs).
        let err = service.plan(request(48)).unwrap_err();
        assert!(matches!(err, ServeError::Internal(_)));
        assert_eq!(service.stats().panics, 2);
        service.shutdown();
    }

    #[test]
    fn serve_batch_preserves_order_under_backpressure() {
        let service =
            PlanService::new(ServeConfig { workers: 2, queue_depth: 2, ..ServeConfig::default() });
        let reqs: Vec<PlanRequest> = (0..10).map(|i| request(16 + (i % 3) * 16)).collect();
        let direct: Vec<Arc<PartitionOutput>> =
            reqs.iter().map(|r| service.plan(r.clone()).unwrap()).collect();
        let batch = service.serve_batch(reqs);
        assert_eq!(batch.len(), 10);
        for (got, want) in batch.iter().zip(&direct) {
            assert_eq!(got.as_ref().unwrap(), want);
        }
        // 3 distinct keys → 3 compiles total despite 20 requests.
        assert_eq!(service.stats().compiles, 3);
    }
}
