//! The storage abstraction under the durable tier, and its chaos twins.
//!
//! [`DiskTier`](crate::disk::DiskTier) performs a small, closed set of
//! file operations — create the cache directory, list/read/truncate/rename
//! segments, append-and-flush records, fsync files and the directory.
//! [`StorageIo`] names exactly that set, so the tier can run over:
//!
//! * [`RealIo`] — `std::fs`, the production implementation;
//! * [`MemIo`] — an in-memory filesystem, used by the crash-consistency
//!   fuzzer to simulate thousands of crashes per second without touching
//!   a real disk;
//! * [`FaultyIo`] — a deterministic, seeded fault injector wrapping any
//!   inner implementation. It can fail the nth operation, apply a *short*
//!   write (a prefix lands, the call errors), simulate a crash at an
//!   exact operation boundary (the in-flight write is torn to a seeded
//!   prefix and every later operation fails), or run a *storm* (every
//!   mutating operation fails until the storm is lifted — the loadgen's
//!   disk-fault storm).
//!
//! Fault points are counted over *mutating* operations only (writes,
//! flushes, syncs, truncates, renames, creates), because those are the
//! operations whose partial effects crash consistency is about. The
//! counter is shared through [`ChaosState`], so a test can measure how
//! many write boundaries a scenario has, then re-run it crashing at each.

use dmcp_mach::rng::mix;
use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// An open, append-only file handle.
pub trait StorageFile: Send {
    /// Appends `bytes` at the end of the file.
    ///
    /// # Errors
    ///
    /// I/O failure; a failed append may have applied a prefix (torn
    /// write) — callers must treat the tail as suspect.
    fn write_all(&mut self, bytes: &[u8]) -> io::Result<()>;

    /// Flushes buffered bytes to the OS (survives process death).
    ///
    /// # Errors
    ///
    /// I/O failure.
    fn flush(&mut self) -> io::Result<()>;

    /// Fsyncs the file (survives power loss).
    ///
    /// # Errors
    ///
    /// The underlying fsync failure.
    fn sync(&mut self) -> io::Result<()>;
}

/// Every file operation the durable tier performs, as a trait, so faults
/// can be injected at exactly this boundary.
pub trait StorageIo: Send + Sync {
    /// Creates `dir` and its parents.
    ///
    /// # Errors
    ///
    /// I/O failure.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;

    /// File names (not paths) directly inside `dir`.
    ///
    /// # Errors
    ///
    /// I/O failure.
    fn list(&self, dir: &Path) -> io::Result<Vec<String>>;

    /// Reads a whole file.
    ///
    /// # Errors
    ///
    /// I/O failure.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Reads exactly `len` bytes at `offset`.
    ///
    /// # Errors
    ///
    /// I/O failure, including a file shorter than `offset + len`.
    fn read_at(&self, path: &Path, offset: u64, len: usize) -> io::Result<Vec<u8>>;

    /// Opens (creating if absent) a file for appending.
    ///
    /// # Errors
    ///
    /// I/O failure.
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn StorageFile>>;

    /// Current length of the file at `path`.
    ///
    /// # Errors
    ///
    /// I/O failure.
    fn file_len(&self, path: &Path) -> io::Result<u64>;

    /// Truncates the file to `len` bytes and syncs it.
    ///
    /// # Errors
    ///
    /// I/O failure.
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()>;

    /// Renames `from` to `to` (same directory — quarantine moves).
    ///
    /// # Errors
    ///
    /// I/O failure.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Fsyncs the directory itself, making created/renamed entries
    /// durable.
    ///
    /// # Errors
    ///
    /// The underlying fsync failure.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
}

// ---------------------------------------------------------------------------
// RealIo
// ---------------------------------------------------------------------------

/// The production implementation over `std::fs`.
#[derive(Clone, Copy, Debug, Default)]
pub struct RealIo;

struct RealFile(File);

impl StorageFile for RealFile {
    fn write_all(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.0.write_all(bytes)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.0.flush()
    }

    fn sync(&mut self) -> io::Result<()> {
        self.0.sync_all()
    }
}

impl StorageIo for RealIo {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(dir)? {
            if let Some(name) = entry?.file_name().to_str() {
                names.push(name.to_string());
            }
        }
        Ok(names)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn read_at(&self, path: &Path, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        let mut f = File::open(path)?;
        f.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; len];
        f.read_exact(&mut buf)?;
        Ok(buf)
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Box::new(RealFile(file)))
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        Ok(fs::metadata(path)?.len())
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let f = OpenOptions::new().write(true).open(path)?;
        f.set_len(len)?;
        f.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        // Directory fsync makes freshly created/renamed entries durable
        // across power loss (POSIX leaves them floating otherwise).
        File::open(dir)?.sync_all()
    }
}

// ---------------------------------------------------------------------------
// MemIo
// ---------------------------------------------------------------------------

/// An in-memory filesystem: a map from path to bytes. Crash simulation
/// reopens the same [`MemIo`] with a fresh tier — whatever bytes were
/// "applied" before the crash are exactly what the new tier sees.
#[derive(Debug, Default)]
pub struct MemIo {
    files: Mutex<BTreeMap<PathBuf, Vec<u8>>>,
}

impl MemIo {
    /// An empty in-memory filesystem.
    #[must_use]
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Snapshot of a file's bytes (tests inspect torn tails directly).
    #[must_use]
    pub fn bytes(&self, path: &Path) -> Option<Vec<u8>> {
        self.files.lock().expect("memio poisoned").get(path).cloned()
    }

    /// Overwrites a file in place (tests plant corruption).
    pub fn write(&self, path: &Path, bytes: Vec<u8>) {
        self.files.lock().expect("memio poisoned").insert(path.to_path_buf(), bytes);
    }
}

struct MemFile {
    io: Arc<MemIo>,
    path: PathBuf,
}

impl StorageFile for MemFile {
    fn write_all(&mut self, bytes: &[u8]) -> io::Result<()> {
        let mut files = self.io.files.lock().expect("memio poisoned");
        files.entry(self.path.clone()).or_default().extend_from_slice(bytes);
        Ok(())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl StorageIo for Arc<MemIo> {
    fn create_dir_all(&self, _dir: &Path) -> io::Result<()> {
        Ok(())
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        let files = self.files.lock().expect("memio poisoned");
        Ok(files
            .keys()
            .filter(|p| p.parent() == Some(dir))
            .filter_map(|p| p.file_name().and_then(|n| n.to_str()).map(str::to_string))
            .collect())
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.bytes(path).ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))
    }

    fn read_at(&self, path: &Path, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        let bytes = self.read(path)?;
        let start = usize::try_from(offset)
            .map_err(|_| io::Error::new(io::ErrorKind::UnexpectedEof, "offset beyond file"))?;
        let end = start.checked_add(len).filter(|&e| e <= bytes.len());
        match end {
            Some(end) => Ok(bytes[start..end].to_vec()),
            None => Err(io::Error::new(io::ErrorKind::UnexpectedEof, "read past end of file")),
        }
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        let mut files = self.files.lock().expect("memio poisoned");
        files.entry(path.to_path_buf()).or_default();
        Ok(Box::new(MemFile { io: Arc::clone(self), path: path.to_path_buf() }))
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        self.read(path).map(|b| b.len() as u64)
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let mut files = self.files.lock().expect("memio poisoned");
        let bytes = files
            .get_mut(path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))?;
        bytes.truncate(len as usize);
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut files = self.files.lock().expect("memio poisoned");
        let bytes = files
            .remove(from)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))?;
        files.insert(to.to_path_buf(), bytes);
        Ok(())
    }

    fn sync_dir(&self, _dir: &Path) -> io::Result<()> {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// FaultyIo
// ---------------------------------------------------------------------------

/// Never-fires sentinel for the operation-index knobs.
const NEVER: u64 = u64::MAX;

/// Shared, thread-safe fault switchboard of a [`FaultyIo`]. Tests and the
/// loadgen hold a clone to arm faults and read the operation counter.
#[derive(Debug)]
pub struct ChaosState {
    /// Mutating operations attempted so far (armed or not).
    ops: AtomicU64,
    /// Operation index that fails once, without applying (then disarms).
    fail_at: AtomicU64,
    /// Operation index whose *write* applies only a seeded prefix and
    /// errors (then disarms). Non-write operations just fail.
    short_at: AtomicU64,
    /// Operation index at which the simulated crash happens: the
    /// in-flight write is torn to a seeded prefix, and every operation
    /// from then on fails.
    crash_at: AtomicU64,
    /// While set, every mutating operation fails without applying.
    storm: AtomicBool,
    /// Set once `crash_at` has fired.
    crashed: AtomicBool,
    /// Seed for torn-prefix lengths.
    seed: u64,
    /// Faults actually injected (ops failed or torn).
    injected: AtomicU64,
}

impl ChaosState {
    fn new(seed: u64) -> Self {
        Self {
            ops: AtomicU64::new(0),
            fail_at: AtomicU64::new(NEVER),
            short_at: AtomicU64::new(NEVER),
            crash_at: AtomicU64::new(NEVER),
            storm: AtomicBool::new(false),
            crashed: AtomicBool::new(false),
            seed,
            injected: AtomicU64::new(0),
        }
    }

    /// Mutating operations attempted so far.
    #[must_use]
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::SeqCst)
    }

    /// Faults injected so far (failed or torn operations).
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::SeqCst)
    }

    /// Arms a one-shot failure at absolute operation index `op`.
    pub fn fail_at(&self, op: u64) {
        self.fail_at.store(op, Ordering::SeqCst);
    }

    /// Arms a one-shot short write at absolute operation index `op`.
    pub fn short_write_at(&self, op: u64) {
        self.short_at.store(op, Ordering::SeqCst);
    }

    /// Arms the crash at absolute operation index `op`.
    pub fn crash_at(&self, op: u64) {
        self.crash_at.store(op, Ordering::SeqCst);
    }

    /// Turns the fault storm on or off.
    pub fn set_storm(&self, on: bool) {
        self.storm.store(on, Ordering::SeqCst);
    }

    /// `true` while the storm is on.
    #[must_use]
    pub fn storm(&self) -> bool {
        self.storm.load(Ordering::SeqCst)
    }

    /// `true` once the armed crash has fired.
    #[must_use]
    pub fn crashed(&self) -> bool {
        self.crashed.load(Ordering::SeqCst)
    }

    /// What fault (if any) applies to the mutating operation being
    /// attempted right now; bumps the operation counter.
    fn admit(&self) -> Fault {
        let op = self.ops.fetch_add(1, Ordering::SeqCst);
        if self.crashed.load(Ordering::SeqCst) {
            return Fault::Dead;
        }
        if op == self.crash_at.load(Ordering::SeqCst) {
            self.crashed.store(true, Ordering::SeqCst);
            self.injected.fetch_add(1, Ordering::SeqCst);
            return Fault::Crash(op);
        }
        if self.storm.load(Ordering::SeqCst) {
            self.injected.fetch_add(1, Ordering::SeqCst);
            return Fault::Fail("injected fault storm");
        }
        if op == self.fail_at.swap(NEVER, Ordering::SeqCst) {
            self.injected.fetch_add(1, Ordering::SeqCst);
            return Fault::Fail("injected one-shot failure");
        }
        if op == self.short_at.swap(NEVER, Ordering::SeqCst) {
            self.injected.fetch_add(1, Ordering::SeqCst);
            return Fault::Short(op);
        }
        Fault::None
    }

    /// Seeded torn-prefix length for a write of `len` bytes at `op`.
    fn torn_len(&self, op: u64, len: usize) -> usize {
        if len == 0 {
            return 0;
        }
        (mix(self.seed ^ mix(op)) % (len as u64 + 1)) as usize
    }
}

enum Fault {
    None,
    Fail(&'static str),
    /// Apply a seeded prefix of the write, then error.
    Short(u64),
    /// Apply a seeded prefix of the write, then error, then fail
    /// everything after (simulated process death).
    Crash(u64),
    /// The crash already happened; every operation fails.
    Dead,
}

fn injected_err(what: &str) -> io::Error {
    io::Error::other(format!("chaos: {what}"))
}

/// A fault-injecting [`StorageIo`] wrapping any inner implementation.
/// Cloning shares the same [`ChaosState`].
#[derive(Clone)]
pub struct FaultyIo {
    inner: Arc<dyn StorageIo>,
    state: Arc<ChaosState>,
}

impl std::fmt::Debug for FaultyIo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultyIo").field("state", &self.state).finish_non_exhaustive()
    }
}

impl FaultyIo {
    /// Wraps `inner`, injecting faults per the shared switchboard.
    #[must_use]
    pub fn new(inner: Arc<dyn StorageIo>, seed: u64) -> Self {
        Self { inner, state: Arc::new(ChaosState::new(seed)) }
    }

    /// The shared fault switchboard.
    #[must_use]
    pub fn chaos(&self) -> Arc<ChaosState> {
        Arc::clone(&self.state)
    }

    /// Gate for a non-write mutating operation: the fault either lets it
    /// through or fails it whole (nothing partial to apply).
    fn gate(&self, what: &str) -> io::Result<()> {
        match self.state.admit() {
            Fault::None => Ok(()),
            Fault::Fail(msg) => Err(injected_err(msg)),
            Fault::Short(_) => Err(injected_err("short-write fault on a non-write op")),
            Fault::Crash(_) => Err(injected_err(&format!("crash during {what}"))),
            Fault::Dead => Err(injected_err("process is dead (post-crash)")),
        }
    }
}

struct FaultyFile {
    inner: Box<dyn StorageFile>,
    state: Arc<ChaosState>,
}

impl StorageFile for FaultyFile {
    fn write_all(&mut self, bytes: &[u8]) -> io::Result<()> {
        match self.state.admit() {
            Fault::None => self.inner.write_all(bytes),
            Fault::Fail(msg) => Err(injected_err(msg)),
            Fault::Short(op) | Fault::Crash(op) => {
                // Torn write: a seeded prefix lands, the call errors.
                let n = self.state.torn_len(op, bytes.len());
                self.inner.write_all(&bytes[..n])?;
                Err(injected_err("torn write"))
            }
            Fault::Dead => Err(injected_err("process is dead (post-crash)")),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self.state.admit() {
            Fault::None => self.inner.flush(),
            _ => Err(injected_err("flush failed")),
        }
    }

    fn sync(&mut self) -> io::Result<()> {
        match self.state.admit() {
            Fault::None => self.inner.sync(),
            _ => Err(injected_err("fsync failed")),
        }
    }
}

impl StorageIo for FaultyIo {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.gate("create_dir_all")?;
        self.inner.create_dir_all(dir)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        if self.state.crashed() {
            return Err(injected_err("process is dead (post-crash)"));
        }
        self.inner.list(dir)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        if self.state.crashed() {
            return Err(injected_err("process is dead (post-crash)"));
        }
        self.inner.read(path)
    }

    fn read_at(&self, path: &Path, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        if self.state.crashed() {
            return Err(injected_err("process is dead (post-crash)"));
        }
        self.inner.read_at(path, offset, len)
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        self.gate("open_append")?;
        let inner = self.inner.open_append(path)?;
        Ok(Box::new(FaultyFile { inner, state: Arc::clone(&self.state) }))
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        if self.state.crashed() {
            return Err(injected_err("process is dead (post-crash)"));
        }
        self.inner.file_len(path)
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        self.gate("truncate")?;
        self.inner.truncate(path, len)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.gate("rename")?;
        self.inner.rename(from, to)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        self.gate("sync_dir")?;
        self.inner.sync_dir(dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    #[test]
    fn memio_append_read_truncate_rename() {
        let mem = MemIo::new();
        let io: &dyn StorageIo = &Arc::clone(&mem);
        io.create_dir_all(&p("/d")).unwrap();
        let mut f = io.open_append(&p("/d/a.log")).unwrap();
        f.write_all(b"hello ").unwrap();
        f.write_all(b"world").unwrap();
        f.flush().unwrap();
        assert_eq!(io.read(&p("/d/a.log")).unwrap(), b"hello world");
        assert_eq!(io.read_at(&p("/d/a.log"), 6, 5).unwrap(), b"world");
        assert!(io.read_at(&p("/d/a.log"), 6, 6).is_err(), "read past end");
        assert_eq!(io.file_len(&p("/d/a.log")).unwrap(), 11);
        io.truncate(&p("/d/a.log"), 5).unwrap();
        assert_eq!(io.read(&p("/d/a.log")).unwrap(), b"hello");
        io.rename(&p("/d/a.log"), &p("/d/b.quarantine")).unwrap();
        assert!(io.read(&p("/d/a.log")).is_err());
        let mut names = io.list(&p("/d")).unwrap();
        names.sort();
        assert_eq!(names, ["b.quarantine"]);
    }

    #[test]
    fn faulty_one_shot_failure_fires_once_then_clears() {
        let mem = MemIo::new();
        let io = FaultyIo::new(Arc::new(Arc::clone(&mem)), 7);
        let chaos = io.chaos();
        let mut f = io.open_append(&p("/a")).unwrap(); // op 0
        chaos.fail_at(chaos.ops()); // next op fails
        assert!(f.write_all(b"x").is_err());
        f.write_all(b"y").unwrap();
        assert_eq!(mem.bytes(&p("/a")).unwrap(), b"y");
        assert_eq!(chaos.injected(), 1);
    }

    #[test]
    fn crash_tears_the_inflight_write_and_kills_everything_after() {
        let mem = MemIo::new();
        let io = FaultyIo::new(Arc::new(Arc::clone(&mem)), 0xC4A5);
        let chaos = io.chaos();
        let mut f = io.open_append(&p("/a")).unwrap();
        f.write_all(b"committed.").unwrap();
        chaos.crash_at(chaos.ops());
        let err = f.write_all(b"0123456789abcdef").expect_err("crash");
        assert!(err.to_string().contains("chaos"));
        // A seeded prefix (possibly empty) of the in-flight write landed.
        let bytes = mem.bytes(&p("/a")).unwrap();
        assert!(bytes.starts_with(b"committed."));
        assert!(bytes.len() <= b"committed.".len() + 16);
        // Everything after the crash fails: writes, opens, reads.
        assert!(f.write_all(b"z").is_err());
        assert!(io.open_append(&p("/b")).is_err());
        assert!(io.read(&p("/a")).is_err());
        assert!(chaos.crashed());
        // The inner filesystem is intact for a fresh (reopened) tier.
        assert_eq!(mem.bytes(&p("/a")).unwrap(), bytes);
    }

    #[test]
    fn storm_fails_every_mutating_op_until_lifted() {
        let mem = MemIo::new();
        let io = FaultyIo::new(Arc::new(Arc::clone(&mem)), 1);
        let chaos = io.chaos();
        let mut f = io.open_append(&p("/a")).unwrap();
        chaos.set_storm(true);
        assert!(f.write_all(b"x").is_err());
        assert!(f.flush().is_err());
        assert!(io.sync_dir(&p("/")).is_err());
        chaos.set_storm(false);
        f.write_all(b"x").unwrap();
        f.flush().unwrap();
        assert_eq!(mem.bytes(&p("/a")).unwrap(), b"x");
    }

    #[test]
    fn short_write_applies_a_strict_prefix_and_errors() {
        let mem = MemIo::new();
        let io = FaultyIo::new(Arc::new(Arc::clone(&mem)), 3);
        let chaos = io.chaos();
        let mut f = io.open_append(&p("/a")).unwrap();
        chaos.short_write_at(chaos.ops());
        assert!(f.write_all(b"0123456789").is_err());
        let torn = mem.bytes(&p("/a")).unwrap().len();
        assert!(torn <= 10, "prefix only");
        // Not dead: the next write succeeds (transient fault, not crash).
        f.write_all(b"ok").unwrap();
        assert_eq!(mem.bytes(&p("/a")).unwrap().len(), torn + 2);
    }

    #[test]
    fn torn_len_is_deterministic_per_seed_and_op() {
        let s = ChaosState::new(42);
        assert_eq!(s.torn_len(5, 100), s.torn_len(5, 100));
        assert_eq!(s.torn_len(9, 0), 0);
    }
}
