//! Open-loop load generator for the plan server.
//!
//! Drives a zipf-skewed request mix over the 12 paper workloads at a fixed
//! arrival rate (open loop: arrival times are scheduled up front, so a slow
//! server accumulates queueing delay instead of silently slowing the
//! generator — latency numbers include the time a request waited past its
//! scheduled arrival). Each client thread runs a [`PlanClient`] with the
//! full timeout/retry/backoff policy; errors and retries are counted, and
//! p50/p99 latency, throughput and error/retry counts land in
//! `BENCH_serve.json`.
//!
//! ```text
//! dmcp-loadgen [--requests N] [--rate RPS] [--clients N] [--zipf S]
//!              [--seed S] [--workers N] [--cache-dir DIR] [--out PATH]
//!              [--addr HOST:PORT] [--restart] [--chaos]
//! ```
//!
//! Without `--addr`, the generator hosts an in-process server on
//! `127.0.0.1:0`. `--restart` (in-process only) runs the mix twice — cold,
//! then against a *fresh* server and service rebuilt over the same cache
//! directory — and exits nonzero if the warm pass recompiled anything:
//! the durable tier must serve a restart entirely from disk.
//!
//! `--chaos` (in-process only) runs the fault-injection acceptance drill:
//! the service's disk tier rides a seeded [`FaultyIo`] over an in-memory
//! store, and client traffic is routed through a [`ChaosProxy`] that
//! corrupts, truncates, splits and delays response frames. Mid-run every
//! disk op starts failing (a storm); the run demands that **every**
//! response that arrives matches an independently compiled reference plan
//! bit for bit, that the tier degrades to memory-only instead of failing
//! requests, and that it recovers (drains its parked writes) once the
//! storm lifts. Error rate, retry counts and the measured recovery time
//! land in a `"chaos"` section of `BENCH_serve.json`; wrong plans, an
//! unrecovered tier or undrained writes exit nonzero.

use dmcp_ir::ProgramBuilder;
use dmcp_mach::rng::Rng64;
use dmcp_mach::MachineConfig;
use dmcp_serve::codec::{decode_plan, encode_request};
use dmcp_serve::{
    ChaosAction, ChaosProxy, ClientConfig, FaultyIo, MemIo, NetConfig, PlanClient, PlanRequest,
    PlanServer, PlanService, ServeConfig, ServeStats, StorageIo,
};
use dmcp_workloads::Scale;
use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    requests: usize,
    rate: f64,
    clients: usize,
    zipf: f64,
    seed: u64,
    workers: usize,
    cache_dir: Option<String>,
    out: String,
    addr: Option<String>,
    restart: bool,
    chaos: bool,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            requests: 96,
            rate: 200.0,
            clients: 4,
            zipf: 1.0,
            seed: 0x10AD_4E4E,
            workers: 4,
            cache_dir: None,
            out: "BENCH_serve.json".to_string(),
            addr: None,
            restart: false,
            chaos: false,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or(format!("{flag} needs a value"));
        let parse = |s: String| -> Result<usize, String> { s.parse().map_err(|e| format!("{e}")) };
        match flag.as_str() {
            "--requests" => args.requests = parse(value("--requests")?)?,
            "--clients" => args.clients = parse(value("--clients")?)?.max(1),
            "--workers" => args.workers = parse(value("--workers")?)?.max(1),
            "--rate" => {
                args.rate = value("--rate")?.parse().map_err(|e| format!("{e}"))?;
                if args.rate <= 0.0 || !args.rate.is_finite() {
                    return Err("--rate must be positive".to_string());
                }
            }
            "--zipf" => args.zipf = value("--zipf")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--cache-dir" => args.cache_dir = Some(value("--cache-dir")?),
            "--out" => args.out = value("--out")?,
            "--addr" => args.addr = Some(value("--addr")?),
            "--restart" => args.restart = true,
            "--chaos" => args.chaos = true,
            "--help" | "-h" => {
                return Err("usage: dmcp-loadgen [--requests N] [--rate RPS] [--clients N] \
                     [--zipf S] [--seed S] [--workers N] [--cache-dir DIR] [--out PATH] \
                     [--addr HOST:PORT] [--restart] [--chaos]"
                    .to_string())
            }
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    if args.restart && args.addr.is_some() {
        return Err("--restart drives an in-process server; drop --addr".to_string());
    }
    if args.restart && args.cache_dir.is_none() {
        return Err("--restart needs --cache-dir (the tier that must survive)".to_string());
    }
    if args.chaos && args.addr.is_some() {
        return Err("--chaos drives an in-process server; drop --addr".to_string());
    }
    if args.chaos && args.restart {
        return Err("--chaos and --restart are separate drills; pick one".to_string());
    }
    Ok(args)
}

/// Zipf(s) over `n` ranks: weight of rank `k` (0-based) is `1/(k+1)^s`.
fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    let mut acc = 0.0;
    let mut cdf = Vec::with_capacity(n);
    for k in 0..n {
        acc += 1.0 / ((k + 1) as f64).powf(s);
        cdf.push(acc);
    }
    for w in &mut cdf {
        *w /= acc;
    }
    cdf
}

fn draw(cdf: &[f64], u: f64) -> usize {
    cdf.iter().position(|&c| u <= c).unwrap_or(cdf.len() - 1)
}

/// Outcome of one pass over the mix.
struct PassReport {
    label: String,
    completed: usize,
    errors: usize,
    retries: u64,
    wall_s: f64,
    lat_p50_ms: f64,
    lat_p99_ms: f64,
    lat_max_ms: f64,
    throughput: f64,
    stats: ServeStats,
}

/// Runs `args.requests` open-loop requests against `addr`, drawing
/// workloads zipf-skewed. `payloads` holds each workload's pre-encoded
/// request bytes.
fn run_pass(
    addr: SocketAddr,
    payloads: &[Vec<u8>],
    args: &Args,
    label: &str,
) -> Result<PassReport, String> {
    let cdf = zipf_cdf(payloads.len(), args.zipf);
    let mut rng = Rng64::new(args.seed);
    let picks: Vec<usize> = (0..args.requests).map(|_| draw(&cdf, rng.next_f64())).collect();

    let t0 = Instant::now();
    let per_thread: Vec<(Vec<(f64, bool)>, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.clients)
            .map(|c| {
                let picks = &picks;
                let client_config =
                    ClientConfig { seed: args.seed ^ (c as u64) << 32, ..ClientConfig::default() };
                scope.spawn(move || {
                    let mut client =
                        PlanClient::connect(addr, client_config).expect("resolve addr");
                    let mut out = Vec::new();
                    for k in (c..picks.len()).step_by(args.clients) {
                        // Open loop: request k is due at k/rate seconds.
                        let due = t0 + Duration::from_secs_f64(k as f64 / args.rate);
                        let now = Instant::now();
                        if due > now {
                            std::thread::sleep(due - now);
                        }
                        let ok = client.plan_bytes(&payloads[picks[k]]).is_ok();
                        // Latency from the *scheduled* arrival: waiting in
                        // line past the due time counts against the server.
                        out.push((due.elapsed().as_secs_f64() * 1e3, ok));
                    }
                    (out, client.counters().retries)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread panicked")).collect()
    });
    let wall_s = t0.elapsed().as_secs_f64();

    let retries: u64 = per_thread.iter().map(|(_, r)| r).sum();
    let mut lats: Vec<f64> = Vec::with_capacity(args.requests);
    let mut errors = 0usize;
    for (results, _) in &per_thread {
        for &(lat_ms, ok) in results {
            if ok {
                lats.push(lat_ms);
            } else {
                errors += 1;
            }
        }
    }
    lats.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let pct = |p: f64| -> f64 {
        if lats.is_empty() {
            return 0.0;
        }
        lats[((lats.len() - 1) as f64 * p).round() as usize]
    };

    // Server-side counters over the wire, proving the cache/disk story.
    let mut probe = PlanClient::connect(addr, ClientConfig::default())
        .map_err(|e| format!("stats client: {e}"))?;
    let stats = probe.stats().map_err(|e| format!("stats request: {e}"))?;

    Ok(PassReport {
        label: label.to_string(),
        completed: lats.len(),
        errors,
        retries,
        wall_s,
        lat_p50_ms: pct(0.50),
        lat_p99_ms: pct(0.99),
        lat_max_ms: lats.last().copied().unwrap_or(0.0),
        throughput: if wall_s > 0.0 { lats.len() as f64 / wall_s } else { 0.0 },
        stats,
    })
}

/// Outcome of the `--chaos` drill.
struct ChaosOutcome {
    requests: usize,
    wrong_plans: usize,
    failed_requests: usize,
    retries: u64,
    attempts: u64,
    backoff_ms: f64,
    degraded_observed: bool,
    recovered: bool,
    recovery_ms: f64,
    disk_errors: u64,
    quarantined_segments: u64,
    pending_after: u64,
    proxy_connections: u64,
    proxy_flipped: u64,
    proxy_dropped: u64,
}

impl ChaosOutcome {
    /// The acceptance bar: no wrong plan ever surfaced, the storm was
    /// actually felt, and the tier came back with nothing parked.
    fn passed(&self) -> bool {
        self.wrong_plans == 0 && self.degraded_observed && self.recovered && self.pending_after == 0
    }

    fn render_json(&self) -> String {
        format!(
            concat!(
                "{{\n  \"benchmark\": \"dmcp-loadgen chaos\",\n",
                "  \"chaos\": {{\"requests\": {}, \"wrong_plans\": {}, ",
                "\"failed_requests\": {}, \"retries\": {}, \"attempts\": {}, ",
                "\"backoff_ms\": {:.3}, \"degraded_observed\": {}, \"recovered\": {}, ",
                "\"recovery_ms\": {:.3}, \"disk_errors\": {}, \"quarantined_segments\": {}, ",
                "\"pending_after\": {}, \"proxy_connections\": {}, \"proxy_flipped\": {}, ",
                "\"proxy_dropped\": {}}}\n}}\n",
            ),
            self.requests,
            self.wrong_plans,
            self.failed_requests,
            self.retries,
            self.attempts,
            self.backoff_ms,
            self.degraded_observed,
            self.recovered,
            self.recovery_ms,
            self.disk_errors,
            self.quarantined_segments,
            self.pending_after,
            self.proxy_connections,
            self.proxy_flipped,
            self.proxy_dropped,
        )
    }
}

fn render_json(args: &Args, passes: &[PassReport], warm_recompiles: Option<u64>) -> String {
    let mut out = String::from("{\n  \"benchmark\": \"dmcp-loadgen open-loop\",\n");
    out.push_str(&format!(
        "  \"requests\": {}, \"rate_rps\": {:.1}, \"clients\": {}, \"zipf\": {:.2},\n",
        args.requests, args.rate, args.clients, args.zipf
    ));
    if let Some(n) = warm_recompiles {
        out.push_str(&format!("  \"warm_recompiles\": {n},\n"));
    }
    out.push_str("  \"passes\": [\n");
    for (i, p) in passes.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "    {{\"label\": \"{}\", \"completed\": {}, \"errors\": {}, ",
                "\"retries\": {}, \"wall_s\": {:.6}, \"throughput_rps\": {:.3}, ",
                "\"lat_p50_ms\": {:.4}, \"lat_p99_ms\": {:.4}, \"lat_max_ms\": {:.4}, ",
                "\"compiles\": {}, \"cache_hits\": {}, \"disk_hits\": {}, ",
                "\"disk_writes\": {}, \"rejected\": {}, \"timeouts\": {}}}{}\n",
            ),
            p.label,
            p.completed,
            p.errors,
            p.retries,
            p.wall_s,
            p.throughput,
            p.lat_p50_ms,
            p.lat_p99_ms,
            p.lat_max_ms,
            p.stats.compiles,
            p.stats.cache.hits,
            p.stats.disk.hits,
            p.stats.disk.writes,
            p.stats.rejected,
            p.stats.timeouts,
            if i + 1 == passes.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn print_pass(p: &PassReport) {
    println!(
        "{:<6} completed={} errors={} retries={} p50={:.2}ms p99={:.2}ms max={:.2}ms \
         rps={:.1} compiles={} cache_hits={} disk_hits={}",
        p.label,
        p.completed,
        p.errors,
        p.retries,
        p.lat_p50_ms,
        p.lat_p99_ms,
        p.lat_max_ms,
        p.throughput,
        p.stats.compiles,
        p.stats.cache.hits,
        p.stats.disk.hits,
    );
}

/// Builds an in-process server over `cache_dir`, returning the server,
/// the service handle and the bound address.
fn spawn_server(args: &Args) -> Result<(PlanServer, Arc<PlanService>, SocketAddr), String> {
    let config = ServeConfig {
        workers: args.workers,
        disk_dir: args.cache_dir.clone().map(Into::into),
        ..ServeConfig::default()
    };
    let service = Arc::new(PlanService::try_new(config).map_err(|e| format!("service: {e}"))?);
    let server = PlanServer::start(Arc::clone(&service), "127.0.0.1:0", NetConfig::default())
        .map_err(|e| format!("bind: {e}"))?;
    let addr = server.local_addr();
    Ok((server, service, addr))
}

/// Stops an in-process server and gracefully drains its service.
fn teardown(server: PlanServer, service: Arc<PlanService>) -> Result<(), String> {
    server.stop();
    let service =
        Arc::try_unwrap(service).map_err(|_| "server still holds the service".to_string())?;
    if !service.shutdown_within(Duration::from_secs(30)) {
        return Err("service failed to drain within 30s".to_string());
    }
    Ok(())
}

/// A tiny synthetic program with a unique cache key per `trips` value —
/// the chaos drill needs fresh keys mid-storm so disk writes happen
/// *while* the disk is failing.
fn chaos_request(trips: i64) -> PlanRequest {
    let mut b = ProgramBuilder::new();
    for name in ["A", "B", "C", "D"] {
        b.array(name, &[4096], 8);
    }
    b.nest(&[("i", 0, trips)], &["A[i] = B[i] + C[i] + D[i]"]).expect("chaos nest");
    PlanRequest::new(b.build(), MachineConfig::knl_like(), <_>::default())
}

/// Sends `requests` through `client`, comparing every decoded response
/// against its reference plan. Returns (wrong, failed).
fn chaos_phase(
    client: &mut PlanClient,
    requests: &[PlanRequest],
    references: &[dmcp_serve::PlanResult],
) -> (usize, usize) {
    let (mut wrong, mut failed) = (0usize, 0usize);
    for (req, reference) in requests.iter().zip(references) {
        let reference = match reference {
            Ok(r) => r,
            Err(_) => continue,
        };
        match client.plan_bytes(&encode_request(req)) {
            Ok(bytes) => match decode_plan(&bytes) {
                Ok(plan) if plan == **reference => {}
                _ => wrong += 1,
            },
            Err(_) => failed += 1,
        }
    }
    (wrong, failed)
}

/// The `--chaos` drill: disk faults via [`FaultyIo`], wire faults via
/// [`ChaosProxy`], correctness judged against independently compiled
/// reference plans.
fn run_chaos(args: &Args) -> Result<ChaosOutcome, String> {
    const PER_PHASE: usize = 8;
    // Phase request sets with disjoint keys: healthy, mid-storm, recovered.
    let phases: Vec<Vec<PlanRequest>> = (0..3)
        .map(|p| (0..PER_PHASE).map(|i| chaos_request(16 + (p * PER_PHASE + i) as i64)).collect())
        .collect();
    // References compiled by a service with no cache, no disk, no faults.
    let referee = PlanService::new(ServeConfig { workers: 2, ..ServeConfig::default() });
    let references: Vec<Vec<dmcp_serve::PlanResult>> =
        phases.iter().map(|reqs| reqs.iter().map(|r| referee.plan_uncached(r)).collect()).collect();

    // The service under test: durable tier over a seeded fault injector on
    // an in-memory store (no real files harmed), fast re-probe.
    let mem = MemIo::new();
    let faulty = FaultyIo::new(Arc::new(mem), args.seed);
    let chaos = faulty.chaos();
    let config = ServeConfig {
        workers: args.workers,
        disk_dir: Some("/chaos-cache".into()),
        disk_reprobe: Duration::from_millis(25),
        disk_io: Some(Arc::new(faulty) as Arc<dyn StorageIo>),
        ..ServeConfig::default()
    };
    let service = Arc::new(PlanService::try_new(config).map_err(|e| format!("service: {e}"))?);
    let server = PlanServer::start(Arc::clone(&service), "127.0.0.1:0", NetConfig::default())
        .map_err(|e| format!("bind: {e}"))?;
    let addr = server.local_addr();

    // Wire mangling for the storm phase: corruption, truncation, frame
    // splitting, stalls — interleaved with clean connections so retries
    // land. Past the script every connection passes through.
    let script = vec![
        ChaosAction::BitFlip { offset: 16, mask: 0x20 },
        ChaosAction::Pass,
        ChaosAction::Drop { after: 10 },
        ChaosAction::Pass,
        ChaosAction::Split { chunk: 9, gap: Duration::from_millis(1) },
        ChaosAction::Delay(Duration::from_millis(10)),
        ChaosAction::Refuse,
        ChaosAction::Pass,
        ChaosAction::BitFlip { offset: 40, mask: 0x01 },
        ChaosAction::Pass,
        ChaosAction::Drop { after: 3 },
        ChaosAction::Pass,
    ];
    let proxy = ChaosProxy::start(addr, script).map_err(|e| format!("proxy: {e}"))?;

    let client_config = ClientConfig {
        io_timeout: Duration::from_secs(5),
        max_retries: 6,
        backoff_base: Duration::from_millis(10),
        seed: args.seed,
        ..ClientConfig::default()
    };
    let mut direct = PlanClient::connect(addr, client_config.clone())
        .map_err(|e| format!("direct client: {e}"))?;
    let mut proxied = PlanClient::connect(proxy.local_addr(), client_config.clone())
        .map_err(|e| format!("proxied client: {e}"))?;
    let mut probe =
        PlanClient::connect(addr, client_config).map_err(|e| format!("probe client: {e}"))?;

    // Phase 0: healthy baseline, direct.
    let (mut wrong, mut failed) = chaos_phase(&mut direct, &phases[0], &references[0]);
    println!("chaos: healthy phase done (wrong={wrong} failed={failed})");

    // Phase 1: disk storm + wire chaos, through the proxy.
    chaos.set_storm(true);
    let (w, f) = chaos_phase(&mut proxied, &phases[1], &references[1]);
    wrong += w;
    failed += f;
    let mid = probe.stats().map_err(|e| format!("mid-storm stats: {e}"))?;
    let degraded_observed = mid.disk.degraded;
    println!(
        "chaos: storm phase done (wrong={w} failed={f} degraded={} disk_errors={})",
        mid.disk.degraded, mid.disk.errors
    );

    // Lift the storm; stats polls double as re-probe opportunities. The
    // clock measures fault-clear to tier-restored.
    chaos.set_storm(false);
    let t0 = Instant::now();
    let mut recovered = false;
    while t0.elapsed() < Duration::from_secs(5) {
        let s = probe.stats().map_err(|e| format!("recovery stats: {e}"))?;
        if !s.disk.degraded && s.disk.pending_records == 0 {
            recovered = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let recovery_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Phase 2: healthy again, direct.
    let (w, f) = chaos_phase(&mut direct, &phases[2], &references[2]);
    wrong += w;
    failed += f;

    let stats = probe.stats().map_err(|e| format!("final stats: {e}"))?;
    let proxy_counters = proxy.counters();
    proxy.stop();
    teardown(server, service)?;

    let counters = [direct.counters(), proxied.counters(), probe.counters()];
    Ok(ChaosOutcome {
        requests: 3 * PER_PHASE,
        wrong_plans: wrong,
        failed_requests: failed,
        retries: counters.iter().map(|c| c.retries).sum(),
        attempts: counters.iter().map(|c| c.attempts).sum(),
        backoff_ms: counters.iter().map(|c| c.backoff.as_secs_f64() * 1e3).sum(),
        degraded_observed,
        recovered,
        recovery_ms,
        disk_errors: stats.disk.errors,
        quarantined_segments: stats.disk.quarantined_segments,
        pending_after: stats.disk.pending_records,
        proxy_connections: proxy_counters.connections,
        proxy_flipped: proxy_counters.flipped,
        proxy_dropped: proxy_counters.dropped,
    })
}

fn chaos_main(args: &Args) -> ExitCode {
    println!("dmcp-loadgen --chaos: disk storm + wire faults, seed {:#x}", args.seed);
    let outcome = match run_chaos(args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "chaos: {} requests, wrong_plans={} failed={} retries={} backoff={:.1}ms",
        outcome.requests,
        outcome.wrong_plans,
        outcome.failed_requests,
        outcome.retries,
        outcome.backoff_ms,
    );
    println!(
        "chaos: degraded_observed={} recovered={} in {:.1}ms disk_errors={} pending_after={}",
        outcome.degraded_observed,
        outcome.recovered,
        outcome.recovery_ms,
        outcome.disk_errors,
        outcome.pending_after,
    );
    let json = outcome.render_json();
    if let Err(e) = std::fs::write(&args.out, json) {
        eprintln!("failed to write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!("wrote {}", args.out);
    if outcome.passed() {
        println!("chaos drill passed: zero wrong plans, tier degraded and recovered");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "FAIL: chaos drill (wrong_plans={} degraded_observed={} recovered={} \
             pending_after={})",
            outcome.wrong_plans,
            outcome.degraded_observed,
            outcome.recovered,
            outcome.pending_after,
        );
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if args.chaos {
        return chaos_main(&args);
    }

    // Encode every workload's request once; the mix replays the bytes.
    let payloads: Vec<Vec<u8>> = dmcp_workloads::all(Scale::Tiny)
        .into_iter()
        .map(|w| {
            let req = PlanRequest::new(w.program, MachineConfig::knl_like(), <_>::default())
                .with_data(w.data);
            encode_request(&req)
        })
        .collect();
    println!(
        "dmcp-loadgen: {} requests at {:.0} req/s, {} clients, zipf {:.2}, 12 workloads",
        args.requests, args.rate, args.clients, args.zipf
    );

    let outcome = match &args.addr {
        Some(addr) => {
            let addr: SocketAddr = match addr.parse() {
                Ok(a) => a,
                Err(e) => {
                    eprintln!("bad --addr {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            run_pass(addr, &payloads, &args, "run").map(|p| (vec![p], None))
        }
        None => run_in_process(&args, &payloads),
    };

    let (passes, warm_recompiles) = match outcome {
        Ok(x) => x,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    for p in &passes {
        print_pass(p);
    }
    let json = render_json(&args, &passes, warm_recompiles);
    if let Err(e) = std::fs::write(&args.out, json) {
        eprintln!("failed to write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!("wrote {}", args.out);

    if let Some(n) = warm_recompiles {
        if n > 0 {
            eprintln!("FAIL: warm restart recompiled {n} plans (durable tier must serve them)");
            return ExitCode::FAILURE;
        }
        println!("warm restart served entirely from the durable tier (0 recompiles)");
    }
    ExitCode::SUCCESS
}

/// Hosts the server in-process. With `--restart`, runs cold + warm passes
/// across a full server/service teardown and rebuild on the same cache
/// directory, and reports how many plans the warm pass recompiled.
fn run_in_process(
    args: &Args,
    payloads: &[Vec<u8>],
) -> Result<(Vec<PassReport>, Option<u64>), String> {
    let (server, service, addr) = spawn_server(args)?;
    let cold = run_pass(addr, payloads, args, if args.restart { "cold" } else { "run" })?;
    teardown(server, service)?;
    if !args.restart {
        return Ok((vec![cold], None));
    }

    // Restart: fresh process state, same cache directory. Zero compiles
    // is the crash-safety acceptance bar.
    let (server, service, addr) = spawn_server(args)?;
    let warm = run_pass(addr, payloads, args, "warm")?;
    let warm_recompiles = warm.stats.compiles;
    teardown(server, service)?;
    Ok((vec![cold, warm], Some(warm_recompiles)))
}
