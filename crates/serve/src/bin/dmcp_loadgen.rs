//! Open-loop load generator for the plan server.
//!
//! Drives a zipf-skewed request mix over the 12 paper workloads at a fixed
//! arrival rate (open loop: arrival times are scheduled up front, so a slow
//! server accumulates queueing delay instead of silently slowing the
//! generator — latency numbers include the time a request waited past its
//! scheduled arrival). Each client thread runs a [`PlanClient`] with the
//! full timeout/retry/backoff policy; errors and retries are counted, and
//! p50/p99 latency, throughput and error/retry counts land in
//! `BENCH_serve.json`.
//!
//! ```text
//! dmcp-loadgen [--requests N] [--rate RPS] [--clients N] [--zipf S]
//!              [--seed S] [--workers N] [--cache-dir DIR] [--out PATH]
//!              [--addr HOST:PORT] [--restart]
//! ```
//!
//! Without `--addr`, the generator hosts an in-process server on
//! `127.0.0.1:0`. `--restart` (in-process only) runs the mix twice — cold,
//! then against a *fresh* server and service rebuilt over the same cache
//! directory — and exits nonzero if the warm pass recompiled anything:
//! the durable tier must serve a restart entirely from disk.

use dmcp_mach::rng::Rng64;
use dmcp_mach::MachineConfig;
use dmcp_serve::codec::encode_request;
use dmcp_serve::{
    ClientConfig, NetConfig, PlanClient, PlanRequest, PlanServer, PlanService, ServeConfig,
    ServeStats,
};
use dmcp_workloads::Scale;
use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    requests: usize,
    rate: f64,
    clients: usize,
    zipf: f64,
    seed: u64,
    workers: usize,
    cache_dir: Option<String>,
    out: String,
    addr: Option<String>,
    restart: bool,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            requests: 96,
            rate: 200.0,
            clients: 4,
            zipf: 1.0,
            seed: 0x10AD_4E4E,
            workers: 4,
            cache_dir: None,
            out: "BENCH_serve.json".to_string(),
            addr: None,
            restart: false,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or(format!("{flag} needs a value"));
        let parse = |s: String| -> Result<usize, String> { s.parse().map_err(|e| format!("{e}")) };
        match flag.as_str() {
            "--requests" => args.requests = parse(value("--requests")?)?,
            "--clients" => args.clients = parse(value("--clients")?)?.max(1),
            "--workers" => args.workers = parse(value("--workers")?)?.max(1),
            "--rate" => {
                args.rate = value("--rate")?.parse().map_err(|e| format!("{e}"))?;
                if args.rate <= 0.0 || !args.rate.is_finite() {
                    return Err("--rate must be positive".to_string());
                }
            }
            "--zipf" => args.zipf = value("--zipf")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--cache-dir" => args.cache_dir = Some(value("--cache-dir")?),
            "--out" => args.out = value("--out")?,
            "--addr" => args.addr = Some(value("--addr")?),
            "--restart" => args.restart = true,
            "--help" | "-h" => {
                return Err("usage: dmcp-loadgen [--requests N] [--rate RPS] [--clients N] \
                     [--zipf S] [--seed S] [--workers N] [--cache-dir DIR] [--out PATH] \
                     [--addr HOST:PORT] [--restart]"
                    .to_string())
            }
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    if args.restart && args.addr.is_some() {
        return Err("--restart drives an in-process server; drop --addr".to_string());
    }
    if args.restart && args.cache_dir.is_none() {
        return Err("--restart needs --cache-dir (the tier that must survive)".to_string());
    }
    Ok(args)
}

/// Zipf(s) over `n` ranks: weight of rank `k` (0-based) is `1/(k+1)^s`.
fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    let mut acc = 0.0;
    let mut cdf = Vec::with_capacity(n);
    for k in 0..n {
        acc += 1.0 / ((k + 1) as f64).powf(s);
        cdf.push(acc);
    }
    for w in &mut cdf {
        *w /= acc;
    }
    cdf
}

fn draw(cdf: &[f64], u: f64) -> usize {
    cdf.iter().position(|&c| u <= c).unwrap_or(cdf.len() - 1)
}

/// Outcome of one pass over the mix.
struct PassReport {
    label: String,
    completed: usize,
    errors: usize,
    retries: u64,
    wall_s: f64,
    lat_p50_ms: f64,
    lat_p99_ms: f64,
    lat_max_ms: f64,
    throughput: f64,
    stats: ServeStats,
}

/// Runs `args.requests` open-loop requests against `addr`, drawing
/// workloads zipf-skewed. `payloads` holds each workload's pre-encoded
/// request bytes.
fn run_pass(
    addr: SocketAddr,
    payloads: &[Vec<u8>],
    args: &Args,
    label: &str,
) -> Result<PassReport, String> {
    let cdf = zipf_cdf(payloads.len(), args.zipf);
    let mut rng = Rng64::new(args.seed);
    let picks: Vec<usize> = (0..args.requests).map(|_| draw(&cdf, rng.next_f64())).collect();

    let t0 = Instant::now();
    let per_thread: Vec<(Vec<(f64, bool)>, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.clients)
            .map(|c| {
                let picks = &picks;
                let client_config =
                    ClientConfig { seed: args.seed ^ (c as u64) << 32, ..ClientConfig::default() };
                scope.spawn(move || {
                    let mut client =
                        PlanClient::connect(addr, client_config).expect("resolve addr");
                    let mut out = Vec::new();
                    for k in (c..picks.len()).step_by(args.clients) {
                        // Open loop: request k is due at k/rate seconds.
                        let due = t0 + Duration::from_secs_f64(k as f64 / args.rate);
                        let now = Instant::now();
                        if due > now {
                            std::thread::sleep(due - now);
                        }
                        let ok = client.plan_bytes(&payloads[picks[k]]).is_ok();
                        // Latency from the *scheduled* arrival: waiting in
                        // line past the due time counts against the server.
                        out.push((due.elapsed().as_secs_f64() * 1e3, ok));
                    }
                    (out, client.counters().retries)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread panicked")).collect()
    });
    let wall_s = t0.elapsed().as_secs_f64();

    let retries: u64 = per_thread.iter().map(|(_, r)| r).sum();
    let mut lats: Vec<f64> = Vec::with_capacity(args.requests);
    let mut errors = 0usize;
    for (results, _) in &per_thread {
        for &(lat_ms, ok) in results {
            if ok {
                lats.push(lat_ms);
            } else {
                errors += 1;
            }
        }
    }
    lats.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let pct = |p: f64| -> f64 {
        if lats.is_empty() {
            return 0.0;
        }
        lats[((lats.len() - 1) as f64 * p).round() as usize]
    };

    // Server-side counters over the wire, proving the cache/disk story.
    let mut probe = PlanClient::connect(addr, ClientConfig::default())
        .map_err(|e| format!("stats client: {e}"))?;
    let stats = probe.stats().map_err(|e| format!("stats request: {e}"))?;

    Ok(PassReport {
        label: label.to_string(),
        completed: lats.len(),
        errors,
        retries,
        wall_s,
        lat_p50_ms: pct(0.50),
        lat_p99_ms: pct(0.99),
        lat_max_ms: lats.last().copied().unwrap_or(0.0),
        throughput: if wall_s > 0.0 { lats.len() as f64 / wall_s } else { 0.0 },
        stats,
    })
}

fn render_json(args: &Args, passes: &[PassReport], warm_recompiles: Option<u64>) -> String {
    let mut out = String::from("{\n  \"benchmark\": \"dmcp-loadgen open-loop\",\n");
    out.push_str(&format!(
        "  \"requests\": {}, \"rate_rps\": {:.1}, \"clients\": {}, \"zipf\": {:.2},\n",
        args.requests, args.rate, args.clients, args.zipf
    ));
    if let Some(n) = warm_recompiles {
        out.push_str(&format!("  \"warm_recompiles\": {n},\n"));
    }
    out.push_str("  \"passes\": [\n");
    for (i, p) in passes.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "    {{\"label\": \"{}\", \"completed\": {}, \"errors\": {}, ",
                "\"retries\": {}, \"wall_s\": {:.6}, \"throughput_rps\": {:.3}, ",
                "\"lat_p50_ms\": {:.4}, \"lat_p99_ms\": {:.4}, \"lat_max_ms\": {:.4}, ",
                "\"compiles\": {}, \"cache_hits\": {}, \"disk_hits\": {}, ",
                "\"disk_writes\": {}, \"rejected\": {}, \"timeouts\": {}}}{}\n",
            ),
            p.label,
            p.completed,
            p.errors,
            p.retries,
            p.wall_s,
            p.throughput,
            p.lat_p50_ms,
            p.lat_p99_ms,
            p.lat_max_ms,
            p.stats.compiles,
            p.stats.cache.hits,
            p.stats.disk.hits,
            p.stats.disk.writes,
            p.stats.rejected,
            p.stats.timeouts,
            if i + 1 == passes.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn print_pass(p: &PassReport) {
    println!(
        "{:<6} completed={} errors={} retries={} p50={:.2}ms p99={:.2}ms max={:.2}ms \
         rps={:.1} compiles={} cache_hits={} disk_hits={}",
        p.label,
        p.completed,
        p.errors,
        p.retries,
        p.lat_p50_ms,
        p.lat_p99_ms,
        p.lat_max_ms,
        p.throughput,
        p.stats.compiles,
        p.stats.cache.hits,
        p.stats.disk.hits,
    );
}

/// Builds an in-process server over `cache_dir`, returning the server,
/// the service handle and the bound address.
fn spawn_server(args: &Args) -> Result<(PlanServer, Arc<PlanService>, SocketAddr), String> {
    let config = ServeConfig {
        workers: args.workers,
        disk_dir: args.cache_dir.clone().map(Into::into),
        ..ServeConfig::default()
    };
    let service = Arc::new(PlanService::try_new(config).map_err(|e| format!("service: {e}"))?);
    let server = PlanServer::start(Arc::clone(&service), "127.0.0.1:0", NetConfig::default())
        .map_err(|e| format!("bind: {e}"))?;
    let addr = server.local_addr();
    Ok((server, service, addr))
}

/// Stops an in-process server and gracefully drains its service.
fn teardown(server: PlanServer, service: Arc<PlanService>) -> Result<(), String> {
    server.stop();
    let service =
        Arc::try_unwrap(service).map_err(|_| "server still holds the service".to_string())?;
    if !service.shutdown_within(Duration::from_secs(30)) {
        return Err("service failed to drain within 30s".to_string());
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    // Encode every workload's request once; the mix replays the bytes.
    let payloads: Vec<Vec<u8>> = dmcp_workloads::all(Scale::Tiny)
        .into_iter()
        .map(|w| {
            let req = PlanRequest::new(w.program, MachineConfig::knl_like(), <_>::default())
                .with_data(w.data);
            encode_request(&req)
        })
        .collect();
    println!(
        "dmcp-loadgen: {} requests at {:.0} req/s, {} clients, zipf {:.2}, 12 workloads",
        args.requests, args.rate, args.clients, args.zipf
    );

    let outcome = match &args.addr {
        Some(addr) => {
            let addr: SocketAddr = match addr.parse() {
                Ok(a) => a,
                Err(e) => {
                    eprintln!("bad --addr {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            run_pass(addr, &payloads, &args, "run").map(|p| (vec![p], None))
        }
        None => run_in_process(&args, &payloads),
    };

    let (passes, warm_recompiles) = match outcome {
        Ok(x) => x,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    for p in &passes {
        print_pass(p);
    }
    let json = render_json(&args, &passes, warm_recompiles);
    if let Err(e) = std::fs::write(&args.out, json) {
        eprintln!("failed to write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!("wrote {}", args.out);

    if let Some(n) = warm_recompiles {
        if n > 0 {
            eprintln!("FAIL: warm restart recompiled {n} plans (durable tier must serve them)");
            return ExitCode::FAILURE;
        }
        println!("warm restart served entirely from the durable tier (0 recompiles)");
    }
    ExitCode::SUCCESS
}

/// Hosts the server in-process. With `--restart`, runs cold + warm passes
/// across a full server/service teardown and rebuild on the same cache
/// directory, and reports how many plans the warm pass recompiled.
fn run_in_process(
    args: &Args,
    payloads: &[Vec<u8>],
) -> Result<(Vec<PassReport>, Option<u64>), String> {
    let (server, service, addr) = spawn_server(args)?;
    let cold = run_pass(addr, payloads, args, if args.restart { "cold" } else { "run" })?;
    teardown(server, service)?;
    if !args.restart {
        return Ok((vec![cold], None));
    }

    // Restart: fresh process state, same cache directory. Zero compiles
    // is the crash-safety acceptance bar.
    let (server, service, addr) = spawn_server(args)?;
    let warm = run_pass(addr, payloads, args, "warm")?;
    let warm_recompiles = warm.stats.compiles;
    teardown(server, service)?;
    Ok((vec![cold, warm], Some(warm_recompiles)))
}
