//! Replays a synthetic client mix against the plan service, cached and
//! uncached, and reports throughput / latency / cache behaviour.
//!
//! ```text
//! dmcp-serve [--requests N] [--clients N] [--workers N] [--seed S] [--out PATH]
//! ```
//!
//! Writes a machine-readable summary (including the cached-over-uncached
//! speedup) to `--out` (default `BENCH_serve.json`).

use dmcp_serve::mix::{render_json, render_table, run_comparison};
use dmcp_serve::{MixConfig, ServeConfig};
use std::process::ExitCode;

struct Args {
    mix: MixConfig,
    serve: ServeConfig,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        mix: MixConfig::default(),
        serve: ServeConfig::default(),
        out: "BENCH_serve.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or(format!("{flag} needs a value"));
        match flag.as_str() {
            "--requests" => {
                args.mix.requests = value("--requests")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--clients" => {
                args.mix.clients = value("--clients")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--workers" => {
                args.serve.workers = value("--workers")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--seed" => {
                args.mix.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--out" => args.out = value("--out")?,
            "--help" | "-h" => {
                return Err("usage: dmcp-serve [--requests N] [--clients N] [--workers N] \
                     [--seed S] [--out PATH]"
                    .to_string())
            }
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    // The mix expects every request to be admitted: size the queue for the
    // whole burst.
    args.serve.queue_depth = args.mix.requests.max(1);
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "dmcp-serve: {} requests, {} clients, {} workers, 12 workloads (tiny)",
        args.mix.requests, args.mix.clients, args.serve.workers
    );
    let (cached, uncached) = run_comparison(&args.mix, &args.serve);
    let speedup =
        if uncached.throughput > 0.0 { cached.throughput / uncached.throughput } else { 0.0 };

    let reports = [cached, uncached];
    print!("{}", render_table(&reports));
    println!("speedup (cached over no-cache): {speedup:.2}x");

    let json = render_json(&reports, speedup);
    if let Err(e) = std::fs::write(&args.out, json) {
        eprintln!("failed to write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!("wrote {}", args.out);
    ExitCode::SUCCESS
}
