//! The plan server / bench binary.
//!
//! Two modes:
//!
//! * **Bench (default)** — replays a synthetic client mix against the plan
//!   service, cached and uncached, and reports throughput / latency /
//!   cache behaviour:
//!
//!   ```text
//!   dmcp-serve [--requests N] [--clients N] [--workers N] [--seed S] [--out PATH]
//!   ```
//!
//!   Writes a machine-readable summary (including the cached-over-uncached
//!   speedup) to `--out` (default `BENCH_serve.json`).
//!
//! * **Server** — listens on TCP, serving plan requests over the frame
//!   protocol, optionally backed by the durable cache directory:
//!
//!   ```text
//!   dmcp-serve --listen 127.0.0.1:7117 [--cache-dir DIR] [--workers N]
//!              [--queue-depth N] [--io-timeout-ms N]
//!   ```
//!
//!   SIGINT/SIGTERM trigger a graceful drain: stop accepting, finish
//!   in-flight work, flush the durable tier, then exit.

use dmcp_serve::mix::{render_json, render_table, run_comparison};
use dmcp_serve::{MixConfig, NetConfig, PlanServer, PlanService, ServeConfig};
use std::process::ExitCode;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// Cooperative stop flag flipped by SIGINT/SIGTERM.
mod sig {
    use std::sync::atomic::AtomicBool;

    pub static STOP: AtomicBool = AtomicBool::new(false);

    #[cfg(unix)]
    mod unix {
        use std::sync::atomic::Ordering;

        extern "C" fn on_signal(_signum: i32) {
            super::STOP.store(true, Ordering::SeqCst);
        }

        extern "C" {
            // `signal(2)` straight from libc — the workspace takes no
            // external crates, and an AtomicBool store is async-signal-safe.
            fn signal(signum: i32, handler: usize) -> usize;
        }

        pub fn install() {
            const SIGINT: i32 = 2;
            const SIGTERM: i32 = 15;
            unsafe {
                signal(SIGINT, on_signal as *const () as usize);
                signal(SIGTERM, on_signal as *const () as usize);
            }
        }
    }

    #[cfg(unix)]
    pub use unix::install;

    #[cfg(not(unix))]
    pub fn install() {}
}

struct Args {
    mix: MixConfig,
    serve: ServeConfig,
    out: String,
    listen: Option<String>,
    io_timeout: Duration,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        mix: MixConfig::default(),
        serve: ServeConfig::default(),
        out: "BENCH_serve.json".to_string(),
        listen: None,
        io_timeout: Duration::from_secs(10),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or(format!("{flag} needs a value"));
        match flag.as_str() {
            "--requests" => {
                args.mix.requests = value("--requests")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--clients" => {
                args.mix.clients = value("--clients")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--workers" => {
                args.serve.workers = value("--workers")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--queue-depth" => {
                args.serve.queue_depth =
                    value("--queue-depth")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--seed" => {
                args.mix.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--out" => args.out = value("--out")?,
            "--listen" => args.listen = Some(value("--listen")?),
            "--cache-dir" => args.serve.disk_dir = Some(value("--cache-dir")?.into()),
            "--io-timeout-ms" => {
                args.io_timeout = Duration::from_millis(
                    value("--io-timeout-ms")?.parse().map_err(|e| format!("{e}"))?,
                );
            }
            "--help" | "-h" => {
                return Err("usage: dmcp-serve [--requests N] [--clients N] [--workers N] \
                     [--seed S] [--out PATH]\n       dmcp-serve --listen ADDR [--cache-dir DIR] \
                     [--workers N] [--queue-depth N] [--io-timeout-ms N]"
                    .to_string())
            }
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    Ok(args)
}

fn serve_forever(args: &Args, addr: &str) -> ExitCode {
    let service = match PlanService::try_new(args.serve.clone()) {
        Ok(s) => Arc::new(s),
        Err(e) => {
            eprintln!("failed to start service: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(disk) = service.disk() {
        let stats = disk.stats();
        println!(
            "durable tier: {} plans recovered from {} ({} torn bytes truncated)",
            stats.recovered_records,
            disk.dir().display(),
            stats.truncated_bytes,
        );
    }
    let net = NetConfig { io_timeout: args.io_timeout, ..NetConfig::default() };
    let server = match PlanServer::start(Arc::clone(&service), addr, net) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    sig::install();
    println!("dmcp-serve listening on {} ({} workers)", server.local_addr(), args.serve.workers);

    while !sig::STOP.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(100));
    }

    println!("signal received: draining");
    server.stop();
    let service = Arc::try_unwrap(service).map_err(|_| ()).expect("server released the service");
    let stats = service.stats();
    let drained = service.shutdown_within(Duration::from_secs(30));
    println!(
        "drained={drained} submitted={} compiles={} cache_hits={} disk_hits={} disk_writes={}",
        stats.submitted, stats.compiles, stats.cache.hits, stats.disk.hits, stats.disk.writes,
    );
    println!(
        "health: panics={} disk_errors={} disk_degraded={} quarantined_segments={} \
         pending_records={}",
        stats.panics,
        stats.disk.errors,
        stats.disk.degraded,
        stats.disk.quarantined_segments,
        stats.disk.pending_records,
    );
    if drained {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run_bench(args: &Args) -> ExitCode {
    println!(
        "dmcp-serve: {} requests, {} clients, {} workers, 12 workloads (tiny)",
        args.mix.requests, args.mix.clients, args.serve.workers
    );
    // The mix expects every request to be admitted: size the queue for the
    // whole burst.
    let mut serve = args.serve.clone();
    serve.queue_depth = args.mix.requests.max(1);
    let (cached, uncached) = run_comparison(&args.mix, &serve);
    let speedup =
        if uncached.throughput > 0.0 { cached.throughput / uncached.throughput } else { 0.0 };

    let reports = [cached, uncached];
    print!("{}", render_table(&reports));
    println!("speedup (cached over no-cache): {speedup:.2}x");

    let json = render_json(&reports, speedup);
    if let Err(e) = std::fs::write(&args.out, json) {
        eprintln!("failed to write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!("wrote {}", args.out);
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    match &args.listen {
        Some(addr) => serve_forever(&args, &addr.clone()),
        None => run_bench(&args),
    }
}
