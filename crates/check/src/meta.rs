//! Metamorphic laws: transformations that must not change (or must only
//! change in a known direction) what the system computes.
//!
//! * **Renaming** — array and loop-variable names are surface syntax.
//!   Rebuilding the same [`CaseSpec`] under fresh names must produce a
//!   bit-identical [`PartitionOutput`], the same plan digest, and the
//!   same content-addressed [`PlanKey`].
//! * **Mesh isometries** — the eight dihedral transforms (four on proper
//!   rectangles) and in-bounds translations preserve Manhattan distance,
//!   so the oracle's MST weight and exact Steiner minimum are invariant.
//!   (For translations this relies on grid Steiner minimal trees being
//!   realizable inside the terminals' bounding box — the Hanan grid —
//!   which translates with them.)
//! * **Fault monotonicity** — killing *more* links never shortens a
//!   route and never makes an unreachable pair reachable.
//! * **Lexer totality** — arbitrary input must lex/parse to `Ok` or a
//!   typed error, never a panic.

use crate::digest::plan_digest;
use crate::gencase::{pick_node, CaseSpec};
use crate::oracle::{mst_weight, steiner_min};
use dmcp_core::Partitioner;
use dmcp_ir::lexer::tokenize;
use dmcp_ir::ProgramBuilder;
use dmcp_mach::rng::Rng64;
use dmcp_mach::symmetry::translate;
use dmcp_mach::{route_avoiding, FaultPlan, FaultState, Mesh, MeshTransform, NodeId};
use dmcp_serve::PlanRequest;

/// Rebuilds `spec` under fresh names and demands identical partitioner
/// output, plan digest and cache key.
pub fn check_rename(spec: &CaseSpec) -> Result<(), String> {
    let built = spec.build().map_err(|e| format!("base build: {e}"))?;
    let (arrays, vars) = spec.default_names();
    let renamed_arrays: Vec<String> =
        (0..arrays.len()).map(|k| format!("renamed_{}_{k}", arrays.len() - k)).collect();
    let renamed_vars: Vec<String> = (0..vars.len()).map(|d| format!("loopvar{d}")).collect();
    let renamed = spec
        .build_named(&renamed_arrays, &renamed_vars)
        .map_err(|e| format!("renamed build: {e}"))?;

    let out_a = Partitioner::new(&built.machine, &built.program, built.config.clone())
        .partition_with_data(&built.program, &built.data);
    let out_b = Partitioner::new(&renamed.machine, &renamed.program, renamed.config.clone())
        .partition_with_data(&renamed.program, &renamed.data);
    if out_a != out_b {
        return Err("renaming changed the partitioner output".into());
    }
    if plan_digest(&out_a) != plan_digest(&out_b) {
        return Err("renaming changed the plan digest".into());
    }

    let key_a =
        PlanRequest::new(built.program, built.machine, built.config).with_data(built.data).key();
    let key_b = PlanRequest::new(renamed.program, renamed.machine, renamed.config)
        .with_data(renamed.data)
        .key();
    if key_a != key_b {
        return Err(format!("renaming changed the cache key: {key_a:?} vs {key_b:?}"));
    }
    Ok(())
}

/// Meshes the isometry sweep samples (kept small so the Steiner DP stays
/// cheap).
const ISO_MESHES: [(u16, u16); 4] = [(2, 2), (3, 2), (3, 3), (4, 4)];

/// Random terminal sets must have distance-invariant MST weight and
/// Steiner minimum under every mesh isometry and in-bounds translation.
pub fn check_isometry(rng: &mut Rng64) -> Result<(), String> {
    let (cols, rows) = ISO_MESHES[rng.gen_range(ISO_MESHES.len() as u64) as usize];
    let mesh = Mesh::new(cols, rows);
    let k = 2 + rng.gen_range(5) as usize; // 2..=6 terminals
    let terms: Vec<NodeId> = (0..k).map(|_| pick_node(rng, &mesh)).collect();
    let mst = mst_weight(&terms);
    let steiner = steiner_min(&mesh, &terms);

    for t in MeshTransform::for_mesh(mesh) {
        let out_mesh = t.output_mesh(mesh);
        let mapped: Vec<NodeId> = terms.iter().map(|&n| t.apply(mesh, n)).collect();
        let m2 = mst_weight(&mapped);
        let s2 = steiner_min(&out_mesh, &mapped);
        if m2 != mst || s2 != steiner {
            return Err(format!(
                "isometry {t:?} on {cols}x{rows} changed weights: mst {mst}→{m2}, \
                 steiner {steiner}→{s2}, terminals {terms:?}"
            ));
        }
    }

    let dx = rng.gen_range(5) as i32 - 2;
    let dy = rng.gen_range(5) as i32 - 2;
    let shifted: Option<Vec<NodeId>> = terms.iter().map(|&n| translate(mesh, n, dx, dy)).collect();
    if let Some(shifted) = shifted {
        let m2 = mst_weight(&shifted);
        let s2 = steiner_min(&mesh, &shifted);
        if m2 != mst || s2 != steiner {
            return Err(format!(
                "translation ({dx},{dy}) on {cols}x{rows} changed weights: mst {mst}→{m2}, \
                 steiner {steiner}→{s2}, terminals {terms:?}"
            ));
        }
    }
    Ok(())
}

/// Adds random extra dead links to a fault plan and checks that no route
/// gets shorter and no unreachable pair becomes reachable.
pub fn check_fault_monotonicity(rng: &mut Rng64) -> Result<(), String> {
    let (cols, rows) = [(3u16, 3u16), (4, 3), (4, 4), (6, 6)][rng.gen_range(4) as usize];
    let mesh = Mesh::new(cols, rows);
    let dead_frac = [0.0, 0.1, 0.2][rng.gen_range(3) as usize];
    let plan = FaultPlan::random(mesh, dead_frac, 0.1, 0.0, 0.0, rng.next_u64());
    let Ok(f1) = FaultState::new(plan.clone(), mesh) else {
        return Ok(());
    };

    let mut worse = plan.clone();
    for _ in 0..1 + rng.gen_range(4) {
        let a = pick_node(rng, &mesh);
        let b = match rng.gen_range(4) {
            0 => NodeId::new(a.x().wrapping_add(1), a.y()),
            1 => NodeId::new(a.x().wrapping_sub(1), a.y()),
            2 => NodeId::new(a.x(), a.y().wrapping_add(1)),
            _ => NodeId::new(a.x(), a.y().wrapping_sub(1)),
        };
        if mesh.contains(b) {
            worse.kill_link(a, b);
        }
    }
    let Ok(f2) = FaultState::new(worse, mesh) else {
        return Ok(());
    };

    for src in mesh.nodes() {
        for dst in mesh.nodes() {
            match (route_avoiding(src, dst, &f1), route_avoiding(src, dst, &f2)) {
                (Ok(r1), Ok(r2)) if r1.len() > r2.len() => {
                    return Err(format!(
                        "killing links SHORTENED the route {src:?}→{dst:?}: \
                         {} links → {} links",
                        r1.len(),
                        r2.len()
                    ));
                }
                (Err(e), Ok(_)) => {
                    return Err(format!(
                        "killing links made {src:?}→{dst:?} reachable (was {e:?})"
                    ));
                }
                _ => {}
            }
        }
    }
    Ok(())
}

/// Feeds a random byte soup through the lexer and the statement parser.
/// Any `Result` is fine; only a panic (caught by the harness) fails.
pub fn check_lexer_total(rng: &mut Rng64) {
    const POOL: &[char] = &[
        'a', 'b', 'i', 'x', '0', '1', '9', '[', ']', '(', ')', '+', '-', '*', '/', '&', '|', '^',
        '<', '>', '=', ' ', '_', ';', ',', '.', '~', '!', '#', '%', '"', '\'', '{', '}', '\n',
        '\t', '\\', '€', 'λ', '∀',
    ];
    let len = rng.gen_range(48) as usize;
    let s: String = (0..len).map(|_| POOL[rng.gen_range(POOL.len() as u64) as usize]).collect();
    let _ = tokenize(&s);
    let mut b = ProgramBuilder::new();
    b.array("a", &[8], 8);
    let _ = b.nest(&[("i", 0, 2)], &[&s]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gencase::gen_mask_case;

    #[test]
    fn rename_law_holds_over_a_sweep() {
        let mut rng = Rng64::new(8);
        for _ in 0..10 {
            let spec = gen_mask_case(&mut rng, 160);
            check_rename(&spec).unwrap_or_else(|e| panic!("{e}\ncase:\n{spec}"));
        }
    }

    #[test]
    fn isometry_law_holds_over_a_sweep() {
        let mut rng = Rng64::new(9);
        for _ in 0..40 {
            check_isometry(&mut rng).expect("isometry law");
        }
    }

    #[test]
    fn fault_monotonicity_holds_over_a_sweep() {
        let mut rng = Rng64::new(10);
        for _ in 0..25 {
            check_fault_monotonicity(&mut rng).expect("monotonicity law");
        }
    }

    #[test]
    fn lexer_and_parser_survive_byte_soup() {
        let mut rng = Rng64::new(11);
        for _ in 0..300 {
            check_lexer_total(&mut rng);
        }
    }
}
