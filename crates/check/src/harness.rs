//! The seeded driver: runs every property over a seed sweep, captures
//! panics, shrinks failing cases, and reports.
//!
//! Each (seed, property) pair derives its own splitmix64 stream from the
//! base seed, so properties are independent: adding a property or
//! reordering the sweep never perturbs another property's cases, and a
//! reported seed reproduces its counterexample in isolation.

use crate::boundprop::{check_bound_isometry, check_bound_rename, check_bound_sound};
use crate::conform::{check_degraded, check_healthy};
use crate::crashprop::{check_crash_prefix, check_degrade_restore};
use crate::gencase::{gen_div_case, gen_mask_case, gen_wild_spec, shrink, CaseSpec};
use crate::meta::{check_fault_monotonicity, check_isometry, check_lexer_total, check_rename};
use crate::oracle::check_oracle_case;
use crate::steinerprop::{check_steiner_exact, check_steiner_no_regress};
use dmcp_ir::exec::run_sequential;
use dmcp_mach::rng::{mix, Rng64};
use dmcp_pool::Pool;
use dmcp_serve::{PlanRequest, PlanService, ServeConfig};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Sweep configuration.
#[derive(Clone, Debug)]
pub struct CheckConfig {
    /// Number of seeds to sweep.
    pub seeds: u64,
    /// Base seed; every (seed, property) stream derives from it.
    pub seed0: u64,
    /// Statement-instance budget per generated case.
    pub budget: u64,
    /// Adversarial topological replays per conformance case.
    pub orders: u32,
    /// Run the serve-layer conformance property every Nth seed
    /// (it spins up a thread pool; 0 disables it).
    pub serve_every: u64,
    /// Shrinking attempt budget per counterexample.
    pub shrink_attempts: u32,
    /// Run only properties whose name contains this substring (e.g.
    /// `"crash"` for the crash-consistency fuzzer alone). `None` runs
    /// everything.
    pub only: Option<String>,
}

impl Default for CheckConfig {
    fn default() -> Self {
        Self {
            seeds: 64,
            seed0: 0xD4C9_0017,
            budget: 256,
            orders: 2,
            serve_every: 8,
            shrink_attempts: 400,
            only: None,
        }
    }
}

impl CheckConfig {
    /// Whether the property filter admits `property`.
    fn wants(&self, property: &str) -> bool {
        self.only.as_ref().is_none_or(|needle| property.contains(needle.as_str()))
    }
}

/// One property violation, with the shrunken case when one exists.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Counterexample {
    /// Which property failed.
    pub property: &'static str,
    /// The sweep seed that found it.
    pub seed: u64,
    /// What went wrong (assertion message or captured panic payload).
    pub message: String,
    /// The minimised case, rendered, when the property is case-driven.
    pub spec: Option<String>,
}

/// The sweep's outcome.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CheckReport {
    /// Seeds swept.
    pub seeds: u64,
    /// Total property executions (shrinking replays excluded).
    pub runs: u64,
    /// Violations found, at most one per (seed, property).
    pub counterexamples: Vec<Counterexample>,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".into()
    }
}

/// Runs `f`, converting both `Err` and panics into `Err(message)`.
fn guarded<F: FnOnce() -> Result<(), String>>(f: F) -> Result<(), String> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(payload) => Err(panic_message(payload)),
    }
}

/// Derives the RNG stream for one (seed, property) pair.
fn stream(cfg: &CheckConfig, seed: u64, salt: u64) -> Rng64 {
    Rng64::new(mix(cfg.seed0 ^ mix(seed.wrapping_mul(0x9E37_79B9).wrapping_add(salt))))
}

/// Runs one case-driven property; on failure, shrinks the spec against
/// the same (deterministic) check before reporting.
fn case_property<G, C>(
    report: &mut CheckReport,
    cfg: &CheckConfig,
    seed: u64,
    salt: u64,
    property: &'static str,
    generate: G,
    check: C,
) where
    G: FnOnce(&mut Rng64) -> CaseSpec,
    C: Fn(&CaseSpec, &mut Rng64) -> Result<(), String>,
{
    if !cfg.wants(property) {
        return;
    }
    report.runs += 1;
    let mut rng = stream(cfg, seed, salt);
    let spec = generate(&mut rng);
    // The check's own randomness (adversarial orders) restarts from a
    // fixed derived seed on every run, so shrinking replays the exact
    // same execution against each candidate.
    let check_seed = mix(cfg.seed0 ^ salt ^ seed);
    let run = |s: &CaseSpec| {
        let mut r = Rng64::new(check_seed);
        guarded(|| check(s, &mut r))
    };
    if let Err(first) = run(&spec) {
        let small = shrink(&spec, |s| run(s).is_err(), cfg.shrink_attempts);
        let message = run(&small).err().unwrap_or(first);
        report.counterexamples.push(Counterexample {
            property,
            seed,
            message,
            spec: Some(small.to_string()),
        });
    }
}

/// Runs one free-standing property (no shrinkable case).
fn free_property<F>(
    report: &mut CheckReport,
    cfg: &CheckConfig,
    seed: u64,
    salt: u64,
    property: &'static str,
    f: F,
) where
    F: FnOnce(&mut Rng64) -> Result<(), String>,
{
    if !cfg.wants(property) {
        return;
    }
    report.runs += 1;
    let mut rng = stream(cfg, seed, salt);
    if let Err(message) = guarded(|| f(&mut rng)) {
        report.counterexamples.push(Counterexample { property, seed, message, spec: None });
    }
}

fn check_spec_healthy(
    spec: &CaseSpec,
    rng: &mut Rng64,
    orders: u32,
    rel_tol: f64,
) -> Result<(), String> {
    let built = spec.build()?;
    check_healthy(&built, rng, orders, rel_tol)
}

fn check_spec_degraded(spec: &CaseSpec, rel_tol: f64) -> Result<(), String> {
    let built = spec.build()?;
    check_degraded(&built, rel_tol)
}

fn check_spec_wild(spec: &CaseSpec) -> Result<(), String> {
    let built = spec.build()?;
    for nest in built.program.nests() {
        let _ = nest.iteration_count();
    }
    let _ = built.program.structural_hash();
    let _ = built.program.static_analyzability();
    let _ = built.program.dynamic_analyzability();
    // Only interpret when the bounds are tame; extreme trips would loop
    // effectively forever (correctly, but not in this lifetime).
    if built.program.nests().iter().all(|n| n.iteration_count() <= 64) {
        let mut data = built.data.clone();
        run_sequential(&built.program, &mut data);
    }
    Ok(())
}

fn check_spec_serve(spec: &CaseSpec) -> Result<(), String> {
    let mut healthy = spec.clone();
    healthy.faults = None; // serve conformance compares healthy compiles
    let built = healthy.build()?;
    let service = PlanService::new(ServeConfig { workers: 2, ..ServeConfig::default() });
    let request =
        PlanRequest::new(built.program, built.machine, built.config).with_data(built.data);
    let cached = service.plan(request.clone()).map_err(|e| format!("serve plan: {e:?}"))?;
    let fresh = service.plan_uncached(&request).map_err(|e| format!("uncached plan: {e:?}"))?;
    if *cached != *fresh {
        return Err("cached and freshly-compiled plans diverged".into());
    }
    let hit = service.plan(request).map_err(|e| format!("serve re-plan: {e:?}"))?;
    if *cached != *hit {
        return Err("cache returned a different plan on the second request".into());
    }
    Ok(())
}

/// Sweeps every property over `cfg.seeds` seeds and reports, fanning the
/// seeds out over the process-global pool ([`Pool::global`]).
pub fn run(cfg: &CheckConfig) -> CheckReport {
    run_pooled(cfg, Pool::global())
}

/// [`run`] over an explicit pool. Every (seed, property) stream derives
/// from the seed value alone, and per-seed partial reports are merged in
/// seed order, so the report is bit-identical for every thread count.
pub fn run_pooled(cfg: &CheckConfig, pool: &Pool) -> CheckReport {
    let seeds = usize::try_from(cfg.seeds).expect("seed count fits usize");
    let partials = pool.run(seeds, |i| sweep_seed(cfg, i as u64));
    let mut report = CheckReport { seeds: cfg.seeds, ..CheckReport::default() };
    for partial in partials {
        report.runs += partial.runs;
        report.counterexamples.extend(partial.counterexamples);
    }
    report
}

/// Runs every property for one seed, returning the seed's partial report.
fn sweep_seed(cfg: &CheckConfig, seed: u64) -> CheckReport {
    let mut report = CheckReport::default();
    free_property(&mut report, cfg, seed, 0x0A, "oracle", |rng| check_oracle_case(rng).map(|_| ()));
    let (budget, orders) = (cfg.budget, cfg.orders);
    case_property(
        &mut report,
        cfg,
        seed,
        0x0B,
        "conform-mask",
        |rng| gen_mask_case(rng, budget),
        |s, rng| check_spec_healthy(s, rng, orders, 0.0),
    );
    case_property(
        &mut report,
        cfg,
        seed,
        0x0C,
        "conform-degraded",
        |rng| gen_mask_case(rng, budget),
        |s, _| check_spec_degraded(s, 0.0),
    );
    case_property(&mut report, cfg, seed, 0x0D, "conform-div", gen_div_case, |s, rng| {
        check_spec_healthy(s, rng, orders, 1e-9)
    });
    case_property(
        &mut report,
        cfg,
        seed,
        0x0E,
        "meta-rename",
        |rng| gen_mask_case(rng, budget.min(160)),
        |s, _| check_rename(s),
    );
    free_property(&mut report, cfg, seed, 0x0F, "meta-isometry", check_isometry);
    free_property(&mut report, cfg, seed, 0x10, "meta-fault-monotonic", check_fault_monotonicity);
    free_property(&mut report, cfg, seed, 0x11, "lexer-total", |rng| {
        for _ in 0..8 {
            check_lexer_total(rng);
        }
        Ok(())
    });
    case_property(&mut report, cfg, seed, 0x12, "wild-shape", gen_wild_spec, |s, _| {
        check_spec_wild(s)
    });
    if cfg.serve_every > 0 && seed.is_multiple_of(cfg.serve_every) {
        case_property(
            &mut report,
            cfg,
            seed,
            0x13,
            "serve-conform",
            |rng| gen_mask_case(rng, budget.min(128)),
            |s, _| check_spec_serve(s),
        );
    }
    case_property(
        &mut report,
        cfg,
        seed,
        0x14,
        "bound-sound",
        |rng| gen_mask_case(rng, budget.min(160)),
        |s, _| check_bound_sound(s),
    );
    case_property(
        &mut report,
        cfg,
        seed,
        0x15,
        "bound-rename",
        |rng| gen_mask_case(rng, budget.min(120)),
        |s, _| check_bound_rename(s),
    );
    free_property(&mut report, cfg, seed, 0x16, "bound-isometry", check_bound_isometry);
    let shrink_attempts = cfg.shrink_attempts;
    free_property(&mut report, cfg, seed, 0x17, "crash-prefix", |rng| {
        check_crash_prefix(rng, shrink_attempts)
    });
    free_property(&mut report, cfg, seed, 0x18, "crash-degrade", check_degrade_restore);
    case_property(
        &mut report,
        cfg,
        seed,
        0x19,
        "steiner-no-regress",
        |rng| gen_mask_case(rng, budget.min(160)),
        |s, _| check_steiner_no_regress(s),
    );
    free_property(&mut report, cfg, seed, 0x1A, "steiner-exact", check_steiner_exact);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_finds_no_counterexamples() {
        let report = run(&CheckConfig { seeds: 4, ..CheckConfig::default() });
        assert!(
            report.counterexamples.is_empty(),
            "counterexamples: {:#?}",
            report.counterexamples
        );
        assert_eq!(report.seeds, 4);
        assert!(report.runs >= 4 * 14);
    }

    #[test]
    fn pooled_sweep_is_bit_identical_to_sequential() {
        let cfg = CheckConfig { seeds: 3, serve_every: 0, ..CheckConfig::default() };
        let seq = run_pooled(&cfg, &Pool::single());
        let par = run_pooled(&cfg, &Pool::new(4));
        assert_eq!(seq, par, "per-seed streams must not depend on thread count");
    }

    #[test]
    fn a_broken_property_is_caught_and_shrunk() {
        // Plant a deliberately false "property": no generated case may
        // contain more than one statement in total. The harness must
        // catch it and shrink the case to exactly two statements... or
        // rather, to a minimal case that still violates (≥ 2 statements).
        let cfg = CheckConfig::default();
        let mut report = CheckReport::default();
        let mut found = false;
        for seed in 0..16 {
            case_property(
                &mut report,
                &cfg,
                seed,
                0xFA,
                "planted",
                |rng| gen_mask_case(rng, 256),
                |s, _| {
                    let stmts: usize = s.nests.iter().map(|n| n.stmts.len()).sum();
                    if stmts > 1 {
                        Err(format!("{stmts} statements"))
                    } else {
                        Ok(())
                    }
                },
            );
            if let Some(ce) = report.counterexamples.last() {
                assert_eq!(ce.property, "planted");
                let spec = ce.spec.as_ref().expect("case-driven");
                // The shrunken case has exactly 2 statements (rendered as
                // indented lines): minimal while still violating.
                let stmts = spec.lines().filter(|l| l.starts_with("  ")).count();
                assert_eq!(stmts, 2, "not minimal:\n{spec}");
                found = true;
                break;
            }
        }
        assert!(found, "sweep never generated a multi-statement case");
    }

    #[test]
    fn panics_inside_properties_become_counterexamples() {
        let cfg = CheckConfig::default();
        let mut report = CheckReport::default();
        free_property(&mut report, &cfg, 0, 0xFB, "panicky", |_| {
            panic!("boom {}", 42);
        });
        assert_eq!(report.counterexamples.len(), 1);
        assert!(report.counterexamples[0].message.contains("boom 42"));
    }
}
