//! Sweeps the property-testing harness over N seeds and reports.
//!
//! ```text
//! dmcp-check [--seeds N] [--seed0 S] [--budget N] [--orders N]
//!            [--serve-every N] [--threads N] [--out PATH] [--only SUBSTR]
//! ```
//!
//! Exits nonzero if any property produced a counterexample. Writes a
//! machine-readable summary (seeds/sec, property-run count,
//! counterexample count) to `--out` (default `BENCH_check.json`).

use dmcp_check::harness::{run_pooled, CheckConfig, CheckReport};
use dmcp_pool::Pool;
use std::process::ExitCode;
use std::time::Instant;

struct Args {
    cfg: CheckConfig,
    threads: Option<usize>,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args =
        Args { cfg: CheckConfig::default(), threads: None, out: "BENCH_check.json".to_string() };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or(format!("{flag} needs a value"));
        match flag.as_str() {
            "--seeds" => {
                args.cfg.seeds = value("--seeds")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--seed0" => {
                args.cfg.seed0 = value("--seed0")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--budget" => {
                args.cfg.budget = value("--budget")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--orders" => {
                args.cfg.orders = value("--orders")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--serve-every" => {
                args.cfg.serve_every =
                    value("--serve-every")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--threads" => {
                args.threads = Some(value("--threads")?.parse().map_err(|e| format!("{e}"))?);
            }
            "--out" => args.out = value("--out")?,
            "--only" => args.cfg.only = Some(value("--only")?),
            "--help" | "-h" => {
                return Err("usage: dmcp-check [--seeds N] [--seed0 S] [--budget N] \
                     [--orders N] [--serve-every N] [--threads N] [--out PATH] \
                     [--only SUBSTR]"
                    .to_string())
            }
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    Ok(args)
}

fn render_json(report: &CheckReport, elapsed_s: f64) -> String {
    let seeds_per_s = if elapsed_s > 0.0 { report.seeds as f64 / elapsed_s } else { 0.0 };
    format!(
        "{{\n  \"seeds\": {},\n  \"runs\": {},\n  \"elapsed_s\": {:.3},\n  \
         \"seeds_per_s\": {:.2},\n  \"counterexamples\": {}\n}}\n",
        report.seeds,
        report.runs,
        elapsed_s,
        seeds_per_s,
        report.counterexamples.len()
    )
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    // Properties probe panics via catch_unwind; silence the default hook's
    // backtrace spam for the duration of the sweep (failures are reported
    // with full context below).
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let pool = match args.threads {
        Some(n) => Pool::new(n),
        None => Pool::default(),
    };
    let start = Instant::now();
    let report = run_pooled(&args.cfg, &pool);
    let elapsed_s = start.elapsed().as_secs_f64();
    std::panic::set_hook(default_hook);

    println!(
        "dmcp-check: {} seeds, {} property runs in {:.2}s ({:.1} seeds/s)",
        report.seeds,
        report.runs,
        elapsed_s,
        report.seeds as f64 / elapsed_s.max(1e-9)
    );
    for ce in &report.counterexamples {
        eprintln!("\nCOUNTEREXAMPLE [{}] seed {}: {}", ce.property, ce.seed, ce.message);
        if let Some(spec) = &ce.spec {
            eprintln!("shrunken case:\n{spec}");
        }
    }

    let json = render_json(&report, elapsed_s);
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("failed to write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    print!("{json}");

    if report.counterexamples.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!("{} counterexample(s) found", report.counterexamples.len());
        ExitCode::FAILURE
    }
}
