//! The exact-schedule oracle.
//!
//! For a flat reorderable chain `d[c] = a0[c0] + a1[c1] + … + ak[ck]`
//! planned with the hit-everything predictor and reuse awareness off, the
//! planner's Eq.-1 movement equals the Kruskal MST weight over the
//! operand home nodes plus the store home: each operand has exactly one
//! candidate site (its believed primary), the preorder node assignment
//! puts every combining step at its vertex's home (root overridden to the
//! store home), and each MST edge is therefore paid exactly once.
//!
//! The *exact* minimum over every operand-ordering and combining-tree
//! node assignment is the Steiner-tree minimum over the same terminal
//! set: any combining schedule traces a connected subgraph spanning the
//! terminals, and any Steiner tree rooted at the store can be executed
//! bottom-up as a combining schedule of equal cost. We compute it with
//! the Dreyfus–Wagner DP (and validate the DP against a literal
//! combining-schedule enumerator in unit tests).
//!
//! The oracle therefore asserts, per generated statement:
//!
//! ```text
//! steiner_min ≤ movement_opt           (the planner never beats exact)
//! movement_opt == mst_weight           (the planner achieves its bound)
//! ```
//!
//! The second assertion is the ISSUE's "bit-equal for 2-operand
//! statements" strengthened to every flat chain — for k = 2 the MST *is*
//! the exact schedule, so equality there follows from both lines.

use crate::gencase::pick_node;
use dmcp_core::partitioner::PredictorSpec;
use dmcp_core::{HitPredictor, PartitionConfig, Partitioner, PlanOptions, Planner, Step, StmtTag};
use dmcp_ir::ProgramBuilder;
use dmcp_mach::rng::Rng64;
use dmcp_mach::{MachineConfig, Mesh, NodeId};

/// Kruskal/Prim-equivalent MST weight over a terminal multiset under
/// Manhattan distance (independent of `dmcp_core::mst` — this is the
/// oracle's own arithmetic).
pub fn mst_weight(terminals: &[NodeId]) -> u64 {
    let n = terminals.len();
    if n <= 1 {
        return 0;
    }
    let mut in_tree = vec![false; n];
    let mut key = vec![u32::MAX; n];
    key[0] = 0;
    let mut total = 0u64;
    for _ in 0..n {
        let v = (0..n).filter(|&v| !in_tree[v]).min_by_key(|&v| key[v]).expect("a vertex remains");
        in_tree[v] = true;
        total += u64::from(key[v]);
        for u in 0..n {
            if !in_tree[u] {
                let d = terminals[v].manhattan(terminals[u]);
                if d < key[u] {
                    key[u] = d;
                }
            }
        }
    }
    total
}

/// Exact minimum Steiner-tree weight connecting `terminals` on `mesh`
/// (Dreyfus–Wagner over the mesh's metric closure). Terminals are
/// deduplicated; at most 15 distinct terminals are supported.
pub fn steiner_min(mesh: &Mesh, terminals: &[NodeId]) -> u64 {
    let mut ts: Vec<NodeId> = Vec::new();
    for &t in terminals {
        if !ts.contains(&t) {
            ts.push(t);
        }
    }
    let t = ts.len();
    if t <= 1 {
        return 0;
    }
    assert!(t <= 15, "too many distinct terminals for the DP");
    let nodes: Vec<NodeId> = mesh.nodes().collect();
    let n = nodes.len();
    let full: usize = (1 << t) - 1;
    const INF: u64 = u64::MAX / 4;
    let mut dp = vec![vec![INF; n]; full + 1];
    for (i, term) in ts.iter().enumerate() {
        for (v, node) in nodes.iter().enumerate() {
            dp[1 << i][v] = u64::from(term.manhattan(*node));
        }
    }
    for mask in 1..=full {
        if mask.count_ones() >= 2 {
            // dp rows for several masks are read while this one is written,
            // so an iterator over dp[mask] alone cannot express the merge.
            #[allow(clippy::needless_range_loop)]
            for v in 0..n {
                let mut best = dp[mask][v];
                let mut sub = (mask - 1) & mask;
                while sub > 0 {
                    let other = mask ^ sub;
                    if sub <= other {
                        let cand = dp[sub][v].saturating_add(dp[other][v]);
                        if cand < best {
                            best = cand;
                        }
                    }
                    sub = (sub - 1) & mask;
                }
                dp[mask][v] = best;
            }
        }
        // Propagate through the metric closure. A single pass is exact
        // because Manhattan distance already satisfies the triangle
        // inequality over the full node set.
        let snapshot: Vec<u64> = dp[mask].clone();
        for v in 0..n {
            let mut best = dp[mask][v];
            for (u, du) in snapshot.iter().enumerate() {
                let cand = du.saturating_add(u64::from(nodes[u].manhattan(nodes[v])));
                if cand < best {
                    best = cand;
                }
            }
            dp[mask][v] = best;
        }
    }
    dp[full].iter().copied().min().expect("mesh has nodes")
}

/// Meshes the oracle runs on (≤ 3×3 per the DP budget; the partitioner
/// needs at least four nodes).
const ORACLE_MESHES: [(u16, u16); 4] = [(2, 2), (3, 2), (2, 3), (3, 3)];

/// One oracle verdict, reported on failure.
#[derive(Debug)]
pub struct OracleOutcome {
    /// Operand count.
    pub k: usize,
    /// Planner movement for the statement (Eq. 1 units).
    pub movement_opt: u64,
    /// Independent MST weight over {operand homes} ∪ {store home}.
    pub mst: u64,
    /// Exact Steiner minimum over the same terminals.
    pub steiner: u64,
}

/// Generates one flat-chain statement on a small mesh, plans it through
/// the real [`Planner`], and checks the movement sandwich. Returns a
/// human-readable report on violation.
pub fn check_oracle_case(rng: &mut Rng64) -> Result<OracleOutcome, String> {
    let (cols, rows) = ORACLE_MESHES[rng.gen_range(ORACLE_MESHES.len() as u64) as usize];
    let mesh = Mesh::new(cols, rows);
    let k = 2 + rng.gen_range(4) as usize; // 2..=5 operands
    let len = [16u64, 64, 256, 1024][rng.gen_range(4) as usize];

    let mut b = ProgramBuilder::new();
    let mut src = Vec::new();
    let mut subs = Vec::new();
    for i in 0..k {
        src.push(b.array(format!("s{i}"), &[len], 8));
        subs.push(rng.gen_range(len));
    }
    let dst = b.array("d", &[len], 8);
    let dsub = rng.gen_range(len);
    let rhs: Vec<String> = (0..k).map(|i| format!("s{i}[{}]", subs[i])).collect();
    let stmt = format!("d[{dsub}] = {}", rhs.join(" + "));
    b.nest(&[("i", 0, 1)], &[&stmt]).map_err(|e| format!("oracle build: {e:?}"))?;
    let program = b.build();

    let machine = MachineConfig::knl_like().with_mesh(mesh);
    let config =
        PartitionConfig { predictor: PredictorSpec::AlwaysHit, ..PartitionConfig::default() };
    let part = Partitioner::new(&machine, &program, config);
    let layout = part.layout();
    let data = program.initial_data();
    let core = pick_node(rng, &mesh);

    let opts = PlanOptions { reuse_aware: false, ..PlanOptions::default() };
    let mut planner = Planner::new(&program, layout, &data, HitPredictor::AlwaysHit, opts);
    let mut steps: Vec<Step> = Vec::new();
    let tag = StmtTag { nest: 0, stmt: 0, instance: 0 };
    let rec =
        planner.plan_statement(&mut steps, tag, &program.nests()[0].body[0], &[0], core, false);

    // Terminals: believed operand primaries (AlwaysHit ⇒ the home bank)
    // plus the real store home.
    let mut terminals: Vec<NodeId> =
        (0..k).map(|i| layout.believed(&program, src[i], subs[i], core).home).collect();
    terminals.push(layout.locate(&program, dst, dsub, core).home);

    let outcome = OracleOutcome {
        k,
        movement_opt: rec.movement_opt,
        mst: mst_weight(&terminals),
        steiner: steiner_min(&mesh, &terminals),
    };
    if rec.fallback {
        return Err(format!("oracle statement unexpectedly fell back: {stmt}"));
    }
    if outcome.movement_opt < outcome.steiner {
        return Err(format!(
            "planner beat the exact schedule ({} < {}): impossible — accounting bug. \
             stmt `{stmt}` on {cols}x{rows}, core {core:?}, terminals {terminals:?}, {outcome:?}",
            outcome.movement_opt, outcome.steiner
        ));
    }
    if outcome.movement_opt != outcome.mst {
        return Err(format!(
            "planner missed its MST bound ({} != {}): stmt `{stmt}` on {cols}x{rows}, \
             core {core:?}, terminals {terminals:?}, {outcome:?}",
            outcome.movement_opt, outcome.mst
        ));
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// Literal enumeration of every combining schedule: any two live
    /// components may combine at any mesh node (cost = both distances),
    /// and the last component ships to the store. This is the definition
    /// the DP must match.
    fn brute_combine_min(mesh: &Mesh, operands: &[NodeId], store: NodeId) -> u64 {
        fn go(
            mesh: &Mesh,
            mut comp: Vec<(u16, u16)>,
            store: NodeId,
            memo: &mut HashMap<Vec<(u16, u16)>, u64>,
        ) -> u64 {
            comp.sort_unstable();
            if comp.len() == 1 {
                let p = NodeId::new(comp[0].0, comp[0].1);
                return u64::from(p.manhattan(store));
            }
            if let Some(&v) = memo.get(&comp) {
                return v;
            }
            let mut best = u64::MAX;
            for i in 0..comp.len() {
                for j in i + 1..comp.len() {
                    for site in mesh.nodes() {
                        let a = NodeId::new(comp[i].0, comp[i].1);
                        let b = NodeId::new(comp[j].0, comp[j].1);
                        let cost = u64::from(a.manhattan(site)) + u64::from(b.manhattan(site));
                        let mut rest: Vec<(u16, u16)> = comp
                            .iter()
                            .enumerate()
                            .filter(|&(k, _)| k != i && k != j)
                            .map(|(_, &p)| p)
                            .collect();
                        rest.push((site.x(), site.y()));
                        let total = cost + go(mesh, rest, store, memo);
                        if total < best {
                            best = total;
                        }
                    }
                }
            }
            memo.insert(comp, best);
            best
        }
        go(mesh, operands.iter().map(|p| (p.x(), p.y())).collect(), store, &mut HashMap::new())
    }

    #[test]
    fn steiner_dp_matches_literal_schedule_enumeration() {
        let mut rng = Rng64::new(99);
        for (cols, rows) in [(2u16, 2u16), (3, 2), (3, 3)] {
            let mesh = Mesh::new(cols, rows);
            for _ in 0..12 {
                let k = 2 + rng.gen_range(2) as usize; // 2..=3 operands
                let ops: Vec<NodeId> = (0..k).map(|_| pick_node(&mut rng, &mesh)).collect();
                let store = pick_node(&mut rng, &mesh);
                let mut terms = ops.clone();
                terms.push(store);
                assert_eq!(
                    steiner_min(&mesh, &terms),
                    brute_combine_min(&mesh, &ops, store),
                    "ops {ops:?} store {store:?} on {cols}x{rows}"
                );
            }
        }
    }

    #[test]
    fn steiner_never_exceeds_mst() {
        let mut rng = Rng64::new(5);
        let mesh = Mesh::new(3, 3);
        for _ in 0..50 {
            let k = 2 + rng.gen_range(4) as usize;
            let terms: Vec<NodeId> = (0..k).map(|_| pick_node(&mut rng, &mesh)).collect();
            let s = steiner_min(&mesh, &terms);
            let m = mst_weight(&terms);
            assert!(s <= m, "steiner {s} > mst {m} for {terms:?}");
            // The MST 3/2-approximation bound (loose form): mst ≤ 2·steiner.
            assert!(m <= 2 * s.max(1) || s == 0, "mst {m} > 2·steiner {s}");
        }
    }

    #[test]
    fn steiner_of_corners_uses_a_steiner_point() {
        // Four corners of a 3×3 mesh: MST = 3 edges of weight 2 = 6 by
        // pairing corners; the Steiner tree through the centre costs 8? No:
        // corners are (0,0),(2,0),(0,2),(2,2); centre star = 4·2 = 8, MST
        // = 2+2+2... along edges = 6. Check the DP finds ≤ MST.
        let mesh = Mesh::new(3, 3);
        let corners = [NodeId::new(0, 0), NodeId::new(2, 0), NodeId::new(0, 2), NodeId::new(2, 2)];
        let s = steiner_min(&mesh, &corners);
        let m = mst_weight(&corners);
        assert!(s <= m);
        assert_eq!(m, 6);
        assert_eq!(s, 6); // on a grid the corner set has no better Steiner tree
    }

    #[test]
    fn oracle_holds_over_a_seed_sweep() {
        let mut rng = Rng64::new(2024);
        for _ in 0..60 {
            check_oracle_case(&mut rng).expect("oracle case");
        }
    }

    #[test]
    fn mst_weight_handles_duplicates_and_singletons() {
        let a = NodeId::new(1, 1);
        assert_eq!(mst_weight(&[]), 0);
        assert_eq!(mst_weight(&[a]), 0);
        assert_eq!(mst_weight(&[a, a, a]), 0);
        assert_eq!(mst_weight(&[a, NodeId::new(1, 3)]), 2);
    }
}
