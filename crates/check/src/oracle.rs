//! The exact-schedule oracle.
//!
//! For a flat reorderable chain `d[c] = a0[c0] + a1[c1] + … + ak[ck]`
//! planned with the hit-everything predictor and reuse awareness off, the
//! planner's Eq.-1 movement equals the Kruskal MST weight over the
//! operand home nodes plus the store home: each operand has exactly one
//! candidate site (its believed primary), the preorder node assignment
//! puts every combining step at its vertex's home (root overridden to the
//! store home), and each MST edge is therefore paid exactly once.
//!
//! The *exact* minimum over every operand-ordering and combining-tree
//! node assignment is the Steiner-tree minimum over the same terminal
//! set: any combining schedule traces a connected subgraph spanning the
//! terminals, and any Steiner tree rooted at the store can be executed
//! bottom-up as a combining schedule of equal cost. We compute it with
//! the Dreyfus–Wagner DP (and validate the DP against a literal
//! combining-schedule enumerator in unit tests).
//!
//! The oracle therefore asserts, per generated statement, planning each
//! case twice (Steiner relays off, then on):
//!
//! ```text
//! steiner_min ≤ movement_opt           (the planner never beats exact)
//! movement_opt == mst_weight           (steiner off: the MST bound, bit-for-bit)
//! movement_steiner == steiner_min      (steiner on: the exact minimum, bit-for-bit)
//! ```
//!
//! The second assertion is the ISSUE's "bit-equal for 2-operand
//! statements" strengthened to every flat chain — for k = 2 the MST *is*
//! the exact schedule, so equality there follows from both lines. The
//! third is the Steiner pass's optimality proof in the oracle regime:
//! relay augmentation closes the MST-vs-Steiner gap *exactly* (every
//! operand has a singleton candidate set, so the augmented tree weighs
//! the Dreyfus–Wagner optimum, and the single fresh instance realises
//! every tree edge once with no balance detour).

use crate::gencase::pick_node;
use dmcp_core::partitioner::PredictorSpec;
use dmcp_core::{HitPredictor, PartitionConfig, Partitioner, PlanOptions, Planner, Step, StmtTag};
use dmcp_ir::ProgramBuilder;
use dmcp_mach::rng::Rng64;
use dmcp_mach::{MachineConfig, Mesh, NodeId};

// The MST and Dreyfus–Wagner Steiner kernels were promoted to
// `dmcp_mach::graph` so `dmcp-bound` and future placement passes share the
// oracle-validated implementation; these re-exports keep the historical
// `crate::oracle::{mst_weight, steiner_min}` paths working.
pub use dmcp_mach::graph::{mst_weight, steiner_min};

/// Meshes the oracle runs on (≤ 3×3 per the DP budget; the partitioner
/// needs at least four nodes).
const ORACLE_MESHES: [(u16, u16); 4] = [(2, 2), (3, 2), (2, 3), (3, 3)];

/// One oracle verdict, reported on failure.
#[derive(Debug)]
pub struct OracleOutcome {
    /// Operand count.
    pub k: usize,
    /// Planner movement for the statement with relays off (Eq. 1 units).
    pub movement_opt: u64,
    /// Planner movement for the statement with relays on.
    pub movement_steiner: u64,
    /// Independent MST weight over {operand homes} ∪ {store home}.
    pub mst: u64,
    /// Exact Steiner minimum over the same terminals.
    pub steiner: u64,
}

/// Generates one flat-chain statement on a small mesh, plans it through
/// the real [`Planner`], and checks the movement sandwich. Returns a
/// human-readable report on violation.
pub fn check_oracle_case(rng: &mut Rng64) -> Result<OracleOutcome, String> {
    let (cols, rows) = ORACLE_MESHES[rng.gen_range(ORACLE_MESHES.len() as u64) as usize];
    let mesh = Mesh::new(cols, rows);
    let k = 2 + rng.gen_range(4) as usize; // 2..=5 operands
    let len = [16u64, 64, 256, 1024][rng.gen_range(4) as usize];

    let mut b = ProgramBuilder::new();
    let mut src = Vec::new();
    let mut subs = Vec::new();
    for i in 0..k {
        src.push(b.array(format!("s{i}"), &[len], 8));
        subs.push(rng.gen_range(len));
    }
    let dst = b.array("d", &[len], 8);
    let dsub = rng.gen_range(len);
    let rhs: Vec<String> = (0..k).map(|i| format!("s{i}[{}]", subs[i])).collect();
    let stmt = format!("d[{dsub}] = {}", rhs.join(" + "));
    b.nest(&[("i", 0, 1)], &[&stmt]).map_err(|e| format!("oracle build: {e:?}"))?;
    let program = b.build();

    let machine = MachineConfig::knl_like().with_mesh(mesh);
    let config =
        PartitionConfig { predictor: PredictorSpec::AlwaysHit, ..PartitionConfig::default() };
    let part = Partitioner::new(&machine, &program, config);
    let layout = part.layout();
    let data = program.initial_data();
    let core = pick_node(rng, &mesh);

    let tag = StmtTag { nest: 0, stmt: 0, instance: 0 };
    let opts = PlanOptions { reuse_aware: false, steiner: false, ..PlanOptions::default() };
    let mut planner = Planner::new(&program, layout, &data, HitPredictor::AlwaysHit, opts);
    let mut steps: Vec<Step> = Vec::new();
    let rec =
        planner.plan_statement(&mut steps, tag, &program.nests()[0].body[0], &[0], core, false);

    // The same case planned with relay augmentation on (a fresh planner:
    // no carried state).
    let s_opts = PlanOptions { reuse_aware: false, steiner: true, ..PlanOptions::default() };
    let mut s_planner = Planner::new(&program, layout, &data, HitPredictor::AlwaysHit, s_opts);
    let mut s_steps: Vec<Step> = Vec::new();
    let s_rec =
        s_planner.plan_statement(&mut s_steps, tag, &program.nests()[0].body[0], &[0], core, false);

    // Terminals: believed operand primaries (AlwaysHit ⇒ the home bank)
    // plus the real store home.
    let mut terminals: Vec<NodeId> =
        (0..k).map(|i| layout.believed(&program, src[i], subs[i], core).home).collect();
    terminals.push(layout.locate(&program, dst, dsub, core).home);

    let outcome = OracleOutcome {
        k,
        movement_opt: rec.movement_opt,
        movement_steiner: s_rec.movement_opt,
        mst: mst_weight(&terminals),
        steiner: steiner_min(&mesh, &terminals),
    };

    // Cross-validate the `dmcp-bound` lower bound against the exact floor:
    // in the oracle regime (single fresh instance, always-hit predictor)
    // its option groups collapse to exactly these terminals, so the nest
    // bound must equal the Steiner minimum — and can never exceed it.
    let bound_config = PartitionConfig {
        predictor: PredictorSpec::AlwaysHit,
        opts: PlanOptions { reuse_aware: false, ..PlanOptions::default() },
        ..PartitionConfig::default()
    };
    let nb = dmcp_bound::bound_nest(&program, 0, layout, &data, &bound_config, &[core], None);
    if nb.bound != outcome.steiner {
        return Err(format!(
            "lower bound {} diverged from the exact Steiner floor {}: stmt `{stmt}` on \
             {cols}x{rows}, core {core:?}, terminals {terminals:?}, {nb:?}",
            nb.bound, outcome.steiner
        ));
    }
    if rec.fallback {
        return Err(format!("oracle statement unexpectedly fell back: {stmt}"));
    }
    if outcome.movement_opt < outcome.steiner {
        return Err(format!(
            "planner beat the exact schedule ({} < {}): impossible — accounting bug. \
             stmt `{stmt}` on {cols}x{rows}, core {core:?}, terminals {terminals:?}, {outcome:?}",
            outcome.movement_opt, outcome.steiner
        ));
    }
    if outcome.movement_opt != outcome.mst {
        return Err(format!(
            "planner missed its MST bound ({} != {}): stmt `{stmt}` on {cols}x{rows}, \
             core {core:?}, terminals {terminals:?}, {outcome:?}",
            outcome.movement_opt, outcome.mst
        ));
    }
    if outcome.movement_steiner != outcome.steiner {
        return Err(format!(
            "steiner-augmented planner missed the exact minimum ({} != {}): stmt `{stmt}` on \
             {cols}x{rows}, core {core:?}, terminals {terminals:?}, {outcome:?}",
            outcome.movement_steiner, outcome.steiner
        ));
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// Literal enumeration of every combining schedule: any two live
    /// components may combine at any mesh node (cost = both distances),
    /// and the last component ships to the store. This is the definition
    /// the DP must match.
    fn brute_combine_min(mesh: &Mesh, operands: &[NodeId], store: NodeId) -> u64 {
        fn go(
            mesh: &Mesh,
            mut comp: Vec<(u16, u16)>,
            store: NodeId,
            memo: &mut HashMap<Vec<(u16, u16)>, u64>,
        ) -> u64 {
            comp.sort_unstable();
            if comp.len() == 1 {
                let p = NodeId::new(comp[0].0, comp[0].1);
                return u64::from(p.manhattan(store));
            }
            if let Some(&v) = memo.get(&comp) {
                return v;
            }
            let mut best = u64::MAX;
            for i in 0..comp.len() {
                for j in i + 1..comp.len() {
                    for site in mesh.nodes() {
                        let a = NodeId::new(comp[i].0, comp[i].1);
                        let b = NodeId::new(comp[j].0, comp[j].1);
                        let cost = u64::from(a.manhattan(site)) + u64::from(b.manhattan(site));
                        let mut rest: Vec<(u16, u16)> = comp
                            .iter()
                            .enumerate()
                            .filter(|&(k, _)| k != i && k != j)
                            .map(|(_, &p)| p)
                            .collect();
                        rest.push((site.x(), site.y()));
                        let total = cost + go(mesh, rest, store, memo);
                        if total < best {
                            best = total;
                        }
                    }
                }
            }
            memo.insert(comp, best);
            best
        }
        go(mesh, operands.iter().map(|p| (p.x(), p.y())).collect(), store, &mut HashMap::new())
    }

    #[test]
    fn steiner_dp_matches_literal_schedule_enumeration() {
        let mut rng = Rng64::new(99);
        for (cols, rows) in [(2u16, 2u16), (3, 2), (3, 3)] {
            let mesh = Mesh::new(cols, rows);
            for _ in 0..12 {
                let k = 2 + rng.gen_range(2) as usize; // 2..=3 operands
                let ops: Vec<NodeId> = (0..k).map(|_| pick_node(&mut rng, &mesh)).collect();
                let store = pick_node(&mut rng, &mesh);
                let mut terms = ops.clone();
                terms.push(store);
                assert_eq!(
                    steiner_min(&mesh, &terms),
                    brute_combine_min(&mesh, &ops, store),
                    "ops {ops:?} store {store:?} on {cols}x{rows}"
                );
            }
        }
    }

    #[test]
    fn oracle_holds_over_a_seed_sweep() {
        let mut rng = Rng64::new(2024);
        for _ in 0..60 {
            check_oracle_case(&mut rng).expect("oracle case");
        }
    }
}
