//! Value conformance: every emitted plan, executed step by step, must
//! compute exactly what the program means.
//!
//! The reference semantics is the `dmcp-ir` interpreter
//! ([`run_sequential`]). The plan side executes each nest's [`Schedule`]
//! — partial reductions, sync arcs, final stores — three ways:
//!
//! 1. in schedule order ([`Schedule::execute_values`]);
//! 2. the unoptimized baseline schedule, the same way;
//! 3. in *adversarial* random topological orders
//!    ([`Schedule::execute_values_ordered`]): any order the sync arcs
//!    permit must produce the same values, otherwise the emitted `waits`
//!    are missing a dependence.
//!
//! The mask family compares bit-for-bit (`rel_tol = 0.0`); the division
//! family under a small relative tolerance, since reordered division
//! chains legitimately differ in the last ulps.
//!
//! With [`dmcp_core::PlanOptions::steiner`] on by default, generated
//! plans may carry *relay* combining steps — steps at a junction node
//! that own no element of their own and exist purely to merge partial
//! results ([`dmcp_core::SteinerPass`]). All three execution modes above
//! cover them unchanged, and the degraded check's usable-node sweep
//! applies to relay steps exactly as to operand-bearing ones (relay
//! candidates are drawn from the live set).

use crate::gencase::BuiltCase;
use dmcp_core::{Partitioner, Schedule};
use dmcp_ir::exec::run_sequential;
use dmcp_ir::program::DataStore;
use dmcp_mach::rng::Rng64;
use dmcp_mach::FaultState;

fn compare(label: &str, got: &DataStore, want: &DataStore, rel_tol: f64) -> Result<(), String> {
    if !got.same_shape(want) {
        return Err(format!("{label}: data stores have different shapes"));
    }
    match got.first_mismatch(want, rel_tol) {
        None => Ok(()),
        Some(m) => Err(format!(
            "{label}: array {:?} elem {} diverged: plan {} vs interpreter {} (rel_tol {rel_tol})",
            m.array, m.elem, m.left, m.right
        )),
    }
}

/// A uniformly random topological order of `schedule` honouring both
/// `Temp` inputs and explicit `waits`.
pub fn random_topo_order(schedule: &Schedule, rng: &mut Rng64) -> Vec<usize> {
    let n = schedule.steps.len();
    let mut indegree = vec![0usize; n];
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (k, step) in schedule.steps.iter().enumerate() {
        for p in step.producers() {
            succs[p.index()].push(k);
            indegree[k] += 1;
        }
    }
    let mut ready: Vec<usize> = (0..n).filter(|&k| indegree[k] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while !ready.is_empty() {
        let pick = rng.gen_range(ready.len() as u64) as usize;
        let k = ready.swap_remove(pick);
        order.push(k);
        for &s in &succs[k] {
            indegree[s] -= 1;
            if indegree[s] == 0 {
                ready.push(s);
            }
        }
    }
    order
}

fn run_plan(nests: &[dmcp_core::NestPartition], data: &DataStore) -> DataStore {
    let mut d = data.clone();
    for nest in nests {
        nest.schedule.execute_values(&mut d);
    }
    d
}

fn run_plan_ordered(
    nests: &[dmcp_core::NestPartition],
    data: &DataStore,
    rng: &mut Rng64,
) -> Result<DataStore, String> {
    let mut d = data.clone();
    for nest in nests {
        let order = random_topo_order(&nest.schedule, rng);
        nest.schedule.execute_values_ordered(&order, &mut d)?;
    }
    Ok(d)
}

/// Checks a healthy-machine case: optimized plan, baseline plan, and
/// `orders` adversarial topological replays all conform to the
/// interpreter under `rel_tol`.
pub fn check_healthy(
    built: &BuiltCase,
    rng: &mut Rng64,
    orders: u32,
    rel_tol: f64,
) -> Result<(), String> {
    let part = Partitioner::new(&built.machine, &built.program, built.config.clone());
    let out = part.partition_with_data(&built.program, &built.data);

    let mut want = built.data.clone();
    run_sequential(&built.program, &mut want);

    let got = run_plan(&out.nests, &built.data);
    compare("optimized plan", &got, &want, rel_tol)?;

    let base = part.baseline(&built.program, &built.data);
    let got_base = run_plan(&base.nests, &built.data);
    compare("baseline plan", &got_base, &want, rel_tol)?;

    for trial in 0..orders {
        let got_ord = run_plan_ordered(&out.nests, &built.data, rng)
            .map_err(|e| format!("adversarial order {trial}: {e}"))?;
        compare(&format!("adversarial order {trial}"), &got_ord, &want, rel_tol)?;
    }
    Ok(())
}

/// Checks a degraded-machine case: the plan compiled against the faulted
/// layout must place every step on a usable node and still conform to
/// the interpreter. Cases whose fault plan kills every node are skipped
/// (`Ok`): there is nothing to schedule on.
pub fn check_degraded(built: &BuiltCase, rel_tol: f64) -> Result<(), String> {
    let Some(plan) = &built.faults else {
        return Ok(());
    };
    let mesh = built.machine.mesh;
    let Ok(state) = FaultState::new(plan.clone(), mesh) else {
        return Ok(()); // no live nodes: vacuously conformant
    };
    let part =
        Partitioner::new_degraded(&built.machine, &built.program, built.config.clone(), &state)
            .map_err(|e| format!("degraded partitioner construction failed: {e:?}"))?;
    let out = part.partition_with_data(&built.program, &built.data);

    if !state.is_trivial() {
        for nest in &out.nests {
            for step in &nest.schedule.steps {
                if !state.is_usable(step.node) {
                    return Err(format!(
                        "degraded plan placed step {:?} on unusable node {:?}",
                        step.id, step.node
                    ));
                }
            }
        }
    }

    let mut want = built.data.clone();
    run_sequential(&built.program, &mut want);
    let got = run_plan(&out.nests, &built.data);
    compare("degraded plan", &got, &want, rel_tol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gencase::{gen_div_case, gen_mask_case};

    #[test]
    fn mask_family_conforms_bit_exactly() {
        let mut rng = Rng64::new(1);
        for _ in 0..15 {
            let spec = gen_mask_case(&mut rng, 192);
            let built = spec.build().expect("builds");
            check_healthy(&built, &mut rng, 2, 0.0)
                .unwrap_or_else(|e| panic!("{e}\ncase:\n{spec}"));
        }
    }

    #[test]
    fn div_family_conforms_within_tolerance() {
        let mut rng = Rng64::new(2);
        for _ in 0..8 {
            let spec = gen_div_case(&mut rng);
            let built = spec.build().expect("builds");
            check_healthy(&built, &mut rng, 2, 1e-9)
                .unwrap_or_else(|e| panic!("{e}\ncase:\n{spec}"));
        }
    }

    #[test]
    fn degraded_cases_conform_and_stay_on_live_nodes() {
        let mut rng = Rng64::new(3);
        let mut exercised = 0;
        for _ in 0..25 {
            let spec = gen_mask_case(&mut rng, 192);
            if spec.faults.is_none() {
                continue;
            }
            exercised += 1;
            let built = spec.build().expect("builds");
            check_degraded(&built, 0.0).unwrap_or_else(|e| panic!("{e}\ncase:\n{spec}"));
        }
        assert!(exercised > 3, "generator produced too few faulted cases");
    }

    #[test]
    fn relay_bearing_plans_conform_three_ways() {
        use crate::golden::canonical_faults;
        use dmcp_core::{PartitionConfig, PlanOptions};
        use dmcp_ir::ProgramBuilder;
        use dmcp_mach::MachineConfig;

        // A reorderable-chain family on the full knl-like mesh whose
        // relayed plan is strictly cheaper than the MST plan, so the
        // optimized schedule is guaranteed to carry relay steps. It must
        // conform in schedule order, against the baseline, in adversarial
        // topological orders, and degraded under the canonical faults.
        let mut b = ProgramBuilder::new();
        let mut ids = Vec::new();
        for n in ["A", "B", "C", "D", "E", "X", "Y"] {
            ids.push(b.array(n, &[256], 8));
        }
        b.nest(&[("i", 0, 48)], &["A[i] = B[i] + C[i] + D[i] + E[i]", "X[i] = Y[i] + C[i] + E[i]"])
            .unwrap();
        let program = b.build();
        let machine = MachineConfig::knl_like();
        let data = program.initial_data();

        let on = PartitionConfig::default();
        let off = PartitionConfig { opts: PlanOptions { steiner: false, ..on.opts }, ..on.clone() };
        let movement = |cfg: PartitionConfig| -> u64 {
            Partitioner::new(&machine, &program, cfg)
                .partition_with_data(&program, &data)
                .nests
                .iter()
                .map(|n| n.stats.movement_opt)
                .sum()
        };
        assert!(
            movement(on.clone()) < movement(off),
            "case must adopt relays (strict movement win) for this test to bite"
        );

        let built = BuiltCase {
            program,
            array_ids: ids,
            machine,
            config: on,
            faults: Some(canonical_faults()),
            data,
        };
        let mut rng = Rng64::new(7);
        check_healthy(&built, &mut rng, 3, 0.0).expect("relayed healthy plan conforms");
        check_degraded(&built, 0.0).expect("relayed degraded plan conforms");
    }

    #[test]
    fn random_topo_orders_are_valid_permutations() {
        let mut rng = Rng64::new(4);
        let spec = gen_mask_case(&mut rng, 128);
        let built = spec.build().expect("builds");
        let part = Partitioner::new(&built.machine, &built.program, built.config.clone());
        let out = part.partition_with_data(&built.program, &built.data);
        for nest in &out.nests {
            let order = random_topo_order(&nest.schedule, &mut rng);
            assert_eq!(order.len(), nest.schedule.steps.len());
            let mut seen = vec![false; order.len()];
            for &k in &order {
                assert!(!seen[k]);
                seen[k] = true;
            }
        }
    }
}
