//! `dmcp-check` — a deterministic property-testing harness for the
//! partitioner.
//!
//! The paper's claim rests on the MST schedule being a *correct* rewriting
//! of each statement (level-based nested sets, partial reductions, store
//! at the home node) and a *near-optimal* one under the Eq.-1 movement
//! metric. This crate checks both mechanically, on thousands of generated
//! programs, machines and fault plans:
//!
//! * [`gencase`] — a structured generator for random programs / data
//!   stores / meshes under a size budget, plus a greedy shrinker that
//!   minimises failing cases before they are reported;
//! * [`oracle`] — an exact-schedule oracle: a Dreyfus–Wagner Steiner-tree
//!   DP (equivalent to enumerating every operand-ordering and every
//!   combining-tree node assignment) for statements with ≤ 5 operands on
//!   meshes ≤ 3×3, sandwiching the partitioner's movement between the
//!   exact minimum and the MST bound;
//! * [`conform`] — a value-conformance checker that executes every
//!   emitted plan step by step (partial reductions, sync arcs, store) —
//!   in schedule order *and* in adversarial random topological orders —
//!   and compares against the `dmcp-ir` interpreter, healthy and
//!   degraded;
//! * [`meta`] — metamorphic sweeps: variable renaming, mesh
//!   translation/rotation of home-node sets, fault-plan route
//!   monotonicity;
//! * [`boundprop`] — the `dmcp-bound` lower bound never exceeds planner
//!   movement (healthy and degraded), and is invariant under renaming and
//!   mesh isometries;
//! * [`crashprop`] — crash-consistency fuzzing of the durable plan tier:
//!   a deterministic fault injector crashes the store at every write
//!   boundary, the reopened tier must recover exactly the committed
//!   prefix, and a fault storm must degrade to memory-only and restore
//!   without losing a record;
//! * [`digest`] — a stable plan fingerprint for golden-plan drift tests;
//! * [`harness`] — the seeded driver tying it all together, with panic
//!   capture and counterexample shrinking.
//!
//! Everything runs on the in-tree splitmix64 RNG ([`dmcp_mach::rng`]):
//! a fixed seed reproduces the exact same sweep, bit for bit.
//!
//! # Quick start
//!
//! ```
//! use dmcp_check::harness::{run, CheckConfig};
//!
//! let report = run(&CheckConfig { seeds: 2, ..CheckConfig::default() });
//! assert!(report.counterexamples.is_empty());
//! ```

pub mod boundprop;
pub mod conform;
pub mod crashprop;
pub mod digest;
pub mod gencase;
pub mod golden;
pub mod harness;
pub mod meta;
pub mod oracle;
pub mod steinerprop;

pub use digest::plan_digest;
pub use gencase::{BuiltCase, CaseSpec};
pub use harness::{run, run_pooled, CheckConfig, CheckReport, Counterexample};
