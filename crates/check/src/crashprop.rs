//! Crash-consistency properties of the durable plan tier.
//!
//! * **Crash prefix** — for a generated scenario of puts, a clean run
//!   over [`FaultyIo`] measures which mutating-operation span each put
//!   occupies; the scenario is then re-run once per write boundary with a
//!   simulated crash at exactly that operation (the in-flight write torn
//!   to a seeded prefix, everything later dead). Reopening the surviving
//!   bytes must recover *exactly the committed prefix*: every put that
//!   finished before the crash comes back bit-identical, no put that
//!   started after the crash exists, the put in flight at the crash is
//!   either absent or bit-identical (never torn), and the reopened tier
//!   accepts new writes. Failures shrink to a minimal scenario.
//! * **Degrade/restore** — a fault storm mid-scenario must flip the tier
//!   to memory-only without surfacing a single error to callers; lifting
//!   the storm must let a re-probe restore the tier, drain the parked
//!   writes, and leave a reopened tier holding every record.

use dmcp_mach::rng::{mix, Rng64};
use dmcp_serve::{DiskTier, FaultyIo, MemIo, PlanKey};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// A re-probe interval that never fires within a test run: crashed runs
/// must stay dead, clean runs must count the same ops every time.
const NO_REPROBE: Duration = Duration::from_secs(100_000);

/// One generated crash workload: distinct-key puts with seeded payloads.
#[derive(Clone, Debug)]
pub struct CrashScenario {
    /// Seed for payload bytes and the injector's torn-prefix lengths.
    pub seed: u64,
    /// Segment-rotation threshold (small values force rotations).
    pub segment_bytes: u64,
    /// Payload length of each put, in order.
    pub payload_lens: Vec<usize>,
}

impl fmt::Display for CrashScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seed={:#x} segment_bytes={} payload_lens={:?}",
            self.seed, self.segment_bytes, self.payload_lens
        )
    }
}

/// Generates a scenario: 2..=8 puts of 1..=120 bytes, over one of three
/// segment sizes (the smallest rotates every couple of records).
pub fn gen_crash_scenario(rng: &mut Rng64) -> CrashScenario {
    let n = 2 + rng.gen_range(7) as usize;
    let segment_bytes = [192, 1 << 10, 1 << 20][rng.gen_range(3) as usize];
    let payload_lens = (0..n).map(|_| 1 + rng.gen_range(120) as usize).collect();
    CrashScenario { seed: rng.next_u64(), segment_bytes, payload_lens }
}

fn key(n: u64) -> PlanKey {
    PlanKey { program: mix(n + 1), machine: mix(n ^ 0xA5), config: mix(n ^ 0x5A), faults: mix(n) }
}

/// Deterministic payload bytes for put `i` of a scenario.
fn payload(seed: u64, i: usize, len: usize) -> Vec<u8> {
    let mut rng = Rng64::new(mix(seed ^ ((i as u64) << 20) ^ 0x9A7_10AD));
    (0..len).map(|_| rng.next_u64() as u8).collect()
}

/// What the clean (fault-free) run of a scenario measured.
struct CleanRun {
    /// Mutating ops consumed by `open` alone.
    ops_after_open: u64,
    /// Mutating ops consumed by the whole scenario.
    total_ops: u64,
    /// The `[start, end)` mutating-op span of each put.
    spans: Vec<(u64, u64)>,
}

fn clean_run(s: &CrashScenario) -> Result<CleanRun, String> {
    let mem = MemIo::new();
    let faulty = FaultyIo::new(Arc::new(Arc::clone(&mem)), s.seed);
    let chaos = faulty.chaos();
    let tier = DiskTier::open_with_io("/crash", s.segment_bytes, NO_REPROBE, Arc::new(faulty))
        .map_err(|e| format!("clean open: {e}"))?;
    let ops_after_open = chaos.ops();
    let mut spans = Vec::with_capacity(s.payload_lens.len());
    for (i, &len) in s.payload_lens.iter().enumerate() {
        let start = chaos.ops();
        tier.put(key(i as u64), &payload(s.seed, i, len))
            .map_err(|e| format!("clean put {i}: {e}"))?;
        spans.push((start, chaos.ops()));
    }
    if tier.stats().degraded {
        return Err("clean run degraded with no fault armed".into());
    }
    Ok(CleanRun { ops_after_open, total_ops: chaos.ops(), spans })
}

/// Replays the scenario with a crash at mutating op `c`, reopens the
/// surviving bytes, and demands the committed prefix — nothing torn,
/// nothing from the future, nothing committed lost.
fn crash_at_op(s: &CrashScenario, clean: &CleanRun, c: u64) -> Result<(), String> {
    let mem = MemIo::new();
    let faulty = FaultyIo::new(Arc::new(Arc::clone(&mem)), s.seed);
    let chaos = faulty.chaos();
    let tier = DiskTier::open_with_io("/crash", s.segment_bytes, NO_REPROBE, Arc::new(faulty))
        .map_err(|e| format!("open before crash at {c}: {e}"))?;
    chaos.crash_at(c);
    for (i, &len) in s.payload_lens.iter().enumerate() {
        // Degradation contract: even with the disk dying mid-put, the
        // caller never sees an error (the record parks in memory).
        tier.put(key(i as u64), &payload(s.seed, i, len))
            .map_err(|e| format!("put {i} surfaced an error under crash at {c}: {e}"))?;
    }
    if !chaos.crashed() {
        return Err(format!("crash armed at {c} never fired ({} ops total)", chaos.ops()));
    }
    drop(tier);

    // The "restarted process": reopen whatever bytes survived, fault-free.
    let reopened =
        DiskTier::open_with_io("/crash", s.segment_bytes, NO_REPROBE, Arc::new(Arc::clone(&mem)))
            .map_err(|e| format!("reopen after crash at {c}: {e}"))?;
    for (i, &len) in s.payload_lens.iter().enumerate() {
        let (start, end) = clean.spans[i];
        let want = payload(s.seed, i, len);
        let got = reopened.get(key(i as u64));
        if end <= c {
            match got {
                Some(p) if p == want => {}
                Some(_) => {
                    return Err(format!(
                        "crash at {c}: committed put {i} (span {start}..{end}) \
                         came back with different bytes"
                    ));
                }
                None => {
                    return Err(format!(
                        "crash at {c}: committed put {i} (span {start}..{end}) lost"
                    ));
                }
            }
        } else if start <= c {
            // In flight at the crash: may survive only bit-identically
            // (the torn prefix happened to complete the record).
            if let Some(p) = got {
                if p != want {
                    return Err(format!(
                        "crash at {c}: in-flight put {i} surfaced torn or wrong bytes"
                    ));
                }
            }
        } else if got.is_some() {
            return Err(format!(
                "crash at {c}: put {i} (span {start}..{end}) survived \
                 though it started after the crash"
            ));
        }
    }
    // Recovery must leave a writable tier.
    let fresh = key(0xF00D + s.payload_lens.len() as u64);
    reopened.put(fresh, b"post-crash write").map_err(|e| format!("post-crash put: {e}"))?;
    if reopened.stats().degraded {
        return Err(format!("crash at {c}: reopened tier degraded on a healthy disk"));
    }
    if reopened.get(fresh).as_deref() != Some(&b"post-crash write"[..]) {
        return Err(format!("crash at {c}: post-crash write unreadable"));
    }
    Ok(())
}

/// Runs the full every-write-boundary crash sweep for one scenario.
///
/// # Errors
///
/// The first violated boundary, as a message naming the crash op.
pub fn check_crash_consistency(s: &CrashScenario) -> Result<(), String> {
    let clean = clean_run(s)?;
    for c in clean.ops_after_open..clean.total_ops {
        crash_at_op(s, &clean, c)?;
    }
    Ok(())
}

/// Greedy scenario shrinker: drop puts, then halve payloads, as long as
/// the sweep still fails.
fn shrink_scenario(s: &CrashScenario, attempts: u32) -> CrashScenario {
    let fails = |cand: &CrashScenario| check_crash_consistency(cand).is_err();
    let mut best = s.clone();
    let mut left = attempts;
    loop {
        let mut improved = false;
        for i in 0..best.payload_lens.len() {
            if left == 0 || best.payload_lens.len() <= 1 {
                break;
            }
            let mut cand = best.clone();
            cand.payload_lens.remove(i);
            left -= 1;
            if fails(&cand) {
                best = cand;
                improved = true;
                break;
            }
        }
        if improved {
            continue;
        }
        for i in 0..best.payload_lens.len() {
            if left == 0 {
                break;
            }
            if best.payload_lens[i] > 1 {
                let mut cand = best.clone();
                cand.payload_lens[i] /= 2;
                left -= 1;
                if fails(&cand) {
                    best = cand;
                    improved = true;
                    break;
                }
            }
        }
        if !improved || left == 0 {
            return best;
        }
    }
}

/// Generates one scenario and sweeps a crash over every write boundary;
/// a violation is shrunk before reporting.
///
/// # Errors
///
/// The violation message plus the minimal scenario that reproduces it.
pub fn check_crash_prefix(rng: &mut Rng64, shrink_attempts: u32) -> Result<(), String> {
    let scenario = gen_crash_scenario(rng);
    match check_crash_consistency(&scenario) {
        Ok(()) => Ok(()),
        Err(first) => {
            let small = shrink_scenario(&scenario, shrink_attempts);
            let message = check_crash_consistency(&small).err().unwrap_or(first);
            Err(format!("{message}\nscenario: {small}"))
        }
    }
}

/// A fault storm mid-scenario must degrade the tier without surfacing a
/// single caller-visible error; lifting it must restore the tier, drain
/// the parked writes, and leave every record durable.
///
/// # Errors
///
/// A message naming the violated stage.
pub fn check_degrade_restore(rng: &mut Rng64) -> Result<(), String> {
    let seed = rng.next_u64();
    let before = 1 + rng.gen_range(4) as usize;
    let during = 1 + rng.gen_range(4) as usize;
    let total = before + during;
    let lens: Vec<usize> = (0..total).map(|_| 1 + rng.gen_range(96) as usize).collect();

    let mem = MemIo::new();
    let faulty = FaultyIo::new(Arc::new(Arc::clone(&mem)), seed);
    let chaos = faulty.chaos();
    let tier = DiskTier::open_with_io("/degrade", 1 << 16, Duration::ZERO, Arc::new(faulty))
        .map_err(|e| format!("open: {e}"))?;
    for (i, &len) in lens.iter().enumerate().take(before) {
        tier.put(key(i as u64), &payload(seed, i, len))
            .map_err(|e| format!("healthy put {i}: {e}"))?;
    }

    chaos.set_storm(true);
    for (i, &len) in lens.iter().enumerate().skip(before) {
        tier.put(key(i as u64), &payload(seed, i, len))
            .map_err(|e| format!("storm put {i} surfaced an error: {e}"))?;
    }
    let stats = tier.stats();
    if !stats.degraded {
        return Err("storm did not degrade the tier".into());
    }
    if stats.errors == 0 {
        return Err("degraded tier counted no disk errors".into());
    }
    if stats.pending_records as usize != during {
        return Err(format!(
            "expected {during} parked records during the storm, found {}",
            stats.pending_records
        ));
    }

    chaos.set_storm(false);
    let stats = tier.stats(); // a stats poll is a re-probe opportunity
    if stats.degraded {
        return Err("re-probe did not restore the tier after the storm".into());
    }
    if stats.pending_records != 0 {
        return Err(format!("{} records still parked after restore", stats.pending_records));
    }
    for (i, &len) in lens.iter().enumerate() {
        if tier.get(key(i as u64)).as_deref() != Some(&payload(seed, i, len)[..]) {
            return Err(format!("record {i} unreadable after restore"));
        }
    }
    drop(tier);

    let reopened =
        DiskTier::open_with_io("/degrade", 1 << 16, Duration::ZERO, Arc::new(Arc::clone(&mem)))
            .map_err(|e| format!("reopen: {e}"))?;
    if reopened.len() != total {
        return Err(format!(
            "reopen found {} records, expected {total} (storm writes not durable)",
            reopened.len()
        ));
    }
    for (i, &len) in lens.iter().enumerate() {
        if reopened.get(key(i as u64)).as_deref() != Some(&payload(seed, i, len)[..]) {
            return Err(format!("record {i} wrong after reopen"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_prefix_holds_over_a_sweep() {
        let mut rng = Rng64::new(31);
        for _ in 0..4 {
            check_crash_prefix(&mut rng, 100).unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn degrade_restore_holds_over_a_sweep() {
        let mut rng = Rng64::new(32);
        for _ in 0..6 {
            check_degrade_restore(&mut rng).unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn clean_run_spans_are_disjoint_and_ordered() {
        let mut rng = Rng64::new(33);
        let s = gen_crash_scenario(&mut rng);
        let clean = clean_run(&s).expect("clean run");
        let mut prev = clean.ops_after_open;
        for &(start, end) in &clean.spans {
            assert!(start >= prev, "span starts before the previous ended");
            assert!(end > start, "every put costs at least one mutating op");
            prev = end;
        }
        assert_eq!(prev, clean.total_ops);
    }
}
