//! Properties of the `dmcp-bound` movement lower bounds.
//!
//! * **Soundness** — on every generated case, healthy *and* degraded, the
//!   per-nest lower bound never exceeds the planner's reported optimized
//!   movement. A violation means either the bound over-charges or the
//!   planner under-accounts; both are bugs worth a shrunken case.
//! * **Rename invariance** — the bound is computed from line addresses,
//!   home nodes and analyzability, none of which may depend on surface
//!   names. Rebuilding a spec under fresh names must reproduce every
//!   [`NestBound`] bit for bit.
//! * **Isometry invariance** — the set-kernels the bound is built from
//!   (max pairwise group distance, set MST, exact group Steiner) are pure
//!   functions of Manhattan distances, so every mesh dihedral transform
//!   and in-bounds translation must preserve them, exactly as
//!   [`crate::meta::check_isometry`] demands of the point kernels.

use crate::gencase::{pick_node, CaseSpec};
use dmcp_bound::{bound_program, gap_report, NestBound};
use dmcp_core::Partitioner;
use dmcp_mach::graph::{max_pairwise_sets, mst_weight_sets, steiner_min_sets};
use dmcp_mach::rng::Rng64;
use dmcp_mach::symmetry::translate;
use dmcp_mach::{FaultState, Mesh, MeshTransform, NodeId};

/// Plans a built case and demands `bound ≤ movement_opt` per nest and in
/// total, healthy first, then (when the spec carries faults) degraded.
pub fn check_bound_sound(spec: &CaseSpec) -> Result<(), String> {
    let built = spec.build()?;
    let part = Partitioner::new(&built.machine, &built.program, built.config.clone());
    let out = part.partition_with_data(&built.program, &built.data);
    let report =
        gap_report("healthy", &built.program, part.layout(), &built.data, part.config(), &out);
    if !report.sound() {
        return Err(format!(
            "healthy bound {} exceeds planner movement {} (per nest: {:?})",
            report.bound,
            report.planner_movement,
            report.nests.iter().map(|(nb, m)| (nb.nest, nb.bound, *m)).collect::<Vec<_>>()
        ));
    }

    let Some(plan) = &built.faults else {
        return Ok(());
    };
    let Ok(state) = FaultState::new(plan.clone(), built.machine.mesh) else {
        return Ok(()); // no live nodes: nothing to plan, nothing to bound
    };
    let Ok(dpart) =
        Partitioner::new_degraded(&built.machine, &built.program, built.config.clone(), &state)
    else {
        return Ok(());
    };
    let dout = dpart.partition_with_data(&built.program, &built.data);
    let dreport =
        gap_report("degraded", &built.program, dpart.layout(), &built.data, dpart.config(), &dout);
    if !dreport.sound() {
        return Err(format!(
            "degraded bound {} exceeds planner movement {} (per nest: {:?})",
            dreport.bound,
            dreport.planner_movement,
            dreport.nests.iter().map(|(nb, m)| (nb.nest, nb.bound, *m)).collect::<Vec<_>>()
        ));
    }
    Ok(())
}

/// Rebuilds `spec` under fresh names and demands bit-identical bounds.
pub fn check_bound_rename(spec: &CaseSpec) -> Result<(), String> {
    let built = spec.build().map_err(|e| format!("base build: {e}"))?;
    let (arrays, vars) = spec.default_names();
    let renamed_arrays: Vec<String> =
        (0..arrays.len()).map(|k| format!("bound_renamed_{k}")).collect();
    let renamed_vars: Vec<String> = (0..vars.len()).map(|d| format!("bv{d}")).collect();
    let renamed = spec
        .build_named(&renamed_arrays, &renamed_vars)
        .map_err(|e| format!("renamed build: {e}"))?;

    let bounds_of = |b: &crate::gencase::BuiltCase| -> Vec<NestBound> {
        let part = Partitioner::new(&b.machine, &b.program, b.config.clone());
        bound_program(&b.program, part.layout(), &b.data, part.config())
    };
    let a = bounds_of(&built);
    let b = bounds_of(&renamed);
    if a != b {
        return Err(format!("renaming changed the nest bounds: {a:?} vs {b:?}"));
    }
    Ok(())
}

/// Meshes the set-kernel isometry sweep samples (small enough for the
/// group-Steiner DP).
const ISO_MESHES: [(u16, u16); 3] = [(2, 2), (3, 2), (3, 3)];

/// Random option groups must have distance-invariant set kernels (max
/// pairwise, set MST, exact group Steiner) under every mesh isometry and
/// in-bounds translation — the set-level mirror of the point-kernel law.
pub fn check_bound_isometry(rng: &mut Rng64) -> Result<(), String> {
    let (cols, rows) = ISO_MESHES[rng.gen_range(ISO_MESHES.len() as u64) as usize];
    let mesh = Mesh::new(cols, rows);
    let k = 2 + rng.gen_range(4) as usize; // 2..=5 groups
    let groups: Vec<Vec<NodeId>> = (0..k)
        .map(|_| {
            let opts = 1 + rng.gen_range(2) as usize; // 1..=2 options each
            (0..opts).map(|_| pick_node(rng, &mesh)).collect()
        })
        .collect();
    let pairwise = max_pairwise_sets(&groups);
    let mst = mst_weight_sets(&groups);
    let steiner = steiner_min_sets(&mesh, &groups);
    // Both portable kernels must stay below the exact minimum — that is
    // what makes the large-mesh bound sound. (The set-MST itself is *not*
    // ordered against max-pairwise: set distances are not a metric — a
    // shared member makes two far-apart groups distance zero.)
    if steiner < pairwise || steiner < mst.saturating_mul(2).div_ceil(3) {
        return Err(format!(
            "kernel exceeds the exact minimum on {cols}x{rows}: pairwise {pairwise}, \
             mst {mst}, steiner {steiner}, groups {groups:?}"
        ));
    }

    for t in MeshTransform::for_mesh(mesh) {
        let out_mesh = t.output_mesh(mesh);
        let mapped: Vec<Vec<NodeId>> =
            groups.iter().map(|g| g.iter().map(|&n| t.apply(mesh, n)).collect()).collect();
        let (p2, m2, s2) = (
            max_pairwise_sets(&mapped),
            mst_weight_sets(&mapped),
            steiner_min_sets(&out_mesh, &mapped),
        );
        if p2 != pairwise || m2 != mst || s2 != steiner {
            return Err(format!(
                "isometry {t:?} on {cols}x{rows} changed set kernels: pairwise {pairwise}→{p2}, \
                 mst {mst}→{m2}, steiner {steiner}→{s2}, groups {groups:?}"
            ));
        }
    }

    let dx = rng.gen_range(5) as i32 - 2;
    let dy = rng.gen_range(5) as i32 - 2;
    let shifted: Option<Vec<Vec<NodeId>>> = groups
        .iter()
        .map(|g| g.iter().map(|&n| translate(mesh, n, dx, dy)).collect::<Option<Vec<NodeId>>>())
        .collect();
    if let Some(shifted) = shifted {
        let (p2, m2, s2) = (
            max_pairwise_sets(&shifted),
            mst_weight_sets(&shifted),
            steiner_min_sets(&mesh, &shifted),
        );
        if p2 != pairwise || m2 != mst || s2 != steiner {
            return Err(format!(
                "translation ({dx},{dy}) on {cols}x{rows} changed set kernels: \
                 pairwise {pairwise}→{p2}, mst {mst}→{m2}, steiner {steiner}→{s2}, \
                 groups {groups:?}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gencase::gen_mask_case;

    #[test]
    fn bound_soundness_holds_over_a_sweep() {
        let mut rng = Rng64::new(21);
        for _ in 0..8 {
            let spec = gen_mask_case(&mut rng, 160);
            check_bound_sound(&spec).unwrap_or_else(|e| panic!("{e}\ncase:\n{spec}"));
        }
    }

    #[test]
    fn bound_rename_law_holds_over_a_sweep() {
        let mut rng = Rng64::new(22);
        for _ in 0..6 {
            let spec = gen_mask_case(&mut rng, 120);
            check_bound_rename(&spec).unwrap_or_else(|e| panic!("{e}\ncase:\n{spec}"));
        }
    }

    #[test]
    fn bound_isometry_law_holds_over_a_sweep() {
        let mut rng = Rng64::new(23);
        for _ in 0..40 {
            check_bound_isometry(&mut rng).expect("set-kernel isometry law");
        }
    }
}
