//! Properties of the Steiner relay placement pass
//! ([`dmcp_core::SteinerPass`], DESIGN.md §16).
//!
//! * **No regression** — on every generated case, healthy *and* degraded,
//!   partitioning with the pass on yields per-nest optimized movement no
//!   larger than with the pass off, and bit-identical default movement
//!   (default accounting never depends on placement choices, so a
//!   difference there means the pass leaked into the baseline). The pass
//!   guards each nest by simulated post-split movement and keeps the
//!   plain MST plan unless relays strictly win, so any violation is a
//!   gate bug worth a shrunken case.
//! * **Relay legality under faults** — the degraded relayed plan places
//!   every step on a usable node: relay candidates are drawn from the
//!   live set, so a junction can never land on a dead tile. (The conform
//!   properties assert this too; it is restated here so a
//!   `--only steiner` sweep proves it on its own.)
//! * **Exact optimality in the oracle regime** — for flat reorderable
//!   chains with singleton candidate sets, the relayed planner's movement
//!   equals the Dreyfus–Wagner Steiner minimum bit for bit, and never
//!   exceeds the MST-only movement. Delegates to
//!   [`crate::oracle::check_oracle_case`], which plans every case both
//!   ways and asserts the full sandwich.

use crate::gencase::CaseSpec;
use crate::oracle::check_oracle_case;
use dmcp_core::{PartitionConfig, PartitionOutput, Partitioner, PlanOptions};
use dmcp_mach::rng::Rng64;
use dmcp_mach::FaultState;

/// Demands, per nest: `movement_opt(on) ≤ movement_opt(off)` and
/// `movement_default(on) == movement_default(off)`.
fn compare(label: &str, on: &PartitionOutput, off: &PartitionOutput) -> Result<(), String> {
    if on.nests.len() != off.nests.len() {
        return Err(format!(
            "{label}: nest counts diverged with the pass on ({} vs {})",
            on.nests.len(),
            off.nests.len()
        ));
    }
    for (nest, (a, b)) in on.nests.iter().zip(&off.nests).enumerate() {
        if a.stats.movement_default != b.stats.movement_default {
            return Err(format!(
                "{label}: nest {nest} default movement changed with the pass on: {} vs {} \
                 (the baseline must be placement-independent)",
                a.stats.movement_default, b.stats.movement_default
            ));
        }
        if a.stats.movement_opt > b.stats.movement_opt {
            return Err(format!(
                "{label}: nest {nest} regressed with the pass on: {} > {}",
                a.stats.movement_opt, b.stats.movement_opt
            ));
        }
    }
    Ok(())
}

/// Partitions a built case twice (pass on, pass off), healthy first and
/// then — when the spec carries faults — degraded, demanding the
/// no-regression and legality laws above.
pub fn check_steiner_no_regress(spec: &CaseSpec) -> Result<(), String> {
    let built = spec.build()?;
    let on_cfg = PartitionConfig {
        opts: PlanOptions { steiner: true, ..built.config.opts },
        ..built.config.clone()
    };
    let off_cfg = PartitionConfig {
        opts: PlanOptions { steiner: false, ..built.config.opts },
        ..built.config.clone()
    };

    let on = Partitioner::new(&built.machine, &built.program, on_cfg.clone())
        .partition_with_data(&built.program, &built.data);
    let off = Partitioner::new(&built.machine, &built.program, off_cfg.clone())
        .partition_with_data(&built.program, &built.data);
    compare("healthy", &on, &off)?;

    let Some(plan) = &built.faults else {
        return Ok(());
    };
    let Ok(state) = FaultState::new(plan.clone(), built.machine.mesh) else {
        return Ok(()); // no live nodes: nothing to place either way
    };
    let (Ok(don), Ok(doff)) = (
        Partitioner::new_degraded(&built.machine, &built.program, on_cfg, &state),
        Partitioner::new_degraded(&built.machine, &built.program, off_cfg, &state),
    ) else {
        return Ok(());
    };
    let don_out = don.partition_with_data(&built.program, &built.data);
    let doff_out = doff.partition_with_data(&built.program, &built.data);
    compare("degraded", &don_out, &doff_out)?;

    if !state.is_trivial() {
        for nest in &don_out.nests {
            for step in &nest.schedule.steps {
                if !state.is_usable(step.node) {
                    return Err(format!(
                        "degraded relayed plan placed step {:?} on unusable node {:?}",
                        step.id, step.node
                    ));
                }
            }
        }
    }
    Ok(())
}

/// The oracle-regime exactness law: the relayed planner realises the
/// Steiner minimum bit for bit and never moves more than the MST-only
/// planner.
pub fn check_steiner_exact(rng: &mut Rng64) -> Result<(), String> {
    let outcome = check_oracle_case(rng)?;
    if outcome.movement_steiner > outcome.movement_opt {
        return Err(format!(
            "relays increased oracle-regime movement: {} > {} ({outcome:?})",
            outcome.movement_steiner, outcome.movement_opt
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gencase::gen_mask_case;

    #[test]
    fn steiner_no_regression_holds_over_a_sweep() {
        let mut rng = Rng64::new(31);
        for _ in 0..8 {
            let spec = gen_mask_case(&mut rng, 160);
            check_steiner_no_regress(&spec).unwrap_or_else(|e| panic!("{e}\ncase:\n{spec}"));
        }
    }

    #[test]
    fn steiner_no_regression_holds_on_faulted_cases() {
        let mut rng = Rng64::new(32);
        let mut exercised = 0;
        for _ in 0..25 {
            let spec = gen_mask_case(&mut rng, 160);
            if spec.faults.is_none() {
                continue;
            }
            exercised += 1;
            check_steiner_no_regress(&spec).unwrap_or_else(|e| panic!("{e}\ncase:\n{spec}"));
        }
        assert!(exercised > 3, "generator produced too few faulted cases");
    }

    #[test]
    fn steiner_exactness_holds_over_a_seed_sweep() {
        let mut rng = Rng64::new(33);
        for _ in 0..40 {
            check_steiner_exact(&mut rng).expect("oracle-regime exactness");
        }
    }
}
