//! Golden pins for the 12-workload suite: plan digests (healthy and
//! canonically degraded) and [`PlanKey`] digests, all at Tiny scale on
//! the KNL-like machine with the default configuration.
//!
//! These tables pin the planner's output bit-for-bit across refactors.
//! Any change to splitting, placement, window choice, sync reduction or
//! key derivation shows up as a mismatch; if the change is intentional,
//! regenerate with the `print_golden_tables` test in this module (or
//! `cargo test --test golden_plans -- --ignored --nocapture`).
//!
//! Both the workspace-level `golden_plans` test and the `plan-bench` CI
//! gate consume these tables, so a digest drift fails both.

use crate::digest::plan_digest;
use dmcp_core::{PartitionConfig, PartitionOutput, Partitioner};
use dmcp_mach::{FaultPlan, FaultState, MachineConfig, NodeId};
use dmcp_pool::Pool;
use dmcp_serve::PlanRequest;
use dmcp_workloads::{by_name, Scale, Workload};

/// Expected healthy plan digest per workload.
pub const GOLDEN_HEALTHY: &[(&str, u64)] = &[
    ("Barnes", 0xfcc3d21b971148af),
    ("Cholesky", 0xec3103d3d6ef6ce8),
    ("FFT", 0x7ee4c14e0346b142),
    ("FMM", 0x362451db685f9acb),
    ("LU", 0x8c969337a80f8708),
    ("Ocean", 0x99c6b56d39b91391),
    ("Radiosity", 0x78453244ace62a0d),
    ("Radix", 0xd33cf59f2860809c),
    ("Raytrace", 0xbd205ffa11453f34),
    ("Water", 0x20347db488c4f63d),
    ("MiniMD", 0xbac0d0dc0eba9c86),
    ("MiniXyce", 0x6d172a91265be22b),
];

/// Expected plan digest per workload under [`canonical_faults`].
pub const GOLDEN_DEGRADED: &[(&str, u64)] = &[
    ("Barnes", 0x072fd0f743e89848),
    ("Cholesky", 0x0101bc93e6ec1b7c),
    ("FFT", 0xb291f80b72c5ef84),
    ("FMM", 0x07b2bbf63353b60a),
    ("LU", 0x630a5d361abc0812),
    ("Ocean", 0xbc3250cd7188f521),
    ("Radiosity", 0xb7f2b6d2554344c3),
    ("Radix", 0x1bf4cca79b496c01),
    ("Raytrace", 0xba09a3830ee0609a),
    ("Water", 0x2e03da78b70547ee),
    ("MiniMD", 0x134b5952b3ddfef7),
    ("MiniXyce", 0x6bb6b16657896878),
];

/// Expected `(healthy, degraded)` [`PlanKey`] digests per workload —
/// pins the cache-key derivation (structural program hash, machine and
/// config fingerprints, fault fingerprint) alongside the plans.
///
/// [`PlanKey`]: dmcp_serve::PlanKey
pub const GOLDEN_KEYS: &[(&str, u64, u64)] = &[
    ("Barnes", 0x2b284ccd847a83af, 0x92c3b0c339d98265),
    ("Cholesky", 0x8116946ee5c3848a, 0x85a40576b075a245),
    ("FFT", 0x8cb258078c94d2ef, 0x5c078f122e2cef2b),
    ("FMM", 0xf5baaebc69fb6a20, 0x11225063e25f13a4),
    ("LU", 0x8edad6e52aad7745, 0xb1b37ab169ee9ea0),
    ("Ocean", 0xf44be029bda2089b, 0xe5f796eaf76032b7),
    ("Radiosity", 0x50e7a33edfbd4f30, 0x2b858ad801dc5df0),
    ("Radix", 0x6df40a527a0d6fb2, 0x6fd475bd816e101e),
    ("Raytrace", 0x97cb65d36e11bbe3, 0xd01c53005632e1e6),
    ("Water", 0x2418b2785eef2cbd, 0x84e6c175ce1602af),
    ("MiniMD", 0xce20d781cbc013eb, 0x26b902730ace6184),
    ("MiniXyce", 0xa0cb8418498dd25a, 0xeda354f8ba6f77e5),
];

/// The canonical degradation every degraded golden is pinned under: one
/// dead node away from the origin plus one dead link on the far side of
/// the KNL-like mesh — enough to re-home banks, shrink the live set and
/// reroute, while keeping every workload plannable.
#[must_use]
pub fn canonical_faults() -> FaultPlan {
    let mut plan = FaultPlan::healthy();
    plan.kill_node(NodeId::new(1, 1)).kill_link(NodeId::new(4, 2), NodeId::new(4, 3));
    plan
}

fn workload(name: &str) -> Workload {
    by_name(name, Scale::Tiny).unwrap_or_else(|| panic!("unknown workload {name}"))
}

/// Compiles `name` on a healthy machine over `pool`.
#[must_use]
pub fn healthy_output(name: &str, pool: &Pool) -> PartitionOutput {
    let w = workload(name);
    let machine = MachineConfig::knl_like();
    let part = Partitioner::new(&machine, &w.program, PartitionConfig::default());
    part.partition_with_data_pooled(&w.program, &w.data, pool)
}

/// Compiles `name` under [`canonical_faults`] over `pool`.
///
/// # Panics
///
/// Panics if the canonical fault plan is rejected (it never is on the
/// KNL-like mesh).
#[must_use]
pub fn degraded_output(name: &str, pool: &Pool) -> PartitionOutput {
    let w = workload(name);
    let machine = MachineConfig::knl_like();
    let faults = FaultState::new(canonical_faults(), machine.mesh)
        .expect("canonical faults fit the KNL-like mesh");
    let part = Partitioner::new_degraded(&machine, &w.program, PartitionConfig::default(), &faults)
        .expect("default config is valid");
    part.partition_with_data_pooled(&w.program, &w.data, pool)
}

/// The healthy plan digest of `name`, compiled over `pool`.
#[must_use]
pub fn healthy_digest(name: &str, pool: &Pool) -> u64 {
    plan_digest(&healthy_output(name, pool))
}

/// The degraded plan digest of `name`, compiled over `pool`.
#[must_use]
pub fn degraded_digest(name: &str, pool: &Pool) -> u64 {
    plan_digest(&degraded_output(name, pool))
}

/// The `(healthy, degraded)` [`dmcp_serve::PlanKey`] digests of `name`.
#[must_use]
pub fn key_digests(name: &str) -> (u64, u64) {
    let w = workload(name);
    let machine = MachineConfig::knl_like();
    let healthy = PlanRequest::new(w.program.clone(), machine.clone(), PartitionConfig::default())
        .with_data(w.data.clone());
    let degraded = PlanRequest::new(w.program, machine, PartitionConfig::default())
        .with_data(w.data)
        .with_faults(canonical_faults());
    (healthy.key().digest(), degraded.key().digest())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmcp_workloads::all;

    #[test]
    fn tables_cover_the_whole_suite_consistently() {
        let suite: Vec<&str> = all(Scale::Tiny).iter().map(|w| w.name).collect();
        assert_eq!(suite.len(), GOLDEN_HEALTHY.len());
        for name in &suite {
            assert!(GOLDEN_HEALTHY.iter().any(|(n, _)| n == name), "{name} missing (healthy)");
            assert!(GOLDEN_DEGRADED.iter().any(|(n, _)| n == name), "{name} missing (degraded)");
            assert!(GOLDEN_KEYS.iter().any(|(n, _, _)| n == name), "{name} missing (keys)");
        }
    }

    #[test]
    fn canonical_faults_are_nontrivial_and_usable() {
        let machine = MachineConfig::knl_like();
        let faults = FaultState::new(canonical_faults(), machine.mesh).unwrap();
        assert!(!faults.is_trivial());
        assert!(faults.live_nodes().len() < machine.mesh.node_count() as usize);
    }

    #[test]
    fn key_digests_separate_healthy_from_degraded() {
        let (healthy, degraded) = key_digests("FFT");
        assert_ne!(healthy, degraded, "fault fingerprint must participate in the key");
    }

    /// Regenerate every table:
    /// `cargo test -p dmcp-check golden -- --ignored --nocapture`.
    #[test]
    #[ignore]
    fn print_golden_tables() {
        let pool = Pool::single();
        println!("pub const GOLDEN_HEALTHY: &[(&str, u64)] = &[");
        for w in all(Scale::Tiny) {
            println!("    (\"{}\", {:#018x}),", w.name, healthy_digest(w.name, &pool));
        }
        println!("];");
        println!("pub const GOLDEN_DEGRADED: &[(&str, u64)] = &[");
        for w in all(Scale::Tiny) {
            println!("    (\"{}\", {:#018x}),", w.name, degraded_digest(w.name, &pool));
        }
        println!("];");
        println!("pub const GOLDEN_KEYS: &[(&str, u64, u64)] = &[");
        for w in all(Scale::Tiny) {
            let (h, d) = key_digests(w.name);
            println!("    (\"{}\", {h:#018x}, {d:#018x}),", w.name);
        }
        println!("];");
    }
}
