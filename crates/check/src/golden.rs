//! Golden pins for the 12-workload suite: plan digests (healthy and
//! canonically degraded) and [`PlanKey`] digests, all at Tiny scale on
//! the KNL-like machine with the default configuration.
//!
//! These tables pin the planner's output bit-for-bit across refactors.
//! Any change to splitting, placement, window choice, sync reduction or
//! key derivation shows up as a mismatch; if the change is intentional,
//! regenerate with the `print_golden_tables` test in this module (or
//! `cargo test --test golden_plans -- --ignored --nocapture`).
//!
//! Both the workspace-level `golden_plans` test and the `plan-bench` CI
//! gate consume these tables, so a digest drift fails both.

use crate::digest::plan_digest;
use dmcp_core::{PartitionConfig, PartitionOutput, Partitioner, PlanOptions};
use dmcp_mach::{FaultPlan, FaultState, MachineConfig, NodeId};
use dmcp_pool::Pool;
use dmcp_serve::PlanRequest;
use dmcp_workloads::{by_name, Scale, Workload};

/// Expected healthy plan digest per workload (default configuration,
/// Steiner relay pass on).
pub const GOLDEN_HEALTHY: &[(&str, u64)] = &[
    ("Barnes", 0xfcc3d21b971148af),
    ("Cholesky", 0xec3103d3d6ef6ce8),
    ("FFT", 0x7ee4c14e0346b142),
    ("FMM", 0x362451db685f9acb),
    ("LU", 0xe40ff39351c55bdb),
    ("Ocean", 0x99c6b56d39b91391),
    ("Radiosity", 0xa013cb3f0476605f),
    ("Radix", 0xd33cf59f2860809c),
    ("Raytrace", 0xbd205ffa11453f34),
    ("Water", 0x20347db488c4f63d),
    ("MiniMD", 0xbac0d0dc0eba9c86),
    ("MiniXyce", 0x6d172a91265be22b),
];

/// Expected plan digest per workload under [`canonical_faults`]
/// (default configuration, Steiner relay pass on).
pub const GOLDEN_DEGRADED: &[(&str, u64)] = &[
    ("Barnes", 0x072fd0f743e89848),
    ("Cholesky", 0x0101bc93e6ec1b7c),
    ("FFT", 0xb291f80b72c5ef84),
    ("FMM", 0x07b2bbf63353b60a),
    ("LU", 0x5e2019fdbca3908f),
    ("Ocean", 0xbc3250cd7188f521),
    ("Radiosity", 0xa86d63029054e21c),
    ("Radix", 0x1bf4cca79b496c01),
    ("Raytrace", 0xba09a3830ee0609a),
    ("Water", 0x2e03da78b70547ee),
    ("MiniMD", 0x134b5952b3ddfef7),
    ("MiniXyce", 0x6bb6b16657896878),
];

/// Expected healthy plan digest per workload with the Steiner pass *off*
/// ([`no_steiner_config`]). These are the exact digests the suite pinned
/// before the pass existed: `steiner: false` must keep the planner
/// bit-identical to the paper's MST-only construction, forever.
pub const GOLDEN_HEALTHY_NO_STEINER: &[(&str, u64)] = &[
    ("Barnes", 0xfcc3d21b971148af),
    ("Cholesky", 0xec3103d3d6ef6ce8),
    ("FFT", 0x7ee4c14e0346b142),
    ("FMM", 0x362451db685f9acb),
    ("LU", 0x8c969337a80f8708),
    ("Ocean", 0x99c6b56d39b91391),
    ("Radiosity", 0x78453244ace62a0d),
    ("Radix", 0xd33cf59f2860809c),
    ("Raytrace", 0xbd205ffa11453f34),
    ("Water", 0x20347db488c4f63d),
    ("MiniMD", 0xbac0d0dc0eba9c86),
    ("MiniXyce", 0x6d172a91265be22b),
];

/// Expected degraded plan digest per workload with the Steiner pass off
/// — the pre-pass pins, like [`GOLDEN_HEALTHY_NO_STEINER`].
pub const GOLDEN_DEGRADED_NO_STEINER: &[(&str, u64)] = &[
    ("Barnes", 0x072fd0f743e89848),
    ("Cholesky", 0x0101bc93e6ec1b7c),
    ("FFT", 0xb291f80b72c5ef84),
    ("FMM", 0x07b2bbf63353b60a),
    ("LU", 0x630a5d361abc0812),
    ("Ocean", 0xbc3250cd7188f521),
    ("Radiosity", 0xb7f2b6d2554344c3),
    ("Radix", 0x1bf4cca79b496c01),
    ("Raytrace", 0xba09a3830ee0609a),
    ("Water", 0x2e03da78b70547ee),
    ("MiniMD", 0x134b5952b3ddfef7),
    ("MiniXyce", 0x6bb6b16657896878),
];

/// Expected `(healthy, degraded)` [`PlanKey`] digests per workload —
/// pins the cache-key derivation (structural program hash, machine and
/// config fingerprints, fault fingerprint) alongside the plans.
///
/// [`PlanKey`]: dmcp_serve::PlanKey
pub const GOLDEN_KEYS: &[(&str, u64, u64)] = &[
    ("Barnes", 0x712cafe19f1ff641, 0x0d1b87d7890b8a60),
    ("Cholesky", 0x6f99e482a66cdab3, 0x7a778e302cf47cf3),
    ("FFT", 0xf40fe9083cf07bdb, 0x1392d32394c1117e),
    ("FMM", 0x44b2f5f3b9b951e4, 0x009bf6cf854b9fdb),
    ("LU", 0x85f0a1e731766362, 0xa88c8d62f1112db3),
    ("Ocean", 0x4f5fd49d3f6ec662, 0x8c95943e061629e9),
    ("Radiosity", 0x405887b94f85a841, 0x778ee17981c98fb9),
    ("Radix", 0x1bebd252dd13c254, 0x48b627748191d43b),
    ("Raytrace", 0x69f10be15a5d5a6a, 0x4167c5113fe48892),
    ("Water", 0x70307195bd5fd314, 0x4a654f2f52ba2568),
    ("MiniMD", 0x0c04af5150a18101, 0xbf5a5aa869ecfbdc),
    ("MiniXyce", 0x6286aa5f91618614, 0x02367653536f053b),
];

/// The canonical degradation every degraded golden is pinned under: one
/// dead node away from the origin plus one dead link on the far side of
/// the KNL-like mesh — enough to re-home banks, shrink the live set and
/// reroute, while keeping every workload plannable.
#[must_use]
pub fn canonical_faults() -> FaultPlan {
    let mut plan = FaultPlan::healthy();
    plan.kill_node(NodeId::new(1, 1)).kill_link(NodeId::new(4, 2), NodeId::new(4, 3));
    plan
}

fn workload(name: &str) -> Workload {
    by_name(name, Scale::Tiny).unwrap_or_else(|| panic!("unknown workload {name}"))
}

/// The default configuration with the Steiner relay pass disabled — the
/// paper's MST-only construction, pinned by the `*_NO_STEINER` tables.
#[must_use]
pub fn no_steiner_config() -> PartitionConfig {
    let base = PartitionConfig::default();
    PartitionConfig { opts: PlanOptions { steiner: false, ..base.opts }, ..base }
}

/// Compiles `name` on a healthy machine over `pool` under `config`.
#[must_use]
pub fn healthy_output_with(name: &str, pool: &Pool, config: PartitionConfig) -> PartitionOutput {
    let w = workload(name);
    let machine = MachineConfig::knl_like();
    let part = Partitioner::new(&machine, &w.program, config);
    part.partition_with_data_pooled(&w.program, &w.data, pool)
}

/// Compiles `name` on a healthy machine over `pool` (default config).
#[must_use]
pub fn healthy_output(name: &str, pool: &Pool) -> PartitionOutput {
    healthy_output_with(name, pool, PartitionConfig::default())
}

/// Compiles `name` under [`canonical_faults`] over `pool` under `config`.
///
/// # Panics
///
/// Panics if the canonical fault plan is rejected (it never is on the
/// KNL-like mesh).
#[must_use]
pub fn degraded_output_with(name: &str, pool: &Pool, config: PartitionConfig) -> PartitionOutput {
    let w = workload(name);
    let machine = MachineConfig::knl_like();
    let faults = FaultState::new(canonical_faults(), machine.mesh)
        .expect("canonical faults fit the KNL-like mesh");
    let part = Partitioner::new_degraded(&machine, &w.program, config, &faults)
        .expect("default config is valid");
    part.partition_with_data_pooled(&w.program, &w.data, pool)
}

/// Compiles `name` under [`canonical_faults`] over `pool` (default
/// config).
///
/// # Panics
///
/// Panics if the canonical fault plan is rejected (it never is on the
/// KNL-like mesh).
#[must_use]
pub fn degraded_output(name: &str, pool: &Pool) -> PartitionOutput {
    degraded_output_with(name, pool, PartitionConfig::default())
}

/// The healthy plan digest of `name`, compiled over `pool`.
#[must_use]
pub fn healthy_digest(name: &str, pool: &Pool) -> u64 {
    plan_digest(&healthy_output(name, pool))
}

/// The degraded plan digest of `name`, compiled over `pool`.
#[must_use]
pub fn degraded_digest(name: &str, pool: &Pool) -> u64 {
    plan_digest(&degraded_output(name, pool))
}

/// The healthy plan digest of `name` with the Steiner pass off.
#[must_use]
pub fn healthy_digest_no_steiner(name: &str, pool: &Pool) -> u64 {
    plan_digest(&healthy_output_with(name, pool, no_steiner_config()))
}

/// The degraded plan digest of `name` with the Steiner pass off.
#[must_use]
pub fn degraded_digest_no_steiner(name: &str, pool: &Pool) -> u64 {
    plan_digest(&degraded_output_with(name, pool, no_steiner_config()))
}

/// The `(healthy, degraded)` [`dmcp_serve::PlanKey`] digests of `name`.
#[must_use]
pub fn key_digests(name: &str) -> (u64, u64) {
    let w = workload(name);
    let machine = MachineConfig::knl_like();
    let healthy = PlanRequest::new(w.program.clone(), machine.clone(), PartitionConfig::default())
        .with_data(w.data.clone());
    let degraded = PlanRequest::new(w.program, machine, PartitionConfig::default())
        .with_data(w.data)
        .with_faults(canonical_faults());
    (healthy.key().digest(), degraded.key().digest())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmcp_workloads::all;

    #[test]
    fn tables_cover_the_whole_suite_consistently() {
        let suite: Vec<&str> = all(Scale::Tiny).iter().map(|w| w.name).collect();
        assert_eq!(suite.len(), GOLDEN_HEALTHY.len());
        for name in &suite {
            assert!(GOLDEN_HEALTHY.iter().any(|(n, _)| n == name), "{name} missing (healthy)");
            assert!(GOLDEN_DEGRADED.iter().any(|(n, _)| n == name), "{name} missing (degraded)");
            assert!(GOLDEN_KEYS.iter().any(|(n, _, _)| n == name), "{name} missing (keys)");
            assert!(
                GOLDEN_HEALTHY_NO_STEINER.iter().any(|(n, _)| n == name),
                "{name} missing (healthy, no steiner)"
            );
            assert!(
                GOLDEN_DEGRADED_NO_STEINER.iter().any(|(n, _)| n == name),
                "{name} missing (degraded, no steiner)"
            );
        }
    }

    #[test]
    fn canonical_faults_are_nontrivial_and_usable() {
        let machine = MachineConfig::knl_like();
        let faults = FaultState::new(canonical_faults(), machine.mesh).unwrap();
        assert!(!faults.is_trivial());
        assert!(faults.live_nodes().len() < machine.mesh.node_count() as usize);
    }

    #[test]
    fn key_digests_separate_healthy_from_degraded() {
        let (healthy, degraded) = key_digests("FFT");
        assert_ne!(healthy, degraded, "fault fingerprint must participate in the key");
    }

    /// Regenerate every table:
    /// `cargo test -p dmcp-check golden -- --ignored --nocapture`.
    #[test]
    #[ignore]
    fn print_golden_tables() {
        let pool = Pool::single();
        println!("pub const GOLDEN_HEALTHY: &[(&str, u64)] = &[");
        for w in all(Scale::Tiny) {
            println!("    (\"{}\", {:#018x}),", w.name, healthy_digest(w.name, &pool));
        }
        println!("];");
        println!("pub const GOLDEN_DEGRADED: &[(&str, u64)] = &[");
        for w in all(Scale::Tiny) {
            println!("    (\"{}\", {:#018x}),", w.name, degraded_digest(w.name, &pool));
        }
        println!("];");
        println!("pub const GOLDEN_KEYS: &[(&str, u64, u64)] = &[");
        for w in all(Scale::Tiny) {
            let (h, d) = key_digests(w.name);
            println!("    (\"{}\", {h:#018x}, {d:#018x}),", w.name);
        }
        println!("];");
        println!("pub const GOLDEN_HEALTHY_NO_STEINER: &[(&str, u64)] = &[");
        for w in all(Scale::Tiny) {
            println!("    (\"{}\", {:#018x}),", w.name, healthy_digest_no_steiner(w.name, &pool));
        }
        println!("];");
        println!("pub const GOLDEN_DEGRADED_NO_STEINER: &[(&str, u64)] = &[");
        for w in all(Scale::Tiny) {
            println!("    (\"{}\", {:#018x}),", w.name, degraded_digest_no_steiner(w.name, &pool));
        }
        println!("];");
    }
}
