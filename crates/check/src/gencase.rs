//! Structured random cases: programs, data stores, meshes and fault plans
//! under a size budget — plus the greedy shrinker that minimises a failing
//! case before it is reported.
//!
//! Statements are generated as small expression *templates* rather than
//! strings, so the same case can be rendered under different array/loop
//! names (the rename metamorphic law), simplified structurally by the
//! shrinker, and rebuilt deterministically from the spec alone.
//!
//! Two statement families are generated:
//!
//! * the **mask family** (`gen_mask_case`): every right-hand side is
//!   wrapped in `& 63`, so all stored values are small integers and every
//!   intermediate stays far below 2⁵³. Reassociating `+ - * & | ^` over
//!   such values is *exact* in `f64`, which lets the conformance checker
//!   demand bit-equality between plan execution and the interpreter;
//! * the **division family** (`gen_div_case`): `+ - * /` over read-only
//!   source arrays (no feedback), compared under a 1e-12-style relative
//!   tolerance since reordered division chains differ by rounding.
//!
//! Arrays read through indirect subscripts are never written: the planner
//! resolves indirection through the inspector snapshot, so writing an
//! index array mid-run would make plan-time and run-time subscripts
//! legitimately diverge — a property violation of the *generator*, not
//! the partitioner.

use dmcp_core::partitioner::PredictorSpec;
use dmcp_core::PartitionConfig;
use dmcp_ir::program::DataStore;
use dmcp_ir::{ArrayId, BinOp, Program, ProgramBuilder};
use dmcp_mach::rng::Rng64;
use dmcp_mach::{FaultPlan, MachineConfig, Mesh, NodeId};
use std::fmt;

/// One declared array.
#[derive(Clone, Debug, PartialEq)]
pub struct ArraySpec {
    /// Linear length in elements.
    pub len: u64,
    /// Element size in bytes.
    pub elem_size: u32,
    /// Flat-placed in fast memory.
    pub hot: bool,
}

/// A subscript template.
#[derive(Clone, Debug, PartialEq)]
pub enum TSub {
    /// `c`
    Const(i64),
    /// `coeff*var + off` (coeff ≥ 1; `off` may be negative).
    Affine { var: usize, coeff: i64, off: i64 },
    /// `arrays[array][var]` — one level of indirection.
    Indirect { array: usize, var: usize },
}

/// An array reference template.
#[derive(Clone, Debug, PartialEq)]
pub struct TRef {
    /// Index into [`CaseSpec::arrays`].
    pub array: usize,
    /// The subscript.
    pub sub: TSub,
}

/// An expression template.
#[derive(Clone, Debug, PartialEq)]
pub enum TExpr {
    /// Integer literal.
    Const(i64),
    /// Array read.
    Ref(TRef),
    /// Binary node.
    Bin(BinOp, Box<TExpr>, Box<TExpr>),
}

/// A statement template: `lhs = rhs` or `lhs = (rhs) & mask`.
#[derive(Clone, Debug, PartialEq)]
pub struct TStmt {
    /// The written reference.
    pub lhs: TRef,
    /// The right-hand side.
    pub rhs: TExpr,
    /// Optional value mask keeping stored values exactly representable.
    pub mask: Option<i64>,
}

/// One loop nest: `(lo, hi)` bounds per dimension (outermost first) and
/// the body statements.
#[derive(Clone, Debug, PartialEq)]
pub struct NestSpec {
    /// Loop bounds, outermost first.
    pub loops: Vec<(i64, i64)>,
    /// Body statements.
    pub stmts: Vec<TStmt>,
}

/// Fault-plan parameters (materialised via [`FaultPlan::random`]).
#[derive(Clone, Debug, PartialEq)]
pub struct FaultSpec {
    /// Fraction of nodes to kill.
    pub dead_frac: f64,
    /// Per-link failure probability.
    pub link_fail: f64,
    /// Seed for the fault sampler.
    pub seed: u64,
}

/// Random initial-data parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct DataSpec {
    /// Seed for the value sampler.
    pub seed: u64,
    /// Keep every value ≥ 1 (the division family needs nonzero data).
    pub nonzero: bool,
}

/// A fully self-describing generated case: rebuildable, renderable under
/// any naming, and shrinkable.
#[derive(Clone, Debug, PartialEq)]
pub struct CaseSpec {
    /// Mesh dimensions `(cols, rows)`.
    pub mesh: (u16, u16),
    /// Declared arrays.
    pub arrays: Vec<ArraySpec>,
    /// Loop nests.
    pub nests: Vec<NestSpec>,
    /// Optional fault plan.
    pub faults: Option<FaultSpec>,
    /// Optional random initial data (deterministic program data otherwise).
    pub data: Option<DataSpec>,
}

/// A built case, ready for the partitioner.
pub struct BuiltCase {
    /// The program.
    pub program: Program,
    /// Its array ids in declaration order.
    pub array_ids: Vec<ArrayId>,
    /// The machine.
    pub machine: MachineConfig,
    /// Partitioner configuration (trimmed window search for throughput).
    pub config: PartitionConfig,
    /// Materialised faults, if any.
    pub faults: Option<FaultPlan>,
    /// Initial data (random-filled when the spec says so).
    pub data: DataStore,
}

fn op_symbol(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::And => "&",
        BinOp::Or => "|",
        BinOp::Xor => "^",
        BinOp::Shl => "<<",
        BinOp::Shr => ">>",
    }
}

fn render_sub(sub: &TSub, arrays: &[String], vars: &[String]) -> String {
    match sub {
        TSub::Const(c) => format!("{c}"),
        TSub::Affine { var, coeff, off } => {
            let v = &vars[*var];
            let head = if *coeff == 1 { v.clone() } else { format!("{coeff}*{v}") };
            match off.cmp(&0) {
                std::cmp::Ordering::Equal => head,
                std::cmp::Ordering::Greater => format!("{head} + {off}"),
                std::cmp::Ordering::Less => format!("{head} - {}", off.unsigned_abs()),
            }
        }
        TSub::Indirect { array, var } => format!("{}[{}]", arrays[*array], vars[*var]),
    }
}

fn render_ref(r: &TRef, arrays: &[String], vars: &[String]) -> String {
    format!("{}[{}]", arrays[r.array], render_sub(&r.sub, arrays, vars))
}

fn render_expr(e: &TExpr, arrays: &[String], vars: &[String]) -> String {
    match e {
        TExpr::Const(c) => format!("{c}"),
        TExpr::Ref(r) => render_ref(r, arrays, vars),
        TExpr::Bin(op, l, r) => format!(
            "({} {} {})",
            render_expr(l, arrays, vars),
            op_symbol(*op),
            render_expr(r, arrays, vars)
        ),
    }
}

impl CaseSpec {
    /// The canonical naming: arrays `a0, a1, …`, loop variables `i0, i1`.
    pub fn default_names(&self) -> (Vec<String>, Vec<String>) {
        let arrays = (0..self.arrays.len()).map(|k| format!("a{k}")).collect();
        let depth = self.nests.iter().map(|n| n.loops.len()).max().unwrap_or(1);
        let vars = (0..depth).map(|d| format!("i{d}")).collect();
        (arrays, vars)
    }

    /// Renders one statement under a naming.
    pub fn render_stmt(&self, s: &TStmt, arrays: &[String], vars: &[String]) -> String {
        let lhs = render_ref(&s.lhs, arrays, vars);
        let rhs = render_expr(&s.rhs, arrays, vars);
        match s.mask {
            Some(m) => format!("{lhs} = {rhs} & {m}"),
            None => format!("{lhs} = {rhs}"),
        }
    }

    /// Builds the case under the canonical naming.
    pub fn build(&self) -> Result<BuiltCase, String> {
        let (arrays, vars) = self.default_names();
        self.build_named(&arrays, &vars)
    }

    /// Builds the case under an arbitrary naming (the rename metamorphic
    /// sweep builds the same spec under two namings and demands
    /// bit-identical plans).
    pub fn build_named(&self, arrays: &[String], vars: &[String]) -> Result<BuiltCase, String> {
        let mut b = ProgramBuilder::new();
        let mut ids = Vec::new();
        for (k, a) in self.arrays.iter().enumerate() {
            let id = if a.hot {
                b.hot_array(arrays[k].clone(), &[a.len], a.elem_size)
            } else {
                b.array(arrays[k].clone(), &[a.len], a.elem_size)
            };
            ids.push(id);
        }
        for nest in &self.nests {
            let loops: Vec<(&str, i64, i64)> = nest
                .loops
                .iter()
                .enumerate()
                .map(|(d, &(lo, hi))| (vars[d].as_str(), lo, hi))
                .collect();
            let stmts: Vec<String> =
                nest.stmts.iter().map(|s| self.render_stmt(s, arrays, vars)).collect();
            let stmt_refs: Vec<&str> = stmts.iter().map(String::as_str).collect();
            b.nest(&loops, &stmt_refs).map_err(|e| format!("build failed: {e:?}"))?;
        }
        let program = b.build();
        let mesh = Mesh::new(self.mesh.0, self.mesh.1);
        let machine = MachineConfig::knl_like().with_mesh(mesh);
        let config = PartitionConfig {
            predictor: PredictorSpec::Reuse,
            max_window: 4,
            search_sample: 64,
            ..PartitionConfig::default()
        };
        let faults = self
            .faults
            .as_ref()
            .map(|f| FaultPlan::random(mesh, f.dead_frac, f.link_fail, 0.0, 0.0, f.seed));
        let mut data = program.initial_data();
        if let Some(ds) = &self.data {
            let mut rng = Rng64::new(ds.seed);
            for (k, a) in self.arrays.iter().enumerate() {
                let lo = u64::from(ds.nonzero);
                let vals: Vec<f64> = (0..a.len).map(|_| (lo + rng.gen_range(63)) as f64).collect();
                data.fill(ids[k], &vals);
            }
        }
        Ok(BuiltCase { program, array_ids: ids, machine, config, faults, data })
    }

    /// Total statement instances across all nests (the size budget the
    /// generator keeps bounded).
    pub fn instances(&self) -> u64 {
        self.nests
            .iter()
            .map(|n| {
                let iters: u64 = n
                    .loops
                    .iter()
                    .map(|&(lo, hi)| u64::try_from(i128::from(hi) - i128::from(lo)).unwrap_or(0))
                    .fold(1u64, u64::saturating_mul);
                iters.saturating_mul(n.stmts.len() as u64)
            })
            .sum()
    }
}

impl fmt::Display for CaseSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (arrays, vars) = self.default_names();
        writeln!(f, "mesh {}x{}", self.mesh.0, self.mesh.1)?;
        for (k, a) in self.arrays.iter().enumerate() {
            writeln!(
                f,
                "array {}[{}] x{}{}",
                arrays[k],
                a.len,
                a.elem_size,
                if a.hot { " hot" } else { "" }
            )?;
        }
        for nest in &self.nests {
            let bounds: Vec<String> = nest
                .loops
                .iter()
                .enumerate()
                .map(|(d, &(lo, hi))| format!("{} in {lo}..{hi}", vars[d]))
                .collect();
            writeln!(f, "for {} {{", bounds.join(", "))?;
            for s in &nest.stmts {
                writeln!(f, "  {}", self.render_stmt(s, &arrays, &vars))?;
            }
            writeln!(f, "}}")?;
        }
        if let Some(fl) = &self.faults {
            writeln!(
                f,
                "faults dead_frac={} link_fail={} seed={}",
                fl.dead_frac, fl.link_fail, fl.seed
            )?;
        }
        if let Some(d) = &self.data {
            writeln!(f, "data seed={} nonzero={}", d.seed, d.nonzero)?;
        }
        Ok(())
    }
}

fn pick<T: Copy>(rng: &mut Rng64, xs: &[T]) -> T {
    xs[rng.gen_range(xs.len() as u64) as usize]
}

/// Uniformly random mesh node (row-major order, so a given RNG stream
/// always picks the same node).
pub fn pick_node(rng: &mut Rng64, mesh: &Mesh) -> NodeId {
    let nodes: Vec<NodeId> = mesh.nodes().collect();
    nodes[rng.gen_range(nodes.len() as u64) as usize]
}

/// Meshes the conformance sweeps run on (the partitioner requires ≥ 4
/// nodes); small shapes dominate so degraded cases stay interesting.
const MESHES: [(u16, u16); 7] = [(2, 2), (3, 2), (2, 3), (3, 3), (4, 3), (4, 4), (6, 6)];

fn gen_affine_sub(rng: &mut Rng64, dims: usize) -> TSub {
    TSub::Affine {
        var: rng.gen_range(dims as u64) as usize,
        coeff: pick(rng, &[1, 1, 1, 1, 2, 3]),
        off: rng.gen_range(5) as i64 - 2,
    }
}

fn gen_leaf(rng: &mut Rng64, n_arrays: usize, dims: usize, idx_array: Option<usize>) -> TExpr {
    if rng.gen_bool(0.22) {
        return TExpr::Const(rng.gen_range(7) as i64);
    }
    let array = rng.gen_range(n_arrays as u64) as usize;
    let sub = if let Some(idx) = idx_array.filter(|_| rng.gen_bool(0.12)) {
        TSub::Indirect { array: idx, var: rng.gen_range(dims as u64) as usize }
    } else if rng.gen_bool(0.08) {
        TSub::Const(rng.gen_range(16) as i64)
    } else {
        gen_affine_sub(rng, dims)
    };
    TExpr::Ref(TRef { array, sub })
}

fn gen_mask_expr(
    rng: &mut Rng64,
    depth: u32,
    n_arrays: usize,
    dims: usize,
    idx_array: Option<usize>,
) -> TExpr {
    if depth == 0 || rng.gen_bool(0.3) {
        return gen_leaf(rng, n_arrays, dims, idx_array);
    }
    let op = pick(
        rng,
        &[
            BinOp::Add,
            BinOp::Add,
            BinOp::Add,
            BinOp::Sub,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Mul,
            BinOp::And,
            BinOp::Or,
            BinOp::Xor,
            BinOp::Shl,
            BinOp::Shr,
        ],
    );
    let lhs = gen_mask_expr(rng, depth - 1, n_arrays, dims, idx_array);
    // Shift amounts are small constants: `x << 3` is exact, `x << a0[i]`
    // would explode magnitudes past 2⁵³ and break bit-exactness.
    let rhs = if matches!(op, BinOp::Shl | BinOp::Shr) {
        TExpr::Const(1 + rng.gen_range(3) as i64)
    } else {
        gen_mask_expr(rng, depth - 1, n_arrays, dims, idx_array)
    };
    TExpr::Bin(op, Box::new(lhs), Box::new(rhs))
}

/// Generates one mask-family case: bit-exact ops, values masked into
/// `[0, 63]`, total statement instances bounded by `budget`.
pub fn gen_mask_case(rng: &mut Rng64, budget: u64) -> CaseSpec {
    let mesh = pick(rng, &MESHES);
    let n_arrays = 3 + rng.gen_range(4) as usize;
    let arrays: Vec<ArraySpec> = (0..n_arrays)
        .map(|_| ArraySpec {
            len: pick(rng, &[8u64, 16, 32, 64, 96]),
            elem_size: pick(rng, &[4u32, 8]),
            hot: rng.gen_bool(0.15),
        })
        .collect();
    // The last array is the only indirection source and is never written.
    let idx_array = if rng.gen_bool(0.4) { Some(n_arrays - 1) } else { None };
    let writable = n_arrays - usize::from(idx_array.is_some());

    let n_nests = 1 + usize::from(rng.gen_bool(0.35));
    let mut nests = Vec::new();
    for _ in 0..n_nests {
        let dims = 1 + usize::from(rng.gen_bool(0.3));
        let mut loops = Vec::new();
        for d in 0..dims {
            let lo = rng.gen_range(5) as i64 - 2;
            let trip =
                if d == 0 { 2 + rng.gen_range(10) as i64 } else { 2 + rng.gen_range(4) as i64 };
            loops.push((lo, lo + trip));
        }
        let n_stmts = 1 + rng.gen_range(3) as usize;
        let stmts = (0..n_stmts)
            .map(|_| {
                let lhs_array = rng.gen_range(writable as u64) as usize;
                let lhs_sub = if let Some(idx) = idx_array.filter(|_| rng.gen_bool(0.1)) {
                    TSub::Indirect { array: idx, var: 0 }
                } else {
                    gen_affine_sub(rng, dims)
                };
                TStmt {
                    lhs: TRef { array: lhs_array, sub: lhs_sub },
                    rhs: gen_mask_expr(rng, 2, n_arrays, dims, idx_array),
                    mask: Some(63),
                }
            })
            .collect();
        nests.push(NestSpec { loops, stmts });
    }
    let faults = rng.gen_bool(0.5).then(|| FaultSpec {
        dead_frac: [0.0, 0.1, 0.25][rng.gen_range(3) as usize],
        link_fail: [0.05, 0.15][rng.gen_range(2) as usize],
        seed: rng.next_u64(),
    });
    let data = rng.gen_bool(0.5).then(|| DataSpec { seed: rng.next_u64(), nonzero: false });
    let mut spec = CaseSpec { mesh, arrays, nests, faults, data };
    // Enforce the instance budget by halving outer trips.
    while spec.instances() > budget {
        for nest in &mut spec.nests {
            let (lo, hi) = nest.loops[0];
            let trip = (hi - lo).max(2);
            nest.loops[0] = (lo, lo + (trip / 2).max(1));
        }
    }
    spec
}

fn gen_div_expr(rng: &mut Rng64, depth: u32, n_src: usize, dims: usize) -> TExpr {
    if depth == 0 || rng.gen_bool(0.3) {
        if rng.gen_bool(0.15) {
            return TExpr::Const(1 + rng.gen_range(6) as i64);
        }
        return TExpr::Ref(TRef {
            array: rng.gen_range(n_src as u64) as usize,
            sub: gen_affine_sub(rng, dims),
        });
    }
    let op = pick(rng, &[BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Div, BinOp::Div, BinOp::Div]);
    TExpr::Bin(
        op,
        Box::new(gen_div_expr(rng, depth - 1, n_src, dims)),
        Box::new(gen_div_expr(rng, depth - 1, n_src, dims)),
    )
}

/// Generates one division-family case: `+ - * /` over read-only sources
/// (arrays `0..4` are never written, arrays `4..6` never read), single
/// nest, no feedback — so magnitudes stay bounded and a relative
/// tolerance covers reordered-division rounding.
pub fn gen_div_case(rng: &mut Rng64) -> CaseSpec {
    let mesh = pick(rng, &[(3u16, 3u16), (4, 4), (6, 6)]);
    let n_src = 4usize;
    let arrays: Vec<ArraySpec> = (0..n_src + 2)
        .map(|_| ArraySpec { len: pick(rng, &[16u64, 32, 64]), elem_size: 8, hot: false })
        .collect();
    let trip = 8 + rng.gen_range(25) as i64;
    let stmts = (0..1 + rng.gen_range(2) as usize)
        .map(|k| TStmt {
            lhs: TRef { array: n_src + k, sub: gen_affine_sub(rng, 1) },
            rhs: gen_div_expr(rng, 2, n_src, 1),
            mask: None,
        })
        .collect();
    CaseSpec {
        mesh,
        arrays,
        nests: vec![NestSpec { loops: vec![(0, trip)], stmts }],
        faults: None,
        data: Some(DataSpec { seed: rng.next_u64(), nonzero: true }),
    }
}

/// Generates a "wild" spec for the program-shape fuzz: extreme loop
/// bounds, huge subscript constants and coefficients. Never partitioned
/// or iterated at scale — only the static APIs (build, hashing,
/// analyzability, trip counts) and, when the bounds are tame, the
/// interpreter are exercised for panics.
pub fn gen_wild_spec(rng: &mut Rng64) -> CaseSpec {
    // Loop bounds bypass the parser (builder API), so they may use the
    // full i64 range; subscript offsets are rendered as literals, and
    // `abs(i64::MIN)` is not a lexable literal (as in C) — the most
    // negative expressible offset is `-i64::MAX`.
    const WILD_BOUNDS: [i64; 8] =
        [i64::MIN, -(1 << 62), -1_000_000_007, -3, 0, 7, 1 << 62, i64::MAX];
    const WILD_OFF: [i64; 8] = [-i64::MAX, -(1 << 62), -1_000_000_007, -3, 0, 7, 1 << 62, i64::MAX];
    let n_arrays = 2 + rng.gen_range(3) as usize;
    let arrays: Vec<ArraySpec> = (0..n_arrays)
        .map(|_| ArraySpec { len: pick(rng, &[1u64, 8, 257, 65_536]), elem_size: 8, hot: false })
        .collect();
    let wild_bounds = rng.gen_bool(0.5);
    let (lo, hi) = if wild_bounds {
        (pick(rng, &WILD_BOUNDS), pick(rng, &WILD_BOUNDS))
    } else {
        let lo = rng.gen_range(5) as i64 - 2;
        (lo, lo + 1 + rng.gen_range(3) as i64)
    };
    let coeff = pick(rng, &[1i64, 3, 1_000_000_007, 1 << 62, i64::MAX]);
    let off = pick(rng, &WILD_OFF);
    let stmt = TStmt {
        lhs: TRef { array: 0, sub: TSub::Affine { var: 0, coeff: 1, off: 0 } },
        rhs: TExpr::Bin(
            pick(rng, &[BinOp::Add, BinOp::Mul, BinOp::Shl, BinOp::Xor]),
            Box::new(TExpr::Ref(TRef {
                array: rng.gen_range(n_arrays as u64) as usize,
                sub: TSub::Affine { var: 0, coeff, off },
            })),
            Box::new(TExpr::Const(pick(rng, &[1i64, 2, i64::MAX]))),
        ),
        mask: None,
    };
    CaseSpec {
        mesh: (2, 2),
        arrays,
        nests: vec![NestSpec { loops: vec![(lo, hi)], stmts: vec![stmt] }],
        faults: None,
        data: None,
    }
}

fn simplify_expr(e: &TExpr) -> Vec<TExpr> {
    match e {
        TExpr::Bin(_, l, r) => {
            let mut out = vec![l.as_ref().clone(), r.as_ref().clone()];
            for (k, side) in [l, r].into_iter().enumerate() {
                for s in simplify_expr(side) {
                    let mut b = e.clone();
                    if let TExpr::Bin(_, bl, br) = &mut b {
                        if k == 0 {
                            **bl = s;
                        } else {
                            **br = s;
                        }
                    }
                    out.push(b);
                }
            }
            out
        }
        TExpr::Ref(TRef { array, sub: TSub::Indirect { .. } }) => {
            vec![TExpr::Ref(TRef { array: *array, sub: TSub::Affine { var: 0, coeff: 1, off: 0 } })]
        }
        _ => Vec::new(),
    }
}

/// All one-step simplifications of a spec, roughly largest-cut first.
fn shrink_candidates(spec: &CaseSpec) -> Vec<CaseSpec> {
    let mut out = Vec::new();
    if spec.nests.len() > 1 {
        for k in 0..spec.nests.len() {
            let mut c = spec.clone();
            c.nests.remove(k);
            out.push(c);
        }
    }
    for (n, nest) in spec.nests.iter().enumerate() {
        if nest.stmts.len() > 1 {
            for s in 0..nest.stmts.len() {
                let mut c = spec.clone();
                c.nests[n].stmts.remove(s);
                out.push(c);
            }
        }
        if nest.loops.len() > 1 {
            let mut c = spec.clone();
            c.nests[n].loops.pop();
            let dims = c.nests[n].loops.len();
            for stmt in &mut c.nests[n].stmts {
                clamp_vars(stmt, dims);
            }
            out.push(c);
        }
        for (d, &(lo, hi)) in nest.loops.iter().enumerate() {
            let trip = i128::from(hi) - i128::from(lo);
            if trip > 1 {
                let mut c = spec.clone();
                c.nests[n].loops[d] = (lo, lo + (trip / 2) as i64);
                out.push(c);
            }
        }
        for (s, stmt) in nest.stmts.iter().enumerate() {
            for simpler in simplify_expr(&stmt.rhs) {
                let mut c = spec.clone();
                c.nests[n].stmts[s].rhs = simpler;
                out.push(c);
            }
            if matches!(stmt.lhs.sub, TSub::Indirect { .. }) {
                let mut c = spec.clone();
                c.nests[n].stmts[s].lhs.sub = TSub::Affine { var: 0, coeff: 1, off: 0 };
                out.push(c);
            }
        }
    }
    if spec.faults.is_some() {
        let mut c = spec.clone();
        c.faults = None;
        out.push(c);
    }
    if spec.data.is_some() {
        let mut c = spec.clone();
        c.data = None;
        out.push(c);
    }
    for (k, a) in spec.arrays.iter().enumerate() {
        if a.len > 4 {
            let mut c = spec.clone();
            c.arrays[k].len = (a.len / 2).max(4);
            out.push(c);
        }
    }
    out
}

fn clamp_vars(stmt: &mut TStmt, dims: usize) {
    fn clamp_sub(sub: &mut TSub, dims: usize) {
        match sub {
            TSub::Affine { var, .. } | TSub::Indirect { var, .. } => {
                if *var >= dims {
                    *var = 0;
                }
            }
            TSub::Const(_) => {}
        }
    }
    fn clamp_expr(e: &mut TExpr, dims: usize) {
        match e {
            TExpr::Ref(r) => clamp_sub(&mut r.sub, dims),
            TExpr::Bin(_, l, r) => {
                clamp_expr(l, dims);
                clamp_expr(r, dims);
            }
            TExpr::Const(_) => {}
        }
    }
    clamp_sub(&mut stmt.lhs.sub, dims);
    clamp_expr(&mut stmt.rhs, dims);
}

/// Greedy shrinking: repeatedly adopts the first one-step simplification
/// that still fails `fails`, until none does (or the attempt budget runs
/// out). Returns the minimised spec.
pub fn shrink<F>(spec: &CaseSpec, fails: F, max_attempts: u32) -> CaseSpec
where
    F: Fn(&CaseSpec) -> bool,
{
    let mut current = spec.clone();
    let mut attempts = 0u32;
    'outer: loop {
        for candidate in shrink_candidates(&current) {
            attempts += 1;
            if attempts > max_attempts {
                break 'outer;
            }
            if fails(&candidate) {
                current = candidate;
                continue 'outer;
            }
        }
        break;
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_cases_build_and_respect_budget() {
        let mut rng = Rng64::new(7);
        for _ in 0..40 {
            let spec = gen_mask_case(&mut rng, 256);
            assert!(spec.instances() <= 256, "budget exceeded:\n{spec}");
            let built = spec.build().expect("mask case builds");
            assert_eq!(built.program.nests().len(), spec.nests.len());
        }
        for _ in 0..10 {
            let spec = gen_div_case(&mut rng);
            spec.build().expect("div case builds");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = gen_mask_case(&mut Rng64::new(42), 512);
        let b = gen_mask_case(&mut Rng64::new(42), 512);
        assert_eq!(a, b);
    }

    #[test]
    fn rename_build_produces_same_structure() {
        let spec = gen_mask_case(&mut Rng64::new(3), 256);
        let (arrays, vars) = spec.default_names();
        let renamed_arrays: Vec<String> =
            (0..arrays.len()).map(|k| format!("zz{}", arrays.len() - k)).collect();
        let renamed_vars: Vec<String> = (0..vars.len()).map(|d| format!("t{d}")).collect();
        let a = spec.build().expect("builds");
        let b = spec.build_named(&renamed_arrays, &renamed_vars).expect("builds renamed");
        use dmcp_ir::StableHash;
        let mut ha = dmcp_ir::StableHasher::new();
        let mut hb = dmcp_ir::StableHasher::new();
        a.program.stable_hash(&mut ha);
        b.program.stable_hash(&mut hb);
        assert_eq!(ha.finish(), hb.finish(), "structural hash is name-independent");
    }

    #[test]
    fn shrinker_reaches_a_fixed_point() {
        let spec = gen_mask_case(&mut Rng64::new(11), 512);
        // "Fails" whenever any statement still contains a Mul: the shrinker
        // must cut everything else away.
        fn has_mul(e: &TExpr) -> bool {
            match e {
                TExpr::Bin(BinOp::Mul, _, _) => true,
                TExpr::Bin(_, l, r) => has_mul(l) || has_mul(r),
                _ => false,
            }
        }
        let fails =
            |s: &CaseSpec| s.nests.iter().any(|n| n.stmts.iter().any(|st| has_mul(&st.rhs)));
        if !fails(&spec) {
            return; // this seed generated no Mul; nothing to shrink toward
        }
        let small = shrink(&spec, fails, 500);
        assert!(fails(&small));
        assert!(small.instances() <= spec.instances());
        let total_stmts: usize = small.nests.iter().map(|n| n.stmts.len()).sum();
        assert_eq!(total_stmts, 1, "only the failing statement survives");
    }

    #[test]
    fn wild_specs_build_without_panicking() {
        let mut rng = Rng64::new(23);
        for _ in 0..50 {
            let spec = gen_wild_spec(&mut rng);
            let built = spec.build().expect("wild spec builds");
            // Static APIs must tolerate extreme bounds.
            for nest in built.program.nests() {
                let _ = nest.iteration_count();
            }
            let _ = built.program.static_analyzability();
            let _ = built.program.dynamic_analyzability();
        }
    }
}
