//! Stable plan fingerprints.
//!
//! [`plan_digest`] folds every semantically meaningful field of a
//! [`PartitionOutput`] — step nodes, accumulator seeds, fold inputs,
//! store targets, sync arcs, statement tags — through the same FNV-1a
//! [`StableHasher`] the IR uses for structural hashes. Two outputs get
//! the same digest iff the schedules are step-for-step identical, so the
//! golden-plan tests can pin one `u64` per workload instead of a
//! multi-megabyte snapshot.
//!
//! Cache-line identities are *not* hashed: they are derived from
//! (array, element) and the machine layout, both of which are already
//! covered.

use dmcp_core::{Operand, PartitionOutput, Schedule, Step};
use dmcp_ir::StableHasher;
use dmcp_mach::NodeId;

fn hash_node(h: &mut StableHasher, n: NodeId) {
    h.write_u32(u32::from(n.x()));
    h.write_u32(u32::from(n.y()));
}

fn hash_step(h: &mut StableHasher, step: &Step) {
    hash_node(h, step.node);
    match step.seed {
        Some(v) => {
            h.write_u8(1);
            h.write_f64(v);
        }
        None => h.write_u8(0),
    }
    h.write_len(step.inputs.len());
    for input in &step.inputs {
        h.write_u8(input.op as u8);
        match input.operand {
            Operand::Const(v) => {
                h.write_u8(0);
                h.write_f64(v);
            }
            Operand::Elem(loc) => {
                h.write_u8(1);
                h.write_u64(loc.array.index() as u64);
                h.write_u64(loc.elem);
                hash_node(h, loc.believed);
                h.write_u8(u8::from(loc.hot));
            }
            Operand::Temp(t) => {
                h.write_u8(2);
                h.write_u64(t.index() as u64);
            }
        }
    }
    match step.store {
        Some(st) => {
            h.write_u8(1);
            h.write_u64(st.array.index() as u64);
            h.write_u64(st.elem);
            hash_node(h, st.home);
            h.write_u8(u8::from(st.hot));
        }
        None => h.write_u8(0),
    }
    h.write_len(step.waits.len());
    for w in &step.waits {
        h.write_u64(w.index() as u64);
    }
    h.write_u32(step.tag.nest);
    h.write_u32(step.tag.stmt);
    h.write_u64(step.tag.instance);
}

fn hash_schedule(h: &mut StableHasher, s: &Schedule) {
    h.write_len(s.steps.len());
    for step in &s.steps {
        hash_step(h, step);
    }
}

/// A stable fingerprint of a partitioner output: equal iff the schedules
/// (and the per-nest window choices reflected in them) are identical.
pub fn plan_digest(out: &PartitionOutput) -> u64 {
    let mut h = StableHasher::new();
    h.write_len(out.nests.len());
    for nest in &out.nests {
        h.write_u64(nest.nest as u64);
        hash_schedule(&mut h, &nest.schedule);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gencase::gen_mask_case;
    use dmcp_core::Partitioner;
    use dmcp_mach::rng::Rng64;

    #[test]
    fn digest_is_deterministic_and_discriminates() {
        let mut rng = Rng64::new(77);
        let spec = gen_mask_case(&mut rng, 128);
        let built = spec.build().expect("builds");
        let part = Partitioner::new(&built.machine, &built.program, built.config.clone());
        let out = part.partition_with_data(&built.program, &built.data);
        let again = part.partition_with_data(&built.program, &built.data);
        assert_eq!(plan_digest(&out), plan_digest(&again));

        // Perturbing a single step's node must change the digest.
        let mut mutated = out.clone();
        if let Some(step) =
            mutated.nests.iter_mut().flat_map(|n| n.schedule.steps.iter_mut()).next()
        {
            step.node = NodeId::new(step.node.x() + 1, step.node.y());
            assert_ne!(plan_digest(&out), plan_digest(&mutated));
        }
    }

    #[test]
    fn digest_of_empty_output_is_stable() {
        let out = PartitionOutput::default();
        assert_eq!(plan_digest(&out), plan_digest(&PartitionOutput::default()));
    }
}
