//! The 12 evaluation kernels (paper Section 6.1: Splash-2 + Mantevo).
//!
//! Each workload is a loop-nest program whose *shape* mirrors the
//! corresponding application's characterisation in the paper:
//!
//! - statement length/complexity (drives the MST savings and the degree of
//!   subcomputation parallelism — Figures 13/14),
//! - the fraction of compile-time-analyzable references (Table 1, imposed
//!   exactly via [`gen::set_analyzability`]),
//! - the operation mix (Table 3),
//! - indirection (Radix, Raytrace, Barnes, MiniMD, MiniXyce use index
//!   arrays; their resolved locations model the paper's inspector/executor
//!   scheme),
//! - data reuse across statements (drives the window benefit — Figures
//!   20/21) and across timing iterations (keeps the L2 warm, as the paper's
//!   16–37 % L2 miss rates imply).
//!
//! Data sets are scaled to the simulated machine (a few MiB against a
//! ~2 MiB aggregate L2) so cache-pressure ratios stay comparable to the
//! paper's GB-scale runs on a 36 MiB L2.
//!
//! # Examples
//!
//! ```
//! use dmcp_workloads::{all, Scale};
//!
//! let suite = all(Scale::Small);
//! assert_eq!(suite.len(), 12);
//! assert_eq!(suite[0].name, "Barnes");
//! ```

pub mod apps;
pub mod gen;
pub mod meta;

use dmcp_ir::program::DataStore;
use dmcp_ir::Program;
pub use meta::PaperRow;

/// Problem-size selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Scale {
    /// Tiny inputs for unit tests (hundreds of instances).
    Tiny,
    /// Small inputs for integration tests (a few thousand instances).
    #[default]
    Small,
    /// The size used by the benchmark harness (tens of thousands of
    /// instances).
    Full,
}

impl Scale {
    /// Base 1-D extent for this scale.
    pub fn n(self) -> i64 {
        match self {
            Scale::Tiny => 256,
            Scale::Small => 512,
            Scale::Full => 2048,
        }
    }

    /// Timing-loop trip count for this scale.
    pub fn timesteps(self) -> i64 {
        match self {
            Scale::Tiny => 2,
            Scale::Small => 3,
            Scale::Full => 4,
        }
    }
}

/// One benchmark program plus its run-time data and the paper's reported
/// numbers for comparison.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Application name as in the paper.
    pub name: &'static str,
    /// The loop-nest program.
    pub program: Program,
    /// Concrete data (index arrays installed; also the inspector's view).
    pub data: DataStore,
    /// The paper's reported values for this application.
    pub paper: PaperRow,
}

/// Builds the full 12-application suite, in the paper's table order.
pub fn all(scale: Scale) -> Vec<Workload> {
    vec![
        apps::barnes::build(scale),
        apps::cholesky::build(scale),
        apps::fft::build(scale),
        apps::fmm::build(scale),
        apps::lu::build(scale),
        apps::ocean::build(scale),
        apps::radiosity::build(scale),
        apps::radix::build(scale),
        apps::raytrace::build(scale),
        apps::water::build(scale),
        apps::minimd::build(scale),
        apps::minixyce::build(scale),
    ]
}

/// Builds one workload by (case-insensitive) name.
pub fn by_name(name: &str, scale: Scale) -> Option<Workload> {
    let lower = name.to_ascii_lowercase();
    all(scale).into_iter().find(|w| w.name.to_ascii_lowercase() == lower)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_twelve_unique_names() {
        let suite = all(Scale::Tiny);
        let names: std::collections::HashSet<_> = suite.iter().map(|w| w.name).collect();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn analyzability_matches_table_1() {
        for w in all(Scale::Tiny) {
            let got = w.program.static_analyzability();
            assert!(
                (got - w.paper.analyzable).abs() < 0.05,
                "{}: analyzability {:.3} vs paper {:.3}",
                w.name,
                got,
                w.paper.analyzable
            );
        }
    }

    #[test]
    fn every_workload_has_iterations() {
        for w in all(Scale::Tiny) {
            let total: u64 = w.program.nests().iter().map(|n| n.iteration_count()).sum();
            assert!(total > 0, "{} has no iterations", w.name);
        }
    }

    #[test]
    fn by_name_is_case_insensitive() {
        assert!(by_name("ocean", Scale::Tiny).is_some());
        assert!(by_name("OCEAN", Scale::Tiny).is_some());
        assert!(by_name("nonesuch", Scale::Tiny).is_none());
    }

    #[test]
    fn workloads_run_sequentially_without_nan() {
        for w in all(Scale::Tiny) {
            let mut data = w.data.clone();
            dmcp_ir::exec::run_sequential(&w.program, &mut data);
            // Spot-check: the first array's first element is finite.
            let v = data.get(dmcp_ir::ArrayId::from_index(0), 0);
            assert!(v.is_finite(), "{} produced {v}", w.name);
        }
    }

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::Tiny.n() < Scale::Small.n());
        assert!(Scale::Small.n() < Scale::Full.n());
    }
}
