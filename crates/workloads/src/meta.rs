//! The paper's reported per-application numbers, used by `EXPERIMENTS.md`
//! to record paper-vs-measured comparisons.
//!
//! Table values are exact where the paper prints them; figure values are
//! approximate read-offs from the bar charts (marked in the field docs).
//! Three Table 1 and two Table 2 cells are illegible in the available text
//! (Raytrace/Water/MiniMD analyzability, Ocean/Radiosity predictor
//! accuracy); those use interpolated values flagged by
//! [`PaperRow::interpolated`].

/// Reference numbers for one application.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PaperRow {
    /// Table 1: fraction of compile-time-analyzable data references.
    pub analyzable: f64,
    /// Table 2: cache hit/miss predictor accuracy.
    pub predictor_accuracy: f64,
    /// Table 3: re-mapped operation mix `(add/sub, mul/div, other)`.
    pub op_mix: (f64, f64, f64),
    /// Figure 13 (read-off): average per-statement movement reduction.
    pub fig13_avg_movement_reduction: f64,
    /// Figure 14 (read-off): average degree of subcomputation parallelism.
    pub fig14_avg_parallelism: f64,
    /// Figure 16 (read-off): L1 hit-rate improvement (percentage points).
    pub fig16_l1_improvement: f64,
    /// Figure 17 (read-off): execution-time reduction of the full approach.
    pub fig17_exec_reduction: f64,
    /// `true` when any table cell was interpolated because the source text
    /// is illegible there.
    pub interpolated: bool,
}

/// Geometric-mean targets the paper reports across all 12 applications.
pub mod means {
    /// Average per-statement data-movement reduction (Section 6.2).
    pub const MOVEMENT_REDUCTION: f64 = 0.353;
    /// Average execution-time improvement (abstract / Section 6.2).
    pub const EXEC_REDUCTION: f64 = 0.184;
    /// Average L1 hit-rate improvement (Section 6.2).
    pub const L1_IMPROVEMENT: f64 = 0.116;
    /// Average degree of subcomputation parallelism (Section 6.2).
    pub const PARALLELISM: f64 = 3.0;
    /// Average energy reduction (Section 6.6).
    pub const ENERGY_REDUCTION: f64 = 0.231;
    /// Ideal-network execution-time reduction (Section 6.4).
    pub const IDEAL_NETWORK_REDUCTION: f64 = 0.244;
    /// Ideal-data-analysis execution-time reduction (Section 6.4).
    pub const IDEAL_ANALYSIS_REDUCTION: f64 = 0.223;
    /// Profile-based data-to-MC mapping improvement (Section 6.5).
    pub const DATA_MAPPING_REDUCTION: f64 = 0.079;
    /// Combined computation + data mapping improvement (Section 6.5).
    pub const COMBINED_REDUCTION: f64 = 0.214;
}

macro_rules! row {
    ($an:expr, $pred:expr, ($a:expr, $m:expr, $o:expr), $f13:expr, $f14:expr,
     $f16:expr, $f17:expr, $interp:expr) => {
        PaperRow {
            analyzable: $an,
            predictor_accuracy: $pred,
            op_mix: ($a, $m, $o),
            fig13_avg_movement_reduction: $f13,
            fig14_avg_parallelism: $f14,
            fig16_l1_improvement: $f16,
            fig17_exec_reduction: $f17,
            interpolated: $interp,
        }
    };
}

/// Barnes (Splash-2 n-body).
pub const BARNES: PaperRow =
    row!(0.683, 0.631, (0.514, 0.262, 0.224), 0.55, 4.2, 0.13, 0.22, false);
/// Cholesky (Splash-2 sparse factorisation).
pub const CHOLESKY: PaperRow =
    row!(0.972, 0.918, (0.394, 0.476, 0.130), 0.15, 2.2, 0.08, 0.10, false);
/// FFT (Splash-2).
pub const FFT: PaperRow = row!(0.923, 0.845, (0.331, 0.465, 0.204), 0.35, 2.8, 0.11, 0.18, false);
/// FMM (Splash-2 fast multipole).
pub const FMM: PaperRow = row!(0.744, 0.706, (0.472, 0.453, 0.075), 0.38, 3.1, 0.12, 0.17, false);
/// LU (Splash-2 dense factorisation).
pub const LU: PaperRow = row!(0.907, 0.857, (0.418, 0.516, 0.066), 0.18, 2.4, 0.09, 0.12, false);
/// Ocean (Splash-2 stencil solver).
pub const OCEAN: PaperRow = row!(0.773, 0.80, (0.522, 0.414, 0.064), 0.52, 4.5, 0.14, 0.24, true);
/// Radiosity (Splash-2).
pub const RADIOSITY: PaperRow =
    row!(0.773, 0.78, (0.462, 0.334, 0.204), 0.33, 3.0, 0.11, 0.19, true);
/// Radix (Splash-2 integer sort).
pub const RADIX: PaperRow = row!(0.842, 0.891, (0.390, 0.387, 0.223), 0.30, 2.5, 0.10, 0.21, false);
/// Raytrace (Splash-2).
pub const RAYTRACE: PaperRow =
    row!(0.82, 0.802, (0.434, 0.497, 0.069), 0.32, 2.9, 0.11, 0.16, true);
/// Water (Splash-2 molecular dynamics).
pub const WATER: PaperRow = row!(0.88, 0.776, (0.581, 0.282, 0.137), 0.36, 3.2, 0.12, 0.18, true);
/// MiniMD (Mantevo molecular dynamics proxy).
pub const MINIMD: PaperRow = row!(0.91, 0.874, (0.444, 0.372, 0.184), 0.50, 3.8, 0.13, 0.23, true);
/// MiniXyce (Mantevo circuit-simulation proxy).
pub const MINIXYCE: PaperRow =
    row!(0.938, 0.865, (0.463, 0.367, 0.170), 0.34, 2.7, 0.10, 0.17, false);

#[cfg(test)]
mod tests {
    use super::*;

    const ROWS: [(&str, PaperRow); 12] = [
        ("Barnes", BARNES),
        ("Cholesky", CHOLESKY),
        ("FFT", FFT),
        ("FMM", FMM),
        ("LU", LU),
        ("Ocean", OCEAN),
        ("Radiosity", RADIOSITY),
        ("Radix", RADIX),
        ("Raytrace", RAYTRACE),
        ("Water", WATER),
        ("MiniMD", MINIMD),
        ("MiniXyce", MINIXYCE),
    ];

    #[test]
    fn op_mixes_sum_to_one() {
        for (name, row) in ROWS {
            let (a, m, o) = row.op_mix;
            assert!((a + m + o - 1.0).abs() < 1e-9, "{name}: {:?}", row.op_mix);
        }
    }

    #[test]
    fn fractions_in_range() {
        for (name, row) in ROWS {
            assert!(row.analyzable > 0.5 && row.analyzable < 1.0, "{name}");
            assert!(row.predictor_accuracy > 0.5 && row.predictor_accuracy < 1.0, "{name}");
            assert!(row.fig13_avg_movement_reduction > 0.0, "{name}");
            assert!(row.fig17_exec_reduction > 0.0, "{name}");
        }
    }

    #[test]
    fn exact_table_cells_match_the_paper() {
        assert_eq!(BARNES.analyzable, 0.683);
        assert_eq!(CHOLESKY.analyzable, 0.972);
        assert_eq!(MINIXYCE.analyzable, 0.938);
        assert_eq!(BARNES.predictor_accuracy, 0.631);
        assert_eq!(RADIX.op_mix, (0.390, 0.387, 0.223));
    }
}
