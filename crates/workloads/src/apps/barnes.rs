//! Barnes — Splash-2 hierarchical n-body.
//!
//! Long force-accumulation statements (the paper credits Barnes's
//! "longer/more complex statements" for its high subcomputation parallelism)
//! with indirect cell lookups through a body→cell index array; the lowest
//! analyzability of the suite (68.3 %).

use crate::{gen, meta, Scale, Workload};
use dmcp_ir::ProgramBuilder;

/// Builds the Barnes workload.
pub fn build(scale: Scale) -> Workload {
    let n = scale.n();
    let t = scale.timesteps();
    let cells = (n / 4).max(8);
    let mut b = ProgramBuilder::new();
    for name in ["ax", "ay", "px", "py", "pxn", "pyn", "m"] {
        b.array(name, &[n as u64], 64);
    }
    let cidx = b.array("cidx", &[n as u64], 8);
    for name in ["cmx", "cmy", "cm"] {
        b.array(name, &[cells as u64], 64);
    }
    b.nest(
        &[("t", 0, t), ("i", 0, n)],
        &[
            // Force from the interacting cell plus near-neighbour terms
            // (all from the *old* positions, as in the real leapfrog).
            "ax[i] = ax[i] + cm[cidx[i]] * (cmx[cidx[i]] - px[i]) + m[i] * px[i] + px[i+1] - px[i-1]",
            "ay[i] = ay[i] + cm[cidx[i]] * (cmy[cidx[i]] - py[i]) + m[i] * py[i] + py[i+1] - py[i-1]",
            // Integrator half-step into the new-position buffers.
            "pxn[i] = px[i] + ax[i] * 2 + (m[i] & 7)",
            "pyn[i] = py[i] + ay[i] * 2 + (m[i] & 7)",
        ],
    )
    .expect("barnes statements parse");
    let mut program = b.build();
    gen::set_analyzability(&mut program, meta::BARNES.analyzable, 0xBA51);
    let mut data = program.initial_data();
    data.fill(cidx, &gen::clustered_indices(n as u64, cells as u64, 8, 0xBA52));
    Workload { name: "Barnes", program, data, paper: meta::BARNES }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_matches_table1() {
        let w = build(Scale::Tiny);
        assert_eq!(w.name, "Barnes");
        assert!((w.program.static_analyzability() - 0.683).abs() < 0.05);
    }

    #[test]
    fn has_long_statements() {
        let w = build(Scale::Tiny);
        let max_reads = w.program.nests()[0].body.iter().map(|s| s.reads().len()).max().unwrap();
        assert!(max_reads >= 6, "Barnes statements should be long, got {max_reads}");
    }
}
