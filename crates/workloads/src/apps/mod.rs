//! One module per evaluation application (paper Table 1 order).

pub mod barnes;
pub mod cholesky;
pub mod fft;
pub mod fmm;
pub mod lu;
pub mod minimd;
pub mod minixyce;
pub mod ocean;
pub mod radiosity;
pub mod radix;
pub mod raytrace;
pub mod water;
