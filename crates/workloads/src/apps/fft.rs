//! FFT — Splash-2 radix-√n six-step FFT.
//!
//! Butterfly statements: strided operand pairs combined with shared twiddle
//! factors (the twiddle reuse across the real/imaginary statements is what
//! a multi-statement window can exploit). Mul-heavy mix (46.5 %).

use crate::{gen, meta, Scale, Workload};
use dmcp_ir::ProgramBuilder;

/// Builds the FFT workload.
pub fn build(scale: Scale) -> Workload {
    let n = scale.n();
    let t = scale.timesteps();
    let half = (n / 2).max(8);
    let mut b = ProgramBuilder::new();
    for name in ["xr", "xi", "yr", "yi"] {
        b.array(name, &[n as u64], 64);
    }
    for name in ["wr", "wi"] {
        b.array(name, &[half as u64], 64);
    }
    b.nest(
        &[("t", 0, t), ("i", 0, half)],
        &[
            // Butterfly: y[i] = x[i] + w*x[i+half], sharing w between the
            // real and imaginary statements.
            "yr[i] = xr[2*i] + wr[i] * xr[2*i+1] - wi[i] * xi[2*i+1]",
            "yi[i] = xi[2*i] + wr[i] * xi[2*i+1] + wi[i] * xr[2*i+1]",
            "xr[2*i] = yr[i] * 2 - xr[2*i]",
            "xi[2*i] = yi[i] * 2 - xi[2*i]",
        ],
    )
    .expect("fft statements parse");
    let mut program = b.build();
    gen::set_analyzability(&mut program, meta::FFT.analyzable, 0xFF7);
    let data = program.initial_data();
    Workload { name: "FFT", program, data, paper: meta::FFT }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_matches_table1() {
        let w = build(Scale::Tiny);
        assert!((w.program.static_analyzability() - 0.923).abs() < 0.05);
    }

    #[test]
    fn twiddles_are_shared_between_statements() {
        let w = build(Scale::Tiny);
        let body = &w.program.nests()[0].body;
        let wr_in_0 = body[0].reads().iter().any(|r| r.array.index() == 4);
        let wr_in_1 = body[1].reads().iter().any(|r| r.array.index() == 4);
        assert!(wr_in_0 && wr_in_1, "wr should appear in both butterfly statements");
    }
}
