//! MiniXyce — Mantevo circuit-simulation proxy.
//!
//! A sparse matrix–vector product through a column-index array plus an RC
//! state update; the Mantevo pair round out the suite with 93.8 %
//! analyzability (inspector-covered sparsity).

use crate::{gen, meta, Scale, Workload};
use dmcp_ir::ProgramBuilder;

/// Builds the MiniXyce workload.
pub fn build(scale: Scale) -> Workload {
    let n = scale.n();
    let t = scale.timesteps();
    let mut b = ProgramBuilder::new();
    for name in ["v", "vn", "inj", "g", "g2"] {
        b.array(name, &[n as u64], 64);
    }
    let col = b.array("col", &[n as u64], 8);
    let col2 = b.array("col2", &[n as u64], 8);
    b.nest(
        &[("t", 0, t), ("i", 0, n)],
        &[
            // Two-nonzero sparse row against the previous voltages.
            "inj[i] = g[i] * v[col[i]] + g2[i] * v[col2[i]] - v[i] * 3",
            // Trapezoidal state update (element-local).
            "vn[i] = v[i] + inj[i] * 2 + g[i]",
        ],
    )
    .expect("minixyce statements parse");
    let mut program = b.build();
    gen::set_analyzability(&mut program, meta::MINIXYCE.analyzable, 0xC1);
    let mut data = program.initial_data();
    data.fill(col, &gen::clustered_indices(n as u64, n as u64, 4, 0xC2));
    data.fill(col2, &gen::clustered_indices(n as u64, n as u64, 64, 0xC3));
    Workload { name: "MiniXyce", program, data, paper: meta::MINIXYCE }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_matches_table1() {
        let w = build(Scale::Tiny);
        assert!((w.program.static_analyzability() - 0.938).abs() < 0.05);
    }

    #[test]
    fn spmv_reads_through_column_indices() {
        let w = build(Scale::Tiny);
        let indirect_reads =
            w.program.nests()[0].body[0].reads().iter().filter(|r| !r.is_affine()).count();
        assert_eq!(indirect_reads, 2);
    }
}
