//! LU — Splash-2 dense blocked LU factorisation.
//!
//! Compact rank-1 updates over a 2-D matrix (like Cholesky, a small network
//! footprint per statement ⇒ modest gains in the paper), mul/div-heavy
//! (51.6 %).

use crate::{gen, meta, Scale, Workload};
use dmcp_ir::ProgramBuilder;

/// Builds the LU workload.
pub fn build(scale: Scale) -> Workload {
    let n = (scale.n() / 8).max(16);
    let t = scale.timesteps();
    let mut b = ProgramBuilder::new();
    b.array("A", &[n as u64, n as u64], 64);
    b.array("P", &[n as u64], 64);
    b.array("R", &[n as u64], 64);
    b.nest(
        &[("t", 0, t), ("i", 0, n), ("j", 0, n)],
        &[
            // Trailing-submatrix update with pivot scaling.
            "A[i][j] = A[i][j] - A[i][t] * A[t][j] / P[t]",
            // Row-norm accumulation for the pivot search.
            "R[j] = R[j] + A[t][j] * A[j][t] - P[j]",
        ],
    )
    .expect("lu statements parse");
    let mut program = b.build();
    gen::set_analyzability(&mut program, meta::LU.analyzable, 0x10);
    let data = program.initial_data();
    Workload { name: "LU", program, data, paper: meta::LU }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_matches_table1() {
        let w = build(Scale::Tiny);
        assert!((w.program.static_analyzability() - 0.907).abs() < 0.05);
    }

    #[test]
    fn mix_is_muldiv_heavy() {
        let w = build(Scale::Tiny);
        let ops = w.program.nests()[0].body[0].rhs.ops();
        let muldiv = ops.iter().filter(|o| o.category() == dmcp_ir::op::OpCategory::MulDiv).count();
        assert!(muldiv * 2 >= ops.len(), "LU should be mul/div heavy: {ops:?}");
    }
}
