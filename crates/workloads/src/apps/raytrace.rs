//! Raytrace — Splash-2 ray tracer.
//!
//! Per-ray shading against indirectly-addressed scene objects; mul-heavy
//! (49.7 %) dot-product-like statements.

use crate::{gen, meta, Scale, Workload};
use dmcp_ir::ProgramBuilder;

/// Builds the Raytrace workload.
pub fn build(scale: Scale) -> Workload {
    let n = scale.n();
    let t = scale.timesteps();
    let objects = (n / 4).max(8);
    let mut b = ProgramBuilder::new();
    for name in ["col", "dx", "dy", "dz"] {
        b.array(name, &[n as u64], 64);
    }
    let oid = b.array("oid", &[n as u64], 8);
    for name in ["onx", "ony", "onz", "alb"] {
        b.array(name, &[objects as u64], 64);
    }
    b.nest(
        &[("t", 0, t), ("i", 0, n)],
        &[
            // Lambertian shading: albedo times the ray·normal dot product.
            "col[i] = col[i] + alb[oid[i]] * (dx[i] * onx[oid[i]] + dy[i] * ony[oid[i]] + dz[i] * onz[oid[i]])",
            // Secondary-ray direction update.
            "dx[i] = dx[i] * 3 - onx[oid[i]] * 2",
        ],
    )
    .expect("raytrace statements parse");
    let mut program = b.build();
    gen::set_analyzability(&mut program, meta::RAYTRACE.analyzable, 0xA);
    let mut data = program.initial_data();
    data.fill(oid, &gen::clustered_indices(n as u64, objects as u64, 6, 0x2));
    Workload { name: "Raytrace", program, data, paper: meta::RAYTRACE }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_matches_table1() {
        let w = build(Scale::Tiny);
        assert!((w.program.static_analyzability() - 0.82).abs() < 0.05);
    }

    #[test]
    fn shading_is_mul_heavy() {
        let w = build(Scale::Tiny);
        let ops = w.program.nests()[0].body[0].rhs.ops();
        let mul = ops.iter().filter(|o| **o == dmcp_ir::BinOp::Mul).count();
        assert!(mul >= 4, "shading should multiply a lot: {ops:?}");
    }
}
