//! Ocean — Splash-2 ocean-current simulation (red/black Gauss–Seidel).
//!
//! Wide 5/9-point stencils: the longest statements of the suite, heavy
//! cross-statement reuse of the current-timestep grid ⇒ the largest
//! movement reductions and parallelism in the paper.

use crate::{gen, meta, Scale, Workload};
use dmcp_ir::ProgramBuilder;

/// Grid width used for the ±row stencil offsets.
const ROW: i64 = 32;

/// Builds the Ocean workload.
pub fn build(scale: Scale) -> Workload {
    let n = scale.n() * 2;
    let t = scale.timesteps();
    let mut b = ProgramBuilder::new();
    for name in ["cur", "nxt", "psi", "frc"] {
        b.array(name, &[n as u64], 64);
    }
    b.nest(
        &[("t", 0, t), ("i", ROW, n - ROW)],
        &[
            // 5-point relaxation plus forcing (Jacobi: cur is read-only
            // within a sweep, like the real red/black phases).
            "nxt[i] = (cur[i-1] + cur[i+1] + cur[i-32] + cur[i+32]) * 3 - cur[i] * 11 + frc[i]",
            // Stream-function update re-using the same neighbourhood.
            "psi[i] = psi[i] + (cur[i-1] - cur[i+1]) * 5 + (cur[i-32] - cur[i+32]) * 7",
            // Error accumulator re-using this sweep's results.
            "frc[i] = nxt[i] * 9 + psi[i] - cur[i]",
        ],
    )
    .expect("ocean statements parse");
    let mut program = b.build();
    gen::set_analyzability(&mut program, meta::OCEAN.analyzable, 0x0CEA);
    let data = program.initial_data();
    Workload { name: "Ocean", program, data, paper: meta::OCEAN }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_matches_table1() {
        let w = build(Scale::Tiny);
        assert!((w.program.static_analyzability() - 0.773).abs() < 0.05);
    }

    #[test]
    fn stencil_statements_are_wide() {
        let w = build(Scale::Tiny);
        let max_reads = w.program.nests()[0].body.iter().map(|s| s.reads().len()).max().unwrap();
        assert!(max_reads >= 5, "Ocean stencils should be wide, got {max_reads}");
    }

    #[test]
    fn statements_share_the_cur_neighbourhood() {
        let w = build(Scale::Tiny);
        let body = &w.program.nests()[0].body;
        let cur_reads =
            |s: &dmcp_ir::Statement| s.reads().iter().filter(|r| r.array.index() == 0).count();
        assert!(cur_reads(&body[0]) >= 4);
        assert!(cur_reads(&body[1]) >= 4);
    }
}
