//! FMM — Splash-2 adaptive fast multipole method.
//!
//! Multipole-expansion evaluation: medium-length statements mixing direct
//! particle data with indirect interaction-list lookups; 74.4 % analyzable,
//! balanced add/mul mix (47.2 / 45.3).

use crate::{gen, meta, Scale, Workload};
use dmcp_ir::ProgramBuilder;

/// Builds the FMM workload.
pub fn build(scale: Scale) -> Workload {
    let n = scale.n();
    let t = scale.timesteps();
    let boxes = (n / 8).max(8);
    let mut b = ProgramBuilder::new();
    for name in ["phi", "q", "x"] {
        b.array(name, &[n as u64], 64);
    }
    let ilist = b.array("ilist", &[n as u64], 8);
    for name in ["mp0", "mp1", "mp2"] {
        b.array(name, &[boxes as u64], 64);
    }
    b.nest(
        &[("t", 0, t), ("i", 0, n)],
        &[
            // Far-field evaluation from the box multipoles.
            "phi[i] = phi[i] + mp0[ilist[i]] + mp1[ilist[i]] * x[i] + mp2[ilist[i]] * x[i] * x[i]",
            // Near-field correction.
            "phi[i] = phi[i] + q[i] * x[i] - q[i+1] * x[i+1]",
        ],
    )
    .expect("fmm statements parse");
    let mut program = b.build();
    gen::set_analyzability(&mut program, meta::FMM.analyzable, 0xF33);
    let mut data = program.initial_data();
    data.fill(ilist, &gen::clustered_indices(n as u64, boxes as u64, 4, 0xF34));
    Workload { name: "FMM", program, data, paper: meta::FMM }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_matches_table1() {
        let w = build(Scale::Tiny);
        assert!((w.program.static_analyzability() - 0.744).abs() < 0.05);
    }
}
