//! MiniMD — Mantevo molecular-dynamics proxy (Lennard-Jones).
//!
//! Neighbour-list force kernels: indirect neighbour gathers feeding long
//! force expressions — one of the paper's biggest winners.

use crate::{gen, meta, Scale, Workload};
use dmcp_ir::ProgramBuilder;

/// Builds the MiniMD workload.
pub fn build(scale: Scale) -> Workload {
    let n = scale.n();
    let t = scale.timesteps();
    let mut b = ProgramBuilder::new();
    for name in ["fx", "fy", "x", "y", "xn", "yn", "s6", "s12"] {
        b.array(name, &[n as u64], 64);
    }
    let nb = b.array("nb", &[n as u64], 8);
    let nb2 = b.array("nb2", &[n as u64], 8);
    b.nest(
        &[("t", 0, t), ("i", 0, n)],
        &[
            // Lennard-Jones-ish force from two neighbours.
            "fx[i] = fx[i] + (x[nb[i]] - x[i]) * s6[i] + (x[nb2[i]] - x[i]) * s12[i]",
            "fy[i] = fy[i] + (y[nb[i]] - y[i]) * s6[i] + (y[nb2[i]] - y[i]) * s12[i]",
            // Velocity-Verlet position update into the new buffers.
            "xn[i] = x[i] + fx[i] * 2 + fy[i]",
            "yn[i] = y[i] + fy[i] * 2 - fx[i]",
        ],
    )
    .expect("minimd statements parse");
    let mut program = b.build();
    gen::set_analyzability(&mut program, meta::MINIMD.analyzable, 0x3D);
    let mut data = program.initial_data();
    data.fill(nb, &gen::clustered_indices(n as u64, n as u64, 8, 0x3E));
    data.fill(nb2, &gen::clustered_indices(n as u64, n as u64, 16, 0x3F));
    Workload { name: "MiniMD", program, data, paper: meta::MINIMD }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_matches_table1() {
        let w = build(Scale::Tiny);
        assert!((w.program.static_analyzability() - 0.91).abs() < 0.05);
    }

    #[test]
    fn neighbour_lists_are_mostly_local() {
        let w = build(Scale::Tiny);
        let nb = dmcp_ir::ArrayId::from_index(8);
        let local = (0..64).filter(|&i| (w.data.get(nb, i) - i as f64).abs() <= 8.0).count();
        assert!(local > 40, "only {local}/64 neighbours local");
    }
}
