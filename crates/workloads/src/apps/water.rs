//! Water — Splash-2 molecular dynamics (water molecules).
//!
//! Pairwise-distance accumulation: the most add/sub-heavy mix of the suite
//! (58.1 %), moderate statement length, strong reuse of the displacement
//! arrays across statements.

use crate::{gen, meta, Scale, Workload};
use dmcp_ir::ProgramBuilder;

/// Builds the Water workload.
pub fn build(scale: Scale) -> Workload {
    let n = scale.n();
    let t = scale.timesteps();
    let mut b = ProgramBuilder::new();
    for name in ["x", "y", "z", "ex", "ey", "ez", "pot", "kin"] {
        b.array(name, &[n as u64], 64);
    }
    b.nest(
        &[("t", 0, t), ("i", 1, n - 1)],
        &[
            // Displacements to the neighbouring molecule.
            "ex[i] = x[i+1] - x[i] + x[i-1]",
            "ey[i] = y[i+1] - y[i] + y[i-1]",
            "ez[i] = z[i+1] - z[i] + z[i-1]",
            // Potential/kinetic accumulation re-using the displacements.
            "pot[i] = pot[i] + ex[i] * ex[i] + ey[i] * ey[i] + ez[i] * ez[i]",
            "kin[i] = kin[i] + ex[i] + ey[i] + ez[i] - (pot[i] & 7)",
        ],
    )
    .expect("water statements parse");
    let mut program = b.build();
    gen::set_analyzability(&mut program, meta::WATER.analyzable, 0x3A7E);
    let data = program.initial_data();
    Workload { name: "Water", program, data, paper: meta::WATER }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_matches_table1() {
        let w = build(Scale::Tiny);
        assert!((w.program.static_analyzability() - 0.88).abs() < 0.05);
    }

    #[test]
    fn mix_is_addsub_heavy() {
        let w = build(Scale::Tiny);
        let ops: Vec<_> = w.program.nests()[0].body.iter().flat_map(|s| s.rhs.ops()).collect();
        let addsub = ops.iter().filter(|o| o.category() == dmcp_ir::op::OpCategory::AddSub).count();
        assert!(addsub * 2 > ops.len(), "Water should be add/sub heavy: {ops:?}");
    }

    #[test]
    fn displacements_are_reused() {
        let w = build(Scale::Tiny);
        let body = &w.program.nests()[0].body;
        // ex (index 3) written by statement 0, read by statements 3 and 4.
        let reads_ex = |k: usize| body[k].reads().iter().any(|r| r.array.index() == 3);
        assert!(reads_ex(3) && reads_ex(4));
    }
}
