//! Radix — Splash-2 integer radix sort.
//!
//! Digit extraction with shifts/masks (the suite's largest "other" share,
//! 22.3 %) and an indirectly-addressed histogram update — the paper's
//! prototypical inspector/executor case (a may-dependent write through a
//! computed index).

use crate::{gen, meta, Scale, Workload};
use dmcp_ir::ProgramBuilder;

/// Builds the Radix workload.
pub fn build(scale: Scale) -> Workload {
    let n = scale.n();
    let t = scale.timesteps();
    let buckets = 64u64;
    let mut b = ProgramBuilder::new();
    let key = b.array("key", &[n as u64], 8);
    b.array("digit", &[n as u64], 8);
    b.array("hist", &[buckets], 64);
    b.array("rank", &[n as u64], 64);
    b.nest(
        &[("t", 0, t), ("i", 0, n)],
        &[
            // Extract the current digit.
            "digit[i] = (key[i] >> 2) & 63",
            // Histogram increment through the computed digit (may-dep).
            "hist[digit[i]] = hist[digit[i]] + 1",
            // Rank accumulation mixing integer and arithmetic ops.
            "rank[i] = rank[i] + hist[digit[i]] * 2 + (key[i] & 3)",
        ],
    )
    .expect("radix statements parse");
    let mut program = b.build();
    gen::set_analyzability(&mut program, meta::RADIX.analyzable, 0x4AD1);
    let mut data = program.initial_data();
    data.fill(key, &gen::permutation(n as u64, 0x4AD2));
    // Inspector convergence (paper Section 4.5): `digit` is itself computed
    // by the kernel, so the inspector's view must come from an observed
    // first run — after one pass the digit array is stable across the
    // timing loop and the executor's resolved locations are exact.
    dmcp_ir::exec::run_sequential(&program, &mut data);
    Workload { name: "Radix", program, data, paper: meta::RADIX }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_matches_table1() {
        let w = build(Scale::Tiny);
        assert!((w.program.static_analyzability() - 0.842).abs() < 0.05);
    }

    #[test]
    fn has_indirect_write() {
        let w = build(Scale::Tiny);
        let indirect_lhs = w.program.nests()[0].body.iter().any(|s| !s.lhs.is_affine());
        assert!(indirect_lhs, "Radix needs a may-dependent histogram write");
    }

    #[test]
    fn shift_ops_present() {
        let w = build(Scale::Tiny);
        let ops: Vec<_> = w.program.nests()[0].body.iter().flat_map(|s| s.rhs.ops()).collect();
        assert!(ops.contains(&dmcp_ir::BinOp::Shr));
        assert!(ops.contains(&dmcp_ir::BinOp::And));
    }
}
