//! Radiosity — Splash-2 hierarchical radiosity.
//!
//! Form-factor gathers through a patch-interaction index array, with an
//! integer visibility mask contributing the suite's larger "other"-op
//! share (20.4 %).

use crate::{gen, meta, Scale, Workload};
use dmcp_ir::ProgramBuilder;

/// Builds the Radiosity workload.
pub fn build(scale: Scale) -> Workload {
    let n = scale.n();
    let t = scale.timesteps();
    let mut b = ProgramBuilder::new();
    for name in ["rad", "refl", "ff", "gat"] {
        b.array(name, &[n as u64], 64);
    }
    let vis = b.array("vis", &[n as u64], 8);
    let pidx = b.array("pidx", &[n as u64], 8);
    b.nest(
        &[("t", 0, t), ("i", 0, n)],
        &[
            // Gather radiosity from the interacting patch, masked by
            // visibility bits (reads the previous iteration's radiosity).
            "gat[i] = gat[i] + refl[i] * ff[i] * rad[pidx[i]] + (vis[i] & 15)",
            // Form-factor refinement from the gathered energy.
            "ff[i] = ff[i] * 3 + gat[i] * 2 - (vis[i] >> 2)",
        ],
    )
    .expect("radiosity statements parse");
    let mut program = b.build();
    gen::set_analyzability(&mut program, meta::RADIOSITY.analyzable, 0x4AD);
    let mut data = program.initial_data();
    data.fill(pidx, &gen::clustered_indices(n as u64, n as u64, 32, 0x4));
    data.fill(vis, &gen::random_indices(n as u64, 256, 0x4AF));
    Workload { name: "Radiosity", program, data, paper: meta::RADIOSITY }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_matches_table1() {
        let w = build(Scale::Tiny);
        assert!((w.program.static_analyzability() - 0.773).abs() < 0.05);
    }

    #[test]
    fn has_logical_ops() {
        let w = build(Scale::Tiny);
        let other = w.program.nests()[0]
            .body
            .iter()
            .flat_map(|s| s.rhs.ops())
            .filter(|o| o.category() == dmcp_ir::op::OpCategory::Other)
            .count();
        assert!(other >= 2);
    }
}
