//! Cholesky — Splash-2 sparse Cholesky factorisation.
//!
//! Compact update statements over a 2-D matrix whose operands cluster
//! around the written element: the paper notes Cholesky's "original network
//! footprint is small, which makes our approach less effective". Highest
//! analyzability of the suite (97.2 %) and a mul/div-heavy mix.

use crate::{gen, meta, Scale, Workload};
use dmcp_ir::ProgramBuilder;

/// Builds the Cholesky workload.
pub fn build(scale: Scale) -> Workload {
    let n = (scale.n() / 8).max(16);
    let t = scale.timesteps();
    let mut b = ProgramBuilder::new();
    b.array("A", &[n as u64, n as u64], 64);
    b.array("L", &[n as u64, n as u64], 64);
    b.array("D", &[n as u64], 64);
    b.nest(
        &[("t", 0, t), ("i", 0, n), ("j", 0, n)],
        &[
            // Rank-1 update against the current pivot column.
            "A[i][j] = A[i][j] - L[i][t] * L[j][t]",
            // Column scaling by the (read-only) pivot.
            "L[i][j] = A[i][j] / D[t]",
        ],
    )
    .expect("cholesky statements parse");
    let mut program = b.build();
    gen::set_analyzability(&mut program, meta::CHOLESKY.analyzable, 0xC401);
    let data = program.initial_data();
    Workload { name: "Cholesky", program, data, paper: meta::CHOLESKY }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_matches_table1() {
        let w = build(Scale::Tiny);
        assert!((w.program.static_analyzability() - 0.972).abs() < 0.05);
    }

    #[test]
    fn statements_are_compact() {
        let w = build(Scale::Tiny);
        for s in &w.program.nests()[0].body {
            assert!(s.reads().len() <= 4, "Cholesky statements stay compact");
        }
    }

    #[test]
    fn uses_division() {
        let w = build(Scale::Tiny);
        let has_div =
            w.program.nests()[0].body.iter().any(|s| s.rhs.ops().contains(&dmcp_ir::BinOp::Div));
        assert!(has_div);
    }
}
