//! Shared workload-generation utilities.

use dmcp_ir::Program;
use dmcp_mach::rng::Rng64;

/// Imposes an exact compile-time analyzability fraction on a program
/// (paper Table 1).
///
/// First every reference is marked analyzable — indirect references
/// included, modelling inspector/executor coverage — then a seeded random
/// subset of size `round((1 − target) · total)` is cleared, modelling the
/// references the paper's static analysis could not disambiguate.
pub fn set_analyzability(program: &mut Program, target: f64, seed: u64) {
    assert!((0.0..=1.0).contains(&target), "target must be a fraction");
    let mut total = 0usize;
    for nest in program.nests_mut() {
        for stmt in &mut nest.body {
            stmt.for_each_ref_mut(&mut |r| {
                r.analyzable = true;
                total += 1;
            });
        }
    }
    let unanalyzable = ((1.0 - target) * total as f64).round() as usize;
    let mut indices: Vec<usize> = (0..total).collect();
    Rng64::new(seed).shuffle(&mut indices);
    let chosen: std::collections::HashSet<usize> = indices.into_iter().take(unanalyzable).collect();
    let mut k = 0usize;
    for nest in program.nests_mut() {
        for stmt in &mut nest.body {
            stmt.for_each_ref_mut(&mut |r| {
                if chosen.contains(&k) {
                    r.analyzable = false;
                }
                k += 1;
            });
        }
    }
}

/// A seeded random permutation of `0..n` as `f64`s (for index arrays that
/// scatter accesses, e.g. Radix keys or MiniXyce column indices).
pub fn permutation(n: u64, seed: u64) -> Vec<f64> {
    let mut v: Vec<f64> = (0..n).map(|x| x as f64).collect();
    Rng64::new(seed).shuffle(&mut v);
    v
}

/// Seeded random indices in `0..bound` (with repetitions), e.g. neighbour
/// lists.
pub fn random_indices(n: u64, bound: u64, seed: u64) -> Vec<f64> {
    let mut rng = Rng64::new(seed);
    (0..n).map(|_| rng.gen_range(bound.max(1)) as f64).collect()
}

/// *Clustered* indices: mostly near `i` with occasional far jumps — the
/// access shape of spatial data structures (Barnes cells, MiniMD
/// neighbours).
pub fn clustered_indices(n: u64, bound: u64, spread: u64, seed: u64) -> Vec<f64> {
    let mut rng = Rng64::new(seed);
    (0..n)
        .map(|i| {
            if rng.gen_range(8) == 0 {
                rng.gen_range(bound.max(1)) as f64
            } else {
                let lo = i.saturating_sub(spread / 2);
                (lo + rng.gen_range(spread.max(1))).min(bound - 1) as f64
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmcp_ir::ProgramBuilder;

    fn program() -> Program {
        let mut b = ProgramBuilder::new();
        for n in ["A", "B", "C", "D"] {
            b.array(n, &[64], 8);
        }
        b.nest(&[("i", 0, 64)], &["A[i] = B[i] + C[i] + D[i]", "B[i] = A[i] * C[i]"]).unwrap();
        b.build()
    }

    #[test]
    fn analyzability_hits_target_exactly() {
        for target in [0.6, 0.75, 0.9, 1.0] {
            let mut p = program();
            set_analyzability(&mut p, target, 42);
            let got = p.static_analyzability();
            // 7 refs total: the achievable fractions are k/7.
            assert!((got - target).abs() <= 0.5 / 7.0 + 1e-9, "target {target}, got {got}");
        }
    }

    #[test]
    fn analyzability_is_deterministic() {
        let mut a = program();
        let mut b = program();
        set_analyzability(&mut a, 0.7, 7);
        set_analyzability(&mut b, 0.7, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_pick_different_refs() {
        let mut a = program();
        let mut b = program();
        set_analyzability(&mut a, 0.6, 1);
        set_analyzability(&mut b, 0.6, 2);
        // Same fraction, possibly different flags; at minimum not a panic.
        assert!((a.static_analyzability() - b.static_analyzability()).abs() < 1e-9);
    }

    #[test]
    fn permutation_is_a_bijection() {
        let p = permutation(100, 3);
        let mut seen = [false; 100];
        for &x in &p {
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn random_indices_stay_in_bounds() {
        for &x in &random_indices(200, 50, 9) {
            assert!((0.0..50.0).contains(&x));
        }
    }

    #[test]
    fn clustered_indices_are_mostly_local() {
        let idx = clustered_indices(1000, 1000, 16, 11);
        let local = idx.iter().enumerate().filter(|(i, &x)| (x - *i as f64).abs() <= 16.0).count();
        assert!(local > 700, "only {local}/1000 local");
        for &x in &idx {
            assert!((0.0..1000.0).contains(&x));
        }
    }
}
