//! Trace-driven manycore simulator for partitioned schedules.
//!
//! Executes a [`dmcp_core::Schedule`] on the machine model and reports the
//! paper's evaluation metrics: execution time, on-chip data movement,
//! network latency (average and maximum), L1/L2 behaviour, synchronization
//! overhead and energy.
//!
//! The timing model is analytical/trace-driven rather than cycle-accurate
//! (the paper's own detailed numbers come from a GEM5-based model): each
//! node has a clock; a subcomputation starts when its node is free and all
//! its producers' results have arrived (cross-node arrivals pay network
//! latency plus a synchronization cost); operand fetches walk the real
//! cache hierarchy (private L1s, SNUCA L2 banks, MCDRAM/DDR by memory mode)
//! and the real XY routes with utilisation-proportional contention.
//!
//! [`scenarios`] implements the paper's counterfactuals: the ideal-network
//! and ideal-data-analysis runs of Figure 17 and the S1–S4 single-metric
//! isolations of Figure 18 (each enforces one measured property of the
//! optimized run onto the default run, exactly as Section 6.2 describes).

pub mod cachesim;
pub mod engine;
pub mod error;
pub mod network;
pub mod report;
pub mod scenarios;
pub mod viz;

pub use cachesim::CacheSystem;
pub use engine::{Engine, SimOptions};
pub use error::SimError;
pub use network::Network;
pub use report::{EnergyBreakdown, SimReport};
pub use scenarios::{
    degradation_table, fault_sweep, run_program, run_schedules, run_schedules_degraded,
    DegradationRow, FaultSweepConfig, Scenario,
};
