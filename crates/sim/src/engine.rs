//! The execution engine: per-node clocks over a subcomputation schedule.

use crate::cachesim::{CacheSystem, ServedBy};
use crate::network::Network;
use crate::report::{EnergyBreakdown, SimReport};
use dmcp_core::{Layout, Operand, Schedule, Step};
use dmcp_ir::Program;
use dmcp_mach::{FaultState, NodeId};
use dmcp_mem::predictor::PredictorAccuracy;
use dmcp_mem::MemoryMode;
use std::collections::HashMap;

/// Simulation options, including the paper's counterfactual knobs.
#[derive(Clone, Copy, Debug)]
pub struct SimOptions {
    /// Memory mode in effect (flat / cache / hybrid MCDRAM).
    pub memory_mode: MemoryMode,
    /// Zero-latency network (Figure 17's "ideal network").
    pub ideal_network: bool,
    /// Enforce this L1 hit rate instead of the simulated one (Figure 18's
    /// S1: the default code with the optimized code's L1 pattern).
    pub l1_rate_override: Option<f64>,
    /// Scale the *timing* of every network trip (Figure 18's S2: the
    /// default code with the optimized code's data-movement costs).
    pub movement_scale: Option<f64>,
    /// Scale compute time (Figure 18's S3: the default code with the
    /// optimized code's degree of parallelism).
    pub compute_scale: Option<f64>,
    /// Extra synchronization cycles charged per statement instance
    /// (Figure 18's S4: the default code plus the optimized code's
    /// synchronization costs).
    pub extra_sync_per_statement: f64,
    /// Record per-statement-instance movement (needed by Figure 13).
    pub track_instances: bool,
}

impl Default for SimOptions {
    fn default() -> Self {
        Self {
            memory_mode: MemoryMode::Flat,
            ideal_network: false,
            l1_rate_override: None,
            movement_scale: None,
            compute_scale: None,
            extra_sync_per_statement: 0.0,
            track_instances: false,
        }
    }
}

/// Enforces a target hit rate deterministically: each access is declared a
/// hit iff doing so keeps the running rate at or below the target.
#[derive(Clone, Copy, Debug, Default)]
struct RateEnforcer {
    hits: u64,
    total: u64,
}

impl RateEnforcer {
    fn decide(&mut self, target: f64) -> bool {
        self.total += 1;
        let hit = (self.hits as f64 + 1.0) / self.total as f64 <= target;
        if hit {
            self.hits += 1;
        }
        hit
    }
}

/// The simulator state across one or more schedules.
pub struct Engine<'a> {
    program: &'a Program,
    layout: &'a Layout,
    opts: SimOptions,
    network: Network,
    caches: CacheSystem,
    node_time: HashMap<NodeId, f64>,
    finish: Vec<f64>,
    finish_node: Vec<NodeId>,
    sync_count: u64,
    sync_wait: f64,
    ops: u64,
    movement: u64,
    accuracy: PredictorAccuracy,
    l1_enforcer: RateEnforcer,
    per_instance: HashMap<(u32, u64), u64>,
    /// Forced stat counters when the L1 rate is overridden.
    forced_l1: Option<(u64, u64)>,
    max_finish: f64,
}

impl<'a> Engine<'a> {
    /// Creates an engine with cold caches and an idle network.
    pub fn new(program: &'a Program, layout: &'a Layout, opts: SimOptions) -> Self {
        let machine = layout.machine();
        let mut network = Network::new(machine.latency);
        network.zero_latency = opts.ideal_network;
        if let Some(s) = opts.movement_scale {
            network.distance_scale = s;
        }
        Self {
            program,
            layout,
            opts,
            network,
            caches: CacheSystem::new(machine, opts.memory_mode),
            node_time: HashMap::new(),
            finish: Vec::new(),
            finish_node: Vec::new(),
            sync_count: 0,
            sync_wait: 0.0,
            ops: 0,
            movement: 0,
            accuracy: PredictorAccuracy::default(),
            l1_enforcer: RateEnforcer::default(),
            per_instance: HashMap::new(),
            forced_l1: if opts.l1_rate_override.is_some() { Some((0, 0)) } else { None },
            max_finish: 0.0,
        }
    }

    /// [`Engine::new`] on a degraded machine: transfers route around
    /// faults (and pay for detours, drops and retries), and movement is
    /// counted over the links actually traversed. The caller should pass a
    /// layout that had the same fault state applied
    /// ([`Layout::apply_faults`]) so placement and timing agree on the
    /// degraded mesh.
    ///
    /// A trivial fault state leaves the engine bit-identical to
    /// [`Engine::new`].
    pub fn with_faults(
        program: &'a Program,
        layout: &'a Layout,
        opts: SimOptions,
        faults: FaultState,
    ) -> Self {
        let mut this = Self::new(program, layout, opts);
        this.network = Network::with_faults(layout.machine().latency, faults);
        this.network.zero_latency = opts.ideal_network;
        if let Some(s) = opts.movement_scale {
            this.network.distance_scale = s;
        }
        this
    }

    /// Executes one nest's schedule. Nests are separated by a global
    /// barrier (all node clocks advance to the global maximum).
    pub fn run(&mut self, schedule: &Schedule) {
        self.barrier();
        let base = self.finish.len();
        self.finish.resize(base + schedule.steps.len(), 0.0);
        self.finish_node.resize(base + schedule.steps.len(), NodeId::new(0, 0));
        for step in &schedule.steps {
            let t = self.run_step(step, base);
            self.finish[base + step.id.index()] = t;
            self.finish_node[base + step.id.index()] = step.node;
            if t > self.max_finish {
                self.max_finish = t;
            }
        }
    }

    fn barrier(&mut self) {
        let max = self.max_finish;
        for v in self.node_time.values_mut() {
            *v = max;
        }
    }

    /// Timing model: a node's *capacity* is consumed by service time only;
    /// waiting on remote producers does not occupy the core, because the
    /// generated code interleaves each node's own assigned iterations with
    /// pending subcomputations (paper Section 4.5, code generation). A step
    /// therefore starts at `max(node capacity frontier, producer arrivals)`.
    fn run_step(&mut self, step: &Step, base: usize) -> f64 {
        let machine = self.layout.machine();
        let lat = machine.latency;
        let node = step.node;
        let capacity = self.node_time.get(&node).copied().unwrap_or(0.0);
        let mut start = capacity;

        // Temp inputs carry partial results: a cross-node producer implies
        // a data transfer plus a synchronization.
        for input in &step.inputs {
            if let Operand::Temp(p) = input.operand {
                let pf = self.finish[base + p.index()];
                let pn = self.finish_node[base + p.index()];
                if pn == node {
                    start = start.max(pf);
                } else {
                    let links = self.network.path_len(pn, node);
                    let arrival = pf + self.network.transfer(pn, node) + lat.sync;
                    self.movement += u64::from(links);
                    self.track(step, links);
                    self.sync_count += 1;
                    if arrival > start {
                        self.sync_wait += arrival - start;
                        start = arrival;
                    }
                }
            }
        }
        // Wait arcs are ordering-only (anti/output deps, or flow deps whose
        // data arrives through the cache hierarchy): a cross-node arc costs
        // a synchronization flag, not a data transfer.
        for &p in &step.waits {
            let pf = self.finish[base + p.index()];
            let pn = self.finish_node[base + p.index()];
            if pn == node {
                start = start.max(pf);
            } else {
                let arrival = pf + self.request_latency(pn, node) + lat.sync;
                self.sync_count += 1;
                if arrival > start {
                    self.sync_wait += arrival - start;
                    start = arrival;
                }
            }
        }

        // Operand fetches: issued with bounded memory-level parallelism —
        // the step stalls for the slowest fetch or for the aggregate
        // latency divided by the MLP width, whichever is larger.
        const MLP: f64 = 4.0;
        let mut fetch_max = 0.0f64;
        let mut fetch_sum = 0.0f64;
        for input in &step.inputs {
            if let Operand::Elem(e) = input.operand {
                let f = self.fetch(step, node, e);
                fetch_max = fetch_max.max(f);
                fetch_sum += f;
            }
        }
        let fetch = fetch_max.max(fetch_sum / MLP);

        // Compute.
        let op_units: f64 = step.inputs.iter().map(|i| i.op.cost(lat.div_factor)).sum();
        self.ops += step.inputs.len() as u64;
        let mut compute = op_units * lat.op;
        if let Some(s) = self.opts.compute_scale {
            compute *= s;
        }
        // S4: the transplanted synchronization cost delays this statement's
        // completion the same way the optimized run pays it — as latency
        // that overlaps with the node's other work, not as throughput.
        let extra_sync =
            self.opts.extra_sync_per_statement * f64::from(u8::from(step.store.is_some()));

        // Store: the result travels to its home bank.
        let mut store_lat = 0.0;
        if let Some(st) = &step.store {
            self.caches.write(node, st.line, st.home);
            if st.home != node {
                let links = self.network.path_len(node, st.home);
                store_lat = self.network.transfer(node, st.home);
                self.movement += u64::from(links);
                self.track(step, links);
            }
        }

        // Latency (this step's completion) and occupancy (node throughput
        // consumed) are distinct: fetch latency overlaps with other work
        // thanks to non-blocking caches, so only issue slots occupy the
        // core; the step itself still finishes after its slowest fetch.
        let latency = fetch + compute + store_lat + extra_sync;
        let elems =
            step.inputs.iter().filter(|i| matches!(i.operand, Operand::Elem(_))).count() as f64;
        let occupancy = compute + store_lat.min(4.0) + 2.0 * elems + 1.0;
        self.node_time.insert(node, capacity + occupancy);
        start + latency
    }

    /// One operand fetch: walks the hierarchy and returns its latency.
    fn fetch(&mut self, step: &Step, node: NodeId, e: dmcp_core::ElemLoc) -> f64 {
        let machine = self.layout.machine();
        let lat = machine.latency;
        let info = self.layout.locate(self.program, e.array, e.elem, node);
        let home = info.home;

        // Predictor-accuracy bookkeeping: the compiler predicted on-chip iff
        // it placed the operand at the home bank (vs the controller).
        let predicted_onchip = e.believed == home;
        let check_prediction = e.believed == home || e.believed == info.mc;

        let mut served = self.caches.read(node, e.line, home, info.hot);
        if let Some(target) = self.opts.l1_rate_override {
            // S1: enforce a synthetic L1 pattern for timing & stats.
            let forced_hit = self.l1_enforcer.decide(target);
            let (h, m) = self.forced_l1.get_or_insert((0, 0));
            if forced_hit {
                *h += 1;
                served = ServedBy::L1;
            } else {
                *m += 1;
                if served == ServedBy::L1 {
                    served = ServedBy::L2;
                }
            }
        }
        if check_prediction {
            let actual_onchip = !matches!(served, ServedBy::Memory(_));
            self.accuracy.record(predicted_onchip, actual_onchip);
        }

        match served {
            ServedBy::L1 => lat.l1_hit,
            ServedBy::L2 => {
                let req = self.request_latency(node, home);
                let links = self.network.path_len(home, node);
                let back = self.network.transfer(home, node);
                self.movement += u64::from(links);
                self.track(step, links);
                lat.l1_hit + req + lat.l2_hit + back
            }
            ServedBy::Memory(tier) => {
                let mc = info.mc;
                let req = self.request_latency(node, home) + self.request_latency(home, mc);
                let mem = match tier {
                    dmcp_mem::MemTier::Fast => lat.fast_mem,
                    dmcp_mem::MemTier::Slow => lat.slow_mem,
                };
                // The controller forwards the critical line directly to the
                // requester (Eq. 1 measures distance-to-MC for misses); the
                // home-bank fill happens in the background and is not on
                // the requester's path.
                let links = self.network.path_len(mc, node);
                let back = self.network.transfer(mc, node);
                self.movement += u64::from(links);
                self.track(step, links);
                lat.l1_hit + req + lat.l2_hit + mem + back
            }
        }
    }

    /// Latency of a (small) request message: hop latency only — requests
    /// are not counted as data movement. On a faulty mesh the request
    /// follows the same detour route data would.
    fn request_latency(&self, src: NodeId, dst: NodeId) -> f64 {
        if self.opts.ideal_network {
            return 0.0;
        }
        let scale = self.opts.movement_scale.unwrap_or(1.0);
        f64::from(self.network.path_len(src, dst)) * self.layout.machine().latency.hop * scale
    }

    fn track(&mut self, step: &Step, links: u32) {
        if self.opts.track_instances {
            *self.per_instance.entry((step.tag.nest, step.tag.instance)).or_insert(0) +=
                u64::from(links);
        }
    }

    /// Per-node accumulated service time (capacity frontiers) — the node
    /// utilization view of the run.
    pub fn node_service(&self) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        self.node_time.iter().map(|(&n, &t)| (n, t))
    }

    /// The network state (per-link loads, latency statistics).
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Finalises the run and produces the report.
    pub fn report(&self) -> SimReport {
        let machine = self.layout.machine();
        let busiest = self.node_time.values().copied().fold(0.0, f64::max);
        let exec_time = self.max_finish.max(busiest);
        let (mut l1h, mut l1m, l2h, l2m, fast, slow) = self.caches.counters();
        if let Some((fh, fm)) = self.forced_l1 {
            l1h = fh;
            l1m = fm;
        }
        let e = machine.energy;
        let energy = EnergyBreakdown {
            link: e.link * self.movement as f64,
            cache: e.l1 * (l1h + l1m) as f64 + e.l2 * (l2h + l2m) as f64,
            memory: e.fast_mem * fast as f64 + e.slow_mem * slow as f64,
            op: e.op * self.ops as f64,
            background: e.static_per_cycle
                * exec_time
                * f64::from(machine.mesh.node_count() as u16),
        };
        SimReport {
            busiest_node: busiest,
            last_finish: self.max_finish,
            exec_time,
            movement: self.movement,
            messages: self.network.messages(),
            net_avg_latency: self.network.avg_latency(),
            net_max_latency: self.network.max_latency(),
            l1_hits: l1h,
            l1_misses: l1m,
            l2_hits: l2h,
            l2_misses: l2m,
            mem_fast: fast,
            mem_slow: slow,
            sync_count: self.sync_count,
            sync_wait: self.sync_wait,
            ops: self.ops,
            predictor_accuracy: self.accuracy.accuracy(),
            energy,
            per_instance_movement: self.per_instance.clone(),
            net_retries: self.network.retries(),
            net_detour_hops: self.network.detour_hops(),
            net_dropped_flits: self.network.dropped_flits(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmcp_core::{PartitionConfig, Partitioner};
    use dmcp_ir::ProgramBuilder;
    use dmcp_mach::MachineConfig;

    fn setup() -> (Program, MachineConfig, Partitioner) {
        let mut b = ProgramBuilder::new();
        for n in ["A", "B", "C", "D", "E"] {
            b.array(n, &[512], 64);
        }
        b.nest(&[("t", 0, 4), ("i", 0, 128)], &["A[i] = B[i] + C[i] + D[i] + E[i]"]).unwrap();
        let program = b.build();
        let machine = MachineConfig::knl_like();
        let part = Partitioner::new(&machine, &program, PartitionConfig::default());
        (program, machine, part)
    }

    fn simulate(
        program: &Program,
        part: &Partitioner,
        out: &dmcp_core::PartitionOutput,
        opts: SimOptions,
    ) -> SimReport {
        let mut engine = Engine::new(program, part.layout(), opts);
        for nest in &out.nests {
            engine.run(&nest.schedule);
        }
        engine.report()
    }

    #[test]
    fn optimized_beats_baseline_in_time_and_movement() {
        let (program, _, part) = setup();
        let data = program.initial_data();
        let opt = part.partition_with_data(&program, &data);
        let base = part.baseline(&program, &data);
        let r_opt = simulate(&program, &part, &opt, SimOptions::default());
        let r_base = simulate(&program, &part, &base, SimOptions::default());
        assert!(
            r_opt.movement < r_base.movement,
            "movement {} !< {}",
            r_opt.movement,
            r_base.movement
        );
        assert!(
            r_opt.exec_time < r_base.exec_time,
            "time {} !< {}",
            r_opt.exec_time,
            r_base.exec_time
        );
    }

    #[test]
    fn ideal_network_is_faster_still() {
        let (program, _, part) = setup();
        let data = program.initial_data();
        let opt = part.partition_with_data(&program, &data);
        let r = simulate(&program, &part, &opt, SimOptions::default());
        let r_ideal = simulate(
            &program,
            &part,
            &opt,
            SimOptions { ideal_network: true, ..SimOptions::default() },
        );
        assert!(r_ideal.exec_time < r.exec_time);
        assert_eq!(r_ideal.net_avg_latency, 0.0);
        // Movement (links) is a property of the schedule, not the timing.
        assert_eq!(r_ideal.movement, r.movement);
    }

    #[test]
    fn l1_override_enforces_rate() {
        let (program, _, part) = setup();
        let data = program.initial_data();
        let base = part.baseline(&program, &data);
        let r = simulate(
            &program,
            &part,
            &base,
            SimOptions { l1_rate_override: Some(0.8), ..SimOptions::default() },
        );
        assert!((r.l1_hit_rate() - 0.8).abs() < 0.02, "rate {}", r.l1_hit_rate());
    }

    #[test]
    fn movement_scale_speeds_up_network_time() {
        let (program, _, part) = setup();
        let data = program.initial_data();
        let base = part.baseline(&program, &data);
        let r1 = simulate(&program, &part, &base, SimOptions::default());
        let r2 = simulate(
            &program,
            &part,
            &base,
            SimOptions { movement_scale: Some(0.5), ..SimOptions::default() },
        );
        assert!(r2.exec_time < r1.exec_time);
    }

    #[test]
    fn sync_counted_for_split_schedules() {
        let (program, _, part) = setup();
        let data = program.initial_data();
        let opt = part.partition_with_data(&program, &data);
        let r = simulate(&program, &part, &opt, SimOptions::default());
        assert!(r.sync_count > 0, "split schedules should synchronize");
    }

    #[test]
    fn instance_tracking_records_movement() {
        let (program, _, part) = setup();
        let data = program.initial_data();
        let base = part.baseline(&program, &data);
        let r = simulate(
            &program,
            &part,
            &base,
            SimOptions { track_instances: true, ..SimOptions::default() },
        );
        assert!(!r.per_instance_movement.is_empty());
        let sum: u64 = r.per_instance_movement.values().sum();
        assert_eq!(sum, r.movement);
    }

    #[test]
    fn predictor_accuracy_is_measured() {
        let (program, _, part) = setup();
        let data = program.initial_data();
        let opt = part.partition_with_data(&program, &data);
        let r = simulate(&program, &part, &opt, SimOptions::default());
        assert!(r.predictor_accuracy > 0.0 && r.predictor_accuracy <= 1.0);
    }

    #[test]
    fn nests_are_separated_by_a_barrier() {
        // Two nests: the second's start must not precede the first's end.
        let mut b = dmcp_ir::ProgramBuilder::new();
        for n in ["A", "B"] {
            b.array(n, &[128], 64);
        }
        b.nest(&[("i", 0, 64)], &["A[i] = B[i] + 1"]).unwrap();
        b.nest(&[("i", 0, 64)], &["B[i] = A[i] * 2"]).unwrap();
        let p = b.build();
        let machine = MachineConfig::knl_like();
        let part = Partitioner::new(&machine, &p, PartitionConfig::default());
        let data = p.initial_data();
        let out = part.baseline(&p, &data);
        // Run nest 1 alone vs both: total time must be at least nest 1's.
        let mut e1 = Engine::new(&p, part.layout(), SimOptions::default());
        e1.run(&out.nests[0].schedule);
        let t1 = e1.report().exec_time;
        let mut e2 = Engine::new(&p, part.layout(), SimOptions::default());
        e2.run(&out.nests[0].schedule);
        e2.run(&out.nests[1].schedule);
        let t2 = e2.report().exec_time;
        assert!(t2 > t1, "second nest must add time after the barrier");
    }

    #[test]
    fn extra_sync_charge_slows_the_run() {
        let (program, _, part) = setup();
        let data = program.initial_data();
        let base = part.baseline(&program, &data);
        let plain = simulate(&program, &part, &base, SimOptions::default());
        let charged = simulate(
            &program,
            &part,
            &base,
            SimOptions { extra_sync_per_statement: 50.0, ..SimOptions::default() },
        );
        assert!(
            charged.exec_time > plain.exec_time,
            "S4's transplanted sync cost must slow the default run"
        );
    }

    #[test]
    fn energy_components_are_positive() {
        let (program, _, part) = setup();
        let data = program.initial_data();
        let opt = part.partition_with_data(&program, &data);
        let r = simulate(&program, &part, &opt, SimOptions::default());
        assert!(r.energy.link > 0.0);
        assert!(r.energy.cache > 0.0);
        assert!(r.energy.memory > 0.0);
        assert!(r.energy.op > 0.0);
        assert!(r.energy.background > 0.0);
    }
}
