//! End-to-end evaluation scenarios (Figures 17 & 18 of the paper).

use crate::engine::{Engine, SimOptions};
use crate::error::SimError;
use crate::report::SimReport;
use dmcp_core::partitioner::PredictorSpec;
use dmcp_core::{Layout, PartitionConfig, PartitionOutput, Partitioner, PlanOptions};
use dmcp_ir::Program;
use dmcp_mach::{FaultPlan, FaultState, MachineConfig};
use dmcp_mem::MemoryMode;

/// Which run to perform.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scenario {
    /// The full compiler approach.
    Optimized,
    /// The locality-optimized iteration-granularity default.
    Baseline,
    /// The optimized schedule on a zero-latency network (Figure 17).
    IdealNetwork,
    /// Perfect data analysis: every reference analyzable, near-perfect
    /// hit/miss knowledge (Figure 17).
    IdealAnalysis,
    /// Default code with the optimized code's L1 hit/miss pattern
    /// (Figure 18, S1).
    S1L1Pattern,
    /// Default code with the optimized code's data-movement costs
    /// (Figure 18, S2).
    S2Movement,
    /// Default code with the optimized code's degree of parallelism
    /// (Figure 18, S3).
    S3Parallelism,
    /// Default code plus the optimized code's synchronization costs
    /// (Figure 18, S4).
    S4Sync,
}

impl Scenario {
    /// All scenarios in presentation order.
    pub const ALL: [Scenario; 8] = [
        Scenario::Optimized,
        Scenario::Baseline,
        Scenario::IdealNetwork,
        Scenario::IdealAnalysis,
        Scenario::S1L1Pattern,
        Scenario::S2Movement,
        Scenario::S3Parallelism,
        Scenario::S4Sync,
    ];
}

/// Profile-guided partitioning: plans both the optimized and the default
/// schedules, simulates both on the profiling data, and keeps the faster
/// one — the same profile-driven methodology the paper's baseline and
/// data-to-MC mapping already use. This is the entry point the evaluation
/// uses for "our approach".
///
/// # Examples
///
/// ```
/// use dmcp_core::{PartitionConfig, Partitioner};
/// use dmcp_ir::ProgramBuilder;
/// use dmcp_mach::MachineConfig;
/// use dmcp_sim::scenarios::partition_guided;
/// use dmcp_sim::{run_schedules, SimOptions};
///
/// let mut b = ProgramBuilder::new();
/// for n in ["A", "B", "C"] {
///     b.array(n, &[128], 64);
/// }
/// b.nest(&[("i", 0, 64)], &["A[i] = B[i] + C[i]"]).unwrap();
/// let p = b.build();
/// let machine = MachineConfig::knl_like();
/// let part = Partitioner::new(&machine, &p, PartitionConfig::default());
/// let data = p.initial_data();
///
/// let chosen = partition_guided(&part, &p, &data, SimOptions::default());
/// let baseline = part.baseline(&p, &data);
/// let r_c = run_schedules(&p, part.layout(), &chosen, SimOptions::default());
/// let r_b = run_schedules(&p, part.layout(), &baseline, SimOptions::default());
/// assert!(r_c.exec_time <= r_b.exec_time);
/// ```
pub fn partition_guided(
    partitioner: &Partitioner,
    program: &Program,
    data: &dmcp_ir::program::DataStore,
    sim: SimOptions,
) -> PartitionOutput {
    let opt = partitioner.partition_with_data(program, data);
    let base = partitioner.baseline(program, data);
    let quiet = SimOptions { track_instances: false, ..sim };
    let r_opt = run_schedules(program, partitioner.layout(), &opt, quiet);
    let r_base = run_schedules(program, partitioner.layout(), &base, quiet);
    if r_opt.exec_time <= r_base.exec_time {
        opt
    } else {
        base
    }
}

/// Runs a set of partitioned nests through the engine.
pub fn run_schedules(
    program: &Program,
    layout: &Layout,
    parts: &PartitionOutput,
    opts: SimOptions,
) -> SimReport {
    let mut engine = Engine::new(program, layout, opts);
    for nest in &parts.nests {
        engine.run(&nest.schedule);
    }
    engine.report()
}

/// [`run_schedules`] on a degraded machine: transfers detour around the
/// faults and pay for drops/retries. With a trivial fault state this is
/// bit-identical to [`run_schedules`].
pub fn run_schedules_degraded(
    program: &Program,
    layout: &Layout,
    parts: &PartitionOutput,
    opts: SimOptions,
    faults: FaultState,
) -> SimReport {
    let mut engine = Engine::with_faults(program, layout, opts, faults);
    for nest in &parts.nests {
        engine.run(&nest.schedule);
    }
    engine.report()
}

/// Parameters of a graceful-degradation sweep.
#[derive(Clone, Debug)]
pub struct FaultSweepConfig {
    /// Dead-node fractions to sweep; by convention starts at `0.0`, the
    /// healthy reference row.
    pub dead_fracs: Vec<f64>,
    /// Per-link permanent-failure probability (non-zero rows only).
    pub link_fail: f64,
    /// Per-link probability of being transiently lossy (non-zero rows
    /// only).
    pub lossy: f64,
    /// Per-traversal drop probability of a lossy link.
    pub drop_prob: f64,
    /// Seed for fault-plan sampling and the drop schedule.
    pub seed: u64,
}

impl Default for FaultSweepConfig {
    fn default() -> Self {
        Self {
            dead_fracs: vec![0.0, 0.05, 0.10, 0.20],
            link_fail: 0.05,
            lossy: 0.05,
            drop_prob: 0.10,
            seed: 0x0D15_EA5E,
        }
    }
}

/// One row of the graceful-degradation table.
#[derive(Clone, Debug)]
pub struct DegradationRow {
    /// Requested dead-node fraction.
    pub dead_frac: f64,
    /// Nodes actually usable (live and connected).
    pub live_nodes: u32,
    /// Mean degree of subcomputation parallelism the partitioner achieved.
    pub parallelism: f64,
    /// The full simulation report.
    pub report: SimReport,
    /// `report.movement / healthy.movement` (1.0 on the healthy row).
    pub movement_ratio: f64,
    /// `report.net_avg_latency / healthy.net_avg_latency`.
    pub avg_latency_ratio: f64,
    /// `report.net_max_latency / healthy.net_max_latency`.
    pub max_latency_ratio: f64,
    /// `report.exec_time / healthy.exec_time`.
    pub exec_time_ratio: f64,
}

/// Sweeps fault severities over `program`: for each dead-node fraction a
/// fault plan is sampled, the program is re-partitioned in degraded mode
/// (dead banks re-homed, dead nodes excluded from every placement) and
/// simulated on the faulty network. Returns one row per fraction with all
/// degradation ratios computed against the first row.
///
/// The `0.0` fraction produces a genuinely healthy machine — its plan,
/// schedule and report are **bit-identical** to a run that never heard of
/// faults.
///
/// # Errors
///
/// [`SimError::Fault`] for unusable sampled plans and
/// [`SimError::Partition`] when degraded partitioning fails.
pub fn fault_sweep(
    program: &Program,
    machine: &MachineConfig,
    config: &PartitionConfig,
    sweep: &FaultSweepConfig,
) -> Result<Vec<DegradationRow>, SimError> {
    let sim = SimOptions::default();
    let mut rows: Vec<DegradationRow> = Vec::with_capacity(sweep.dead_fracs.len());
    for (i, &frac) in sweep.dead_fracs.iter().enumerate() {
        let plan = if frac == 0.0 {
            FaultPlan::healthy()
        } else {
            FaultPlan::random(
                machine.mesh,
                frac,
                sweep.link_fail,
                sweep.lossy,
                sweep.drop_prob,
                sweep.seed.wrapping_add(i as u64),
            )
        };
        let faults = FaultState::new(plan, machine.mesh)?;
        let live = faults.live_nodes().len() as u32;
        let partitioner = Partitioner::new_degraded(machine, program, config.clone(), &faults)?;
        let out = partitioner.try_partition(program)?;
        let report = run_schedules_degraded(program, partitioner.layout(), &out, sim, faults);
        let ratio = |x: f64, h: f64| if h == 0.0 { 1.0 } else { x / h };
        let (movement_ratio, avg_latency_ratio, max_latency_ratio, exec_time_ratio) =
            match rows.first() {
                None => (1.0, 1.0, 1.0, 1.0),
                Some(h) => (
                    ratio(report.movement as f64, h.report.movement as f64),
                    ratio(report.net_avg_latency, h.report.net_avg_latency),
                    ratio(report.net_max_latency, h.report.net_max_latency),
                    ratio(report.exec_time, h.report.exec_time),
                ),
            };
        rows.push(DegradationRow {
            dead_frac: frac,
            live_nodes: live,
            parallelism: out.avg_parallelism(),
            report,
            movement_ratio,
            avg_latency_ratio,
            max_latency_ratio,
            exec_time_ratio,
        });
    }
    Ok(rows)
}

/// Formats sweep rows as the degradation table the fault-sweep example and
/// README show.
pub fn degradation_table(rows: &[DegradationRow]) -> String {
    let mut s = String::from(
        "dead%  live  movement  mov x  avg-lat x  max-lat x  time x  par   retries  detours\n",
    );
    for r in rows {
        s.push_str(&format!(
            "{:>4.0}%  {:>4}  {:>8}  {:>5.2}  {:>9.2}  {:>9.2}  {:>6.2}  {:>4.1}  {:>7}  {:>7}\n",
            r.dead_frac * 100.0,
            r.live_nodes,
            r.report.movement,
            r.movement_ratio,
            r.avg_latency_ratio,
            r.max_latency_ratio,
            r.exec_time_ratio,
            r.parallelism,
            r.report.net_retries,
            r.report.net_detour_hops,
        ));
    }
    s
}

/// Plans and simulates `program` under a scenario, returning its report.
///
/// The counterfactual scenarios first perform the prerequisite optimized
/// and/or baseline runs to measure the metric being transplanted, exactly
/// following the methodology of paper Section 6.2.
pub fn run_program(
    program: &Program,
    data: &dmcp_ir::program::DataStore,
    machine: &MachineConfig,
    config: &PartitionConfig,
    memory_mode: MemoryMode,
    scenario: Scenario,
) -> SimReport {
    let partitioner = Partitioner::new(machine, program, config.clone());
    let data = data.clone();
    let sim = SimOptions { memory_mode, ..SimOptions::default() };

    let baseline = || partitioner.baseline(program, &data);
    let optimized = || partition_guided(&partitioner, program, &data, sim);

    match scenario {
        Scenario::Optimized => run_schedules(program, partitioner.layout(), &optimized(), sim),
        Scenario::Baseline => run_schedules(program, partitioner.layout(), &baseline(), sim),
        Scenario::IdealNetwork => {
            let opts = SimOptions { ideal_network: true, ..sim };
            run_schedules(program, partitioner.layout(), &optimized(), opts)
        }
        Scenario::IdealAnalysis => {
            let ideal_cfg = PartitionConfig {
                opts: PlanOptions { ideal_analysis: true, ..config.opts },
                predictor: PredictorSpec::L2Model,
                ..config.clone()
            };
            let ideal = Partitioner::new(machine, program, ideal_cfg);
            let out = partition_guided(&ideal, program, &data, sim);
            run_schedules(program, ideal.layout(), &out, sim)
        }
        Scenario::S1L1Pattern => {
            let r_opt = run_schedules(program, partitioner.layout(), &optimized(), sim);
            let opts = SimOptions { l1_rate_override: Some(r_opt.l1_hit_rate()), ..sim };
            run_schedules(program, partitioner.layout(), &baseline(), opts)
        }
        Scenario::S2Movement => {
            let r_opt = run_schedules(program, partitioner.layout(), &optimized(), sim);
            let r_base = run_schedules(program, partitioner.layout(), &baseline(), sim);
            let scale = if r_base.movement == 0 {
                1.0
            } else {
                (r_opt.movement as f64 / r_base.movement as f64).min(1.0)
            };
            let opts = SimOptions { movement_scale: Some(scale), ..sim };
            run_schedules(program, partitioner.layout(), &baseline(), opts)
        }
        Scenario::S3Parallelism => {
            let out = optimized();
            let dop = out.avg_parallelism().max(1.0);
            let opts = SimOptions { compute_scale: Some(1.0 / dop), ..sim };
            run_schedules(program, partitioner.layout(), &baseline(), opts)
        }
        Scenario::S4Sync => {
            let out = optimized();
            let extra = out.syncs_per_statement() * machine.latency.sync;
            let opts = SimOptions { extra_sync_per_statement: extra, ..sim };
            run_schedules(program, partitioner.layout(), &baseline(), opts)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmcp_ir::ProgramBuilder;

    fn program() -> Program {
        let mut b = ProgramBuilder::new();
        for n in ["A", "B", "C", "D", "E", "X", "Y"] {
            b.array(n, &[512], 64);
        }
        b.nest(
            &[("t", 0, 4), ("i", 0, 96)],
            &["A[i] = B[i] + C[i] + D[i] + E[i]", "X[i] = Y[i] + C[i]"],
        )
        .unwrap();
        b.build()
    }

    #[test]
    fn figure_17_ordering_holds() {
        let p = program();
        let machine = MachineConfig::knl_like();
        let cfg = PartitionConfig::default();
        let base = run_program(
            &p,
            &p.initial_data(),
            &machine,
            &cfg,
            MemoryMode::Flat,
            Scenario::Baseline,
        );
        let opt = run_program(
            &p,
            &p.initial_data(),
            &machine,
            &cfg,
            MemoryMode::Flat,
            Scenario::Optimized,
        );
        let ideal_net = run_program(
            &p,
            &p.initial_data(),
            &machine,
            &cfg,
            MemoryMode::Flat,
            Scenario::IdealNetwork,
        );
        assert!(opt.exec_time < base.exec_time, "optimized should beat baseline");
        assert!(ideal_net.exec_time < opt.exec_time, "ideal network should beat optimized");
    }

    #[test]
    fn ideal_analysis_at_least_matches_optimized_movement() {
        let p = program();
        let machine = MachineConfig::knl_like();
        let cfg = PartitionConfig::default();
        let opt = run_program(
            &p,
            &p.initial_data(),
            &machine,
            &cfg,
            MemoryMode::Flat,
            Scenario::Optimized,
        );
        let ideal = run_program(
            &p,
            &p.initial_data(),
            &machine,
            &cfg,
            MemoryMode::Flat,
            Scenario::IdealAnalysis,
        );
        // Perfect analysis never plans *worse* movement than the predictor-
        // driven compiler (up to balance-rule noise: allow 2 %).
        assert!(
            ideal.movement as f64 <= opt.movement as f64 * 1.02,
            "ideal {} vs opt {}",
            ideal.movement,
            opt.movement
        );
    }

    #[test]
    fn isolation_scenarios_land_between_baseline_and_optimized() {
        let p = program();
        let machine = MachineConfig::knl_like();
        let cfg = PartitionConfig::default();
        let base = run_program(
            &p,
            &p.initial_data(),
            &machine,
            &cfg,
            MemoryMode::Flat,
            Scenario::Baseline,
        );
        for s in [Scenario::S1L1Pattern, Scenario::S2Movement, Scenario::S3Parallelism] {
            let r = run_program(&p, &p.initial_data(), &machine, &cfg, MemoryMode::Flat, s);
            assert!(
                r.exec_time <= base.exec_time * 1.001,
                "{s:?} should not be slower than baseline: {} vs {}",
                r.exec_time,
                base.exec_time
            );
        }
        // S4 only *adds* costs to the baseline.
        let s4 =
            run_program(&p, &p.initial_data(), &machine, &cfg, MemoryMode::Flat, Scenario::S4Sync);
        assert!(s4.exec_time >= base.exec_time);
    }

    #[test]
    fn fault_sweep_healthy_row_is_bit_identical_to_a_faultless_run() {
        let p = program();
        let machine = MachineConfig::knl_like();
        let cfg = PartitionConfig::default();
        let rows = fault_sweep(&p, &machine, &cfg, &FaultSweepConfig::default()).unwrap();
        assert_eq!(rows.len(), 4);
        // Reference run through the original fault-free code paths.
        let part = Partitioner::new(&machine, &p, cfg);
        let out = part.partition(&p);
        let healthy = run_schedules(&p, part.layout(), &out, SimOptions::default());
        assert_eq!(rows[0].report, healthy, "0% row must be bit-identical to healthy");
        assert_eq!(rows[0].movement_ratio, 1.0);
        assert_eq!(rows[0].report.net_retries, 0);
        assert_eq!(rows[0].report.net_detour_hops, 0);
    }

    #[test]
    fn fault_sweep_degrades_gracefully() {
        let p = program();
        let machine = MachineConfig::knl_like();
        let cfg = PartitionConfig::default();
        let rows = fault_sweep(&p, &machine, &cfg, &FaultSweepConfig::default()).unwrap();
        for r in &rows[1..] {
            assert!(r.live_nodes < 36, "faulty rows lose nodes");
            assert!(r.report.exec_time > 0.0, "degraded runs still complete");
            assert!(r.parallelism >= 1.0);
        }
        // The sweep is deterministic end to end.
        let again = fault_sweep(&p, &machine, &cfg, &FaultSweepConfig::default()).unwrap();
        for (a, b) in rows.iter().zip(&again) {
            assert_eq!(a.report, b.report);
        }
        let table = degradation_table(&rows);
        assert_eq!(table.lines().count(), 5);
        assert!(table.contains("dead%"));
    }
}
