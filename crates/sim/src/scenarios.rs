//! End-to-end evaluation scenarios (Figures 17 & 18 of the paper).

use crate::engine::{Engine, SimOptions};
use crate::report::SimReport;
use dmcp_core::{
    Layout, PartitionConfig, PartitionOutput, Partitioner, PlanOptions,
};
use dmcp_core::partitioner::PredictorSpec;
use dmcp_ir::Program;
use dmcp_mach::MachineConfig;
use dmcp_mem::MemoryMode;

/// Which run to perform.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scenario {
    /// The full compiler approach.
    Optimized,
    /// The locality-optimized iteration-granularity default.
    Baseline,
    /// The optimized schedule on a zero-latency network (Figure 17).
    IdealNetwork,
    /// Perfect data analysis: every reference analyzable, near-perfect
    /// hit/miss knowledge (Figure 17).
    IdealAnalysis,
    /// Default code with the optimized code's L1 hit/miss pattern
    /// (Figure 18, S1).
    S1L1Pattern,
    /// Default code with the optimized code's data-movement costs
    /// (Figure 18, S2).
    S2Movement,
    /// Default code with the optimized code's degree of parallelism
    /// (Figure 18, S3).
    S3Parallelism,
    /// Default code plus the optimized code's synchronization costs
    /// (Figure 18, S4).
    S4Sync,
}

impl Scenario {
    /// All scenarios in presentation order.
    pub const ALL: [Scenario; 8] = [
        Scenario::Optimized,
        Scenario::Baseline,
        Scenario::IdealNetwork,
        Scenario::IdealAnalysis,
        Scenario::S1L1Pattern,
        Scenario::S2Movement,
        Scenario::S3Parallelism,
        Scenario::S4Sync,
    ];
}

/// Profile-guided partitioning: plans both the optimized and the default
/// schedules, simulates both on the profiling data, and keeps the faster
/// one — the same profile-driven methodology the paper's baseline and
/// data-to-MC mapping already use. This is the entry point the evaluation
/// uses for "our approach".
///
/// # Examples
///
/// ```
/// use dmcp_core::{PartitionConfig, Partitioner};
/// use dmcp_ir::ProgramBuilder;
/// use dmcp_mach::MachineConfig;
/// use dmcp_sim::scenarios::partition_guided;
/// use dmcp_sim::{run_schedules, SimOptions};
///
/// let mut b = ProgramBuilder::new();
/// for n in ["A", "B", "C"] {
///     b.array(n, &[128], 64);
/// }
/// b.nest(&[("i", 0, 64)], &["A[i] = B[i] + C[i]"]).unwrap();
/// let p = b.build();
/// let machine = MachineConfig::knl_like();
/// let part = Partitioner::new(&machine, &p, PartitionConfig::default());
/// let data = p.initial_data();
///
/// let chosen = partition_guided(&part, &p, &data, SimOptions::default());
/// let baseline = part.baseline(&p, &data);
/// let r_c = run_schedules(&p, part.layout(), &chosen, SimOptions::default());
/// let r_b = run_schedules(&p, part.layout(), &baseline, SimOptions::default());
/// assert!(r_c.exec_time <= r_b.exec_time);
/// ```
pub fn partition_guided(
    partitioner: &Partitioner,
    program: &Program,
    data: &dmcp_ir::program::DataStore,
    sim: SimOptions,
) -> PartitionOutput {
    let opt = partitioner.partition_with_data(program, data);
    let base = partitioner.baseline(program, data);
    let quiet = SimOptions { track_instances: false, ..sim };
    let r_opt = run_schedules(program, partitioner.layout(), &opt, quiet);
    let r_base = run_schedules(program, partitioner.layout(), &base, quiet);
    if r_opt.exec_time <= r_base.exec_time {
        opt
    } else {
        base
    }
}

/// Runs a set of partitioned nests through the engine.
pub fn run_schedules(
    program: &Program,
    layout: &Layout,
    parts: &PartitionOutput,
    opts: SimOptions,
) -> SimReport {
    let mut engine = Engine::new(program, layout, opts);
    for nest in &parts.nests {
        engine.run(&nest.schedule);
    }
    engine.report()
}

/// Plans and simulates `program` under a scenario, returning its report.
///
/// The counterfactual scenarios first perform the prerequisite optimized
/// and/or baseline runs to measure the metric being transplanted, exactly
/// following the methodology of paper Section 6.2.
pub fn run_program(
    program: &Program,
    data: &dmcp_ir::program::DataStore,
    machine: &MachineConfig,
    config: &PartitionConfig,
    memory_mode: MemoryMode,
    scenario: Scenario,
) -> SimReport {
    let partitioner = Partitioner::new(machine, program, config.clone());
    let data = data.clone();
    let sim = SimOptions { memory_mode, ..SimOptions::default() };

    let baseline = || partitioner.baseline(program, &data);
    let optimized = || partition_guided(&partitioner, program, &data, sim);

    match scenario {
        Scenario::Optimized => run_schedules(program, partitioner.layout(), &optimized(), sim),
        Scenario::Baseline => run_schedules(program, partitioner.layout(), &baseline(), sim),
        Scenario::IdealNetwork => {
            let opts = SimOptions { ideal_network: true, ..sim };
            run_schedules(program, partitioner.layout(), &optimized(), opts)
        }
        Scenario::IdealAnalysis => {
            let ideal_cfg = PartitionConfig {
                opts: PlanOptions { ideal_analysis: true, ..config.opts },
                predictor: PredictorSpec::L2Model,
                ..config.clone()
            };
            let ideal = Partitioner::new(machine, program, ideal_cfg);
            let out = partition_guided(&ideal, program, &data, sim);
            run_schedules(program, ideal.layout(), &out, sim)
        }
        Scenario::S1L1Pattern => {
            let r_opt = run_schedules(program, partitioner.layout(), &optimized(), sim);
            let opts = SimOptions { l1_rate_override: Some(r_opt.l1_hit_rate()), ..sim };
            run_schedules(program, partitioner.layout(), &baseline(), opts)
        }
        Scenario::S2Movement => {
            let r_opt = run_schedules(program, partitioner.layout(), &optimized(), sim);
            let r_base = run_schedules(program, partitioner.layout(), &baseline(), sim);
            let scale = if r_base.movement == 0 {
                1.0
            } else {
                (r_opt.movement as f64 / r_base.movement as f64).min(1.0)
            };
            let opts = SimOptions { movement_scale: Some(scale), ..sim };
            run_schedules(program, partitioner.layout(), &baseline(), opts)
        }
        Scenario::S3Parallelism => {
            let out = optimized();
            let dop = out.avg_parallelism().max(1.0);
            let opts = SimOptions { compute_scale: Some(1.0 / dop), ..sim };
            run_schedules(program, partitioner.layout(), &baseline(), opts)
        }
        Scenario::S4Sync => {
            let out = optimized();
            let extra = out.syncs_per_statement() * machine.latency.sync;
            let opts = SimOptions { extra_sync_per_statement: extra, ..sim };
            run_schedules(program, partitioner.layout(), &baseline(), opts)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmcp_ir::ProgramBuilder;

    fn program() -> Program {
        let mut b = ProgramBuilder::new();
        for n in ["A", "B", "C", "D", "E", "X", "Y"] {
            b.array(n, &[512], 64);
        }
        b.nest(
            &[("t", 0, 4), ("i", 0, 96)],
            &["A[i] = B[i] + C[i] + D[i] + E[i]", "X[i] = Y[i] + C[i]"],
        )
        .unwrap();
        b.build()
    }

    #[test]
    fn figure_17_ordering_holds() {
        let p = program();
        let machine = MachineConfig::knl_like();
        let cfg = PartitionConfig::default();
        let base = run_program(&p, &p.initial_data(), &machine, &cfg, MemoryMode::Flat, Scenario::Baseline);
        let opt = run_program(&p, &p.initial_data(), &machine, &cfg, MemoryMode::Flat, Scenario::Optimized);
        let ideal_net =
            run_program(&p, &p.initial_data(), &machine, &cfg, MemoryMode::Flat, Scenario::IdealNetwork);
        assert!(opt.exec_time < base.exec_time, "optimized should beat baseline");
        assert!(ideal_net.exec_time < opt.exec_time, "ideal network should beat optimized");
    }

    #[test]
    fn ideal_analysis_at_least_matches_optimized_movement() {
        let p = program();
        let machine = MachineConfig::knl_like();
        let cfg = PartitionConfig::default();
        let opt = run_program(&p, &p.initial_data(), &machine, &cfg, MemoryMode::Flat, Scenario::Optimized);
        let ideal =
            run_program(&p, &p.initial_data(), &machine, &cfg, MemoryMode::Flat, Scenario::IdealAnalysis);
        // Perfect analysis never plans *worse* movement than the predictor-
        // driven compiler (up to balance-rule noise: allow 2 %).
        assert!(
            ideal.movement as f64 <= opt.movement as f64 * 1.02,
            "ideal {} vs opt {}",
            ideal.movement,
            opt.movement
        );
    }

    #[test]
    fn isolation_scenarios_land_between_baseline_and_optimized() {
        let p = program();
        let machine = MachineConfig::knl_like();
        let cfg = PartitionConfig::default();
        let base = run_program(&p, &p.initial_data(), &machine, &cfg, MemoryMode::Flat, Scenario::Baseline);
        for s in [Scenario::S1L1Pattern, Scenario::S2Movement, Scenario::S3Parallelism] {
            let r = run_program(&p, &p.initial_data(), &machine, &cfg, MemoryMode::Flat, s);
            assert!(
                r.exec_time <= base.exec_time * 1.001,
                "{s:?} should not be slower than baseline: {} vs {}",
                r.exec_time,
                base.exec_time
            );
        }
        // S4 only *adds* costs to the baseline.
        let s4 = run_program(&p, &p.initial_data(), &machine, &cfg, MemoryMode::Flat, Scenario::S4Sync);
        assert!(s4.exec_time >= base.exec_time);
    }
}
