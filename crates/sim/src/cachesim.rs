//! The simulated cache/memory hierarchy: private L1s, SNUCA L2 banks and
//! the memory system (MCDRAM/DDR according to the memory mode).

use dmcp_mach::{MachineConfig, NodeId};
use dmcp_mem::{Cache, LineAddr, MemTier, MemoryMode, MemorySystem};
use std::collections::HashMap;

/// Where an access was served from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServedBy {
    /// The requester's private L1.
    L1,
    /// The line's home L2 bank.
    L2,
    /// Memory, through the given tier.
    Memory(MemTier),
}

/// The full cache hierarchy state.
#[derive(Clone, Debug)]
pub struct CacheSystem {
    l1_sets: u32,
    l1_ways: u32,
    l2_sets: u32,
    l2_ways: u32,
    l1: HashMap<NodeId, Cache>,
    l2: HashMap<NodeId, Cache>,
    memory: MemorySystem,
    l1_hits: u64,
    l1_misses: u64,
    l2_hits: u64,
    l2_misses: u64,
    mem_fast: u64,
    mem_slow: u64,
}

impl CacheSystem {
    /// Creates a cold hierarchy for `machine` under the given memory mode.
    /// MCDRAM capacity (for the cache/hybrid modes) is taken as 8× the
    /// aggregate L2 — the same capacity ratio class as the real machine.
    pub fn new(machine: &MachineConfig, mode: MemoryMode) -> Self {
        let total_l2_lines =
            (machine.l2_bank_bytes / machine.cache_line) * machine.mesh.node_count();
        Self {
            l1_sets: machine.l1_sets(),
            l1_ways: machine.l1_ways,
            l2_sets: machine.l2_sets(),
            l2_ways: machine.l2_ways,
            l1: HashMap::new(),
            l2: HashMap::new(),
            memory: MemorySystem::new(mode, total_l2_lines * 8),
            l1_hits: 0,
            l1_misses: 0,
            l2_hits: 0,
            l2_misses: 0,
            mem_fast: 0,
            mem_slow: 0,
        }
    }

    /// Performs a read of `line` by `node`, with the line's home bank at
    /// `home`; `hot` marks flat-placement in fast memory. Fills caches on
    /// the way back. Returns where the data came from.
    pub fn read(&mut self, node: NodeId, line: LineAddr, home: NodeId, hot: bool) -> ServedBy {
        let l1 = self.l1.entry(node).or_insert_with(|| Cache::new(self.l1_sets, self.l1_ways));
        if !l1.access(line).is_miss() {
            self.l1_hits += 1;
            return ServedBy::L1;
        }
        self.l1_misses += 1;
        let l2 = self.l2.entry(home).or_insert_with(|| Cache::new(self.l2_sets, self.l2_ways));
        if !l2.access(line).is_miss() {
            self.l2_hits += 1;
            return ServedBy::L2;
        }
        self.l2_misses += 1;
        let tier = self.memory.serve(line, hot);
        match tier {
            MemTier::Fast => self.mem_fast += 1,
            MemTier::Slow => self.mem_slow += 1,
        }
        ServedBy::Memory(tier)
    }

    /// Performs a write of `line` by `node` into its home bank
    /// (write-allocate in both the writer's L1 and the home L2).
    pub fn write(&mut self, node: NodeId, line: LineAddr, home: NodeId) {
        self.l1.entry(node).or_insert_with(|| Cache::new(self.l1_sets, self.l1_ways)).access(line);
        self.l2.entry(home).or_insert_with(|| Cache::new(self.l2_sets, self.l2_ways)).access(line);
    }

    /// `true` if `line` currently sits in `home`'s L2 bank (used to measure
    /// the compile-time predictor's accuracy).
    pub fn l2_contains(&self, home: NodeId, line: LineAddr) -> bool {
        self.l2.get(&home).is_some_and(|c| c.contains(line))
    }

    /// L1 hit rate so far.
    pub fn l1_hit_rate(&self) -> f64 {
        let total = self.l1_hits + self.l1_misses;
        if total == 0 {
            0.0
        } else {
            self.l1_hits as f64 / total as f64
        }
    }

    /// L2 miss rate (fraction of L2 lookups that went to memory).
    pub fn l2_miss_rate(&self) -> f64 {
        let total = self.l2_hits + self.l2_misses;
        if total == 0 {
            0.0
        } else {
            self.l2_misses as f64 / total as f64
        }
    }

    /// Raw counters: `(l1_hits, l1_misses, l2_hits, l2_misses, fast, slow)`.
    pub fn counters(&self) -> (u64, u64, u64, u64, u64, u64) {
        (self.l1_hits, self.l1_misses, self.l2_hits, self.l2_misses, self.mem_fast, self.mem_slow)
    }

    /// MCDRAM-cache hit rate (cache/hybrid memory modes only).
    pub fn mcdram_hit_rate(&self) -> f64 {
        self.memory.mcdram_hit_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> CacheSystem {
        CacheSystem::new(&MachineConfig::knl_like(), MemoryMode::Flat)
    }

    fn n(x: u16, y: u16) -> NodeId {
        NodeId::new(x, y)
    }

    #[test]
    fn cold_read_goes_to_memory_then_warms() {
        let mut s = sys();
        let line = LineAddr::new(42);
        assert_eq!(s.read(n(0, 0), line, n(3, 3), false), ServedBy::Memory(MemTier::Slow));
        // Second read from same node: L1 hit.
        assert_eq!(s.read(n(0, 0), line, n(3, 3), false), ServedBy::L1);
        // Read from another node: home L2 now holds it.
        assert_eq!(s.read(n(5, 5), line, n(3, 3), false), ServedBy::L2);
    }

    #[test]
    fn hot_lines_come_from_fast_memory() {
        let mut s = sys();
        assert_eq!(
            s.read(n(0, 0), LineAddr::new(7), n(1, 1), true),
            ServedBy::Memory(MemTier::Fast)
        );
        assert_eq!(s.counters().4, 1);
    }

    #[test]
    fn writes_populate_both_levels() {
        let mut s = sys();
        let line = LineAddr::new(9);
        s.write(n(2, 2), line, n(4, 4));
        assert!(s.l2_contains(n(4, 4), line));
        assert_eq!(s.read(n(2, 2), line, n(4, 4), false), ServedBy::L1);
    }

    #[test]
    fn l1_capacity_evicts() {
        let mut s = sys();
        let machine = MachineConfig::knl_like();
        let cap = machine.l1_lines();
        // Touch 2× the L1 capacity of distinct lines from one node.
        for i in 0..u64::from(cap) * 2 {
            s.read(n(0, 0), LineAddr::new(i), n(1, 1), false);
        }
        // The very first line is gone from L1 but still in the L2 bank.
        assert_ne!(s.read(n(0, 0), LineAddr::new(0), n(1, 1), false), ServedBy::L1);
    }

    #[test]
    fn hit_rates_accumulate() {
        let mut s = sys();
        let line = LineAddr::new(1);
        s.read(n(0, 0), line, n(0, 1), false);
        s.read(n(0, 0), line, n(0, 1), false);
        assert!((s.l1_hit_rate() - 0.5).abs() < 1e-12);
        assert!(s.l2_miss_rate() > 0.0);
    }

    #[test]
    fn cache_mode_uses_mcdram_cache() {
        let mut s = CacheSystem::new(&MachineConfig::knl_like(), MemoryMode::Cache);
        let line = LineAddr::new(5);
        assert_eq!(s.read(n(0, 0), line, n(1, 1), false), ServedBy::Memory(MemTier::Slow));
        // Evict from L1+L2 is hard; instead read a conflicting line set —
        // simply verify the mcdram rate is tracked.
        let _ = s.mcdram_hit_rate();
    }
}
