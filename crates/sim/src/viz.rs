//! Text-mode visualisation of a simulated run: node-utilization and
//! link-congestion heatmaps over the mesh, the views the paper's Figures 13
//! and 19 summarise into bars.

use crate::engine::Engine;
use dmcp_mach::{Mesh, NodeId};
use std::collections::HashMap;
use std::fmt::Write;

/// Intensity glyphs from idle to saturated.
const SHADES: [char; 7] = ['.', ':', '-', '=', '+', '#', '@'];

fn shade(value: f64, max: f64) -> char {
    if max <= 0.0 {
        return SHADES[0];
    }
    let idx = ((value / max) * (SHADES.len() - 1) as f64).round() as usize;
    SHADES[idx.min(SHADES.len() - 1)]
}

/// Renders per-node service time (compute pressure) as a mesh heatmap.
///
/// # Examples
///
/// ```
/// use dmcp_mach::Mesh;
/// use dmcp_sim::viz::node_heatmap_from;
///
/// let art = node_heatmap_from(Mesh::new(3, 2), [((0, 0).into(), 10.0)].into_iter());
/// assert!(art.contains('@'));
/// ```
pub fn node_heatmap_from(mesh: Mesh, service: impl Iterator<Item = (NodeId, f64)>) -> String {
    let map: HashMap<NodeId, f64> = service.collect();
    let max = map.values().copied().fold(0.0, f64::max);
    let mut out = String::new();
    for y in 0..mesh.rows() {
        for x in 0..mesh.cols() {
            let v = map.get(&NodeId::new(x, y)).copied().unwrap_or(0.0);
            let _ = write!(out, " {}", shade(v, max));
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(out, "(node service time; '@' = busiest, '.' = idle, max {max:.0})");
    out
}

/// Renders per-node service time of a finished engine run.
pub fn node_heatmap(engine: &Engine<'_>, mesh: Mesh) -> String {
    node_heatmap_from(mesh, engine.node_service())
}

/// Renders horizontal/vertical link loads around each node: for every tile
/// the glyph shows the hottest link touching it.
pub fn link_heatmap(engine: &Engine<'_>, mesh: Mesh) -> String {
    let mut per_node: HashMap<NodeId, f64> = HashMap::new();
    let mut max = 0.0f64;
    for (link, load) in engine.network().link_loads() {
        for n in [link.src(), link.dst()] {
            let e = per_node.entry(n).or_insert(0.0);
            *e = e.max(load);
        }
        max = max.max(load);
    }
    let mut out = String::new();
    for y in 0..mesh.rows() {
        for x in 0..mesh.cols() {
            let v = per_node.get(&NodeId::new(x, y)).copied().unwrap_or(0.0);
            let _ = write!(out, " {}", shade(v, max));
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(out, "(hottest adjacent link load; max {max:.1})");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmcp_core::{PartitionConfig, Partitioner};
    use dmcp_ir::ProgramBuilder;
    use dmcp_mach::MachineConfig;

    #[test]
    fn heatmaps_render_for_a_real_run() {
        let mut b = ProgramBuilder::new();
        for n in ["A", "B", "C"] {
            b.array(n, &[256], 64);
        }
        b.nest(&[("i", 0, 128)], &["A[i] = B[i] + C[i]"]).unwrap();
        let p = b.build();
        let machine = MachineConfig::knl_like();
        let part = Partitioner::new(&machine, &p, PartitionConfig::default());
        let out = part.partition(&p);
        let mut engine =
            crate::engine::Engine::new(&p, part.layout(), crate::engine::SimOptions::default());
        for nest in &out.nests {
            engine.run(&nest.schedule);
        }
        let nodes = node_heatmap(&engine, machine.mesh);
        let links = link_heatmap(&engine, machine.mesh);
        // 6 rows of 6 glyphs plus a caption.
        assert_eq!(nodes.lines().count(), 7);
        assert_eq!(links.lines().count(), 7);
        assert!(nodes.contains('@'), "some node must be busiest:\n{nodes}");
    }

    #[test]
    fn shade_extremes() {
        assert_eq!(shade(0.0, 10.0), '.');
        assert_eq!(shade(10.0, 10.0), '@');
        assert_eq!(shade(5.0, 0.0), '.');
    }
}
