//! Typed errors for fault-aware simulation.

use dmcp_core::PartitionError;
use dmcp_mach::{FaultError, RouteError};
use std::fmt;

/// Errors running the simulator against a degraded machine.
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// A transfer was requested between nodes the faults disconnected.
    Route(RouteError),
    /// The fault plan failed validation against the mesh.
    Fault(FaultError),
    /// Degraded-mode partitioning failed.
    Partition(PartitionError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Route(e) => write!(f, "unroutable transfer: {e}"),
            SimError::Fault(e) => write!(f, "invalid fault plan: {e}"),
            SimError::Partition(e) => write!(f, "degraded partitioning failed: {e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Route(e) => Some(e),
            SimError::Fault(e) => Some(e),
            SimError::Partition(e) => Some(e),
        }
    }
}

impl From<RouteError> for SimError {
    fn from(e: RouteError) -> Self {
        SimError::Route(e)
    }
}

impl From<FaultError> for SimError {
    fn from(e: FaultError) -> Self {
        SimError::Fault(e)
    }
}

impl From<PartitionError> for SimError {
    fn from(e: PartitionError) -> Self {
        SimError::Partition(e)
    }
}
