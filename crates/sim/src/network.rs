//! On-chip network model: XY routing, per-link utilisation and contention.
//!
//! Latency of one transfer = `hops × hop_latency + Σ contention · load(l)`
//! over the links `l` of the XY route, where `load` is an exponentially
//! decayed traversal count — a queueing-style approximation that makes hot
//! links slower, which is what the paper's Figure 19 (average/maximum
//! network latency) measures.

use crate::error::SimError;
use dmcp_mach::{fault, routing, FaultState, LatencyModel, Link, NodeId};
use std::collections::HashMap;

/// Decay applied to a link's load on each traversal (the effective window
/// is ~1/(1-decay) recent traversals).
const LOAD_DECAY: f64 = 0.98;

/// After this many drops of one message, the retransmission is assumed to
/// succeed (modelling a switch to a guaranteed-delivery mode). Bounds the
/// retry loop on arbitrarily lossy links.
const MAX_RETRIES: u32 = 6;

/// The network state: link loads plus latency statistics.
#[derive(Clone, Debug)]
pub struct Network {
    latency: LatencyModel,
    load: HashMap<Link, f64>,
    messages: u64,
    latency_sum: f64,
    latency_max: f64,
    links_traversed: u64,
    /// Fault state driving detours, drops and retries; `None` on a healthy
    /// mesh, where [`Network::transfer`] runs the original XY fast path.
    faults: Option<FaultState>,
    retries: u64,
    detour_hops: u64,
    dropped_flits: u64,
    /// When `true` every transfer takes zero time (the paper's
    /// ideal-network scenario); loads and link counts are still recorded.
    pub zero_latency: bool,
    /// Multiplier on the hop count used for *timing* (the S2 scenario
    /// scales the default code's movement down to the optimized one's).
    pub distance_scale: f64,
}

impl Network {
    /// Creates an idle network with the given timing constants.
    pub fn new(latency: LatencyModel) -> Self {
        Self {
            latency,
            load: HashMap::new(),
            messages: 0,
            latency_sum: 0.0,
            latency_max: 0.0,
            links_traversed: 0,
            faults: None,
            retries: 0,
            detour_hops: 0,
            dropped_flits: 0,
            zero_latency: false,
            distance_scale: 1.0,
        }
    }

    /// Creates an idle network threaded with a fault state. A trivial
    /// (empty) state is discarded, leaving the healthy fast path — healthy
    /// runs stay bit-identical whether or not they went through this
    /// constructor.
    pub fn with_faults(latency: LatencyModel, faults: FaultState) -> Self {
        let mut net = Self::new(latency);
        if !faults.is_trivial() {
            net.faults = Some(faults);
        }
        net
    }

    /// Performs one transfer of a cache-line-sized message from `src` to
    /// `dst`, updating link loads; returns its latency in cycles.
    ///
    /// A zero-hop transfer (same node) is free and not counted as a
    /// message.
    ///
    /// # Panics
    ///
    /// On a faulty mesh, panics when the endpoints are disconnected — the
    /// degraded partitioner only schedules on the connected live set, so a
    /// well-formed schedule never hits this. Use [`Network::try_transfer`]
    /// to observe the error instead.
    pub fn transfer(&mut self, src: NodeId, dst: NodeId) -> f64 {
        self.try_transfer(src, dst).expect("transfer between unusable nodes")
    }

    /// Fallible [`Network::transfer`].
    ///
    /// On a faulty mesh the message follows the detour route around dead
    /// nodes/links; each traversal of a lossy link may drop the flit on
    /// its deterministic drop schedule, in which case the partial path is
    /// paid for, an exponential-backoff penalty accrues and the whole path
    /// is retransmitted (forced through after [`MAX_RETRIES`] drops).
    ///
    /// # Errors
    ///
    /// [`SimError::Route`] when faults disconnect `src` from `dst`.
    pub fn try_transfer(&mut self, src: NodeId, dst: NodeId) -> Result<f64, SimError> {
        if src == dst {
            return Ok(0.0);
        }
        // Healthy fast path: exactly the original code.
        let Some(mut faults) = self.faults.take() else {
            let path = routing::route(src, dst);
            let mut lat = 0.0;
            for link in &path {
                let load = self.load.entry(*link).or_insert(0.0);
                lat += self.latency.hop + self.latency.contention * *load;
                *load = *load * LOAD_DECAY + 1.0;
                self.links_traversed += 1;
            }
            return Ok(self.finish_message(lat));
        };
        let result = fault::route_avoiding(src, dst, &faults);
        let path = match result {
            Ok(p) => p,
            Err(e) => {
                self.faults = Some(faults);
                return Err(e.into());
            }
        };
        self.detour_hops += u64::from(path.len() - src.manhattan(dst));
        let mut lat = 0.0;
        let mut attempt = 0u32;
        loop {
            let mut delivered = true;
            for link in &path {
                let load = self.load.entry(*link).or_insert(0.0);
                lat += self.latency.hop + self.latency.contention * *load;
                *load = *load * LOAD_DECAY + 1.0;
                self.links_traversed += 1;
                if attempt < MAX_RETRIES && faults.should_drop(*link) {
                    // The flit died here: the partial traversal was already
                    // paid for; add the retransmission backoff and resend.
                    self.dropped_flits += 1;
                    lat += self.latency.hop * f64::from(1u32 << attempt);
                    delivered = false;
                    break;
                }
            }
            if delivered {
                break;
            }
            attempt += 1;
            self.retries += 1;
        }
        self.faults = Some(faults);
        Ok(self.finish_message(lat))
    }

    /// Applies scaling/zero-latency and records message statistics.
    fn finish_message(&mut self, mut lat: f64) -> f64 {
        lat *= self.distance_scale;
        if self.zero_latency {
            lat = 0.0;
        }
        self.messages += 1;
        self.latency_sum += lat;
        if lat > self.latency_max {
            self.latency_max = lat;
        }
        lat
    }

    /// Number of links a message from `src` to `dst` traverses: the
    /// Manhattan distance on a healthy mesh, the detour length on a faulty
    /// one (falling back to Manhattan for disconnected pairs, which a
    /// well-formed schedule never requests).
    pub fn path_len(&self, src: NodeId, dst: NodeId) -> u32 {
        match &self.faults {
            None => src.manhattan(dst),
            Some(f) => match fault::route_avoiding(src, dst, f) {
                Ok(p) => p.len(),
                Err(_) => src.manhattan(dst),
            },
        }
    }

    /// Retransmissions caused by lossy links.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Extra links traversed because messages detoured around faults.
    pub fn detour_hops(&self) -> u64 {
        self.detour_hops
    }

    /// Flits dropped by lossy links.
    pub fn dropped_flits(&self) -> u64 {
        self.dropped_flits
    }

    /// Number of messages transferred.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Total links traversed by all messages (the network footprint).
    pub fn links_traversed(&self) -> u64 {
        self.links_traversed
    }

    /// Mean message latency in cycles (0 when idle).
    pub fn avg_latency(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.latency_sum / self.messages as f64
        }
    }

    /// Maximum message latency observed (a congestion indicator).
    pub fn max_latency(&self) -> f64 {
        self.latency_max
    }

    /// Current per-link decayed loads (a congestion heatmap snapshot).
    pub fn link_loads(&self) -> impl Iterator<Item = (Link, f64)> + '_ {
        self.load.iter().map(|(&l, &v)| (l, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> Network {
        Network::new(LatencyModel::default())
    }

    #[test]
    fn transfer_latency_scales_with_distance() {
        let mut n = net();
        let near = n.transfer(NodeId::new(0, 0), NodeId::new(1, 0));
        let mut n2 = net();
        let far = n2.transfer(NodeId::new(0, 0), NodeId::new(5, 5));
        assert!(far > near);
        assert_eq!(n2.links_traversed(), 10);
    }

    #[test]
    fn same_node_transfer_is_free() {
        let mut n = net();
        assert_eq!(n.transfer(NodeId::new(2, 2), NodeId::new(2, 2)), 0.0);
        assert_eq!(n.messages(), 0);
    }

    #[test]
    fn contention_grows_on_hot_links() {
        let mut n = net();
        let first = n.transfer(NodeId::new(0, 0), NodeId::new(3, 0));
        for _ in 0..50 {
            n.transfer(NodeId::new(0, 0), NodeId::new(3, 0));
        }
        let later = n.transfer(NodeId::new(0, 0), NodeId::new(3, 0));
        assert!(later > first, "contention should raise latency");
        assert!(n.max_latency() >= later);
    }

    #[test]
    fn avg_latency_tracks_messages() {
        let mut n = net();
        n.transfer(NodeId::new(0, 0), NodeId::new(1, 0));
        n.transfer(NodeId::new(0, 0), NodeId::new(2, 0));
        assert!(n.avg_latency() > 0.0);
        assert!(n.max_latency() >= n.avg_latency());
        assert_eq!(n.messages(), 2);
    }

    #[test]
    fn zero_latency_mode_still_counts_links() {
        let mut n = net();
        n.zero_latency = true;
        let lat = n.transfer(NodeId::new(0, 0), NodeId::new(4, 4));
        assert_eq!(lat, 0.0);
        assert_eq!(n.links_traversed(), 8);
        assert_eq!(n.avg_latency(), 0.0);
    }

    #[test]
    fn distance_scale_shrinks_latency() {
        let mut a = net();
        let full = a.transfer(NodeId::new(0, 0), NodeId::new(4, 0));
        let mut b = net();
        b.distance_scale = 0.5;
        let half = b.transfer(NodeId::new(0, 0), NodeId::new(4, 0));
        assert!((half - full / 2.0).abs() < 1e-9);
    }

    use dmcp_mach::{FaultPlan, FaultState, Mesh};

    fn faulty(plan: FaultPlan) -> Network {
        let faults = FaultState::new(plan, Mesh::new(6, 6)).unwrap();
        Network::with_faults(LatencyModel::default(), faults)
    }

    #[test]
    fn trivial_faults_keep_transfers_bit_identical() {
        let mut healthy = net();
        let mut trivial = faulty(FaultPlan::healthy());
        for (s, d) in [((0, 0), (5, 5)), ((3, 1), (0, 4)), ((2, 2), (2, 3))] {
            let a = healthy.transfer(NodeId::new(s.0, s.1), NodeId::new(d.0, d.1));
            let b = trivial.transfer(NodeId::new(s.0, s.1), NodeId::new(d.0, d.1));
            assert_eq!(a.to_bits(), b.to_bits(), "healthy path must be bit-identical");
        }
        assert_eq!(healthy.links_traversed(), trivial.links_traversed());
        assert_eq!(trivial.retries(), 0);
        assert_eq!(trivial.detour_hops(), 0);
    }

    #[test]
    fn detours_count_extra_hops() {
        let mut plan = FaultPlan::healthy();
        plan.kill_node(NodeId::new(2, 0));
        let mut n = faulty(plan);
        let src = NodeId::new(0, 0);
        let dst = NodeId::new(5, 0);
        let lat = n.transfer(src, dst);
        assert!(lat > 0.0);
        assert_eq!(n.detour_hops(), 2, "one dead node on the row costs 2 extra hops");
        assert_eq!(n.links_traversed(), u64::from(src.manhattan(dst)) + 2);
        assert_eq!(n.path_len(src, dst), src.manhattan(dst) + 2);
    }

    #[test]
    fn lossy_links_retry_with_backoff_and_converge() {
        let mut plan = FaultPlan::with_seed(11);
        plan.lossy_link(NodeId::new(1, 0), NodeId::new(2, 0), 0.5);
        let mut n = faulty(plan);
        let mut clean = net();
        let mut total = 0.0;
        let mut clean_total = 0.0;
        for _ in 0..200 {
            total += n.transfer(NodeId::new(0, 0), NodeId::new(5, 0));
            clean_total += clean.transfer(NodeId::new(0, 0), NodeId::new(5, 0));
        }
        assert!(n.retries() > 0, "a 50% lossy link must force retries");
        assert_eq!(n.retries(), n.dropped_flits());
        assert!(total > clean_total, "drops must cost latency");
        assert_eq!(n.messages(), 200, "every message is eventually delivered");
    }

    #[test]
    fn disconnected_transfer_is_a_typed_error() {
        let mut plan = FaultPlan::healthy();
        plan.kill_link(NodeId::new(0, 0), NodeId::new(1, 0));
        plan.kill_link(NodeId::new(0, 0), NodeId::new(0, 1));
        let mut n = faulty(plan);
        let err = n.try_transfer(NodeId::new(0, 0), NodeId::new(5, 5)).unwrap_err();
        assert!(matches!(err, SimError::Route(_)));
        assert_eq!(n.messages(), 0, "failed transfers are not messages");
    }
}
