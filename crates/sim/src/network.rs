//! On-chip network model: XY routing, per-link utilisation and contention.
//!
//! Latency of one transfer = `hops × hop_latency + Σ contention · load(l)`
//! over the links `l` of the XY route, where `load` is an exponentially
//! decayed traversal count — a queueing-style approximation that makes hot
//! links slower, which is what the paper's Figure 19 (average/maximum
//! network latency) measures.

use dmcp_mach::{routing, LatencyModel, Link, NodeId};
use std::collections::HashMap;

/// Decay applied to a link's load on each traversal (the effective window
/// is ~1/(1-decay) recent traversals).
const LOAD_DECAY: f64 = 0.98;

/// The network state: link loads plus latency statistics.
#[derive(Clone, Debug)]
pub struct Network {
    latency: LatencyModel,
    load: HashMap<Link, f64>,
    messages: u64,
    latency_sum: f64,
    latency_max: f64,
    links_traversed: u64,
    /// When `true` every transfer takes zero time (the paper's
    /// ideal-network scenario); loads and link counts are still recorded.
    pub zero_latency: bool,
    /// Multiplier on the hop count used for *timing* (the S2 scenario
    /// scales the default code's movement down to the optimized one's).
    pub distance_scale: f64,
}

impl Network {
    /// Creates an idle network with the given timing constants.
    pub fn new(latency: LatencyModel) -> Self {
        Self {
            latency,
            load: HashMap::new(),
            messages: 0,
            latency_sum: 0.0,
            latency_max: 0.0,
            links_traversed: 0,
            zero_latency: false,
            distance_scale: 1.0,
        }
    }

    /// Performs one transfer of a cache-line-sized message from `src` to
    /// `dst`, updating link loads; returns its latency in cycles.
    ///
    /// A zero-hop transfer (same node) is free and not counted as a
    /// message.
    pub fn transfer(&mut self, src: NodeId, dst: NodeId) -> f64 {
        if src == dst {
            return 0.0;
        }
        let path = routing::route(src, dst);
        let mut lat = 0.0;
        for link in &path {
            let load = self.load.entry(*link).or_insert(0.0);
            lat += self.latency.hop + self.latency.contention * *load;
            *load = *load * LOAD_DECAY + 1.0;
            self.links_traversed += 1;
        }
        lat *= self.distance_scale;
        if self.zero_latency {
            lat = 0.0;
        }
        self.messages += 1;
        self.latency_sum += lat;
        if lat > self.latency_max {
            self.latency_max = lat;
        }
        lat
    }

    /// Number of messages transferred.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Total links traversed by all messages (the network footprint).
    pub fn links_traversed(&self) -> u64 {
        self.links_traversed
    }

    /// Mean message latency in cycles (0 when idle).
    pub fn avg_latency(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.latency_sum / self.messages as f64
        }
    }

    /// Maximum message latency observed (a congestion indicator).
    pub fn max_latency(&self) -> f64 {
        self.latency_max
    }

    /// Current per-link decayed loads (a congestion heatmap snapshot).
    pub fn link_loads(&self) -> impl Iterator<Item = (Link, f64)> + '_ {
        self.load.iter().map(|(&l, &v)| (l, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> Network {
        Network::new(LatencyModel::default())
    }

    #[test]
    fn transfer_latency_scales_with_distance() {
        let mut n = net();
        let near = n.transfer(NodeId::new(0, 0), NodeId::new(1, 0));
        let mut n2 = net();
        let far = n2.transfer(NodeId::new(0, 0), NodeId::new(5, 5));
        assert!(far > near);
        assert_eq!(n2.links_traversed(), 10);
    }

    #[test]
    fn same_node_transfer_is_free() {
        let mut n = net();
        assert_eq!(n.transfer(NodeId::new(2, 2), NodeId::new(2, 2)), 0.0);
        assert_eq!(n.messages(), 0);
    }

    #[test]
    fn contention_grows_on_hot_links() {
        let mut n = net();
        let first = n.transfer(NodeId::new(0, 0), NodeId::new(3, 0));
        for _ in 0..50 {
            n.transfer(NodeId::new(0, 0), NodeId::new(3, 0));
        }
        let later = n.transfer(NodeId::new(0, 0), NodeId::new(3, 0));
        assert!(later > first, "contention should raise latency");
        assert!(n.max_latency() >= later);
    }

    #[test]
    fn avg_latency_tracks_messages() {
        let mut n = net();
        n.transfer(NodeId::new(0, 0), NodeId::new(1, 0));
        n.transfer(NodeId::new(0, 0), NodeId::new(2, 0));
        assert!(n.avg_latency() > 0.0);
        assert!(n.max_latency() >= n.avg_latency());
        assert_eq!(n.messages(), 2);
    }

    #[test]
    fn zero_latency_mode_still_counts_links() {
        let mut n = net();
        n.zero_latency = true;
        let lat = n.transfer(NodeId::new(0, 0), NodeId::new(4, 4));
        assert_eq!(lat, 0.0);
        assert_eq!(n.links_traversed(), 8);
        assert_eq!(n.avg_latency(), 0.0);
    }

    #[test]
    fn distance_scale_shrinks_latency() {
        let mut a = net();
        let full = a.transfer(NodeId::new(0, 0), NodeId::new(4, 0));
        let mut b = net();
        b.distance_scale = 0.5;
        let half = b.transfer(NodeId::new(0, 0), NodeId::new(4, 0));
        assert!((half - full / 2.0).abs() < 1e-9);
    }
}
