//! Simulation results.

use std::collections::HashMap;

/// Energy consumption by component (arbitrary units; relative values are
/// what Figure 24 reports).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Network link traversals.
    pub link: f64,
    /// L1 + L2 accesses.
    pub cache: f64,
    /// Memory accesses (both tiers).
    pub memory: f64,
    /// ALU operations.
    pub op: f64,
    /// Static/leakage over the execution time.
    pub background: f64,
}

impl EnergyBreakdown {
    /// Total energy.
    pub fn total(&self) -> f64 {
        self.link + self.cache + self.memory + self.op + self.background
    }
}

/// Everything the simulator measured for one run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SimReport {
    /// Execution time in cycles (the slowest node's clock).
    pub exec_time: f64,
    /// Total data movement: links traversed by data payloads.
    pub movement: u64,
    /// Messages sent on the network.
    pub messages: u64,
    /// Mean network message latency.
    pub net_avg_latency: f64,
    /// Maximum network message latency (congestion indicator).
    pub net_max_latency: f64,
    /// L1 hits / misses.
    pub l1_hits: u64,
    /// See [`SimReport::l1_hits`].
    pub l1_misses: u64,
    /// L2 hits / misses.
    pub l2_hits: u64,
    /// See [`SimReport::l2_hits`].
    pub l2_misses: u64,
    /// Memory accesses served by the fast tier (MCDRAM).
    pub mem_fast: u64,
    /// Memory accesses served by the slow tier (DDR).
    pub mem_slow: u64,
    /// Cross-node synchronizations performed.
    pub sync_count: u64,
    /// Cycles spent stalled waiting on cross-node producers.
    pub sync_wait: f64,
    /// Total ALU operations executed.
    pub ops: u64,
    /// Compile-time-predictor accuracy observed against the simulated
    /// caches (1.0 if nothing was checked) — paper Table 2.
    pub predictor_accuracy: f64,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
    /// Per-statement-instance data movement, keyed by `(nest, instance)`
    /// (only filled when instance tracking is enabled).
    pub per_instance_movement: HashMap<(u32, u64), u64>,
    /// The busiest node's total service time (capacity bound).
    pub busiest_node: f64,
    /// The latest step completion (critical-path bound).
    pub last_finish: f64,
    /// Retransmissions caused by lossy links (0 on a healthy mesh).
    pub net_retries: u64,
    /// Extra links traversed because messages detoured around faults
    /// (0 on a healthy mesh).
    pub net_detour_hops: u64,
    /// Flits dropped by lossy links before a successful delivery
    /// (0 on a healthy mesh).
    pub net_dropped_flits: u64,
}

impl SimReport {
    /// L1 hit rate.
    pub fn l1_hit_rate(&self) -> f64 {
        let t = self.l1_hits + self.l1_misses;
        if t == 0 {
            0.0
        } else {
            self.l1_hits as f64 / t as f64
        }
    }

    /// L2 miss rate.
    pub fn l2_miss_rate(&self) -> f64 {
        let t = self.l2_hits + self.l2_misses;
        if t == 0 {
            0.0
        } else {
            self.l2_misses as f64 / t as f64
        }
    }

    /// Fractional execution-time reduction relative to `baseline`
    /// (positive = faster than the baseline).
    pub fn time_reduction_vs(&self, baseline: &SimReport) -> f64 {
        if baseline.exec_time == 0.0 {
            0.0
        } else {
            1.0 - self.exec_time / baseline.exec_time
        }
    }

    /// Fractional movement reduction relative to `baseline`.
    pub fn movement_reduction_vs(&self, baseline: &SimReport) -> f64 {
        if baseline.movement == 0 {
            0.0
        } else {
            1.0 - self.movement as f64 / baseline.movement as f64
        }
    }

    /// Fractional energy reduction relative to `baseline`.
    pub fn energy_reduction_vs(&self, baseline: &SimReport) -> f64 {
        let b = baseline.energy.total();
        if b == 0.0 {
            0.0
        } else {
            1.0 - self.energy.total() / b
        }
    }

    /// Mean and max per-statement-instance movement reduction vs a baseline
    /// run with instance tracking (instances present in both runs with
    /// nonzero baseline movement). Returns `(avg, max)`.
    pub fn per_instance_reduction_vs(&self, baseline: &SimReport) -> (f64, f64) {
        let mut sum = 0.0;
        let mut max: f64 = 0.0;
        let mut n = 0u64;
        for (key, &base) in &baseline.per_instance_movement {
            if base == 0 {
                continue;
            }
            let opt = self.per_instance_movement.get(key).copied().unwrap_or(0);
            let red = 1.0 - opt as f64 / base as f64;
            sum += red;
            if red > max {
                max = red;
            }
            n += 1;
        }
        if n == 0 {
            (0.0, 0.0)
        } else {
            (sum / n as f64, max)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_and_reductions() {
        let mut base = SimReport { exec_time: 100.0, movement: 200, ..SimReport::default() };
        base.l1_hits = 3;
        base.l1_misses = 1;
        let opt = SimReport { exec_time: 80.0, movement: 120, ..SimReport::default() };
        assert!((base.l1_hit_rate() - 0.75).abs() < 1e-12);
        assert!((opt.time_reduction_vs(&base) - 0.2).abs() < 1e-12);
        assert!((opt.movement_reduction_vs(&base) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn per_instance_reduction() {
        let mut base = SimReport::default();
        base.per_instance_movement.insert((0, 0), 10);
        base.per_instance_movement.insert((0, 1), 20);
        let mut opt = SimReport::default();
        opt.per_instance_movement.insert((0, 0), 5);
        opt.per_instance_movement.insert((0, 1), 20);
        let (avg, max) = opt.per_instance_reduction_vs(&base);
        assert!((avg - 0.25).abs() < 1e-12);
        assert!((max - 0.5).abs() < 1e-12);
    }

    #[test]
    fn energy_total() {
        let e = EnergyBreakdown { link: 1.0, cache: 2.0, memory: 3.0, op: 4.0, background: 5.0 };
        assert_eq!(e.total(), 15.0);
    }

    #[test]
    fn empty_report_is_safe() {
        let r = SimReport::default();
        assert_eq!(r.l1_hit_rate(), 0.0);
        assert_eq!(r.l2_miss_rate(), 0.0);
        assert_eq!(r.time_reduction_vs(&SimReport::default()), 0.0);
        assert_eq!(r.per_instance_reduction_vs(&SimReport::default()), (0.0, 0.0));
    }
}
