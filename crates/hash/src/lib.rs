//! Shared stable-hash primitives.
//!
//! Three other crates used to carry private copies of the same two
//! integer-mixing kernels:
//!
//! * **FNV-1a 64** — the byte fold behind `dmcp-ir`'s structural
//!   fingerprints and the checksum on `dmcp-serve`'s wire frames and disk
//!   records;
//! * **splitmix64** — the avalanche finalizer behind `dmcp-mach`'s RNG and
//!   fingerprint accumulator and `dmcp-pool`'s per-task seed streams.
//!
//! This crate is the single definition both kernels live in. It sits at the
//! very bottom of the dependency graph (no dependencies, no consumers it
//! couldn't have), and every former copy re-exports from here, so the
//! outputs are bit-identical to the historical ones — the golden plan
//! digests and `PlanKey` digests in `dmcp-check::golden` pin that.

/// 64-bit FNV-1a offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// 64-bit FNV-1a prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// The splitmix64 golden-gamma increment.
pub const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// A streaming FNV-1a 64 fold.
///
/// # Examples
///
/// ```
/// use dmcp_hash::{fnv1a64, Fnv64};
///
/// let mut h = Fnv64::new();
/// h.write(b"abc");
/// assert_eq!(h.finish(), fnv1a64(b"abc"));
/// ```
#[derive(Clone, Debug)]
pub struct Fnv64 {
    state: u64,
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    /// A fresh fold at the FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Self {
        Self { state: FNV_OFFSET }
    }

    /// Folds raw bytes into the state.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// The current hash value.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// One-shot FNV-1a 64 over a byte slice. Not cryptographic; it detects
/// truncation and corruption, which is all its callers need.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

/// The splitmix64 finalizer: a stateless avalanche mix of one `u64`
/// (adds [`GOLDEN_GAMMA`], then avalanches).
///
/// Used directly (without an RNG object) wherever a pure function of a
/// key must look random and be independent of call order: fault-model
/// drop schedules, fingerprint accumulators, per-task seed derivation.
#[must_use]
pub fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(GOLDEN_GAMMA);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let mut h = Fnv64::new();
        h.write(b"hello ");
        h.write(b"world");
        assert_eq!(h.finish(), fnv1a64(b"hello world"));
    }

    #[test]
    fn mix_avalanches_and_is_pure() {
        assert_ne!(mix(0), mix(1));
        assert_eq!(mix(12345), mix(12345));
        // Pin the historical output so any constant drift is loud.
        assert_eq!(mix(0), 0xE220_A839_7B1D_CDAF);
    }
}
