//! Baseline placement strategies the paper compares against.
//!
//! - [`locality_assignment`] — the paper's **default** computation
//!   placement (Section 6.1): the iteration space is divided into chunks
//!   and each chunk is assigned, using profile data, to the core that is
//!   most beneficial from an LLC/MC-locality viewpoint. This is the
//!   highly-optimized iteration-granularity baseline every improvement in
//!   the paper is measured against.
//! - [`preferred_mc_overrides`] — the profile-based **data-to-MC mapping**
//!   of Section 6.5 / Figure 23: each memory page is re-homed to the
//!   controller preferred by the cores that access it. Can be combined
//!   with the computation partitioner (the "combined" bar of Figure 23).
//!
//! Both are profile-driven: they walk the program's reference stream once
//! (the profiling run) before placement is fixed.

use dmcp_core::Layout;
use dmcp_ir::program::{DataStore, Program};
use dmcp_mach::NodeId;
use std::collections::HashMap;

/// Computes the locality-optimized chunk→core assignment for `nest_index`,
/// one entry per iteration.
///
/// The iteration space is split into `node_count` contiguous chunks; the
/// profile records which L2 banks each chunk touches, and chunks greedily
/// pick their cheapest core, each core taking one chunk per round (keeping
/// the iteration load balanced like the paper's default).
pub fn locality_assignment(
    program: &Program,
    layout: &Layout,
    data: &DataStore,
    nest_index: usize,
) -> Vec<NodeId> {
    let nest = &program.nests()[nest_index];
    let nodes: Vec<NodeId> = layout.machine().mesh.nodes().collect();
    let iters = nest.iteration_count();
    if iters == 0 {
        return vec![nodes[0]];
    }
    let chunk_size = iters.div_ceil(nodes.len() as u64).max(1);
    let chunk_count = iters.div_ceil(chunk_size) as usize;

    // Profile: per chunk, the per-node total distance to all touched homes.
    let mut cost = vec![vec![0u64; nodes.len()]; chunk_count];
    for (it, iter) in nest.iterations().enumerate() {
        let chunk = it / chunk_size as usize;
        for stmt in &nest.body {
            for r in stmt.all_refs() {
                let elem = program.element_of(r, &iter, data);
                // Requester choice barely matters outside SNC-4; profile
                // from the geometric "centre" of the candidate core.
                let home = layout.locate(program, r.array, elem, nodes[0]).home;
                for (k, &node) in nodes.iter().enumerate() {
                    cost[chunk][k] += u64::from(node.manhattan(home));
                }
            }
        }
    }

    // Greedy matching: chunks pick their cheapest core; each core serves
    // one chunk per round.
    let mut chunk_owner = vec![nodes[0]; chunk_count];
    let mut taken = vec![false; nodes.len()];
    let mut taken_count = 0;
    for (chunk, costs) in cost.iter().enumerate() {
        if taken_count == nodes.len() {
            taken.iter_mut().for_each(|t| *t = false);
            taken_count = 0;
        }
        let best = (0..nodes.len())
            .filter(|&k| !taken[k])
            .min_by_key(|&k| (costs[k], k))
            .expect("a free node exists");
        taken[best] = true;
        taken_count += 1;
        chunk_owner[chunk] = nodes[best];
    }

    (0..iters).map(|i| chunk_owner[(i / chunk_size) as usize]).collect()
}

/// Computes the profile-based page→controller overrides of Figure 23:
/// for every page, the corner controller minimising the total distance to
/// the cores that access it (weighted by access count) under the given
/// iteration assignment.
///
/// Returns `(physical page, controller)` pairs ready for
/// [`Layout::override_page_controller`].
pub fn preferred_mc_overrides(
    program: &Program,
    layout: &Layout,
    data: &DataStore,
    nest_index: usize,
    assignment: &[NodeId],
) -> Vec<(u64, NodeId)> {
    let nest = &program.nests()[nest_index];
    let corners = layout.machine().mesh.memory_controllers();
    // page -> per-corner distance-weighted access cost
    let mut page_cost: HashMap<u64, [u64; 4]> = HashMap::new();
    for (it, iter) in nest.iterations().enumerate() {
        let core = assignment[it % assignment.len()];
        for stmt in &nest.body {
            for r in stmt.all_refs() {
                let elem = program.element_of(r, &iter, data);
                let page = layout.page_of(program, r.array, elem);
                let entry = page_cost.entry(page).or_insert([0; 4]);
                for (c, corner) in corners.iter().enumerate() {
                    entry[c] += u64::from(core.manhattan(*corner));
                }
            }
        }
    }
    let mut overrides: Vec<(u64, NodeId)> = page_cost
        .into_iter()
        .map(|(page, costs)| {
            let best = (0..4).min_by_key(|&c| (costs[c], c)).expect("four corners");
            (page, corners[best])
        })
        .collect();
    overrides.sort_unstable_by_key(|&(p, _)| p);
    overrides
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmcp_core::{PartitionConfig, Partitioner};
    use dmcp_ir::ProgramBuilder;
    use dmcp_mach::MachineConfig;

    fn setup() -> (Program, Partitioner) {
        let mut b = ProgramBuilder::new();
        for n in ["A", "B", "C", "D"] {
            b.array(n, &[1024], 64);
        }
        b.nest(&[("i", 0, 256)], &["A[i] = B[i] + C[i] + D[i]"]).unwrap();
        let p = b.build();
        let machine = MachineConfig::knl_like();
        let part = Partitioner::new(&machine, &p, PartitionConfig::default());
        (p, part)
    }

    #[test]
    fn assignment_covers_all_iterations_and_many_cores() {
        let (p, part) = setup();
        let data = p.initial_data();
        let asg = locality_assignment(&p, part.layout(), &data, 0);
        assert_eq!(asg.len(), 256);
        let distinct: std::collections::HashSet<_> = asg.iter().collect();
        assert!(distinct.len() >= 30, "only {} cores used", distinct.len());
    }

    #[test]
    fn assignment_is_chunk_contiguous() {
        let (p, part) = setup();
        let data = p.initial_data();
        let asg = locality_assignment(&p, part.layout(), &data, 0);
        // 256 iterations over 36 nodes -> chunks of 8.
        for c in 0..(256 / 8) {
            let chunk = &asg[c * 8..(c + 1) * 8];
            assert!(chunk.iter().all(|&n| n == chunk[0]), "chunk {c} not uniform");
        }
    }

    #[test]
    fn profiled_assignment_beats_naive_chunking_on_planned_movement() {
        let (p, part) = setup();
        let data = p.initial_data();
        let asg = locality_assignment(&p, part.layout(), &data, 0);
        let machine = MachineConfig::knl_like();

        let naive = Partitioner::new(&machine, &p, PartitionConfig::default());
        let profiled = Partitioner::new(
            &machine,
            &p,
            PartitionConfig { assignment: Some(asg), ..PartitionConfig::default() },
        );
        let base_naive = naive.baseline(&p, &data);
        let base_prof = profiled.baseline(&p, &data);
        assert!(
            base_prof.movement_default() <= base_naive.movement_default(),
            "profiled {} vs naive {}",
            base_prof.movement_default(),
            base_naive.movement_default()
        );
    }

    #[test]
    fn mc_overrides_cover_touched_pages() {
        let (p, part) = setup();
        let data = p.initial_data();
        let asg = locality_assignment(&p, part.layout(), &data, 0);
        let overrides = preferred_mc_overrides(&p, part.layout(), &data, 0, &asg);
        // 4 arrays × 256 touched elements × 64 B = 64 KiB ≈ 16+ pages.
        assert!(overrides.len() >= 16, "got {}", overrides.len());
        let corners = part.layout().machine().mesh.memory_controllers();
        assert!(overrides.iter().all(|(_, mc)| corners.contains(mc)));
    }

    #[test]
    fn overrides_are_deterministic() {
        let (p, part) = setup();
        let data = p.initial_data();
        let asg = locality_assignment(&p, part.layout(), &data, 0);
        let a = preferred_mc_overrides(&p, part.layout(), &data, 0, &asg);
        let b = preferred_mc_overrides(&p, part.layout(), &data, 0, &asg);
        assert_eq!(a, b);
    }

    #[test]
    fn overrides_install_into_layout() {
        let (p, _) = setup();
        let machine = MachineConfig::knl_like();
        let mut part = Partitioner::new(&machine, &p, PartitionConfig::default());
        let data = p.initial_data();
        let asg = locality_assignment(&p, part.layout(), &data, 0);
        let overrides = preferred_mc_overrides(&p, part.layout(), &data, 0, &asg);
        let n = overrides.len();
        for (page, mc) in overrides {
            part.layout_mut().override_page_controller(page, mc);
        }
        assert_eq!(part.layout().override_count(), n);
    }
}
