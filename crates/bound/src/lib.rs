//! Sound per-nest **data-movement lower bounds** and the optimality-gap
//! dashboard built on them.
//!
//! The planner (`dmcp-core`) reports the movement its schedules pay; this
//! crate answers the question the paper's evaluation leaves open: *how close
//! to optimal is that?* For every loop nest it computes a lower bound on the
//! data movement **any** plan the planner could have emitted must pay, then
//! surfaces `planner_movement / bound` as a per-workload gap ratio.
//!
//! # Construction
//!
//! Both bound components replay the exact statement-instance stream the
//! planner plans — same iteration order, same `assignment[it % len]` core,
//! same per-leaf home/controller belief — but charge only movement that is
//! unavoidable:
//!
//! 1. **Compulsory traffic** (any mesh): a cache line that has never been
//!    touched before cannot be sourced from any L1; it must come from its
//!    home bank or its memory controller. Per statement instance the
//!    charged lines plus the store target form a set of *option groups*
//!    (each group = the nodes the planner could legally source that line
//!    from), and any plan's paid legs are a connected structure spanning
//!    one node per group. Its weight is bounded below by the two portable
//!    kernels of [`dmcp_mach::graph`]: the max pairwise group distance and
//!    `ceil(2/3 · MST)` (Hwang's rectilinear Steiner ratio).
//! 2. **DAG-partition bound** (exact, small meshes): on meshes of at most
//!    [`DAG_MESH_LIMIT`] nodes the group-Steiner minimum
//!    ([`dmcp_mach::graph::steiner_min_sets`]) is computed exactly by
//!    Dreyfus–Wagner dynamic programming — the same oracle regime
//!    `dmcp-check` validates planner movement against.
//!
//! The per-instance bound is the larger of the two; the nest bound is the
//! sum over instances. Soundness holds for *both* accountings a nest can
//! end up with (split MSTs or the rolled-back default star), so the bound
//! never exceeds the planner's reported `movement_opt` regardless of the
//! split decision, window size, predictor, or degraded-mode re-homing.
//!
//! # Dashboard
//!
//! [`gap_report`] pairs the bounds with a [`PartitionOutput`]'s per-nest
//! movement; the `dmcp-bound` binary writes `BENCH_bound.json` over the
//! full 12-workload suite and CI hard-fails if any workload's planner
//! movement drops below its bound (a soundness violation — one of the two
//! sides is lying).

use std::collections::{HashMap, HashSet};

use dmcp_core::{nest_assignment, Layout, PartitionConfig, PartitionOutput, PredictorSpec};
use dmcp_ir::program::{DataStore, Program};
use dmcp_ir::{ArrayId, ArrayRef, Expr};
use dmcp_mach::graph::{max_pairwise_sets, mst_weight_sets, steiner_min_sets};
use dmcp_mach::NodeId;
use dmcp_mem::LineAddr;

/// Largest mesh (in nodes) the exact Dreyfus–Wagner DAG bound runs on.
pub const DAG_MESH_LIMIT: u32 = 9;

/// Largest number of option groups per statement instance the exact DAG
/// bound enumerates (the DP is exponential in the group count).
pub const DAG_GROUP_LIMIT: usize = 15;

/// Lower bound for one loop nest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NestBound {
    /// Index of the nest within the program.
    pub nest: usize,
    /// Statement instances replayed (equals the planner's instance count).
    pub instances: u64,
    /// Leaves charged as compulsory traffic across all instances.
    pub chargeable_leaves: u64,
    /// Static distinct-footprint estimate in cache lines, from the affine
    /// access functions ([`ArrayRef::footprint_over`]); `0` when every
    /// reference is indirect. Context for the dashboard, not part of the
    /// movement bound.
    pub footprint_lines: u64,
    /// Portable compulsory-traffic kernel bound (valid on any mesh).
    pub compulsory: u64,
    /// Exact group-Steiner bound; `None` when the mesh exceeds
    /// [`DAG_MESH_LIMIT`] nodes.
    pub dag: Option<u64>,
    /// The nest's movement lower bound: per instance the larger of the two
    /// components, summed over instances.
    pub bound: u64,
}

/// One workload row of the optimality-gap dashboard.
#[derive(Clone, Debug, PartialEq)]
pub struct GapReport {
    /// Workload (or program) name.
    pub name: String,
    /// Total optimized movement the planner reported.
    pub planner_movement: u64,
    /// Total movement lower bound (sum of nest bounds).
    pub bound: u64,
    /// Per-nest pairs of `(bound, planner movement)` in program order.
    pub nests: Vec<(NestBound, u64)>,
}

impl GapReport {
    /// `planner_movement / bound` — how far above the provable floor the
    /// planner's schedules are. `1.0` is optimal (the bound is met);
    /// anything below `1.0` means a soundness bug. Degenerate zero-movement
    /// programs report `1.0`; a zero bound under nonzero movement reports
    /// `f64::INFINITY` (the bound is vacuous there).
    pub fn gap_ratio(&self) -> f64 {
        if self.planner_movement == 0 && self.bound == 0 {
            1.0
        } else if self.bound == 0 {
            f64::INFINITY
        } else {
            self.planner_movement as f64 / self.bound as f64
        }
    }

    /// `true` when the planner's movement respects the lower bound on every
    /// nest (the invariant CI enforces).
    pub fn sound(&self) -> bool {
        self.planner_movement >= self.bound
            && self.nests.iter().all(|(nb, planner)| *planner >= nb.bound)
    }
}

/// Collects every `Ref` leaf of an expression tree, left to right.
///
/// This is the leaf set the planner's group normalisation fetches (every
/// `Ref` in the rhs becomes an operand); `Statement::reads()` is *not*
/// equivalent — it also surfaces indirect-subscript reads of the lhs,
/// which are not operand fetches.
fn rhs_leaves<'a>(e: &'a Expr, out: &mut Vec<&'a ArrayRef>) {
    match e {
        Expr::Const(_) => {}
        Expr::Ref(r) => out.push(r),
        Expr::Bin { lhs, rhs, .. } => {
            rhs_leaves(lhs, out);
            rhs_leaves(rhs, out);
        }
    }
}

/// `ceil(2/3 · w)` — the Hwang rectilinear Steiner ratio applied to an MST
/// weight. Sound because any group-Steiner tree is a rectilinear Steiner
/// tree of one representative per group, whose weight is at least two
/// thirds of the representatives' MST, which in turn is at least the
/// set-distance MST ([`mst_weight_sets`] uses pointwise-smaller edges).
fn hwang_floor(mst: u64) -> u64 {
    mst.saturating_mul(2).div_ceil(3)
}

/// Computes the movement lower bound for one nest.
///
/// `assignment` must be the iteration→core map the planner used (one entry
/// per iteration, cycled) — [`nest_assignment`] reproduces the pipeline's
/// choice. `limit_instances` truncates the replay after that many statement
/// instances (`None` replays the whole nest, matching the planner's final
/// full-nest plan).
pub fn bound_nest(
    program: &Program,
    nest_index: usize,
    layout: &Layout,
    data: &DataStore,
    config: &PartitionConfig,
    assignment: &[NodeId],
    limit_instances: Option<u64>,
) -> NestBound {
    assert!(!assignment.is_empty(), "need a default core assignment");
    let nest = &program.nests()[nest_index];
    let mesh = layout.machine().mesh;
    let exact_mesh = mesh.node_count() <= DAG_MESH_LIMIT;
    let limit = limit_instances.unwrap_or(u64::MAX);

    // First-touch tracking. `touched` under-approximates every cache the
    // planner's accounting can hit out of (window L1 map, persistent
    // residency estimator, per-core default L1): a line absent from
    // `touched` has never been seen by any of them, so fetching it must
    // pay a home-or-controller leg. Capacity evictions only make the
    // planner pay *more*, so ignoring them keeps the bound sound.
    let mut touched: HashSet<LineAddr> = HashSet::new();
    let mut touched_core: HashSet<(NodeId, LineAddr)> = HashSet::new();

    let mut instances = 0u64;
    let mut chargeable_leaves = 0u64;
    let mut compulsory = 0u64;
    let mut dag = 0u64;
    let mut bound = 0u64;

    let mut leaves: Vec<&ArrayRef> = Vec::new();
    'outer: for (it, iter) in nest.iterations().enumerate() {
        let core = assignment[it % assignment.len()];
        for stmt in &nest.body {
            if instances >= limit {
                break 'outer;
            }
            instances += 1;

            let lhs_elem = program.element_of(&stmt.lhs, &iter, data);
            let lhs_info = layout.locate(program, stmt.lhs.array, lhs_elem, core);
            let lhs_known = stmt.lhs.analyzable || config.opts.ideal_analysis;

            // Option groups this instance's paid legs must span. The store
            // home is always required: split accounting roots its MST
            // there, default accounting ships the result there.
            let mut groups: Vec<Vec<NodeId>> = vec![vec![lhs_info.home]];
            let mut stmt_lines: HashSet<LineAddr> = HashSet::new();
            let mut anchor_core = !lhs_known;

            leaves.clear();
            rhs_leaves(&stmt.rhs, &mut leaves);
            for r in &leaves {
                let elem = program.element_of(r, &iter, data);
                let info = layout.locate(program, r.array, elem, core);
                let analyzable = r.analyzable || config.opts.ideal_analysis;
                let fresh = if lhs_known && config.opts.reuse_aware {
                    // Split accounting may source a previously-seen line
                    // from a reuse candidate; only globally-fresh lines are
                    // guaranteed to pay a home/controller leg.
                    !touched.contains(&info.line)
                } else {
                    // Every accounting this statement can receive is (or
                    // may be rolled back to) the default star, which pays
                    // exactly for lines new to this core's default L1.
                    !touched_core.contains(&(core, info.line))
                };
                if !analyzable && fresh {
                    // Unplaceable operands are fetched via the assigned
                    // core. Only a *fresh* line guarantees the leg is paid:
                    // in split accounting the persistent-residency
                    // estimator can serve a previously-shipped line at the
                    // consuming step for free, and the default star prices
                    // the fetch at d(core, core) = 0 — there the anchor
                    // rides the unconditional result leg to the store home
                    // instead, which also covers stale lines for fallback
                    // statements (`!lhs_known` above).
                    anchor_core = true;
                }
                // A same-line repeat within one statement rides the first
                // fetch (the default-L1 mirror is touched immediately).
                if analyzable && fresh && stmt_lines.insert(info.line) {
                    chargeable_leaves += 1;
                    let belief = layout.believed(program, r.array, elem, core);
                    let options = match config.predictor {
                        // Always-hit planning sources every analyzable leaf
                        // from its believed home bank.
                        PredictorSpec::AlwaysHit => vec![belief.home],
                        // Otherwise the predictor verdict picks home (hit)
                        // or memory controller (miss); either is possible.
                        _ if belief.home == belief.mc => vec![belief.home],
                        _ => vec![belief.home, belief.mc],
                    };
                    groups.push(options);
                }
                // Mirror the planner's immediate default-L1 touch.
                touched.insert(info.line);
                touched_core.insert((core, info.line));
            }
            if anchor_core {
                groups.push(vec![core]);
            }
            touched.insert(lhs_info.line);
            touched_core.insert((core, lhs_info.line));

            let kernel = max_pairwise_sets(&groups).max(hwang_floor(mst_weight_sets(&groups)));
            compulsory += kernel;
            let inst_bound = if exact_mesh && groups.len() <= DAG_GROUP_LIMIT {
                let exact = steiner_min_sets(&mesh, &groups);
                debug_assert!(exact >= kernel, "Steiner minimum below its own kernels");
                dag += exact;
                kernel.max(exact)
            } else {
                dag += kernel;
                kernel
            };
            bound += inst_bound;
        }
    }

    NestBound {
        nest: nest_index,
        instances,
        chargeable_leaves,
        footprint_lines: footprint_lines(
            program,
            nest_index,
            u64::from(layout.machine().cache_line),
        ),
        compulsory,
        dag: if exact_mesh { Some(dag) } else { None },
        bound,
    }
}

/// Static distinct-footprint estimate of one nest in cache lines, from the
/// affine access functions alone (no replay).
///
/// Per array the largest single-reference footprint is kept — references
/// to the same array may overlap, so summing them would overcount; the
/// union is at least as large as the largest member. Indirect references
/// contribute nothing (their footprint is data-dependent).
pub fn footprint_lines(program: &Program, nest_index: usize, line_bytes: u64) -> u64 {
    let nest = &program.nests()[nest_index];
    let ranges: Vec<(i64, i64)> = nest.dims.iter().map(|d| (d.lo, d.hi)).collect();
    let line = line_bytes.max(1);
    let mut per_array: HashMap<ArrayId, u64> = HashMap::new();
    let mut leaves: Vec<&ArrayRef> = Vec::new();
    for stmt in &nest.body {
        leaves.clear();
        rhs_leaves(&stmt.rhs, &mut leaves);
        for r in leaves.iter().copied().chain(std::iter::once(&stmt.lhs)) {
            if let Some(elems) = r.footprint_over(&ranges) {
                let decl = program.array(r.array);
                let capped = elems.min(decl.len());
                let bytes = capped.saturating_mul(u64::from(decl.elem_size.max(1)));
                let lines = bytes.div_ceil(line).max(u64::from(capped > 0));
                let slot = per_array.entry(r.array).or_insert(0);
                *slot = (*slot).max(lines);
            }
        }
    }
    per_array.values().sum()
}

/// Bounds every nest of a program, deriving each nest's assignment exactly
/// as the planning pipeline does (explicit config assignment, else chunked
/// over the mesh or the degraded layout's live nodes).
pub fn bound_program(
    program: &Program,
    layout: &Layout,
    data: &DataStore,
    config: &PartitionConfig,
) -> Vec<NestBound> {
    (0..program.nests().len())
        .map(|n| {
            let iters = program.nests()[n].iteration_count();
            let assignment = nest_assignment(config, layout, layout.machine().mesh, iters);
            bound_nest(program, n, layout, data, config, &assignment, None)
        })
        .collect()
}

/// Builds one dashboard row: the per-nest bounds zipped with the planner's
/// per-nest optimized movement.
pub fn gap_report(
    name: &str,
    program: &Program,
    layout: &Layout,
    data: &DataStore,
    config: &PartitionConfig,
    output: &PartitionOutput,
) -> GapReport {
    let bounds = bound_program(program, layout, data, config);
    let per_nest = output.movement_by_nest();
    let nests: Vec<(NestBound, u64)> = bounds
        .into_iter()
        .map(|nb| {
            let planner =
                per_nest.iter().find(|(n, _)| *n == nb.nest).map(|(_, m)| *m).unwrap_or(0);
            (nb, planner)
        })
        .collect();
    GapReport {
        name: name.to_string(),
        planner_movement: output.movement_opt(),
        bound: nests.iter().map(|(nb, _)| nb.bound).sum(),
        nests,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmcp_core::Partitioner;
    use dmcp_mach::{MachineConfig, Mesh};
    use dmcp_workloads::{all, Scale};

    fn tiny_machine(mesh: Mesh) -> MachineConfig {
        MachineConfig { mesh, ..MachineConfig::knl_like() }
    }

    /// On every exact mesh the bound must sit below the planner's movement
    /// for every workload nest, healthy and degraded alike — and stay
    /// finite and nonzero for real programs.
    #[test]
    fn bound_never_exceeds_planner_movement_on_small_meshes() {
        for mesh in [Mesh::new(2, 2), Mesh::new(3, 3)] {
            let machine = tiny_machine(mesh);
            for w in all(Scale::Tiny).iter().take(4) {
                let part = Partitioner::new(&machine, &w.program, PartitionConfig::default());
                let out = part.partition_with_data(&w.program, &w.data);
                let report =
                    gap_report(w.name, &w.program, part.layout(), &w.data, part.config(), &out);
                assert!(
                    report.sound(),
                    "{} on {mesh:?}: bound {} above planner movement {}",
                    w.name,
                    report.bound,
                    report.planner_movement
                );
                assert!(report.gap_ratio() >= 1.0);
            }
        }
    }

    /// The full-size mesh path (kernels only, no exact DAG bound) must also
    /// be sound over the whole suite.
    #[test]
    fn bound_is_sound_on_the_paper_machine() {
        let machine = MachineConfig::knl_like();
        for w in &all(Scale::Tiny) {
            let part = Partitioner::new(&machine, &w.program, PartitionConfig::default());
            let out = part.partition_with_data(&w.program, &w.data);
            let report =
                gap_report(w.name, &w.program, part.layout(), &w.data, part.config(), &out);
            assert!(report.nests.iter().all(|(nb, _)| nb.dag.is_none()));
            assert!(
                report.sound(),
                "{}: bound {} above planner movement {}",
                w.name,
                report.bound,
                report.planner_movement
            );
        }
    }

    /// The baseline (all-default) accounting is an accounting the planner
    /// can legitimately report; the bound must respect it too.
    #[test]
    fn bound_respects_the_default_baseline_accounting() {
        let machine = tiny_machine(Mesh::new(3, 3));
        for w in all(Scale::Tiny).iter().take(4) {
            let part = Partitioner::new(&machine, &w.program, PartitionConfig::default());
            let base = part.baseline(&w.program, &w.data);
            let report =
                gap_report(w.name, &w.program, part.layout(), &w.data, part.config(), &base);
            assert!(
                report.sound(),
                "{}: bound {} above baseline movement {}",
                w.name,
                report.bound,
                report.planner_movement
            );
        }
    }

    /// Footprint estimates are finite, and nonzero whenever a nest has at
    /// least one affine reference.
    #[test]
    fn footprint_lines_reflects_affine_references() {
        let machine = MachineConfig::knl_like();
        for w in &all(Scale::Tiny) {
            let part = Partitioner::new(&machine, &w.program, PartitionConfig::default());
            for nb in bound_program(&w.program, part.layout(), &w.data, part.config()) {
                let nest = &w.program.nests()[nb.nest];
                let any_affine = nest.body.iter().any(|s| {
                    let mut l = Vec::new();
                    rhs_leaves(&s.rhs, &mut l);
                    l.iter().copied().chain(std::iter::once(&s.lhs)).any(|r| r.is_affine())
                });
                assert_eq!(nb.footprint_lines > 0, any_affine, "{} nest {}", w.name, nb.nest);
            }
        }
    }

    /// Gap-ratio edge cases: zero/zero is optimal, nonzero/zero is vacuous.
    #[test]
    fn gap_ratio_edge_cases() {
        let mut r =
            GapReport { name: "x".into(), planner_movement: 0, bound: 0, nests: Vec::new() };
        assert_eq!(r.gap_ratio(), 1.0);
        r.planner_movement = 7;
        assert!(r.gap_ratio().is_infinite());
        r.bound = 7;
        assert_eq!(r.gap_ratio(), 1.0);
    }
}
