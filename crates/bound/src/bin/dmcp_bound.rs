//! Optimality-gap dashboard over the full 12-workload suite.
//!
//! Plans every workload with the default configuration, computes the
//! per-nest data-movement lower bounds, and writes `BENCH_bound.json`.
//! Exits nonzero if any workload's planner movement drops below its bound
//! (a soundness violation), if any workload row is missing, or if any
//! bound degenerates to zero while the planner moves data (a vacuous
//! bound is a regression of the dashboard itself).
//!
//! With `--pins` it additionally fails if any Tiny-scale workload's gap
//! ratio regresses above its pinned value in [`GAP_RATIO_PINS`] — the
//! CI guard that keeps the Steiner relay pass's tightenings from
//! silently eroding. Re-pin (by re-running without `--pins` and copying
//! the table) only alongside an intentional planner change.
//!
//! ```text
//! dmcp-bound [--scale tiny|small|full] [--out BENCH_bound.json] [--pins]
//! ```

use dmcp_bound::{gap_report, GapReport};
use dmcp_core::{PartitionConfig, Partitioner};
use dmcp_mach::MachineConfig;
use dmcp_workloads::{all, Scale};
use std::process::ExitCode;

const EXPECTED_WORKLOADS: usize = 12;

/// Maximum allowed gap ratio per workload at Tiny scale, pinned after
/// the Steiner relay pass landed (LU 92.69→92.50, Radiosity 2.60→2.59;
/// every other workload's MST plan was already relay-free optimal under
/// the pass's strict gate).
const GAP_RATIO_PINS: &[(&str, f64)] = &[
    ("Barnes", 2.9054),
    ("Cholesky", 150.2821),
    ("FFT", 8.3439),
    ("FMM", 7.7056),
    ("LU", 92.5000),
    ("Ocean", 4.9918),
    ("Radiosity", 2.5947),
    ("Radix", 2.8190),
    ("Raytrace", 5.9534),
    ("Water", 8.7240),
    ("MiniMD", 5.7728),
    ("MiniXyce", 7.2211),
];

/// Slack for the 4-decimal rendering of the pinned ratios.
const PIN_TOLERANCE: f64 = 5e-5;

fn render_json(reports: &[GapReport], sound: bool) -> String {
    let mut out = String::from("{\n  \"workloads\": [\n");
    for (i, r) in reports.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"planner_movement\": {}, \"bound\": {}, \
             \"gap_ratio\": {:.4}, \"nests\": [",
            r.name,
            r.planner_movement,
            r.bound,
            r.gap_ratio()
        ));
        for (j, (nb, planner)) in r.nests.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"nest\": {}, \"instances\": {}, \"bound\": {}, \"compulsory\": {}, \
                 \"footprint_lines\": {}, \"planner_movement\": {}}}",
                nb.nest, nb.instances, nb.bound, nb.compulsory, nb.footprint_lines, planner
            ));
        }
        out.push_str("]}");
        out.push_str(if i + 1 < reports.len() { ",\n" } else { "\n" });
    }
    out.push_str(&format!("  ],\n  \"sound\": {sound}\n}}\n"));
    out
}

fn main() -> ExitCode {
    let mut scale = Scale::Tiny;
    let mut out_path = "BENCH_bound.json".to_string();
    let mut pins = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--scale" => match it.next().as_deref() {
                Some("tiny") => scale = Scale::Tiny,
                Some("small") => scale = Scale::Small,
                Some("full") => scale = Scale::Full,
                _ => {
                    eprintln!("--scale needs tiny|small|full");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match it.next() {
                Some(p) => out_path = p,
                None => {
                    eprintln!("--out needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "--pins" => pins = true,
            other => {
                eprintln!(
                    "unknown flag {other}; usage: dmcp-bound [--scale S] [--out PATH] [--pins]"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    if pins && !matches!(scale, Scale::Tiny) {
        eprintln!("--pins is only meaningful at --scale tiny (the pinned table's scale)");
        return ExitCode::FAILURE;
    }

    let machine = MachineConfig::knl_like();
    let suite = all(scale);
    let mut reports: Vec<GapReport> = Vec::new();
    for w in &suite {
        let part = Partitioner::new(&machine, &w.program, PartitionConfig::default());
        let out = part.partition_with_data(&w.program, &w.data);
        reports.push(gap_report(w.name, &w.program, part.layout(), &w.data, part.config(), &out));
    }

    let mut failures: Vec<String> = Vec::new();
    if reports.len() != EXPECTED_WORKLOADS {
        failures
            .push(format!("expected {EXPECTED_WORKLOADS} workload rows, got {}", reports.len()));
    }
    println!(
        "{:<12} {:>16} {:>16} {:>10}",
        "workload", "planner-movement", "lower-bound", "gap-ratio"
    );
    for r in &reports {
        println!(
            "{:<12} {:>16} {:>16} {:>9.3}x",
            r.name,
            r.planner_movement,
            r.bound,
            r.gap_ratio()
        );
        if !r.sound() {
            failures.push(format!(
                "{}: planner movement {} below lower bound {} — bound unsound or planner broken",
                r.name, r.planner_movement, r.bound
            ));
        }
        if r.bound == 0 && r.planner_movement > 0 {
            failures.push(format!(
                "{}: vacuous zero bound under planner movement {}",
                r.name, r.planner_movement
            ));
        }
        if !r.gap_ratio().is_finite() {
            failures.push(format!("{}: non-finite gap ratio", r.name));
        }
        if pins {
            match GAP_RATIO_PINS.iter().find(|(n, _)| *n == r.name) {
                Some((_, max)) if r.gap_ratio() > max + PIN_TOLERANCE => {
                    failures.push(format!(
                        "{}: gap ratio {:.4} regressed above its pin {max:.4}",
                        r.name,
                        r.gap_ratio()
                    ));
                }
                Some(_) => {}
                None => failures.push(format!("{}: no gap-ratio pin for this workload", r.name)),
            }
        }
    }

    let sound = failures.is_empty();
    let json = render_json(&reports, sound);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("failed to write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    print!("{json}");

    if sound {
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("BOUND VIOLATION: {f}");
        }
        ExitCode::FAILURE
    }
}
