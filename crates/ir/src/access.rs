//! Array references: the operands the partitioner places near their data.

use std::fmt;

/// Identifier of a declared array within a [`crate::Program`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArrayId(pub(crate) u32);

impl ArrayId {
    /// Index into the program's array table.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates an id from a raw table index. Intended for tooling that
    /// enumerates a program's arrays.
    pub fn from_index(index: usize) -> Self {
        ArrayId(index as u32)
    }
}

impl fmt::Debug for ArrayId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "arr#{}", self.0)
    }
}

/// Identifier of a loop variable: its depth within the enclosing nest
/// (0 = outermost).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub(crate) u32);

impl VarId {
    /// Nesting depth of the variable.
    pub fn depth(self) -> usize {
        self.0 as usize
    }

    /// Creates a variable id from a nesting depth.
    pub fn from_depth(depth: usize) -> Self {
        VarId(depth as u32)
    }
}

impl fmt::Debug for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "var#{}", self.0)
    }
}

/// An affine function of the loop variables: `c0 + Σ coeff_d · var_d`.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct AffineExpr {
    /// Constant term.
    pub c0: i64,
    /// `(variable, coefficient)` pairs; at most one entry per variable.
    pub terms: Vec<(VarId, i64)>,
}

impl AffineExpr {
    /// The constant `c0`.
    pub fn constant(c0: i64) -> Self {
        Self { c0, terms: Vec::new() }
    }

    /// The bare variable `v`.
    pub fn var(v: VarId) -> Self {
        Self { c0: 0, terms: vec![(v, 1)] }
    }

    /// Adds `coeff · v` to the expression. Coefficients combine with
    /// wrapping arithmetic, matching [`AffineExpr::eval`] (a parsed
    /// subscript like `B[i*9223372036854775807 + i*2]` must fold without
    /// panicking).
    pub fn plus_term(mut self, v: VarId, coeff: i64) -> Self {
        if coeff != 0 {
            match self.terms.iter_mut().find(|(tv, _)| *tv == v) {
                Some((_, c)) => *c = c.wrapping_add(coeff),
                None => self.terms.push((v, coeff)),
            }
            self.terms.retain(|&(_, c)| c != 0);
        }
        self
    }

    /// Evaluates at a concrete iteration vector.
    ///
    /// Arithmetic wraps: subscript values are reduced into array bounds by
    /// `rem_euclid` downstream anyway, so two's-complement wrapping is the
    /// defined semantics for extreme coefficients (the `dmcp-check` fuzzer
    /// found debug-build overflow panics here with coefficients near
    /// `i64::MAX`).
    pub fn eval(&self, iter: &[i64]) -> i64 {
        self.terms.iter().fold(self.c0, |acc, &(v, c)| {
            acc.wrapping_add(c.wrapping_mul(iter.get(v.depth()).copied().unwrap_or(0)))
        })
    }

    /// `true` if the expression involves no loop variable.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }
}

/// One subscript of an array reference.
#[derive(Clone, Debug, PartialEq)]
pub enum IndexExpr {
    /// An affine subscript (`i`, `i+1`, `2*i+j`): statically analyzable.
    Affine(AffineExpr),
    /// An indirect subscript (`Y[i]` in `X[Y[i]]`): the subscript is the
    /// run-time value of another reference, so the target is a
    /// may-dependence / unanalyzable location at compile time.
    Indirect(Box<ArrayRef>),
}

impl IndexExpr {
    /// `true` for affine subscripts.
    pub fn is_affine(&self) -> bool {
        matches!(self, IndexExpr::Affine(_))
    }
}

/// A reference to an array element, e.g. `B[i+1]` or `X[Y[i]]`.
#[derive(Clone, Debug, PartialEq)]
pub struct ArrayRef {
    /// The referenced array.
    pub array: ArrayId,
    /// One subscript per array dimension.
    pub indices: Vec<IndexExpr>,
    /// Whether the compiler's static analysis can pin down this reference's
    /// location. Indirect subscripts force `false`; workload generators may
    /// also clear it on affine references to model aliasing/analysis limits
    /// (paper Table 1).
    pub analyzable: bool,
}

impl ArrayRef {
    /// Creates an affine, analyzable reference.
    pub fn affine(array: ArrayId, indices: Vec<AffineExpr>) -> Self {
        Self {
            array,
            indices: indices.into_iter().map(IndexExpr::Affine).collect(),
            analyzable: true,
        }
    }

    /// Creates a reference with arbitrary subscripts; analyzability follows
    /// from the subscripts (any indirect subscript ⇒ not analyzable).
    pub fn new(array: ArrayId, indices: Vec<IndexExpr>) -> Self {
        let analyzable = indices.iter().all(IndexExpr::is_affine);
        Self { array, indices, analyzable }
    }

    /// `true` if every subscript is affine.
    pub fn is_affine(&self) -> bool {
        self.indices.iter().all(IndexExpr::is_affine)
    }

    /// Marks the reference as unanalyzable (used by workload generators to
    /// model references the paper's compiler could not disambiguate).
    pub fn mark_unanalyzable(&mut self) {
        self.analyzable = false;
    }

    /// All references contained in this one, including itself and any
    /// references nested in indirect subscripts.
    pub fn all_refs(&self) -> Vec<&ArrayRef> {
        let mut out = vec![self];
        for idx in &self.indices {
            if let IndexExpr::Indirect(inner) = idx {
                out.extend(inner.all_refs());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(d: usize) -> VarId {
        VarId::from_depth(d)
    }

    #[test]
    fn affine_eval() {
        // 3 + 2*i - j at (i,j) = (5, 4) -> 9
        let e = AffineExpr::constant(3).plus_term(v(0), 2).plus_term(v(1), -1);
        assert_eq!(e.eval(&[5, 4]), 9);
    }

    #[test]
    fn plus_term_merges_and_cancels() {
        let e = AffineExpr::var(v(0)).plus_term(v(0), -1);
        assert!(e.is_constant());
        assert_eq!(e.eval(&[100]), 0);
    }

    #[test]
    fn missing_vars_evaluate_as_zero() {
        let e = AffineExpr::var(v(3));
        assert_eq!(e.eval(&[1, 2]), 0);
    }

    // dmcp-check shrunken counterexample: `B[i*4611686018427387904]` at
    // i = 4 overflowed `c * iter` in debug builds. Evaluation now wraps.
    #[test]
    fn eval_wraps_on_extreme_coefficients() {
        let e = AffineExpr::constant(i64::MAX).plus_term(v(0), 1 << 62);
        assert_eq!(e.eval(&[4]), i64::MAX.wrapping_add((1i64 << 62).wrapping_mul(4)));
    }

    // dmcp-check shrunken counterexample: parsing
    // `B[i*9223372036854775807 + i*2]` folded the two coefficients with a
    // checked add and panicked in debug builds.
    #[test]
    fn plus_term_wraps_when_merging_coefficients() {
        let e = AffineExpr::var(v(0)).plus_term(v(0), i64::MAX);
        assert_eq!(e.terms, vec![(v(0), i64::MIN)]);
    }

    #[test]
    fn affine_ref_is_analyzable() {
        let r = ArrayRef::affine(ArrayId(0), vec![AffineExpr::var(v(0))]);
        assert!(r.is_affine());
        assert!(r.analyzable);
    }

    #[test]
    fn indirect_ref_is_not_analyzable() {
        let inner = ArrayRef::affine(ArrayId(1), vec![AffineExpr::var(v(0))]);
        let r = ArrayRef::new(ArrayId(0), vec![IndexExpr::Indirect(Box::new(inner))]);
        assert!(!r.is_affine());
        assert!(!r.analyzable);
    }

    #[test]
    fn all_refs_includes_nested() {
        let inner = ArrayRef::affine(ArrayId(1), vec![AffineExpr::var(v(0))]);
        let r = ArrayRef::new(ArrayId(0), vec![IndexExpr::Indirect(Box::new(inner))]);
        let refs = r.all_refs();
        assert_eq!(refs.len(), 2);
        assert_eq!(refs[0].array, ArrayId(0));
        assert_eq!(refs[1].array, ArrayId(1));
    }

    #[test]
    fn mark_unanalyzable() {
        let mut r = ArrayRef::affine(ArrayId(0), vec![AffineExpr::constant(0)]);
        r.mark_unanalyzable();
        assert!(!r.analyzable);
        assert!(r.is_affine());
    }
}
