//! Array references: the operands the partitioner places near their data.

use std::fmt;

/// Identifier of a declared array within a [`crate::Program`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArrayId(pub(crate) u32);

impl ArrayId {
    /// Index into the program's array table.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates an id from a raw table index. Intended for tooling that
    /// enumerates a program's arrays.
    pub fn from_index(index: usize) -> Self {
        ArrayId(index as u32)
    }
}

impl fmt::Debug for ArrayId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "arr#{}", self.0)
    }
}

/// Identifier of a loop variable: its depth within the enclosing nest
/// (0 = outermost).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub(crate) u32);

impl VarId {
    /// Nesting depth of the variable.
    pub fn depth(self) -> usize {
        self.0 as usize
    }

    /// Creates a variable id from a nesting depth.
    pub fn from_depth(depth: usize) -> Self {
        VarId(depth as u32)
    }
}

impl fmt::Debug for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "var#{}", self.0)
    }
}

/// An affine function of the loop variables: `c0 + Σ coeff_d · var_d`.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct AffineExpr {
    /// Constant term.
    pub c0: i64,
    /// `(variable, coefficient)` pairs; at most one entry per variable.
    pub terms: Vec<(VarId, i64)>,
}

impl AffineExpr {
    /// The constant `c0`.
    pub fn constant(c0: i64) -> Self {
        Self { c0, terms: Vec::new() }
    }

    /// The bare variable `v`.
    pub fn var(v: VarId) -> Self {
        Self { c0: 0, terms: vec![(v, 1)] }
    }

    /// Adds `coeff · v` to the expression. Coefficients combine with
    /// wrapping arithmetic, matching [`AffineExpr::eval`] (a parsed
    /// subscript like `B[i*9223372036854775807 + i*2]` must fold without
    /// panicking).
    pub fn plus_term(mut self, v: VarId, coeff: i64) -> Self {
        if coeff != 0 {
            match self.terms.iter_mut().find(|(tv, _)| *tv == v) {
                Some((_, c)) => *c = c.wrapping_add(coeff),
                None => self.terms.push((v, coeff)),
            }
            self.terms.retain(|&(_, c)| c != 0);
        }
        self
    }

    /// Evaluates at a concrete iteration vector.
    ///
    /// Arithmetic wraps: subscript values are reduced into array bounds by
    /// `rem_euclid` downstream anyway, so two's-complement wrapping is the
    /// defined semantics for extreme coefficients (the `dmcp-check` fuzzer
    /// found debug-build overflow panics here with coefficients near
    /// `i64::MAX`).
    pub fn eval(&self, iter: &[i64]) -> i64 {
        self.terms.iter().fold(self.c0, |acc, &(v, c)| {
            acc.wrapping_add(c.wrapping_mul(iter.get(v.depth()).copied().unwrap_or(0)))
        })
    }

    /// `true` if the expression involves no loop variable.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// Inclusive `(min, max)` of the expression over an iteration box:
    /// `ranges[d]` is the half-open `lo..hi` range of the depth-`d` loop
    /// variable (a [`crate::program::LoopDim`]). Variables beyond the box
    /// evaluate as 0, matching [`AffineExpr::eval`]. Computed in 128-bit
    /// arithmetic and saturated to `i64`, so extreme coefficients report a
    /// conservative (full-range) answer instead of a wrapped one.
    pub fn bounds_over(&self, ranges: &[(i64, i64)]) -> (i64, i64) {
        let mut lo = i128::from(self.c0);
        let mut hi = i128::from(self.c0);
        for &(v, c) in &self.terms {
            let (vlo, vhi) = match ranges.get(v.depth()) {
                Some(&(a, b)) if a < b => (i128::from(a), i128::from(b) - 1),
                _ => (0, 0),
            };
            let (a, b) = (i128::from(c) * vlo, i128::from(c) * vhi);
            lo += a.min(b);
            hi += a.max(b);
        }
        (
            lo.clamp(i128::from(i64::MIN), i128::from(i64::MAX)) as i64,
            hi.clamp(i128::from(i64::MIN), i128::from(i64::MAX)) as i64,
        )
    }

    /// Upper bound on the number of *distinct* values the expression takes
    /// over the iteration box (same conventions as
    /// [`AffineExpr::bounds_over`]): the smaller of the value span and the
    /// number of iteration points the participating variables enumerate.
    /// Exact for the single-variable strides the workloads use.
    pub fn distinct_over(&self, ranges: &[(i64, i64)]) -> u64 {
        let mut points = 1u128;
        let mut varies = false;
        for &(v, _) in &self.terms {
            if let Some(&(a, b)) = ranges.get(v.depth()) {
                if a < b {
                    varies = true;
                    points = points.saturating_mul((b - a) as u128);
                }
            }
        }
        if !varies {
            return 1;
        }
        let (lo, hi) = self.bounds_over(ranges);
        let span = (i128::from(hi) - i128::from(lo) + 1) as u128;
        u64::try_from(points.min(span)).unwrap_or(u64::MAX)
    }
}

/// One subscript of an array reference.
#[derive(Clone, Debug, PartialEq)]
pub enum IndexExpr {
    /// An affine subscript (`i`, `i+1`, `2*i+j`): statically analyzable.
    Affine(AffineExpr),
    /// An indirect subscript (`Y[i]` in `X[Y[i]]`): the subscript is the
    /// run-time value of another reference, so the target is a
    /// may-dependence / unanalyzable location at compile time.
    Indirect(Box<ArrayRef>),
}

impl IndexExpr {
    /// `true` for affine subscripts.
    pub fn is_affine(&self) -> bool {
        matches!(self, IndexExpr::Affine(_))
    }
}

/// A reference to an array element, e.g. `B[i+1]` or `X[Y[i]]`.
#[derive(Clone, Debug, PartialEq)]
pub struct ArrayRef {
    /// The referenced array.
    pub array: ArrayId,
    /// One subscript per array dimension.
    pub indices: Vec<IndexExpr>,
    /// Whether the compiler's static analysis can pin down this reference's
    /// location. Indirect subscripts force `false`; workload generators may
    /// also clear it on affine references to model aliasing/analysis limits
    /// (paper Table 1).
    pub analyzable: bool,
}

impl ArrayRef {
    /// Creates an affine, analyzable reference.
    pub fn affine(array: ArrayId, indices: Vec<AffineExpr>) -> Self {
        Self {
            array,
            indices: indices.into_iter().map(IndexExpr::Affine).collect(),
            analyzable: true,
        }
    }

    /// Creates a reference with arbitrary subscripts; analyzability follows
    /// from the subscripts (any indirect subscript ⇒ not analyzable).
    pub fn new(array: ArrayId, indices: Vec<IndexExpr>) -> Self {
        let analyzable = indices.iter().all(IndexExpr::is_affine);
        Self { array, indices, analyzable }
    }

    /// `true` if every subscript is affine.
    pub fn is_affine(&self) -> bool {
        self.indices.iter().all(IndexExpr::is_affine)
    }

    /// Marks the reference as unanalyzable (used by workload generators to
    /// model references the paper's compiler could not disambiguate).
    pub fn mark_unanalyzable(&mut self) {
        self.analyzable = false;
    }

    /// Upper bound on the number of distinct index tuples the reference
    /// touches over an iteration box (`ranges[d]` = half-open `lo..hi` of
    /// the depth-`d` loop variable): the product of each affine
    /// subscript's [`AffineExpr::distinct_over`]. `None` for indirect
    /// references, whose footprint is data-dependent.
    ///
    /// This is the static "distinct footprint" term of the compulsory
    /// lower-bound construction (`dmcp-bound`); subscript wrapping into
    /// the array extents downstream can only merge tuples, so the product
    /// stays an upper bound on touched elements.
    pub fn footprint_over(&self, ranges: &[(i64, i64)]) -> Option<u64> {
        let mut total = 1u128;
        for idx in &self.indices {
            match idx {
                IndexExpr::Affine(a) => {
                    total = total.saturating_mul(u128::from(a.distinct_over(ranges)));
                }
                IndexExpr::Indirect(_) => return None,
            }
        }
        Some(u64::try_from(total).unwrap_or(u64::MAX))
    }

    /// All references contained in this one, including itself and any
    /// references nested in indirect subscripts.
    pub fn all_refs(&self) -> Vec<&ArrayRef> {
        let mut out = vec![self];
        for idx in &self.indices {
            if let IndexExpr::Indirect(inner) = idx {
                out.extend(inner.all_refs());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(d: usize) -> VarId {
        VarId::from_depth(d)
    }

    #[test]
    fn affine_eval() {
        // 3 + 2*i - j at (i,j) = (5, 4) -> 9
        let e = AffineExpr::constant(3).plus_term(v(0), 2).plus_term(v(1), -1);
        assert_eq!(e.eval(&[5, 4]), 9);
    }

    #[test]
    fn plus_term_merges_and_cancels() {
        let e = AffineExpr::var(v(0)).plus_term(v(0), -1);
        assert!(e.is_constant());
        assert_eq!(e.eval(&[100]), 0);
    }

    #[test]
    fn missing_vars_evaluate_as_zero() {
        let e = AffineExpr::var(v(3));
        assert_eq!(e.eval(&[1, 2]), 0);
    }

    // dmcp-check shrunken counterexample: `B[i*4611686018427387904]` at
    // i = 4 overflowed `c * iter` in debug builds. Evaluation now wraps.
    #[test]
    fn eval_wraps_on_extreme_coefficients() {
        let e = AffineExpr::constant(i64::MAX).plus_term(v(0), 1 << 62);
        assert_eq!(e.eval(&[4]), i64::MAX.wrapping_add((1i64 << 62).wrapping_mul(4)));
    }

    // dmcp-check shrunken counterexample: parsing
    // `B[i*9223372036854775807 + i*2]` folded the two coefficients with a
    // checked add and panicked in debug builds.
    #[test]
    fn plus_term_wraps_when_merging_coefficients() {
        let e = AffineExpr::var(v(0)).plus_term(v(0), i64::MAX);
        assert_eq!(e.terms, vec![(v(0), i64::MIN)]);
    }

    #[test]
    fn affine_ref_is_analyzable() {
        let r = ArrayRef::affine(ArrayId(0), vec![AffineExpr::var(v(0))]);
        assert!(r.is_affine());
        assert!(r.analyzable);
    }

    #[test]
    fn indirect_ref_is_not_analyzable() {
        let inner = ArrayRef::affine(ArrayId(1), vec![AffineExpr::var(v(0))]);
        let r = ArrayRef::new(ArrayId(0), vec![IndexExpr::Indirect(Box::new(inner))]);
        assert!(!r.is_affine());
        assert!(!r.analyzable);
    }

    #[test]
    fn all_refs_includes_nested() {
        let inner = ArrayRef::affine(ArrayId(1), vec![AffineExpr::var(v(0))]);
        let r = ArrayRef::new(ArrayId(0), vec![IndexExpr::Indirect(Box::new(inner))]);
        let refs = r.all_refs();
        assert_eq!(refs.len(), 2);
        assert_eq!(refs[0].array, ArrayId(0));
        assert_eq!(refs[1].array, ArrayId(1));
    }

    #[test]
    fn bounds_over_tracks_signs_and_missing_vars() {
        // 3 + 2*i - j over i ∈ 0..4, j ∈ 1..3 → min 3+0-2=1, max 3+6-1=8.
        let e = AffineExpr::constant(3).plus_term(v(0), 2).plus_term(v(1), -1);
        assert_eq!(e.bounds_over(&[(0, 4), (1, 3)]), (1, 8));
        // A variable beyond the box evaluates as 0, like eval().
        let f = AffineExpr::constant(5).plus_term(v(3), 7);
        assert_eq!(f.bounds_over(&[(0, 4)]), (5, 5));
        // Extreme coefficients saturate instead of wrapping.
        let g = AffineExpr::constant(0).plus_term(v(0), i64::MAX);
        assert_eq!(g.bounds_over(&[(-2, 3)]).0, i64::MIN);
        assert_eq!(g.bounds_over(&[(-2, 3)]).1, i64::MAX);
    }

    #[test]
    fn distinct_over_is_exact_for_strides() {
        // i over 0..10: 10 distinct values.
        assert_eq!(AffineExpr::var(v(0)).distinct_over(&[(0, 10)]), 10);
        // 4*i over 0..10: still 10 (span 37 but only 10 points).
        let strided = AffineExpr::constant(0).plus_term(v(0), 4);
        assert_eq!(strided.distinct_over(&[(0, 10)]), 10);
        // i + j over i,j ∈ 0..4: span 0..=6 → 7 < 16 points.
        let sum = AffineExpr::var(v(0)).plus_term(v(1), 1);
        assert_eq!(sum.distinct_over(&[(0, 4), (0, 4)]), 7);
        // Constants take one value.
        assert_eq!(AffineExpr::constant(9).distinct_over(&[(0, 100)]), 1);
    }

    #[test]
    fn footprint_over_multiplies_subscripts_and_rejects_indirect() {
        let r = ArrayRef::affine(ArrayId(0), vec![AffineExpr::var(v(0)), AffineExpr::var(v(1))]);
        assert_eq!(r.footprint_over(&[(0, 8), (0, 3)]), Some(24));
        let inner = ArrayRef::affine(ArrayId(1), vec![AffineExpr::var(v(0))]);
        let ind = ArrayRef::new(ArrayId(0), vec![IndexExpr::Indirect(Box::new(inner))]);
        assert_eq!(ind.footprint_over(&[(0, 8)]), None);
    }

    #[test]
    fn mark_unanalyzable() {
        let mut r = ArrayRef::affine(ArrayId(0), vec![AffineExpr::constant(0)]);
        r.mark_unanalyzable();
        assert!(!r.analyzable);
        assert!(r.is_affine());
    }
}
