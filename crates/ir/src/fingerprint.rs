//! Canonical structural hashing of programs.
//!
//! The serving layer (`dmcp-serve`) keys its plan cache on a *stable*
//! fingerprint of everything that determines a partition: the program, the
//! machine, the partitioner configuration and the fault plan. Rust's
//! `std::hash::Hash` is explicitly not stable across releases, so this
//! module provides an in-tree FNV-1a based hasher whose output is a pure
//! function of the hashed bytes — the same program fingerprints identically
//! on every run, platform and toolchain.
//!
//! The hash is *structural*: source-level identifier names (array names,
//! loop-variable names) do not participate, so two programs that differ
//! only in spelling share a fingerprint and therefore a cached plan.
//! Everything that feeds the partitioner's decisions does participate:
//! array shapes and base addresses, loop bounds, statement ASTs including
//! operator structure and indirect subscripts, analyzability flags, and —
//! for [`DataStore`] — the concrete values indirect references resolve
//! through.

use crate::access::{AffineExpr, ArrayRef, IndexExpr};
use crate::expr::Expr;
use crate::program::{ArrayDecl, DataStore, LoopDim, LoopNest, Program, Statement};
use dmcp_hash::Fnv64;

/// A streaming FNV-1a hasher with stable, platform-independent output.
///
/// The byte fold itself is the shared [`dmcp_hash::Fnv64`] primitive; this
/// wrapper adds the typed `write_*` encodings (little-endian integers,
/// bit-pattern floats, length prefixes) the structural hashes are defined
/// in terms of.
///
/// # Examples
///
/// ```
/// use dmcp_ir::fingerprint::StableHasher;
///
/// let mut a = StableHasher::new();
/// a.write_u64(42);
/// let mut b = StableHasher::new();
/// b.write_u64(42);
/// assert_eq!(a.finish(), b.finish());
/// ```
#[derive(Clone, Debug)]
pub struct StableHasher {
    state: Fnv64,
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl StableHasher {
    /// A fresh hasher at the FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Self {
        Self { state: Fnv64::new() }
    }

    /// Folds raw bytes into the state.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.state.write(bytes);
    }

    /// Folds a `u64` (little-endian bytes).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Folds an `i64`.
    pub fn write_i64(&mut self, v: i64) {
        self.write_u64(v as u64);
    }

    /// Folds a `u32`.
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Folds a byte (used for enum discriminants and bools).
    pub fn write_u8(&mut self, v: u8) {
        self.write_bytes(&[v]);
    }

    /// Folds an `f64` through its bit pattern (`-0.0` and `0.0` differ;
    /// NaNs with different payloads differ — bit-identity is the contract).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Folds a length prefix, guarding sequence hashes against ambiguity
    /// (`[ab][c]` vs `[a][bc]`).
    pub fn write_len(&mut self, len: usize) {
        self.write_u64(len as u64);
    }

    /// The current hash value.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.state.finish()
    }
}

/// Types with a canonical, platform-stable structural hash.
pub trait StableHash {
    /// Folds `self` into the hasher.
    fn stable_hash(&self, h: &mut StableHasher);

    /// Convenience: the fingerprint of `self` alone.
    fn fingerprint(&self) -> u64 {
        let mut h = StableHasher::new();
        self.stable_hash(&mut h);
        h.finish()
    }
}

impl StableHash for AffineExpr {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_i64(self.c0);
        h.write_len(self.terms.len());
        for &(v, c) in &self.terms {
            h.write_u32(v.depth() as u32);
            h.write_i64(c);
        }
    }
}

impl StableHash for IndexExpr {
    fn stable_hash(&self, h: &mut StableHasher) {
        match self {
            IndexExpr::Affine(a) => {
                h.write_u8(0);
                a.stable_hash(h);
            }
            IndexExpr::Indirect(inner) => {
                h.write_u8(1);
                inner.stable_hash(h);
            }
        }
    }
}

impl StableHash for ArrayRef {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u32(self.array.index() as u32);
        h.write_u8(u8::from(self.analyzable));
        h.write_len(self.indices.len());
        for idx in &self.indices {
            idx.stable_hash(h);
        }
    }
}

impl StableHash for Expr {
    fn stable_hash(&self, h: &mut StableHasher) {
        match self {
            Expr::Const(v) => {
                h.write_u8(0);
                h.write_f64(*v);
            }
            Expr::Ref(r) => {
                h.write_u8(1);
                r.stable_hash(h);
            }
            Expr::Bin { op, lhs, rhs } => {
                h.write_u8(2);
                h.write_u8(*op as u8);
                lhs.stable_hash(h);
                rhs.stable_hash(h);
            }
        }
    }
}

impl StableHash for Statement {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.lhs.stable_hash(h);
        self.rhs.stable_hash(h);
    }
}

impl StableHash for LoopDim {
    fn stable_hash(&self, h: &mut StableHasher) {
        // Structural: the variable is identified by its depth within the
        // nest, not by its source name.
        h.write_i64(self.lo);
        h.write_i64(self.hi);
    }
}

impl StableHash for LoopNest {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_len(self.dims.len());
        for d in &self.dims {
            d.stable_hash(h);
        }
        h.write_len(self.body.len());
        for s in &self.body {
            s.stable_hash(h);
        }
    }
}

impl StableHash for ArrayDecl {
    fn stable_hash(&self, h: &mut StableHasher) {
        // Structural: the name is omitted; the base VA participates because
        // it determines the memory layout the partitioner plans against.
        h.write_len(self.dims.len());
        for &d in &self.dims {
            h.write_u64(d);
        }
        h.write_u32(self.elem_size);
        h.write_u64(self.base_va);
        h.write_u8(u8::from(self.hot));
    }
}

impl StableHash for Program {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_len(self.arrays().len());
        for a in self.arrays() {
            a.stable_hash(h);
        }
        h.write_len(self.nests().len());
        for n in self.nests() {
            n.stable_hash(h);
        }
    }
}

impl StableHash for DataStore {
    fn stable_hash(&self, h: &mut StableHasher) {
        let values = self.raw_values();
        h.write_len(values.len());
        for v in values {
            h.write_len(v.len());
            for &x in v {
                h.write_f64(x);
            }
        }
    }
}

impl Program {
    /// The canonical structural fingerprint of the program: stable across
    /// runs and platforms, independent of identifier spelling.
    #[must_use]
    pub fn structural_hash(&self) -> u64 {
        self.fingerprint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;

    fn simple(names: [&str; 3], stmt: &str) -> Program {
        let mut b = ProgramBuilder::new();
        for n in names {
            b.array(n, &[64], 8);
        }
        b.nest(&[("i", 0, 32)], &[stmt]).unwrap();
        b.build()
    }

    #[test]
    fn hash_is_deterministic() {
        let p = simple(["A", "B", "C"], "A[i] = B[i] + C[i]");
        assert_eq!(p.structural_hash(), p.structural_hash());
        let q = simple(["A", "B", "C"], "A[i] = B[i] + C[i]");
        assert_eq!(p.structural_hash(), q.structural_hash());
    }

    #[test]
    fn hash_ignores_identifier_names() {
        let p = simple(["A", "B", "C"], "A[i] = B[i] + C[i]");
        let q = simple(["X", "Y", "Z"], "X[i] = Y[i] + Z[i]");
        assert_eq!(p.structural_hash(), q.structural_hash());
        // Renaming the loop variable is also structural.
        let mut b = ProgramBuilder::new();
        for n in ["A", "B", "C"] {
            b.array(n, &[64], 8);
        }
        b.nest(&[("k", 0, 32)], &["A[k] = B[k] + C[k]"]).unwrap();
        assert_eq!(p.structural_hash(), b.build().structural_hash());
    }

    #[test]
    fn hash_sees_structure() {
        let base = simple(["A", "B", "C"], "A[i] = B[i] + C[i]");
        // Different operator.
        let op = simple(["A", "B", "C"], "A[i] = B[i] * C[i]");
        assert_ne!(base.structural_hash(), op.structural_hash());
        // Different subscript.
        let idx = simple(["A", "B", "C"], "A[i] = B[i+1] + C[i]");
        assert_ne!(base.structural_hash(), idx.structural_hash());
        // Different bounds.
        let mut b = ProgramBuilder::new();
        for n in ["A", "B", "C"] {
            b.array(n, &[64], 8);
        }
        b.nest(&[("i", 0, 33)], &["A[i] = B[i] + C[i]"]).unwrap();
        assert_ne!(base.structural_hash(), b.build().structural_hash());
        // Different array extent (moves base VAs too).
        let mut b = ProgramBuilder::new();
        b.array("A", &[64], 8);
        b.array("B", &[128], 8);
        b.array("C", &[64], 8);
        b.nest(&[("i", 0, 32)], &["A[i] = B[i] + C[i]"]).unwrap();
        assert_ne!(base.structural_hash(), b.build().structural_hash());
    }

    #[test]
    fn hash_sees_indirection_and_analyzability() {
        let affine = simple(["A", "B", "C"], "A[i] = B[i] + C[i]");
        let indirect = simple(["A", "B", "C"], "A[B[i]] = B[i] + C[i]");
        assert_ne!(affine.structural_hash(), indirect.structural_hash());

        let mut marked = affine.clone();
        marked.nests_mut()[0].body[0].for_each_ref_mut(&mut |r| r.mark_unanalyzable());
        assert_ne!(affine.structural_hash(), marked.structural_hash());
    }

    #[test]
    fn data_store_hash_tracks_values() {
        let p = simple(["A", "B", "C"], "A[i] = B[i] + C[i]");
        let d1 = p.initial_data();
        let d2 = p.initial_data();
        assert_eq!(d1.fingerprint(), d2.fingerprint());
        let mut d3 = p.initial_data();
        d3.set(crate::access::ArrayId::from_index(1), 7, 1234.5);
        assert_ne!(d1.fingerprint(), d3.fingerprint());
    }

    #[test]
    fn length_prefixes_disambiguate_sequences() {
        // One nest with two statements vs two nests with one each.
        let mut a = ProgramBuilder::new();
        for n in ["A", "B"] {
            a.array(n, &[64], 8);
        }
        a.nest(&[("i", 0, 8)], &["A[i] = B[i] + 1", "B[i] = A[i] + 1"]).unwrap();
        let mut b = ProgramBuilder::new();
        for n in ["A", "B"] {
            b.array(n, &[64], 8);
        }
        b.nest(&[("i", 0, 8)], &["A[i] = B[i] + 1"]).unwrap();
        b.nest(&[("i", 0, 8)], &["B[i] = A[i] + 1"]).unwrap();
        assert_ne!(a.build().structural_hash(), b.build().structural_hash());
    }
}
