//! The expression AST of statement right-hand sides.

use crate::access::ArrayRef;
use crate::op::BinOp;

/// An expression tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// A numeric literal.
    Const(f64),
    /// An array-element read.
    Ref(ArrayRef),
    /// A binary operation.
    Bin {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
}

impl Expr {
    /// Convenience constructor for a binary node.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Bin { op, lhs: Box::new(lhs), rhs: Box::new(rhs) }
    }

    /// All array references read by the expression, in left-to-right source
    /// order (including references inside indirect subscripts).
    pub fn reads(&self) -> Vec<&ArrayRef> {
        let mut out = Vec::new();
        self.collect_reads(&mut out);
        out
    }

    fn collect_reads<'a>(&'a self, out: &mut Vec<&'a ArrayRef>) {
        match self {
            Expr::Const(_) => {}
            Expr::Ref(r) => out.extend(r.all_refs()),
            Expr::Bin { lhs, rhs, .. } => {
                lhs.collect_reads(out);
                rhs.collect_reads(out);
            }
        }
    }

    /// Number of binary operations in the expression.
    pub fn op_count(&self) -> usize {
        match self {
            Expr::Const(_) | Expr::Ref(_) => 0,
            Expr::Bin { lhs, rhs, .. } => 1 + lhs.op_count() + rhs.op_count(),
        }
    }

    /// All operators in the expression, in tree order.
    pub fn ops(&self) -> Vec<BinOp> {
        let mut out = Vec::new();
        self.collect_ops(&mut out);
        out
    }

    fn collect_ops(&self, out: &mut Vec<BinOp>) {
        if let Expr::Bin { op, lhs, rhs } = self {
            out.push(*op);
            lhs.collect_ops(out);
            rhs.collect_ops(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{AffineExpr, ArrayId, ArrayRef, IndexExpr, VarId};

    fn r(id: u32) -> Expr {
        Expr::Ref(ArrayRef::affine(
            ArrayId::from_index(id as usize),
            vec![AffineExpr::var(VarId::from_depth(0))],
        ))
    }

    #[test]
    fn reads_in_source_order() {
        let e = Expr::bin(BinOp::Add, r(0), Expr::bin(BinOp::Mul, r(1), r(2)));
        let arrays: Vec<_> = e.reads().iter().map(|a| a.array.index()).collect();
        assert_eq!(arrays, vec![0, 1, 2]);
    }

    #[test]
    fn reads_see_through_indirection() {
        let inner =
            ArrayRef::affine(ArrayId::from_index(5), vec![AffineExpr::var(VarId::from_depth(0))]);
        let outer =
            ArrayRef::new(ArrayId::from_index(4), vec![IndexExpr::Indirect(Box::new(inner))]);
        let e = Expr::Ref(outer);
        let arrays: Vec<_> = e.reads().iter().map(|a| a.array.index()).collect();
        assert_eq!(arrays, vec![4, 5]);
    }

    #[test]
    fn op_counts() {
        let e = Expr::bin(BinOp::Add, r(0), Expr::bin(BinOp::Mul, r(1), r(2)));
        assert_eq!(e.op_count(), 2);
        assert_eq!(e.ops(), vec![BinOp::Add, BinOp::Mul]);
        assert_eq!(Expr::Const(1.0).op_count(), 0);
    }
}
