//! The inspector half of the inspector/executor scheme (paper Section 4.5).
//!
//! Irregular applications index arrays through other arrays (`X[Y[i]]`), so
//! the targets of such references — and therefore the may-dependences they
//! induce — are unknown at compile time. Following Das et al. (ref. \[15\]), the
//! paper inserts an *inspector* into the first iterations of the outer
//! timing loop: it records where the indirect references actually go, and
//! the *executor* (the remaining timing iterations, where subcomputation
//! scheduling is enabled) consumes that information.
//!
//! [`Inspector::inspect`] plays the inspector role: it walks a nest once
//! with the concrete run-time data and records the resolved element of every
//! indirect reference per (statement, iteration). The partitioner then
//! schedules the executor phase against exact locations instead of
//! conservative may-dependences.

use crate::access::ArrayRef;
use crate::program::{DataStore, IterVec, LoopNest, Program};
use std::collections::HashMap;

/// Key identifying one reference instance: (statement index in the body,
/// occurrence index within [`crate::program::Statement::all_refs`],
/// iteration vector).
type RefInstance = (usize, usize, IterVec);

/// Run-time-resolved locations of indirect references in one loop nest.
#[derive(Clone, Debug, Default)]
pub struct Inspector {
    resolved: HashMap<RefInstance, u64>,
}

impl Inspector {
    /// Runs the inspection pass over `nest` with data `data`, resolving the
    /// element index of every non-affine reference instance.
    ///
    /// The inspection is read-only: it mirrors the paper's scheme of running
    /// the *first* timing iterations unoptimized purely to observe the
    /// indirection pattern, which is assumed stable across the timing loop
    /// (true for the irregular kernels the paper targets).
    ///
    /// # Examples
    ///
    /// ```
    /// use dmcp_ir::program::ProgramBuilder;
    /// use dmcp_ir::inspector::Inspector;
    ///
    /// let mut b = ProgramBuilder::new();
    /// b.array("X", &[8], 8);
    /// b.array("Y", &[8], 8);
    /// b.array("Z", &[8], 8);
    /// b.nest(&[("i", 0, 8)], &["X[Y[i]] = Z[i]"])?;
    /// let p = b.build();
    /// let data = p.initial_data();
    /// let insp = Inspector::inspect(&p, &p.nests()[0], &data);
    /// assert!(insp.instance_count() > 0);
    /// # Ok::<(), dmcp_ir::program::BuildError>(())
    /// ```
    pub fn inspect(program: &Program, nest: &LoopNest, data: &DataStore) -> Self {
        let mut resolved = HashMap::new();
        for iter in nest.iterations() {
            for (si, stmt) in nest.body.iter().enumerate() {
                for (ri, r) in stmt.all_refs().iter().enumerate() {
                    if !r.is_affine() {
                        let elem = program.element_of(r, &iter, data);
                        resolved.insert((si, ri, iter.clone()), elem);
                    }
                }
            }
        }
        Self { resolved }
    }

    /// The element a non-affine reference instance was observed to touch;
    /// `None` for affine references (resolve those statically) or
    /// uninspected instances.
    pub fn resolved_element(
        &self,
        stmt_index: usize,
        ref_index: usize,
        iter: &[i64],
    ) -> Option<u64> {
        self.resolved.get(&(stmt_index, ref_index, iter.to_vec())).copied()
    }

    /// Resolves a reference instance: statically if affine, from the
    /// inspection record otherwise.
    pub fn element_of(
        &self,
        program: &Program,
        r: &ArrayRef,
        stmt_index: usize,
        ref_index: usize,
        iter: &[i64],
    ) -> Option<u64> {
        if r.is_affine() {
            Some(program.element_of_affine(r, iter))
        } else {
            self.resolved_element(stmt_index, ref_index, iter)
        }
    }

    /// Number of resolved indirect-reference instances.
    pub fn instance_count(&self) -> usize {
        self.resolved.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;

    #[test]
    fn inspects_indirect_targets() {
        let mut b = ProgramBuilder::new();
        b.array("X", &[8], 8);
        let y = b.array("Y", &[8], 8);
        b.array("Z", &[8], 8);
        b.nest(&[("i", 0, 4)], &["X[Y[i]] = Z[i]"]).unwrap();
        let p = b.build();
        let mut data = p.initial_data();
        data.fill(y, &[3.0, 1.0, 4.0, 1.0]);
        let insp = Inspector::inspect(&p, &p.nests()[0], &data);
        // The lhs X[Y[i]] is ref index 0 in all_refs().
        assert_eq!(insp.resolved_element(0, 0, &[0]), Some(3));
        assert_eq!(insp.resolved_element(0, 0, &[2]), Some(4));
        assert_eq!(insp.instance_count(), 4);
    }

    #[test]
    fn affine_refs_resolve_statically() {
        let mut b = ProgramBuilder::new();
        b.array("A", &[8], 8);
        b.array("B", &[8], 8);
        b.nest(&[("i", 0, 4)], &["A[i] = B[i+1]"]).unwrap();
        let p = b.build();
        let data = p.initial_data();
        let insp = Inspector::inspect(&p, &p.nests()[0], &data);
        assert_eq!(insp.instance_count(), 0);
        let stmt = &p.nests()[0].body[0];
        let reads = stmt.all_refs();
        // all_refs: [lhs A[i], B[i+1]]
        assert_eq!(insp.element_of(&p, reads[1], 0, 1, &[2]), Some(3));
    }

    #[test]
    fn uninspected_instance_is_none() {
        let insp = Inspector::default();
        assert_eq!(insp.resolved_element(0, 0, &[0]), None);
    }
}
