//! Programs: array declarations, loop nests, statements and data.

use crate::access::{ArrayId, ArrayRef, IndexExpr, VarId};
use crate::expr::Expr;
use crate::parser::{parse_statement, ParseCtx, ParseError};
use crate::symbol::{Symbol, SymbolTable};
use std::fmt;

/// A concrete iteration vector (outermost loop first).
pub type IterVec = Vec<i64>;

/// One dimension of a loop nest: `for var in lo..hi`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoopDim {
    /// Interned source name of the loop variable (resolved through the
    /// owning program's [`SymbolTable`]; display-only).
    pub name: Symbol,
    /// Inclusive lower bound.
    pub lo: i64,
    /// Exclusive upper bound.
    pub hi: i64,
}

impl LoopDim {
    /// Number of iterations of this dimension. Saturates instead of
    /// overflowing for pathological bounds like `(i64::MIN, i64::MAX)`
    /// (found by the `dmcp-check` program-shape fuzzer).
    pub fn trip_count(&self) -> u64 {
        if self.hi <= self.lo {
            return 0;
        }
        u64::try_from(i128::from(self.hi) - i128::from(self.lo)).unwrap_or(u64::MAX)
    }
}

/// A statement `lhs = rhs` inside a loop body.
#[derive(Clone, Debug, PartialEq)]
pub struct Statement {
    /// The written reference (the "store node" owner in the paper).
    pub lhs: ArrayRef,
    /// The right-hand side.
    pub rhs: Expr,
}

impl Statement {
    /// All references *read* by the statement (rhs reads plus reads embedded
    /// in the lhs's indirect subscripts).
    pub fn reads(&self) -> Vec<&ArrayRef> {
        let mut out = self.rhs.reads();
        for idx in &self.lhs.indices {
            if let IndexExpr::Indirect(inner) = idx {
                out.extend(inner.all_refs());
            }
        }
        out
    }

    /// All references touched by the statement, writes and reads.
    pub fn all_refs(&self) -> Vec<&ArrayRef> {
        let mut out = vec![&self.lhs];
        out.extend(self.reads());
        out
    }

    /// Visits every array reference of the statement mutably (lhs first,
    /// then rhs, including references nested inside indirect subscripts).
    /// Used by workload generators to adjust analyzability flags.
    pub fn for_each_ref_mut(&mut self, f: &mut dyn FnMut(&mut ArrayRef)) {
        visit_ref_mut(&mut self.lhs, f);
        visit_expr_mut(&mut self.rhs, f);
    }
}

fn visit_ref_mut(r: &mut ArrayRef, f: &mut dyn FnMut(&mut ArrayRef)) {
    f(r);
    for idx in &mut r.indices {
        if let IndexExpr::Indirect(inner) = idx {
            visit_ref_mut(inner, f);
        }
    }
}

fn visit_expr_mut(e: &mut crate::expr::Expr, f: &mut dyn FnMut(&mut ArrayRef)) {
    match e {
        crate::expr::Expr::Const(_) => {}
        crate::expr::Expr::Ref(r) => visit_ref_mut(r, f),
        crate::expr::Expr::Bin { lhs, rhs, .. } => {
            visit_expr_mut(lhs, f);
            visit_expr_mut(rhs, f);
        }
    }
}

/// A perfectly nested loop with a multi-statement body.
#[derive(Clone, Debug, PartialEq)]
pub struct LoopNest {
    /// The loop dimensions, outermost first.
    pub dims: Vec<LoopDim>,
    /// The loop body, in textual order.
    pub body: Vec<Statement>,
}

impl LoopNest {
    /// Total number of iterations (product of trip counts, saturating: a
    /// nest whose true count exceeds `u64::MAX` reports `u64::MAX` rather
    /// than overflowing).
    pub fn iteration_count(&self) -> u64 {
        self.dims.iter().map(LoopDim::trip_count).fold(1u64, u64::saturating_mul)
    }

    /// Iterates over all iteration vectors in lexicographic (execution)
    /// order.
    pub fn iterations(&self) -> NestIterations<'_> {
        NestIterations { nest: self, next: self.first_iter(), done: self.iteration_count() == 0 }
    }

    fn first_iter(&self) -> IterVec {
        self.dims.iter().map(|d| d.lo).collect()
    }
}

/// Iterator over a nest's iteration vectors.
#[derive(Clone, Debug)]
pub struct NestIterations<'a> {
    nest: &'a LoopNest,
    next: IterVec,
    done: bool,
}

impl Iterator for NestIterations<'_> {
    type Item = IterVec;

    fn next(&mut self) -> Option<IterVec> {
        if self.done {
            return None;
        }
        let current = self.next.clone();
        // Advance like an odometer, innermost dimension fastest.
        let mut d = self.nest.dims.len();
        loop {
            if d == 0 {
                self.done = true;
                break;
            }
            d -= 1;
            self.next[d] += 1;
            if self.next[d] < self.nest.dims[d].hi {
                break;
            }
            self.next[d] = self.nest.dims[d].lo;
        }
        Some(current)
    }
}

/// A declared array.
#[derive(Clone, Debug, PartialEq)]
pub struct ArrayDecl {
    /// Interned source name (resolved through the owning program's
    /// [`SymbolTable`]; display-only).
    pub name: Symbol,
    /// Extents, outermost dimension first.
    pub dims: Vec<u64>,
    /// Element size in bytes.
    pub elem_size: u32,
    /// Base virtual address (assigned by the builder).
    pub base_va: u64,
    /// Whether the workload placed this array into fast (MCDRAM) memory
    /// under the flat memory mode.
    pub hot: bool,
}

impl ArrayDecl {
    /// Number of elements.
    pub fn len(&self) -> u64 {
        self.dims.iter().product()
    }

    /// `true` if the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Virtual address of a linear element index (wrapped into bounds).
    pub fn va_of(&self, linear: u64) -> u64 {
        self.base_va + (linear % self.len().max(1)) * u64::from(self.elem_size)
    }
}

/// A whole program: arrays plus loop nests.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Program {
    arrays: Vec<ArrayDecl>,
    nests: Vec<LoopNest>,
    symbols: SymbolTable,
}

impl Program {
    /// The declared arrays, indexable by [`ArrayId::index`].
    pub fn arrays(&self) -> &[ArrayDecl] {
        &self.arrays
    }

    /// The program's identifier names (display/explain only — nothing
    /// semantic keys on them).
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Source name of an array (`"?"` for placeholder symbols).
    pub fn array_name(&self, id: ArrayId) -> &str {
        self.symbols.name_or_unknown(self.array(id).name)
    }

    /// The loop nests in program order.
    pub fn nests(&self) -> &[LoopNest] {
        &self.nests
    }

    /// Mutable access to the nests, for workload generators that
    /// post-process statements (e.g. clearing analyzability flags to model
    /// references the compiler could not disambiguate, or setting them on
    /// indirect references covered by the inspector/executor scheme).
    pub fn nests_mut(&mut self) -> &mut [LoopNest] {
        &mut self.nests
    }

    /// Declaration of an array.
    pub fn array(&self, id: ArrayId) -> &ArrayDecl {
        &self.arrays[id.index()]
    }

    /// Linear element index of a reference at a concrete iteration, wrapped
    /// into the array bounds (synthetic workloads stay in bounds by
    /// construction; wrapping keeps evaluation total).
    ///
    /// Indirect subscripts read their index from `data`.
    pub fn element_of(&self, r: &ArrayRef, iter: &[i64], data: &DataStore) -> u64 {
        let decl = self.array(r.array);
        let mut linear: u64 = 0;
        for (d, idx) in r.indices.iter().enumerate() {
            let extent = decl.dims.get(d).copied().unwrap_or(1).max(1);
            let value = match idx {
                IndexExpr::Affine(a) => a.eval(iter),
                IndexExpr::Indirect(inner) => {
                    let inner_elem = self.element_of(inner, iter, data);
                    data.get(inner.array, inner_elem) as i64
                }
            };
            let wrapped = value.rem_euclid(extent as i64) as u64;
            linear = linear * extent + wrapped;
        }
        linear % decl.len().max(1)
    }

    /// Linear element index of a purely affine reference (no data store
    /// needed).
    ///
    /// # Panics
    ///
    /// Panics if the reference has an indirect subscript.
    pub fn element_of_affine(&self, r: &ArrayRef, iter: &[i64]) -> u64 {
        assert!(r.is_affine(), "element_of_affine on indirect reference");
        let decl = self.array(r.array);
        let mut linear: u64 = 0;
        for (d, idx) in r.indices.iter().enumerate() {
            let extent = decl.dims.get(d).copied().unwrap_or(1).max(1);
            let value = match idx {
                IndexExpr::Affine(a) => a.eval(iter),
                IndexExpr::Indirect(_) => unreachable!("checked affine above"),
            };
            linear = linear * extent + value.rem_euclid(extent as i64) as u64;
        }
        linear % decl.len().max(1)
    }

    /// Virtual address of a reference at a concrete iteration.
    pub fn va_of_ref(&self, r: &ArrayRef, iter: &[i64], data: &DataStore) -> u64 {
        self.array(r.array).va_of(self.element_of(r, iter, data))
    }

    /// Static fraction of references (across all nests) whose location is
    /// compile-time analyzable — the paper's Table 1, weighted statically.
    pub fn static_analyzability(&self) -> f64 {
        let (mut total, mut ok) = (0u64, 0u64);
        for nest in &self.nests {
            for stmt in &nest.body {
                for r in stmt.all_refs() {
                    total += 1;
                    if r.analyzable {
                        ok += 1;
                    }
                }
            }
        }
        if total == 0 {
            1.0
        } else {
            ok as f64 / total as f64
        }
    }

    /// Analyzable fraction weighted by dynamic instance counts (each nest's
    /// references weighted by its iteration count).
    pub fn dynamic_analyzability(&self) -> f64 {
        let (mut total, mut ok) = (0u64, 0u64);
        for nest in &self.nests {
            let weight = nest.iteration_count();
            for stmt in &nest.body {
                for r in stmt.all_refs() {
                    // Saturate: a nest at the `u64::MAX` trip-count ceiling
                    // contributes ceiling weight per reference, not a wrap.
                    total = total.saturating_add(weight);
                    if r.analyzable {
                        ok = ok.saturating_add(weight);
                    }
                }
            }
        }
        if total == 0 {
            1.0
        } else {
            ok as f64 / total as f64
        }
    }

    /// Creates the deterministic initial data for this program.
    pub fn initial_data(&self) -> DataStore {
        DataStore::for_program(self)
    }
}

/// Concrete element values for every array, used for indirect subscripts and
/// for end-to-end numerical correctness checks of generated schedules.
///
/// Initial values are deterministic and never zero (so divisions stay
/// finite).
#[derive(Clone, Debug, PartialEq)]
pub struct DataStore {
    values: Vec<Vec<f64>>,
}

/// One element where two [`DataStore`]s disagree, as reported by
/// [`DataStore::first_mismatch`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Mismatch {
    /// The array the disagreeing element belongs to.
    pub array: ArrayId,
    /// Linear element index within the array.
    pub elem: u64,
    /// The value in `self`.
    pub left: f64,
    /// The value in `other`.
    pub right: f64,
}

impl DataStore {
    /// Builds the default initial values for a program.
    pub fn for_program(program: &Program) -> Self {
        let values = program
            .arrays
            .iter()
            .enumerate()
            .map(|(ai, decl)| {
                (0..decl.len()).map(|e| ((ai as u64 * 31 + e * 17) % 97) as f64 + 1.0).collect()
            })
            .collect();
        Self { values }
    }

    /// Reads one element (wrapped into bounds).
    pub fn get(&self, array: ArrayId, elem: u64) -> f64 {
        let v = &self.values[array.index()];
        v[(elem % v.len().max(1) as u64) as usize]
    }

    /// Writes one element (wrapped into bounds).
    pub fn set(&mut self, array: ArrayId, elem: u64, value: f64) {
        let len = self.values[array.index()].len().max(1) as u64;
        let slot = (elem % len) as usize;
        self.values[array.index()][slot] = value;
    }

    /// `true` if every element matches `other` within relative tolerance
    /// `rel_tol` (reordered `/` chains are equal only up to rounding).
    pub fn approx_eq(&self, other: &DataStore, rel_tol: f64) -> bool {
        self.same_shape(other) && self.first_mismatch(other, rel_tol).is_none()
    }

    /// `true` if both stores hold the same arrays with the same lengths
    /// (i.e. were built for structurally identical programs).
    pub fn same_shape(&self, other: &DataStore) -> bool {
        self.values.len() == other.values.len()
            && self.values.iter().zip(&other.values).all(|(a, b)| a.len() == b.len())
    }

    /// The first element (in array-major order) where the two stores differ
    /// by more than `rel_tol` relative tolerance, or `None` if they agree.
    /// With `rel_tol == 0.0` this is a bit-exactness check. Non-finite
    /// values conform only to the same class — equal infinities or both
    /// NaN — never to a finite value, whatever the tolerance (`inf − inf`
    /// is NaN, so the relative formula alone would both reject agreeing
    /// infinities and accept a finite value against infinity).
    /// Conformance checkers use the returned [`Mismatch`] to report
    /// *where* a schedule diverged from the interpreter.
    ///
    /// # Panics
    ///
    /// Panics if the stores have different shapes; compare shapes first
    /// with [`DataStore::same_shape`] when that is not already known.
    pub fn first_mismatch(&self, other: &DataStore, rel_tol: f64) -> Option<Mismatch> {
        assert!(self.same_shape(other), "first_mismatch on differently-shaped stores");
        for (ai, (a, b)) in self.values.iter().zip(&other.values).enumerate() {
            for (e, (&x, &y)) in a.iter().zip(b).enumerate() {
                let agree = if x.is_finite() && y.is_finite() {
                    let scale = x.abs().max(y.abs()).max(1.0);
                    if rel_tol == 0.0 {
                        x == y
                    } else {
                        (x - y).abs() <= rel_tol * scale
                    }
                } else {
                    x == y || (x.is_nan() && y.is_nan())
                };
                if !agree {
                    return Some(Mismatch {
                        array: ArrayId::from_index(ai),
                        elem: e as u64,
                        left: x,
                        right: y,
                    });
                }
            }
        }
        None
    }

    /// Number of arrays in the store.
    pub fn array_count(&self) -> usize {
        self.values.len()
    }

    /// Number of elements held for `array`.
    pub fn len_of(&self, array: ArrayId) -> u64 {
        self.values[array.index()].len() as u64
    }

    /// The raw per-array value vectors, for the structural hasher.
    pub(crate) fn raw_values(&self) -> &[Vec<f64>] {
        &self.values
    }

    /// Replaces an entire array's contents (used by workloads to install
    /// index arrays for indirect accesses). Values are truncated or repeated
    /// to the array length.
    pub fn fill(&mut self, array: ArrayId, values: &[f64]) {
        let len = self.values[array.index()].len();
        for i in 0..len {
            self.values[array.index()][i] = values[i % values.len().max(1)];
        }
    }
}

/// An error from [`ProgramBuilder::nest`].
#[derive(Clone, Debug, PartialEq)]
pub enum BuildError {
    /// A statement failed to parse.
    Parse(ParseError),
    /// A nest declared no loops.
    EmptyNest,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Parse(e) => write!(f, "statement parse error: {e}"),
            BuildError::EmptyNest => f.write_str("a loop nest needs at least one loop"),
        }
    }
}

impl std::error::Error for BuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BuildError::Parse(e) => Some(e),
            BuildError::EmptyNest => None,
        }
    }
}

impl From<ParseError> for BuildError {
    fn from(e: ParseError) -> Self {
        BuildError::Parse(e)
    }
}

/// Incrementally builds a [`Program`].
///
/// # Examples
///
/// ```
/// use dmcp_ir::program::ProgramBuilder;
///
/// let mut b = ProgramBuilder::new();
/// b.array("A", &[128], 8);
/// b.array("B", &[128], 8);
/// b.nest(&[("i", 0, 128)], &["A[i] = B[i] * 2"])?;
/// let p = b.build();
/// assert_eq!(p.nests()[0].iteration_count(), 128);
/// # Ok::<(), dmcp_ir::program::BuildError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct ProgramBuilder {
    arrays: Vec<ArrayDecl>,
    nests: Vec<LoopNest>,
    symbols: SymbolTable,
    next_va: u64,
}

/// Base of the synthetic virtual address space arrays are laid out in.
const VA_BASE: u64 = 0x10_0000;
/// Guard gap between arrays, in bytes.
const VA_GAP: u64 = 4096;

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self {
            arrays: Vec::new(),
            nests: Vec::new(),
            symbols: SymbolTable::new(),
            next_va: VA_BASE,
        }
    }

    /// Declares an array and returns its id.
    ///
    /// Arrays are laid out sequentially in virtual memory, page-aligned,
    /// each shifted by a per-array line offset so that different arrays'
    /// first elements home onto different L2 banks (as different heap
    /// allocations do in practice).
    pub fn array(&mut self, name: impl Into<String>, dims: &[u64], elem_size: u32) -> ArrayId {
        self.array_with(name, dims, elem_size, false)
    }

    /// Declares an array placed into fast (MCDRAM) memory under the flat
    /// memory mode.
    pub fn hot_array(&mut self, name: impl Into<String>, dims: &[u64], elem_size: u32) -> ArrayId {
        self.array_with(name, dims, elem_size, true)
    }

    fn array_with(
        &mut self,
        name: impl Into<String>,
        dims: &[u64],
        elem_size: u32,
        hot: bool,
    ) -> ArrayId {
        assert!(!dims.is_empty(), "arrays need at least one dimension");
        assert!(dims.iter().all(|&d| d > 0), "array extents must be nonzero");
        assert!(elem_size > 0, "element size must be nonzero");
        let idx = self.arrays.len();
        // Line-granularity skew: spread array bases over banks.
        let skew = (idx as u64 * 7 % 64) * 64;
        let base_va = self.next_va + skew;
        let bytes = dims.iter().product::<u64>() * u64::from(elem_size);
        self.next_va += ((bytes + skew + VA_GAP) / 4096 + 1) * 4096;
        self.arrays.push(ArrayDecl {
            name: self.symbols.intern(&name.into()),
            dims: dims.to_vec(),
            elem_size,
            base_va,
            hot,
        });
        ArrayId::from_index(idx)
    }

    /// Adds a loop nest. `loops` gives `(name, lo, hi)` per dimension,
    /// outermost first; `stmts` are statement sources parsed in that scope.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] if the nest is empty or a statement does not
    /// parse.
    pub fn nest(&mut self, loops: &[(&str, i64, i64)], stmts: &[&str]) -> Result<(), BuildError> {
        if loops.is_empty() {
            return Err(BuildError::EmptyNest);
        }
        let mut ctx = ParseCtx::new();
        for (i, a) in self.arrays.iter().enumerate() {
            ctx.add_array(self.symbols.name_or_unknown(a.name), ArrayId::from_index(i));
        }
        for (d, (name, _, _)) in loops.iter().enumerate() {
            ctx.add_var(*name, VarId::from_depth(d));
        }
        let body = stmts
            .iter()
            .map(|s| parse_statement(s, &ctx).map(|p| Statement { lhs: p.lhs, rhs: p.rhs }))
            .collect::<Result<Vec<_>, _>>()?;
        self.nests.push(LoopNest {
            dims: loops
                .iter()
                .map(|&(name, lo, hi)| LoopDim { name: self.symbols.intern(name), lo, hi })
                .collect(),
            body,
        });
        Ok(())
    }

    /// Adds an already-constructed nest (used by workload generators that
    /// post-process statements, e.g. to clear analyzability flags).
    pub fn push_nest(&mut self, nest: LoopNest) {
        self.nests.push(nest);
    }

    /// Finishes the program.
    pub fn build(self) -> Program {
        Program { arrays: self.arrays, nests: self.nests, symbols: self.symbols }
    }

    /// Parse context over the arrays declared so far plus the given loop
    /// variables — for callers that build statements manually.
    pub fn parse_ctx(&self, vars: &[&str]) -> ParseCtx {
        let mut ctx = ParseCtx::new();
        for (i, a) in self.arrays.iter().enumerate() {
            ctx.add_array(self.symbols.name_or_unknown(a.name), ArrayId::from_index(i));
        }
        for (d, name) in vars.iter().enumerate() {
            ctx.add_var(*name, VarId::from_depth(d));
        }
        ctx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_array_program() -> Program {
        let mut b = ProgramBuilder::new();
        b.array("A", &[16], 8);
        b.array("B", &[16], 8);
        b.nest(&[("i", 0, 16)], &["A[i] = B[i] + 1"]).unwrap();
        b.build()
    }

    #[test]
    fn iteration_order_is_lexicographic() {
        let nest = LoopNest {
            dims: vec![
                LoopDim { name: Symbol::default(), lo: 0, hi: 2 },
                LoopDim { name: Symbol::default(), lo: 0, hi: 2 },
            ],
            body: vec![],
        };
        let iters: Vec<_> = nest.iterations().collect();
        assert_eq!(iters, vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]);
        assert_eq!(nest.iteration_count(), 4);
    }

    #[test]
    fn empty_trip_count_yields_no_iterations() {
        let nest = LoopNest {
            dims: vec![LoopDim { name: Symbol::default(), lo: 5, hi: 5 }],
            body: vec![],
        };
        assert_eq!(nest.iterations().count(), 0);
    }

    // dmcp-check shrunken counterexample: a generated nest with bounds
    // `(i64::MIN, i64::MAX)` overflowed `hi - lo` in debug builds; two such
    // dimensions then overflowed the trip-count product. Both saturate now.
    #[test]
    fn trip_count_saturates_on_extreme_bounds() {
        let d = LoopDim { name: Symbol::default(), lo: i64::MIN, hi: i64::MAX };
        assert_eq!(d.trip_count(), u64::MAX);
        let nest = LoopNest {
            dims: vec![
                LoopDim { name: Symbol::default(), lo: i64::MIN, hi: i64::MAX },
                LoopDim { name: Symbol::default(), lo: 0, hi: 3 },
            ],
            body: vec![],
        };
        assert_eq!(nest.iteration_count(), u64::MAX);
        let backwards = LoopDim { name: Symbol::default(), lo: i64::MAX, hi: i64::MIN };
        assert_eq!(backwards.trip_count(), 0);
    }

    #[test]
    fn first_mismatch_compares_non_finite_values_by_class() {
        // Shrunken fuzz counterexample: a generated division by zero made
        // both the plan and the interpreter store +inf, and the relative
        // formula rejected the agreement (inf − inf is NaN).
        let p = two_array_program();
        let a_id = ArrayId::from_index(0);
        let mut a = p.initial_data();
        let mut b = a.clone();
        a.set(a_id, 0, f64::INFINITY);
        b.set(a_id, 0, f64::INFINITY);
        a.set(a_id, 1, f64::NAN);
        b.set(a_id, 1, f64::NAN);
        assert!(a.first_mismatch(&b, 1e-9).is_none(), "matching non-finites must conform");
        b.set(a_id, 0, 1e300);
        let m = a.first_mismatch(&b, 1e-9).expect("inf vs finite must not conform");
        assert_eq!(m.elem, 0);
        b.set(a_id, 0, f64::NEG_INFINITY);
        assert!(a.first_mismatch(&b, 1e-9).is_some(), "opposite infinities differ");
    }

    #[test]
    fn dynamic_analyzability_saturates_on_extreme_trip_counts() {
        // Shrunken fuzz counterexample: a full-range nest weighs each
        // reference at u64::MAX; summing two references used to wrap and
        // panic in debug builds.
        let mut b = ProgramBuilder::new();
        b.array("a0", &[8], 8);
        b.array("a1", &[8], 8);
        b.nest(&[("i0", i64::MIN, i64::MAX)], &["a0[i0] = a1[i0] + 1"]).unwrap();
        let p = b.build();
        let f = p.dynamic_analyzability();
        assert!((0.0..=1.0).contains(&f), "not a fraction: {f}");
    }

    #[test]
    fn first_mismatch_reports_location_and_values() {
        let p = two_array_program();
        let a = p.initial_data();
        let mut b = a.clone();
        assert!(a.first_mismatch(&b, 0.0).is_none());
        b.set(ArrayId::from_index(1), 3, -7.5);
        let m = a.first_mismatch(&b, 0.0).expect("stores differ");
        assert_eq!(m.array, ArrayId::from_index(1));
        assert_eq!(m.elem, 3);
        assert_eq!(m.right, -7.5);
        assert!(!a.approx_eq(&b, 1e-9));
        assert_eq!(a.array_count(), 2);
        assert_eq!(a.len_of(ArrayId::from_index(0)), 16);
    }

    #[test]
    fn nonzero_lower_bounds() {
        let nest = LoopNest {
            dims: vec![LoopDim { name: Symbol::default(), lo: 2, hi: 5 }],
            body: vec![],
        };
        let iters: Vec<_> = nest.iterations().collect();
        assert_eq!(iters, vec![vec![2], vec![3], vec![4]]);
    }

    #[test]
    fn arrays_are_laid_out_disjointly() {
        let p = two_array_program();
        let a = &p.arrays()[0];
        let b = &p.arrays()[1];
        let a_end = a.base_va + a.len() * u64::from(a.elem_size);
        assert!(a_end <= b.base_va, "arrays overlap");
    }

    #[test]
    fn array_bases_hit_different_lines() {
        let mut b = ProgramBuilder::new();
        let ids: Vec<_> = (0..4).map(|i| b.array(format!("X{i}"), &[8], 8)).collect();
        let p = b.build();
        let lines: std::collections::HashSet<_> =
            ids.iter().map(|&id| (p.array(id).base_va / 64) % 64).collect();
        assert!(lines.len() > 1, "all arrays landed on the same line offset");
    }

    #[test]
    fn element_addressing_2d() {
        let mut b = ProgramBuilder::new();
        b.array("M", &[4, 8], 8);
        b.array("N", &[4, 8], 8);
        b.nest(&[("i", 0, 4), ("j", 0, 8)], &["M[i][j] = N[i][j]"]).unwrap();
        let p = b.build();
        let data = p.initial_data();
        let stmt = &p.nests()[0].body[0];
        // (i, j) = (2, 3) -> linear 2*8 + 3 = 19.
        assert_eq!(p.element_of(&stmt.lhs, &[2, 3], &data), 19);
    }

    #[test]
    fn indirect_elements_read_data() {
        let mut b = ProgramBuilder::new();
        b.array("X", &[8], 8);
        let y = b.array("Y", &[8], 8);
        b.array("Z", &[8], 8);
        b.nest(&[("i", 0, 8)], &["X[Y[i]] = Z[i]"]).unwrap();
        let p = b.build();
        let mut data = p.initial_data();
        data.fill(y, &[3.0, 1.0, 4.0, 1.0, 5.0, 2.0, 6.0, 0.0]);
        let stmt = &p.nests()[0].body[0];
        assert_eq!(p.element_of(&stmt.lhs, &[2], &data), 4);
        assert_eq!(p.element_of(&stmt.lhs, &[4], &data), 5);
    }

    #[test]
    fn initial_data_is_deterministic_and_nonzero() {
        let p = two_array_program();
        let d1 = p.initial_data();
        let d2 = p.initial_data();
        assert_eq!(d1, d2);
        for e in 0..16 {
            assert!(d1.get(ArrayId::from_index(0), e) != 0.0);
        }
    }

    #[test]
    fn analyzability_counts_indirect_refs() {
        let mut b = ProgramBuilder::new();
        b.array("X", &[8], 8);
        b.array("Y", &[8], 8);
        b.array("Z", &[8], 8);
        b.nest(&[("i", 0, 8)], &["X[Y[i]] = Z[i]"]).unwrap();
        let p = b.build();
        // Refs: X[Y[i]] (no), Y[i] inside it (yes), Z[i] (yes) -> 2/3.
        let frac = p.static_analyzability();
        assert!((frac - 2.0 / 3.0).abs() < 1e-12, "got {frac}");
    }

    #[test]
    fn dynamic_analyzability_weights_by_trip_count() {
        let mut b = ProgramBuilder::new();
        b.array("X", &[64], 8);
        b.array("Y", &[64], 8);
        b.array("Z", &[64], 8);
        // Nest 1: fully analyzable, 60 iterations.
        b.nest(&[("i", 0, 60)], &["X[i] = Z[i]"]).unwrap();
        // Nest 2: 1/3 unanalyzable refs, 4 iterations.
        b.nest(&[("i", 0, 4)], &["X[Y[i]] = Z[i]"]).unwrap();
        let p = b.build();
        assert!(p.dynamic_analyzability() > p.static_analyzability());
    }

    #[test]
    fn statement_reads_include_lhs_indirection() {
        let mut b = ProgramBuilder::new();
        b.array("X", &[8], 8);
        b.array("Y", &[8], 8);
        b.array("Z", &[8], 8);
        b.nest(&[("i", 0, 8)], &["X[Y[i]] = Z[i]"]).unwrap();
        let p = b.build();
        let reads = p.nests()[0].body[0].reads();
        // Z[i] plus Y[i] (the lhs's index read).
        assert_eq!(reads.len(), 2);
    }

    #[test]
    fn build_error_on_bad_statement() {
        let mut b = ProgramBuilder::new();
        b.array("A", &[8], 8);
        let err = b.nest(&[("i", 0, 8)], &["A[i] = Q[i]"]).unwrap_err();
        assert!(matches!(err, BuildError::Parse(_)));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn build_error_on_empty_nest() {
        let mut b = ProgramBuilder::new();
        assert_eq!(b.nest(&[], &[]).unwrap_err(), BuildError::EmptyNest);
    }

    #[test]
    fn hot_arrays_are_flagged() {
        let mut b = ProgramBuilder::new();
        let h = b.hot_array("H", &[8], 8);
        let c = b.array("C", &[8], 8);
        let p = b.build();
        assert!(p.array(h).hot);
        assert!(!p.array(c).hot);
    }

    #[test]
    fn va_wraps_out_of_bounds_linear_index() {
        let decl = ArrayDecl {
            name: Symbol::default(),
            dims: vec![4],
            elem_size: 8,
            base_va: 1000,
            hot: false,
        };
        assert_eq!(decl.va_of(5), decl.va_of(1));
    }
}
