//! Instance-level data-dependence analysis (paper Section 4.5).
//!
//! The scheduler needs flow/anti/output dependences between the statement
//! instances of a window to know where synchronisation is mandatory, and it
//! needs *may*-dependences for indirect references whose targets are unknown
//! at compile time. With inspector-collected data (see [`crate::inspector`])
//! the may-dependences collapse into exact ones.

use crate::access::{ArrayId, ArrayRef};
use crate::program::{DataStore, IterVec, Program, Statement};
use std::fmt;

/// The kind of a dependence between two statement instances.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// Read-after-write on the same element.
    Flow,
    /// Write-after-read on the same element.
    Anti,
    /// Write-after-write on the same element.
    Output,
    /// A conservative dependence via an unresolved indirect reference.
    May,
}

impl fmt::Display for DepKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DepKind::Flow => "flow",
            DepKind::Anti => "anti",
            DepKind::Output => "output",
            DepKind::May => "may",
        };
        f.write_str(s)
    }
}

/// A dependence from instance `from` to instance `to` (indices into the
/// instance slice given to [`analyze`]; `from < to` always).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Dependence {
    /// The earlier instance.
    pub from: usize,
    /// The later instance.
    pub to: usize,
    /// What kind of dependence.
    pub kind: DepKind,
}

/// The memory footprint of one reference instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Footprint {
    /// A precisely known element.
    Exact(ArrayId, u64),
    /// Somewhere in this array (unresolved indirection).
    Unknown(ArrayId),
}

impl Footprint {
    fn of(program: &Program, r: &ArrayRef, iter: &[i64], data: Option<&DataStore>) -> Footprint {
        if r.is_affine() {
            Footprint::Exact(r.array, program.element_of_affine(r, iter))
        } else {
            match data {
                Some(d) => Footprint::Exact(r.array, program.element_of(r, iter, d)),
                None => Footprint::Unknown(r.array),
            }
        }
    }

    /// Whether two footprints may touch the same element, and if so whether
    /// it is certain.
    fn overlaps(self, other: Footprint) -> Option<bool> {
        match (self, other) {
            (Footprint::Exact(a, x), Footprint::Exact(b, y)) => {
                if a == b && x == y {
                    Some(true)
                } else {
                    None
                }
            }
            (Footprint::Unknown(a), Footprint::Exact(b, _))
            | (Footprint::Exact(a, _), Footprint::Unknown(b))
            | (Footprint::Unknown(a), Footprint::Unknown(b)) => {
                if a == b {
                    Some(false)
                } else {
                    None
                }
            }
        }
    }
}

/// One statement instance: a statement plus the iteration executing it.
pub type Instance<'a> = (&'a Statement, IterVec);

/// Computes all pairwise dependences among `instances` (in execution order).
///
/// With `data = Some(..)` (the executor phase, after inspection) indirect
/// subscripts are resolved to exact elements; with `data = None` they
/// produce conservative [`DepKind::May`] dependences against every instance
/// touching the same array.
///
/// # Examples
///
/// ```
/// use dmcp_ir::program::ProgramBuilder;
/// use dmcp_ir::deps::{analyze, DepKind};
///
/// let mut b = ProgramBuilder::new();
/// b.array("A", &[8], 8);
/// b.array("B", &[8], 8);
/// b.nest(&[("i", 0, 8)], &["A[i] = B[i] + 1", "B[i] = A[i] * 2"]).unwrap();
/// let p = b.build();
/// let body = &p.nests()[0].body;
/// let instances = vec![(&body[0], vec![0]), (&body[1], vec![0])];
/// let deps = analyze(&p, &instances, None);
/// assert!(deps.iter().any(|d| d.kind == DepKind::Flow)); // A[0]
/// assert!(deps.iter().any(|d| d.kind == DepKind::Anti)); // B[0]
/// ```
pub fn analyze(
    program: &Program,
    instances: &[Instance<'_>],
    data: Option<&DataStore>,
) -> Vec<Dependence> {
    // Precompute footprints.
    let foots: Vec<(Footprint, Vec<Footprint>)> = instances
        .iter()
        .map(|(stmt, iter)| {
            let w = Footprint::of(program, &stmt.lhs, iter, data);
            let rs = stmt.reads().iter().map(|r| Footprint::of(program, r, iter, data)).collect();
            (w, rs)
        })
        .collect();

    let mut out = Vec::new();
    for j in 1..instances.len() {
        for i in 0..j {
            let (wi, ri) = &foots[i];
            let (wj, rj) = &foots[j];
            let mut push = |kind| out.push(Dependence { from: i, to: j, kind });
            // Flow: i writes, j reads.
            if let Some(kind) = strongest(rj.iter().map(|r| wi.overlaps(*r))) {
                push(if kind { DepKind::Flow } else { DepKind::May });
            }
            // Anti: i reads, j writes.
            if let Some(kind) = strongest(ri.iter().map(|r| r.overlaps(*wj))) {
                push(if kind { DepKind::Anti } else { DepKind::May });
            }
            // Output: both write.
            if let Some(kind) = wi.overlaps(*wj) {
                push(if kind { DepKind::Output } else { DepKind::May });
            }
        }
    }
    out
}

/// Folds a sequence of overlap results: certain overlap dominates possible
/// overlap dominates no overlap.
fn strongest(overlaps: impl Iterator<Item = Option<bool>>) -> Option<bool> {
    let mut best: Option<bool> = None;
    for o in overlaps.flatten() {
        if o {
            return Some(true);
        }
        best = Some(false);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;

    fn program(stmts: &[&str]) -> Program {
        let mut b = ProgramBuilder::new();
        for n in ["A", "B", "C", "X", "Y", "Z"] {
            b.array(n, &[16], 8);
        }
        b.nest(&[("i", 0, 16)], stmts).unwrap();
        b.build()
    }

    fn deps_of(p: &Program, iters: &[i64], data: Option<&DataStore>) -> Vec<Dependence> {
        let body = &p.nests()[0].body;
        let instances: Vec<_> =
            iters.iter().enumerate().map(|(k, &i)| (&body[k % body.len()], vec![i])).collect();
        analyze(p, &instances, data)
    }

    #[test]
    fn flow_dependence_detected() {
        let p = program(&["A[i] = B[i] + 1", "C[i] = A[i] * 2"]);
        let deps = deps_of(&p, &[0, 0], None);
        assert_eq!(deps, vec![Dependence { from: 0, to: 1, kind: DepKind::Flow }]);
    }

    #[test]
    fn anti_dependence_detected() {
        let p = program(&["C[i] = A[i] + 1", "A[i] = B[i] * 2"]);
        let deps = deps_of(&p, &[0, 0], None);
        assert_eq!(deps, vec![Dependence { from: 0, to: 1, kind: DepKind::Anti }]);
    }

    #[test]
    fn output_dependence_detected() {
        let p = program(&["A[i] = B[i]", "A[i] = C[i]"]);
        let deps = deps_of(&p, &[0, 0], None);
        assert_eq!(deps, vec![Dependence { from: 0, to: 1, kind: DepKind::Output }]);
    }

    #[test]
    fn shifted_subscripts_do_not_alias() {
        let p = program(&["A[i] = B[i]", "C[i] = A[i+1]"]);
        // Same iteration: A[0] vs A[1] -> no dep.
        assert!(deps_of(&p, &[0, 0], None).is_empty());
        // Instances from different iterations: A[1] written, A[1] read.
        let body = &p.nests()[0].body;
        let instances = vec![(&body[0], vec![1]), (&body[1], vec![0])];
        let deps = analyze(&p, &instances, None);
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].kind, DepKind::Flow);
    }

    #[test]
    fn indirect_write_is_may_dep_without_data() {
        let mut b = ProgramBuilder::new();
        b.array("X", &[16], 8);
        b.array("Y", &[16], 8);
        b.array("Z", &[16], 8);
        b.nest(&[("i", 0, 16)], &["X[Y[i]] = Z[i]", "Z[i] = X[i] + 1"]).unwrap();
        let p = b.build();
        let body = &p.nests()[0].body;
        let instances = vec![(&body[0], vec![0]), (&body[1], vec![0])];
        let deps = analyze(&p, &instances, None);
        assert!(deps.iter().any(|d| d.kind == DepKind::May));
    }

    #[test]
    fn inspector_data_resolves_may_deps() {
        let mut b = ProgramBuilder::new();
        let x = b.array("X", &[16], 8);
        let y = b.array("Y", &[16], 8);
        b.array("Z", &[16], 8);
        b.array("W", &[16], 8);
        b.nest(&[("i", 0, 16)], &["X[Y[i]] = Z[i]", "W[i] = X[i] + 1"]).unwrap();
        let p = b.build();
        let mut data = p.initial_data();
        // Y[0] = 5 so the indirect write goes to X[5], not X[0]: no dep.
        data.fill(y, &[5.0; 16]);
        let body = &p.nests()[0].body;
        let instances = vec![(&body[0], vec![0]), (&body[1], vec![0])];
        let deps = analyze(&p, &instances, Some(&data));
        assert!(deps.is_empty(), "got {deps:?}");
        // Y[0] = 0: the write hits X[0], which instance 1 reads: flow dep.
        data.fill(y, &[0.0; 16]);
        let deps = analyze(&p, &instances, Some(&data));
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].kind, DepKind::Flow);
        let _ = x;
    }

    #[test]
    fn multiple_kinds_between_same_pair() {
        let p = program(&["A[i] = A[i] + B[i]", "A[i] = A[i] * 2"]);
        let deps = deps_of(&p, &[0, 0], None);
        let kinds: std::collections::HashSet<_> = deps.iter().map(|d| d.kind).collect();
        assert!(kinds.contains(&DepKind::Flow));
        assert!(kinds.contains(&DepKind::Anti));
        assert!(kinds.contains(&DepKind::Output));
    }

    #[test]
    fn independent_statements_have_no_deps() {
        let p = program(&["A[i] = B[i]", "C[i] = X[i]"]);
        assert!(deps_of(&p, &[0, 0], None).is_empty());
    }
}
