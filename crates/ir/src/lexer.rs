//! Tokenizer for the statement language.

use std::fmt;

/// A lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum Token {
    /// An identifier (array or loop-variable name).
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A floating-point literal.
    Float(f64),
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(v) => write!(f, "{v}"),
            Token::Float(v) => write!(f, "{v}"),
            Token::Assign => f.write_str("="),
            Token::Plus => f.write_str("+"),
            Token::Minus => f.write_str("-"),
            Token::Star => f.write_str("*"),
            Token::Slash => f.write_str("/"),
            Token::Amp => f.write_str("&"),
            Token::Pipe => f.write_str("|"),
            Token::Caret => f.write_str("^"),
            Token::Shl => f.write_str("<<"),
            Token::Shr => f.write_str(">>"),
            Token::LParen => f.write_str("("),
            Token::RParen => f.write_str(")"),
            Token::LBracket => f.write_str("["),
            Token::RBracket => f.write_str("]"),
        }
    }
}

/// What went wrong while tokenizing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LexErrorKind {
    /// A character outside the statement language.
    UnexpectedChar,
    /// An integer literal that does not fit in `i64`.
    IntOutOfRange,
    /// A floating-point literal `f64` cannot represent.
    BadFloat,
}

/// An error produced while tokenizing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset of the offending character (for literal errors, of the
    /// literal's first character).
    pub position: usize,
    /// The offending character (for literal errors, the literal's first
    /// character).
    pub found: char,
    /// The kind of error.
    pub kind: LexErrorKind,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            LexErrorKind::UnexpectedChar => {
                write!(f, "unexpected character `{}` at byte {}", self.found, self.position)
            }
            LexErrorKind::IntOutOfRange => {
                write!(f, "integer literal at byte {} does not fit in i64", self.position)
            }
            LexErrorKind::BadFloat => {
                write!(f, "malformed float literal at byte {}", self.position)
            }
        }
    }
}

impl std::error::Error for LexError {}

/// Tokenizes `src` into a vector of tokens.
///
/// # Errors
///
/// Returns a [`LexError`] on any character outside the statement language.
///
/// # Examples
///
/// ```
/// use dmcp_ir::lexer::{tokenize, Token};
///
/// let toks = tokenize("A[i] = 2")?;
/// assert_eq!(toks.len(), 6);
/// assert_eq!(toks[0], Token::Ident("A".into()));
/// # Ok::<(), dmcp_ir::lexer::LexError>(())
/// ```
pub fn tokenize(src: &str) -> Result<Vec<Token>, LexError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' | ';' => i += 1,
            '=' => {
                out.push(Token::Assign);
                i += 1;
            }
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '-' => {
                out.push(Token::Minus);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '/' => {
                out.push(Token::Slash);
                i += 1;
            }
            '&' => {
                out.push(Token::Amp);
                i += 1;
            }
            '|' => {
                out.push(Token::Pipe);
                i += 1;
            }
            '^' => {
                out.push(Token::Caret);
                i += 1;
            }
            '<' if bytes.get(i + 1) == Some(&b'<') => {
                out.push(Token::Shl);
                i += 2;
            }
            '>' if bytes.get(i + 1) == Some(&b'>') => {
                out.push(Token::Shr);
                i += 2;
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            '[' => {
                out.push(Token::LBracket);
                i += 1;
            }
            ']' => {
                out.push(Token::RBracket);
                i += 1;
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let is_float = i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes.get(i + 1).is_some_and(u8::is_ascii_digit);
                if is_float {
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    let text = &src[start..i];
                    match text.parse() {
                        Ok(v) => out.push(Token::Float(v)),
                        Err(_) => {
                            return Err(LexError {
                                position: start,
                                found: c,
                                kind: LexErrorKind::BadFloat,
                            })
                        }
                    }
                } else {
                    let text = &src[start..i];
                    match text.parse() {
                        Ok(v) => out.push(Token::Int(v)),
                        Err(_) => {
                            return Err(LexError {
                                position: start,
                                found: c,
                                kind: LexErrorKind::IntOutOfRange,
                            })
                        }
                    }
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.push(Token::Ident(src[start..i].to_string()));
            }
            other => {
                return Err(LexError {
                    position: i,
                    found: other,
                    kind: LexErrorKind::UnexpectedChar,
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_statement() {
        let toks = tokenize("A[i] = B[i+1] * 2.5").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("A".into()),
                Token::LBracket,
                Token::Ident("i".into()),
                Token::RBracket,
                Token::Assign,
                Token::Ident("B".into()),
                Token::LBracket,
                Token::Ident("i".into()),
                Token::Plus,
                Token::Int(1),
                Token::RBracket,
                Token::Star,
                Token::Float(2.5),
            ]
        );
    }

    #[test]
    fn tokenizes_shifts() {
        let toks = tokenize("a << 2 >> b").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("a".into()),
                Token::Shl,
                Token::Int(2),
                Token::Shr,
                Token::Ident("b".into()),
            ]
        );
    }

    #[test]
    fn skips_whitespace_and_semicolons() {
        let toks = tokenize("  a ;\n\t b ").unwrap();
        assert_eq!(toks.len(), 2);
    }

    #[test]
    fn rejects_unknown_characters() {
        let err = tokenize("a @ b").unwrap_err();
        assert_eq!(err.found, '@');
        assert_eq!(err.position, 2);
        assert!(err.to_string().contains('@'));
    }

    #[test]
    fn integer_then_dot_without_digit_is_error() {
        // "1." is not a float in this language; the dot is rejected.
        let err = tokenize("1.").unwrap_err();
        assert_eq!(err.found, '.');
    }

    #[test]
    fn underscore_identifiers() {
        let toks = tokenize("my_arr_2").unwrap();
        assert_eq!(toks, vec![Token::Ident("my_arr_2".into())]);
    }

    #[test]
    fn unknown_character_error_kind() {
        let err = tokenize("a @ b").unwrap_err();
        assert_eq!(err.kind, LexErrorKind::UnexpectedChar);
    }

    #[test]
    fn overflowing_int_literal_is_an_error_not_a_panic() {
        let err = tokenize("99999999999999999999999").unwrap_err();
        assert_eq!(err.kind, LexErrorKind::IntOutOfRange);
        assert_eq!(err.position, 0);
        assert!(err.to_string().contains("does not fit"));
        // In context, with the position pointing at the literal.
        let err = tokenize("a + 99999999999999999999999").unwrap_err();
        assert_eq!(err.position, 4);
    }

    #[test]
    fn i64_boundary_literals() {
        // i64::MAX lexes fine; one more overflows.
        assert!(tokenize("9223372036854775807").is_ok());
        let err = tokenize("9223372036854775808").unwrap_err();
        assert_eq!(err.kind, LexErrorKind::IntOutOfRange);
    }
}
