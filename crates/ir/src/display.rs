//! Pretty-printing of programs back to the statement language.
//!
//! The printer emits exactly the surface syntax [`crate::parser`] accepts,
//! so `parse(print(x)) == x` — property-tested in `tests/properties.rs` and
//! handy when debugging generated workloads or transformed nests.

use crate::access::{AffineExpr, ArrayRef, IndexExpr};
use crate::expr::Expr;
use crate::program::{LoopNest, Program, Statement};
use std::fmt::Write;

/// Renders an affine subscript (`2*i+j-1`).
pub fn affine_to_string(a: &AffineExpr, vars: &[String]) -> String {
    let mut out = String::new();
    let mut first = true;
    for &(v, c) in &a.terms {
        let name = vars.get(v.depth()).cloned().unwrap_or_else(|| format!("v{}", v.depth()));
        if c < 0 {
            let _ = write!(out, "-");
        } else if !first {
            let _ = write!(out, "+");
        }
        let mag = c.abs();
        if mag == 1 {
            let _ = write!(out, "{name}");
        } else {
            let _ = write!(out, "{mag}*{name}");
        }
        first = false;
    }
    if a.c0 != 0 || first {
        if a.c0 < 0 {
            let _ = write!(out, "-{}", a.c0.abs());
        } else if first {
            let _ = write!(out, "{}", a.c0);
        } else {
            let _ = write!(out, "+{}", a.c0);
        }
    }
    out
}

/// Renders an array reference (`A[i+1][j]`, `X[Y[i]]`).
pub fn ref_to_string(r: &ArrayRef, program: &Program, vars: &[String]) -> String {
    let mut out = program.array_name(r.array).to_string();
    for idx in &r.indices {
        match idx {
            IndexExpr::Affine(a) => {
                let _ = write!(out, "[{}]", affine_to_string(a, vars));
            }
            IndexExpr::Indirect(inner) => {
                let _ = write!(out, "[{}]", ref_to_string(inner, program, vars));
            }
        }
    }
    out
}

/// Renders an expression with minimal parentheses (children are wrapped
/// when their operator binds less tightly than the parent's, or equally on
/// the right of a non-commutative operator).
pub fn expr_to_string(e: &Expr, program: &Program, vars: &[String]) -> String {
    match e {
        Expr::Const(v) => {
            if v.fract() == 0.0 && v.abs() < 1e15 {
                format!("{}", *v as i64)
            } else {
                format!("{v}")
            }
        }
        Expr::Ref(r) => ref_to_string(r, program, vars),
        Expr::Bin { op, lhs, rhs } => {
            let prec = op.precedence();
            let left = expr_to_string(lhs, program, vars);
            let right = expr_to_string(rhs, program, vars);
            let wrap_left = matches!(&**lhs, Expr::Bin { op: lop, .. } if lop.precedence() < prec);
            let wrap_right = match &**rhs {
                Expr::Bin { op: rop, .. } => rop.precedence() <= prec,
                _ => false,
            };
            let l = if wrap_left { format!("({left})") } else { left };
            let r = if wrap_right { format!("({right})") } else { right };
            format!("{l} {op} {r}")
        }
    }
}

/// Renders one statement (`A[i] = B[i] + 1`).
pub fn statement_to_string(s: &Statement, program: &Program, vars: &[String]) -> String {
    format!("{} = {}", ref_to_string(&s.lhs, program, vars), expr_to_string(&s.rhs, program, vars))
}

/// Renders a whole nest as pseudo-C.
pub fn nest_to_string(nest: &LoopNest, program: &Program) -> String {
    let vars: Vec<String> =
        nest.dims.iter().map(|d| program.symbols().name_or_unknown(d.name).to_string()).collect();
    let mut out = String::new();
    for (depth, d) in nest.dims.iter().enumerate() {
        let _ = writeln!(
            out,
            "{}for ({name} = {lo}; {name} < {hi}; {name}++)",
            "  ".repeat(depth),
            name = program.symbols().name_or_unknown(d.name),
            lo = d.lo,
            hi = d.hi
        );
    }
    let indent = "  ".repeat(nest.dims.len());
    for s in &nest.body {
        let _ = writeln!(out, "{indent}{};", statement_to_string(s, program, &vars));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_statement, ParseCtx};
    use crate::program::ProgramBuilder;
    use crate::ArrayId;

    fn program(stmts: &[&str]) -> Program {
        let mut b = ProgramBuilder::new();
        for n in ["A", "B", "C", "Y"] {
            b.array(n, &[32, 32], 8);
        }
        b.nest(&[("i", 0, 8), ("j", 0, 8)], stmts).unwrap();
        b.build()
    }

    fn roundtrip(src: &str) {
        let p = program(&[src]);
        let nest = &p.nests()[0];
        let vars = vec!["i".to_string(), "j".to_string()];
        let printed = statement_to_string(&nest.body[0], &p, &vars);
        let mut ctx = ParseCtx::new();
        for (k, a) in p.arrays().iter().enumerate() {
            ctx.add_array(p.symbols().name_or_unknown(a.name), ArrayId::from_index(k));
        }
        ctx.add_var("i", crate::access::VarId::from_depth(0));
        ctx.add_var("j", crate::access::VarId::from_depth(1));
        let reparsed = parse_statement(&printed, &ctx)
            .unwrap_or_else(|e| panic!("printed form `{printed}` does not reparse: {e}"));
        assert_eq!(reparsed.lhs, nest.body[0].lhs, "lhs changed for `{printed}`");
        assert_eq!(reparsed.rhs, nest.body[0].rhs, "rhs changed for `{printed}`");
    }

    #[test]
    fn simple_statements_roundtrip() {
        roundtrip("A[i][j] = B[i][j] + C[j][i]");
        roundtrip("A[i][j] = B[i][j] * C[i][j] + 3");
        roundtrip("A[2*i+1][j] = B[i-1][j+2]");
    }

    #[test]
    fn precedence_parentheses_roundtrip() {
        roundtrip("A[i][j] = (B[i][j] + C[i][j]) * B[j][i]");
        roundtrip("A[i][j] = B[i][j] - (C[i][j] - 1)");
        roundtrip("A[i][j] = B[i][j] / (C[i][j] + 1) - B[j][j]");
        roundtrip("A[i][j] = (B[i][j] >> 2) & 15");
    }

    #[test]
    fn indirect_roundtrip() {
        roundtrip("A[Y[i][j]][j] = B[i][j]");
    }

    #[test]
    fn nest_printing_shows_loops() {
        let p = program(&["A[i][j] = B[i][j] + 1"]);
        let s = nest_to_string(&p.nests()[0], &p);
        assert!(s.contains("for (i = 0; i < 8; i++)"));
        assert!(s.contains("for (j = 0; j < 8; j++)"));
        assert!(s.contains("A[i][j] = B[i][j] + 1;"));
    }

    #[test]
    fn affine_rendering_edge_cases() {
        use crate::access::VarId;
        let vars = vec!["i".to_string()];
        let a = AffineExpr::constant(0);
        assert_eq!(affine_to_string(&a, &vars), "0");
        let a = AffineExpr::var(VarId::from_depth(0)).plus_term(VarId::from_depth(0), -2);
        assert_eq!(affine_to_string(&a, &vars), "-i");
    }
}
