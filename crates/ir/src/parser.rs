//! Recursive-descent / Pratt parser for statements.
//!
//! Grammar (whitespace insignificant, `;` ignored):
//!
//! ```text
//! stmt      := ref '=' expr
//! expr      := Pratt over | ^ & << >> + - * / with '(' ')'
//! primary   := number | ref | '(' expr ')' | '-' primary
//! ref       := IDENT ('[' index ']')+
//! index     := affine | ref            // `X[Y[i]]` is an indirect subscript
//! affine    := term (('+'|'-') term)*
//! term      := INT | INT '*' IDENT | IDENT ('*' INT)?
//! ```
//!
//! Identifiers are resolved against the enclosing nest's loop variables and
//! the program's array table.

use crate::access::{AffineExpr, ArrayId, ArrayRef, IndexExpr, VarId};
use crate::expr::Expr;
use crate::lexer::{tokenize, LexError, Token};
use crate::op::BinOp;
use crate::symbol::SymbolTable;
use std::fmt;

/// Name-resolution context: array and loop-variable names in scope.
///
/// Names are interned once at registration; resolution is one symbol
/// lookup followed by a dense `u32`-indexed table probe, so parsing never
/// hashes an identifier string more than once.
#[derive(Clone, Debug, Default)]
pub struct ParseCtx {
    symbols: SymbolTable,
    arrays: Vec<Option<ArrayId>>,
    vars: Vec<Option<VarId>>,
}

impl ParseCtx {
    /// Creates an empty context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an array name.
    pub fn add_array(&mut self, name: impl Into<String>, id: ArrayId) {
        let s = self.symbols.intern(&name.into());
        if self.arrays.len() <= s.index() {
            self.arrays.resize(s.index() + 1, None);
        }
        self.arrays[s.index()] = Some(id);
    }

    /// Registers a loop-variable name.
    pub fn add_var(&mut self, name: impl Into<String>, id: VarId) {
        let s = self.symbols.intern(&name.into());
        if self.vars.len() <= s.index() {
            self.vars.resize(s.index() + 1, None);
        }
        self.vars[s.index()] = Some(id);
    }

    fn array(&self, name: &str) -> Option<ArrayId> {
        let s = self.symbols.lookup(name)?;
        self.arrays.get(s.index()).copied().flatten()
    }

    fn var(&self, name: &str) -> Option<VarId> {
        let s = self.symbols.lookup(name)?;
        self.vars.get(s.index()).copied().flatten()
    }
}

/// An error produced while parsing a statement.
#[derive(Clone, Debug, PartialEq)]
pub enum ParseError {
    /// Tokenization failed.
    Lex(LexError),
    /// The token stream ended unexpectedly.
    UnexpectedEnd,
    /// An unexpected token was found.
    Unexpected {
        /// The token that was found.
        found: String,
        /// What the parser was looking for.
        expected: &'static str,
    },
    /// An identifier resolved to neither an array nor a loop variable.
    UnknownName(String),
    /// A subscript mixed an indirect reference with other terms.
    MixedIndex,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex(e) => write!(f, "lex error: {e}"),
            ParseError::UnexpectedEnd => f.write_str("unexpected end of statement"),
            ParseError::Unexpected { found, expected } => {
                write!(f, "unexpected token `{found}`, expected {expected}")
            }
            ParseError::UnknownName(n) => write!(f, "unknown name `{n}`"),
            ParseError::MixedIndex => {
                f.write_str("a subscript must be either affine or a single indirect reference")
            }
        }
    }
}

impl std::error::Error for ParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseError::Lex(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::Lex(e)
    }
}

/// A parsed `lhs = rhs` pair (not yet attached to a loop nest).
#[derive(Clone, Debug, PartialEq)]
pub struct ParsedStatement {
    /// The written reference.
    pub lhs: ArrayRef,
    /// The right-hand-side expression.
    pub rhs: Expr,
}

/// Parses one statement like `"A[i] = B[i] + C[i] * (D[i] - 1)"`.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input or unresolved names.
///
/// # Examples
///
/// ```
/// use dmcp_ir::parser::{parse_statement, ParseCtx};
/// use dmcp_ir::{ArrayId, access};
///
/// let mut ctx = ParseCtx::new();
/// ctx.add_array("A", ArrayId::from_index(0));
/// ctx.add_array("B", ArrayId::from_index(1));
/// ctx.add_var("i", access::VarId::from_depth(0));
/// let stmt = parse_statement("A[i] = B[i+1] * 3", &ctx)?;
/// assert_eq!(stmt.rhs.op_count(), 1);
/// # Ok::<(), dmcp_ir::parser::ParseError>(())
/// ```
pub fn parse_statement(src: &str, ctx: &ParseCtx) -> Result<ParsedStatement, ParseError> {
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens, pos: 0, ctx };
    let lhs = p.parse_ref()?;
    p.expect(&Token::Assign, "`=`")?;
    let rhs = p.parse_expr(0)?;
    if p.pos != p.tokens.len() {
        return Err(ParseError::Unexpected {
            found: p.tokens[p.pos].to_string(),
            expected: "end of statement",
        });
    }
    Ok(ParsedStatement { lhs, rhs })
}

/// Convenience wrapper around [`parse_statement`] for statically-known
/// statements (tests, examples, generators).
///
/// # Panics
///
/// Panics with the parse error's message on malformed input. Use
/// [`parse_statement`] to handle errors.
pub fn parse_str(src: &str, ctx: &ParseCtx) -> ParsedStatement {
    match parse_statement(src, ctx) {
        Ok(s) => s,
        Err(e) => panic!("parse error in `{src}`: {e}"),
    }
}

/// Parses a bare expression (used in tests and tools).
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input or unresolved names.
pub fn parse_expr(src: &str, ctx: &ParseCtx) -> Result<Expr, ParseError> {
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens, pos: 0, ctx };
    let e = p.parse_expr(0)?;
    if p.pos != p.tokens.len() {
        return Err(ParseError::Unexpected {
            found: p.tokens[p.pos].to_string(),
            expected: "end of expression",
        });
    }
    Ok(e)
}

struct Parser<'a> {
    tokens: Vec<Token>,
    pos: usize,
    ctx: &'a ParseCtx,
}

impl Parser<'_> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Result<Token, ParseError> {
        let t = self.tokens.get(self.pos).cloned().ok_or(ParseError::UnexpectedEnd)?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, tok: &Token, what: &'static str) -> Result<(), ParseError> {
        let t = self.next()?;
        if &t == tok {
            Ok(())
        } else {
            Err(ParseError::Unexpected { found: t.to_string(), expected: what })
        }
    }

    fn binop_of(tok: &Token) -> Option<BinOp> {
        Some(match tok {
            Token::Plus => BinOp::Add,
            Token::Minus => BinOp::Sub,
            Token::Star => BinOp::Mul,
            Token::Slash => BinOp::Div,
            Token::Amp => BinOp::And,
            Token::Pipe => BinOp::Or,
            Token::Caret => BinOp::Xor,
            Token::Shl => BinOp::Shl,
            Token::Shr => BinOp::Shr,
            _ => return None,
        })
    }

    fn parse_expr(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_primary()?;
        while let Some(op) = self.peek().and_then(Self::binop_of) {
            if op.precedence() < min_prec {
                break;
            }
            self.pos += 1;
            // All operators are left-associative.
            let rhs = self.parse_expr(op.precedence() + 1)?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        match self.next()? {
            Token::Int(v) => Ok(Expr::Const(v as f64)),
            Token::Float(v) => Ok(Expr::Const(v)),
            Token::Minus => {
                let inner = self.parse_primary()?;
                Ok(Expr::bin(BinOp::Sub, Expr::Const(0.0), inner))
            }
            Token::LParen => {
                let e = self.parse_expr(0)?;
                self.expect(&Token::RParen, "`)`")?;
                Ok(e)
            }
            Token::Ident(_) => {
                self.pos -= 1;
                let r = self.parse_ref()?;
                Ok(Expr::Ref(r))
            }
            other => Err(ParseError::Unexpected {
                found: other.to_string(),
                expected: "a literal, reference or `(`",
            }),
        }
    }

    fn parse_ref(&mut self) -> Result<ArrayRef, ParseError> {
        let name = match self.next()? {
            Token::Ident(n) => n,
            other => {
                return Err(ParseError::Unexpected {
                    found: other.to_string(),
                    expected: "an array name",
                })
            }
        };
        let array = self.ctx.array(&name).ok_or(ParseError::UnknownName(name))?;
        let mut indices = Vec::new();
        while self.peek() == Some(&Token::LBracket) {
            self.pos += 1;
            indices.push(self.parse_index()?);
            self.expect(&Token::RBracket, "`]`")?;
        }
        if indices.is_empty() {
            // A scalar: treat as a zero-dimensional reference at index 0.
            indices.push(IndexExpr::Affine(AffineExpr::constant(0)));
        }
        Ok(ArrayRef::new(array, indices))
    }

    /// Parses a subscript: either an affine combination of loop variables or
    /// a single indirect array reference.
    fn parse_index(&mut self) -> Result<IndexExpr, ParseError> {
        // Indirect subscript: IDENT that resolves to an array and is
        // followed by `[`.
        if let Some(Token::Ident(name)) = self.peek() {
            if self.ctx.array(name).is_some() {
                if self.tokens.get(self.pos + 1) == Some(&Token::LBracket) {
                    let inner = self.parse_ref()?;
                    if self.peek() != Some(&Token::RBracket) {
                        return Err(ParseError::MixedIndex);
                    }
                    return Ok(IndexExpr::Indirect(Box::new(inner)));
                }
                return Err(ParseError::MixedIndex);
            }
        }
        let mut affine = AffineExpr::constant(0);
        let mut negate = false;
        loop {
            let (var, coeff) = self.parse_affine_term()?;
            let signed = if negate { -coeff } else { coeff };
            // Wrapping, like AffineExpr::eval: `B[9223372036854775807 + 1]`
            // must parse without a debug-build overflow panic.
            match var {
                Some(v) => affine = affine.plus_term(v, signed),
                None => affine.c0 = affine.c0.wrapping_add(signed),
            }
            match self.peek() {
                Some(Token::Plus) => {
                    negate = false;
                    self.pos += 1;
                }
                Some(Token::Minus) => {
                    negate = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        Ok(IndexExpr::Affine(affine))
    }

    /// One affine term: `INT`, `INT*var`, `var` or `var*INT`.
    fn parse_affine_term(&mut self) -> Result<(Option<VarId>, i64), ParseError> {
        match self.next()? {
            Token::Int(c) => {
                if self.peek() == Some(&Token::Star) {
                    self.pos += 1;
                    match self.next()? {
                        Token::Ident(n) => {
                            let v = self.ctx.var(&n).ok_or(ParseError::UnknownName(n))?;
                            Ok((Some(v), c))
                        }
                        other => Err(ParseError::Unexpected {
                            found: other.to_string(),
                            expected: "a loop variable",
                        }),
                    }
                } else {
                    Ok((None, c))
                }
            }
            Token::Ident(n) => {
                let v = self.ctx.var(&n).ok_or(ParseError::UnknownName(n))?;
                if self.peek() == Some(&Token::Star) {
                    self.pos += 1;
                    match self.next()? {
                        Token::Int(c) => Ok((Some(v), c)),
                        other => Err(ParseError::Unexpected {
                            found: other.to_string(),
                            expected: "an integer coefficient",
                        }),
                    }
                } else {
                    Ok((Some(v), 1))
                }
            }
            other => {
                Err(ParseError::Unexpected { found: other.to_string(), expected: "an affine term" })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::IndexExpr;

    fn ctx() -> ParseCtx {
        let mut c = ParseCtx::new();
        for (i, name) in ["A", "B", "C", "D", "E", "Y"].iter().enumerate() {
            c.add_array(*name, ArrayId::from_index(i));
        }
        c.add_var("i", VarId::from_depth(0));
        c.add_var("j", VarId::from_depth(1));
        c
    }

    // dmcp-check shrunken counterexample: the constant-fold in
    // `parse_index` overflowed `c0 + signed` in debug builds.
    #[test]
    fn subscript_constant_fold_wraps() {
        let s = parse_statement("A[9223372036854775807 + 1] = B[i]", &ctx()).unwrap();
        match &s.lhs.indices[0] {
            IndexExpr::Affine(a) => assert_eq!(a.c0, i64::MIN),
            other => panic!("expected affine subscript, got {other:?}"),
        }
    }

    #[test]
    fn parses_flat_sum() {
        let s = parse_statement("A[i] = B[i] + C[i] + D[i] + E[i]", &ctx()).unwrap();
        assert_eq!(s.rhs.op_count(), 3);
        assert_eq!(s.rhs.reads().len(), 4);
        assert_eq!(s.lhs.array.index(), 0);
    }

    #[test]
    fn precedence_mul_binds_tighter() {
        let e = parse_expr("B[i] + C[i] * D[i]", &ctx()).unwrap();
        match e {
            Expr::Bin { op: BinOp::Add, rhs, .. } => match *rhs {
                Expr::Bin { op: BinOp::Mul, .. } => {}
                other => panic!("expected Mul on the right, got {other:?}"),
            },
            other => panic!("expected Add at root, got {other:?}"),
        }
    }

    #[test]
    fn parens_override_precedence() {
        let e = parse_expr("(B[i] + C[i]) * D[i]", &ctx()).unwrap();
        match e {
            Expr::Bin { op: BinOp::Mul, lhs, .. } => match *lhs {
                Expr::Bin { op: BinOp::Add, .. } => {}
                other => panic!("expected Add inside, got {other:?}"),
            },
            other => panic!("expected Mul at root, got {other:?}"),
        }
    }

    #[test]
    fn affine_subscripts() {
        let s = parse_statement("A[2*i+1] = B[i-1]", &ctx()).unwrap();
        match &s.lhs.indices[0] {
            IndexExpr::Affine(a) => {
                assert_eq!(a.eval(&[3]), 7);
            }
            other => panic!("expected affine, got {other:?}"),
        }
        match &s.rhs.reads()[0].indices[0] {
            IndexExpr::Affine(a) => assert_eq!(a.eval(&[3]), 2),
            other => panic!("expected affine, got {other:?}"),
        }
    }

    #[test]
    fn two_dimensional_subscripts() {
        let s = parse_statement("A[i][j] = B[j][i]", &ctx()).unwrap();
        assert_eq!(s.lhs.indices.len(), 2);
    }

    #[test]
    fn indirect_subscript() {
        let s = parse_statement("A[Y[i]] = B[i]", &ctx()).unwrap();
        assert!(!s.lhs.analyzable);
        match &s.lhs.indices[0] {
            IndexExpr::Indirect(inner) => assert_eq!(inner.array.index(), 5),
            other => panic!("expected indirect, got {other:?}"),
        }
    }

    #[test]
    fn unary_minus() {
        let e = parse_expr("-B[i] + 3", &ctx()).unwrap();
        assert_eq!(e.op_count(), 2); // (0 - B[i]) + 3
    }

    #[test]
    fn scalar_reference_gets_index_zero() {
        let e = parse_expr("A + 1", &ctx()).unwrap();
        let reads = e.reads();
        assert_eq!(reads.len(), 1);
        match &reads[0].indices[0] {
            IndexExpr::Affine(a) => assert!(a.is_constant()),
            other => panic!("expected constant subscript, got {other:?}"),
        }
    }

    #[test]
    fn unknown_array_is_an_error() {
        let err = parse_statement("Q[i] = B[i]", &ctx()).unwrap_err();
        assert_eq!(err, ParseError::UnknownName("Q".into()));
    }

    #[test]
    fn unknown_var_is_an_error() {
        let err = parse_statement("A[k] = B[i]", &ctx()).unwrap_err();
        assert_eq!(err, ParseError::UnknownName("k".into()));
    }

    #[test]
    fn trailing_tokens_rejected() {
        let err = parse_statement("A[i] = B[i] )", &ctx()).unwrap_err();
        assert!(matches!(err, ParseError::Unexpected { .. }));
    }

    #[test]
    fn mixed_index_rejected() {
        let err = parse_statement("A[Y[i]+1] = B[i]", &ctx()).unwrap_err();
        assert_eq!(err, ParseError::MixedIndex);
    }

    #[test]
    fn shift_expression() {
        let e = parse_expr("B[i] << 2", &ctx()).unwrap();
        assert_eq!(e.ops(), vec![BinOp::Shl]);
    }

    #[test]
    fn error_display_is_nonempty() {
        let err = parse_statement("A[i] =", &ctx()).unwrap_err();
        assert_eq!(err, ParseError::UnexpectedEnd);
        assert!(!err.to_string().is_empty());
    }
}
