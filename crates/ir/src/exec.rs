//! Golden-reference sequential execution of programs.
//!
//! Executes every nest statement-by-statement in program order, with no
//! partitioning or reordering. Partitioned schedules are checked against
//! this executor for numerical equivalence (the nested-set normalisation of
//! [`crate::nested`] makes reordered folds bit-exact for `+`/`*` chains of
//! the synthetic integer-valued data the workloads use).

use crate::expr::Expr;
use crate::program::{DataStore, Program};

/// Evaluates an expression at a concrete iteration against `data`.
pub fn eval_expr(program: &Program, expr: &Expr, iter: &[i64], data: &DataStore) -> f64 {
    match expr {
        Expr::Const(v) => *v,
        Expr::Ref(r) => {
            let elem = program.element_of(r, iter, data);
            data.get(r.array, elem)
        }
        Expr::Bin { op, lhs, rhs } => {
            let a = eval_expr(program, lhs, iter, data);
            let b = eval_expr(program, rhs, iter, data);
            op.apply(a, b)
        }
    }
}

/// Runs the whole program sequentially, mutating `data` in place.
///
/// # Examples
///
/// ```
/// use dmcp_ir::program::ProgramBuilder;
/// use dmcp_ir::exec::run_sequential;
///
/// let mut b = ProgramBuilder::new();
/// let a = b.array("A", &[4], 8);
/// b.array("B", &[4], 8);
/// b.nest(&[("i", 0, 4)], &["A[i] = B[i] * 0 + 7"])?;
/// let p = b.build();
/// let mut data = p.initial_data();
/// run_sequential(&p, &mut data);
/// assert_eq!(data.get(a, 2), 7.0);
/// # Ok::<(), dmcp_ir::program::BuildError>(())
/// ```
pub fn run_sequential(program: &Program, data: &mut DataStore) {
    for nest in program.nests() {
        for iter in nest.iterations() {
            for stmt in &nest.body {
                let value = eval_expr(program, &stmt.rhs, &iter, data);
                let elem = program.element_of(&stmt.lhs, &iter, data);
                data.set(stmt.lhs.array, elem, value);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;

    #[test]
    fn stencil_updates_in_order() {
        let mut b = ProgramBuilder::new();
        let a = b.array("A", &[4], 8);
        b.nest(&[("i", 1, 4)], &["A[i] = A[i-1] + 1"]).unwrap();
        let p = b.build();
        let mut data = p.initial_data();
        let a0 = data.get(a, 0);
        run_sequential(&p, &mut data);
        // Prefix-sum-like chain: each element = previous + 1.
        assert_eq!(data.get(a, 1), a0 + 1.0);
        assert_eq!(data.get(a, 3), a0 + 3.0);
    }

    #[test]
    fn multiple_statements_see_earlier_writes() {
        let mut b = ProgramBuilder::new();
        let x = b.array("X", &[4], 8);
        let y = b.array("Y", &[4], 8);
        b.array("Z", &[4], 8);
        b.nest(&[("i", 0, 4)], &["X[i] = Z[i] * 0 + 5", "Y[i] = X[i] * 2"]).unwrap();
        let p = b.build();
        let mut data = p.initial_data();
        run_sequential(&p, &mut data);
        assert_eq!(data.get(x, 0), 5.0);
        assert_eq!(data.get(y, 3), 10.0);
    }

    #[test]
    fn indirect_writes_land_where_index_points() {
        let mut b = ProgramBuilder::new();
        let x = b.array("X", &[8], 8);
        let y = b.array("Y", &[8], 8);
        b.array("Z", &[8], 8);
        b.nest(&[("i", 0, 1)], &["X[Y[i]] = Z[i] * 0 + 9"]).unwrap();
        let p = b.build();
        let mut data = p.initial_data();
        data.fill(y, &[6.0; 8]);
        run_sequential(&p, &mut data);
        assert_eq!(data.get(x, 6), 9.0);
    }

    #[test]
    fn eval_respects_precedence() {
        let mut b = ProgramBuilder::new();
        b.array("A", &[4], 8);
        b.array("B", &[4], 8);
        b.array("C", &[4], 8);
        b.nest(&[("i", 0, 1)], &["A[i] = B[i] + C[i] * 2"]).unwrap();
        let p = b.build();
        let data = p.initial_data();
        let stmt = &p.nests()[0].body[0];
        let b0 = data.get(crate::access::ArrayId::from_index(1), 0);
        let c0 = data.get(crate::access::ArrayId::from_index(2), 0);
        assert_eq!(eval_expr(&p, &stmt.rhs, &[0], &data), b0 + c0 * 2.0);
    }
}
