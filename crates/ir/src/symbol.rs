//! Interned identifier names.
//!
//! Identifier names (array and loop-variable names) are *surface syntax*:
//! nothing in partitioning, fingerprinting or simulation depends on them
//! (structural hashes deliberately exclude them — see
//! [`crate::fingerprint`]). Interning replaces every `String` name in the
//! IR with a dense [`Symbol`] (`u32`) so program clones stop copying
//! strings, name maps key on integers, and the parser resolves an
//! identifier with one table lookup. The only places names come back out
//! are display and explain paths, which resolve through the owning
//! [`SymbolTable`].
//!
//! [`Symbol`]s are meaningful only relative to the table that interned
//! them; the [`crate::ProgramBuilder`] owns one table per program and
//! stores it in the built [`crate::Program`].

use std::collections::HashMap;

/// A dense interned name: an index into a [`SymbolTable`].
///
/// `Symbol::default()` is a placeholder that resolves to nothing — used
/// by tests and transforms that build nests whose names never reach a
/// display path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

impl Symbol {
    /// The table index this symbol stands for.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An append-only string interner: each distinct string gets one
/// [`Symbol`], and equal strings always intern to the same symbol.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SymbolTable {
    names: Vec<String>,
    map: HashMap<String, Symbol>,
}

impl SymbolTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its (new or existing) symbol.
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&s) = self.map.get(name) {
            return s;
        }
        let s = Symbol(u32::try_from(self.names.len()).expect("symbol table overflow"));
        self.names.push(name.to_string());
        self.map.insert(name.to_string(), s);
        s
    }

    /// Looks up an already-interned name.
    #[must_use]
    pub fn lookup(&self, name: &str) -> Option<Symbol> {
        self.map.get(name).copied()
    }

    /// Resolves a symbol back to its name; `None` for symbols this table
    /// never interned (e.g. `Symbol::default()` placeholders).
    #[must_use]
    pub fn name(&self, s: Symbol) -> Option<&str> {
        self.names.get(s.index()).map(String::as_str)
    }

    /// Resolves a symbol, rendering unknown symbols as `"?"` — the
    /// lenient form display paths use.
    #[must_use]
    pub fn name_or_unknown(&self, s: Symbol) -> &str {
        self.name(s).unwrap_or("?")
    }

    /// Number of interned symbols.
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` when nothing has been interned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut t = SymbolTable::new();
        let a = t.intern("alpha");
        let b = t.intern("beta");
        assert_ne!(a, b);
        assert_eq!(t.intern("alpha"), a);
        assert_eq!(t.len(), 2);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
    }

    #[test]
    fn resolution_round_trips() {
        let mut t = SymbolTable::new();
        let s = t.intern("row");
        assert_eq!(t.name(s), Some("row"));
        assert_eq!(t.lookup("row"), Some(s));
        assert_eq!(t.lookup("col"), None);
        assert_eq!(t.name_or_unknown(Symbol(99)), "?");
    }

    #[test]
    fn default_symbol_is_a_placeholder() {
        let t = SymbolTable::new();
        assert_eq!(t.name(Symbol::default()), None);
        assert!(t.is_empty());
    }
}
