//! Binary operators, their algebraic classes and cost model.

use std::fmt;

/// A binary operator appearing in statement expressions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
}

/// Coarse operation category used by the paper's Table 3 ("the fraction of
/// computation types offloaded").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpCategory {
    /// Additions and subtractions.
    AddSub,
    /// Multiplications and divisions.
    MulDiv,
    /// Shifts, logical operations, etc.
    Other,
}

impl fmt::Display for OpCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpCategory::AddSub => "add/sub",
            OpCategory::MulDiv => "mul/div",
            OpCategory::Other => "others",
        };
        f.write_str(s)
    }
}

impl BinOp {
    /// Parser precedence: higher binds tighter.
    pub fn precedence(self) -> u8 {
        match self {
            BinOp::Or => 1,
            BinOp::Xor => 2,
            BinOp::And => 3,
            BinOp::Shl | BinOp::Shr => 4,
            BinOp::Add | BinOp::Sub => 5,
            BinOp::Mul | BinOp::Div => 6,
        }
    }

    /// `true` if a chain of this operator (together with its inverse twin)
    /// may be reordered freely once inverses are tracked as flags:
    /// `a - b + c` ≡ `a + c - b`, `a / b * c` ≡ `a * c / b`.
    pub fn is_reorderable(self) -> bool {
        !matches!(self, BinOp::Shl | BinOp::Shr)
    }

    /// `true` if the operator is the *inverting* member of its class
    /// (subtraction in the additive class, division in the multiplicative
    /// class).
    pub fn is_inverse(self) -> bool {
        matches!(self, BinOp::Sub | BinOp::Div)
    }

    /// Cost in abstract "operation units" used for load balancing; the paper
    /// charges division 10× an addition/multiplication (Section 4.5,
    /// footnote 5). `div_factor` comes from the machine's latency model.
    pub fn cost(self, div_factor: f64) -> f64 {
        match self {
            BinOp::Div => div_factor,
            _ => 1.0,
        }
    }

    /// Table-3 category of the operator.
    pub fn category(self) -> OpCategory {
        match self {
            BinOp::Add | BinOp::Sub => OpCategory::AddSub,
            BinOp::Mul | BinOp::Div => OpCategory::MulDiv,
            _ => OpCategory::Other,
        }
    }

    /// Applies the operator to two values. Logical/shift operators work on
    /// the values reinterpreted as 64-bit integers (the workloads only use
    /// them on integer-valued data).
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
            BinOp::Div => a / b,
            BinOp::And => ((a as i64) & (b as i64)) as f64,
            BinOp::Or => ((a as i64) | (b as i64)) as f64,
            BinOp::Xor => ((a as i64) ^ (b as i64)) as f64,
            BinOp::Shl => ((a as i64) << ((b as i64) & 63)) as f64,
            BinOp::Shr => ((a as i64) >> ((b as i64) & 63)) as f64,
        }
    }

    /// Source-text spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::And => "&",
            BinOp::Or => "|",
            BinOp::Xor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precedence_orders_mul_above_add() {
        assert!(BinOp::Mul.precedence() > BinOp::Add.precedence());
        assert!(BinOp::Add.precedence() > BinOp::Shl.precedence());
        assert!(BinOp::And.precedence() > BinOp::Or.precedence());
    }

    #[test]
    fn inverse_members() {
        assert!(BinOp::Sub.is_inverse());
        assert!(BinOp::Div.is_inverse());
        assert!(!BinOp::Add.is_inverse());
        assert!(!BinOp::Mul.is_inverse());
    }

    #[test]
    fn shifts_are_not_reorderable() {
        assert!(!BinOp::Shl.is_reorderable());
        assert!(!BinOp::Shr.is_reorderable());
        assert!(BinOp::Xor.is_reorderable());
    }

    #[test]
    fn division_costs_ten_adds() {
        assert_eq!(BinOp::Div.cost(10.0), 10.0);
        assert_eq!(BinOp::Add.cost(10.0), 1.0);
        assert_eq!(BinOp::Mul.cost(10.0), 1.0);
    }

    #[test]
    fn categories_match_table_3() {
        assert_eq!(BinOp::Add.category(), OpCategory::AddSub);
        assert_eq!(BinOp::Div.category(), OpCategory::MulDiv);
        assert_eq!(BinOp::Shl.category(), OpCategory::Other);
        assert_eq!(BinOp::Xor.category(), OpCategory::Other);
    }

    #[test]
    fn apply_arithmetic() {
        assert_eq!(BinOp::Add.apply(2.0, 3.0), 5.0);
        assert_eq!(BinOp::Sub.apply(2.0, 3.0), -1.0);
        assert_eq!(BinOp::Mul.apply(2.0, 3.0), 6.0);
        assert_eq!(BinOp::Div.apply(3.0, 2.0), 1.5);
    }

    #[test]
    fn apply_integerish() {
        assert_eq!(BinOp::And.apply(6.0, 3.0), 2.0);
        assert_eq!(BinOp::Or.apply(4.0, 1.0), 5.0);
        assert_eq!(BinOp::Xor.apply(5.0, 3.0), 6.0);
        assert_eq!(BinOp::Shl.apply(1.0, 3.0), 8.0);
        assert_eq!(BinOp::Shr.apply(8.0, 2.0), 2.0);
    }

    #[test]
    fn symbols_are_parseable_spellings() {
        assert_eq!(BinOp::Shl.to_string(), "<<");
        assert_eq!(BinOp::Div.to_string(), "/");
    }
}
