//! Nested operand sets (paper Section 4.2, "level-based" splitting).
//!
//! A statement's right-hand side is classified into nested sets following
//! operator priority and parentheses: `x = a*(b+c) + d*(e+f+g)` yields an
//! additive top-level set whose elements are the multiplicative groups
//! `(a,(b,c))` and `(d,(e,f,g))`. MSTs are built innermost-set-first, and a
//! processed set becomes a single "component" at the next level — this is
//! what guarantees computation priority (and therefore correctness) while
//! still allowing the MST to reorder freely *within* a set.
//!
//! Reordering a `+`/`-` or `*`/`/` chain is only legal if subtraction and
//! division are normalised away; we track an `inverted` flag per element
//! (`a - b + c` becomes `{a, b⁻, c}` under the additive class), making every
//! reorderable set a commutative monoid fold. Shifts are not reorderable and
//! form [`OpClass::Fixed`] two-element groups.

use crate::access::ArrayRef;
use crate::expr::Expr;
use crate::op::BinOp;

/// Algebraic class of a nested set: which commutative fold combines its
/// elements.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum OpClass {
    /// `+` / `-` chain (inverted elements are subtracted).
    AddLike,
    /// `*` / `/` chain (inverted elements divide).
    MulLike,
    /// `&` chain.
    AndLike,
    /// `|` chain.
    OrLike,
    /// `^` chain.
    XorLike,
    /// A non-reorderable operator; the group has exactly two ordered
    /// elements.
    Fixed(BinOp),
}

impl OpClass {
    /// The class a binary operator belongs to.
    pub fn of(op: BinOp) -> OpClass {
        match op {
            BinOp::Add | BinOp::Sub => OpClass::AddLike,
            BinOp::Mul | BinOp::Div => OpClass::MulLike,
            BinOp::And => OpClass::AndLike,
            BinOp::Or => OpClass::OrLike,
            BinOp::Xor => OpClass::XorLike,
            BinOp::Shl | BinOp::Shr => OpClass::Fixed(op),
        }
    }

    /// `true` if elements of the class may be combined in any order.
    pub fn is_reorderable(self) -> bool {
        !matches!(self, OpClass::Fixed(_))
    }

    /// The concrete operator that merges an accumulated value with an
    /// element carrying the given `inverted` flag.
    pub fn op_for(self, inverted: bool) -> BinOp {
        match (self, inverted) {
            (OpClass::AddLike, false) => BinOp::Add,
            (OpClass::AddLike, true) => BinOp::Sub,
            (OpClass::MulLike, false) => BinOp::Mul,
            (OpClass::MulLike, true) => BinOp::Div,
            (OpClass::AndLike, _) => BinOp::And,
            (OpClass::OrLike, _) => BinOp::Or,
            (OpClass::XorLike, _) => BinOp::Xor,
            (OpClass::Fixed(op), _) => op,
        }
    }

    /// Identity element of the fold (meaningful for reorderable classes).
    pub fn identity(self) -> f64 {
        match self {
            OpClass::AddLike | OpClass::OrLike | OpClass::XorLike => 0.0,
            OpClass::MulLike => 1.0,
            OpClass::AndLike => -1.0, // all bits set as i64
            OpClass::Fixed(_) => f64::NAN,
        }
    }
}

/// One element of a nested set.
#[derive(Clone, Debug, PartialEq)]
pub struct Element {
    /// The element itself.
    pub term: Term,
    /// Whether the element enters the fold through the class's inverse
    /// operator (subtraction / division).
    pub inverted: bool,
}

/// The payload of an element: a leaf operand, a constant, or a nested group.
#[derive(Clone, Debug, PartialEq)]
pub enum Term {
    /// A numeric literal.
    Const(f64),
    /// An array-element read — the thing that has a *location* on the mesh.
    Leaf(ArrayRef),
    /// A nested (higher-priority) set.
    Group(Group),
}

/// A nested set: a class plus its elements.
#[derive(Clone, Debug, PartialEq)]
pub struct Group {
    /// How the elements combine.
    pub class: OpClass,
    /// The elements, in source order (order is semantically irrelevant for
    /// reorderable classes).
    pub elems: Vec<Element>,
}

impl Group {
    /// Builds the nested-set representation of an expression.
    ///
    /// # Examples
    ///
    /// ```
    /// use dmcp_ir::parser::{parse_expr, ParseCtx};
    /// use dmcp_ir::{ArrayId, Group, access::VarId};
    ///
    /// let mut ctx = ParseCtx::new();
    /// for (i, n) in ["a", "b", "c", "d", "e", "f", "g"].iter().enumerate() {
    ///     ctx.add_array(*n, ArrayId::from_index(i));
    /// }
    /// ctx.add_var("i", VarId::from_depth(0));
    /// let e = parse_expr("a[i]*(b[i]+c[i]) + d[i]*(e[i]+f[i]+g[i])", &ctx)?;
    /// let g = Group::of_expr(&e);
    /// // Additive top level with two multiplicative sub-groups.
    /// assert_eq!(g.elems.len(), 2);
    /// # Ok::<(), dmcp_ir::parser::ParseError>(())
    /// ```
    pub fn of_expr(expr: &Expr) -> Group {
        match expr {
            Expr::Bin { op, .. } => {
                let class = OpClass::of(*op);
                if class.is_reorderable() {
                    let mut elems = Vec::new();
                    flatten(expr, class, false, &mut elems);
                    Group { class, elems }
                } else {
                    let (lhs, rhs) = match expr {
                        Expr::Bin { lhs, rhs, .. } => (lhs, rhs),
                        _ => unreachable!(),
                    };
                    Group {
                        class,
                        elems: vec![
                            Element { term: term_of(lhs), inverted: false },
                            Element { term: term_of(rhs), inverted: false },
                        ],
                    }
                }
            }
            // A single operand still forms a (degenerate) one-element set.
            other => Group {
                class: OpClass::AddLike,
                elems: vec![Element { term: term_of(other), inverted: false }],
            },
        }
    }

    /// The leaf references of this group only (not of nested groups).
    pub fn direct_leaves(&self) -> Vec<&ArrayRef> {
        self.elems
            .iter()
            .filter_map(|e| match &e.term {
                Term::Leaf(r) => Some(r),
                _ => None,
            })
            .collect()
    }

    /// All leaf references, recursively.
    pub fn all_leaves(&self) -> Vec<&ArrayRef> {
        let mut out = Vec::new();
        self.collect_leaves(&mut out);
        out
    }

    fn collect_leaves<'a>(&'a self, out: &mut Vec<&'a ArrayRef>) {
        for e in &self.elems {
            match &e.term {
                Term::Leaf(r) => out.push(r),
                Term::Group(g) => g.collect_leaves(out),
                Term::Const(_) => {}
            }
        }
    }

    /// Maximum nesting depth (1 for a flat set).
    pub fn depth(&self) -> usize {
        1 + self
            .elems
            .iter()
            .map(|e| match &e.term {
                Term::Group(g) => g.depth(),
                _ => 0,
            })
            .max()
            .unwrap_or(0)
    }

    /// Evaluates the group numerically, resolving each leaf with `leaf`.
    /// Used to check that reordering schedules preserve statement values.
    pub fn eval(&self, leaf: &mut dyn FnMut(&ArrayRef) -> f64) -> f64 {
        match self.class {
            OpClass::Fixed(op) => {
                let a = eval_term(&self.elems[0].term, leaf);
                let b = eval_term(&self.elems[1].term, leaf);
                op.apply(a, b)
            }
            class => {
                let mut acc = class.identity();
                for e in &self.elems {
                    let v = eval_term(&e.term, leaf);
                    acc = class.op_for(e.inverted).apply(acc, v);
                }
                acc
            }
        }
    }
}

fn eval_term(t: &Term, leaf: &mut dyn FnMut(&ArrayRef) -> f64) -> f64 {
    match t {
        Term::Const(v) => *v,
        Term::Leaf(r) => leaf(r),
        Term::Group(g) => g.eval(leaf),
    }
}

fn term_of(e: &Expr) -> Term {
    match e {
        Expr::Const(v) => Term::Const(*v),
        Expr::Ref(r) => Term::Leaf(r.clone()),
        Expr::Bin { .. } => Term::Group(Group::of_expr(e)),
    }
}

/// Flattens same-class chains into `out`, propagating inversion:
/// `a - (b - c)` ⇒ `a + b⁻ + c`.
fn flatten(e: &Expr, class: OpClass, inverted: bool, out: &mut Vec<Element>) {
    match e {
        Expr::Bin { op, lhs, rhs } if OpClass::of(*op) == class && class.is_reorderable() => {
            flatten(lhs, class, inverted, out);
            flatten(rhs, class, inverted ^ op.is_inverse(), out);
        }
        other => out.push(Element { term: term_of(other), inverted }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{ArrayId, VarId};
    use crate::parser::{parse_expr, ParseCtx};

    fn ctx() -> ParseCtx {
        let mut c = ParseCtx::new();
        for (i, n) in ["a", "b", "c", "d", "e", "f", "g"].iter().enumerate() {
            c.add_array(*n, ArrayId::from_index(i));
        }
        c.add_var("i", VarId::from_depth(0));
        c
    }

    fn group(src: &str) -> Group {
        Group::of_expr(&parse_expr(src, &ctx()).unwrap())
    }

    /// Leaf resolver returning a fixed value per array id.
    fn values(vals: &[f64]) -> impl FnMut(&ArrayRef) -> f64 + '_ {
        move |r: &ArrayRef| vals[r.array.index()]
    }

    #[test]
    fn paper_example_nested_sets() {
        // x = a*(b+c) + d*(e+f+g): additive top with two mul groups.
        let g = group("a[i]*(b[i]+c[i]) + d[i]*(e[i]+f[i]+g[i])");
        assert_eq!(g.class, OpClass::AddLike);
        assert_eq!(g.elems.len(), 2);
        for e in &g.elems {
            match &e.term {
                Term::Group(mg) => {
                    assert_eq!(mg.class, OpClass::MulLike);
                    assert_eq!(mg.elems.len(), 2);
                    // One leaf + one nested additive group.
                    let has_inner = mg.elems.iter().any(
                        |e| matches!(&e.term, Term::Group(ig) if ig.class == OpClass::AddLike),
                    );
                    assert!(has_inner);
                }
                other => panic!("expected mul group, got {other:?}"),
            }
        }
        assert_eq!(g.depth(), 3);
        assert_eq!(g.all_leaves().len(), 7);
    }

    #[test]
    fn flat_chain_flattens_fully() {
        let g = group("b[i] + c[i] + d[i] + e[i]");
        assert_eq!(g.class, OpClass::AddLike);
        assert_eq!(g.elems.len(), 4);
        assert_eq!(g.depth(), 1);
        assert_eq!(g.direct_leaves().len(), 4);
    }

    #[test]
    fn subtraction_sets_inverted_flags() {
        let g = group("a[i] - b[i] + c[i]");
        let flags: Vec<_> = g.elems.iter().map(|e| e.inverted).collect();
        assert_eq!(flags, vec![false, true, false]);
    }

    #[test]
    fn nested_subtraction_propagates_inversion() {
        // a - (b - c) = a - b + c
        let g = Group::of_expr(&parse_expr("a[i] - (b[i] - c[i])", &ctx()).unwrap());
        assert_eq!(g.elems.len(), 3);
        let flags: Vec<_> = g.elems.iter().map(|e| e.inverted).collect();
        assert_eq!(flags, vec![false, true, false]);
        let mut leaf = values(&[10.0, 4.0, 1.0]);
        assert_eq!(g.eval(&mut leaf), 7.0);
    }

    #[test]
    fn division_chains_invert() {
        // a / b / c = a * b^-1 * c^-1
        let g = group("a[i] / b[i] / c[i]");
        assert_eq!(g.class, OpClass::MulLike);
        let flags: Vec<_> = g.elems.iter().map(|e| e.inverted).collect();
        assert_eq!(flags, vec![false, true, true]);
        let mut leaf = values(&[24.0, 2.0, 3.0]);
        assert_eq!(g.eval(&mut leaf), 4.0);
    }

    #[test]
    fn eval_matches_parse_semantics() {
        let vals = [7.0, 2.0, 3.0, 5.0, 1.0, 4.0, 6.0];
        let g = group("a[i]*(b[i]+c[i]) + d[i]*(e[i]+f[i]+g[i])");
        let mut leaf = values(&vals);
        // 7*(2+3) + 5*(1+4+6) = 35 + 55 = 90
        assert_eq!(g.eval(&mut leaf), 90.0);
    }

    #[test]
    fn shift_groups_are_fixed_and_ordered() {
        let g = group("a[i] << b[i]");
        assert_eq!(g.class, OpClass::Fixed(BinOp::Shl));
        assert!(!g.class.is_reorderable());
        assert_eq!(g.elems.len(), 2);
        let mut leaf = values(&[2.0, 3.0]);
        assert_eq!(g.eval(&mut leaf), 16.0);
    }

    #[test]
    fn logical_chain_flattens() {
        let g = group("a[i] & b[i] & c[i]");
        assert_eq!(g.class, OpClass::AndLike);
        assert_eq!(g.elems.len(), 3);
        let mut leaf = values(&[7.0, 6.0, 3.0]);
        assert_eq!(g.eval(&mut leaf), 2.0);
    }

    #[test]
    fn single_operand_is_degenerate_group() {
        let g = group("a[i]");
        assert_eq!(g.elems.len(), 1);
        assert_eq!(g.depth(), 1);
        let mut leaf = values(&[42.0]);
        assert_eq!(g.eval(&mut leaf), 42.0);
    }

    #[test]
    fn constants_participate_in_groups() {
        let g = group("a[i] + 3");
        assert_eq!(g.elems.len(), 2);
        let mut leaf = values(&[1.0]);
        assert_eq!(g.eval(&mut leaf), 4.0);
        assert_eq!(g.all_leaves().len(), 1);
    }

    #[test]
    fn op_for_class() {
        assert_eq!(OpClass::AddLike.op_for(true), BinOp::Sub);
        assert_eq!(OpClass::MulLike.op_for(true), BinOp::Div);
        assert_eq!(OpClass::XorLike.op_for(false), BinOp::Xor);
    }

    #[test]
    fn mul_of_sums_keeps_priority() {
        // (a+b) * (c+d): mul top-level, two additive groups; reordering the
        // additive groups into the mul set would change the value.
        let g = group("(a[i]+b[i]) * (c[i]+d[i])");
        assert_eq!(g.class, OpClass::MulLike);
        assert_eq!(g.elems.len(), 2);
        let mut leaf = values(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(g.eval(&mut leaf), 21.0);
    }
}
