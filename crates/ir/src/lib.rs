//! Loop-nest intermediate representation for the partitioning compiler.
//!
//! The paper's algorithm operates on *statements inside loop nests*: it needs
//! to see each statement's operand array references, the operator
//! priority/parenthesis structure (to build the "nested sets" of
//! Section 4.2), the loop iteration space (to enumerate statement instances
//! and windows), and the data dependences between nearby statements
//! (Section 4.5). This crate supplies exactly that:
//!
//! - [`op`] — binary operators, their reorderability classes and cost
//!   weights (division is 10× an add for load balancing);
//! - [`lexer`] / [`parser`] — a small statement language
//!   (`"A[i] = B[i] + C[i] * (D[i] - E[i+1])"`) with affine and indirect
//!   (`X[Y[i]]`) subscripts;
//! - [`expr`] / [`access`] — the expression AST and array references;
//! - [`program`] — array declarations, loop nests, whole programs, plus a
//!   deterministic initial-value model so schedules can be checked for
//!   *numerical* correctness;
//! - [`nested`] — extraction of the paper's nested operand sets from an
//!   expression, normalising `-`/`/` chains into sign/inverse flags so the
//!   MST may legally reorder them;
//! - [`deps`] — instance-level flow/anti/output dependences and
//!   may-dependences for indirect references;
//! - [`inspector`] — the inspector half of the inspector/executor scheme
//!   used to resolve may-dependences at "run time";
//! - [`fingerprint`] — the canonical structural hash (`StableHash`) the
//!   serving layer keys its plan cache on.
//!
//! # Examples
//!
//! ```
//! use dmcp_ir::program::ProgramBuilder;
//!
//! let mut b = ProgramBuilder::new();
//! b.array("A", &[64], 8);
//! b.array("B", &[64], 8);
//! b.nest(&[("i", 0, 64)], &["A[i] = B[i] + 2"]).unwrap();
//! let program = b.build();
//! assert_eq!(program.nests().len(), 1);
//! ```

pub mod access;
pub mod deps;
pub mod display;
pub mod exec;
pub mod expr;
pub mod fingerprint;
pub mod inspector;
pub mod lexer;
pub mod nested;
pub mod op;
pub mod parser;
pub mod program;
pub mod symbol;
pub mod transform;

pub use access::{ArrayId, ArrayRef, IndexExpr};
pub use deps::{DepKind, Dependence};
pub use expr::Expr;
pub use fingerprint::{StableHash, StableHasher};
pub use nested::{Element, Group, OpClass, Term};
pub use op::BinOp;
pub use program::{
    ArrayDecl, DataStore, IterVec, LoopDim, LoopNest, Mismatch, Program, ProgramBuilder, Statement,
};
pub use symbol::{Symbol, SymbolTable};
