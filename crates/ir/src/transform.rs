//! Loop transformations used by the window mechanism.
//!
//! The paper's Figure 12 unrolls the loop body by one iteration "to have
//! enough statements filling the window", and its footnote 3 notes that in
//! the extreme the nest can be fully unrolled into one gigantic window.
//! [`unroll`] implements that transformation: the innermost loop is
//! advanced by `factor` per iteration and the body is replicated with the
//! innermost subscripts shifted.

use crate::access::{ArrayRef, IndexExpr, VarId};
use crate::expr::Expr;
use crate::program::{LoopNest, Statement};

/// Unrolls the innermost loop of `nest` by `factor`, returning a new nest.
///
/// The innermost dimension's extent must be divisible by `factor` (the
/// synthetic workloads guarantee it; remainder loops are out of scope).
/// Copy `k` of the body has every innermost-variable subscript shifted by
/// `+k`.
///
/// # Panics
///
/// Panics if `factor` is zero or the innermost trip count is not divisible
/// by it.
///
/// # Examples
///
/// ```
/// use dmcp_ir::ProgramBuilder;
/// use dmcp_ir::transform::unroll;
///
/// let mut b = ProgramBuilder::new();
/// b.array("A", &[64], 8);
/// b.array("B", &[64], 8);
/// b.nest(&[("i", 0, 64)], &["A[i] = B[i] + 1"]).unwrap();
/// let p = b.build();
/// let u = unroll(&p.nests()[0], 4);
/// assert_eq!(u.body.len(), 4);
/// assert_eq!(u.iteration_count(), 16);
/// ```
pub fn unroll(nest: &LoopNest, factor: u32) -> LoopNest {
    assert!(factor > 0, "unroll factor must be nonzero");
    let depth = nest.dims.len() - 1;
    let inner = &nest.dims[depth];
    let trip = inner.trip_count();
    assert!(
        trip.is_multiple_of(u64::from(factor)),
        "trip count {trip} not divisible by unroll factor {factor}"
    );
    let var = VarId::from_depth(depth);

    let mut dims = nest.dims.clone();
    // i now advances by `factor`: model as i' in lo..lo+trip/factor with
    // subscripts using factor*i' + k.
    dims[depth].hi = inner.lo + (trip / u64::from(factor)) as i64;

    let mut body = Vec::with_capacity(nest.body.len() * factor as usize);
    for k in 0..i64::from(factor) {
        for stmt in &nest.body {
            let mut s = stmt.clone();
            rescale_statement(
                &mut s,
                var,
                i64::from(factor),
                k + inner.lo * (i64::from(factor) - 1),
            );
            body.push(s);
        }
    }
    // Note: for lo != 0 the rescaling below keeps `factor*i + k + lo*(factor-1)`
    // aligned so that i' = lo maps to original i = lo.
    LoopNest { dims, body }
}

/// Replaces every occurrence of `var` with `scale*var + shift` in the
/// statement's subscripts.
fn rescale_statement(stmt: &mut Statement, var: VarId, scale: i64, shift: i64) {
    stmt.for_each_ref_mut(&mut |r: &mut ArrayRef| {
        for idx in &mut r.indices {
            if let IndexExpr::Affine(a) = idx {
                if let Some(pos) = a.terms.iter().position(|&(v, _)| v == var) {
                    let coeff = a.terms[pos].1;
                    a.terms[pos].1 = coeff * scale;
                    a.c0 += coeff * shift;
                }
            }
        }
    });
    rescale_expr(&mut stmt.rhs, var, scale, shift);
}

fn rescale_expr(e: &mut Expr, var: VarId, scale: i64, shift: i64) {
    match e {
        Expr::Const(_) => {}
        Expr::Ref(r) => {
            // Refs inside the rhs were already visited by for_each_ref_mut
            // on the statement — nothing further here; kept for clarity.
            let _ = (r, var, scale, shift);
        }
        Expr::Bin { lhs, rhs, .. } => {
            rescale_expr(lhs, var, scale, shift);
            rescale_expr(rhs, var, scale, shift);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::run_sequential;
    use crate::program::{Program, ProgramBuilder};

    fn program(stmts: &[&str], n: i64) -> Program {
        let mut b = ProgramBuilder::new();
        for name in ["A", "B", "C"] {
            b.array(name, &[64], 8);
        }
        b.nest(&[("t", 0, 2), ("i", 0, n)], stmts).unwrap();
        b.build()
    }

    fn unrolled_program(p: &Program, factor: u32) -> Program {
        let mut q = p.clone();
        let u = unroll(&p.nests()[0], factor);
        q.nests_mut()[0] = u;
        q
    }

    #[test]
    fn unroll_preserves_semantics() {
        for factor in [1u32, 2, 4, 8] {
            let p = program(&["A[i] = B[i] * 2 + C[i]", "C[i] = A[i] + 1"], 32);
            let q = unrolled_program(&p, factor);
            let mut want = p.initial_data();
            run_sequential(&p, &mut want);
            let mut got = q.initial_data();
            run_sequential(&q, &mut got);
            assert_eq!(got, want, "factor {factor} changed semantics");
        }
    }

    #[test]
    fn unroll_preserves_stencil_semantics() {
        let p = program(&["A[i] = B[i+1] + B[i] + 2"], 32);
        let q = unrolled_program(&p, 4);
        let mut want = p.initial_data();
        run_sequential(&p, &mut want);
        let mut got = q.initial_data();
        run_sequential(&q, &mut got);
        assert_eq!(got, want);
    }

    #[test]
    fn unroll_shapes() {
        let p = program(&["A[i] = B[i]"], 32);
        let u = unroll(&p.nests()[0], 4);
        assert_eq!(u.body.len(), 4);
        assert_eq!(u.dims[1].trip_count(), 8);
        assert_eq!(u.iteration_count(), 16); // 2 timesteps x 8
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn indivisible_factor_panics() {
        let p = program(&["A[i] = B[i]"], 30);
        let _ = unroll(&p.nests()[0], 4);
    }
}
