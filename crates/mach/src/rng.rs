//! A small deterministic PRNG (splitmix64) used wherever the repo needs
//! seeded randomness: workload generation, fault-plan sampling and the
//! transient-drop schedule of the fault model.
//!
//! The repo builds fully offline, so this replaces any external RNG crate.
//! Determinism is load-bearing: the same seed must produce the same
//! workload data, the same fault plan and the same drop schedule on every
//! run, or partitioning and simulation stop being reproducible.

/// The splitmix64 finalizer: a stateless avalanche mix of one `u64`.
///
/// Used directly (without an RNG object) to derive per-link, per-attempt
/// drop decisions in the fault model — a pure function of
/// `(seed, link, attempt)` that is independent of call order. The
/// definition lives in the shared `dmcp-hash` crate; this re-export keeps
/// the historical path every caller already uses.
pub use dmcp_hash::mix;

/// A seeded splitmix64 generator.
///
/// # Examples
///
/// ```
/// use dmcp_mach::rng::Rng64;
///
/// let mut a = Rng64::new(7);
/// let mut b = Rng64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value: `mix` of the pre-increment state (the
    /// stream splitmix64 defines — bit-identical to the former inline
    /// arithmetic).
    pub fn next_u64(&mut self) -> u64 {
        let out = mix(self.state);
        self.state = self.state.wrapping_add(dmcp_hash::GOLDEN_GAMMA);
        out
    }

    /// Uniform value in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`. `bound` must be nonzero.
    ///
    /// Uses the multiply-shift reduction; the bias is < 2⁻⁴⁰ for every
    /// bound this repo uses, far below anything the tests can observe.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "gen_range bound must be nonzero");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Bernoulli draw with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, v: &mut [T]) {
        for i in (1..v.len()).rev() {
            let j = self.gen_range(i as u64 + 1) as usize;
            v.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = Rng64::new(42);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng64::new(42);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = Rng64::new(43);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng64::new(1);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_in_bounds_and_covers() {
        let mut r = Rng64::new(2);
        let mut seen = [false; 8];
        for _ in 0..500 {
            let x = r.gen_range(8) as usize;
            assert!(x < 8);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = Rng64::new(3);
        let hits = (0..4000).filter(|_| r.gen_bool(0.25)).count();
        assert!((800..1200).contains(&hits), "got {hits}/4000 at p=0.25");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..100).collect();
        Rng64::new(5).shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle should move things");
    }

    #[test]
    fn mix_avalanches() {
        assert_ne!(mix(0), mix(1));
        assert_eq!(mix(12345), mix(12345));
    }
}
