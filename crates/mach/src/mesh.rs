//! The `M × N` mesh topology: enumeration, bank indexing, MCs, quadrants.

use crate::node::NodeId;
use std::fmt;

/// One of the four sections of the mesh used by the quadrant/SNC-4 cluster
/// modes (Section 6.1 of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Quadrant {
    /// Low-x, low-y corner.
    NorthWest,
    /// High-x, low-y corner.
    NorthEast,
    /// Low-x, high-y corner.
    SouthWest,
    /// High-x, high-y corner.
    SouthEast,
}

impl Quadrant {
    /// All four quadrants, in a fixed order.
    pub const ALL: [Quadrant; 4] =
        [Quadrant::NorthWest, Quadrant::NorthEast, Quadrant::SouthWest, Quadrant::SouthEast];
}

impl fmt::Display for Quadrant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Quadrant::NorthWest => "NW",
            Quadrant::NorthEast => "NE",
            Quadrant::SouthWest => "SW",
            Quadrant::SouthEast => "SE",
        };
        f.write_str(s)
    }
}

/// A 2D mesh of `cols × rows` tiles.
///
/// Each tile holds a core, a private L1 and one bank of the shared L2
/// (SNUCA). L2 banks are numbered row-major, so bank index `b` lives on node
/// `(b % cols, b / cols)`. Memory controllers are attached to the four corner
/// nodes, as in the paper's Figure 1.
///
/// # Examples
///
/// ```
/// use dmcp_mach::{Mesh, NodeId};
///
/// let mesh = Mesh::new(6, 6);
/// assert_eq!(mesh.node_count(), 36);
/// assert_eq!(mesh.bank_node(7), NodeId::new(1, 1));
/// assert_eq!(mesh.memory_controllers().len(), 4);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Mesh {
    cols: u16,
    rows: u16,
}

impl Mesh {
    /// Creates a mesh with `cols` columns and `rows` rows.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or if the mesh has fewer than four
    /// nodes (memory controllers occupy the four corners).
    pub fn new(cols: u16, rows: u16) -> Self {
        assert!(cols > 0 && rows > 0, "mesh dimensions must be nonzero");
        assert!(
            u32::from(cols) * u32::from(rows) >= 4,
            "mesh must have at least 4 nodes to host corner memory controllers"
        );
        Self { cols, rows }
    }

    /// Number of columns (the `M` in `M × N`).
    pub const fn cols(self) -> u16 {
        self.cols
    }

    /// Number of rows (the `N` in `M × N`).
    pub const fn rows(self) -> u16 {
        self.rows
    }

    /// Total number of tiles.
    pub const fn node_count(self) -> u32 {
        self.cols as u32 * self.rows as u32
    }

    /// `true` if `node` lies on this mesh.
    pub fn contains(self, node: NodeId) -> bool {
        node.x() < self.cols && node.y() < self.rows
    }

    /// Iterates over all nodes in row-major order.
    pub fn nodes(self) -> impl Iterator<Item = NodeId> {
        let cols = self.cols;
        (0..self.rows).flat_map(move |y| (0..cols).map(move |x| NodeId::new(x, y)))
    }

    /// Row-major index of a node (also its L2 bank number).
    ///
    /// # Panics
    ///
    /// Panics if `node` is not on the mesh.
    pub fn node_index(self, node: NodeId) -> u32 {
        assert!(self.contains(node), "{node} outside {self:?}");
        u32::from(node.y()) * u32::from(self.cols) + u32::from(node.x())
    }

    /// Node that hosts L2 bank `bank` (row-major numbering, wrapped modulo
    /// the node count so any bank id maps onto the mesh).
    pub fn bank_node(self, bank: u32) -> NodeId {
        let b = bank % self.node_count();
        NodeId::new((b % u32::from(self.cols)) as u16, (b / u32::from(self.cols)) as u16)
    }

    /// The four corner nodes hosting memory controllers, in the order
    /// NW, NE, SW, SE. Channel `c` is served by `memory_controllers()[c % 4]`.
    pub fn memory_controllers(self) -> [NodeId; 4] {
        [
            NodeId::new(0, 0),
            NodeId::new(self.cols - 1, 0),
            NodeId::new(0, self.rows - 1),
            NodeId::new(self.cols - 1, self.rows - 1),
        ]
    }

    /// Memory-controller node for a channel id.
    pub fn controller_for_channel(self, channel: u32) -> NodeId {
        self.memory_controllers()[(channel % 4) as usize]
    }

    /// The quadrant a node belongs to (used by the quadrant and SNC-4
    /// cluster modes).
    pub fn quadrant_of(self, node: NodeId) -> Quadrant {
        let west = node.x() < self.cols.div_ceil(2);
        let north = node.y() < self.rows.div_ceil(2);
        match (west, north) {
            (true, true) => Quadrant::NorthWest,
            (false, true) => Quadrant::NorthEast,
            (true, false) => Quadrant::SouthWest,
            (false, false) => Quadrant::SouthEast,
        }
    }

    /// The memory controller located inside a quadrant.
    pub fn controller_in_quadrant(self, q: Quadrant) -> NodeId {
        match q {
            Quadrant::NorthWest => NodeId::new(0, 0),
            Quadrant::NorthEast => NodeId::new(self.cols - 1, 0),
            Quadrant::SouthWest => NodeId::new(0, self.rows - 1),
            Quadrant::SouthEast => NodeId::new(self.cols - 1, self.rows - 1),
        }
    }

    /// Nodes belonging to quadrant `q`, in row-major order.
    pub fn nodes_in_quadrant(self, q: Quadrant) -> Vec<NodeId> {
        self.nodes().filter(|&n| self.quadrant_of(n) == q).collect()
    }

    /// The largest possible Manhattan distance on this mesh (corner to
    /// opposite corner).
    pub fn diameter(self) -> u32 {
        u32::from(self.cols - 1) + u32::from(self.rows - 1)
    }

    /// The mesh neighbours of `node`, in the fixed order +x, −x, +y, −y
    /// (edge nodes have fewer). The deterministic order matters: the
    /// detour router's BFS tie-breaks by expansion order.
    pub fn neighbors(self, node: NodeId) -> impl Iterator<Item = NodeId> {
        let (x, y) = (node.x(), node.y());
        let candidates = [
            (x < self.cols - 1).then(|| NodeId::new(x + 1, y)),
            (x > 0).then(|| NodeId::new(x - 1, y)),
            (y < self.rows - 1).then(|| NodeId::new(x, y + 1)),
            (y > 0).then(|| NodeId::new(x, y - 1)),
        ];
        candidates.into_iter().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_enumeration_is_row_major_and_complete() {
        let mesh = Mesh::new(3, 2);
        let nodes: Vec<_> = mesh.nodes().collect();
        assert_eq!(
            nodes,
            vec![
                NodeId::new(0, 0),
                NodeId::new(1, 0),
                NodeId::new(2, 0),
                NodeId::new(0, 1),
                NodeId::new(1, 1),
                NodeId::new(2, 1),
            ]
        );
    }

    #[test]
    fn bank_and_index_roundtrip() {
        let mesh = Mesh::new(6, 6);
        for n in mesh.nodes() {
            assert_eq!(mesh.bank_node(mesh.node_index(n)), n);
        }
    }

    #[test]
    fn bank_wraps_modulo_node_count() {
        let mesh = Mesh::new(4, 4);
        assert_eq!(mesh.bank_node(16), mesh.bank_node(0));
        assert_eq!(mesh.bank_node(17), mesh.bank_node(1));
    }

    #[test]
    fn controllers_are_corners() {
        let mesh = Mesh::new(6, 6);
        let [nw, ne, sw, se] = mesh.memory_controllers();
        assert_eq!(nw, NodeId::new(0, 0));
        assert_eq!(ne, NodeId::new(5, 0));
        assert_eq!(sw, NodeId::new(0, 5));
        assert_eq!(se, NodeId::new(5, 5));
    }

    #[test]
    fn quadrants_partition_the_mesh() {
        let mesh = Mesh::new(6, 6);
        let total: usize = Quadrant::ALL.iter().map(|&q| mesh.nodes_in_quadrant(q).len()).sum();
        assert_eq!(total as u32, mesh.node_count());
        // Each quadrant of a 6x6 mesh holds exactly 9 nodes.
        for q in Quadrant::ALL {
            assert_eq!(mesh.nodes_in_quadrant(q).len(), 9);
        }
    }

    #[test]
    fn quadrant_controller_is_inside_its_quadrant() {
        let mesh = Mesh::new(6, 6);
        for q in Quadrant::ALL {
            let mc = mesh.controller_in_quadrant(q);
            assert_eq!(mesh.quadrant_of(mc), q);
        }
    }

    #[test]
    fn odd_meshes_still_partition() {
        let mesh = Mesh::new(5, 3);
        let total: usize = Quadrant::ALL.iter().map(|&q| mesh.nodes_in_quadrant(q).len()).sum();
        assert_eq!(total as u32, mesh.node_count());
    }

    #[test]
    fn diameter() {
        assert_eq!(Mesh::new(6, 6).diameter(), 10);
        assert_eq!(Mesh::new(2, 2).diameter(), 2);
    }

    #[test]
    #[should_panic(expected = "at least 4 nodes")]
    fn too_small_mesh_panics() {
        let _ = Mesh::new(1, 2);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn node_index_panics_off_mesh() {
        let _ = Mesh::new(2, 2).node_index(NodeId::new(5, 5));
    }
}
