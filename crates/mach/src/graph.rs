//! Exact graph kernels over the mesh metric: MST and Steiner minima.
//!
//! Promoted out of `dmcp-check`'s oracle so every consumer — the oracle
//! itself, the `dmcp-bound` lower bounds, and any future Steiner placement
//! pass — shares one validated implementation instead of a copy.
//!
//! Two families live here:
//!
//! * point kernels ([`mst_weight`], [`steiner_min`]) over a plain terminal
//!   list, exactly as the oracle has always used them;
//! * *group* kernels ([`mst_weight_sets`], [`steiner_min_sets`],
//!   [`max_pairwise_sets`]) over terminal **option sets**: each terminal
//!   may sit at any one node of its set, and the kernel minimises over the
//!   choices. `dmcp-bound` uses these because a planned operand's paid
//!   source is one of a small believed-location set (home bank or memory
//!   controller) that the bound must not guess.
//!
//! With singleton sets the group kernels degenerate to the point kernels —
//! the unit tests pin that.

use crate::mesh::Mesh;
use crate::node::NodeId;

/// Kruskal/Prim-equivalent MST weight over a terminal multiset under
/// Manhattan distance (independent of `dmcp_core::mst` — this is the
/// oracle's own arithmetic).
pub fn mst_weight(terminals: &[NodeId]) -> u64 {
    let n = terminals.len();
    if n <= 1 {
        return 0;
    }
    let mut in_tree = vec![false; n];
    let mut key = vec![u32::MAX; n];
    key[0] = 0;
    let mut total = 0u64;
    for _ in 0..n {
        let v = (0..n).filter(|&v| !in_tree[v]).min_by_key(|&v| key[v]).expect("a vertex remains");
        in_tree[v] = true;
        total += u64::from(key[v]);
        for u in 0..n {
            if !in_tree[u] {
                let d = terminals[v].manhattan(terminals[u]);
                if d < key[u] {
                    key[u] = d;
                }
            }
        }
    }
    total
}

/// Exact minimum Steiner-tree weight connecting `terminals` on `mesh`
/// (Dreyfus–Wagner over the mesh's metric closure). Terminals are
/// deduplicated; at most 15 distinct terminals are supported.
pub fn steiner_min(mesh: &Mesh, terminals: &[NodeId]) -> u64 {
    let mut ts: Vec<Vec<NodeId>> = Vec::new();
    for &t in terminals {
        if !ts.iter().any(|g| g[0] == t) {
            ts.push(vec![t]);
        }
    }
    steiner_min_sets(mesh, &ts)
}

/// Exact minimum *group* Steiner-tree weight on `mesh`: the cheapest tree
/// touching at least one node of every option set, i.e. the minimum over
/// all per-set choices of [`steiner_min`] of the chosen points.
///
/// Dreyfus–Wagner with the group initialisation `dp[{i}][v] =
/// min_{t ∈ set_i} d(t, v)`; a single metric-closure pass per mask is
/// exact because Manhattan distance satisfies the triangle inequality
/// over the full node set. Identical sets are deduplicated (they don't
/// change the optimum); at most 15 distinct sets are supported.
///
/// # Panics
///
/// Panics on an empty option set or more than 15 distinct sets.
pub fn steiner_min_sets(mesh: &Mesh, sets: &[Vec<NodeId>]) -> u64 {
    let mut groups: Vec<&Vec<NodeId>> = Vec::new();
    for s in sets {
        assert!(!s.is_empty(), "terminal option set must be non-empty");
        if !groups.contains(&s) {
            groups.push(s);
        }
    }
    let t = groups.len();
    if t <= 1 {
        return 0;
    }
    assert!(t <= 15, "too many distinct terminals for the DP");
    let nodes: Vec<NodeId> = mesh.nodes().collect();
    let n = nodes.len();
    let full: usize = (1 << t) - 1;
    const INF: u64 = u64::MAX / 4;
    let mut dp = vec![vec![INF; n]; full + 1];
    for (i, group) in groups.iter().enumerate() {
        for (v, node) in nodes.iter().enumerate() {
            dp[1 << i][v] = group
                .iter()
                .map(|t| u64::from(t.manhattan(*node)))
                .min()
                .expect("non-empty option set");
        }
    }
    for mask in 1..=full {
        if mask.count_ones() >= 2 {
            // dp rows for several masks are read while this one is written,
            // so an iterator over dp[mask] alone cannot express the merge.
            #[allow(clippy::needless_range_loop)]
            for v in 0..n {
                let mut best = dp[mask][v];
                let mut sub = (mask - 1) & mask;
                while sub > 0 {
                    let other = mask ^ sub;
                    if sub <= other {
                        let cand = dp[sub][v].saturating_add(dp[other][v]);
                        if cand < best {
                            best = cand;
                        }
                    }
                    sub = (sub - 1) & mask;
                }
                dp[mask][v] = best;
            }
        }
        // Propagate through the metric closure. A single pass is exact
        // because Manhattan distance already satisfies the triangle
        // inequality over the full node set.
        let snapshot: Vec<u64> = dp[mask].clone();
        for v in 0..n {
            let mut best = dp[mask][v];
            for (u, du) in snapshot.iter().enumerate() {
                let cand = du.saturating_add(u64::from(nodes[u].manhattan(nodes[v])));
                if cand < best {
                    best = cand;
                }
            }
            dp[mask][v] = best;
        }
    }
    dp[full].iter().copied().min().expect("mesh has nodes")
}

/// Steiner *junctions* (relay nodes) realising the minimum group
/// Steiner tree of `sets` on `mesh`: extra non-terminal nodes such that
/// a minimum spanning tree over `sets ∪ {junction singletons}` achieves
/// the group-Steiner weight. With at most [`EXACT_SET_LIMIT`] distinct
/// sets the junctions come from an exact Dreyfus–Wagner backtrack (the
/// returned set realises [`steiner_min_sets`] exactly); above it a
/// 2-approximation is used — the MST over the sets' metric closure is
/// expanded edge-by-edge into L-shaped Manhattan paths whose interior
/// nodes become relay *candidates* (callers shortcut the result by
/// pruning non-terminal MST leaves, e.g. `dmcp_core::mst::prune_relays`).
///
/// `allowed` restricts junctions to a node subset (degraded machines:
/// only live nodes may execute relay steps); `None` allows every mesh
/// node. Terminal option nodes are never returned as junctions. The
/// result is sorted and deduplicated, so it is deterministic.
///
/// # Panics
///
/// Panics on an empty option set.
pub fn steiner_relays_sets(
    mesh: &Mesh,
    sets: &[Vec<NodeId>],
    allowed: Option<&[NodeId]>,
) -> Vec<NodeId> {
    let mut groups: Vec<&Vec<NodeId>> = Vec::new();
    for s in sets {
        assert!(!s.is_empty(), "terminal option set must be non-empty");
        if !groups.contains(&s) {
            groups.push(s);
        }
    }
    let t = groups.len();
    if t <= 2 {
        // 0–2 terminals: the optimal tree is a single metric edge (or
        // nothing); no junction can improve it.
        return Vec::new();
    }
    let nodes: Vec<NodeId> = match allowed {
        Some(a) => a.to_vec(),
        None => mesh.nodes().collect(),
    };
    if nodes.is_empty() {
        return Vec::new();
    }
    let mut relays = if t <= EXACT_SET_LIMIT {
        exact_junctions(&groups, &nodes)
    } else {
        approx_relays(&groups, &nodes)
    };
    let is_terminal = |n: NodeId| groups.iter().any(|g| g.contains(&n));
    relays.retain(|&r| !is_terminal(r));
    relays.sort();
    relays.dedup();
    relays
}

/// Largest number of distinct terminal sets [`steiner_relays_sets`]
/// solves exactly (Dreyfus–Wagner is exponential in the set count).
pub const EXACT_SET_LIMIT: usize = 6;

/// Dreyfus–Wagner over `nodes` with full choice tracking, backtracked to
/// the tree nodes of one optimal group Steiner tree.
fn exact_junctions(groups: &[&Vec<NodeId>], nodes: &[NodeId]) -> Vec<NodeId> {
    let t = groups.len();
    let n = nodes.len();
    let full: usize = (1 << t) - 1;
    const INF: u64 = u64::MAX / 4;
    let mut dp = vec![vec![INF; n]; full + 1];
    // How dp[mask][v] was achieved: a merge of two submasks at v, or a
    // metric-closure move from another node (`usize::MAX` = neither, i.e.
    // the singleton initialisation).
    let mut from_merge = vec![vec![0usize; n]; full + 1];
    let mut from_move = vec![vec![usize::MAX; n]; full + 1];
    for (i, group) in groups.iter().enumerate() {
        for (v, node) in nodes.iter().enumerate() {
            dp[1 << i][v] = group
                .iter()
                .map(|t| u64::from(t.manhattan(*node)))
                .min()
                .expect("non-empty option set");
        }
    }
    for mask in 1..=full {
        if mask.count_ones() >= 2 {
            #[allow(clippy::needless_range_loop)] // several dp rows are read while one is written
            for v in 0..n {
                let mut best = dp[mask][v];
                let mut best_sub = 0usize;
                let mut sub = (mask - 1) & mask;
                while sub > 0 {
                    let other = mask ^ sub;
                    if sub <= other {
                        let cand = dp[sub][v].saturating_add(dp[other][v]);
                        if cand < best {
                            best = cand;
                            best_sub = sub;
                        }
                    }
                    sub = (sub - 1) & mask;
                }
                if best < dp[mask][v] {
                    dp[mask][v] = best;
                    from_merge[mask][v] = best_sub;
                }
            }
        }
        // One metric-closure pass (exact under the triangle inequality);
        // the snapshot means a recorded move always lands on a pre-move
        // (init or merge) value, so backtrack chains have length one.
        let snapshot: Vec<u64> = dp[mask].clone();
        for v in 0..n {
            let mut best = dp[mask][v];
            let mut best_u = usize::MAX;
            for (u, du) in snapshot.iter().enumerate() {
                if u == v {
                    continue;
                }
                let cand = du.saturating_add(u64::from(nodes[u].manhattan(nodes[v])));
                if cand < best {
                    best = cand;
                    best_u = u;
                }
            }
            if best_u != usize::MAX {
                dp[mask][v] = best;
                from_move[mask][v] = best_u;
                from_merge[mask][v] = 0; // the move target re-derives its own merge
            }
        }
    }
    let root = (0..n).min_by_key(|&v| (dp[full][v], v)).expect("nodes non-empty");
    // Backtrack: every visited DP node is a tree node of the optimum.
    let mut tree_nodes = Vec::new();
    let mut stack = vec![(full, root, false)];
    while let Some((mask, mut v, skip_move)) = stack.pop() {
        if !skip_move && from_move[mask][v] != usize::MAX {
            tree_nodes.push(nodes[v]);
            v = from_move[mask][v];
            // The move source holds the pre-closure value for this mask.
            stack.push((mask, v, true));
            continue;
        }
        tree_nodes.push(nodes[v]);
        if mask.count_ones() >= 2 {
            let sub = from_merge[mask][v];
            if sub != 0 {
                stack.push((sub, v, false));
                stack.push((mask ^ sub, v, false));
            }
            // `sub == 0` with several bits cannot happen: a multi-bit mask's
            // pre-move value always comes from a merge.
        }
        // Singleton masks attach their group's nearest option directly —
        // the option is a terminal, not a junction, so nothing to record.
    }
    tree_nodes
}

/// The 2-approximation: MST over the sets' metric closure, each tree
/// edge expanded into an L-shaped Manhattan path whose interior nodes
/// (restricted to `nodes`) become relay candidates.
fn approx_relays(groups: &[&Vec<NodeId>], nodes: &[NodeId]) -> Vec<NodeId> {
    let t = groups.len();
    // Prim over the set distance, tracking the realising node pair of
    // every tree edge.
    let dist = |a: &[NodeId], b: &[NodeId]| -> (u32, NodeId, NodeId) {
        let mut best = (u32::MAX, NodeId::new(0, 0), NodeId::new(0, 0));
        for &x in a {
            for &y in b {
                let d = x.manhattan(y);
                if d < best.0 || (d == best.0 && (x, y) < (best.1, best.2)) {
                    best = (d, x, y);
                }
            }
        }
        best
    };
    let mut in_tree = vec![false; t];
    let mut key = vec![(u32::MAX, NodeId::new(0, 0), NodeId::new(0, 0)); t];
    key[0].0 = 0;
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    for _ in 0..t {
        let v = (0..t).filter(|&v| !in_tree[v]).min_by_key(|&v| (key[v].0, v)).expect("a set");
        in_tree[v] = true;
        if key[v].0 != 0 || key[v].1 != key[v].2 {
            edges.push((key[v].1, key[v].2));
        }
        for u in 0..t {
            if !in_tree[u] {
                let (d, a, b) = dist(groups[v], groups[u]);
                if d < key[u].0 {
                    key[u] = (d, a, b);
                }
            }
        }
    }
    let allowed: std::collections::HashSet<NodeId> = nodes.iter().copied().collect();
    let mut relays = Vec::new();
    for (a, b) in edges {
        // Walk x first, then y (deterministic L-shape); interior nodes
        // only — endpoints are terminal options.
        let (mut x, mut y) = (a.x(), a.y());
        while x != b.x() {
            x = if x < b.x() { x + 1 } else { x - 1 };
            let node = NodeId::new(x, y);
            if node != b && allowed.contains(&node) {
                relays.push(node);
            }
        }
        while y != b.y() {
            y = if y < b.y() { y + 1 } else { y - 1 };
            let node = NodeId::new(x, y);
            if node != b && allowed.contains(&node) {
                relays.push(node);
            }
        }
    }
    relays
}

/// MST weight over terminal option sets under the *set* distance
/// `d(S, T) = min_{a ∈ S, b ∈ T} manhattan(a, b)`.
///
/// A lower bound on the minimum over per-set choices of [`mst_weight`] of
/// the chosen points: any chosen spanning tree's edges are each at least
/// the corresponding set distance.
///
/// # Panics
///
/// Panics on an empty option set.
pub fn mst_weight_sets(sets: &[Vec<NodeId>]) -> u64 {
    let n = sets.len();
    if n <= 1 {
        return 0;
    }
    let dist = |a: &[NodeId], b: &[NodeId]| -> u32 {
        let mut best = u32::MAX;
        for &x in a {
            for &y in b {
                best = best.min(x.manhattan(y));
            }
        }
        best
    };
    let mut in_tree = vec![false; n];
    let mut key = vec![u32::MAX; n];
    key[0] = 0;
    let mut total = 0u64;
    for _ in 0..n {
        let v = (0..n).filter(|&v| !in_tree[v]).min_by_key(|&v| key[v]).expect("a vertex remains");
        in_tree[v] = true;
        total += u64::from(key[v]);
        for u in 0..n {
            if !in_tree[u] {
                assert!(!sets[v].is_empty() && !sets[u].is_empty(), "empty option set");
                let d = dist(&sets[v], &sets[u]);
                if d < key[u] {
                    key[u] = d;
                }
            }
        }
    }
    total
}

/// The largest pairwise set distance: `max_{i<j} min_{a ∈ S_i, b ∈ S_j}
/// manhattan(a, b)`. Any connected structure touching one node of every
/// set has total length at least this.
pub fn max_pairwise_sets(sets: &[Vec<NodeId>]) -> u64 {
    let mut best = 0u64;
    for i in 0..sets.len() {
        for j in i + 1..sets.len() {
            let mut d = u32::MAX;
            for &a in &sets[i] {
                for &b in &sets[j] {
                    d = d.min(a.manhattan(b));
                }
            }
            if d != u32::MAX {
                best = best.max(u64::from(d));
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    fn pick_node(rng: &mut Rng64, mesh: &Mesh) -> NodeId {
        let nodes: Vec<NodeId> = mesh.nodes().collect();
        nodes[rng.gen_range(nodes.len() as u64) as usize]
    }

    #[test]
    fn steiner_never_exceeds_mst() {
        let mut rng = Rng64::new(5);
        let mesh = Mesh::new(3, 3);
        for _ in 0..50 {
            let k = 2 + rng.gen_range(4) as usize;
            let terms: Vec<NodeId> = (0..k).map(|_| pick_node(&mut rng, &mesh)).collect();
            let s = steiner_min(&mesh, &terms);
            let m = mst_weight(&terms);
            assert!(s <= m, "steiner {s} > mst {m} for {terms:?}");
            // The MST 3/2-approximation bound (loose form): mst ≤ 2·steiner.
            assert!(m <= 2 * s.max(1) || s == 0, "mst {m} > 2·steiner {s}");
        }
    }

    #[test]
    fn steiner_of_corners_uses_a_steiner_point() {
        // Four corners of a 3×3 mesh: MST = 3 edges of weight 2 = 6 by
        // pairing corners; the Steiner tree through the centre costs 8? No:
        // corners are (0,0),(2,0),(0,2),(2,2); centre star = 4·2 = 8, MST
        // = 2+2+2... along edges = 6. Check the DP finds ≤ MST.
        let mesh = Mesh::new(3, 3);
        let corners = [NodeId::new(0, 0), NodeId::new(2, 0), NodeId::new(0, 2), NodeId::new(2, 2)];
        let s = steiner_min(&mesh, &corners);
        let m = mst_weight(&corners);
        assert!(s <= m);
        assert_eq!(m, 6);
        assert_eq!(s, 6); // on a grid the corner set has no better Steiner tree
    }

    #[test]
    fn mst_weight_handles_duplicates_and_singletons() {
        let a = NodeId::new(1, 1);
        assert_eq!(mst_weight(&[]), 0);
        assert_eq!(mst_weight(&[a]), 0);
        assert_eq!(mst_weight(&[a, a, a]), 0);
        assert_eq!(mst_weight(&[a, NodeId::new(1, 3)]), 2);
    }

    #[test]
    fn singleton_sets_degenerate_to_point_kernels() {
        let mut rng = Rng64::new(17);
        for (cols, rows) in [(2u16, 2u16), (3, 2), (3, 3)] {
            let mesh = Mesh::new(cols, rows);
            for _ in 0..20 {
                let k = 2 + rng.gen_range(4) as usize;
                let terms: Vec<NodeId> = (0..k).map(|_| pick_node(&mut rng, &mesh)).collect();
                let sets: Vec<Vec<NodeId>> = terms.iter().map(|&t| vec![t]).collect();
                assert_eq!(steiner_min_sets(&mesh, &sets), steiner_min(&mesh, &terms));
                assert_eq!(mst_weight_sets(&sets), mst_weight(&terms));
            }
        }
    }

    #[test]
    fn group_steiner_matches_brute_force_over_choices() {
        let mut rng = Rng64::new(23);
        let mesh = Mesh::new(3, 3);
        for _ in 0..25 {
            let k = 2 + rng.gen_range(2) as usize; // 2..=3 groups
            let sets: Vec<Vec<NodeId>> = (0..k)
                .map(|_| {
                    let opts = 1 + rng.gen_range(2) as usize; // 1..=2 options
                    (0..opts).map(|_| pick_node(&mut rng, &mesh)).collect()
                })
                .collect();
            // Brute force: min over every per-set choice of the exact
            // point-Steiner minimum.
            let mut idx = vec![0usize; k];
            let mut brute = u64::MAX;
            loop {
                let chosen: Vec<NodeId> = idx.iter().zip(&sets).map(|(&i, s)| s[i]).collect();
                brute = brute.min(steiner_min(&mesh, &chosen));
                let mut d = 0;
                loop {
                    if d == k {
                        break;
                    }
                    idx[d] += 1;
                    if idx[d] < sets[d].len() {
                        break;
                    }
                    idx[d] = 0;
                    d += 1;
                }
                if d == k {
                    break;
                }
            }
            assert_eq!(steiner_min_sets(&mesh, &sets), brute, "sets {sets:?}");
        }
    }

    #[test]
    fn exact_relays_realise_the_steiner_minimum() {
        // Over random terminal sets in the exact regime, an MST over
        // terminals ∪ relays must weigh exactly the Steiner minimum:
        // ≥ because any spanning tree of the union connects the
        // terminals, ≤ because the optimal tree spans the union.
        let mut rng = Rng64::new(41);
        for (cols, rows) in [(2u16, 2u16), (3, 2), (3, 3), (4, 3)] {
            let mesh = Mesh::new(cols, rows);
            for _ in 0..30 {
                let k = 3 + rng.gen_range(4) as usize; // 3..=6
                let terms: Vec<NodeId> = (0..k).map(|_| pick_node(&mut rng, &mesh)).collect();
                let sets: Vec<Vec<NodeId>> = terms.iter().map(|&t| vec![t]).collect();
                let relays = steiner_relays_sets(&mesh, &sets, None);
                for &r in &relays {
                    assert!(!terms.contains(&r), "terminal {r} returned as relay");
                    assert!(r.x() < cols && r.y() < rows, "relay {r} off-mesh");
                }
                let mut union = terms.clone();
                union.extend_from_slice(&relays);
                assert_eq!(
                    mst_weight(&union),
                    steiner_min(&mesh, &terms),
                    "terms {terms:?} relays {relays:?}"
                );
            }
        }
    }

    #[test]
    fn relays_find_the_t_junction() {
        // Classic T: terminals (0,2),(2,2),(1,0). MST = 2 + 3 = 5; the
        // Steiner tree through junction (1,2) costs 1 + 1 + 2 = 4.
        let mesh = Mesh::new(3, 3);
        let terms = [NodeId::new(0, 2), NodeId::new(2, 2), NodeId::new(1, 0)];
        assert_eq!(mst_weight(&terms), 5);
        assert_eq!(steiner_min(&mesh, &terms), 4);
        let sets: Vec<Vec<NodeId>> = terms.iter().map(|&t| vec![t]).collect();
        let relays = steiner_relays_sets(&mesh, &sets, None);
        assert!(relays.contains(&NodeId::new(1, 2)), "junction missing: {relays:?}");
        let mut union = terms.to_vec();
        union.extend_from_slice(&relays);
        assert_eq!(mst_weight(&union), 4);
    }

    #[test]
    fn relays_respect_the_allowed_set() {
        // Kill the T-junction: every returned relay must come from the
        // allowed (live) set.
        let mesh = Mesh::new(3, 3);
        let dead = NodeId::new(1, 2);
        let allowed: Vec<NodeId> = mesh.nodes().filter(|&n| n != dead).collect();
        let sets: Vec<Vec<NodeId>> = [NodeId::new(0, 2), NodeId::new(2, 2), NodeId::new(1, 0)]
            .iter()
            .map(|&t| vec![t])
            .collect();
        let relays = steiner_relays_sets(&mesh, &sets, Some(&allowed));
        for &r in &relays {
            assert!(allowed.contains(&r), "relay {r} outside allowed set");
        }
        let big: Vec<Vec<NodeId>> =
            (0..8).map(|i| vec![NodeId::new(i % 3, (i * 7 + 1) % 3)]).collect();
        for &r in &steiner_relays_sets(&mesh, &big, Some(&allowed)) {
            assert!(allowed.contains(&r), "approx relay {r} outside allowed set");
        }
    }

    #[test]
    fn group_relays_never_exceed_the_group_steiner_weight() {
        let mut rng = Rng64::new(47);
        let mesh = Mesh::new(3, 3);
        for _ in 0..25 {
            let k = 3 + rng.gen_range(3) as usize; // 3..=5 groups
            let sets: Vec<Vec<NodeId>> = (0..k)
                .map(|_| {
                    let opts = 1 + rng.gen_range(2) as usize;
                    (0..opts).map(|_| pick_node(&mut rng, &mesh)).collect()
                })
                .collect();
            let relays = steiner_relays_sets(&mesh, &sets, None);
            let mut union = sets.clone();
            union.extend(relays.iter().map(|&r| vec![r]));
            assert!(
                mst_weight_sets(&union) <= steiner_min_sets(&mesh, &sets),
                "augmented set-MST exceeds group Steiner for {sets:?}"
            );
        }
    }

    #[test]
    fn approx_relays_are_deterministic_and_on_mesh() {
        let mut rng = Rng64::new(53);
        let mesh = Mesh::new(6, 6);
        for _ in 0..10 {
            let k = (EXACT_SET_LIMIT + 1) + rng.gen_range(4) as usize;
            let sets: Vec<Vec<NodeId>> = (0..k).map(|_| vec![pick_node(&mut rng, &mesh)]).collect();
            let a = steiner_relays_sets(&mesh, &sets, None);
            let b = steiner_relays_sets(&mesh, &sets, None);
            assert_eq!(a, b, "approx relays not deterministic");
            let terms: Vec<NodeId> = sets.iter().map(|s| s[0]).collect();
            for &r in &a {
                assert!(r.x() < 6 && r.y() < 6);
                assert!(!terms.contains(&r));
            }
            // 2-approx sanity: forcing the candidates into the tree never
            // costs more than twice the exact optimum.
            let mut union = terms.clone();
            union.extend_from_slice(&a);
            assert!(mst_weight(&union) <= 2 * steiner_min(&mesh, &terms).max(1));
        }
    }

    #[test]
    fn two_terminals_or_fewer_need_no_relays() {
        let mesh = Mesh::new(3, 3);
        assert!(steiner_relays_sets(&mesh, &[], None).is_empty());
        assert!(steiner_relays_sets(&mesh, &[vec![NodeId::new(0, 0)]], None).is_empty());
        let two = [vec![NodeId::new(0, 0)], vec![NodeId::new(2, 2)]];
        assert!(steiner_relays_sets(&mesh, &two, None).is_empty());
        // Duplicate sets dedupe down to ≤ 2 distinct groups.
        let dup = [vec![NodeId::new(0, 0)], vec![NodeId::new(0, 0)], vec![NodeId::new(2, 2)]];
        assert!(steiner_relays_sets(&mesh, &dup, None).is_empty());
    }

    #[test]
    fn set_kernels_bound_each_other() {
        // group Steiner ≥ set-MST/2 and ≥ max pairwise set distance.
        let mut rng = Rng64::new(31);
        let mesh = Mesh::new(3, 3);
        for _ in 0..40 {
            let k = 2 + rng.gen_range(3) as usize;
            let sets: Vec<Vec<NodeId>> = (0..k)
                .map(|_| {
                    let opts = 1 + rng.gen_range(2) as usize;
                    (0..opts).map(|_| pick_node(&mut rng, &mesh)).collect()
                })
                .collect();
            let s = steiner_min_sets(&mesh, &sets);
            assert!(s >= max_pairwise_sets(&sets));
            assert!(2 * s >= mst_weight_sets(&sets));
        }
    }
}
