//! Deterministic XY (dimension-ordered) routing over the mesh.
//!
//! The paper counts data movement in units of *links traversed*. This module
//! makes those links concrete: [`route`] returns the exact sequence of
//! directed [`Link`]s a message takes under XY routing (first travel along
//! the x dimension, then along y), which the simulator uses for per-link
//! contention accounting.

use crate::node::NodeId;
use std::fmt;

/// A directed link between two adjacent mesh nodes.
///
/// # Examples
///
/// ```
/// use dmcp_mach::{Link, NodeId};
///
/// let l = Link::new(NodeId::new(0, 0), NodeId::new(1, 0));
/// assert_eq!(l.src(), NodeId::new(0, 0));
/// assert_eq!(l.dst(), NodeId::new(1, 0));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Link {
    src: NodeId,
    dst: NodeId,
}

impl Link {
    /// Creates a directed link, returning `None` when `src` and `dst` are
    /// not adjacent on the mesh.
    ///
    /// This is the probing constructor the fault-aware detour router uses
    /// to test candidate hops without panicking.
    ///
    /// # Examples
    ///
    /// ```
    /// use dmcp_mach::{Link, NodeId};
    ///
    /// assert!(Link::try_new(NodeId::new(0, 0), NodeId::new(1, 0)).is_some());
    /// assert!(Link::try_new(NodeId::new(0, 0), NodeId::new(2, 0)).is_none());
    /// ```
    pub fn try_new(src: NodeId, dst: NodeId) -> Option<Self> {
        src.is_adjacent(dst).then_some(Self { src, dst })
    }

    /// Creates a directed link.
    ///
    /// # Panics
    ///
    /// Panics if `src` and `dst` are not adjacent on the mesh. Use
    /// [`Link::try_new`] to probe without panicking.
    pub fn new(src: NodeId, dst: NodeId) -> Self {
        match Self::try_new(src, dst) {
            Some(l) => l,
            None => panic!("link endpoints {src}->{dst} not adjacent"),
        }
    }

    /// Source endpoint.
    pub const fn src(self) -> NodeId {
        self.src
    }

    /// Destination endpoint.
    pub const fn dst(self) -> NodeId {
        self.dst
    }

    /// The same link in the opposite direction.
    pub fn reversed(self) -> Link {
        Link { src: self.dst, dst: self.src }
    }
}

impl fmt::Debug for Link {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}->{}", self.src, self.dst)
    }
}

/// The path a message takes between two nodes: the ordered list of links.
///
/// An empty path means source and destination coincide.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct RoutePath {
    links: Vec<Link>,
}

impl RoutePath {
    /// Builds a path from an explicit link sequence (used by the
    /// fault-aware detour router, whose paths are not dimension-ordered).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if consecutive links are not contiguous.
    pub fn from_links(links: Vec<Link>) -> Self {
        debug_assert!(
            links.windows(2).all(|w| w[0].dst() == w[1].src()),
            "route links must be contiguous"
        );
        Self { links }
    }

    /// The links in traversal order.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Number of links traversed (equals the Manhattan distance under XY
    /// routing, which is minimal).
    pub fn len(&self) -> u32 {
        self.links.len() as u32
    }

    /// `true` when source and destination coincide.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }
}

impl IntoIterator for RoutePath {
    type Item = Link;
    type IntoIter = std::vec::IntoIter<Link>;

    fn into_iter(self) -> Self::IntoIter {
        self.links.into_iter()
    }
}

impl<'a> IntoIterator for &'a RoutePath {
    type Item = &'a Link;
    type IntoIter = std::slice::Iter<'a, Link>;

    fn into_iter(self) -> Self::IntoIter {
        self.links.iter()
    }
}

/// Deterministic routing dimension order.
///
/// The simulator uses XY throughout; YX exists because the paper claims the
/// approach "can work with any type of on-chip network topology" — the
/// movement metric only depends on hop *counts*, which are identical for
/// any minimal dimension-ordered route.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum RouteOrder {
    /// Travel the x dimension first (the mesh default).
    #[default]
    XY,
    /// Travel the y dimension first.
    YX,
}

/// Computes a minimal dimension-ordered route with the given order.
pub fn route_with(src: NodeId, dst: NodeId, order: RouteOrder) -> RoutePath {
    match order {
        RouteOrder::XY => route(src, dst),
        RouteOrder::YX => {
            let mut links = Vec::with_capacity(src.manhattan(dst) as usize);
            let mut cur = src;
            while cur.y() != dst.y() {
                let ny = if dst.y() > cur.y() { cur.y() + 1 } else { cur.y() - 1 };
                let next = NodeId::new(cur.x(), ny);
                links.push(Link::new(cur, next));
                cur = next;
            }
            while cur.x() != dst.x() {
                let nx = if dst.x() > cur.x() { cur.x() + 1 } else { cur.x() - 1 };
                let next = NodeId::new(nx, cur.y());
                links.push(Link::new(cur, next));
                cur = next;
            }
            RoutePath { links }
        }
    }
}

/// Computes the XY route from `src` to `dst`: move along x until the columns
/// match, then along y.
///
/// The returned path always has exactly `src.manhattan(dst)` links — XY
/// routing is minimal.
///
/// # Examples
///
/// ```
/// use dmcp_mach::{routing, NodeId};
///
/// let path = routing::route(NodeId::new(0, 0), NodeId::new(2, 1));
/// assert_eq!(path.len(), 3);
/// ```
pub fn route(src: NodeId, dst: NodeId) -> RoutePath {
    let mut links = Vec::with_capacity(src.manhattan(dst) as usize);
    let mut cur = src;
    while cur.x() != dst.x() {
        let nx = if dst.x() > cur.x() { cur.x() + 1 } else { cur.x() - 1 };
        let next = NodeId::new(nx, cur.y());
        links.push(Link::new(cur, next));
        cur = next;
    }
    while cur.y() != dst.y() {
        let ny = if dst.y() > cur.y() { cur.y() + 1 } else { cur.y() - 1 };
        let next = NodeId::new(cur.x(), ny);
        links.push(Link::new(cur, next));
        cur = next;
    }
    RoutePath { links }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_is_minimal() {
        let a = NodeId::new(1, 4);
        let b = NodeId::new(5, 0);
        assert_eq!(route(a, b).len(), a.manhattan(b));
    }

    #[test]
    fn route_to_self_is_empty() {
        let n = NodeId::new(2, 2);
        let p = route(n, n);
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
    }

    #[test]
    fn route_goes_x_first() {
        let p = route(NodeId::new(0, 0), NodeId::new(2, 2));
        let first: Vec<_> = p.links().iter().take(2).map(|l| l.dst()).collect();
        assert_eq!(first, vec![NodeId::new(1, 0), NodeId::new(2, 0)]);
    }

    #[test]
    fn route_links_are_contiguous() {
        let p = route(NodeId::new(3, 1), NodeId::new(0, 4));
        let mut prev = NodeId::new(3, 1);
        for l in &p {
            assert_eq!(l.src(), prev);
            assert!(l.src().is_adjacent(l.dst()));
            prev = l.dst();
        }
        assert_eq!(prev, NodeId::new(0, 4));
    }

    #[test]
    fn reversed_link() {
        let l = Link::new(NodeId::new(1, 1), NodeId::new(1, 2));
        assert_eq!(l.reversed().src(), NodeId::new(1, 2));
        assert_eq!(l.reversed().reversed(), l);
    }

    #[test]
    #[should_panic(expected = "not adjacent")]
    fn non_adjacent_link_panics() {
        let _ = Link::new(NodeId::new(0, 0), NodeId::new(2, 0));
    }

    #[test]
    fn yx_routes_are_minimal_and_y_first() {
        let a = NodeId::new(1, 4);
        let b = NodeId::new(4, 0);
        let p = route_with(a, b, RouteOrder::YX);
        assert_eq!(p.len(), a.manhattan(b));
        assert_eq!(p.links()[0].dst(), NodeId::new(1, 3), "y moves first");
        let mut cur = a;
        for l in &p {
            assert_eq!(l.src(), cur);
            cur = l.dst();
        }
        assert_eq!(cur, b);
    }

    #[test]
    fn xy_and_yx_agree_on_hop_count() {
        for (sx, sy, dx, dy) in [(0u16, 0u16, 5u16, 5u16), (3, 1, 3, 4), (2, 2, 0, 2)] {
            let s = NodeId::new(sx, sy);
            let d = NodeId::new(dx, dy);
            assert_eq!(
                route_with(s, d, RouteOrder::XY).len(),
                route_with(s, d, RouteOrder::YX).len()
            );
        }
    }

    #[test]
    fn into_iterator_yields_all_links() {
        let p = route(NodeId::new(0, 0), NodeId::new(1, 1));
        assert_eq!(p.clone().into_iter().count(), 2);
        assert_eq!((&p).into_iter().count(), 2);
    }
}
