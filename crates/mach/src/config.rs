//! Full machine description: geometry plus timing and energy constants.

use crate::cluster::ClusterMode;
use crate::mesh::Mesh;

/// Timing constants for the analytical performance model, in cycles.
///
/// The defaults are in the ranges published for KNL-class manycores; the
/// evaluation only depends on their *relative* magnitudes (a DRAM access is
/// an order of magnitude slower than an L2 hit, which is several times slower
/// than an L1 hit, and every network hop adds latency).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencyModel {
    /// Latency of one network-link traversal (router + wire).
    pub hop: f64,
    /// L1 hit latency.
    pub l1_hit: f64,
    /// L2 bank access latency (on top of the network trip to the bank).
    pub l2_hit: f64,
    /// Fast (on-package, MCDRAM-like) memory access latency at the controller.
    pub fast_mem: f64,
    /// Slow (off-package, DDR-like) memory access latency at the controller.
    pub slow_mem: f64,
    /// Fixed cost of one point-to-point synchronization.
    pub sync: f64,
    /// Cost of one add/sub/mul/logic operation.
    pub op: f64,
    /// Cost multiplier for a division (the paper's load-balancing model
    /// charges division 10× an addition/multiplication).
    pub div_factor: f64,
    /// Extra queueing delay per unit of link utilisation, modelling
    /// contention: a link that carried `u` flits adds `contention * u`
    /// cycles to the next message crossing it.
    pub contention: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self {
            hop: 2.0,
            l1_hit: 3.0,
            l2_hit: 14.0,
            fast_mem: 120.0,
            slow_mem: 200.0,
            sync: 24.0,
            op: 1.0,
            div_factor: 10.0,
            contention: 0.35,
        }
    }
}

/// Energy constants (arbitrary units ≈ picojoules per event), CACTI/McPAT
/// style. Figure 24 of the paper reports *relative* savings, which depend on
/// event counts, not on the absolute scale of these constants.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyModel {
    /// Energy of moving one cache line across one link.
    pub link: f64,
    /// Energy of one L1 access.
    pub l1: f64,
    /// Energy of one L2 bank access.
    pub l2: f64,
    /// Energy of one fast-memory (MCDRAM) access.
    pub fast_mem: f64,
    /// Energy of one slow-memory (DDR) access.
    pub slow_mem: f64,
    /// Energy of one ALU operation.
    pub op: f64,
    /// Static/leakage energy per node per cycle of execution time.
    pub static_per_cycle: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self {
            link: 6.0,
            l1: 1.0,
            l2: 4.5,
            fast_mem: 60.0,
            slow_mem: 110.0,
            op: 0.5,
            static_per_cycle: 0.02,
        }
    }
}

/// Everything the compiler and simulator need to know about the machine.
///
/// # Examples
///
/// ```
/// use dmcp_mach::MachineConfig;
///
/// let m = MachineConfig::knl_like();
/// assert_eq!(m.mesh.node_count(), 36);
/// assert_eq!(m.cache_line, 64);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct MachineConfig {
    /// The mesh topology.
    pub mesh: Mesh,
    /// Cluster mode in effect.
    pub cluster: ClusterMode,
    /// Cache-line size in bytes.
    pub cache_line: u32,
    /// Page size in bytes.
    pub page_size: u32,
    /// Private L1 data-cache capacity per tile, in bytes.
    pub l1_bytes: u32,
    /// L1 associativity.
    pub l1_ways: u32,
    /// Shared L2 bank capacity per tile, in bytes.
    pub l2_bank_bytes: u32,
    /// L2 associativity.
    pub l2_ways: u32,
    /// Timing constants.
    pub latency: LatencyModel,
    /// Energy constants.
    pub energy: EnergyModel,
}

impl MachineConfig {
    /// A KNL-like 6×6-tile machine: 36 nodes, 64 B lines, 4 KiB pages,
    /// 32 KiB 8-way L1s and 1 MiB 16-way L2 banks, quadrant cluster mode.
    ///
    /// The caches are scaled down together with the workloads (the repo runs
    /// data sets of a few MiB rather than the paper's 0.7–3.3 GiB), keeping
    /// the cache-pressure ratios comparable.
    pub fn knl_like() -> Self {
        Self {
            mesh: Mesh::new(6, 6),
            cluster: ClusterMode::Quadrant,
            cache_line: 64,
            page_size: 4096,
            l1_bytes: 2 * 1024,
            l1_ways: 8,
            l2_bank_bytes: 64 * 1024,
            l2_ways: 16,
            latency: LatencyModel::default(),
            energy: EnergyModel::default(),
        }
    }

    /// Same machine with a different cluster mode.
    pub fn with_cluster(mut self, cluster: ClusterMode) -> Self {
        self.cluster = cluster;
        self
    }

    /// Same machine with a different mesh.
    pub fn with_mesh(mut self, mesh: Mesh) -> Self {
        self.mesh = mesh;
        self
    }

    /// Number of L1 sets.
    pub fn l1_sets(&self) -> u32 {
        (self.l1_bytes / self.cache_line / self.l1_ways).max(1)
    }

    /// Number of L2 sets per bank.
    pub fn l2_sets(&self) -> u32 {
        (self.l2_bank_bytes / self.cache_line / self.l2_ways).max(1)
    }

    /// L1 capacity in cache lines (used by the window pre-processing pass to
    /// model L1 pollution).
    pub fn l1_lines(&self) -> u32 {
        self.l1_bytes / self.cache_line
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::knl_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knl_like_geometry() {
        let m = MachineConfig::knl_like();
        assert_eq!(m.mesh.cols(), 6);
        assert_eq!(m.l1_sets() * m.l1_ways * m.cache_line, m.l1_bytes);
        assert_eq!(m.l1_lines(), 32);
    }

    #[test]
    fn builders_update_fields() {
        let m =
            MachineConfig::knl_like().with_cluster(ClusterMode::Snc4).with_mesh(Mesh::new(8, 8));
        assert_eq!(m.cluster, ClusterMode::Snc4);
        assert_eq!(m.mesh.node_count(), 64);
    }

    #[test]
    fn default_latency_orderings() {
        let l = LatencyModel::default();
        assert!(l.l1_hit < l.l2_hit);
        assert!(l.l2_hit < l.fast_mem);
        assert!(l.fast_mem < l.slow_mem);
        assert!(l.div_factor > 1.0);
    }

    #[test]
    fn default_energy_orderings() {
        let e = EnergyModel::default();
        assert!(e.l1 < e.l2);
        assert!(e.l2 < e.fast_mem);
        assert!(e.fast_mem < e.slow_mem);
    }

    #[test]
    fn config_is_default_constructible() {
        assert_eq!(MachineConfig::default(), MachineConfig::knl_like());
    }
}
