//! Mesh isometries: the rigid transforms of a rectangular mesh that
//! preserve Manhattan distance.
//!
//! The partitioner's movement metric (paper Eq. 1) is built entirely on
//! Manhattan distances between tiles, so relabelling every node through a
//! distance-preserving transform must leave every MST weight — and hence
//! every movement total — unchanged. The `dmcp-check` metamorphic sweeps
//! use these transforms to hunt for accidental coordinate dependence.
//!
//! A `cols × rows` rectangle admits four isometries (identity, the two
//! mirrors, and the 180° rotation); a square additionally admits the
//! transpose, the anti-transpose and the two 90° rotations. Non-square
//! transforms map onto a mesh with swapped dimensions, which
//! [`MeshTransform::output_mesh`] reports.
//!
//! # Examples
//!
//! ```
//! use dmcp_mach::{Mesh, MeshTransform, NodeId};
//!
//! let mesh = Mesh::new(4, 3);
//! let t = MeshTransform::MirrorX;
//! let (a, b) = (NodeId::new(0, 1), NodeId::new(3, 2));
//! assert_eq!(
//!     t.apply(mesh, a).manhattan(t.apply(mesh, b)),
//!     a.manhattan(b),
//! );
//! ```

use crate::mesh::Mesh;
use crate::node::NodeId;

/// A rigid, Manhattan-distance-preserving relabelling of mesh nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MeshTransform {
    /// `(x, y) → (x, y)`.
    Identity,
    /// `(x, y) → (cols−1−x, y)`.
    MirrorX,
    /// `(x, y) → (x, rows−1−y)`.
    MirrorY,
    /// `(x, y) → (cols−1−x, rows−1−y)`.
    Rot180,
    /// `(x, y) → (y, x)`; output mesh has swapped dimensions.
    Transpose,
    /// 90° rotation `(x, y) → (rows−1−y, x)`; output mesh has swapped
    /// dimensions.
    Rot90,
    /// 270° rotation `(x, y) → (y, cols−1−x)`; output mesh has swapped
    /// dimensions.
    Rot270,
    /// Anti-transpose `(x, y) → (rows−1−y, cols−1−x)`; output mesh has
    /// swapped dimensions.
    AntiTranspose,
}

impl MeshTransform {
    /// All eight transforms of the dihedral group of the square.
    pub const ALL: [MeshTransform; 8] = [
        MeshTransform::Identity,
        MeshTransform::MirrorX,
        MeshTransform::MirrorY,
        MeshTransform::Rot180,
        MeshTransform::Transpose,
        MeshTransform::Rot90,
        MeshTransform::Rot270,
        MeshTransform::AntiTranspose,
    ];

    /// `true` if the transform swaps the mesh's dimensions.
    pub fn swaps_dims(self) -> bool {
        matches!(
            self,
            MeshTransform::Transpose
                | MeshTransform::Rot90
                | MeshTransform::Rot270
                | MeshTransform::AntiTranspose
        )
    }

    /// The transforms applicable to `mesh`: all eight for a square, the
    /// four dimension-preserving ones for a proper rectangle.
    pub fn for_mesh(mesh: Mesh) -> Vec<MeshTransform> {
        Self::ALL.into_iter().filter(|t| mesh.cols() == mesh.rows() || !t.swaps_dims()).collect()
    }

    /// The mesh the transformed coordinates live on (`mesh` itself unless
    /// the transform swaps dimensions).
    pub fn output_mesh(self, mesh: Mesh) -> Mesh {
        if self.swaps_dims() {
            Mesh::new(mesh.rows(), mesh.cols())
        } else {
            mesh
        }
    }

    /// Applies the transform to one node of `mesh`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is off the mesh.
    pub fn apply(self, mesh: Mesh, node: NodeId) -> NodeId {
        assert!(mesh.contains(node), "transform of off-mesh node {node:?} on {mesh:?}");
        let (x, y) = (node.x(), node.y());
        let (w, h) = (mesh.cols() - 1, mesh.rows() - 1);
        match self {
            MeshTransform::Identity => NodeId::new(x, y),
            MeshTransform::MirrorX => NodeId::new(w - x, y),
            MeshTransform::MirrorY => NodeId::new(x, h - y),
            MeshTransform::Rot180 => NodeId::new(w - x, h - y),
            MeshTransform::Transpose => NodeId::new(y, x),
            MeshTransform::Rot90 => NodeId::new(h - y, x),
            MeshTransform::Rot270 => NodeId::new(y, w - x),
            MeshTransform::AntiTranspose => NodeId::new(h - y, w - x),
        }
    }
}

/// Translates `node` by `(dx, dy)`, or `None` if the result leaves the
/// mesh. Translation is the remaining family of Manhattan isometries the
/// metamorphic sweeps use (for vertex sets that fit after shifting).
pub fn translate(mesh: Mesh, node: NodeId, dx: i32, dy: i32) -> Option<NodeId> {
    let x = i32::from(node.x()) + dx;
    let y = i32::from(node.y()) + dy;
    if x < 0 || y < 0 {
        return None;
    }
    let moved = NodeId::new(u16::try_from(x).ok()?, u16::try_from(y).ok()?);
    mesh.contains(moved).then_some(moved)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transforms_are_distance_preserving_bijections() {
        for mesh in [Mesh::new(2, 2), Mesh::new(3, 2), Mesh::new(4, 3), Mesh::new(3, 3)] {
            for t in MeshTransform::for_mesh(mesh) {
                let out = t.output_mesh(mesh);
                let mut seen = std::collections::HashSet::new();
                for n in mesh.nodes() {
                    let m = t.apply(mesh, n);
                    assert!(out.contains(m), "{t:?} maps {n:?} off {out:?}");
                    assert!(seen.insert(m), "{t:?} is not injective at {n:?}");
                }
                for a in mesh.nodes() {
                    for b in mesh.nodes() {
                        assert_eq!(
                            t.apply(mesh, a).manhattan(t.apply(mesh, b)),
                            a.manhattan(b),
                            "{t:?} distorts d({a:?},{b:?}) on {mesh:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn rectangle_excludes_dim_swapping_transforms() {
        let rect = MeshTransform::for_mesh(Mesh::new(4, 3));
        assert_eq!(rect.len(), 4);
        assert!(rect.iter().all(|t| !t.swaps_dims()));
        assert_eq!(MeshTransform::for_mesh(Mesh::new(3, 3)).len(), 8);
    }

    #[test]
    fn translate_respects_bounds() {
        let mesh = Mesh::new(3, 3);
        assert_eq!(translate(mesh, NodeId::new(1, 1), 1, -1), Some(NodeId::new(2, 0)));
        assert_eq!(translate(mesh, NodeId::new(2, 2), 1, 0), None);
        assert_eq!(translate(mesh, NodeId::new(0, 0), -1, 0), None);
    }
}
