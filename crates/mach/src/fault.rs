//! Fault injection: dead nodes, failed links, lossy links, detour routing.
//!
//! Real manycore parts ship with disabled tiles and links; a scheduler that
//! only works on a perfect mesh is a toy. This module describes a degraded
//! machine ([`FaultPlan`] → validated [`FaultState`]) and provides the
//! fault-aware router [`route_avoiding`] that the partitioner and the
//! simulator share, so both plan and time against the *same* degraded
//! fabric.
//!
//! Three fault classes:
//!
//! - **dead nodes** — the tile (core, L1, L2 bank) is gone; nothing may be
//!   scheduled there and no route may pass through it;
//! - **dead links** — the link (both directions) never delivers; routes
//!   detour around it;
//! - **lossy links** — the link delivers but drops flits with a fixed
//!   probability, on a *seeded deterministic schedule*: whether traversal
//!   `k` of a link drops is a pure function of `(seed, link, k)`, so a
//!   simulation is exactly reproducible.
//!
//! Live nodes that the faults cut off from the main fabric are treated as
//! *unusable*: [`FaultState::live_nodes`] returns only the largest
//! connected component of the healthy subgraph, which is what the degraded
//! partitioner schedules on — guaranteeing every pair of scheduled nodes
//! stays routable.

use crate::mesh::Mesh;
use crate::node::NodeId;
use crate::rng::{mix, Rng64};
use crate::routing::{self, Link, RoutePath};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::fmt;

/// An undirected link key: endpoints in sorted order, so `(a,b)` and
/// `(b,a)` name the same physical wire.
fn key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Packs an undirected link into a `u64` for the drop-schedule hash.
fn link_bits(a: NodeId, b: NodeId) -> u64 {
    let (lo, hi) = key(a, b);
    (u64::from(lo.x()) << 48)
        | (u64::from(lo.y()) << 32)
        | (u64::from(hi.x()) << 16)
        | u64::from(hi.y())
}

/// A declarative description of the faults injected into a mesh.
///
/// Build one with the `kill_*`/`lossy_link` methods or sample one with
/// [`FaultPlan::random`], then validate it against a mesh with
/// [`FaultState::new`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    dead_nodes: BTreeSet<NodeId>,
    dead_links: BTreeSet<(NodeId, NodeId)>,
    lossy_links: BTreeMap<(NodeId, NodeId), f64>,
    seed: u64,
}

impl FaultPlan {
    /// A plan with no faults (the healthy mesh).
    #[must_use]
    pub fn healthy() -> Self {
        Self::default()
    }

    /// An empty plan with the given drop-schedule seed.
    #[must_use]
    pub fn with_seed(seed: u64) -> Self {
        Self { seed, ..Self::default() }
    }

    /// Marks a node dead.
    pub fn kill_node(&mut self, n: NodeId) -> &mut Self {
        self.dead_nodes.insert(n);
        self
    }

    /// Marks the (undirected) link between two adjacent nodes dead.
    pub fn kill_link(&mut self, a: NodeId, b: NodeId) -> &mut Self {
        self.dead_links.insert(key(a, b));
        self
    }

    /// Marks a link transiently lossy with per-traversal drop probability
    /// `p` (clamped to `[0, 1]`).
    pub fn lossy_link(&mut self, a: NodeId, b: NodeId, p: f64) -> &mut Self {
        self.lossy_links.insert(key(a, b), p.clamp(0.0, 1.0));
        self
    }

    /// `true` when the plan injects nothing — the healthy mesh.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.dead_nodes.is_empty() && self.dead_links.is_empty() && self.lossy_links.is_empty()
    }

    /// The dead nodes, in sorted order.
    pub fn dead_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.dead_nodes.iter().copied()
    }

    /// The dead (undirected) links, in sorted endpoint order.
    pub fn dead_links(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.dead_links.iter().copied()
    }

    /// The lossy links and their drop probabilities, in sorted endpoint
    /// order.
    pub fn lossy_links(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        self.lossy_links.iter().map(|(&(a, b), &p)| (a, b, p))
    }

    /// The drop-schedule seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Samples a random plan: `round(dead_frac · nodes)` dead nodes, each
    /// link killed with probability `link_fail`, each surviving link made
    /// lossy with probability `lossy` at drop probability `drop_prob`.
    /// Fully determined by `seed`.
    #[must_use]
    pub fn random(
        mesh: Mesh,
        dead_frac: f64,
        link_fail: f64,
        lossy: f64,
        drop_prob: f64,
        seed: u64,
    ) -> Self {
        let mut rng = Rng64::new(seed);
        let mut plan = FaultPlan::with_seed(seed);
        let mut nodes: Vec<NodeId> = mesh.nodes().collect();
        let dead = ((dead_frac.clamp(0.0, 1.0)) * nodes.len() as f64).round() as usize;
        // Never kill every node: keep at least one tile alive.
        let dead = dead.min(nodes.len().saturating_sub(1));
        rng.shuffle(&mut nodes);
        for &n in nodes.iter().take(dead) {
            plan.kill_node(n);
        }
        // Enumerate each undirected link once (right and down neighbours),
        // in row-major order so the sampled plan is order-independent.
        for a in mesh.nodes() {
            for b in [NodeId::new(a.x() + 1, a.y()), NodeId::new(a.x(), a.y() + 1)] {
                if !mesh.contains(b) {
                    continue;
                }
                if rng.gen_bool(link_fail) {
                    plan.kill_link(a, b);
                } else if rng.gen_bool(lossy) {
                    plan.lossy_link(a, b, drop_prob);
                }
            }
        }
        plan
    }
}

/// Errors validating a [`FaultPlan`] against a mesh.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultError {
    /// A dead node (or lossy/dead link endpoint) lies outside the mesh.
    OffMesh(NodeId),
    /// A dead or lossy link joins two non-adjacent nodes.
    NotALink(NodeId, NodeId),
    /// Every node is dead — nothing can run.
    NoLiveNodes,
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::OffMesh(n) => write!(f, "fault plan names node {n} outside the mesh"),
            FaultError::NotALink(a, b) => {
                write!(f, "fault plan names {a}--{b}, which is not a mesh link")
            }
            FaultError::NoLiveNodes => f.write_str("fault plan leaves no live node"),
        }
    }
}

impl std::error::Error for FaultError {}

/// Errors from the fault-aware router.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RouteError {
    /// An endpoint is a dead node.
    DeadEndpoint(NodeId),
    /// Every live path between the endpoints is severed.
    Unreachable {
        /// Route source.
        src: NodeId,
        /// Route destination.
        dst: NodeId,
    },
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::DeadEndpoint(n) => write!(f, "route endpoint {n} is a dead node"),
            RouteError::Unreachable { src, dst } => {
                write!(f, "no live route from {src} to {dst}")
            }
        }
    }
}

impl std::error::Error for RouteError {}

/// A [`FaultPlan`] validated against a concrete mesh, with the derived
/// usable-node set and the deterministic drop schedule.
#[derive(Clone, Debug)]
pub struct FaultState {
    plan: FaultPlan,
    mesh: Mesh,
    /// The largest connected component of the healthy subgraph, row-major.
    live: Vec<NodeId>,
    /// Indexed by `mesh.node_index`: usable (live *and* connected)?
    usable: Vec<bool>,
    /// Per-link traversal counters driving the drop schedule.
    traversals: HashMap<(NodeId, NodeId), u64>,
}

impl FaultState {
    /// Validates `plan` against `mesh` and derives the usable-node set.
    ///
    /// # Errors
    ///
    /// [`FaultError::OffMesh`]/[`FaultError::NotALink`] on malformed plans,
    /// [`FaultError::NoLiveNodes`] when the plan kills everything.
    pub fn new(plan: FaultPlan, mesh: Mesh) -> Result<Self, FaultError> {
        for &n in &plan.dead_nodes {
            if !mesh.contains(n) {
                return Err(FaultError::OffMesh(n));
            }
        }
        for &(a, b) in plan.dead_links.iter().chain(plan.lossy_links.keys()) {
            if !mesh.contains(a) {
                return Err(FaultError::OffMesh(a));
            }
            if !mesh.contains(b) {
                return Err(FaultError::OffMesh(b));
            }
            if !a.is_adjacent(b) {
                return Err(FaultError::NotALink(a, b));
            }
        }

        // Flood-fill the healthy subgraph to find its components; the
        // largest (ties broken toward the earliest row-major seed) becomes
        // the usable set.
        let n = mesh.node_count() as usize;
        let mut component = vec![usize::MAX; n];
        let mut sizes = Vec::new();
        for start in mesh.nodes() {
            let si = mesh.node_index(start) as usize;
            if component[si] != usize::MAX || plan.dead_nodes.contains(&start) {
                continue;
            }
            let id = sizes.len();
            let mut size = 0usize;
            let mut queue = VecDeque::from([start]);
            component[si] = id;
            while let Some(cur) = queue.pop_front() {
                size += 1;
                for nb in mesh.neighbors(cur) {
                    let ni = mesh.node_index(nb) as usize;
                    if component[ni] != usize::MAX
                        || plan.dead_nodes.contains(&nb)
                        || plan.dead_links.contains(&key(cur, nb))
                    {
                        continue;
                    }
                    component[ni] = id;
                    queue.push_back(nb);
                }
            }
            sizes.push(size);
        }
        let Some(best) = (0..sizes.len()).max_by_key(|&i| (sizes[i], std::cmp::Reverse(i))) else {
            return Err(FaultError::NoLiveNodes);
        };
        let usable: Vec<bool> = (0..n).map(|i| component[i] == best).collect();
        let live: Vec<NodeId> =
            mesh.nodes().filter(|&nd| usable[mesh.node_index(nd) as usize]).collect();
        Ok(Self { plan, mesh, live, usable, traversals: HashMap::new() })
    }

    /// The plan this state was built from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The mesh this state was validated against.
    pub fn mesh(&self) -> Mesh {
        self.mesh
    }

    /// `true` when the plan injects nothing — every fault-aware code path
    /// must then behave bit-identically to the healthy one.
    pub fn is_trivial(&self) -> bool {
        self.plan.is_empty()
    }

    /// `true` if `node` is declared dead in the plan.
    pub fn is_dead(&self, node: NodeId) -> bool {
        self.plan.dead_nodes.contains(&node)
    }

    /// `true` if `node` is usable: alive *and* in the main connected
    /// component (cut-off survivors are unusable).
    pub fn is_usable(&self, node: NodeId) -> bool {
        self.mesh.contains(node) && self.usable[self.mesh.node_index(node) as usize]
    }

    /// The usable nodes in row-major order. Never empty.
    pub fn live_nodes(&self) -> &[NodeId] {
        &self.live
    }

    /// `true` if the (undirected) link between `a` and `b` delivers at all.
    pub fn link_ok(&self, a: NodeId, b: NodeId) -> bool {
        !self.plan.dead_links.contains(&key(a, b))
    }

    /// The drop probability of a link (0 for healthy links).
    pub fn drop_prob(&self, a: NodeId, b: NodeId) -> f64 {
        self.plan.lossy_links.get(&key(a, b)).copied().unwrap_or(0.0)
    }

    /// The usable node nearest to `node` (ties toward row-major order);
    /// `node` itself when it is usable. This is the re-homing rule for
    /// pages whose home bank died.
    pub fn nearest_live(&self, node: NodeId) -> NodeId {
        if self.is_usable(node) {
            return node;
        }
        // `live` is row-major and `min_by_key` keeps the first minimum, so
        // ties break toward row-major order.
        self.live
            .iter()
            .copied()
            .min_by_key(|&l| l.manhattan(node))
            .expect("live set is never empty")
    }

    /// Decides whether the next traversal of `link` drops its flit —
    /// deterministic in `(seed, link, traversal index)`, independent of
    /// everything else the simulation does.
    pub fn should_drop(&mut self, link: Link) -> bool {
        let p = self.drop_prob(link.src(), link.dst());
        if p <= 0.0 {
            return false;
        }
        let k = key(link.src(), link.dst());
        let count = self.traversals.entry(k).or_insert(0);
        let attempt = *count;
        *count += 1;
        let h = mix(self.plan.seed ^ mix(link_bits(link.src(), link.dst())) ^ attempt);
        ((h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }
}

/// Fault-aware routing: XY when the XY route is healthy, otherwise the
/// shortest detour (BFS over live nodes and healthy links, deterministic
/// expansion order).
///
/// With a trivial (empty) fault state this *is* [`routing::route`] — same
/// path, same code, so healthy runs stay bit-identical.
///
/// Lossy links do not affect the path: they deliver (eventually), so
/// detouring around them is the simulator's retry policy's job, not the
/// router's.
///
/// # Errors
///
/// [`RouteError::DeadEndpoint`] when `src` or `dst` is dead,
/// [`RouteError::Unreachable`] when the faults sever every path.
pub fn route_avoiding(
    src: NodeId,
    dst: NodeId,
    state: &FaultState,
) -> Result<RoutePath, RouteError> {
    if state.is_trivial() {
        return Ok(routing::route(src, dst));
    }
    if state.is_dead(src) {
        return Err(RouteError::DeadEndpoint(src));
    }
    if state.is_dead(dst) {
        return Err(RouteError::DeadEndpoint(dst));
    }
    if src == dst {
        return Ok(RoutePath::default());
    }

    // Fast path: keep the XY route whenever the faults don't touch it.
    let xy = routing::route(src, dst);
    let healthy = xy
        .links()
        .iter()
        .all(|l| state.link_ok(l.src(), l.dst()) && (l.dst() == dst || !state.is_dead(l.dst())));
    if healthy {
        return Ok(xy);
    }

    // BFS for a minimal detour. Expansion order (+x, −x, +y, −y) makes the
    // chosen path deterministic.
    let mesh = state.mesh();
    let n = mesh.node_count() as usize;
    let mut prev: Vec<Option<NodeId>> = vec![None; n];
    let mut seen = vec![false; n];
    seen[mesh.node_index(src) as usize] = true;
    let mut queue = VecDeque::from([src]);
    while let Some(cur) = queue.pop_front() {
        if cur == dst {
            let mut nodes = vec![dst];
            let mut walk = dst;
            while walk != src {
                walk = prev[mesh.node_index(walk) as usize].expect("BFS predecessor");
                nodes.push(walk);
            }
            nodes.reverse();
            let links = nodes
                .windows(2)
                .map(|w| Link::try_new(w[0], w[1]).expect("BFS hops are adjacent"))
                .collect();
            return Ok(RoutePath::from_links(links));
        }
        for nb in mesh.neighbors(cur) {
            let ni = mesh.node_index(nb) as usize;
            if seen[ni] || state.is_dead(nb) || !state.link_ok(cur, nb) {
                continue;
            }
            seen[ni] = true;
            prev[ni] = Some(cur);
            queue.push_back(nb);
        }
    }
    Err(RouteError::Unreachable { src, dst })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> Mesh {
        Mesh::new(6, 6)
    }

    fn state(plan: FaultPlan) -> FaultState {
        FaultState::new(plan, mesh()).unwrap()
    }

    /// Checks the detour-path invariants: contiguous adjacent hops from
    /// `src` to `dst`, never touching a dead node or dead link.
    fn check_path(path: &RoutePath, src: NodeId, dst: NodeId, st: &FaultState) {
        let mut cur = src;
        for l in path.links() {
            assert_eq!(l.src(), cur, "path must be contiguous");
            assert!(l.src().is_adjacent(l.dst()), "every hop must be adjacent");
            assert!(st.link_ok(l.src(), l.dst()), "path uses dead link {l:?}");
            assert!(!st.is_dead(l.dst()), "path enters dead node {}", l.dst());
            cur = l.dst();
        }
        assert_eq!(cur, dst, "path must reach dst");
    }

    #[test]
    fn trivial_state_routes_exactly_like_xy() {
        let st = state(FaultPlan::healthy());
        for (a, b) in [((0, 0), (5, 5)), ((3, 1), (0, 4)), ((2, 2), (2, 2))] {
            let s = NodeId::new(a.0, a.1);
            let d = NodeId::new(b.0, b.1);
            assert_eq!(route_avoiding(s, d, &st).unwrap(), routing::route(s, d));
        }
    }

    #[test]
    fn detours_around_a_dead_link() {
        let mut plan = FaultPlan::healthy();
        plan.kill_link(NodeId::new(1, 0), NodeId::new(2, 0));
        let st = state(plan);
        let (s, d) = (NodeId::new(0, 0), NodeId::new(5, 0));
        let path = route_avoiding(s, d, &st).unwrap();
        check_path(&path, s, d, &st);
        // Minimal detour: 2 extra hops around the severed wire.
        assert_eq!(path.len(), s.manhattan(d) + 2);
    }

    #[test]
    fn detours_around_a_dead_node() {
        let mut plan = FaultPlan::healthy();
        plan.kill_node(NodeId::new(3, 0));
        let st = state(plan);
        let (s, d) = (NodeId::new(0, 0), NodeId::new(5, 0));
        let path = route_avoiding(s, d, &st).unwrap();
        check_path(&path, s, d, &st);
        assert_eq!(path.len(), s.manhattan(d) + 2);
    }

    #[test]
    fn healthy_xy_kept_even_with_faults_elsewhere() {
        let mut plan = FaultPlan::healthy();
        plan.kill_node(NodeId::new(5, 5));
        let st = state(plan);
        let (s, d) = (NodeId::new(0, 0), NodeId::new(3, 0));
        assert_eq!(route_avoiding(s, d, &st).unwrap(), routing::route(s, d));
    }

    #[test]
    fn dead_endpoint_is_an_error() {
        let mut plan = FaultPlan::healthy();
        plan.kill_node(NodeId::new(2, 2));
        let st = state(plan);
        let err = route_avoiding(NodeId::new(2, 2), NodeId::new(0, 0), &st).unwrap_err();
        assert_eq!(err, RouteError::DeadEndpoint(NodeId::new(2, 2)));
        let err = route_avoiding(NodeId::new(0, 0), NodeId::new(2, 2), &st).unwrap_err();
        assert_eq!(err, RouteError::DeadEndpoint(NodeId::new(2, 2)));
    }

    #[test]
    fn severed_destination_is_unreachable() {
        // Cut all four links around (0,0) without killing it.
        let mut plan = FaultPlan::healthy();
        plan.kill_link(NodeId::new(0, 0), NodeId::new(1, 0));
        plan.kill_link(NodeId::new(0, 0), NodeId::new(0, 1));
        let st = state(plan);
        let err = route_avoiding(NodeId::new(5, 5), NodeId::new(0, 0), &st).unwrap_err();
        assert!(matches!(err, RouteError::Unreachable { .. }));
        // And the isolated node is not usable.
        assert!(!st.is_usable(NodeId::new(0, 0)));
        assert_eq!(st.live_nodes().len(), 35);
    }

    #[test]
    fn lossy_links_do_not_change_the_route() {
        let mut plan = FaultPlan::with_seed(1);
        plan.lossy_link(NodeId::new(1, 0), NodeId::new(2, 0), 0.9);
        let st = state(plan);
        let (s, d) = (NodeId::new(0, 0), NodeId::new(5, 0));
        assert_eq!(route_avoiding(s, d, &st).unwrap(), routing::route(s, d));
    }

    #[test]
    fn drop_schedule_is_deterministic_and_tracks_probability() {
        let mk = || {
            let mut plan = FaultPlan::with_seed(99);
            plan.lossy_link(NodeId::new(0, 0), NodeId::new(1, 0), 0.3);
            state(plan)
        };
        let link = Link::new(NodeId::new(0, 0), NodeId::new(1, 0));
        let mut a = mk();
        let mut b = mk();
        let da: Vec<bool> = (0..2000).map(|_| a.should_drop(link)).collect();
        let db: Vec<bool> = (0..2000).map(|_| b.should_drop(link)).collect();
        assert_eq!(da, db, "drop schedule must be deterministic");
        let drops = da.iter().filter(|&&d| d).count();
        assert!((400..800).contains(&drops), "got {drops}/2000 at p=0.3");
        // Both directions of the wire share the schedule counter.
        let mut c = mk();
        assert_eq!(c.should_drop(link), da[0]);
        assert_eq!(c.should_drop(link.reversed()), da[1]);
    }

    #[test]
    fn healthy_links_never_drop() {
        let mut st = state(FaultPlan::with_seed(7));
        let link = Link::new(NodeId::new(0, 0), NodeId::new(1, 0));
        assert!((0..100).all(|_| !st.should_drop(link)));
    }

    #[test]
    fn nearest_live_rehoming() {
        let mut plan = FaultPlan::healthy();
        plan.kill_node(NodeId::new(0, 0));
        let st = state(plan);
        // Ties between (1,0) and (0,1) break toward row-major order.
        assert_eq!(st.nearest_live(NodeId::new(0, 0)), NodeId::new(1, 0));
        assert_eq!(st.nearest_live(NodeId::new(3, 3)), NodeId::new(3, 3));
    }

    #[test]
    fn validation_rejects_malformed_plans() {
        let mut off = FaultPlan::healthy();
        off.kill_node(NodeId::new(9, 9));
        assert_eq!(
            FaultState::new(off, mesh()).unwrap_err(),
            FaultError::OffMesh(NodeId::new(9, 9))
        );
        let mut notlink = FaultPlan::healthy();
        notlink.kill_link(NodeId::new(0, 0), NodeId::new(2, 0));
        assert!(matches!(FaultState::new(notlink, mesh()).unwrap_err(), FaultError::NotALink(..)));
        let mut all = FaultPlan::healthy();
        for n in mesh().nodes() {
            all.kill_node(n);
        }
        assert_eq!(FaultState::new(all, mesh()).unwrap_err(), FaultError::NoLiveNodes);
    }

    #[test]
    fn random_plans_are_deterministic_and_sized() {
        let a = FaultPlan::random(mesh(), 0.10, 0.05, 0.1, 0.2, 12);
        let b = FaultPlan::random(mesh(), 0.10, 0.05, 0.1, 0.2, 12);
        assert_eq!(a, b);
        assert_eq!(a.dead_nodes().count(), 4, "10% of 36 nodes rounds to 4");
        let c = FaultPlan::random(mesh(), 0.10, 0.05, 0.1, 0.2, 13);
        assert_ne!(a, c, "different seeds should differ");
        // dead_frac 0 with zero link probabilities is the healthy plan.
        assert!(FaultPlan::random(mesh(), 0.0, 0.0, 0.0, 0.0, 5).is_empty());
    }

    #[test]
    fn usable_pairs_always_route() {
        let plan = FaultPlan::random(mesh(), 0.2, 0.1, 0.0, 0.0, 3);
        let st = state(plan);
        let live = st.live_nodes().to_vec();
        for &a in &live {
            for &b in &live {
                let path = route_avoiding(a, b, &st).unwrap();
                check_path(&path, a, b, &st);
            }
        }
    }
}
