//! Tile coordinates and the Manhattan-distance metric.

use std::fmt;

/// The coordinate of one tile (node) on the 2D mesh.
///
/// The paper labels each node with `(x, y)`; `x` is the column and `y` the
/// row. The *data movement distance* between two nodes is their Manhattan
/// distance, i.e. the minimum number of network links a message between them
/// must traverse:
///
/// `MD(n_{i,j}, n_{x,y}) = |i − x| + |j − y|`
///
/// # Examples
///
/// ```
/// use dmcp_mach::NodeId;
///
/// let home = NodeId::new(1, 2);
/// let requester = NodeId::new(4, 0);
/// assert_eq!(home.manhattan(requester), 5);
/// assert_eq!(home.manhattan(home), 0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId {
    x: u16,
    y: u16,
}

impl NodeId {
    /// Creates a node label from a column (`x`) and row (`y`).
    pub const fn new(x: u16, y: u16) -> Self {
        Self { x, y }
    }

    /// Column of the node on the mesh.
    pub const fn x(self) -> u16 {
        self.x
    }

    /// Row of the node on the mesh.
    pub const fn y(self) -> u16 {
        self.y
    }

    /// Manhattan distance to `other`: the minimum number of links that need
    /// to be traversed between the two tiles (Section 2 of the paper).
    pub fn manhattan(self, other: NodeId) -> u32 {
        let dx = self.x.abs_diff(other.x) as u32;
        let dy = self.y.abs_diff(other.y) as u32;
        dx + dy
    }

    /// `true` if the two nodes are joined by a single mesh link.
    pub fn is_adjacent(self, other: NodeId) -> bool {
        self.manhattan(other) == 1
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n({},{})", self.x, self.y)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

impl From<(u16, u16)> for NodeId {
    fn from((x, y): (u16, u16)) -> Self {
        NodeId::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_is_zero_on_self() {
        let n = NodeId::new(3, 4);
        assert_eq!(n.manhattan(n), 0);
    }

    #[test]
    fn manhattan_is_symmetric() {
        let a = NodeId::new(0, 5);
        let b = NodeId::new(7, 1);
        assert_eq!(a.manhattan(b), b.manhattan(a));
        assert_eq!(a.manhattan(b), 11);
    }

    #[test]
    fn manhattan_triangle_inequality() {
        let a = NodeId::new(0, 0);
        let b = NodeId::new(3, 3);
        let c = NodeId::new(5, 1);
        assert!(a.manhattan(c) <= a.manhattan(b) + b.manhattan(c));
    }

    #[test]
    fn adjacency() {
        let a = NodeId::new(2, 2);
        assert!(a.is_adjacent(NodeId::new(2, 3)));
        assert!(a.is_adjacent(NodeId::new(1, 2)));
        assert!(!a.is_adjacent(NodeId::new(3, 3)));
        assert!(!a.is_adjacent(a));
    }

    #[test]
    fn display_and_debug_are_nonempty() {
        let n = NodeId::new(1, 2);
        assert_eq!(n.to_string(), "(1,2)");
        assert_eq!(format!("{n:?}"), "n(1,2)");
    }

    #[test]
    fn from_tuple() {
        let n: NodeId = (4, 7).into();
        assert_eq!((n.x(), n.y()), (4, 7));
    }

    #[test]
    fn ordering_is_row_major_on_x_then_y() {
        // Derived Ord sorts by x first; we only rely on it being total.
        let mut v = [NodeId::new(1, 0), NodeId::new(0, 9), NodeId::new(0, 1)];
        v.sort();
        assert_eq!(v[0], NodeId::new(0, 1));
        assert_eq!(v[2], NodeId::new(1, 0));
    }
}
