//! Machine model for an on-chip-network based manycore (the paper's Figure 1).
//!
//! This crate models the *spatial* structure of the target platform used by
//! "Data Movement Aware Computation Partitioning" (MICRO'17): an `M × N`
//! 2D-mesh of tiles, where each tile holds a core, a private L1 cache and one
//! bank of the shared (SNUCA) L2, with memory controllers attached to the
//! corner tiles. It provides:
//!
//! - [`NodeId`] — a tile coordinate, with the Manhattan-distance metric the
//!   paper uses for "data movement distance";
//! - [`Mesh`] — the topology: enumeration, bank-index ↔ coordinate mapping,
//!   memory-controller placement, quadrant decomposition;
//! - [`routing`] — deterministic XY routing and the [`routing::Link`]s a
//!   message traverses (the unit in which the paper counts data movement);
//! - [`ClusterMode`] — the KNL cluster-mode policies (all-to-all, quadrant,
//!   SNC-4) that constrain which memory controller services a miss;
//! - [`MachineConfig`] — the full description of a machine instance
//!   (dimensions, cache geometry, latency and energy constants);
//! - [`fault`] — fault injection (dead nodes, dead links, lossy links) and
//!   the fault-aware detour router [`route_avoiding`];
//! - [`rng`] — the small deterministic PRNG behind workload generation and
//!   the fault model's drop schedule;
//! - [`symmetry`] — the Manhattan-distance-preserving mesh relabellings the
//!   metamorphic test sweeps are built on;
//! - [`graph`] — exact MST/Steiner kernels over the mesh metric (shared by
//!   the `dmcp-check` oracle and the `dmcp-bound` lower bounds);
//! - [`fingerprint`] — stable machine/fault fingerprints for the serving
//!   layer's plan cache.
//!
//! # Examples
//!
//! ```
//! use dmcp_mach::{Mesh, NodeId};
//!
//! let mesh = Mesh::new(6, 6);
//! let a = NodeId::new(0, 0);
//! let b = NodeId::new(3, 2);
//! assert_eq!(a.manhattan(b), 5);
//! assert_eq!(mesh.nodes().count(), 36);
//! ```

pub mod cluster;
pub mod config;
pub mod fault;
pub mod fingerprint;
pub mod graph;
pub mod mesh;
pub mod node;
pub mod rng;
pub mod routing;
pub mod symmetry;

pub use cluster::ClusterMode;
pub use config::{EnergyModel, LatencyModel, MachineConfig};
pub use fault::{route_avoiding, FaultError, FaultPlan, FaultState, RouteError};
pub use fingerprint::Fingerprint;
pub use mesh::{Mesh, Quadrant};
pub use node::NodeId;
pub use routing::{Link, RouteOrder, RoutePath};
pub use symmetry::MeshTransform;
