//! Stable fingerprints of machine descriptions and fault plans.
//!
//! The serving layer keys cached partition plans on everything that can
//! change the planner's output. On the machine side that is the full
//! [`MachineConfig`] — geometry, cluster mode, cache shape, latency and
//! energy constants — and, in degraded mode, the [`FaultPlan`]. Both get a
//! platform-stable fingerprint here, built on the same splitmix64 mixer the
//! rest of the crate uses for seeded determinism (`std::hash::Hash` is not
//! stable across toolchains, so it is unusable as a cache key).

use crate::cluster::ClusterMode;
use crate::config::MachineConfig;
use crate::fault::FaultPlan;
use crate::mesh::Mesh;
use crate::node::NodeId;
use crate::rng::mix;

/// A small fingerprint accumulator: every folded word is avalanche-mixed
/// into the state, so field order matters and single-bit changes diffuse.
#[derive(Clone, Copy, Debug)]
pub struct Fingerprint {
    state: u64,
}

impl Fingerprint {
    /// A fresh accumulator, domain-separated by `tag` so different kinds of
    /// object cannot collide by folding the same words.
    #[must_use]
    pub fn new(tag: u64) -> Self {
        Self { state: mix(tag) }
    }

    /// Folds one word.
    pub fn fold(&mut self, v: u64) -> &mut Self {
        self.state = mix(self.state ^ mix(v));
        self
    }

    /// Folds an `f64` through its bit pattern.
    pub fn fold_f64(&mut self, v: f64) -> &mut Self {
        self.fold(v.to_bits())
    }

    /// Folds a node coordinate.
    pub fn fold_node(&mut self, n: NodeId) -> &mut Self {
        self.fold((u64::from(n.x()) << 16) | u64::from(n.y()))
    }

    /// The accumulated fingerprint.
    #[must_use]
    pub fn finish(&self) -> u64 {
        mix(self.state)
    }
}

impl Mesh {
    /// Stable fingerprint of the topology.
    #[must_use]
    pub fn fingerprint(self) -> u64 {
        let mut f = Fingerprint::new(0x4d45_5348); // "MESH"
        f.fold(u64::from(self.cols())).fold(u64::from(self.rows()));
        f.finish()
    }
}

impl MachineConfig {
    /// Stable fingerprint of the full machine description. Two configs
    /// fingerprint equal iff a partitioner would behave identically on them.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut f = Fingerprint::new(0x4d41_4348); // "MACH"
        f.fold(self.mesh.fingerprint());
        f.fold(match self.cluster {
            ClusterMode::AllToAll => 0,
            ClusterMode::Quadrant => 1,
            ClusterMode::Snc4 => 2,
        });
        f.fold(u64::from(self.cache_line))
            .fold(u64::from(self.page_size))
            .fold(u64::from(self.l1_bytes))
            .fold(u64::from(self.l1_ways))
            .fold(u64::from(self.l2_bank_bytes))
            .fold(u64::from(self.l2_ways));
        let l = &self.latency;
        for v in [
            l.hop,
            l.l1_hit,
            l.l2_hit,
            l.fast_mem,
            l.slow_mem,
            l.sync,
            l.op,
            l.div_factor,
            l.contention,
        ] {
            f.fold_f64(v);
        }
        let e = &self.energy;
        for v in [e.link, e.l1, e.l2, e.fast_mem, e.slow_mem, e.op, e.static_per_cycle] {
            f.fold_f64(v);
        }
        f.finish()
    }
}

impl FaultPlan {
    /// Stable fingerprint of the injected faults. The healthy plan has a
    /// well-defined fingerprint of its own, so "no faults" and "some
    /// faults" never share a cache key.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut f = Fingerprint::new(0x4641_554c); // "FAUL"
        f.fold(self.seed());
        let dead: Vec<NodeId> = self.dead_nodes().collect();
        f.fold(dead.len() as u64);
        for n in dead {
            f.fold_node(n);
        }
        let links: Vec<(NodeId, NodeId)> = self.dead_links().collect();
        f.fold(links.len() as u64);
        for (a, b) in links {
            f.fold_node(a).fold_node(b);
        }
        let lossy: Vec<(NodeId, NodeId, f64)> = self.lossy_links().collect();
        f.fold(lossy.len() as u64);
        for (a, b, p) in lossy {
            f.fold_node(a).fold_node(b).fold_f64(p);
        }
        f.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_fingerprint_is_stable_and_sensitive() {
        let a = MachineConfig::knl_like();
        let b = MachineConfig::knl_like();
        assert_eq!(a.fingerprint(), b.fingerprint());

        let mesh = a.clone().with_mesh(Mesh::new(8, 8));
        assert_ne!(a.fingerprint(), mesh.fingerprint());

        let cluster = a.clone().with_cluster(ClusterMode::Snc4);
        assert_ne!(a.fingerprint(), cluster.fingerprint());

        let mut latency = a.clone();
        latency.latency.hop += 1.0;
        assert_ne!(a.fingerprint(), latency.fingerprint());

        let mut l2 = a.clone();
        l2.l2_bank_bytes *= 2;
        assert_ne!(a.fingerprint(), l2.fingerprint());
    }

    #[test]
    fn fault_fingerprint_distinguishes_plans() {
        let healthy = FaultPlan::healthy();
        assert_eq!(healthy.fingerprint(), FaultPlan::healthy().fingerprint());

        let mut one = FaultPlan::healthy();
        one.kill_node(NodeId::new(1, 2));
        assert_ne!(healthy.fingerprint(), one.fingerprint());

        let mut link = FaultPlan::healthy();
        link.kill_link(NodeId::new(1, 2), NodeId::new(1, 3));
        assert_ne!(one.fingerprint(), link.fingerprint());
        assert_ne!(healthy.fingerprint(), link.fingerprint());

        // Undirected links fingerprint the same in either endpoint order.
        let mut rev = FaultPlan::healthy();
        rev.kill_link(NodeId::new(1, 3), NodeId::new(1, 2));
        assert_eq!(link.fingerprint(), rev.fingerprint());

        let mut lossy = FaultPlan::healthy();
        lossy.lossy_link(NodeId::new(1, 2), NodeId::new(1, 3), 0.1);
        assert_ne!(link.fingerprint(), lossy.fingerprint());

        // The drop-schedule seed is part of the degraded behaviour.
        assert_ne!(healthy.fingerprint(), FaultPlan::with_seed(9).fingerprint());
    }

    #[test]
    fn mesh_fingerprint_is_not_symmetric_in_dims() {
        assert_ne!(Mesh::new(4, 6).fingerprint(), Mesh::new(6, 4).fingerprint());
    }
}
