//! KNL-style cluster modes (Section 6.1 of the paper).
//!
//! The cluster mode decides *which memory controller* services an L2 miss,
//! i.e. it encodes the "address affinity" between the requesting tile, the
//! tag directory and the memory:
//!
//! - **All-to-all** — addresses are uniformly hashed over all memory; a miss
//!   may be serviced by any controller, however far away.
//! - **Quadrant** — the directory and the target memory are in the same mesh
//!   section, so the miss path stays within the home bank's quadrant.
//! - **SNC-4** — requester, directory and memory are all in the same
//!   quadrant.

use crate::mesh::Mesh;
use crate::node::NodeId;
use std::fmt;

/// The three clustered operation modes of the target manycore.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum ClusterMode {
    /// Uniform hashing of addresses across all controllers.
    AllToAll,
    /// Directory and memory co-located in the same mesh section. This is the
    /// machine's default mode, and the default here too.
    #[default]
    Quadrant,
    /// Requester, directory and memory all in one quadrant (sub-NUMA).
    Snc4,
}

impl ClusterMode {
    /// All modes, in the order the paper's Figure 22 labels them
    /// (A: all-to-all, B: quadrant, C: SNC-4).
    pub const ALL: [ClusterMode; 3] =
        [ClusterMode::AllToAll, ClusterMode::Quadrant, ClusterMode::Snc4];

    /// Single-letter label used by the paper's Figure 22.
    pub fn letter(self) -> char {
        match self {
            ClusterMode::AllToAll => 'A',
            ClusterMode::Quadrant => 'B',
            ClusterMode::Snc4 => 'C',
        }
    }

    /// Picks the memory controller that services a miss.
    ///
    /// `requester` is the tile whose L1/L2 access missed, `home` is the node
    /// holding the home L2 bank of the missing line, and `channel` is the
    /// channel id hashed from the physical address.
    ///
    /// - All-to-all: the channel hash alone decides — any controller.
    /// - Quadrant: the controller in the *home bank's* quadrant.
    /// - SNC-4: the controller in the *requester's* quadrant.
    pub fn controller(self, mesh: Mesh, requester: NodeId, home: NodeId, channel: u32) -> NodeId {
        match self {
            ClusterMode::AllToAll => mesh.controller_for_channel(channel),
            ClusterMode::Quadrant => mesh.controller_in_quadrant(mesh.quadrant_of(home)),
            ClusterMode::Snc4 => mesh.controller_in_quadrant(mesh.quadrant_of(requester)),
        }
    }

    /// Picks the home L2 bank node for a line, given its globally hashed bank
    /// index.
    ///
    /// Under SNC-4 the shared L2 is effectively partitioned: a line requested
    /// by `requester` homes within the requester's quadrant (the global bank
    /// index is re-hashed into that quadrant). The other modes use the global
    /// SNUCA bank placement.
    pub fn home_bank(self, mesh: Mesh, requester: NodeId, global_bank: u32) -> NodeId {
        match self {
            ClusterMode::AllToAll | ClusterMode::Quadrant => mesh.bank_node(global_bank),
            ClusterMode::Snc4 => {
                let q = mesh.quadrant_of(requester);
                let nodes = mesh.nodes_in_quadrant(q);
                nodes[(global_bank as usize) % nodes.len()]
            }
        }
    }
}

impl fmt::Display for ClusterMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ClusterMode::AllToAll => "all-to-all",
            ClusterMode::Quadrant => "quadrant",
            ClusterMode::Snc4 => "SNC-4",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> Mesh {
        Mesh::new(6, 6)
    }

    #[test]
    fn quadrant_mode_keeps_controller_near_home() {
        let m = mesh();
        let home = NodeId::new(4, 1); // NE quadrant
        let mc = ClusterMode::Quadrant.controller(m, NodeId::new(0, 5), home, 2);
        assert_eq!(m.quadrant_of(mc), m.quadrant_of(home));
    }

    #[test]
    fn snc4_keeps_controller_near_requester() {
        let m = mesh();
        let req = NodeId::new(1, 4); // SW quadrant
        let mc = ClusterMode::Snc4.controller(m, req, NodeId::new(5, 0), 3);
        assert_eq!(m.quadrant_of(mc), m.quadrant_of(req));
    }

    #[test]
    fn all_to_all_uses_channel_hash() {
        let m = mesh();
        let req = NodeId::new(0, 0);
        let home = NodeId::new(0, 0);
        let mcs: Vec<_> =
            (0..4).map(|c| ClusterMode::AllToAll.controller(m, req, home, c)).collect();
        // All four controllers are reachable regardless of requester/home.
        assert_eq!(mcs.len(), 4);
        assert!(mcs.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn snc4_homes_banks_in_requester_quadrant() {
        let m = mesh();
        let req = NodeId::new(5, 5);
        for bank in 0..64 {
            let home = ClusterMode::Snc4.home_bank(m, req, bank);
            assert_eq!(m.quadrant_of(home), m.quadrant_of(req));
        }
    }

    #[test]
    fn global_modes_use_snuca_bank() {
        let m = mesh();
        for bank in 0..36 {
            assert_eq!(
                ClusterMode::Quadrant.home_bank(m, NodeId::new(0, 0), bank),
                m.bank_node(bank)
            );
            assert_eq!(
                ClusterMode::AllToAll.home_bank(m, NodeId::new(3, 3), bank),
                m.bank_node(bank)
            );
        }
    }

    #[test]
    fn letters_match_figure_22() {
        assert_eq!(ClusterMode::AllToAll.letter(), 'A');
        assert_eq!(ClusterMode::Quadrant.letter(), 'B');
        assert_eq!(ClusterMode::Snc4.letter(), 'C');
    }

    #[test]
    fn default_is_quadrant() {
        assert_eq!(ClusterMode::default(), ClusterMode::Quadrant);
    }
}
