//! The staged planning pipeline: explicit passes over a [`PlanCtx`].
//!
//! The partitioner's work factors into six stages that run strictly in
//! order, each a stateless [`Pass`] over the shared context:
//!
//! 1. [`AnalyzePass`] — per nest, resolve the iteration→core assignment
//!    (explicit config, or chunked over the live nodes) and decide the
//!    window size *source* (forced 1 for baselines, `fixed_window`,
//!    caller hint, or "search me");
//! 2. [`WindowSearchPass`] — the paper's pre-processing step: plan a
//!    sample at every window size 1‥`max_window` for each undecided nest
//!    and keep the size minimising warm movement (ties prefer smaller);
//! 3. [`SteinerPass`](crate::steiner::SteinerPass) — optional Steiner
//!    relay placement (DESIGN.md §16): place each nest with and without
//!    relay augmentation and keep the relayed plan only when its
//!    predicted post-split movement is strictly lower;
//! 4. [`PlacePass`] — full placement of every nest the Steiner pass did
//!    not already place ([`crate::window::place_nest`]);
//! 5. [`SplitPass`] — the nest-level split-vs-default decision: nests
//!    whose warm planned movement does not clearly beat default
//!    execution are re-placed at iteration granularity;
//! 6. [`SyncPass`] — dependence wiring and per-window transitive
//!    reduction ([`crate::window::sync_nest`]).
//!
//! Every parallel dimension (search trials, per-nest placement, replans,
//! per-nest sync) fans out over the context's [`Pool`] with ordered
//! joins, and nothing ever depends on thread identity, so the pipeline
//! is bit-identical across thread counts — `Pool::single()` and
//! `Pool::new(8)` produce the same golden digests.

use crate::layout::Layout;
use crate::partitioner::{
    nest_assignment, NestPartition, PartitionConfig, PartitionOutput, Partitioner,
};
use crate::split::PlanOptions;
use crate::steiner::SteinerPass;
use crate::window::{place_nest, sync_nest, NestPlan};
use dmcp_ir::program::{DataStore, Program};
use dmcp_mach::{MachineConfig, NodeId};
use dmcp_pool::Pool;

/// Per-nest planning state threaded through the passes.
#[derive(Clone, Debug)]
pub struct NestCtx {
    /// Index of the nest within the program.
    pub nest: usize,
    /// Iteration→core assignment (one entry per iteration, cycled).
    pub assignment: Vec<NodeId>,
    /// Chosen window size; `None` until the search pass decides.
    pub window: Option<usize>,
    /// The placed (and eventually synced) plan.
    pub plan: Option<NestPlan>,
}

/// Shared state of one pipeline run: the immutable planning inputs plus
/// the evolving per-nest contexts.
pub struct PlanCtx<'a> {
    /// The program being partitioned.
    pub program: &'a Program,
    /// Data for indirection resolution.
    pub data: &'a DataStore,
    /// The machine configuration.
    pub machine: &'a MachineConfig,
    /// The (possibly fault-degraded) memory layout.
    pub layout: &'a Layout,
    /// The partitioner configuration.
    pub config: &'a PartitionConfig,
    /// The pool every pass fans out over.
    pub pool: &'a Pool,
    /// Generate the default (iteration-granularity) schedule throughout.
    pub force_default: bool,
    /// Caller-provided per-nest window hints (missing entries → search).
    pub window_hints: &'a [usize],
    /// Per-nest state, in program order (filled by [`AnalyzePass`]).
    pub nests: Vec<NestCtx>,
}

impl<'a> PlanCtx<'a> {
    /// Builds the context for one run of `partitioner` over `program`.
    #[must_use]
    pub fn new(
        partitioner: &'a Partitioner,
        program: &'a Program,
        data: &'a DataStore,
        pool: &'a Pool,
        force_default: bool,
        window_hints: &'a [usize],
    ) -> Self {
        Self {
            program,
            data,
            machine: partitioner.machine(),
            layout: partitioner.layout(),
            config: partitioner.config(),
            pool,
            force_default,
            window_hints,
            nests: Vec::new(),
        }
    }

    /// Places `nest` (by position in [`PlanCtx::nests`]) at window `w`,
    /// with a fresh predictor — the shared planning kernel of the search,
    /// place and split passes. Always plans MST-only (`steiner: false`):
    /// relay augmentation is the Steiner pass's job, which compares both
    /// modes explicitly via [`PlanCtx::place_opts`].
    fn place(&self, pos: usize, w: usize, limit: Option<u64>, force_default: bool) -> NestPlan {
        let opts = PlanOptions { steiner: false, ..self.config.opts };
        self.place_opts(pos, w, limit, force_default, opts)
    }

    /// [`PlanCtx::place`] with explicit planner options (the Steiner pass
    /// places each nest under both `steiner` settings).
    pub(crate) fn place_opts(
        &self,
        pos: usize,
        w: usize,
        limit: Option<u64>,
        force_default: bool,
        opts: PlanOptions,
    ) -> NestPlan {
        let nc = &self.nests[pos];
        place_nest(
            self.program,
            nc.nest,
            self.layout,
            self.data,
            self.config.predictor.build(self.machine),
            opts,
            w,
            &nc.assignment,
            limit,
            force_default,
        )
    }

    /// Consumes the context into the partitioner's output.
    ///
    /// # Panics
    ///
    /// Panics if a nest was never planned (a pass was skipped).
    #[must_use]
    pub fn into_output(self) -> PartitionOutput {
        PartitionOutput::new(
            self.nests
                .into_iter()
                .map(|nc| {
                    let NestPlan { schedule, stats } =
                        nc.plan.expect("pipeline did not plan every nest");
                    NestPartition { nest: nc.nest, schedule, stats }
                })
                .collect(),
        )
    }
}

/// One stateless stage of the planning pipeline.
pub trait Pass: Sync {
    /// The pass's name, for tracing and test assertions.
    fn name(&self) -> &'static str;
    /// Runs the pass over the shared context.
    fn run(&self, ctx: &mut PlanCtx);
}

/// The standard pass sequence, in execution order.
#[must_use]
pub fn passes() -> [&'static dyn Pass; 6] {
    [&AnalyzePass, &WindowSearchPass, &SteinerPass, &PlacePass, &SplitPass, &SyncPass]
}

/// Pass 1: resolve assignments and window-size sources per nest.
pub struct AnalyzePass;

impl Pass for AnalyzePass {
    fn name(&self) -> &'static str {
        "analyze"
    }

    fn run(&self, ctx: &mut PlanCtx) {
        ctx.nests = (0..ctx.program.nests().len())
            .map(|n| {
                let iters = ctx.program.nests()[n].iteration_count();
                let assignment = nest_assignment(ctx.config, ctx.layout, ctx.machine.mesh, iters);
                let window = if ctx.force_default {
                    Some(1)
                } else if let Some(w) = ctx.config.fixed_window {
                    Some(w)
                } else {
                    ctx.window_hints.get(n).copied()
                };
                NestCtx { nest: n, assignment, window, plan: None }
            })
            .collect();
    }
}

/// Pass 2: the window-size search (paper Section 4.4 pre-processing).
///
/// All `(nest, w)` sample trials fan out over the pool at once; the
/// per-nest minimum is then taken on the caller in ascending window
/// order (strict `<`, so ties keep the smaller window — identical to
/// the old sequential loop). Trials skip sync wiring entirely: warm
/// movement is a pure function of the placement records.
pub struct WindowSearchPass;

impl Pass for WindowSearchPass {
    fn name(&self) -> &'static str {
        "window-search"
    }

    fn run(&self, ctx: &mut PlanCtx) {
        let max_window = ctx.config.max_window.max(1);
        let searched: Vec<usize> =
            (0..ctx.nests.len()).filter(|&pos| ctx.nests[pos].window.is_none()).collect();
        if searched.is_empty() {
            return;
        }
        let trials: Vec<(usize, usize)> =
            searched.iter().flat_map(|&pos| (1..=max_window).map(move |w| (pos, w))).collect();
        let movements: Vec<u64> = {
            let c: &PlanCtx = ctx;
            c.pool.map(&trials, |_, &(pos, w)| {
                c.place(pos, w, Some(c.config.search_sample), false).stats.warm_movement().0
            })
        };
        for (si, &pos) in searched.iter().enumerate() {
            let mut best = (u64::MAX, 1usize);
            for w in 1..=max_window {
                let movement = movements[si * max_window + (w - 1)];
                if movement < best.0 {
                    best = (movement, w);
                }
            }
            ctx.nests[pos].window = Some(best.1);
        }
    }
}

/// Pass 4: full placement of every nest at its decided window size.
/// Nests the Steiner pass already placed (it compares both planning
/// modes and stores the winner) are skipped untouched.
pub struct PlacePass;

impl Pass for PlacePass {
    fn name(&self) -> &'static str {
        "place"
    }

    fn run(&self, ctx: &mut PlanCtx) {
        let todo: Vec<usize> =
            (0..ctx.nests.len()).filter(|&pos| ctx.nests[pos].plan.is_none()).collect();
        if todo.is_empty() {
            return;
        }
        let plans: Vec<NestPlan> = {
            let c: &PlanCtx = ctx;
            c.pool.map(&todo, |_, &pos| {
                let w = c.nests[pos].window.expect("window decided before placement");
                c.place(pos, w, None, c.force_default)
            })
        };
        for (&pos, plan) in todo.iter().zip(plans) {
            ctx.nests[pos].plan = Some(plan);
        }
    }
}

/// Pass 5: the nest-level split-vs-default decision.
///
/// Splitting a nest is only worthwhile when its planned movement clearly
/// beats default execution (mixed placements destroy each other's L1
/// locality, so the choice is made for the whole nest). Judged on the
/// warm half of the records — the cold-start sweep, all predicted
/// misses, is unrepresentative of steady state. Flagged nests are
/// re-placed at iteration granularity with the *same* window size.
pub struct SplitPass;

impl Pass for SplitPass {
    fn name(&self) -> &'static str {
        "split"
    }

    fn run(&self, ctx: &mut PlanCtx) {
        if ctx.force_default {
            return;
        }
        let flagged: Vec<usize> = (0..ctx.nests.len())
            .filter(|&pos| {
                let stats = &ctx.nests[pos].plan.as_ref().expect("placed before split").stats;
                let (warm_opt, warm_def) = stats.warm_movement();
                warm_opt as f64 > ctx.config.opts.split_threshold * warm_def as f64
            })
            .collect();
        if flagged.is_empty() {
            return;
        }
        let replans: Vec<NestPlan> = {
            let c: &PlanCtx = ctx;
            c.pool.map(&flagged, |_, &pos| {
                let w = c.nests[pos].window.expect("window decided");
                c.place(pos, w, None, true)
            })
        };
        for (&pos, plan) in flagged.iter().zip(replans) {
            ctx.nests[pos].plan = Some(plan);
        }
    }
}

/// Pass 6: dependence wiring and per-window sync minimisation.
///
/// Nests are independent, so they fan out over the pool; within a nest
/// the replay is inherently sequential (dependences chain through the
/// instance stream).
pub struct SyncPass;

impl Pass for SyncPass {
    fn name(&self) -> &'static str {
        "sync"
    }

    fn run(&self, ctx: &mut PlanCtx) {
        let plans: Vec<NestPlan> =
            ctx.nests.iter_mut().map(|nc| nc.plan.take().expect("placed before sync")).collect();
        let synced = ctx.pool.map_vec(plans, |_, mut plan| {
            sync_nest(&mut plan);
            plan
        });
        for (nc, plan) in ctx.nests.iter_mut().zip(synced) {
            nc.plan = Some(plan);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmcp_ir::ProgramBuilder;
    use dmcp_mach::MachineConfig;

    fn program() -> Program {
        let mut b = ProgramBuilder::new();
        for n in ["A", "B", "C", "D", "E", "X", "Y"] {
            b.array(n, &[256], 8);
        }
        b.nest(&[("i", 0, 48)], &["A[i] = B[i] + C[i] + D[i] + E[i]", "X[i] = Y[i] + C[i]"])
            .unwrap();
        b.nest(&[("i", 0, 16)], &["Y[i] = A[i] * 2"]).unwrap();
        b.build()
    }

    #[test]
    fn pass_sequence_is_stable() {
        let names: Vec<&str> = passes().iter().map(|p| p.name()).collect();
        assert_eq!(names, ["analyze", "window-search", "steiner", "place", "split", "sync"]);
    }

    #[test]
    fn pipeline_fills_every_nest() {
        let p = program();
        let machine = MachineConfig::knl_like();
        let part = Partitioner::new(&machine, &p, PartitionConfig::default());
        let data = p.initial_data();
        let mut ctx = PlanCtx::new(&part, &p, &data, Pool::global(), false, &[]);
        for pass in passes() {
            pass.run(&mut ctx);
        }
        assert_eq!(ctx.nests.len(), 2);
        assert!(ctx.nests.iter().all(|n| n.plan.is_some() && n.window.is_some()));
        let out = ctx.into_output();
        assert_eq!(out.nests.len(), 2);
        assert_eq!(out.window_sizes().len(), 2);
    }

    #[test]
    fn thread_count_is_invisible_in_the_output() {
        let p = program();
        let machine = MachineConfig::knl_like();
        let part = Partitioner::new(&machine, &p, PartitionConfig::default());
        let data = p.initial_data();
        let seq = part.partition_with_data_pooled(&p, &data, &Pool::single());
        let par = part.partition_with_data_pooled(&p, &data, &Pool::new(8));
        assert_eq!(seq, par, "pooled planning must be bit-identical across thread counts");
    }

    #[test]
    fn analyze_honours_hints_and_fixed_windows() {
        let p = program();
        let machine = MachineConfig::knl_like();
        let part = Partitioner::new(&machine, &p, PartitionConfig::default());
        let data = p.initial_data();
        let pool = Pool::single();
        let mut ctx = PlanCtx::new(&part, &p, &data, &pool, false, &[3]);
        AnalyzePass.run(&mut ctx);
        assert_eq!(ctx.nests[0].window, Some(3), "hinted nest skips the search");
        assert_eq!(ctx.nests[1].window, None, "unhinted nest still searches");

        let fixed = Partitioner::new(
            &machine,
            &p,
            PartitionConfig { fixed_window: Some(5), ..PartitionConfig::default() },
        );
        let mut ctx = PlanCtx::new(&fixed, &p, &data, &pool, false, &[3]);
        AnalyzePass.run(&mut ctx);
        assert!(ctx.nests.iter().all(|n| n.window == Some(5)), "fixed window beats hints");
    }
}
