//! Data-location detection (paper Section 4.1).
//!
//! Combines the page table (with the paper's colour-preserving OS support),
//! the SNUCA bank mapping and the machine description into one oracle that
//! answers: *for array element `e`, which node is its home L2 bank, and which
//! memory controller services a miss?*
//!
//! Pages are allocated **eagerly** in array-declaration order, so the layout
//! is identical no matter in which order the compiler, the window-size
//! search and the simulator ask questions — everything stays reproducible.

use dmcp_ir::{ArrayId, Program};
use dmcp_mach::{FaultState, MachineConfig, NodeId};
use dmcp_mem::page::{PagePolicy, PageTable};
use dmcp_mem::{AddressMap, LineAddr, PhysAddr, Snuca, VirtAddr};
use std::collections::HashMap;

/// Location of one array element in the memory system.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ElemInfo {
    /// Physical cache line holding the element.
    pub line: LineAddr,
    /// Home L2 bank node.
    pub home: NodeId,
    /// Memory controller servicing an L2 miss on the line.
    pub mc: NodeId,
    /// Whether the owning array is flat-placed in fast memory.
    pub hot: bool,
}

/// The degraded-mode view of the mesh: which nodes survive and where dead
/// banks' data is re-homed. Installed by [`Layout::apply_faults`]; absent on
/// a healthy machine, keeping the healthy paths bit-identical.
#[derive(Clone, Debug)]
struct DegradedView {
    /// Usable nodes, row-major. Never empty.
    live: Vec<NodeId>,
    /// Unusable node → nearest usable node (re-homing rule for pages whose
    /// home bank or controller died).
    rehome: HashMap<NodeId, NodeId>,
}

/// The machine-wide memory layout: VA→PA→(home bank, controller).
#[derive(Clone, Debug)]
pub struct Layout {
    machine: MachineConfig,
    map: AddressMap,
    pages: PageTable,
    snuca: Snuca,
    /// Page→controller overrides installed by the profile-based data-to-MC
    /// mapping scheme (paper Section 6.5 / Figure 23).
    mc_override: HashMap<u64, NodeId>,
    /// Fault-induced re-homing; `None` on a healthy machine.
    degraded: Option<DegradedView>,
}

impl Layout {
    /// Builds the layout for `machine`, eagerly allocating every page of
    /// every array in `program` under the given allocation policy.
    pub fn new(machine: &MachineConfig, program: &Program, policy: PagePolicy) -> Self {
        let map = AddressMap::for_machine(machine);
        let mut pages = PageTable::new(map, policy);
        for decl in program.arrays() {
            let bytes = decl.len() * u64::from(decl.elem_size);
            let mut va = decl.base_va;
            while va < decl.base_va + bytes {
                pages.translate(VirtAddr::new(va));
                va += u64::from(machine.page_size);
            }
            // The last element may share the final page; make sure.
            pages.translate(VirtAddr::new(decl.base_va + bytes.saturating_sub(1)));
        }
        let snuca = Snuca::new(machine.mesh, machine.cluster, map);
        Self {
            machine: machine.clone(),
            map,
            pages,
            snuca,
            mc_override: HashMap::new(),
            degraded: None,
        }
    }

    /// Installs a degraded-mode view: every page homed on a node the faults
    /// made unusable is re-homed to its nearest usable node, and
    /// [`Layout::is_live`] starts reporting unusable nodes as dead so the
    /// partitioner excludes them from every placement decision.
    ///
    /// A trivial (empty) fault state is a no-op — the layout stays on its
    /// healthy code paths and answers are bit-identical to before.
    pub fn apply_faults(&mut self, faults: &FaultState) {
        if faults.is_trivial() {
            self.degraded = None;
            return;
        }
        let rehome: HashMap<NodeId, NodeId> = self
            .machine
            .mesh
            .nodes()
            .filter(|&n| !faults.is_usable(n))
            .map(|n| (n, faults.nearest_live(n)))
            .collect();
        self.degraded = Some(DegradedView { live: faults.live_nodes().to_vec(), rehome });
    }

    /// `true` when a degraded-mode view is installed.
    pub fn is_degraded(&self) -> bool {
        self.degraded.is_some()
    }

    /// `true` if `node` is usable for computation and data under the
    /// installed fault view (always `true` on a healthy machine).
    pub fn is_live(&self, node: NodeId) -> bool {
        match &self.degraded {
            None => true,
            Some(d) => !d.rehome.contains_key(&node),
        }
    }

    /// The usable nodes in row-major order, or `None` on a healthy machine
    /// (meaning: all of them).
    pub fn live_nodes(&self) -> Option<&[NodeId]> {
        self.degraded.as_ref().map(|d| d.live.as_slice())
    }

    /// Applies the fault re-homing rule to a home/controller node.
    fn rehomed(&self, node: NodeId) -> NodeId {
        match &self.degraded {
            None => node,
            Some(d) => d.rehome.get(&node).copied().unwrap_or(node),
        }
    }

    /// The machine this layout belongs to.
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// The address map in use.
    pub fn map(&self) -> AddressMap {
        self.map
    }

    /// Translates an element of an array to its physical address.
    ///
    /// # Panics
    ///
    /// Panics if the page was not pre-allocated (cannot happen for addresses
    /// inside declared arrays).
    pub fn phys_of(&self, program: &Program, array: ArrayId, elem: u64) -> PhysAddr {
        let va = program.array(array).va_of(elem);
        self.pages.lookup(VirtAddr::new(va)).expect("page pre-allocated for declared arrays")
    }

    /// Full location info of one array element, as seen by `requester`
    /// (requester only matters under SNC-4).
    pub fn locate(
        &self,
        program: &Program,
        array: ArrayId,
        elem: u64,
        requester: NodeId,
    ) -> ElemInfo {
        let pa = self.phys_of(program, array, elem);
        let line = self.map.line_of(pa);
        let home = self.rehomed(self.snuca.home_node(pa, requester));
        let mc = self.rehomed(match self.mc_override.get(&self.map.phys_page(pa)) {
            Some(&n) => n,
            None => self.snuca.controller_node(pa, requester),
        });
        ElemInfo { line, home, mc, hot: program.array(array).hot }
    }

    /// The compiler's *belief* about an element's location, inferred from
    /// its virtual address (paper Section 4.1: the OS support guarantees
    /// the compiler can read the location off the VA). Under the
    /// colour-preserving policy the belief matches reality; under a stock
    /// (scrambled) allocator the bank-hash and channel bits differ and the
    /// compiler plans against wrong locations — exactly the failure mode
    /// the paper's modified OS API exists to prevent.
    pub fn believed(
        &self,
        program: &Program,
        array: ArrayId,
        elem: u64,
        requester: NodeId,
    ) -> ElemInfo {
        let va = program.array(array).va_of(elem);
        // Interpret the VA as if translation were the identity.
        let pa_guess = PhysAddr::new(va);
        let real = self.locate(program, array, elem, requester);
        ElemInfo {
            line: real.line, // the *identity* of the line is always real
            home: self.rehomed(self.snuca.home_node(pa_guess, requester)),
            mc: self.rehomed(self.snuca.controller_node(pa_guess, requester)),
            hot: real.hot,
        }
    }

    /// Installs a page→controller override (profile-guided data-to-MC
    /// mapping). `ppn` is the physical page number.
    pub fn override_page_controller(&mut self, ppn: u64, mc: NodeId) {
        self.mc_override.insert(ppn, mc);
    }

    /// Number of page→controller overrides installed.
    pub fn override_count(&self) -> usize {
        self.mc_override.len()
    }

    /// Physical page number of an element (for building overrides).
    pub fn page_of(&self, program: &Program, array: ArrayId, elem: u64) -> u64 {
        self.map.phys_page(self.phys_of(program, array, elem))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmcp_ir::ProgramBuilder;

    fn setup() -> (MachineConfig, Program) {
        let mut b = ProgramBuilder::new();
        b.array("A", &[512], 8);
        b.hot_array("B", &[512], 8);
        b.nest(&[("i", 0, 512)], &["A[i] = B[i] + 1"]).unwrap();
        (MachineConfig::knl_like(), b.build())
    }

    #[test]
    fn locations_are_stable() {
        let (m, p) = setup();
        let layout = Layout::new(&m, &p, PagePolicy::ColorPreserving);
        let a = dmcp_ir::ArrayId::from_index(0);
        let req = NodeId::new(0, 0);
        let first = layout.locate(&p, a, 17, req);
        let second = layout.locate(&p, a, 17, req);
        assert_eq!(first, second);
    }

    #[test]
    fn consecutive_elements_share_lines_then_move_banks() {
        let (m, p) = setup();
        let layout = Layout::new(&m, &p, PagePolicy::ColorPreserving);
        let a = dmcp_ir::ArrayId::from_index(0);
        let req = NodeId::new(0, 0);
        // 8-byte elements, 64-byte lines: elements 0..8 share a line.
        let l0 = layout.locate(&p, a, 0, req);
        let l7 = layout.locate(&p, a, 7, req);
        let l8 = layout.locate(&p, a, 8, req);
        assert_eq!(l0.line, l7.line);
        assert_ne!(l0.line, l8.line);
        assert_ne!(l0.home, l8.home, "adjacent lines should home differently");
    }

    #[test]
    fn hot_flag_follows_declaration() {
        let (m, p) = setup();
        let layout = Layout::new(&m, &p, PagePolicy::ColorPreserving);
        let req = NodeId::new(0, 0);
        assert!(!layout.locate(&p, dmcp_ir::ArrayId::from_index(0), 0, req).hot);
        assert!(layout.locate(&p, dmcp_ir::ArrayId::from_index(1), 0, req).hot);
    }

    #[test]
    fn homes_cover_many_banks() {
        let (m, p) = setup();
        let layout = Layout::new(&m, &p, PagePolicy::ColorPreserving);
        let a = dmcp_ir::ArrayId::from_index(0);
        let req = NodeId::new(0, 0);
        let homes: std::collections::HashSet<_> =
            (0..512).map(|e| layout.locate(&p, a, e, req).home).collect();
        assert!(homes.len() >= 30, "only {} distinct home banks", homes.len());
    }

    #[test]
    fn controller_override_takes_effect() {
        let (m, p) = setup();
        let mut layout = Layout::new(&m, &p, PagePolicy::ColorPreserving);
        let a = dmcp_ir::ArrayId::from_index(0);
        let req = NodeId::new(3, 3);
        let before = layout.locate(&p, a, 0, req);
        let target = NodeId::new(5, 5);
        layout.override_page_controller(layout.page_of(&p, a, 0), target);
        let after = layout.locate(&p, a, 0, req);
        assert_eq!(after.mc, target);
        assert_eq!(after.home, before.home, "override must not move the home bank");
        assert_eq!(layout.override_count(), 1);
    }

    #[test]
    fn color_preservation_makes_mc_predictable_from_va() {
        let (m, p) = setup();
        let layout = Layout::new(&m, &p, PagePolicy::ColorPreserving);
        let a = dmcp_ir::ArrayId::from_index(0);
        // Channel bits of PA equal channel bits of VA under colour
        // preservation.
        for e in [0u64, 100, 300, 511] {
            let va = p.array(a).va_of(e);
            let pa = layout.phys_of(&p, a, e);
            assert_eq!(
                layout.map().channel_of_phys(pa),
                layout.map().channel_of_virt(VirtAddr::new(va))
            );
        }
    }

    #[test]
    fn trivial_faults_change_nothing() {
        let (m, p) = setup();
        let mut layout = Layout::new(&m, &p, PagePolicy::ColorPreserving);
        let a = dmcp_ir::ArrayId::from_index(0);
        let req = NodeId::new(2, 1);
        let before: Vec<_> = (0..64).map(|e| layout.locate(&p, a, e, req)).collect();
        let faults = dmcp_mach::FaultState::new(dmcp_mach::FaultPlan::healthy(), m.mesh).unwrap();
        layout.apply_faults(&faults);
        assert!(!layout.is_degraded());
        assert!(layout.live_nodes().is_none());
        let after: Vec<_> = (0..64).map(|e| layout.locate(&p, a, e, req)).collect();
        assert_eq!(before, after, "healthy fault state must be a strict no-op");
    }

    #[test]
    fn dead_banks_are_rehomed_to_live_nodes() {
        let (m, p) = setup();
        let mut layout = Layout::new(&m, &p, PagePolicy::ColorPreserving);
        let a = dmcp_ir::ArrayId::from_index(0);
        let req = NodeId::new(0, 0);
        let mut plan = dmcp_mach::FaultPlan::healthy();
        // Kill a node that certainly homes some lines (homes cover >= 30
        // of 36 banks for this array).
        let victim = NodeId::new(3, 3);
        plan.kill_node(victim);
        let faults = dmcp_mach::FaultState::new(plan, m.mesh).unwrap();
        layout.apply_faults(&faults);
        assert!(layout.is_degraded());
        assert!(!layout.is_live(victim));
        assert_eq!(layout.live_nodes().unwrap().len(), 35);
        for e in 0..512 {
            let info = layout.locate(&p, a, e, req);
            assert!(layout.is_live(info.home), "element {e} homed on dead node");
            assert!(layout.is_live(info.mc), "element {e} serviced by dead MC");
            let believed = layout.believed(&p, a, e, req);
            assert!(layout.is_live(believed.home));
            assert!(layout.is_live(believed.mc));
        }
    }

    #[test]
    fn rehoming_moves_to_the_nearest_live_node() {
        let (m, p) = setup();
        let mut layout = Layout::new(&m, &p, PagePolicy::ColorPreserving);
        let a = dmcp_ir::ArrayId::from_index(0);
        let req = NodeId::new(0, 0);
        // Find an element homed on the victim before faults.
        let victim = NodeId::new(3, 3);
        let elem = (0..512)
            .find(|&e| layout.locate(&p, a, e, req).home == victim)
            .expect("some element homes on (3,3)");
        let mut plan = dmcp_mach::FaultPlan::healthy();
        plan.kill_node(victim);
        let faults = dmcp_mach::FaultState::new(plan, m.mesh).unwrap();
        layout.apply_faults(&faults);
        let new_home = layout.locate(&p, a, elem, req).home;
        assert_eq!(victim.manhattan(new_home), 1, "re-home must be the nearest live node");
    }
}
