//! Single-statement splitting and subcomputation placement
//! (paper Algorithm 1 + Section 4.3).
//!
//! For one statement instance the [`Planner`]:
//!
//! 1. locates every operand (`GetNode`): home L2 bank, or the memory
//!    controller on a predicted L2 miss, or L1 copies recorded in the
//!    `variable2node` map ([`crate::l1model::L1Model`]);
//! 2. classifies the operands into nested sets by priority/parentheses and
//!    builds an MST per set, innermost first, treating processed sets as
//!    single multi-located components ([`crate::mst`]);
//! 3. walks each MST from the leaves towards the store node, emitting one
//!    subcomputation ([`crate::step::Step`]) per internal tree vertex on the
//!    vertex's node (subject to the load-balance skip rule), so every MST
//!    edge is traversed exactly once — by raw data or by a partial result.
//!
//! L1 copies are *private*: a recorded copy on node `n` only saves movement
//! when the consuming subcomputation itself runs on `n`; it never serves a
//! remote fetch. This is why L1 reuse pulls subcomputations *to* data
//! (near-data processing) rather than data to subcomputations.
//!
//! Statements whose store target the compiler cannot analyse fall back to
//! default-style execution on the iteration's assigned core; the same
//! mechanism (a forced execution node) also generates the baseline
//! schedules.

use crate::balance::LoadTracker;
use crate::l1model::L1Model;
use crate::layout::Layout;
use crate::mst::{kruskal, prune_relays, MstEdge, MstVertex, RootedTree};
use crate::stats::{OpMix, StmtRecord};
use crate::step::{ElemLoc, Operand, Step, StepInput, StmtTag, StoreTarget, SubId};
use dmcp_ir::nested::{Element, Group, OpClass, Term};
use dmcp_ir::program::{DataStore, Program, Statement};
use dmcp_ir::BinOp;
use dmcp_mach::NodeId;
use dmcp_mem::{Cache, LineAddr, MissPredictor};

/// How the planner predicts L2 hits when locating data (Section 4.1).
#[derive(Clone, Debug)]
pub enum HitPredictor {
    /// The realistic reuse-distance predictor of [`dmcp_mem::predictor`]
    /// (imperfect; its accuracy is the paper's Table 2).
    Reuse(MissPredictor),
    /// An idealised predictor that models the actual L2 contents (used by
    /// the "ideal data analysis" scenario of Figure 17).
    L2Model(Cache),
    /// Pretends everything hits on-chip (for tests and ablations).
    AlwaysHit,
}

impl HitPredictor {
    /// Predicts whether an access to `line` is served on-chip, updating the
    /// predictor's internal model.
    pub fn predict(&mut self, line: LineAddr) -> bool {
        match self {
            HitPredictor::Reuse(p) => p.predict_hit(line),
            HitPredictor::L2Model(c) => !c.access(line).is_miss(),
            HitPredictor::AlwaysHit => true,
        }
    }
}

/// Planner knobs.
#[derive(Clone, Copy, Debug)]
pub struct PlanOptions {
    /// Consult the `variable2node` map for L1 reuse (Section 4.3). Turning
    /// this off gives the paper's "reuse-agnostic" ablation.
    pub reuse_aware: bool,
    /// Treat every reference as analyzable (the "ideal data analysis"
    /// scenario). Pair with [`HitPredictor::L2Model`].
    pub ideal_analysis: bool,
    /// Load-balance skip threshold (paper default 10 %).
    pub balance_threshold: f64,
    /// Split a statement only when the planned movement of the split
    /// schedule is below this fraction of the default execution's
    /// (hysteresis compensating for the synchronization overhead splitting
    /// introduces; 1.0 splits on any planned win).
    pub split_threshold: f64,
    /// Augment each statement's outermost tree with Steiner relay nodes
    /// ([`dmcp_mach::graph::steiner_relays_sets`]) when the relayed tree is
    /// *strictly* cheaper than the plain MST (DESIGN.md §16). Off, the
    /// planner is bit-identical to the MST-only paper construction.
    pub steiner: bool,
}

impl Default for PlanOptions {
    fn default() -> Self {
        Self {
            reuse_aware: true,
            ideal_analysis: false,
            balance_threshold: 0.10,
            split_threshold: 0.75,
            steiner: true,
        }
    }
}

/// Plans statements of one loop nest into subcomputation steps.
pub struct Planner<'a> {
    program: &'a Program,
    layout: &'a Layout,
    data: &'a DataStore,
    opts: PlanOptions,
    /// Compile-time L1 model (`variable2node` map).
    pub l1: L1Model,
    /// A second L1 model tracking what the *default* execution's per-core
    /// L1s would hold, so the split-vs-default comparison is honest.
    l1_default: L1Model,
    /// Persistent residency estimator for the *split* execution: real L1s
    /// do not forget at window boundaries, so movement accounting may
    /// credit hits the window-scoped `variable2node` map no longer records
    /// (placement decisions still use only the windowed map, as in the
    /// paper).
    l1_persist: L1Model,
    /// L2 hit predictor.
    pub predictor: HitPredictor,
    /// Load tracker for the balance rule.
    pub loads: LoadTracker,
    /// Side effects (L1 touches, load additions) buffered during one
    /// statement's planning (applied when the statement commits).
    pending_touches: Vec<(NodeId, LineAddr)>,
    pending_loads: Vec<(NodeId, f64)>,
    /// Relay candidates per distinct terminal-set shape. Statement
    /// instances of a nest cycle over a bounded set of home patterns, so
    /// the Steiner kernels run once per pattern, not once per instance.
    steiner_memo: std::collections::HashMap<Vec<Vec<NodeId>>, Vec<NodeId>>,
}

/// One operand location resolved by `GetNode`.
#[derive(Clone)]
struct LeafInfo {
    elem: ElemLoc,
    /// Candidate compute sites where the data is locally available:
    /// the believed primary source plus any L1-copy holders.
    candidates: Vec<NodeId>,
    /// The subset of `candidates` that are L1 copies.
    l1_candidates: Vec<NodeId>,
    /// Believed primary (network) source: home bank or controller.
    primary: NodeId,
}

/// A node of the (recursive) group plan.
enum PlanNode {
    Leaf {
        op: BinOp,
        info: LeafInfo,
    },
    Sub {
        op: BinOp,
        plan: GroupPlan,
    },
    /// Constants appear as plan nodes only inside non-reorderable (shift)
    /// groups, where operand order must be preserved.
    Const {
        op: BinOp,
        value: f64,
    },
}

/// A planned nested set: its vertices, MST and constants.
struct GroupPlan {
    class: OpClass,
    nodes: Vec<PlanNode>,
    /// Constants of reorderable groups (they have no location; they attach
    /// to the group's root step).
    consts: Vec<(BinOp, f64)>,
    /// MST vertices aligned with `nodes` (plus possibly an extra store
    /// vertex appended by the outermost level, plus Steiner relay
    /// vertices after that).
    vertices: Vec<MstVertex>,
    edges: Vec<MstEdge>,
    /// First relay vertex index (`usize::MAX` when the tree has none).
    /// Vertices at `relay_start..` carry no operand: they emit pure
    /// combining steps seeded with the class identity.
    relay_start: usize,
}

/// Outcome of emitting a group: where its value is and what it cost.
struct Emitted {
    operand: Operand,
    node: NodeId,
    movement: u64,
    l1_hits: u32,
}

impl<'a> Planner<'a> {
    /// Creates a planner for one nest-planning run.
    pub fn new(
        program: &'a Program,
        layout: &'a Layout,
        data: &'a DataStore,
        predictor: HitPredictor,
        opts: PlanOptions,
    ) -> Self {
        let machine = layout.machine();
        Self {
            program,
            layout,
            data,
            opts,
            l1: L1Model::new(machine.l1_lines()),
            l1_default: L1Model::new(machine.l1_lines()),
            l1_persist: L1Model::new(machine.l1_lines()),
            predictor,
            loads: LoadTracker::new(opts.balance_threshold),
            pending_touches: Vec::new(),
            pending_loads: Vec::new(),
            steiner_memo: std::collections::HashMap::new(),
        }
    }

    fn apply_pending(&mut self) {
        for (node, line) in self.pending_touches.drain(..) {
            self.l1.touch(node, line);
            self.l1_persist.touch(node, line);
        }
        for (node, cost) in self.pending_loads.drain(..) {
            self.loads.add(node, cost);
        }
    }

    fn clear_pending(&mut self) {
        self.pending_touches.clear();
        self.pending_loads.clear();
    }

    /// Plans one statement instance, appending its steps to `steps`.
    ///
    /// `assigned_core` is the node the default (iteration-granularity)
    /// placement gives this iteration; it anchors unanalyzable references
    /// and fallback execution. With `force_default = true` the whole
    /// statement executes default-style on the assigned core (this is how
    /// baseline schedules and rolled-back windows are generated).
    ///
    /// The split-vs-default decision is made per *nest* by the
    /// [`crate::Partitioner`]: it compares the nest's planned warm-phase
    /// movement against default execution and re-plans the whole nest
    /// default-style when splitting is not worth it — mixed placements
    /// destroy each other's L1 locality, so the choice is all-or-nothing
    /// per nest.
    pub fn plan_statement(
        &mut self,
        steps: &mut Vec<Step>,
        tag: StmtTag,
        stmt: &Statement,
        iter: &[i64],
        assigned_core: NodeId,
        force_default: bool,
    ) -> StmtRecord {
        let rec = self.plan_once(steps, tag, stmt, iter, assigned_core, force_default);
        self.apply_pending();
        rec
    }

    fn plan_once(
        &mut self,
        steps: &mut Vec<Step>,
        tag: StmtTag,
        stmt: &Statement,
        iter: &[i64],
        assigned_core: NodeId,
        force_default: bool,
    ) -> StmtRecord {
        self.clear_pending();
        let first_step = steps.len() as u32;

        // --- Store-target resolution -----------------------------------
        let lhs_elem = self.program.element_of(&stmt.lhs, iter, self.data);
        let lhs_info = self.layout.locate(self.program, stmt.lhs.array, lhs_elem, assigned_core);
        let store = StoreTarget {
            array: stmt.lhs.array,
            elem: lhs_elem,
            line: lhs_info.line,
            home: lhs_info.home,
            hot: lhs_info.hot,
        };
        let lhs_known = stmt.lhs.analyzable || self.opts.ideal_analysis;
        let fallback = force_default || !lhs_known;
        // When the store target is unknown the compiler cannot do better
        // than default placement on the assigned core.
        let force: Option<NodeId> = if fallback { Some(assigned_core) } else { None };

        // --- Build the nested-set plan (innermost MSTs first) ----------
        let group = Group::of_expr(&stmt.rhs);
        let mut default_movement = 0u64;
        let mut plan = self.plan_group(&group, assigned_core, &mut default_movement, iter);
        // Default execution also ships the result from the core to the
        // store node.
        default_movement += u64::from(assigned_core.manhattan(store.home));

        // The outermost MST includes the store node as a vertex
        // (paper Figure 9c) and is rooted there.
        plan.vertices.push(MstVertex::single(store.home));
        plan.edges = kruskal(&plan.vertices);

        // Steiner relay augmentation (DESIGN.md §16): splice relay
        // vertices into the outermost tree when they make it strictly
        // cheaper than the MST. Fallback statements are default execution
        // by definition; fixed (shift) groups emit a single ordered step
        // with no tree to shorten; trees of ≤ 2 terminals have no room
        // for a junction.
        if self.opts.steiner
            && !fallback
            && !matches!(plan.class, OpClass::Fixed(_))
            && plan.vertices.len() >= 3
        {
            self.augment_with_relays(&mut plan);
        }

        // Predict the store line too (write-allocate into L2).
        let _ = self.predictor.predict(store.line);

        // --- Emit subcomputations ---------------------------------------
        let emitted = self.emit_group(steps, &plan, store.home, Some(store), tag, force);
        // Ship the result to the store node (zero unless forced elsewhere).
        // A fallback/forced statement IS default execution; its planned
        // movement is the default estimate by definition.
        let movement_opt = if fallback {
            default_movement
        } else {
            emitted.movement + u64::from(emitted.node.manhattan(store.home))
        };
        self.pending_touches.push((store.home, store.line));
        self.l1_default.touch(assigned_core, store.line);

        // --- Statistics --------------------------------------------------
        let stmt_steps = &steps[first_step as usize..];
        let parallelism = dag_width(stmt_steps, first_step);
        let mut remapped = OpMix::default();
        for s in stmt_steps {
            if s.node != assigned_core {
                for i in &s.inputs {
                    remapped.record(i.op.category());
                }
            }
        }
        StmtRecord {
            tag,
            movement_opt,
            movement_default: default_movement,
            parallelism,
            step_count: stmt_steps.len() as u32,
            planned_l1_hits: emitted.l1_hits,
            remapped,
            fallback,
            first_step,
            last_step: steps.len() as u32,
        }
    }

    /// Augments the outermost statement tree with Steiner relay vertices
    /// when — and only when — the pruned relayed tree is *strictly*
    /// cheaper than the plain MST. On a tie or a loss the plan is left
    /// bit-identical, so the construction can only ever lower movement.
    ///
    /// Relays come from [`dmcp_mach::graph::steiner_relays_sets`] (exact
    /// Dreyfus–Wagner junctions for small terminal counts, L-path
    /// candidates above that), restricted to live nodes on a degraded
    /// machine so a relay step can always execute, and shortcut through
    /// [`prune_relays`] so every surviving relay is an interior combining
    /// point that pays for itself.
    fn augment_with_relays(&mut self, plan: &mut GroupPlan) {
        let sets: Vec<Vec<NodeId>> = plan.vertices.iter().map(|v| v.locs.clone()).collect();
        let relays = match self.steiner_memo.get(&sets) {
            Some(r) => r.clone(),
            None => {
                let mesh = self.layout.machine().mesh;
                let allowed = self.layout.live_nodes();
                let r = dmcp_mach::graph::steiner_relays_sets(&mesh, &sets, allowed);
                self.steiner_memo.insert(sets, r.clone());
                r
            }
        };
        if relays.is_empty() {
            return;
        }
        let plain: u64 = plan.edges.iter().map(|e| u64::from(e.weight)).sum();
        let terminals = plan.vertices.len();
        let mut aug = plan.vertices.clone();
        aug.extend(relays.into_iter().map(MstVertex::single));
        let (vertices, edges) = prune_relays(aug, terminals);
        let weight: u64 = edges.iter().map(|e| u64::from(e.weight)).sum();
        if weight < plain {
            plan.relay_start = terminals;
            plan.vertices = vertices;
            plan.edges = edges;
        }
    }

    /// `GetNode` (Algorithm 1, line 11): resolves one leaf operand.
    fn locate_leaf(
        &mut self,
        r: &dmcp_ir::ArrayRef,
        iter: &[i64],
        assigned_core: NodeId,
        default_movement: &mut u64,
    ) -> LeafInfo {
        let elem = self.program.element_of(r, iter, self.data);
        let info = self.layout.locate(self.program, r.array, elem, assigned_core);
        // The compiler reads locations off the virtual address; with the
        // paper's colour-preserving OS support the belief equals reality.
        let belief = self.layout.believed(self.program, r.array, elem, assigned_core);
        let analyzable = r.analyzable || self.opts.ideal_analysis;
        let predicted_hit = self.predictor.predict(info.line);
        let primary = if analyzable {
            if predicted_hit {
                belief.home
            } else {
                belief.mc
            }
        } else {
            // Unplaceable: the compiler assumes the data must come to the
            // requesting core, exactly as in default execution.
            assigned_core
        };
        let elem_loc =
            ElemLoc { array: r.array, elem, line: info.line, believed: primary, hot: info.hot };
        // Default execution fetches the operand to the assigned core (its
        // private L1 may already hold the line under default placement).
        let default_cost = if self.l1_default.holds(assigned_core, info.line) {
            0
        } else {
            u64::from(primary.manhattan(assigned_core))
        };
        *default_movement += default_cost;
        self.l1_default.touch(assigned_core, info.line);

        let mut candidates = vec![primary];
        // On a predicted miss the line passes through the controller *and*
        // is installed in its home bank, so both are legitimate near-data
        // sites; listing both also gives the balance rule room to spread
        // load away from the (few) controller tiles.
        if analyzable && !predicted_hit {
            candidates.push(belief.home);
        }
        let mut l1_candidates = Vec::new();
        if self.opts.reuse_aware && analyzable {
            // Window-scoped reuse knowledge (the paper's variable2node map)
            // plus the persistent residency estimator: short-reuse-distance
            // lines (loop-invariant operands) stay cached at their past
            // consumers across windows, like register-promoted scalars.
            let hot = self.l1_persist.hot_holders(info.line, 4);
            for &h in self.l1.holders(info.line).iter().chain(hot) {
                if !candidates.contains(&h) {
                    candidates.push(h);
                    l1_candidates.push(h);
                }
            }
        }
        let _ = default_cost;
        LeafInfo { elem: elem_loc, candidates, l1_candidates, primary }
    }

    /// Recursively plans a group: locates leaves, recurses into sub-groups
    /// (innermost sets are therefore processed first) and builds this
    /// level's MST.
    fn plan_group(
        &mut self,
        group: &Group,
        assigned_core: NodeId,
        default_movement: &mut u64,
        iter: &[i64],
    ) -> GroupPlan {
        let ordered = matches!(group.class, OpClass::Fixed(_));
        let mut nodes = Vec::new();
        let mut consts = Vec::new();
        for Element { term, inverted } in &group.elems {
            let op = group.class.op_for(*inverted);
            match term {
                Term::Const(v) => {
                    if ordered {
                        nodes.push(PlanNode::Const { op, value: *v });
                    } else {
                        consts.push((op, *v));
                    }
                }
                Term::Leaf(r) => {
                    let info = self.locate_leaf(r, iter, assigned_core, default_movement);
                    nodes.push(PlanNode::Leaf { op, info });
                }
                Term::Group(g) => {
                    let plan = self.plan_group(g, assigned_core, default_movement, iter);
                    nodes.push(PlanNode::Sub { op, plan });
                }
            }
        }
        let anchor = self.const_anchor();
        let vertices: Vec<MstVertex> = nodes.iter().map(|n| plan_vertex(n, anchor)).collect();
        let edges = kruskal(&vertices);
        GroupPlan { class: group.class, nodes, consts, vertices, edges, relay_start: usize::MAX }
    }

    /// Emits the steps of a planned group, directing its result towards
    /// `target`. With `store` set this is the statement's outermost group:
    /// the extra store vertex is the tree root and the final step writes the
    /// result.
    fn emit_group(
        &mut self,
        steps: &mut Vec<Step>,
        plan: &GroupPlan,
        target: NodeId,
        store: Option<StoreTarget>,
        tag: StmtTag,
        force: Option<NodeId>,
    ) -> Emitted {
        // Pass-through: a single non-inverted element with no constants
        // needs no step of its own (its consumer folds it directly).
        if store.is_none() && plan.consts.is_empty() && plan.nodes.len() == 1 {
            let base_op = plan.class.op_for(false);
            match &plan.nodes[0] {
                PlanNode::Leaf { op, info } if *op == base_op => {
                    let node = info
                        .candidates
                        .iter()
                        .copied()
                        .min_by_key(|&c| (c.manhattan(target), c))
                        .expect("candidates non-empty");
                    return Emitted {
                        operand: Operand::Elem(info.elem),
                        node,
                        movement: 0,
                        l1_hits: 0,
                    };
                }
                PlanNode::Sub { op, plan: sub } if *op == base_op => {
                    return self.emit_group(steps, sub, target, None, tag, force);
                }
                _ => {}
            }
        }

        if let OpClass::Fixed(_) = plan.class {
            return self.emit_fixed(steps, plan, target, store, tag, force);
        }

        let n = plan.vertices.len();
        if n == 0 {
            // Constants only. As a nested subgroup (e.g. the `(2 + 3)` in
            // `A[i] = (2 + 3) & 63`) the group folds to a compile-time
            // value: no step, no movement — the consumer folds the
            // constant directly.
            let Some(st) = store else {
                let mut value = plan.class.identity();
                for &(op, v) in &plan.consts {
                    value = op.apply(value, v);
                }
                return Emitted {
                    operand: Operand::Const(value),
                    node: target,
                    movement: 0,
                    l1_hits: 0,
                };
            };
            // At statement level (e.g. `A[i] = 3`): a single store step.
            let node = force.unwrap_or(st.home);
            let id = SubId(steps.len() as u32);
            let step = Step {
                id,
                node,
                seed: Some(plan.class.identity()),
                inputs: plan
                    .consts
                    .iter()
                    .map(|&(op, v)| StepInput { op, operand: Operand::Const(v) })
                    .collect(),
                store: Some(st),
                waits: Vec::new(),
                tag,
            };
            self.pending_loads.push((node, step_load(&step, self.div_factor())));
            steps.push(step);
            return Emitted { operand: Operand::Temp(id), node, movement: 0, l1_hits: 0 };
        }

        // Vertices at `relay_start..` are Steiner relays (outermost
        // statement trees only): operand-less combining points.
        let rs = plan.relay_start.min(n);
        // Root selection: the store vertex if present, else the vertex
        // nearest to the requested target.
        let root = if store.is_some() {
            rs - 1 // the appended store vertex (relays follow it)
        } else {
            (0..n)
                .min_by_key(|&i| {
                    let (node, d) = plan.vertices[i].nearest_to(target);
                    (d, node, i)
                })
                .expect("non-empty vertex set")
        };
        let tree = RootedTree::build(n, &plan.edges, root);

        // Top-down concrete node assignment. Steps are emitted by internal
        // vertices and by the root; only those are forced/balanced.
        let mut node_of = vec![NodeId::new(0, 0); n];
        let preorder: Vec<usize> = tree.postorder.iter().rev().copied().collect();
        for &v in &preorder {
            let anchor = match tree.parent[v] {
                None => target,
                Some(p) => node_of[p],
            };
            let emits_step = !tree.is_leaf(v) || v == root;
            node_of[v] = match force {
                Some(f) if emits_step => f,
                _ => {
                    if emits_step {
                        self.choose_node(&plan.vertices[v], anchor, cost_estimate(plan, v))
                    } else {
                        plan.vertices[v].nearest_to(anchor).0
                    }
                }
            };
        }
        if store.is_some() && force.is_none() {
            // The final subcomputation always runs at the store node: the
            // result is never migrated (Section 4.5).
            node_of[root] = plan.vertices[root].locs[0];
        }

        // Bottom-up emission: one step per internal vertex (plus the root).
        let mut produced: Vec<Option<Emitted>> = (0..n).map(|_| None).collect();
        let mut total_movement = 0u64;
        let mut total_l1 = 0u32;
        for &v in &tree.postorder {
            let is_root = v == root;
            let is_store_root = is_root && store.is_some();
            if tree.is_leaf(v) && !is_root {
                continue; // folded into the parent's step
            }

            let exec = node_of[v];
            let mut inputs = Vec::new();
            // Own element (absent for the synthetic store vertex and for
            // relay vertices, which carry no operand of their own).
            if !is_store_root && v < rs {
                let (op, operand, fetch, l1h) =
                    self.vertex_operand(steps, plan, v, exec, tag, force);
                total_movement += fetch;
                total_l1 += l1h;
                inputs.push(StepInput { op, operand });
            }
            // Children contributions.
            for &c in &tree.children[v] {
                match produced[c].take() {
                    Some(e) => {
                        // A sub-result produced by an earlier step travels
                        // from its node to here. Its own inversion (if any)
                        // already happened inside that step, so the class's
                        // base operator folds it in.
                        total_movement += u64::from(e.node.manhattan(exec));
                        inputs.push(StepInput { op: plan.class.op_for(false), operand: e.operand });
                    }
                    None => {
                        // A tree-leaf child: fetch its element or emit its
                        // sub-group directed at us. Relays never land here:
                        // pruning keeps only interior relay vertices, so a
                        // relay child has always emitted a step already.
                        debug_assert!(c < rs, "relay vertex {c} folded as a leaf operand");
                        let (op, operand, fetch, l1h) =
                            self.vertex_operand(steps, plan, c, exec, tag, force);
                        total_movement += fetch;
                        total_l1 += l1h;
                        inputs.push(StepInput { op, operand });
                    }
                }
            }
            // Constants attach to the root step of their group.
            if is_root {
                inputs.extend(
                    plan.consts.iter().map(|&(op, c)| StepInput { op, operand: Operand::Const(c) }),
                );
            }
            let id = SubId(steps.len() as u32);
            let step = Step {
                id,
                node: exec,
                seed: Some(plan.class.identity()),
                inputs,
                store: if is_store_root { store } else { None },
                waits: Vec::new(),
                tag,
            };
            self.pending_loads.push((exec, step_load(&step, self.div_factor())));
            steps.push(step);
            produced[v] =
                Some(Emitted { operand: Operand::Temp(id), node: exec, movement: 0, l1_hits: 0 });
        }

        let root_emit = produced[root].take().expect("root emitted a step");
        Emitted {
            operand: root_emit.operand,
            node: root_emit.node,
            movement: total_movement,
            l1_hits: total_l1,
        }
    }

    /// Emits a non-reorderable (shift) group as a single ordered step.
    fn emit_fixed(
        &mut self,
        steps: &mut Vec<Step>,
        plan: &GroupPlan,
        target: NodeId,
        store: Option<StoreTarget>,
        tag: StmtTag,
        force: Option<NodeId>,
    ) -> Emitted {
        debug_assert_eq!(plan.nodes.len(), 2, "fixed groups have exactly two elements");
        let exec = match (force, &store) {
            (Some(f), _) => f,
            (None, Some(st)) => st.home,
            (None, None) => {
                // Cheapest located node among the operands w.r.t. the target.
                let mut cands: Vec<NodeId> = plan
                    .nodes
                    .iter()
                    .zip(&plan.vertices)
                    .filter(|(n, _)| !matches!(n, PlanNode::Const { .. }))
                    .flat_map(|(_, v)| v.locs.iter().copied())
                    .collect();
                cands.sort();
                cands.dedup();
                cands.into_iter().min_by_key(|&c| (c.manhattan(target), c)).unwrap_or(target)
            }
        };
        let mut movement = 0u64;
        let mut l1_hits = 0u32;
        let mut inputs = Vec::new();
        for v in 0..plan.nodes.len() {
            let (op, operand, fetch, l1h) = self.vertex_operand(steps, plan, v, exec, tag, force);
            movement += fetch;
            l1_hits += l1h;
            // The first operand seeds the accumulator (seed: None), its op
            // is ignored; the second applies the fixed operator.
            let applied = if inputs.is_empty() { BinOp::Add } else { op };
            inputs.push(StepInput { op: applied, operand });
        }
        let id = SubId(steps.len() as u32);
        let step = Step { id, node: exec, seed: None, inputs, store, waits: Vec::new(), tag };
        self.pending_loads.push((exec, step_load(&step, self.div_factor())));
        steps.push(step);
        Emitted { operand: Operand::Temp(id), node: exec, movement, l1_hits }
    }

    /// The operand contributed by plan vertex `v` to a step executing at
    /// `exec`: `(fold op, operand, movement, planned L1 hits)`.
    fn vertex_operand(
        &mut self,
        steps: &mut Vec<Step>,
        plan: &GroupPlan,
        v: usize,
        exec: NodeId,
        tag: StmtTag,
        force: Option<NodeId>,
    ) -> (BinOp, Operand, u64, u32) {
        match &plan.nodes[v] {
            PlanNode::Leaf { op, info } => {
                let (src, l1h) = self.fetch_source(info, exec);
                self.pending_touches.push((exec, info.elem.line));
                (*op, Operand::Elem(info.elem), u64::from(src.manhattan(exec)), l1h)
            }
            PlanNode::Sub { op, plan: sub } => {
                let e = self.emit_group(steps, sub, exec, None, tag, force);
                if let Operand::Elem(el) = e.operand {
                    // Pass-through element: `e.node` is its replica nearest
                    // to us. A local replica (our own L1 copy, or we are the
                    // home/primary) costs nothing; otherwise the fetch comes
                    // over the network from the believed primary source.
                    let (src, hit) = if e.node == exec {
                        (exec, u32::from(el.believed != exec))
                    } else {
                        (el.believed, 0)
                    };
                    self.pending_touches.push((exec, el.line));
                    (*op, e.operand, e.movement + u64::from(src.manhattan(exec)), e.l1_hits + hit)
                } else {
                    (*op, e.operand, e.movement + u64::from(e.node.manhattan(exec)), e.l1_hits)
                }
            }
            PlanNode::Const { op, value } => (*op, Operand::Const(*value), 0, 0),
        }
    }

    /// Where a leaf's data actually comes from when consumed at `exec`.
    /// L1 copies are private: they only help when `exec` itself holds the
    /// line; otherwise the fetch goes over the network from the believed
    /// primary source (or is free if `exec` *is* the primary).
    fn fetch_source(&self, info: &LeafInfo, exec: NodeId) -> (NodeId, u32) {
        if info.l1_candidates.contains(&exec)
            || (self.opts.reuse_aware && self.l1_persist.holds(exec, info.elem.line))
        {
            (exec, 1)
        } else {
            (info.primary, 0)
        }
    }

    /// Chooses the concrete node for a step-emitting MST vertex: candidates
    /// are tried in order of distance from `anchor`; an overloaded node is
    /// skipped in favour of the next one (paper Section 4.5), falling back
    /// to the least-loaded candidate when all would overload.
    /// Where location-free operands (constants and constants-only
    /// subgroups) anchor: the origin tile, or the live node nearest it on
    /// a degraded machine. Anchor locations can become execution sites,
    /// so the anchor must be somewhere a step may actually run.
    fn const_anchor(&self) -> NodeId {
        let origin = NodeId::new(0, 0);
        match self.layout.live_nodes() {
            None => origin,
            Some(live) => live
                .iter()
                .copied()
                .min_by_key(|n| (n.manhattan(origin), *n))
                .expect("degraded layouts keep at least one live node"),
        }
    }

    fn choose_node(&mut self, vertex: &MstVertex, anchor: NodeId, cost: f64) -> NodeId {
        // Candidates: every mesh node, ordered by the true movement cost of
        // executing the subcomputation there — fetching the vertex's datum
        // from its nearest replica plus forwarding the result toward the
        // anchor. Data-local sites come first; the balance rule walks down
        // the list ("skips this node and moves to the next one",
        // Section 4.5), trading bounded extra links for balance.
        let mesh = self.layout.machine().mesh;
        // Ties on total cost break toward the smaller *fetch* leg: every
        // node on the data→anchor path has the same total, but near-data
        // processing wants the subcomputation at the data.
        // Under degraded mode dead nodes are excluded outright — a step may
        // never execute there. On a healthy machine the filter passes every
        // node, leaving the candidate order untouched.
        let mut cands: Vec<(u32, u32, NodeId)> = mesh
            .nodes()
            .filter(|&n| self.layout.is_live(n))
            .map(|n| {
                let fetch = vertex
                    .locs
                    .iter()
                    .map(|&l| l.manhattan(n))
                    .min()
                    .expect("vertex has locations");
                (fetch + n.manhattan(anchor), fetch, n)
            })
            .collect();
        cands.sort_unstable();
        let best = cands[0].0;
        // Only consider detours of up to 3 extra links — beyond that the
        // movement penalty outweighs balance.
        let list: Vec<NodeId> =
            cands.iter().take_while(|&&(c, _, _)| c <= best + 3).map(|&(_, _, n)| n).collect();
        let chosen = self.loads.select(&list, cost);
        self.pending_loads.push((chosen, cost));
        chosen
    }

    fn div_factor(&self) -> f64 {
        self.layout.machine().latency.div_factor
    }
}

/// Load-units of one step: its ALU cost plus an estimated service time for
/// its operand fetches (the balance rule must see fetch-dominated reality,
/// not just op counts).
fn step_load(step: &Step, div_factor: f64) -> f64 {
    let elems = step.inputs.iter().filter(|i| matches!(i.operand, Operand::Elem(_))).count() as f64;
    step.op_cost(div_factor) + 12.0 * elems + 4.0
}

/// Rough op-cost estimate of the step a vertex will emit (for the balance
/// rule, before the step is actually built).
fn cost_estimate(plan: &GroupPlan, v: usize) -> f64 {
    match &plan.nodes.get(v) {
        Some(PlanNode::Leaf { op, .. })
        | Some(PlanNode::Sub { op, .. })
        | Some(PlanNode::Const { op, .. }) => op.cost(10.0) + 16.0,
        None => 16.0, // the synthetic store vertex
    }
}

/// `const_anchor` is the site location-free operands (constants,
/// constants-only subgroups) are anchored at: the origin tile on a
/// healthy machine, the live node nearest the origin on a degraded one —
/// anchor locations can become execution sites, so a dead anchor would
/// leak dead nodes into the schedule.
fn plan_vertex(node: &PlanNode, const_anchor: NodeId) -> MstVertex {
    match node {
        PlanNode::Leaf { info, .. } => MstVertex::multi(info.candidates.clone()),
        PlanNode::Sub { plan, .. } => {
            let mut locs: Vec<NodeId> =
                plan.vertices.iter().flat_map(|v| v.locs.iter().copied()).collect();
            locs.sort();
            locs.dedup();
            if locs.is_empty() {
                // A constants-only subgroup has no location; it can be
                // computed anywhere.
                locs.push(const_anchor);
            }
            MstVertex::multi(locs)
        }
        PlanNode::Const { .. } => MstVertex::single(const_anchor),
    }
}

/// Degree of subcomputation parallelism of one statement (Figure 14): the
/// widest antichain of its step DAG, counting *distinct nodes* per level —
/// two subcomputations on the same node serialize and are not parallel.
fn dag_width(stmt_steps: &[Step], first_id: u32) -> u32 {
    if stmt_steps.is_empty() {
        return 0;
    }
    let mut level = vec![0u32; stmt_steps.len()];
    let mut width: std::collections::HashMap<u32, std::collections::HashSet<NodeId>> =
        std::collections::HashMap::new();
    for (k, s) in stmt_steps.iter().enumerate() {
        let mut lvl = 0;
        for input in &s.inputs {
            if let Operand::Temp(t) = input.operand {
                if t.0 >= first_id {
                    lvl = lvl.max(level[(t.0 - first_id) as usize] + 1);
                }
            }
        }
        level[k] = lvl;
        width.entry(lvl).or_default().insert(s.node);
    }
    width.values().map(|nodes| nodes.len() as u32).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::step::Schedule;
    use dmcp_ir::exec::run_sequential;
    use dmcp_ir::ProgramBuilder;
    use dmcp_mach::MachineConfig;
    use dmcp_mem::page::PagePolicy;

    fn plan_program(stmts: &[&str], opts: PlanOptions) -> (Program, Schedule, Vec<StmtRecord>) {
        let mut b = ProgramBuilder::new();
        for n in ["A", "B", "C", "D", "E", "X", "Y", "Z"] {
            b.array(n, &[64], 8);
        }
        b.nest(&[("i", 0, 16)], stmts).unwrap();
        let program = b.build();
        let machine = MachineConfig::knl_like();
        let layout = Layout::new(&machine, &program, PagePolicy::ColorPreserving);
        let data = program.initial_data();
        let mut planner = Planner::new(&program, &layout, &data, HitPredictor::AlwaysHit, opts);
        let mesh = machine.mesh;
        let mut steps = Vec::new();
        let mut records = Vec::new();
        let nest = &program.nests()[0];
        for (it, iter) in nest.iterations().enumerate() {
            for (si, stmt) in nest.body.iter().enumerate() {
                let tag = StmtTag {
                    nest: 0,
                    stmt: si as u32,
                    instance: (it * nest.body.len() + si) as u64,
                };
                let core = mesh.bank_node(it as u32 % mesh.node_count());
                records.push(planner.plan_statement(&mut steps, tag, stmt, &iter, core, false));
            }
        }
        (program, Schedule { steps }, records)
    }

    fn check_correct(program: &Program, sched: &Schedule) {
        sched.validate().unwrap();
        let mut got = program.initial_data();
        sched.execute_values(&mut got);
        let mut want = program.initial_data();
        run_sequential(program, &mut want);
        // Reordered division chains are only equal up to rounding.
        assert!(got.approx_eq(&want, 1e-12), "schedule values diverge from reference");
    }

    #[test]
    fn schedules_validate_and_compute_correct_values() {
        let (program, sched, _) = plan_program(
            &[
                "A[i] = B[i] + C[i] + D[i] + E[i]",
                "X[i] = Y[i] + C[i]",
                "Z[i] = B[i] * (C[i] + D[i]) - E[i] / 2",
            ],
            PlanOptions::default(),
        );
        check_correct(&program, &sched);
    }

    #[test]
    fn cold_instances_respect_the_mst_bound() {
        // On a cold machine (no residency credit anywhere, no balance
        // spill pressure yet) the realized plan equals the MST, which can
        // never exceed the default star through the assigned core.
        let opts = PlanOptions { reuse_aware: false, ..PlanOptions::default() };
        let (_, _, records) = plan_program(&["A[i] = B[i] + C[i] + D[i] + E[i]"], opts);
        let first = &records[0];
        assert!(
            first.movement_opt <= first.movement_default,
            "cold instance: opt {} > default {}",
            first.movement_opt,
            first.movement_default
        );
    }

    #[test]
    fn long_statements_split_into_multiple_steps() {
        let (_, sched, records) = plan_program(
            &["A[i] = B[i] + C[i] + D[i] + E[i] + X[i] + Y[i]"],
            PlanOptions::default(),
        );
        assert!(records.iter().any(|r| r.step_count >= 2), "no statement split");
        assert!(sched.len() >= 16);
    }

    #[test]
    fn parallelism_reported_for_independent_subgroups() {
        // Three independent parenthesised groups can run in parallel.
        let (_, _, records) = plan_program(
            &["A[i] = (B[i] + C[i]) * (D[i] + E[i]) + (X[i] - Y[i])"],
            PlanOptions::default(),
        );
        let max_par = records.iter().map(|r| r.parallelism).max().unwrap();
        assert!(max_par >= 2, "expected parallel subcomputations, got {max_par}");
    }

    #[test]
    fn parenthesised_statements_stay_correct() {
        let (program, sched, _) = plan_program(
            &["A[i] = B[i] * (C[i] + D[i] + E[i])", "X[i] = (Y[i] - Z[i]) * (B[i] + 1)"],
            PlanOptions::default(),
        );
        check_correct(&program, &sched);
    }

    #[test]
    fn division_and_subtraction_chains_stay_correct() {
        let (program, sched, _) = plan_program(
            &["A[i] = B[i] - C[i] - D[i] + E[i]", "X[i] = B[i] / C[i] / 2"],
            PlanOptions::default(),
        );
        check_correct(&program, &sched);
    }

    #[test]
    fn shifts_preserve_order() {
        let (program, sched, _) = plan_program(
            &["A[i] = B[i] << 2", "X[i] = Y[i] >> 1", "Z[i] = (B[i] + C[i]) << 1"],
            PlanOptions::default(),
        );
        check_correct(&program, &sched);
    }

    #[test]
    fn deep_nesting_stays_correct() {
        let (program, sched, _) = plan_program(
            &["A[i] = ((B[i] + C[i]) * (D[i] - 1) + X[i]) / (Y[i] + Z[i] + 1)"],
            PlanOptions::default(),
        );
        check_correct(&program, &sched);
    }

    #[test]
    fn const_only_statement_stores() {
        let (program, sched, _) = plan_program(&["A[i] = 7"], PlanOptions::default());
        let mut got = program.initial_data();
        sched.execute_values(&mut got);
        assert_eq!(got.get(dmcp_ir::ArrayId::from_index(0), 3), 7.0);
    }

    #[test]
    fn fallback_executes_on_assigned_core() {
        let mut b = ProgramBuilder::new();
        b.array("X", &[64], 8);
        b.array("Y", &[64], 8);
        b.array("Z", &[64], 8);
        b.nest(&[("i", 0, 4)], &["X[Y[i]] = Z[i] + 1"]).unwrap();
        let program = b.build();
        let machine = MachineConfig::knl_like();
        let layout = Layout::new(&machine, &program, PagePolicy::ColorPreserving);
        let data = program.initial_data();
        let mut planner =
            Planner::new(&program, &layout, &data, HitPredictor::AlwaysHit, PlanOptions::default());
        let core = NodeId::new(3, 2);
        let mut steps = Vec::new();
        let stmt = &program.nests()[0].body[0];
        let rec = planner.plan_statement(&mut steps, StmtTag::default(), stmt, &[0], core, false);
        assert!(rec.fallback);
        assert!(steps.iter().all(|s| s.node == core), "fallback steps must stay on the core");
        assert_eq!(rec.movement_opt, rec.movement_default);
    }

    #[test]
    fn force_default_mimics_baseline() {
        let mut b = ProgramBuilder::new();
        for n in ["A", "B", "C"] {
            b.array(n, &[64], 8);
        }
        b.nest(&[("i", 0, 4)], &["A[i] = B[i] + C[i]"]).unwrap();
        let program = b.build();
        let machine = MachineConfig::knl_like();
        let layout = Layout::new(&machine, &program, PagePolicy::ColorPreserving);
        let data = program.initial_data();
        let mut planner =
            Planner::new(&program, &layout, &data, HitPredictor::AlwaysHit, PlanOptions::default());
        let core = NodeId::new(4, 4);
        let mut steps = Vec::new();
        let stmt = &program.nests()[0].body[0];
        let rec = planner.plan_statement(&mut steps, StmtTag::default(), stmt, &[1], core, true);
        assert!(steps.iter().all(|s| s.node == core));
        assert_eq!(rec.movement_opt, rec.movement_default);
    }

    #[test]
    fn reuse_produces_planned_l1_hits() {
        // C[i] is shared by both statements: with reuse awareness the second
        // statement should sometimes find it in an L1.
        let (_, _, records) = plan_program(
            &["A[i] = B[i] + C[i] + D[i] + E[i]", "X[i] = Y[i] + C[i]"],
            PlanOptions::default(),
        );
        let hits: u32 = records.iter().map(|r| r.planned_l1_hits).sum();
        assert!(hits > 0, "no planned L1 reuse found");
    }

    #[test]
    fn remapped_ops_counted() {
        let (_, _, records) =
            plan_program(&["A[i] = B[i] * C[i] + D[i] / E[i] + X[i]"], PlanOptions::default());
        let mut mix = OpMix::default();
        for r in &records {
            mix.merge(r.remapped);
        }
        assert!(mix.total() > 0, "nothing was re-mapped");
        assert!(mix.mul_div > 0, "expected re-mapped mul/div ops: {mix:?}");
    }
    #[test]
    fn steiner_relays_lower_movement_and_stay_correct() {
        // With relays on, planned movement can only drop (the guard keeps
        // the plain MST on ties/losses) and values must stay bit-equal to
        // the reference interpreter.
        let stmts =
            &["A[i] = B[i] + C[i] + D[i] + E[i]", "X[i] = Y[i] + Z[i] + B[i] + D[i] + E[i]"];
        let off = PlanOptions { steiner: false, reuse_aware: false, ..PlanOptions::default() };
        let on = PlanOptions { steiner: true, reuse_aware: false, ..PlanOptions::default() };
        let (_, _, rec_off) = plan_program(stmts, off);
        let (program, sched_on, rec_on) = plan_program(stmts, on);
        check_correct(&program, &sched_on);
        let m_off: u64 = rec_off.iter().map(|r| r.movement_opt).sum();
        let m_on: u64 = rec_on.iter().map(|r| r.movement_opt).sum();
        assert!(m_on <= m_off, "steiner movement {m_on} exceeds MST movement {m_off}");
        // Defaults are untouched by the augmentation.
        for (a, b) in rec_off.iter().zip(&rec_on) {
            assert_eq!(a.movement_default, b.movement_default);
        }
    }

    #[test]
    fn steiner_off_is_bit_identical_to_the_mst_planner() {
        let stmts = &["A[i] = B[i] + C[i] + D[i] + E[i]", "X[i] = Y[i] * C[i] * D[i]"];
        let legacy = PlanOptions { steiner: false, ..PlanOptions::default() };
        let (_, s1, r1) = plan_program(stmts, legacy);
        let (_, s2, r2) = plan_program(stmts, legacy);
        assert_eq!(s1.steps, s2.steps);
        assert_eq!(r1.len(), r2.len());
        for (a, b) in r1.iter().zip(&r2) {
            assert_eq!(a.movement_opt, b.movement_opt);
        }
    }

    #[test]
    fn const_only_subgroups_fold_without_panicking() {
        // Shrunken fuzz counterexamples: a constants-only subexpression
        // nested inside another group used to hit the statement-level
        // store expectation and panic. It must fold to a compile-time
        // constant instead.
        let (program, sched, _) = plan_program(
            &["A[i] = (2 + 3) & 63", "X[i] = (2 * 3) - B[i]", "Y[i] = (1 + 1) << 2"],
            PlanOptions::default(),
        );
        check_correct(&program, &sched);
    }
}
