//! The compiler's model of L1 contents: the `variable2node` map.
//!
//! When a subcomputation is scheduled onto a node, the data it consumed sits
//! in that node's L1 afterwards; later statements in the same window may
//! exploit this (paper Section 4.3, "multiple statements"). The map is
//! capacity-bounded per node (LRU), which is how the window-size search sees
//! L1 *pollution*: in an oversized window, a reuse candidate may already
//! have been evicted by the time the consumer is scheduled (Section 4.4).

use dmcp_mach::NodeId;
use dmcp_mem::LineAddr;
use std::collections::HashMap;

/// Compile-time per-node L1 occupancy plus the line→holders reverse map.
#[derive(Clone, Debug)]
pub struct L1Model {
    /// L1 capacity per node, in lines.
    capacity: usize,
    /// Per-node LRU list, most recently used last.
    node_lru: HashMap<NodeId, Vec<LineAddr>>,
    /// line → nodes believed to hold it in L1 (the `variable2node` map).
    holders: HashMap<LineAddr, Vec<NodeId>>,
    /// line → total touches (distinguishes hot loop-invariant lines from
    /// streaming ones).
    touches: HashMap<LineAddr, u32>,
}

impl L1Model {
    /// Creates an empty model with the given per-node capacity in lines.
    pub fn new(capacity_lines: u32) -> Self {
        Self {
            capacity: capacity_lines.max(1) as usize,
            node_lru: HashMap::new(),
            holders: HashMap::new(),
            touches: HashMap::new(),
        }
    }

    /// Records that `node` fetched (or re-used) `line` into its L1,
    /// evicting its LRU line if full.
    pub fn touch(&mut self, node: NodeId, line: LineAddr) {
        *self.touches.entry(line).or_insert(0) += 1;
        let lru = self.node_lru.entry(node).or_default();
        if let Some(pos) = lru.iter().position(|&l| l == line) {
            lru.remove(pos);
            lru.push(line);
            return;
        }
        if lru.len() >= self.capacity {
            let victim = lru.remove(0);
            if let Some(hs) = self.holders.get_mut(&victim) {
                hs.retain(|&n| n != node);
                if hs.is_empty() {
                    self.holders.remove(&victim);
                }
            }
        }
        lru.push(line);
        self.holders.entry(line).or_default().push(node);
    }

    /// Nodes believed to hold `line` in their L1 (may be empty).
    pub fn holders(&self, line: LineAddr) -> &[NodeId] {
        self.holders.get(&line).map_or(&[], Vec::as_slice)
    }

    /// `true` if `node` is believed to hold `line`.
    pub fn holds(&self, node: NodeId, line: LineAddr) -> bool {
        self.holders(line).contains(&node)
    }

    /// Nodes holding `line` where the line is *hot* (touched at least
    /// `min_touches` times) — the register-promotion analogue: only lines
    /// with demonstrated heavy reuse count as durable replicas.
    pub fn hot_holders(&self, line: LineAddr, min_touches: u32) -> &[NodeId] {
        if self.touches.get(&line).copied().unwrap_or(0) >= min_touches {
            self.holders(line)
        } else {
            &[]
        }
    }

    /// Forgets everything (called at window boundaries: scheduling knowledge
    /// does not cross windows, per the paper's Figure 12c discussion).
    /// Touch counts survive (they describe the program, not the window).
    pub fn reset(&mut self) {
        self.node_lru.clear();
        self.holders.clear();
    }

    /// Total number of (line, node) residency facts currently tracked.
    pub fn fact_count(&self) -> usize {
        self.holders.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(x: u16, y: u16) -> NodeId {
        NodeId::new(x, y)
    }

    fn l(v: u64) -> LineAddr {
        LineAddr::new(v)
    }

    #[test]
    fn touch_registers_holder() {
        let mut m = L1Model::new(4);
        m.touch(n(1, 1), l(10));
        assert!(m.holds(n(1, 1), l(10)));
        assert_eq!(m.holders(l(10)), &[n(1, 1)]);
        assert!(!m.holds(n(0, 0), l(10)));
    }

    #[test]
    fn multiple_holders_tracked() {
        let mut m = L1Model::new(4);
        m.touch(n(0, 0), l(5));
        m.touch(n(1, 0), l(5));
        assert_eq!(m.holders(l(5)).len(), 2);
    }

    #[test]
    fn capacity_evicts_lru() {
        let mut m = L1Model::new(2);
        m.touch(n(0, 0), l(1));
        m.touch(n(0, 0), l(2));
        m.touch(n(0, 0), l(3)); // evicts 1
        assert!(!m.holds(n(0, 0), l(1)));
        assert!(m.holds(n(0, 0), l(2)));
        assert!(m.holds(n(0, 0), l(3)));
    }

    #[test]
    fn retouch_refreshes_lru_position() {
        let mut m = L1Model::new(2);
        m.touch(n(0, 0), l(1));
        m.touch(n(0, 0), l(2));
        m.touch(n(0, 0), l(1)); // 2 is now LRU
        m.touch(n(0, 0), l(3)); // evicts 2
        assert!(m.holds(n(0, 0), l(1)));
        assert!(!m.holds(n(0, 0), l(2)));
    }

    #[test]
    fn eviction_is_per_node() {
        let mut m = L1Model::new(1);
        m.touch(n(0, 0), l(1));
        m.touch(n(1, 1), l(1));
        m.touch(n(0, 0), l(2)); // evicts line 1 from node (0,0) only
        assert_eq!(m.holders(l(1)), &[n(1, 1)]);
    }

    #[test]
    fn hot_holders_require_repeated_touches() {
        let mut m = L1Model::new(4);
        m.touch(n(0, 0), l(1));
        assert!(m.hot_holders(l(1), 4).is_empty(), "one touch is not hot");
        for _ in 0..3 {
            m.touch(n(0, 0), l(1));
        }
        assert_eq!(m.hot_holders(l(1), 4), &[n(0, 0)]);
        // Touch counts survive a window reset; holders do not.
        m.reset();
        assert!(m.hot_holders(l(1), 4).is_empty());
        m.touch(n(2, 2), l(1));
        assert_eq!(m.hot_holders(l(1), 4), &[n(2, 2)]);
    }

    #[test]
    fn reset_clears_facts() {
        let mut m = L1Model::new(4);
        m.touch(n(0, 0), l(1));
        m.touch(n(1, 0), l(2));
        assert_eq!(m.fact_count(), 2);
        m.reset();
        assert_eq!(m.fact_count(), 0);
        assert!(m.holders(l(1)).is_empty());
    }
}
