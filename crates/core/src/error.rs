//! Typed errors for the partitioning pipeline.
//!
//! The happy-path API ([`crate::Partitioner::partition`]) keeps its
//! infallible signature — on a healthy machine with a valid configuration
//! there is nothing to report. Degraded-mode entry points
//! ([`crate::Partitioner::new_degraded`],
//! [`crate::Partitioner::try_partition`]) return these instead of
//! asserting, so a caller sweeping fault scenarios can observe *why* a
//! configuration is unschedulable rather than crash.

use dmcp_mach::{FaultError, NodeId};
use std::fmt;

/// Errors constructing or running a partitioner.
#[derive(Clone, Debug, PartialEq)]
pub enum PartitionError {
    /// The fault plan failed validation against the machine's mesh.
    Fault(FaultError),
    /// The partitioner configuration is unusable.
    InvalidConfig(String),
    /// The iteration→core assignment names a node the fault plan killed.
    DeadAssignment(NodeId),
    /// A planned step landed on a dead node — an internal invariant
    /// violation surfaced instead of silently emitting an unrunnable
    /// schedule.
    DeadNodeInSchedule {
        /// Index of the offending nest.
        nest: usize,
        /// The dead node the step was placed on.
        node: NodeId,
    },
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::Fault(e) => write!(f, "invalid fault plan: {e}"),
            PartitionError::InvalidConfig(why) => write!(f, "invalid configuration: {why}"),
            PartitionError::DeadAssignment(n) => {
                write!(f, "iteration assignment places work on dead node {n}")
            }
            PartitionError::DeadNodeInSchedule { nest, node } => {
                write!(f, "nest {nest} scheduled a step on dead node {node}")
            }
        }
    }
}

impl std::error::Error for PartitionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PartitionError::Fault(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FaultError> for PartitionError {
    fn from(e: FaultError) -> Self {
        PartitionError::Fault(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = PartitionError::DeadNodeInSchedule { nest: 2, node: NodeId::new(1, 1) };
        assert!(e.to_string().contains("nest 2"));
        assert!(e.to_string().contains("(1,1)"));
        let e: PartitionError = FaultError::NoLiveNodes.into();
        assert!(e.to_string().contains("invalid fault plan"));
    }
}
