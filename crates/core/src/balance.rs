//! Load balancing across nodes (paper Section 4.5).
//!
//! The scheduler assigns a subcomputation to a node only if the node (1)
//! satisfies the minimum-data-movement requirement and (2) keeps the load
//! balanced: if the assignment would give the node more than `threshold`
//! (10 % by default, configurable) extra load compared to the next
//! most-loaded node, the scheduler skips it and tries the next candidate.
//! Subcomputation cost is measured in operations, division counting 10×.

use dmcp_mach::NodeId;
use std::collections::HashMap;

/// Tracks per-node accumulated load and applies the skip rule.
#[derive(Clone, Debug)]
pub struct LoadTracker {
    threshold: f64,
    loads: HashMap<NodeId, f64>,
    max_load: f64,
}

impl LoadTracker {
    /// Creates a tracker with the given imbalance threshold (the paper's
    /// default is `0.10`).
    pub fn new(threshold: f64) -> Self {
        assert!(threshold >= 0.0, "threshold must be non-negative");
        Self { threshold, loads: HashMap::new(), max_load: 0.0 }
    }

    /// Current load of a node.
    pub fn load(&self, node: NodeId) -> f64 {
        self.loads.get(&node).copied().unwrap_or(0.0)
    }

    /// Adds `cost` to a node's load.
    pub fn add(&mut self, node: NodeId, cost: f64) {
        let l = self.loads.entry(node).or_insert(0.0);
        *l += cost;
        if *l > self.max_load {
            self.max_load = *l;
        }
    }

    /// Whether assigning `cost` more work to `node` would violate the
    /// balance rule: the node would end up more than `threshold` above the
    /// most-loaded *other* node.
    pub fn would_overload(&self, node: NodeId, cost: f64) -> bool {
        let own = self.load(node);
        // The most-loaded other node: max_load unless `node` itself is the
        // unique maximum, in which case we fall back to a scan.
        let max_other = if own < self.max_load {
            self.max_load
        } else {
            self.loads.iter().filter(|(&n, _)| n != node).map(|(_, &l)| l).fold(0.0, f64::max)
        };
        own + cost > (1.0 + self.threshold) * max_other + f64::EPSILON && own > 0.0
        // an idle node can always accept work
    }

    /// Chooses the first candidate that doesn't overload; if all would
    /// overload, the least-loaded candidate. Does not record the load —
    /// callers apply it (possibly deferred) via [`LoadTracker::add`].
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty.
    pub fn select(&self, candidates: &[NodeId], cost: f64) -> NodeId {
        assert!(!candidates.is_empty(), "need at least one candidate node");
        candidates.iter().copied().find(|&n| !self.would_overload(n, cost)).unwrap_or_else(|| {
            candidates
                .iter()
                .copied()
                .min_by(|a, b| {
                    self.load(*a)
                        .partial_cmp(&self.load(*b))
                        .expect("loads are finite")
                        .then(a.cmp(b))
                })
                .expect("non-empty candidates")
        })
    }

    /// [`LoadTracker::select`] followed by recording the cost.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty.
    pub fn pick(&mut self, candidates: &[NodeId], cost: f64) -> NodeId {
        let chosen = self.select(candidates, cost);
        self.add(chosen, cost);
        chosen
    }

    /// Ratio of the maximum node load to the mean node load over `nodes`
    /// (1.0 = perfectly balanced). Nodes with no recorded load count as 0.
    pub fn imbalance(&self, nodes: impl Iterator<Item = NodeId>) -> f64 {
        let loads: Vec<f64> = nodes.map(|n| self.load(n)).collect();
        let total: f64 = loads.iter().sum();
        if total == 0.0 || loads.is_empty() {
            return 1.0;
        }
        let mean = total / loads.len() as f64;
        loads.iter().fold(0.0, |a, &b| f64::max(a, b)) / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(x: u16) -> NodeId {
        NodeId::new(x, 0)
    }

    #[test]
    fn empty_tracker_never_overloads() {
        let t = LoadTracker::new(0.1);
        assert!(!t.would_overload(n(0), 100.0));
    }

    #[test]
    fn overload_detected_beyond_threshold() {
        let mut t = LoadTracker::new(0.1);
        t.add(n(0), 100.0);
        t.add(n(1), 100.0);
        // Adding 20 to node 0 -> 120 > 1.1 * 100.
        assert!(t.would_overload(n(0), 20.0));
        // Adding 5 -> 105 <= 110: fine.
        assert!(!t.would_overload(n(0), 5.0));
    }

    #[test]
    fn pick_prefers_first_balanced_candidate() {
        let mut t = LoadTracker::new(0.1);
        t.add(n(0), 100.0);
        t.add(n(1), 100.0);
        // node 0 would overload with 20, node 1 is checked next… also
        // overloads, node 2 is fresh relative to max 100: 0+20 <= 110.
        let winner = t.pick(&[n(0), n(1), n(2)], 20.0);
        assert_eq!(winner, n(2));
        assert_eq!(t.load(n(2)), 20.0);
    }

    #[test]
    fn pick_falls_back_to_least_loaded() {
        let mut t = LoadTracker::new(0.0);
        t.add(n(0), 50.0);
        t.add(n(1), 30.0);
        // Huge cost overloads everyone; least-loaded candidate wins.
        let winner = t.pick(&[n(0), n(1)], 1000.0);
        assert_eq!(winner, n(1));
    }

    #[test]
    fn spreads_work_under_zero_threshold() {
        let mut t = LoadTracker::new(0.0);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..30 {
            let w = t.pick(&[n(0), n(1), n(2)], 1.0);
            *counts.entry(w).or_insert(0u32) += 1;
        }
        assert_eq!(counts.len(), 3, "work should spread over all candidates");
        let max = counts.values().max().copied().unwrap();
        let min = counts.values().min().copied().unwrap();
        assert!(max - min <= 1, "counts {counts:?} not balanced");
    }

    #[test]
    fn imbalance_metric() {
        let mut t = LoadTracker::new(0.1);
        t.add(n(0), 30.0);
        t.add(n(1), 10.0);
        let imb = t.imbalance([n(0), n(1)].into_iter());
        assert!((imb - 1.5).abs() < 1e-12);
        let t2 = LoadTracker::new(0.1);
        assert_eq!(t2.imbalance([n(0)].into_iter()), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn pick_requires_candidates() {
        let mut t = LoadTracker::new(0.1);
        let _ = t.pick(&[], 1.0);
    }
}
