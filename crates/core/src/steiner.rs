//! The Steiner relay placement pass (DESIGN.md §16).
//!
//! The paper's planner pays MST-weight movement per statement, but the
//! exact group-Steiner minimum is strictly lower whenever a relay node
//! helps — a junction tile that holds no operand can still combine
//! partial results closer to where they are produced. This pass promotes
//! the Steiner construction from the `dmcp-check` oracle into the
//! planner itself:
//!
//! * per statement, the [`crate::split::Planner`] (with
//!   [`PlanOptions::steiner`] on) augments the outermost tree with relay
//!   vertices from [`dmcp_mach::graph::steiner_relays_sets`] — exact
//!   Dreyfus–Wagner junctions for terminal sets of ≤
//!   [`dmcp_mach::graph::EXACT_SET_LIMIT`], a 2-approx via
//!   MST-on-metric-closure with path shortcutting above that — and keeps
//!   them only when the pruned relayed tree is *strictly* cheaper than
//!   the plain MST;
//! * per nest, this pass places the nest both ways and keeps the relayed
//!   plan only when its predicted *post-split* movement is strictly
//!   lower. The split decision ([`crate::pipeline::SplitPass`]) judges
//!   warm movement and can replace a plan with default execution, so a
//!   gate on raw planned movement alone could regress through the
//!   replan; simulating the split outcome on both candidates makes the
//!   guarantee end-to-end.
//!
//! Both guards follow the measured-movement style of DESIGN.md §7 (item
//! 6): when Steiner does not strictly win, the pass is a bit-identical
//! no-op, so healthy and degraded plans only ever improve. On degraded
//! machines relay candidates are restricted to live nodes, so a relay
//! step can always execute.

use crate::pipeline::{Pass, PlanCtx};
use crate::split::PlanOptions;
use crate::window::NestPlan;

/// Pass 3: Steiner relay placement, between the window search and the
/// plain placement pass. A no-op when the config disables it
/// (`opts.steiner = false`) or when generating baselines
/// (`force_default`); otherwise every nest is placed here and
/// [`crate::pipeline::PlacePass`] has nothing left to do.
pub struct SteinerPass;

impl Pass for SteinerPass {
    fn name(&self) -> &'static str {
        "steiner"
    }

    fn run(&self, ctx: &mut PlanCtx) {
        if ctx.force_default || !ctx.config.opts.steiner {
            return;
        }
        let pairs: Vec<(NestPlan, NestPlan)> = {
            let c: &PlanCtx = ctx;
            c.pool.run(c.nests.len(), |pos| {
                let w = c.nests[pos].window.expect("window decided before steiner");
                let mst = PlanOptions { steiner: false, ..c.config.opts };
                let relayed = PlanOptions { steiner: true, ..c.config.opts };
                (c.place_opts(pos, w, None, false, mst), c.place_opts(pos, w, None, false, relayed))
            })
        };
        let threshold = ctx.config.opts.split_threshold;
        for (nc, (mst, relayed)) in ctx.nests.iter_mut().zip(pairs) {
            let winner = if final_movement(&relayed, threshold) < final_movement(&mst, threshold) {
                relayed
            } else {
                mst
            };
            nc.plan = Some(winner);
        }
    }
}

/// The nest's planned movement *after* the split decision: the split
/// pass replaces a flagged plan (warm planned movement not clearly below
/// default) with a default re-plan, whose movement is the default
/// estimate — which is identical across placement modes, since default
/// accounting never depends on placement choices.
fn final_movement(plan: &NestPlan, split_threshold: f64) -> u64 {
    let (warm_opt, warm_def) = plan.stats.warm_movement();
    if warm_opt as f64 > split_threshold * warm_def as f64 {
        plan.stats.movement_default
    } else {
        plan.stats.movement_opt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitioner::{PartitionConfig, Partitioner};
    use crate::pipeline::passes;
    use dmcp_ir::ProgramBuilder;
    use dmcp_mach::MachineConfig;
    use dmcp_pool::Pool;

    fn program() -> dmcp_ir::program::Program {
        let mut b = ProgramBuilder::new();
        for n in ["A", "B", "C", "D", "E", "X", "Y"] {
            b.array(n, &[256], 8);
        }
        b.nest(&[("i", 0, 48)], &["A[i] = B[i] + C[i] + D[i] + E[i]", "X[i] = Y[i] + C[i] + E[i]"])
            .unwrap();
        b.build()
    }

    fn total_movement(cfg: PartitionConfig) -> u64 {
        let p = program();
        let machine = MachineConfig::knl_like();
        let part = Partitioner::new(&machine, &p, cfg);
        let data = p.initial_data();
        let out = part.partition_with_data_pooled(&p, &data, &Pool::single());
        out.nests.iter().map(|n| n.stats.movement_opt).sum()
    }

    #[test]
    fn steiner_pass_never_regresses_total_movement() {
        let off = PartitionConfig {
            opts: PlanOptions { steiner: false, ..PlanOptions::default() },
            ..PartitionConfig::default()
        };
        let on = PartitionConfig {
            opts: PlanOptions { steiner: true, ..PlanOptions::default() },
            ..PartitionConfig::default()
        };
        assert!(total_movement(on) <= total_movement(off));
    }

    #[test]
    fn steiner_pass_is_inert_when_disabled_or_forced() {
        let p = program();
        let machine = MachineConfig::knl_like();
        let cfg = PartitionConfig {
            opts: PlanOptions { steiner: false, ..PlanOptions::default() },
            ..PartitionConfig::default()
        };
        let part = Partitioner::new(&machine, &p, cfg);
        let data = p.initial_data();
        let pool = Pool::single();
        let mut ctx = PlanCtx::new(&part, &p, &data, &pool, false, &[2]);
        passes()[0].run(&mut ctx); // analyze
        SteinerPass.run(&mut ctx);
        assert!(ctx.nests.iter().all(|n| n.plan.is_none()), "disabled steiner pass must not place");

        let part = Partitioner::new(&machine, &p, PartitionConfig::default());
        let mut ctx = PlanCtx::new(&part, &p, &data, &pool, true, &[]);
        passes()[0].run(&mut ctx);
        SteinerPass.run(&mut ctx);
        assert!(
            ctx.nests.iter().all(|n| n.plan.is_none()),
            "force_default steiner pass must not place"
        );
    }

    #[test]
    fn steiner_pass_places_every_nest_when_enabled() {
        let p = program();
        let machine = MachineConfig::knl_like();
        let part = Partitioner::new(&machine, &p, PartitionConfig::default());
        let data = p.initial_data();
        let pool = Pool::single();
        let mut ctx = PlanCtx::new(&part, &p, &data, &pool, false, &[2]);
        passes()[0].run(&mut ctx);
        SteinerPass.run(&mut ctx);
        assert!(ctx.nests.iter().all(|n| n.plan.is_some()));
    }
}
