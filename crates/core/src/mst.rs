//! Minimum-spanning-tree machinery (paper Section 3.2).
//!
//! For each statement (or nested operand set), the compiler builds a
//! complete graph whose vertices are the *locations of operands* and whose
//! edge weights are Manhattan distances, then extracts an MST with Kruskal's
//! algorithm; the MST's total weight is the minimum number of network links
//! the statement's data must traverse.
//!
//! A vertex may have several candidate locations (its home bank *plus* L1
//! copies recorded in the `variable2node` map, or all the nodes occupied by
//! an already-processed inner set, which the paper treats as a "single
//! component"). The distance between two vertices is the minimum over their
//! candidate pairs.

use crate::unionfind::UnionFind;
use dmcp_mach::NodeId;

/// A vertex of the statement graph: one operand (or processed component)
/// with one or more candidate locations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MstVertex {
    /// Candidate nodes where the vertex's data is available. Non-empty.
    pub locs: Vec<NodeId>,
}

impl MstVertex {
    /// A vertex with a single location.
    pub fn single(node: NodeId) -> Self {
        Self { locs: vec![node] }
    }

    /// A vertex with several candidate locations (replicas).
    ///
    /// # Panics
    ///
    /// Panics if `locs` is empty.
    pub fn multi(locs: Vec<NodeId>) -> Self {
        assert!(!locs.is_empty(), "a vertex needs at least one location");
        Self { locs }
    }

    /// The candidate closest to `target` (deterministic tie-break on node
    /// order), with the distance.
    pub fn nearest_to(&self, target: NodeId) -> (NodeId, u32) {
        self.locs
            .iter()
            .map(|&n| (n, n.manhattan(target)))
            .min_by_key(|&(n, d)| (d, n))
            .expect("non-empty candidate set")
    }
}

/// Minimum distance between two vertices' candidate sets, with the
/// realising node pair `(node_in_a, node_in_b)`.
pub fn vertex_distance(a: &MstVertex, b: &MstVertex) -> (u32, NodeId, NodeId) {
    let mut best = (u32::MAX, NodeId::new(0, 0), NodeId::new(0, 0));
    for &na in &a.locs {
        for &nb in &b.locs {
            let d = na.manhattan(nb);
            if d < best.0 || (d == best.0 && (na, nb) < (best.1, best.2)) {
                best = (d, na, nb);
            }
        }
    }
    best
}

/// An edge of the computed MST.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MstEdge {
    /// First vertex index.
    pub a: usize,
    /// Second vertex index.
    pub b: usize,
    /// Manhattan distance realising the edge.
    pub weight: u32,
}

/// Computes an MST over the complete graph of `vertices` using Kruskal's
/// algorithm (paper Algorithm 1, lines 20–29). Edges are sorted by
/// (weight, a, b); the paper breaks weight ties randomly, we break them
/// deterministically for reproducibility.
///
/// Returns `vertices.len().saturating_sub(1)` edges.
///
/// # Examples
///
/// ```
/// use dmcp_core::mst::{kruskal, MstVertex};
/// use dmcp_mach::NodeId;
///
/// let vs = vec![
///     MstVertex::single(NodeId::new(0, 0)),
///     MstVertex::single(NodeId::new(0, 2)),
///     MstVertex::single(NodeId::new(3, 0)),
/// ];
/// let mst = kruskal(&vs);
/// let total: u32 = mst.iter().map(|e| e.weight).sum();
/// assert_eq!(total, 5); // 2 + 3
/// ```
pub fn kruskal(vertices: &[MstVertex]) -> Vec<MstEdge> {
    let n = vertices.len();
    if n < 2 {
        return Vec::new();
    }
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for a in 0..n {
        for b in (a + 1)..n {
            let (w, _, _) = vertex_distance(&vertices[a], &vertices[b]);
            edges.push(MstEdge { a, b, weight: w });
        }
    }
    edges.sort_by_key(|e| (e.weight, e.a, e.b));
    let mut uf = UnionFind::new(n);
    let mut mst = Vec::with_capacity(n - 1);
    for e in edges {
        if uf.union(e.a, e.b) {
            mst.push(e);
            if mst.len() == n - 1 {
                break;
            }
        }
    }
    mst
}

/// Removes relay (Steiner) vertices — indices `terminals..` — whose
/// removal does not increase the MST weight (dangling leaves, dead
/// pass-throughs), re-running Kruskal until the tree is stable, and
/// returns the compacted vertex list with its final MST.
///
/// Relay vertices are *candidates*: a Steiner junction only pays for
/// itself when it is an interior combining point that shortens the tree.
/// A relay the MST turns into a leaf adds a dangling edge (often
/// zero-weight, when the relay duplicates a terminal's location) that the
/// scheduling walk would try to read an operand from — relays carry no
/// operand — and `RootedTree::build` additionally assumes the edge list
/// spans a hole-free `0..n`. Pruning therefore deletes the vertex itself
/// and recomputes the MST, so indices stay compact and every surviving
/// relay strictly pays for its place in the tree.
///
/// Terminal vertices (`0..terminals`) are never removed and keep their
/// indices. The result spans (debug-asserted via [`UnionFind::spans`])
/// and weighs no more than the input MST.
pub fn prune_relays(
    mut vertices: Vec<MstVertex>,
    terminals: usize,
) -> (Vec<MstVertex>, Vec<MstEdge>) {
    loop {
        let edges = kruskal(&vertices);
        let weight: u64 = edges.iter().map(|e| u64::from(e.weight)).sum();
        // Drop the highest-indexed removable relay first so lower relay
        // indices stay valid for the next round.
        let removable = (terminals..vertices.len()).rev().find(|&v| {
            let mut cand = vertices.clone();
            cand.remove(v);
            let w: u64 = kruskal(&cand).iter().map(|e| u64::from(e.weight)).sum();
            w <= weight
        });
        match removable {
            Some(v) => {
                vertices.remove(v);
            }
            None => {
                debug_assert!(UnionFind::spans(vertices.len(), edges.iter().map(|e| (e.a, e.b))));
                return (vertices, edges);
            }
        }
    }
}

/// The MST rooted at a chosen vertex, ready for the leaf-to-root scheduling
/// walk.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RootedTree {
    /// Parent of each vertex (`None` for the root).
    pub parent: Vec<Option<usize>>,
    /// Children of each vertex.
    pub children: Vec<Vec<usize>>,
    /// Vertices in post-order (children before parents, root last).
    pub postorder: Vec<usize>,
}

impl RootedTree {
    /// Roots the MST `edges` over `n` vertices at `root`.
    ///
    /// # Panics
    ///
    /// Panics if the edges do not form a spanning tree of `0..n`.
    pub fn build(n: usize, edges: &[MstEdge], root: usize) -> Self {
        assert!(root < n, "root {root} out of range");
        let mut adj = vec![Vec::new(); n];
        for e in edges {
            adj[e.a].push(e.b);
            adj[e.b].push(e.a);
        }
        let mut parent = vec![None; n];
        let mut children = vec![Vec::new(); n];
        let mut postorder = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        // Iterative DFS emitting post-order.
        let mut stack = vec![(root, false)];
        while let Some((v, processed)) = stack.pop() {
            if processed {
                postorder.push(v);
                continue;
            }
            if visited[v] {
                continue;
            }
            visited[v] = true;
            stack.push((v, true));
            for &u in &adj[v] {
                if !visited[u] {
                    parent[u] = Some(v);
                    children[v].push(u);
                    stack.push((u, false));
                }
            }
        }
        assert!(visited.iter().all(|&v| v), "MST edges do not span all vertices");
        Self { parent, children, postorder }
    }

    /// `true` if `v` has no children (a leaf of the rooted tree).
    pub fn is_leaf(&self, v: usize) -> bool {
        self.children[v].is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: u16, y: u16) -> MstVertex {
        MstVertex::single(NodeId::new(x, y))
    }

    /// Brute-force MST weight via Prim's algorithm on singleton vertices.
    fn prim_weight(vertices: &[MstVertex]) -> u32 {
        let n = vertices.len();
        if n < 2 {
            return 0;
        }
        let mut in_tree = vec![false; n];
        in_tree[0] = true;
        let mut total = 0;
        for _ in 1..n {
            let mut best = (u32::MAX, 0);
            for a in 0..n {
                if !in_tree[a] {
                    continue;
                }
                for b in 0..n {
                    if in_tree[b] {
                        continue;
                    }
                    let (d, _, _) = vertex_distance(&vertices[a], &vertices[b]);
                    if d < best.0 {
                        best = (d, b);
                    }
                }
            }
            in_tree[best.1] = true;
            total += best.0;
        }
        total
    }

    #[test]
    fn paper_figure_9_example() {
        // A placement reproducing the paper's arithmetic: fetching all four
        // operands into n_A (the default star) costs 13 links, while the
        // MST costs 8 — B+E computed near B saves 2, C+D near D saves 3.
        let a = NodeId::new(0, 0);
        let b = NodeId::new(2, 0);
        let e = NodeId::new(4, 0);
        let d = NodeId::new(0, 3);
        let c = NodeId::new(1, 3);
        let vs: Vec<MstVertex> = [a, b, c, d, e].iter().map(|&n| MstVertex::single(n)).collect();
        let star: u32 = [b, c, d, e].iter().map(|n| n.manhattan(a)).sum();
        let mst: u32 = kruskal(&vs).iter().map(|e| e.weight).sum();
        assert_eq!(star, 13);
        assert_eq!(mst, 8);
    }

    #[test]
    fn kruskal_matches_prim_on_grids() {
        let vs = vec![v(0, 0), v(5, 1), v(2, 4), v(3, 3), v(1, 1), v(5, 5)];
        let k: u32 = kruskal(&vs).iter().map(|e| e.weight).sum();
        assert_eq!(k, prim_weight(&vs));
    }

    #[test]
    fn multi_location_vertices_use_nearest_replica() {
        // Vertex B has replicas at (0,0) and (4,4); vertex A at (5,4).
        let a = MstVertex::single(NodeId::new(5, 4));
        let b = MstVertex::multi(vec![NodeId::new(0, 0), NodeId::new(4, 4)]);
        let (d, na, nb) = vertex_distance(&a, &b);
        assert_eq!(d, 1);
        assert_eq!(na, NodeId::new(5, 4));
        assert_eq!(nb, NodeId::new(4, 4));
        let mst = kruskal(&[a, b]);
        assert_eq!(mst[0].weight, 1);
    }

    #[test]
    fn single_and_empty_graphs() {
        assert!(kruskal(&[]).is_empty());
        assert!(kruskal(&[v(1, 1)]).is_empty());
    }

    #[test]
    fn colocated_vertices_have_zero_edges() {
        let vs = vec![v(2, 2), v(2, 2), v(2, 2)];
        let mst = kruskal(&vs);
        assert_eq!(mst.len(), 2);
        assert!(mst.iter().all(|e| e.weight == 0));
    }

    #[test]
    fn rooted_tree_postorder_ends_at_root() {
        let vs = vec![v(0, 0), v(0, 1), v(0, 2), v(3, 0)];
        let mst = kruskal(&vs);
        let tree = RootedTree::build(4, &mst, 0);
        assert_eq!(*tree.postorder.last().unwrap(), 0);
        assert_eq!(tree.parent[0], None);
        // Every non-root appears before its parent.
        let pos: Vec<usize> = {
            let mut p = vec![0; 4];
            for (i, &x) in tree.postorder.iter().enumerate() {
                p[x] = i;
            }
            p
        };
        for vtx in 1..4 {
            if let Some(par) = tree.parent[vtx] {
                assert!(pos[vtx] < pos[par], "vertex {vtx} after parent {par}");
            }
        }
    }

    #[test]
    fn rooted_tree_children_are_consistent() {
        let vs = vec![v(0, 0), v(1, 0), v(2, 0), v(3, 0), v(4, 0)];
        let mst = kruskal(&vs);
        let tree = RootedTree::build(5, &mst, 2);
        for (p, kids) in tree.children.iter().enumerate() {
            for &k in kids {
                assert_eq!(tree.parent[k], Some(p));
            }
        }
        assert!(tree.is_leaf(0));
        assert!(!tree.is_leaf(2) || tree.children[2].is_empty());
    }

    #[test]
    fn nearest_to_is_deterministic_on_ties() {
        let vtx = MstVertex::multi(vec![NodeId::new(2, 0), NodeId::new(0, 2)]);
        // Both are distance 2 from (0,0) and (2,2)… target (1,1): both dist 1+1=2?
        // (2,0)->(1,1)=2, (0,2)->(1,1)=2: tie broken by node order.
        let (n, d) = vtx.nearest_to(NodeId::new(1, 1));
        assert_eq!(d, 2);
        assert_eq!(n, NodeId::new(0, 2));
    }

    #[test]
    #[should_panic(expected = "span")]
    fn rooted_tree_rejects_forests() {
        let edges = vec![MstEdge { a: 0, b: 1, weight: 1 }];
        let _ = RootedTree::build(3, &edges, 0);
    }

    #[test]
    fn prune_relays_drops_leaf_relays_and_keeps_junctions() {
        // Shrunken from the first harness counterexample: the T-shaped
        // statement (operands at (0,2),(2,2), store at (1,0)) augmented
        // with the true junction (1,2) *and* a stray candidate (0,0).
        // Kruskal attaches (0,0) to the store as a weight-1 leaf; the
        // scheduling walk would then read an operand from a relay.
        let vs = vec![v(0, 2), v(2, 2), v(1, 0), v(1, 2), v(0, 0)];
        let plain: u32 = kruskal(&vs[..3]).iter().map(|e| e.weight).sum();
        assert_eq!(plain, 5);
        let (pruned, edges) = prune_relays(vs, 3);
        assert_eq!(pruned.len(), 4, "stray relay not pruned: {pruned:?}");
        assert_eq!(pruned[3], v(1, 2), "junction pruned: {pruned:?}");
        let aug: u32 = edges.iter().map(|e| e.weight).sum();
        assert_eq!(aug, 4, "junction tree should beat the MST");
        // The compacted result roots cleanly; the tree spans.
        let tree = RootedTree::build(pruned.len(), &edges, 2);
        assert!(!tree.is_leaf(3), "surviving relay must be interior");
    }

    #[test]
    fn prune_relays_compacts_indices_for_the_rooted_walk() {
        // The latent assumption this guards: every MST edge endpoint is a
        // terminal, so edge indices span a hole-free 0..n. Removing a leaf
        // relay's *edge* without removing the vertex leaves a hole that
        // RootedTree::build rejects; prune_relays removes the vertex and
        // recomputes, so the walk never sees the hole.
        let vs = vec![v(0, 0), v(3, 0), v(0, 3), v(0, 0)]; // relay duplicates a terminal
        let naive = {
            let mut edges = kruskal(&vs);
            // Drop the relay's zero-weight leaf edge but keep 4 vertices.
            edges.retain(|e| e.a != 3 && e.b != 3);
            edges
        };
        assert!(!UnionFind::spans(4, naive.iter().map(|e| (e.a, e.b))));
        let naive_panics = std::panic::catch_unwind(|| RootedTree::build(4, &naive, 0)).is_err();
        assert!(naive_panics, "un-compacted pruning must trip the spanning assert");
        let (pruned, edges) = prune_relays(vs, 3);
        assert_eq!(pruned.len(), 3);
        assert!(UnionFind::spans(pruned.len(), edges.iter().map(|e| (e.a, e.b))));
        let _ = RootedTree::build(pruned.len(), &edges, 0);
    }

    #[test]
    fn prune_relays_cascades_chains_and_never_raises_weight() {
        // A chain of relays hanging off one terminal: pruning the outer
        // leaf exposes the next, until only interior relays survive.
        let vs = vec![v(0, 0), v(4, 0), v(2, 3), v(2, 0), v(6, 6), v(6, 4)];
        let plain: u32 = kruskal(&vs[..3]).iter().map(|e| e.weight).sum();
        let (pruned, edges) = prune_relays(vs, 3);
        assert!(pruned.len() <= 4);
        assert!(!pruned.contains(&v(6, 6)) && !pruned.contains(&v(6, 4)));
        let aug: u32 = edges.iter().map(|e| e.weight).sum();
        assert!(aug <= plain, "pruned tree {aug} worse than plain MST {plain}");
        // No relays at all is the identity.
        let vs2 = vec![v(0, 0), v(4, 0), v(2, 3)];
        let (same, e2) = prune_relays(vs2.clone(), 3);
        assert_eq!(same, vs2);
        assert_eq!(e2, kruskal(&vs2));
    }
}
