//! The schedule representation: subcomputations, operands and stores.
//!
//! A [`Schedule`] is the partitioner's output and the simulator's input: a
//! flat list of [`Step`]s in a valid sequential order (statement instances in
//! program order, steps within a statement in post-order over its MST).
//! Each step is one *subcomputation* in the paper's sense: a fold of a few
//! operands executed on a specific mesh node, optionally storing its result.
//!
//! The same representation expresses the unoptimized baseline (one step per
//! statement instance, executed on the iteration's assigned core), so the
//! simulator treats both identically.

use dmcp_ir::{ArrayId, BinOp};
use dmcp_mach::NodeId;
use dmcp_mem::LineAddr;
use std::fmt;

/// Identifier of a step within a schedule (its index).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SubId(pub u32);

impl SubId {
    /// Index into [`Schedule::steps`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for SubId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sub#{}", self.0)
    }
}

/// Where an operand's data lives on the machine, as believed at compile time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ElemLoc {
    /// The element's array.
    pub array: ArrayId,
    /// Linear element index.
    pub elem: u64,
    /// Physical cache line holding the element.
    pub line: LineAddr,
    /// The node the compiler believes supplies the data (home L2 bank, a
    /// memory controller on a predicted L2 miss, or a node holding an L1
    /// copy). The simulator measures where it *actually* comes from.
    pub believed: NodeId,
    /// Whether the owning array is flat-placed in fast memory.
    pub hot: bool,
}

/// One input to a step.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Operand {
    /// A literal.
    Const(f64),
    /// An array element read from the memory system.
    Elem(ElemLoc),
    /// The partial result of an earlier step.
    Temp(SubId),
}

/// An input together with the operator folding it into the accumulator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StepInput {
    /// `acc = op.apply(acc, value)`.
    pub op: BinOp,
    /// Where the value comes from.
    pub operand: Operand,
}

/// The store performed by a statement's final step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StoreTarget {
    /// Destination array.
    pub array: ArrayId,
    /// Destination element.
    pub elem: u64,
    /// Destination cache line.
    pub line: LineAddr,
    /// Home node of the destination line (the paper's "store node").
    pub home: NodeId,
    /// Whether the destination array is flat-placed in fast memory.
    pub hot: bool,
}

/// Identifies the statement instance a step belongs to (for statistics).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub struct StmtTag {
    /// Loop-nest index within the program.
    pub nest: u32,
    /// Statement index within the nest body.
    pub stmt: u32,
    /// Global statement-instance number within the nest
    /// (`iteration · body_len + stmt`).
    pub instance: u64,
}

/// One subcomputation.
#[derive(Clone, Debug, PartialEq)]
pub struct Step {
    /// This step's id (== its index in the schedule).
    pub id: SubId,
    /// The mesh node executing the subcomputation.
    pub node: NodeId,
    /// Accumulator seed; `None` means the first input's value initialises
    /// the accumulator (its `op` is ignored) — used for non-reorderable
    /// folds like shifts.
    pub seed: Option<f64>,
    /// The folded inputs, in application order.
    pub inputs: Vec<StepInput>,
    /// Set when this is a statement's final step.
    pub store: Option<StoreTarget>,
    /// Synchronisation arcs: steps that must complete before this one runs,
    /// *beyond* those already implied by `Temp` inputs (inter-statement
    /// dependences). Kept minimal by transitive reduction.
    pub waits: Vec<SubId>,
    /// The statement instance this step implements.
    pub tag: StmtTag,
}

impl Step {
    /// All producer steps this one depends on: temp inputs plus explicit
    /// waits.
    pub fn producers(&self) -> impl Iterator<Item = SubId> + '_ {
        self.inputs
            .iter()
            .filter_map(|i| match i.operand {
                Operand::Temp(t) => Some(t),
                _ => None,
            })
            .chain(self.waits.iter().copied())
    }

    /// Cost of the step in operation units (division counts `div_factor`).
    pub fn op_cost(&self, div_factor: f64) -> f64 {
        self.inputs.iter().map(|i| i.op.cost(div_factor)).sum()
    }
}

/// A complete schedule for one loop nest.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Schedule {
    /// Steps in a valid sequential execution order.
    pub steps: Vec<Step>,
}

impl Schedule {
    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` if the schedule has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Executes the schedule's *values* sequentially, mutating `data`.
    /// This is the correctness semantics; timing is the simulator's job.
    ///
    /// # Panics
    ///
    /// Panics if a `Temp` input references a later step (invalid schedule).
    pub fn execute_values(&self, data: &mut dmcp_ir::program::DataStore) {
        let mut temps = vec![f64::NAN; self.steps.len()];
        for (k, step) in self.steps.iter().enumerate() {
            for p in step.producers() {
                assert!(p.index() < k, "temp {p:?} not yet produced at step {k}");
            }
            eval_step(step, k, &mut temps, data);
        }
    }

    /// Executes the schedule's values in an arbitrary caller-supplied step
    /// order, verifying along the way that the order is a permutation
    /// consistent with every step's [`Step::producers`] arcs.
    ///
    /// This is the conformance harness's adversarial executor: because the
    /// dependence tracker wires every flow/anti/output arc between steps
    /// (across window boundaries), *any* producer-respecting order must
    /// compute the same values as the sequential order. A divergence means
    /// a missing synchronisation arc, not an unlucky order.
    pub fn execute_values_ordered(
        &self,
        order: &[usize],
        data: &mut dmcp_ir::program::DataStore,
    ) -> Result<(), String> {
        if order.len() != self.steps.len() {
            return Err(format!(
                "order has {} entries for {} steps",
                order.len(),
                self.steps.len()
            ));
        }
        let mut done = vec![false; self.steps.len()];
        let mut temps = vec![f64::NAN; self.steps.len()];
        for &k in order {
            let step = self.steps.get(k).ok_or_else(|| format!("order names step {k}"))?;
            if std::mem::replace(&mut done[k], true) {
                return Err(format!("order repeats step {k}"));
            }
            for p in step.producers() {
                if !done[p.index()] {
                    return Err(format!("step {k} ordered before its producer {p:?}"));
                }
            }
            eval_step(step, k, &mut temps, data);
        }
        Ok(())
    }

    /// Checks structural sanity: ids match indices, temps and waits point
    /// backwards. Returns a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        for (k, step) in self.steps.iter().enumerate() {
            if step.id.index() != k {
                return Err(format!("step {k} has id {:?}", step.id));
            }
            for p in step.producers() {
                if p.index() >= k {
                    return Err(format!("step {k} depends on later step {p:?}"));
                }
            }
            if step.seed.is_none() && step.inputs.is_empty() {
                return Err(format!("step {k} has neither seed nor inputs"));
            }
        }
        Ok(())
    }
}

/// Evaluates one step: folds its inputs onto the seed, records the result
/// as step `k`'s temp, and performs the store if any. Callers must have
/// produced every temp the step reads.
fn eval_step(step: &Step, k: usize, temps: &mut [f64], data: &mut dmcp_ir::program::DataStore) {
    let mut acc = step.seed;
    for input in &step.inputs {
        let value = match input.operand {
            Operand::Const(v) => v,
            Operand::Elem(e) => data.get(e.array, e.elem),
            Operand::Temp(t) => temps[t.index()],
        };
        acc = Some(match acc {
            None => value,
            Some(a) => input.op.apply(a, value),
        });
    }
    let result = acc.unwrap_or(0.0);
    temps[k] = result;
    if let Some(st) = &step.store {
        data.set(st.array, st.elem, result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmcp_ir::program::ProgramBuilder;

    fn elem(array: ArrayId, e: u64) -> Operand {
        Operand::Elem(ElemLoc {
            array,
            elem: e,
            line: LineAddr::new(0),
            believed: NodeId::new(0, 0),
            hot: false,
        })
    }

    #[test]
    fn fold_with_seed_and_temp() {
        let mut b = ProgramBuilder::new();
        let a = b.array("A", &[4], 8);
        let x = b.array("X", &[4], 8);
        let p = b.build();
        let mut data = p.initial_data();
        data.fill(x, &[2.0, 3.0, 4.0, 5.0]);

        // Step 0: t0 = 0 + X[0] + X[1] = 5
        // Step 1: A[0] = t0 * X[2] = 20
        let sched = Schedule {
            steps: vec![
                Step {
                    id: SubId(0),
                    node: NodeId::new(0, 0),
                    seed: Some(0.0),
                    inputs: vec![
                        StepInput { op: BinOp::Add, operand: elem(x, 0) },
                        StepInput { op: BinOp::Add, operand: elem(x, 1) },
                    ],
                    store: None,
                    waits: vec![],
                    tag: StmtTag::default(),
                },
                Step {
                    id: SubId(1),
                    node: NodeId::new(1, 0),
                    seed: Some(1.0),
                    inputs: vec![
                        StepInput { op: BinOp::Mul, operand: Operand::Temp(SubId(0)) },
                        StepInput { op: BinOp::Mul, operand: elem(x, 2) },
                    ],
                    store: Some(StoreTarget {
                        array: a,
                        elem: 0,
                        line: LineAddr::new(0),
                        home: NodeId::new(1, 0),
                        hot: false,
                    }),
                    waits: vec![],
                    tag: StmtTag::default(),
                },
            ],
        };
        sched.validate().unwrap();
        sched.execute_values(&mut data);
        assert_eq!(data.get(a, 0), 20.0);

        let mut again = p.initial_data();
        again.fill(x, &[2.0, 3.0, 4.0, 5.0]);
        sched.execute_values_ordered(&[0, 1], &mut again).unwrap();
        assert_eq!(again.get(a, 0), 20.0);
        // Step 1 reads step 0's temp, so the reversed order must be refused.
        assert!(sched.execute_values_ordered(&[1, 0], &mut again).is_err());
        assert!(sched.execute_values_ordered(&[0], &mut again).is_err());
        assert!(sched.execute_values_ordered(&[0, 0], &mut again).is_err());
    }

    #[test]
    fn seedless_step_uses_first_input() {
        let mut b = ProgramBuilder::new();
        let a = b.array("A", &[4], 8);
        let x = b.array("X", &[4], 8);
        let p = b.build();
        let mut data = p.initial_data();
        data.fill(x, &[2.0, 3.0, 0.0, 0.0]);
        let sched = Schedule {
            steps: vec![Step {
                id: SubId(0),
                node: NodeId::new(0, 0),
                seed: None,
                inputs: vec![
                    StepInput { op: BinOp::Add, operand: elem(x, 0) }, // op ignored
                    StepInput { op: BinOp::Shl, operand: elem(x, 1) },
                ],
                store: Some(StoreTarget {
                    array: a,
                    elem: 1,
                    line: LineAddr::new(0),
                    home: NodeId::new(0, 0),
                    hot: false,
                }),
                waits: vec![],
                tag: StmtTag::default(),
            }],
        };
        sched.execute_values(&mut data);
        assert_eq!(data.get(a, 1), 16.0); // 2 << 3
    }

    #[test]
    fn validate_rejects_forward_temp() {
        let sched = Schedule {
            steps: vec![Step {
                id: SubId(0),
                node: NodeId::new(0, 0),
                seed: Some(0.0),
                inputs: vec![StepInput { op: BinOp::Add, operand: Operand::Temp(SubId(5)) }],
                store: None,
                waits: vec![],
                tag: StmtTag::default(),
            }],
        };
        assert!(sched.validate().is_err());
    }

    #[test]
    fn validate_rejects_wrong_ids() {
        let sched = Schedule {
            steps: vec![Step {
                id: SubId(7),
                node: NodeId::new(0, 0),
                seed: Some(0.0),
                inputs: vec![StepInput { op: BinOp::Add, operand: Operand::Const(1.0) }],
                store: None,
                waits: vec![],
                tag: StmtTag::default(),
            }],
        };
        assert!(sched.validate().is_err());
    }

    #[test]
    fn producers_include_waits() {
        let step = Step {
            id: SubId(2),
            node: NodeId::new(0, 0),
            seed: Some(0.0),
            inputs: vec![StepInput { op: BinOp::Add, operand: Operand::Temp(SubId(0)) }],
            store: None,
            waits: vec![SubId(1)],
            tag: StmtTag::default(),
        };
        let producers: Vec<_> = step.producers().collect();
        assert_eq!(producers, vec![SubId(0), SubId(1)]);
    }

    #[test]
    fn op_cost_weights_division() {
        let step = Step {
            id: SubId(0),
            node: NodeId::new(0, 0),
            seed: Some(1.0),
            inputs: vec![
                StepInput { op: BinOp::Mul, operand: Operand::Const(2.0) },
                StepInput { op: BinOp::Div, operand: Operand::Const(4.0) },
            ],
            store: None,
            waits: vec![],
            tag: StmtTag::default(),
        };
        assert_eq!(step.op_cost(10.0), 11.0);
    }
}
