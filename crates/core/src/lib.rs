//! Data-movement-aware computation partitioning — the primary contribution
//! of "Data Movement Aware Computation Partitioning" (MICRO'17).
//!
//! Given a loop-nest program ([`dmcp_ir`]) and a machine layout
//! ([`dmcp_mach`] + [`dmcp_mem`]), the [`Partitioner`] breaks each statement
//! into *subcomputations* and schedules them on mesh nodes so that data
//! travels the minimum number of network links:
//!
//! - per statement, operand locations become vertices of a complete graph
//!   and a Kruskal MST gives the minimum total movement ([`mst`]);
//! - operator priority is honoured through *nested sets* processed
//!   innermost-first ([`dmcp_ir::nested`], [`split`]);
//! - consecutive statements are planned in *windows* so the
//!   `variable2node` map can exploit L1 reuse, and a pre-processing pass
//!   picks the best window size (1‥8) per nest ([`window`]);
//! - node assignment respects a load-balance skip rule ([`balance`]), and
//!   the synchronization graph is transitively reduced ([`sync`]).
//!
//! The output is a [`step::Schedule`] — a machine-independent list of
//! subcomputations the `dmcp-sim` crate executes and times.
//!
//! # Examples
//!
//! ```
//! use dmcp_core::{PartitionConfig, Partitioner};
//! use dmcp_ir::ProgramBuilder;
//! use dmcp_mach::MachineConfig;
//!
//! let mut b = ProgramBuilder::new();
//! for n in ["A", "B", "C", "D", "E"] {
//!     b.array(n, &[256], 8);
//! }
//! b.nest(&[("i", 0, 64)], &["A[i] = B[i] + C[i] + D[i] + E[i]"]).unwrap();
//! let program = b.build();
//!
//! let machine = MachineConfig::knl_like();
//! let partitioner = Partitioner::new(&machine, &program, PartitionConfig::default());
//! let out = partitioner.partition(&program);
//! assert_eq!(out.nests.len(), 1);
//! assert!(out.nests[0].stats.movement_opt <= out.nests[0].stats.movement_default);
//! ```

pub mod balance;
pub mod error;
pub mod explain;
pub mod l1model;
pub mod layout;
pub mod mst;
pub mod partitioner;
pub mod pipeline;
pub mod split;
pub mod stats;
pub mod steiner;
pub mod step;
pub mod sync;
pub mod unionfind;
pub mod window;

pub use error::PartitionError;
pub use layout::{ElemInfo, Layout};
pub use partitioner::{
    chunked_assignment, chunked_assignment_over, nest_assignment, NestPartition, PartitionConfig,
    PartitionOutput, Partitioner, PredictorSpec,
};
pub use pipeline::{passes, NestCtx, Pass, PlanCtx};
pub use split::{HitPredictor, PlanOptions, Planner};
pub use stats::{OpMix, StmtRecord};
pub use steiner::SteinerPass;
pub use step::{ElemLoc, Operand, Schedule, Step, StepInput, StmtTag, StoreTarget, SubId};
pub use window::{place_nest, plan_nest, sync_nest, NestPlan, NestStats};
